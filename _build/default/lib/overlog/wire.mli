(** Binary wire format for tuples (little-endian, length-prefixed). *)

exception Error of string

val version : int

(** Encode a tuple as a wire message; [delete] marks delete patterns.
    The tuple's id travels as the source-tuple id for cross-node
    tracing (paper §2.1.3). Raises {!Error} on unencodable input
    (strings over 64 KiB, more than 65535 fields). *)
val encode : ?delete:bool -> Tuple.t -> string

type message = {
  src_tuple_id : int;
  delete : bool;
  name : string;
  fields : Value.t list;
}

(** Decode a wire message; raises {!Error} on malformed input,
    including trailing bytes. *)
val decode : string -> message

(** Wire size in bytes of a tuple's encoding. *)
val size : ?delete:bool -> Tuple.t -> int
