(** OverLog tuples: a relation name plus a field vector.

    By P2 convention, field 1 is the location specifier — the address
    of the node where the tuple lives or must be delivered. Tuples are
    immutable; each carries a node-unique [id] used by the tracer to
    memoize tuples in the [tupleTable] (paper §2.1.3). *)

type t

(** The id of tuples created outside a node (tests, literals). *)
val anonymous_id : int

val make : ?id:int -> string -> Value.t list -> t
val make_arr : ?id:int -> string -> Value.t array -> t

val name : t -> string
val id : t -> int
val with_id : t -> int -> t
val arity : t -> int
val fields : t -> Value.t list

(** 1-indexed field access (matching the [keys(...)] convention).
    Raises [Invalid_argument] when out of range. *)
val field : t -> int -> Value.t

(** The location specifier (field 1) as an address. *)
val location : t -> string

(** Equality/ordering of contents, ignoring ids. *)
val equal_contents : t -> t -> bool

val compare_contents : t -> t -> int
val pp : t Fmt.t
val to_string : t -> string

(** Extract the values at the given 1-indexed positions; out-of-range
    positions yield [VNull]. *)
val key_of : t -> int list -> Value.t list

val size_bytes : t -> int
