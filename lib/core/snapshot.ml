(** Chandy–Lamport consistent snapshots over P2 Chord (paper §3.3).

    The initiator periodically (or on demand) starts a snapshot: it
    copies its routing tables aside ([snapBestSucc], [snapFingers],
    [snapPred]) and sends [marker] tuples along its outgoing links
    (Chord's [pingNode] set). Nodes receiving a first marker for a
    snapshot ID do the same; channel recording runs per incoming link
    ([backPointer] set, built passively from ping traffic, rules
    bp1–bp2) until a marker arrives on it. A node's snapshot is "Done"
    when all incoming channels are done (rules sr12–sr13).

    Messages that travel outside declared topology links
    ([lookupResults]) carry the sender's current snapshot ID; a higher
    ID acts as a marker (rule sr14), a lower one gets channel-recorded
    (rule sr16) — the paper's extension of Chandy–Lamport to
    non-FIFO-neighbor traffic.

    Snapshot lookups (rules l1s–l3s) answer Chord lookups using a given
    snapshot's state instead of live state, which makes global
    property checks (like routing consistency) exact rather than
    best-effort. *)

open Overlog

(** Incoming-link bookkeeping (bp1–bp2). The backPointer lifetime is a
    little over two ping periods, so links vanish soon after their
    pinger stops. *)
let backpointer_program ?(t_ping = 5.) () =
  Fmt.str
    {|
materialize(backPointer, %g, 256, keys(1,2)).
materialize(numBackPointers, infinity, 1, keys(1)).

bp1 backPointer@NAddr(RemoteAddr) :- pingReq@NAddr(RemoteAddr, E).
bp2 numBackPointers@NAddr(count<*>) :- backPointer@NAddr(RemoteAddr).
|}
    (2.5 *. t_ping)

(** Rules common to every node (sr2–sr16). *)
let participant_program =
  {|
materialize(snapState, 100, 100, keys(1,2)).
materialize(snapBestSucc, 100, 100, keys(1,2)).
materialize(snapFingers, 100, 800, keys(1,2,3)).
materialize(snapUniqueFinger, 100, 200, keys(1,2,3)).
materialize(snapPred, 100, 100, keys(1,2)).
materialize(channelState, 100, 800, keys(1,2,3)).
materialize(channelSendSuccDump, 100, 200, keys(1,2,3,4,5)).
materialize(channelLookupResDump, 100, 200, keys(1,2,3,4,5)).

sr2 snapState@NAddr(I, "Snapping") :- snap@NAddr(I).
sr3 currentSnap@NAddr(I) :- snap@NAddr(I).
sr4 snapBestSucc@NAddr(I, SAddr, SID) :- snap@NAddr(I), bestSucc@NAddr(SID, SAddr).
sr5 snapFingers@NAddr(I, FPos, FAddr, FID) :- snap@NAddr(I), finger@NAddr(FPos, FID, FAddr).
sr5u snapUniqueFinger@NAddr(I, FAddr, FID) :- snap@NAddr(I), uniqueFinger@NAddr(FAddr, FID).
sr6 snapPred@NAddr(I, PAddr, PID) :- snap@NAddr(I), pred@NAddr(PID, PAddr).
/* the snap/marker/haveSnap cycle is Chandy-Lamport marker flooding:
   sr9 only re-snaps on the FIRST marker for an ID (count is 0), so
   each node forwards markers at most once per snapshot */
%% allow E502
sr7 marker@RemoteAddr(NAddr, I) :- snap@NAddr(I), pingNode@NAddr(RemoteAddr).

%% allow E502
sr8 haveSnap@NAddr(SrcAddr, I, count<*>) :- marker@NAddr(SrcAddr, I),
    snapState@NAddr(I, State).
%% allow E502
sr9 snap@NAddr(I) :- haveSnap@NAddr(Src, I, 0).
sr10 channelState@NAddr(Remote, I, "Start") :- haveSnap@NAddr(Src, I, 0),
     backPointer@NAddr(Remote), Remote != Src.
/* sr11 split in two: when the snapshot is already running (C > 0) the
   marker's channel is done unconditionally — joining backPointer there
   (as the paper's single rule does) would emit one tuple per incoming
   link per marker, a degree-squared cost per snapshot. The membership
   check against backPointer is only needed for the first marker. */
sr11a channelState@NAddr(Src, I, "Done") :- haveSnap@NAddr(Src, I, C), C > 0.
sr11b channelState@NAddr(Src, I, "Done") :- haveSnap@NAddr(Src, I, 0),
      backPointer@NAddr(Src).

sr12 doneChannels@NAddr(I, count<*>) :- channelState@NAddr(Src, I, "Done").
sr13 snapState@NAddr(I, "Done") :- doneChannels@NAddr(I, C),
     snapState@NAddr(I, "Snapping"), numBackPointers@NAddr(C).

sr14 snap@NAddr(SrcSnapID) :- lookupResults@NAddr(K, SID, SAddr, E, Src, SrcSnapID),
     currentSnap@NAddr(MySnapID), SrcSnapID > MySnapID.
sr15 channelSendSuccDump@NAddr(I, SID, SAddr, T) :- returnSucc@NAddr(SID, SAddr, Src),
     channelState@NAddr(Src, I, "Start"), T := f_now().
sr16 channelLookupResDump@NAddr(I, K, SID, E) :-
     lookupResults@NAddr(K, SID, SAddr, E, Src, SrcSnapID),
     currentSnap@NAddr(I), SrcSnapID < I, channelState@NAddr(Src, I, "Start").
|}

(** Periodic initiator (sr1, split through a max aggregate so only the
    most recent snapshot ID is advanced). Installed on one node. *)
let initiator_program ~t_snap =
  Fmt.str
    {|
sr1a maxSnap@NAddr(max<I>) :- periodic@NAddr(E, %g), snapState@NAddr(I, State).
sr1b snap@NAddr(I2) :- maxSnap@NAddr(I), I2 := I + 1.
|}
    t_snap

(** Snapshot lookups (l1s–l3s): Chord lookups evaluated over the
    snapped state. Forwarding goes through the snapped {e unique}
    fingers — like the live l2/l3 — so that duplicate finger positions
    pointing at the same node cannot fan a lookup out exponentially. *)
let snap_lookup_program =
  {|
l1s sLookupResults@ReqAddr(SnapID, K, SID, SAddr, E, NAddr) :- node@NAddr(NID),
    sLookup@NAddr(SnapID, K, ReqAddr, E), snapBestSucc@NAddr(SnapID, SAddr, SID),
    K in (NID, SID].
/* same terminating recursion as the live l2/l3: every hop shrinks the
   remaining ID distance */
%% allow E502
l2s sBestLookupDist@NAddr(SnapID, K, ReqAddr, E, min<D>) :- node@NAddr(NID),
    sLookup@NAddr(SnapID, K, ReqAddr, E), snapUniqueFinger@NAddr(SnapID, FAddr, FID),
    D := K - FID - 1, FID in (NID, K).
%% allow E502
l3s sLookup@FAddr(SnapID, K, ReqAddr, E) :- node@NAddr(NID),
    sBestLookupDist@NAddr(SnapID, K, ReqAddr, E, D),
    snapUniqueFinger@NAddr(SnapID, FAddr, FID), D == K - FID - 1, FID in (NID, K).
|}

type t = { net : Chord.network; initiator : string }

(** Install snapshots on a Chord network. When [t_snap] is given the
    initiator takes periodic snapshots; otherwise use
    [trigger] for one-shot snapshots. *)
let install ?initiator ?t_snap ?(lookups = true) (net : Chord.network) =
  let engine = net.engine in
  let initiator = Option.value initiator ~default:net.landmark in
  P2_runtime.Engine.install_all engine (backpointer_program ~t_ping:net.params.t_ping ());
  P2_runtime.Engine.install_all engine participant_program;
  if lookups then P2_runtime.Engine.install_all engine snap_lookup_program;
  P2_runtime.Engine.install engine initiator
    (Fmt.str {| snapState@%s(0, "Done"). |} initiator);
  (match t_snap with
  | Some t -> P2_runtime.Engine.install engine initiator (initiator_program ~t_snap:t)
  | None -> ());
  { net; initiator }

(** Start snapshot [id] now (one-shot). IDs must increase. *)
let trigger t ~id =
  ignore @@ P2_runtime.Engine.inject t.net.engine t.initiator "snap" [ Value.VInt id ]

(* --- Reading snapshots back --- *)

let table_rows t addr name =
  let node = P2_runtime.Engine.node t.net.engine addr in
  match Store.Catalog.find (P2_runtime.Node.catalog node) name with
  | Some table -> Store.Table.tuples table ~now:(P2_runtime.Engine.now t.net.engine)
  | None -> []

(** Per-node snapshot phase for snapshot [id]: None if the node never
    started it. *)
let state_of t addr ~id =
  table_rows t addr "snapState"
  |> List.find_map (fun row ->
         if Value.as_int (Tuple.field row 2) = id then
           Some (Value.as_string (Tuple.field row 3))
         else None)

let all_done t ~id =
  List.for_all (fun addr -> state_of t addr ~id = Some "Done") t.net.addrs

(** The snapped best successor of [addr] in snapshot [id]. *)
let snapped_best_succ t addr ~id =
  table_rows t addr "snapBestSucc"
  |> List.find_map (fun row ->
         if Value.as_int (Tuple.field row 2) = id then
           Some (Value.as_addr (Tuple.field row 3), Value.as_int (Tuple.field row 4))
         else None)

let snapped_pred t addr ~id =
  table_rows t addr "snapPred"
  |> List.find_map (fun row ->
         if Value.as_int (Tuple.field row 2) = id then
           Some (Value.as_addr (Tuple.field row 3), Value.as_int (Tuple.field row 4))
         else None)

(** Global property detector on a consistent snapshot: does the
    snapped successor graph form a single ring covering all
    participants? This is the paper's "queries over snapshots verify
    global invariants" usage. *)
let snapped_ring_correct t ~id =
  let addrs = t.net.addrs in
  let next addr = Option.map fst (snapped_best_succ t addr ~id) in
  match next t.initiator with
  | None -> false
  | Some _ ->
      let rec walk addr seen n =
        if n > List.length addrs then seen
        else
          match next addr with
          | Some nxt when nxt = t.initiator -> addr :: seen
          | Some nxt -> walk nxt (addr :: seen) (n + 1)
          | None -> addr :: seen
      in
      let visited = walk t.initiator [] 0 in
      List.length visited = List.length addrs
      && List.sort compare visited = List.sort compare addrs

(** Issue a lookup over snapshot [id], starting at [addr]. Results
    arrive as [sLookupResults] at the requester. *)
let lookup t ~addr ?req_addr ~id ~key ~req_id () =
  let req_addr = Option.value req_addr ~default:addr in
  ignore @@ P2_runtime.Engine.inject t.net.engine addr "sLookup"
    [ Value.VInt id; Value.VId key; Value.VAddr req_addr; Value.VInt req_id ]
