(** Recursive-descent parser for the OverLog dialect.

    Grammar (statements end with '.'):
    {v
      program     := statement* EOF
      statement   := materialize | watch | rule | fact
      materialize := "materialize" "(" ident "," lifetime "," size ","
                     "keys" "(" int ("," int)* ")" ")" "."
      watch       := "watch" "(" ident ")" "."
      rule        := [ident] ["delete"] headatom ":-" bodyterm ("," bodyterm)* "."
      fact        := atom "."            (all fields constant)
      headatom    := ident ["@" primary] "(" headfield,* ")"
      headfield   := aggregate | expr
      aggregate   := ("count"|"min"|"max"|"sum"|"avg") "<" ("*"|VARIABLE) ">"
      bodyterm    := atom | VARIABLE ":=" expr | expr
    v}

    Lowercase identifiers in expression position are string constants
    (OverLog convention: capitalized = variable). Identifiers starting
    with [f_] followed by '(' are built-in function calls. *)

open Ast

exception Error of string * int

type state = { toks : (Lexer.token * int) array; mutable idx : int }

let make toks = { toks = Array.of_list toks; idx = 0 }

let peek st = fst st.toks.(st.idx)
let peek2 st = if st.idx + 1 < Array.length st.toks then fst st.toks.(st.idx + 1) else Lexer.EOF
let line st = snd st.toks.(st.idx)
let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let fail st msg =
  raise (Error (Fmt.str "%s (got %s)" msg (Lexer.token_to_string (peek st)), line st))

let expect st tok what =
  if peek st = tok then advance st else fail st (Fmt.str "expected %s" what)

let expect_ident st what =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | _ -> fail st (Fmt.str "expected %s" what)

let agg_names = [ "count"; "min"; "max"; "sum"; "avg" ]

(* --- Expressions --- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = Lexer.OROR then (
    advance st;
    Binop (Or, lhs, parse_or st))
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if peek st = Lexer.ANDAND then (
    advance st;
    Binop (And, lhs, parse_and st))
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | Lexer.EQ -> advance st; Binop (Eq, lhs, parse_add st)
  | Lexer.NEQ -> advance st; Binop (Neq, lhs, parse_add st)
  | Lexer.LANGLE -> advance st; Binop (Lt, lhs, parse_add st)
  | Lexer.LE -> advance st; Binop (Le, lhs, parse_add st)
  | Lexer.RANGLE -> advance st; Binop (Gt, lhs, parse_add st)
  | Lexer.GE -> advance st; Binop (Ge, lhs, parse_add st)
  | Lexer.IDENT "in" -> advance st; parse_interval st lhs
  | _ -> lhs

and parse_interval st lhs =
  let open_lo =
    match peek st with
    | Lexer.LPAREN -> advance st; true
    | Lexer.LBRACKET -> advance st; false
    | _ -> fail st "expected ( or [ after 'in'"
  in
  let a = parse_add st in
  expect st Lexer.COMMA ",";
  let b = parse_add st in
  let open_hi =
    match peek st with
    | Lexer.RPAREN -> advance st; true
    | Lexer.RBRACKET -> advance st; false
    | _ -> fail st "expected ) or ] closing interval"
  in
  let kind =
    match (open_lo, open_hi) with
    | true, true -> Open_open
    | true, false -> Open_closed
    | false, true -> Closed_open
    | false, false -> Closed_closed
  in
  InRange (lhs, a, b, kind)

and parse_add st =
  let rec go lhs =
    match peek st with
    | Lexer.PLUS -> advance st; go (Binop (Add, lhs, parse_mul st))
    | Lexer.MINUS -> advance st; go (Binop (Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Lexer.STAR -> advance st; go (Binop (Mul, lhs, parse_unary st))
    | Lexer.SLASH -> advance st; go (Binop (Div, lhs, parse_unary st))
    | Lexer.PERCENT -> advance st; go (Binop (Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.BANG -> advance st; Unop_not (parse_unary st)
  | Lexer.MINUS -> advance st; Neg (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT i -> advance st; Const (Value.VInt i)
  | Lexer.IDLIT i -> advance st; Const (Value.VId i)
  | Lexer.FLOAT f -> advance st; Const (Value.VFloat f)
  | Lexer.STRING s -> advance st; Const (Value.VStr s)
  | Lexer.VARIABLE "_" -> advance st; Var "_"
  | Lexer.VARIABLE v -> advance st; Var v
  | Lexer.IDENT "infinity" -> advance st; Const (Value.VFloat infinity)
  | Lexer.IDENT "true" -> advance st; Const (Value.VBool true)
  | Lexer.IDENT "false" -> advance st; Const (Value.VBool false)
  | Lexer.IDENT f
    when peek2 st = Lexer.LPAREN && String.length f > 2 && String.sub f 0 2 = "f_" ->
      advance st;
      advance st;
      let args = if peek st = Lexer.RPAREN then [] else parse_expr_list st in
      expect st Lexer.RPAREN ")";
      Call (f, args)
  | Lexer.IDENT s ->
      (* Lowercase identifier used as a constant. *)
      advance st;
      Const (Value.VStr s)
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN ")";
      e
  | Lexer.LBRACKET ->
      advance st;
      let es = if peek st = Lexer.RBRACKET then [] else parse_expr_list st in
      expect st Lexer.RBRACKET "]";
      ListExpr es
  | _ -> fail st "expected expression"

and parse_expr_list st =
  let e = parse_expr st in
  if peek st = Lexer.COMMA then (
    advance st;
    e :: parse_expr_list st)
  else [ e ]

(* --- Atoms, heads, body terms --- *)

(* [name] has already been consumed; [line] is the line it sat on. *)
let parse_atom_after_name st ~line name =
  let loc_explicit, loc =
    if peek st = Lexer.AT then (
      advance st;
      (true, Some (parse_primary st)))
    else (false, None)
  in
  expect st Lexer.LPAREN "(";
  let args = if peek st = Lexer.RPAREN then [] else parse_expr_list st in
  expect st Lexer.RPAREN ")";
  match loc with
  | Some l -> { pred = name; args = l :: args; loc_explicit; aline = line }
  | None -> { pred = name; args; loc_explicit; aline = line }

let parse_head_field st =
  match peek st with
  | Lexer.IDENT a when List.mem a agg_names && peek2 st = Lexer.LANGLE ->
      advance st;
      advance st;
      let agg =
        match (a, peek st) with
        | "count", Lexer.STAR ->
            advance st;
            Count
        | _, Lexer.VARIABLE v -> (
            advance st;
            match a with
            | "min" -> Min v
            | "max" -> Max v
            | "sum" -> Sum v
            | "avg" -> Avg v
            | "count" -> Count
            | _ -> assert false)
        | _ -> fail st "expected aggregate argument"
      in
      expect st Lexer.RANGLE ">";
      Agg agg
  | _ -> Plain (parse_expr st)

(* [name] and optional '@loc' handled here; returns a head. *)
let parse_head st ~delete ~line name =
  let loc =
    if peek st = Lexer.AT then (
      advance st;
      Some (parse_primary st))
    else None
  in
  expect st Lexer.LPAREN "(";
  let fields =
    if peek st = Lexer.RPAREN then []
    else
      let rec go () =
        let f = parse_head_field st in
        if peek st = Lexer.COMMA then (
          advance st;
          f :: go ())
        else [ f ]
      in
      go ()
  in
  expect st Lexer.RPAREN ")";
  match (loc, fields) with
  | Some l, _ ->
      { hatom = name; hloc = l; hfields = fields; hdelete = delete; hline = line }
  | None, Plain l :: rest ->
      { hatom = name; hloc = l; hfields = rest; hdelete = delete; hline = line }
  | None, _ -> fail st "head needs a location specifier"

let is_pred_name name = not (String.length name > 2 && String.sub name 0 2 = "f_")

let parse_body_term st =
  match (peek st, peek2 st) with
  | Lexer.VARIABLE v, Lexer.ASSIGN ->
      advance st;
      advance st;
      Assign (v, parse_expr st)
  | Lexer.IDENT name, (Lexer.AT | Lexer.LPAREN) when is_pred_name name ->
      let line = line st in
      advance st;
      Atom (parse_atom_after_name st ~line name)
  | Lexer.BANG, Lexer.IDENT name when is_pred_name name ->
      (* negated predicate: !pred@N(...) — succeeds when no tuple
         matches (the bound variables act as the pattern, unbound ones
         existentially) *)
      advance st;
      let line = line st in
      let name = expect_ident st "negated predicate" in
      NotAtom (parse_atom_after_name st ~line name)
  | _ -> Cond (parse_expr st)

let parse_body st =
  let rec go () =
    let t = parse_body_term st in
    if peek st = Lexer.COMMA then (
      advance st;
      t :: go ())
    else [ t ]
  in
  go ()

(* --- Constant folding for facts --- *)

let rec const_eval st = function
  | Const v -> v
  | ListExpr es -> Value.VList (List.map (const_eval st) es)
  | Neg e -> (
      match const_eval st e with
      | Value.VInt i -> Value.VInt (-i)
      | Value.VFloat f -> Value.VFloat (-.f)
      | _ -> fail st "fact fields must be constants")
  | Binop (Add, a, b) -> (
      match (const_eval st a, const_eval st b) with
      | Value.VInt x, Value.VInt y -> Value.VInt (x + y)
      | Value.VFloat x, Value.VFloat y -> Value.VFloat (x +. y)
      | _ -> fail st "fact fields must be constants")
  | _ -> fail st "fact fields must be constants"

(* --- Statements --- *)

let parse_materialize st ~line =
  expect st Lexer.LPAREN "(";
  let name = expect_ident st "table name" in
  expect st Lexer.COMMA ",";
  let lifetime =
    match peek st with
    | Lexer.INT i -> advance st; float_of_int i
    | Lexer.FLOAT f -> advance st; f
    | Lexer.IDENT "infinity" -> advance st; infinity
    | _ -> fail st "expected lifetime"
  in
  expect st Lexer.COMMA ",";
  let size =
    match peek st with
    | Lexer.INT i -> advance st; Some i
    | Lexer.IDENT "infinity" -> advance st; None
    | _ -> fail st "expected table size"
  in
  expect st Lexer.COMMA ",";
  (match peek st with
  | Lexer.IDENT "keys" -> advance st
  | _ -> fail st "expected keys(...)");
  expect st Lexer.LPAREN "(";
  let rec keys () =
    match peek st with
    | Lexer.INT i ->
        advance st;
        if peek st = Lexer.COMMA then (
          advance st;
          i :: keys ())
        else [ i ]
    | _ -> fail st "expected key position"
  in
  let mkeys = keys () in
  expect st Lexer.RPAREN ")";
  expect st Lexer.RPAREN ")";
  expect st Lexer.DOT ".";
  Materialize { mname = name; mlifetime = lifetime; msize = size; mkeys; mline = line }

let parse_watch st ~line =
  expect st Lexer.LPAREN "(";
  let name = expect_ident st "watched tuple name" in
  expect st Lexer.RPAREN ")";
  expect st Lexer.DOT ".";
  Watch (name, line)

(* A statement starting with an identifier that is not a keyword:
   either "[name] [delete] head :- body." or a ground fact. *)
let parse_rule_or_fact st =
  let start_line = line st in
  let first = expect_ident st "rule name or predicate" in
  let rname, delete, pred =
    match (first, peek st) with
    | "delete", _ -> (None, true, expect_ident st "predicate after delete")
    | _, Lexer.IDENT "delete" ->
        advance st;
        (Some first, true, expect_ident st "predicate after delete")
    | _, Lexer.IDENT _ -> (Some first, false, expect_ident st "predicate")
    | _, (Lexer.AT | Lexer.LPAREN) -> (None, false, first)
    | _ -> fail st "expected rule head"
  in
  let head = parse_head st ~delete ~line:start_line pred in
  match peek st with
  | Lexer.IMPLIES ->
      advance st;
      let body = parse_body st in
      expect st Lexer.DOT ".";
      Rule { rname; rhead = head; rbody = body; rline = start_line }
  | Lexer.DOT when not delete && rname = None ->
      advance st;
      let values =
        List.map
          (function
            | Plain e -> const_eval st e
            | Agg _ -> fail st "facts cannot contain aggregates")
          (Plain head.hloc :: head.hfields)
      in
      Fact (head.hatom, values, start_line)
  | _ -> fail st "expected :- or ."

(* [%% allow CODE...] — the only pragma understood today. Codes look
   like diagnostic codes (E501, W51x); separators are spaces/commas. *)
let parse_pragma ~line text =
  let words =
    String.split_on_char ' ' (String.map (function ',' -> ' ' | c -> c) text)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | "allow" :: (_ :: _ as codes) ->
      let ok c =
        String.length c >= 2
        && (match c.[0] with 'E' | 'W' | 'H' -> true | _ -> false)
        && String.for_all
             (function '0' .. '9' | 'x' | 'X' -> true | _ -> false)
             (String.sub c 1 (String.length c - 1))
      in
      (match List.find_opt (fun c -> not (ok c)) codes with
      | Some bad ->
          raise
            (Error (Fmt.str "pragma allow: %s is not a diagnostic code" bad, line))
      | None -> Ast.Pragma (codes, line))
  | "allow" :: [] -> raise (Error ("pragma allow needs diagnostic codes", line))
  | w :: _ -> raise (Error (Fmt.str "unknown pragma %s (expected allow)" w, line))
  | [] -> raise (Error ("empty pragma", line))

let parse_statement st =
  let start_line = line st in
  match peek st with
  | Lexer.IDENT "materialize" when peek2 st = Lexer.LPAREN ->
      advance st;
      parse_materialize st ~line:start_line
  | Lexer.IDENT "watch" when peek2 st = Lexer.LPAREN ->
      advance st;
      parse_watch st ~line:start_line
  | Lexer.PRAGMA text ->
      advance st;
      parse_pragma ~line:start_line text
  | Lexer.IDENT _ -> parse_rule_or_fact st
  | _ -> fail st "expected statement"

let parse_program src =
  let st = make (Lexer.tokenize src) in
  let rec go acc =
    if peek st = Lexer.EOF then List.rev acc else go (parse_statement st :: acc)
  in
  go []

(** Parse, converting lexer errors into parser errors. *)
let parse src =
  try parse_program src with Lexer.Error (msg, line) -> raise (Error (msg, line))

let parse_exn = parse

let parse_result src =
  match parse src with
  | p -> Ok p
  | exception Error (msg, line) -> Error (Fmt.str "line %d: %s" line msg)
