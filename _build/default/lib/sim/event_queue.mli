(** Priority queue of timestamped events. Ties are broken by insertion
    order, keeping simulations deterministic and same-time deliveries
    on one channel FIFO. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Raises on NaN times. *)
val schedule : 'a t -> time:float -> 'a -> unit

val peek : 'a t -> (float * 'a) option
val pop : 'a t -> (float * 'a) option
