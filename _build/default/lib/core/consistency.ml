(** Proactive routing-consistency probes (paper §3.1.4).

    A probing node periodically picks a random key and asks each of its
    unique fingers to start a lookup for it. All responses are
    clustered by answer; the consistency metric is the size of the
    largest agreeing cluster divided by the number of lookups issued
    (1.0 = perfectly consistent). [consAlarm] fires below a threshold.

    Rules cs1–cs12, adapted to the 7-field [lookupResults] and with
    keys on the probe tables chosen so rows are actually distinguished
    (see DESIGN.md). *)

let program ?(t_probe = 40.) ?(t_tally = 20.) ?(window = 20.) ?(alarm_below = 0.5) ()
    =
  Fmt.str
    {|
materialize(conLookupTable, 100, 1000, keys(1,3)).
materialize(conRespTable, 100, 1000, keys(1,3)).
materialize(respCluster, 100, 1000, keys(1,2,3)).
materialize(maxCluster, 100, 1000, keys(1,2)).
materialize(lookupCluster, 100, 1000, keys(1,2)).

cs1 conProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, %g),
    K := f_randID(), T := f_now().
cs2 conLookup@NAddr(ProbeID, K, FAddr, ReqID, T) :- conProbe@NAddr(ProbeID, K, T),
    uniqueFinger@NAddr(FAddr, FID), ReqID := f_rand().
cs3 conLookupTable@NAddr(ProbeID, ReqID, T) :- conLookup@NAddr(ProbeID, K, FAddr, ReqID, T).
cs4 lookup@FAddr(K, NAddr, ReqID) :- conLookup@NAddr(ProbeID, K, FAddr, ReqID, T).
cs5 conRespTable@NAddr(ProbeID, ReqID, SAddr) :-
    lookupResults@NAddr(K, SID, SAddr, ReqID, Responder, SnapID),
    conLookupTable@NAddr(ProbeID, ReqID, T).
cs6 respCluster@NAddr(ProbeID, SAddr, count<*>) :-
    conRespTable@NAddr(ProbeID, ReqID, SAddr).
cs7 maxCluster@NAddr(ProbeID, max<Count>) :- respCluster@NAddr(ProbeID, SAddr, Count).
cs8 lookupCluster@NAddr(ProbeID, T, count<*>) :-
    conLookupTable@NAddr(ProbeID, ReqID, T).
cs9 consistency@NAddr(ProbeID, C) :- periodic@NAddr(E, %g),
    lookupCluster@NAddr(ProbeID, T, LookupCount), T < f_now() - %g,
    maxCluster@NAddr(ProbeID, RespCount),
    C := f_float(RespCount) / f_float(LookupCount).
/* cs10/cs11: flush all probe state after tallying. Unbound head
   variables are wildcards, so one pattern delete removes every row of
   the probe atomically — the paper's cs11 joined conLookupTable to
   name each row, which deletes rowwise and lets the cs8 aggregate
   observe half-deleted state. */
cs10 delete lookupCluster@NAddr(ProbeID, T, Count) :-
    consistency@NAddr(ProbeID, Consistency).
cs11 delete conLookupTable@NAddr(ProbeID, ReqID, T) :-
    consistency@NAddr(ProbeID, Consistency).
cs12 consAlarm@NAddr(ProbeID) :- consistency@NAddr(ProbeID, Cons), Cons < %g.
|}
    t_probe t_tally window alarm_below

type probe_result = { time : float; node : string; probe_id : int; value : float }

type collectors = {
  results : probe_result list ref;
  alarms : Alarms.collector;
}

(** Install the probe program on [addrs] (default: every node — the
    paper runs it on the measured node; the probe rate benchmarks of
    Fig. 6 install it on a single initiator). *)
let install ?addrs ?t_probe ?t_tally ?window ?alarm_below (net : Chord.network) =
  let engine = net.engine in
  let text = program ?t_probe ?t_tally ?window ?alarm_below () in
  let addrs = Option.value addrs ~default:net.addrs in
  List.iter (fun addr -> P2_runtime.Engine.install engine addr text) addrs;
  let results = ref [] in
  List.iter
    (fun addr ->
      P2_runtime.Engine.watch engine addr "consistency" (fun tuple ->
          match Overlog.Tuple.fields tuple with
          | [ _; Overlog.Value.VInt probe_id; v ] ->
              results :=
                {
                  time = P2_runtime.Engine.now engine;
                  node = addr;
                  probe_id;
                  value = Overlog.Value.as_float v;
                }
                :: !results
          | _ -> ()))
    addrs;
  { results; alarms = Alarms.collect ~addrs engine "consAlarm" }

let results c = List.rev !(c.results)

let mean_consistency c =
  match results c with
  | [] -> None
  | rs ->
      Some
        (List.fold_left (fun acc r -> acc +. r.value) 0. rs
        /. float_of_int (List.length rs))
