(** Soft-state tables implementing the paper's [materialize] semantics:

    - per-tuple maximum lifetime (tuples expire silently),
    - maximum table size with FIFO eviction of the oldest tuple,
    - primary keys: inserting a tuple whose key matches an existing row
      replaces it (refreshing its insertion time),
    - delta subscriptions: the runtime's planner registers callbacks to
      trigger delta rule strands on insertion and deletion.

    Time is supplied by the caller (the simulation clock), never read
    from the OS, so runs are deterministic. *)

open Overlog

type delta = Insert of Tuple.t | Delete of Tuple.t | Refresh of Tuple.t

type row = { tuple : Tuple.t; mutable inserted_at : float; mutable seq : int }

type t = {
  name : string;
  lifetime : float;
  max_size : int option;
  keys : int list;  (** 1-indexed field positions; [] = whole tuple *)
  rows : (string, row) Hashtbl.t;  (** key-string -> row *)
  mutable next_seq : int;
  mutable subscribers : (delta -> unit) list;
  mutable insert_count : int;
  mutable delete_count : int;
  mutable expire_count : int;
  mutable evict_count : int;
}

let create ?(lifetime = infinity) ?max_size ?(keys = []) name =
  {
    name;
    lifetime;
    max_size;
    keys;
    rows = Hashtbl.create 16;
    next_seq = 0;
    subscribers = [];
    insert_count = 0;
    delete_count = 0;
    expire_count = 0;
    evict_count = 0;
  }

let of_materialize (m : Ast.materialize) =
  create ~lifetime:m.mlifetime ?max_size:m.msize ~keys:m.mkeys m.mname

let name t = t.name
let keys t = t.keys

let key_string t tuple =
  let parts =
    match t.keys with
    | [] -> Tuple.fields tuple
    | ks -> Tuple.key_of tuple ks
  in
  String.concat "\x00" (List.map Value.canonical_key parts)

(* Subscribers run in subscription order (rule-install order), keeping
   delta-strand firing deterministic. *)
let subscribe t f = t.subscribers <- t.subscribers @ [ f ]

let notify t delta = List.iter (fun f -> f delta) t.subscribers

let is_expired t ~now row = now -. row.inserted_at > t.lifetime

(* Remove expired rows; call before reads so expiry is precise without
   a background sweeper. Removal is atomic with respect to delta
   notifications: subscribers (delta-triggered aggregates) must never
   observe a half-swept table, or they would recompute transient
   values from rows that are about to disappear. *)
let expire t ~now =
  if t.lifetime <> infinity then begin
    let dead =
      Hashtbl.fold
        (fun k row acc -> if is_expired t ~now row then (k, row) :: acc else acc)
        t.rows []
    in
    List.iter
      (fun (k, _) ->
        Hashtbl.remove t.rows k;
        t.expire_count <- t.expire_count + 1)
      dead;
    List.iter (fun (_, row) -> notify t (Delete row.tuple)) dead
  end

let size t ~now =
  expire t ~now;
  Hashtbl.length t.rows

(* Eviction victim: least recently inserted/refreshed (soft-state
   semantics: live state keeps getting refreshed and survives). *)
let oldest t =
  Hashtbl.fold
    (fun k row acc ->
      match acc with
      | Some (_, best)
        when best.inserted_at < row.inserted_at
             || (best.inserted_at = row.inserted_at && best.seq <= row.seq) ->
          acc
      | _ -> Some (k, row))
    t.rows None

type insert_result = Added | Replaced | Refreshed

(** Insert [tuple] at time [now]. Returns what happened. Triggers
    subscriber deltas for the insertion (and for any eviction). *)
let insert t ~now tuple =
  expire t ~now;
  let k = key_string t tuple in
  let result =
    match Hashtbl.find_opt t.rows k with
    | Some row when Tuple.equal_contents row.tuple tuple ->
        (* Same contents: refresh the soft state's lifetime only. *)
        row.inserted_at <- now;
        Refreshed
    | Some row ->
        Hashtbl.replace t.rows k
          { tuple; inserted_at = now; seq = row.seq };
        Replaced
    | None ->
        (match t.max_size with
        | Some cap when Hashtbl.length t.rows >= cap -> (
            match oldest t with
            | Some (ok, orow) ->
                Hashtbl.remove t.rows ok;
                t.evict_count <- t.evict_count + 1;
                notify t (Delete orow.tuple)
            | None -> ())
        | _ -> ());
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        Hashtbl.replace t.rows k { tuple; inserted_at = now; seq };
        Added
  in
  t.insert_count <- t.insert_count + 1;
  (match result with
  | Added | Replaced -> notify t (Insert tuple)
  | Refreshed -> notify t (Refresh tuple));
  result

(** Delete every row whose contents equal [tuple]'s key. *)
let delete t ~now tuple =
  expire t ~now;
  let k = key_string t tuple in
  match Hashtbl.find_opt t.rows k with
  | Some row ->
      Hashtbl.remove t.rows k;
      t.delete_count <- t.delete_count + 1;
      notify t (Delete row.tuple);
      true
  | None -> false

(** Delete all rows matching a predicate, atomically with respect to
    delta notifications (see [expire]). Returns removed tuples. *)
let delete_where t ~now pred =
  expire t ~now;
  let victims =
    Hashtbl.fold (fun k row acc -> if pred row.tuple then (k, row) :: acc else acc) t.rows []
  in
  List.iter
    (fun (k, _) ->
      Hashtbl.remove t.rows k;
      t.delete_count <- t.delete_count + 1)
    victims;
  List.iter (fun (_, row) -> notify t (Delete row.tuple)) victims;
  List.map (fun (_, row) -> row.tuple) victims

(** All live tuples, in insertion order (stable for tests). *)
let tuples t ~now =
  expire t ~now;
  Hashtbl.fold (fun _ row acc -> row :: acc) t.rows []
  |> List.sort (fun a b -> Stdlib.compare a.seq b.seq)
  |> List.map (fun row -> row.tuple)

let fold t ~now f init =
  List.fold_left f init (tuples t ~now)

let iter t ~now f = List.iter f (tuples t ~now)

let mem t ~now tuple =
  expire t ~now;
  match Hashtbl.find_opt t.rows (key_string t tuple) with
  | Some row -> Tuple.equal_contents row.tuple tuple
  | None -> false

let clear t =
  Hashtbl.reset t.rows

let bytes t ~now =
  fold t ~now (fun acc tu -> acc + Tuple.size_bytes tu) 0

type stats = {
  live : int;
  inserts : int;
  deletes : int;
  expirations : int;
  evictions : int;
}

let stats t ~now =
  {
    live = size t ~now;
    inserts = t.insert_count;
    deletes = t.delete_count;
    expirations = t.expire_count;
    evictions = t.evict_count;
  }
