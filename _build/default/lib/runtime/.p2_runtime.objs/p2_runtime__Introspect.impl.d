lib/runtime/introspect.ml: Engine List Node Overlog Sim Store Tuple Value
