(* Shard-count differential oracle for the multicore engine.

   The round/barrier loop promises bit-for-bit determinism: a seeded
   run must produce the identical simulation — every hard-state
   fixpoint, every message count — for every shard count >= 1,
   regardless of how many domains actually execute the rounds. These
   suites run the same seeded workloads at shards {1, 2, 4} and demand
   exact agreement, over:

   - the full embedded monitor corpus co-installed on a live Chord
     ring (the paper's deployment story);
   - a larger plain Chord ring, at the default quantum and at a
     deliberately coarse quantum (0.25 s windows force many events per
     round, stressing the canonical barrier replay);
   - a recursive transitive-closure program whose cross-shard deltas
     exercise the deferred-effect path.

   The sequential loop (shards = 0) interleaves same-window events
   differently and is deliberately not part of the exact-equality
   oracle; a separate case checks it still agrees on the structural
   ring fixpoint. *)

module Engine = P2_runtime.Engine
module Node = P2_runtime.Node
open Overlog

let shard_counts = [ 1; 2; 4 ]

(* Canonical fixpoint: per node, per hard-state table, the sorted
   multiset of tuple contents (soft state expires on schedule-free
   grounds either way, but under bit-for-bit determinism even its
   timing agrees — hard state keeps the oracle independent of the
   observation instant). *)
let fixpoint ?(only = fun _ -> true) engine =
  let now = Engine.now engine in
  List.concat_map
    (fun addr ->
      let cat = Node.catalog (Engine.node engine addr) in
      List.filter_map
        (fun tname ->
          let tbl = Store.Catalog.find_exn cat tname in
          if Store.Table.lifetime tbl = infinity && only tname then
            Some
              ( addr,
                tname,
                List.sort String.compare
                  (List.map Tuple.to_string (Store.Table.tuples tbl ~now)) )
          else None)
        (Store.Catalog.names cat))
    (Engine.addrs engine)

let pp_fixpoint ppf fp =
  List.iter
    (fun (addr, t, rows) ->
      Fmt.pf ppf "%s/%s: %a@." addr t Fmt.(list ~sep:(any "; ") string) rows)
    fp

let check_fixpoints_equal ~what a b =
  if a <> b then
    Alcotest.failf "%s: fixpoints differ@.--- first:@.%a--- second:@.%a" what
      pp_fixpoint a pp_fixpoint b

let messages engine =
  List.fold_left
    (fun acc addr -> acc + (Engine.snapshot_node engine addr).Engine.messages_tx)
    0 (Engine.addrs engine)

type arm = {
  shards : int;
  fp : (string * string * string list) list;
  msgs : int;
  events : int;
}

let check_arms_identical ~what = function
  | [] | [ _ ] -> ()
  | base :: rest ->
      List.iter
        (fun arm ->
          check_fixpoints_equal
            ~what:(Fmt.str "%s: shards=%d vs shards=%d" what base.shards arm.shards)
            base.fp arm.fp;
          Alcotest.(check int)
            (Fmt.str "%s: msgs shards=%d vs shards=%d" what base.shards arm.shards)
            base.msgs arm.msgs;
          Alcotest.(check int)
            (Fmt.str "%s: events shards=%d vs shards=%d" what base.shards
               arm.shards)
            base.events arm.events)
        rest

(* --- suite 1: the embedded monitor corpus on a live ring --- *)

let corpus_monitors () =
  List.concat_map
    (fun (name, libs, program) ->
      match name with
      | "chord" | "chord-buggy" | "chord-boot-facts" -> []
      | _ -> libs @ [ program ])
    Core.Registry.embedded

let run_corpus ~shards ~seed =
  let engine = Engine.create ~seed () in
  Engine.set_shards engine shards;
  let net = Chord.boot ~params:Chord.default_params engine 5 in
  Engine.run_until engine 90.;
  let seen = Hashtbl.create 8 in
  Hashtbl.add seen Core.Registry.chord ();
  List.iter
    (fun src ->
      if not (Hashtbl.mem seen src) then begin
        Hashtbl.add seen src ();
        Engine.install_all engine src
      end)
    (corpus_monitors ());
  Engine.run_until engine 240.;
  Alcotest.(check bool)
    (Fmt.str "seed %d shards=%d: ring correct" seed shards)
    true
    (Chord.ring_correct net);
  {
    shards;
    fp = fixpoint engine;
    msgs = messages engine;
    events = Engine.events_handled engine;
  }

let test_corpus_differential () =
  List.iter
    (fun seed ->
      let arms = List.map (fun n -> run_corpus ~shards:n ~seed) shard_counts in
      check_arms_identical ~what:(Fmt.str "monitor corpus seed %d" seed) arms)
    [ 3; 11 ]

(* --- suite 2: Chord rings, default and coarse quanta --- *)

let run_ring ?(sanitize = false) ~shards ~quantum ~seed ~n ~horizon () =
  let engine = Engine.create ~seed () in
  Engine.set_shards ~quantum engine shards;
  if sanitize then Engine.set_sanitize engine true;
  let net = Chord.boot ~params:Chord.default_params engine n in
  Engine.run_until engine horizon;
  Alcotest.(check bool)
    (Fmt.str "seed %d shards=%d quantum=%g: ring correct" seed shards quantum)
    true
    (Chord.ring_correct net);
  {
    shards;
    fp = fixpoint engine;
    msgs = messages engine;
    events = Engine.events_handled engine;
  }

let test_ring_differential () =
  let arms =
    List.map
      (fun n -> run_ring ~shards:n ~quantum:0.01 ~seed:42 ~n:10 ~horizon:150. ())
      shard_counts
  in
  check_arms_identical ~what:"chord ring, default quantum" arms

let test_ring_coarse_quantum () =
  (* 0.25 s windows are 25x the base latency: every round packs many
     deliveries and timers per shard, so the canonical barrier replay
     (not luck of small windows) must carry the determinism. *)
  let arms =
    List.map
      (fun n -> run_ring ~shards:n ~quantum:0.25 ~seed:7 ~n:10 ~horizon:150. ())
      shard_counts
  in
  check_arms_identical ~what:"chord ring, coarse quantum" arms

(* The sequential loop is a different interleaving, not a different
   program: it must still converge the same structural ring. *)
let structural = [ "node"; "landmark"; "bestSucc"; "pred"; "finger" ]

let test_ring_sequential_agrees_structurally () =
  let seq = run_ring ~shards:0 ~quantum:0.01 ~seed:42 ~n:10 ~horizon:150. () in
  let sh = run_ring ~shards:2 ~quantum:0.01 ~seed:42 ~n:10 ~horizon:150. () in
  let only (_, t, _) = List.mem t structural in
  check_fixpoints_equal ~what:"sequential vs sharded structural ring"
    (List.filter only seq.fp) (List.filter only sh.fp)

(* --- suite 3: recursive closure with cross-shard deltas --- *)

let tc_program =
  {|materialize(link, infinity, 1024, keys(1, 2)).
materialize(path, infinity, 65536, keys(1, 2)).
p1 path@T(S) :- link@S(T).
p2 path@T(S) :- link@M(T), path@M(S).|}

let run_tc ~shards ~seed ~n =
  let engine = Engine.create ~seed () in
  Engine.set_shards engine shards;
  Engine.set_seminaive engine true;
  let addr i = Fmt.str "n%d" i in
  for i = 0 to n - 1 do
    ignore (Engine.add_node engine (addr i))
  done;
  Engine.install_all engine tc_program;
  (* A Hamiltonian cycle plus cross chords, staggered so the engine
     sees genuine incremental deltas crossing shard boundaries. *)
  let edges =
    List.init n (fun i -> (addr i, addr ((i + 1) mod n)))
    @ List.init (n / 2) (fun i -> (addr i, addr ((i + (n / 2)) mod n)))
  in
  List.iteri
    (fun i (src, dst) ->
      Engine.at engine
        ~time:(1.0 +. (0.5 *. float_of_int i))
        (fun () -> ignore (Engine.inject engine src "link" [ Value.VAddr dst ])))
    edges;
  Engine.run_until engine (60. +. (0.5 *. float_of_int (List.length edges)));
  (* The closure must be total under every shard count. *)
  let fp = fixpoint engine in
  List.iter
    (fun (a, t, rows) ->
      if t = "path" then
        Alcotest.(check int)
          (Fmt.str "shards=%d: |path| at %s" shards a)
          n (List.length rows))
    fp;
  { shards; fp; msgs = messages engine; events = Engine.events_handled engine }

let test_tc_differential () =
  List.iter
    (fun seed ->
      let arms = List.map (fun s -> run_tc ~shards:s ~seed ~n:6) shard_counts in
      check_arms_identical ~what:(Fmt.str "closure seed %d" seed) arms)
    [ 1; 2 ]

(* --- suite 4: the effect-discipline sanitizer --- *)

(* The sanitizer promises to be purely a checking layer: with no
   violation planted, a sanitized run is bit-for-bit the same
   simulation as an unsanitized one, at every shard count. *)
let test_sanitize_identity () =
  let off = run_ring ~shards:2 ~quantum:0.01 ~seed:42 ~n:10 ~horizon:150. () in
  let on =
    List.map
      (fun s ->
        run_ring ~sanitize:true ~shards:s ~quantum:0.01 ~seed:42 ~n:10
          ~horizon:150. ())
      shard_counts
  in
  check_arms_identical ~what:"sanitizer on, shards 1/2/4" on;
  let on2 = List.nth on 1 in
  check_fixpoints_equal ~what:"sanitizer on vs off, shards=2" off.fp on2.fp;
  Alcotest.(check int) "msgs: sanitizer on vs off" off.msgs on2.msgs;
  Alcotest.(check int) "events: sanitizer on vs off" off.events on2.events

(* Plant a genuine violation: an owned callback — running inside its
   owner's shard during the parallel phase — pushes a packet straight
   onto the network instead of deferring the send to the barrier. The
   guard must identify the site and the event being drained, and the
   exception must surface out of [run_until] through the domain pool. *)
let test_sanitizer_catches_direct_send () =
  let engine = Engine.create ~seed:5 () in
  Engine.set_shards engine 2;
  Engine.set_sanitize engine true;
  for i = 0 to 3 do
    ignore (Engine.add_node engine (Fmt.str "n%d" i))
  done;
  Engine.at_owned engine ~owner:"n0" ~time:1.0 (fun () ->
      Engine.unsafe_direct_send engine ~src:"n0" ~dst:"n1" "rogue-packet");
  match Engine.run_until engine 5.0 with
  | () -> Alcotest.fail "direct off-barrier send was not caught"
  | exception Engine.Discipline_violation { site; seq } ->
      Alcotest.(check string) "guarded site" "Engine.raw_send_now" site;
      Alcotest.(check bool) "offending event seq identified" true (seq >= 0)

(* The same rogue callback is legal outside a parallel round: in the
   sequential loop there is no barrier to bypass, so the sanitizer must
   stay quiet (no false positives). *)
let test_sanitizer_quiet_sequential () =
  let engine = Engine.create ~seed:5 () in
  Engine.set_sanitize engine true;
  for i = 0 to 3 do
    ignore (Engine.add_node engine (Fmt.str "n%d" i))
  done;
  (* drop the rogue packet at the network: it is not Wire-encoded, and
     only the sanitizer's reaction (none, here) is under test *)
  Engine.cut_link engine ~src:"n0" ~dst:"n1";
  Engine.at_owned engine ~owner:"n0" ~time:1.0 (fun () ->
      Engine.unsafe_direct_send engine ~src:"n0" ~dst:"n1" "rogue-packet");
  Engine.run_until engine 5.0

let () =
  Alcotest.run "sharding"
    [
      ( "corpus",
        [
          Alcotest.test_case "monitor corpus identical at shards 1/2/4" `Slow
            test_corpus_differential;
        ] );
      ( "ring",
        [
          Alcotest.test_case "chord ring identical at shards 1/2/4" `Slow
            test_ring_differential;
          Alcotest.test_case "coarse quantum identical at shards 1/2/4" `Slow
            test_ring_coarse_quantum;
          Alcotest.test_case "sequential loop agrees structurally" `Slow
            test_ring_sequential_agrees_structurally;
        ] );
      ( "closure",
        [
          Alcotest.test_case "recursive closure identical at shards 1/2/4"
            `Quick test_tc_differential;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "sanitized run bit-identical at shards 1/2/4"
            `Slow test_sanitize_identity;
          Alcotest.test_case "direct off-barrier send raises" `Quick
            test_sanitizer_catches_direct_send;
          Alcotest.test_case "no false positive in the sequential loop" `Quick
            test_sanitizer_quiet_sequential;
        ] );
    ]
