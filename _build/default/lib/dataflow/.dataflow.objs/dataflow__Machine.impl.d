lib/dataflow/machine.ml: Array Ast Eval Hashtbl List Option Overlog Sim Strand String Tracer Tuple Value
