lib/sim/metrics.mli:
