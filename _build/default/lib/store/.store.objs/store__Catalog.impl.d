lib/store/catalog.ml: Fmt Hashtbl List Table
