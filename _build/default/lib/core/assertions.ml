(** Simple local state assertions (the easy end of the paper's
    spectrum: "tools that range from simple, local state assertions to
    sophisticated global property detectors").

    Each assertion is a single periodic rule over local tables using
    negation: it fires an [assertFailed] alarm when an internal
    cross-table invariant of P2 Chord does not hold. On a correct
    implementation these never fire, so they can be left installed
    permanently as on-line regression tests (§1.3). *)

(** The invariants:
    - a1: the best successor is recorded in the successor table;
    - a2: a non-empty predecessor is being monitored for liveness;
    - a3: the best successor is being monitored for liveness;
    - a4: finger position 0 agrees with the best successor;
    - a5: every monitored neighbor has a liveness timestamp (otherwise
      the failure detector could never declare it faulty). *)
let program ?(period = 10.) () =
  Fmt.str
    {|
a1 assertFailed@NAddr("bestSucc-not-in-succ", SAddr) :- periodic@NAddr(E, %g),
   bestSucc@NAddr(SID, SAddr), SAddr != NAddr, !succ@NAddr(SID, SAddr).
a2 assertFailed@NAddr("pred-not-pinged", PAddr) :- periodic@NAddr(E, %g),
   pred@NAddr(PID, PAddr), PAddr != "-", PAddr != NAddr, !pingNode@NAddr(PAddr).
a3 assertFailed@NAddr("succ-not-pinged", SAddr) :- periodic@NAddr(E, %g),
   bestSucc@NAddr(SID, SAddr), SAddr != NAddr, !pingNode@NAddr(SAddr).
a4 assertFailed@NAddr("finger0-stale", FAddr) :- periodic@NAddr(E, %g),
   finger@NAddr(0, FID, FAddr), bestSucc@NAddr(SID, SAddr), FAddr != SAddr.
a5 assertFailed@NAddr("pinged-but-untracked", RAddr) :- periodic@NAddr(E, %g),
   pingNode@NAddr(RAddr), !lastSeen@NAddr(RAddr, _).
|}
    period period period period period

let install ?period (net : Chord.network) =
  P2_runtime.Engine.install_all net.engine (program ?period ());
  Alarms.collect net.engine "assertFailed"
