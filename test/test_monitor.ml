(* The §3.1 monitoring toolkit over Chord: ring checks, ID ordering,
   oscillation detection, consistency probes. Each detector must stay
   silent on a healthy ring and fire under the fault it targets. *)

open Overlog

let boot ?(seed = 11) ?(n = 8) ?(settle = 120.) ?params () =
  let engine = P2_runtime.Engine.create ~seed ~trace:false () in
  let net = Chord.boot ?params engine n in
  P2_runtime.Engine.run_for engine settle;
  (engine, net)

(* --- §3.1.1 ring checks --- *)

let test_ring_check_silent_when_healthy () =
  let engine, net = boot () in
  let alarms = Core.Ring_check.install ~active:true ~t_probe:5. net in
  P2_runtime.Engine.run_for engine 60.;
  Alcotest.(check int) "no pred alarms on healthy ring" 0
    (Core.Alarms.count alarms.pred_alarms);
  Alcotest.(check int) "no succ alarms on healthy ring" 0
    (Core.Alarms.count alarms.succ_alarms);
  ignore engine

let test_ring_check_fires_on_partition () =
  let engine, net = boot ~seed:7 () in
  let alarms = Core.Ring_check.install ~active:true ~t_probe:5. net in
  P2_runtime.Engine.run_for engine 30.;
  Core.Alarms.clear alarms.pred_alarms;
  Core.Alarms.clear alarms.succ_alarms;
  (* one-way partition between a node and its successor: a drops s
     from its routing state (pings time out) and adopts the next
     successor s2 — but s remains s2's true predecessor, so a's
     successor-side probe keeps seeing pred(s2) != a *)
  let a = List.hd net.addrs in
  (match Chord.best_succ net a with
  | Some (_, s) -> P2_runtime.Engine.cut_link engine ~src:a ~dst:s
  | None -> Alcotest.fail "no successor");
  P2_runtime.Engine.run_for engine 90.;
  Alcotest.(check bool) "inconsistentSucc raised" true
    (Core.Alarms.count alarms.succ_alarms > 0)

let test_passive_check_detects () =
  (* passive rp4 fires while the ring is still converging (stabilize
     requests from nodes that are not yet the receiver's pred) *)
  let engine = P2_runtime.Engine.create ~seed:21 () in
  let net = Chord.boot engine 8 in
  P2_runtime.Engine.install_all engine Core.Ring_check.passive_program;
  let alarms = Core.Alarms.collect engine "inconsistentPred" in
  P2_runtime.Engine.run_for engine 40.;
  Alcotest.(check bool) "transient inconsistencies seen during join" true
    (Core.Alarms.count alarms > 0);
  ignore net

(* --- §3.1.2 ordering --- *)

let test_traversal_ok_on_healthy_ring () =
  let engine, net = boot () in
  let _closer, problems, ok = Core.Ordering.install ~opportunistic:false net in
  Core.Ordering.start_traversal net ~addr:net.landmark ~token:1;
  P2_runtime.Engine.run_for engine 10.;
  Alcotest.(check int) "no ordering problem" 0 (Core.Alarms.count problems);
  Alcotest.(check int) "traversal completed with 1 wrap" 1 (Core.Alarms.count ok)

let test_traversal_detects_bad_ordering () =
  let engine, net = boot ~seed:5 () in
  let _closer, problems, _ok = Core.Ordering.install ~opportunistic:false net in
  (* corrupt three nodes' bestSucc pointers into a short cycle that
     visits IDs non-monotonically: src -> s3 -> s1 -> src descends
     twice, so the traversal returns to its origin with 2 wraps *)
  let src = net.landmark in
  let by_dist =
    List.filter (fun a -> a <> src) net.addrs
    |> List.sort (fun a b ->
           compare
             (Overlog.Value.Ring.distance (Chord.id_of_addr src) (Chord.id_of_addr a))
             (Overlog.Value.Ring.distance (Chord.id_of_addr src) (Chord.id_of_addr b)))
  in
  let s1 = List.nth by_dist 0 and s3 = List.nth by_dist 2 in
  let corrupt node target =
    P2_runtime.Engine.install engine node
      (Fmt.str "corrupt%s bestSucc@N(I, A2) :- corruptEv@N(I, A2)." node);
    ignore @@ P2_runtime.Engine.inject engine node "corruptEv"
      [ Value.VId (Chord.id_of_addr target); Value.VAddr target ]
  in
  corrupt src s3;
  corrupt s3 s1;
  corrupt s1 src;
  Core.Ordering.start_traversal net ~addr:src ~token:2;
  P2_runtime.Engine.run_for engine 2.;
  Alcotest.(check bool) "ordering problem detected" true
    (Core.Alarms.count problems > 0)

let test_multiple_concurrent_traversals () =
  let engine, net = boot () in
  let _closer, problems, ok = Core.Ordering.install ~opportunistic:false net in
  List.iteri
    (fun i addr -> Core.Ordering.start_traversal net ~addr ~token:(100 + i))
    net.addrs;
  P2_runtime.Engine.run_for engine 10.;
  Alcotest.(check int) "all traversals complete" (List.length net.addrs)
    (Core.Alarms.count ok);
  Alcotest.(check int) "no false alarms" 0 (Core.Alarms.count problems)

(* --- §3.1.3 oscillation --- *)

(* Flap a node: alive/dead cycles, the "transient connectivity
   disruptions" of §3.1.3. Each revival re-propagates the node through
   gossip while neighbors still remember it as recently deceased. *)
let flap engine victim ~start ~down ~up ~cycles =
  for i = 0 to cycles - 1 do
    let t0 = start +. (float_of_int i *. (down +. up)) in
    P2_runtime.Engine.at engine ~time:t0 (fun () ->
        P2_runtime.Engine.crash engine victim);
    P2_runtime.Engine.at engine ~time:(t0 +. down) (fun () ->
        P2_runtime.Engine.recover engine victim)
  done

let test_oscillation_detected () =
  (* kill a node but let gossip keep recycling it: the faulty node is
     re-learned from neighbors' successor lists, triggering os1/os2 *)
  let engine, net = boot ~seed:9 ~n:8 ~settle:150. () in
  let det = Core.Oscillation.install ~period:30. ~threshold:2 net in
  let victim = List.nth net.addrs 4 in
  P2_runtime.Engine.crash engine victim;
  P2_runtime.Engine.run_for engine 300.;
  Alcotest.(check bool) "single oscillations observed" true
    (Core.Alarms.count det.oscill > 0);
  (* every oscillation alarm names the crashed node *)
  List.iter
    (fun a ->
      Alcotest.(check bool) "oscillator is the victim" true
        (Value.equal (Tuple.field a.Core.Alarms.tuple 2) (Value.VAddr victim)))
    (Core.Alarms.alarms det.oscill)

let test_oscillation_silent_when_healthy () =
  let engine, net = boot ~seed:9 () in
  let det = Core.Oscillation.install net in
  P2_runtime.Engine.run_for engine 120.;
  Alcotest.(check int) "no oscillations" 0 (Core.Alarms.count det.oscill);
  Alcotest.(check int) "no repeat oscillators" 0 (Core.Alarms.count det.repeat);
  ignore engine

let test_repeat_oscillation_threshold () =
  (* the paper's target bug: the *incorrect* Chord variant that does
     not remember deceased neighbors keeps oscillating a flapping
     node in and out of the routing state *)
  let engine, net =
    boot ~seed:9 ~n:8 ~settle:150. ~params:Chord.buggy_params ()
  in
  let det = Core.Oscillation.install ~period:20. ~threshold:2 net in
  let victim = List.nth net.addrs 4 in
  flap engine victim
    ~start:(P2_runtime.Engine.now engine)
    ~down:20. ~up:15. ~cycles:8;
  P2_runtime.Engine.run_for engine 350.;
  Alcotest.(check bool) "oscillations observed" true
    (Core.Alarms.count det.oscill > 0);
  Alcotest.(check bool) "repeat oscillator flagged" true
    (Core.Alarms.count det.repeat > 0)

let test_chaotic_collaborative_detection () =
  let engine, net =
    boot ~seed:17 ~n:8 ~settle:150. ~params:Chord.buggy_params ()
  in
  let det =
    Core.Oscillation.install ~period:15. ~threshold:2 ~chaotic_threshold:2 net
  in
  let victim = List.nth net.addrs 4 in
  flap engine victim
    ~start:(P2_runtime.Engine.now engine)
    ~down:20. ~up:15. ~cycles:16;
  P2_runtime.Engine.run_for engine 600.;
  Alcotest.(check bool) "chaotic node proclaimed" true
    (Core.Alarms.count det.chaotic > 0);
  List.iter
    (fun a ->
      Alcotest.(check bool) "chaotic names the victim" true
        (Value.equal (Tuple.field a.Core.Alarms.tuple 2) (Value.VAddr victim)))
    (Core.Alarms.alarms det.chaotic)

(* --- local state assertions (negation-based invariants) --- *)

let test_assertions_silent_when_healthy () =
  let engine, net = boot ~seed:11 () in
  let alarms = Core.Assertions.install net in
  P2_runtime.Engine.run_for engine 200.;
  Alcotest.(check int) "no assertion failures" 0 (Core.Alarms.count alarms);
  ignore engine

let test_assertions_fire_on_corruption () =
  let engine, net = boot ~seed:11 () in
  let alarms = Core.Assertions.install net in
  (* break a4: force finger(0) to disagree with bestSucc *)
  let a = List.nth net.addrs 2 in
  let bs = Option.map snd (Chord.best_succ net a) in
  let other =
    List.find (fun x -> x <> a && Some x <> bs) net.addrs
  in
  P2_runtime.Engine.install engine a
    "corruptf finger@N(0, I, A2) :- corruptEv@N(I, A2).";
  ignore @@ P2_runtime.Engine.inject engine a "corruptEv"
    [ Value.VId (Chord.id_of_addr other); Value.VAddr other ];
  P2_runtime.Engine.run_for engine 15.;
  Alcotest.(check bool) "finger0-stale raised" true
    (List.exists
       (fun al ->
         Value.equal (Tuple.field al.Core.Alarms.tuple 2)
           (Value.VStr "finger0-stale"))
       (Core.Alarms.alarms alarms))

(* --- §3.1.4 consistency probes --- *)

let test_consistency_probe_healthy () =
  let engine, net = boot ~seed:11 ~n:8 ~settle:150. () in
  let probe =
    Core.Consistency.install ~addrs:[ net.landmark ] ~t_probe:30. ~t_tally:10.
      ~window:10. net
  in
  P2_runtime.Engine.run_for engine 120.;
  (match Core.Consistency.mean_consistency probe with
  | Some m ->
      Alcotest.(check bool) (Fmt.str "high consistency (got %f)" m) true (m >= 0.9)
  | None -> Alcotest.fail "no consistency results");
  Alcotest.(check int) "no alarms" 0 (Core.Alarms.count probe.alarms)

let test_consistency_probe_cleans_up () =
  (* cs10/cs11 delete probe state after tallying *)
  let engine, net = boot ~seed:11 ~n:8 ~settle:150. () in
  let _probe =
    Core.Consistency.install ~addrs:[ net.landmark ] ~t_probe:30. ~t_tally:10.
      ~window:10. net
  in
  P2_runtime.Engine.run_for engine 200.;
  let node = P2_runtime.Engine.node engine net.landmark in
  let size name =
    match Store.Catalog.find (P2_runtime.Node.catalog node) name with
    | Some t -> Store.Table.size t ~now:(P2_runtime.Engine.now engine)
    | None -> 0
  in
  (* lookupCluster rows for tallied probes are deleted; at most the
     in-flight probe remains *)
  Alcotest.(check bool) "lookupCluster bounded" true (size "lookupCluster" <= 2);
  Alcotest.(check bool) "conLookupTable bounded" true (size "conLookupTable" <= 20)

let test_consistency_probe_detects_partition () =
  let engine, net = boot ~seed:13 ~n:8 ~settle:150. () in
  let probe =
    Core.Consistency.install ~addrs:[ net.landmark ] ~t_probe:10. ~t_tally:10.
      ~window:10. ~alarm_below:0.95 net
  in
  P2_runtime.Engine.run_for engine 60.;
  (* crash one of the prober's unique fingers: the next probe's
     lookup to that finger dies, thinning the response cluster *)
  let node = P2_runtime.Engine.node engine net.landmark in
  let fingers =
    match Store.Catalog.find (P2_runtime.Node.catalog node) "uniqueFinger" with
    | Some t ->
        Store.Table.tuples t ~now:(P2_runtime.Engine.now engine)
        |> List.map (fun tu -> Value.as_addr (Tuple.field tu 2))
        |> List.filter (fun a -> a <> net.landmark)
    | None -> []
  in
  let victim =
    match fingers with f :: _ -> f | [] -> Alcotest.fail "no fingers"
  in
  P2_runtime.Engine.crash engine victim;
  P2_runtime.Engine.run_for engine 100.;
  let late =
    List.filter
      (fun r -> r.Core.Consistency.value < 1.0)
      (Core.Consistency.results probe)
  in
  Alcotest.(check bool) "some probes below 1.0 after crash" true
    (List.length late > 0)

let () =
  Alcotest.run "monitor"
    [
      ( "ring checks",
        [
          Alcotest.test_case "silent healthy" `Slow test_ring_check_silent_when_healthy;
          Alcotest.test_case "fires on partition" `Slow test_ring_check_fires_on_partition;
          Alcotest.test_case "passive detects" `Slow test_passive_check_detects;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "traversal ok" `Slow test_traversal_ok_on_healthy_ring;
          Alcotest.test_case "detects corruption" `Slow test_traversal_detects_bad_ordering;
          Alcotest.test_case "concurrent traversals" `Slow test_multiple_concurrent_traversals;
        ] );
      ( "oscillation",
        [
          Alcotest.test_case "detected on crash" `Slow test_oscillation_detected;
          Alcotest.test_case "silent healthy" `Slow test_oscillation_silent_when_healthy;
          Alcotest.test_case "repeat threshold" `Slow test_repeat_oscillation_threshold;
          Alcotest.test_case "chaotic collaborative" `Slow test_chaotic_collaborative_detection;
        ] );
      ( "assertions",
        [
          Alcotest.test_case "silent healthy" `Slow test_assertions_silent_when_healthy;
          Alcotest.test_case "fires on corruption" `Slow test_assertions_fire_on_corruption;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "healthy ~1.0" `Slow test_consistency_probe_healthy;
          Alcotest.test_case "state cleanup" `Slow test_consistency_probe_cleans_up;
          Alcotest.test_case "detects crash" `Slow test_consistency_probe_detects_partition;
        ] );
    ]
