(** A small persistent domain pool for the sharded engine.

    Workers are OCaml 5 domains, spawned lazily on first use and shared
    process-wide: engines come and go by the hundred in tests, and
    domains are a scarce resource (the runtime recommends staying near
    the core count), so the pool must outlive any one engine. Shard 0
    always runs on the calling domain; a machine with fewer cores than
    shards simply runs several shard jobs per worker — job-to-worker
    placement never affects results, only wall-clock, because shard
    effects are replayed in a canonical order at the engine's barrier
    (see DESIGN.md §13). *)

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable finished : bool;
  mutable failure : exn option;
  mutable stop : bool;
  mutable domain : unit Domain.t option;
}

let workers : worker list ref = ref []

(* Leave one slot for the calling domain, and never exceed what the
   runtime thinks the hardware supports. *)
let max_workers = max 0 (min 7 (Domain.recommended_domain_count () - 1))

let worker_loop w =
  let rec loop () =
    Mutex.lock w.mutex;
    while w.job = None && not w.stop do
      Condition.wait w.cond w.mutex
    done;
    match w.job with
    | Some f ->
        Mutex.unlock w.mutex;
        (try f () with e -> w.failure <- Some e);
        Mutex.lock w.mutex;
        w.job <- None;
        w.finished <- true;
        Condition.signal w.cond;
        Mutex.unlock w.mutex;
        loop ()
    | None -> Mutex.unlock w.mutex (* stop *)
  in
  loop ()

let shutdown () =
  List.iter
    (fun w ->
      Mutex.lock w.mutex;
      w.stop <- true;
      Condition.signal w.cond;
      Mutex.unlock w.mutex;
      match w.domain with
      | Some d ->
          Domain.join d;
          w.domain <- None
      | None -> ())
    !workers;
  workers := []

let spawned_atexit = ref false

let spawn () =
  let w =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      finished = true;
      failure = None;
      stop = false;
      domain = None;
    }
  in
  w.domain <- Some (Domain.spawn (fun () -> worker_loop w));
  if not !spawned_atexit then begin
    spawned_atexit := true;
    (* Blocked workers must be joined before runtime teardown. *)
    at_exit shutdown
  end;
  w

let ensure n =
  let n = min n max_workers in
  while List.length !workers < n do
    workers := spawn () :: !workers
  done

(** Run every job; [jobs.(0)] runs on the calling domain, the rest are
    spread over the pool (several per worker when jobs outnumber
    cores). Returns when all jobs finished. Failures land in per-job
    slots — each written by exactly one domain — and the lowest-index
    one is re-raised with its backtrace after every worker has
    quiesced, so which failure surfaces never depends on worker
    timing or job-to-worker placement. *)
let run (jobs : (unit -> unit) array) =
  let n = Array.length jobs in
  if n = 1 then jobs.(0) ()
  else if n > 1 then begin
    ensure (n - 1);
    let ws = Array.of_list !workers in
    let k = min (Array.length ws) (n - 1) in
    let failures = Array.make n None in
    let exec i =
      try jobs.(i) ()
      with e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    if k = 0 then
      for i = 0 to n - 1 do
        exec i
      done
    else begin
      for j = 0 to k - 1 do
        let w = ws.(j) in
        let task () =
          let i = ref (1 + j) in
          while !i < n do
            exec !i;
            i := !i + k
          done
        in
        Mutex.lock w.mutex;
        w.finished <- false;
        w.failure <- None;
        w.job <- Some task;
        Condition.signal w.cond;
        Mutex.unlock w.mutex
      done;
      exec 0;
      for j = 0 to k - 1 do
        let w = ws.(j) in
        Mutex.lock w.mutex;
        while not w.finished do
          Condition.wait w.cond w.mutex
        done;
        w.failure <- None;
        Mutex.unlock w.mutex
      done
    end;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      failures
  end

(** Number of live pool workers (for diagnostics and the bench). *)
let size () = List.length !workers
