(** Per-node metric accounting.

    The paper measures wall-clock CPU utilization, process memory,
    message counts and live tuples. In the simulator, CPU is replaced
    by deterministic *work units*: every dataflow element invocation,
    table operation and tracer action charges a small calibrated cost
    (see DESIGN.md §3). CPU%% is then work-units per simulated second
    divided by a per-node budget, calibrated so baseline Chord sits
    near the paper's ~1%%. *)

type t = {
  mutable work : float;           (* accumulated work units *)
  mutable messages_tx : int;
  mutable messages_rx : int;
  mutable bytes_tx : int;
  mutable bytes_rx : int;
  mutable tuples_created : int;
  mutable rule_executions : int;
  mutable samples : (float * int * int) list;
      (* (time, live tuples, live bytes), newest first *)
}

let create () =
  {
    work = 0.;
    messages_tx = 0;
    messages_rx = 0;
    bytes_tx = 0;
    bytes_rx = 0;
    tuples_created = 0;
    rule_executions = 0;
    samples = [];
  }

(* Work-unit costs, in microseconds of notional CPU. The absolute
   values only set the scale of the CPU% proxy; relative values follow
   the cost ordering the paper observes (state lookups cost more than
   private timers, Fig. 4 vs Fig. 5). *)
module Cost = struct
  let element = 2.0       (* any dataflow element invocation *)
  let table_lookup = 5.0  (* join probe into a table *)
  let table_insert = 4.0
  let timer = 1.0
  let marshal = 20.0      (* per network message: dominated by
                             serialization + syscall in real P2 *)
  let tracer_tap = 1.5    (* per tap event when tracing is on *)
  let eval = 0.5          (* per expression evaluation *)
end

(* Notional budget: work units one node can absorb per second at 100%
   utilization. Calibrated so a baseline Chord node sits near the
   paper's ~1% CPU and 250 trivial periodic rules add ~3.5% (Fig. 4). *)
let budget_units_per_second = 43_000.

let charge t cost = t.work <- t.work +. cost

let message_tx t ~bytes =
  t.messages_tx <- t.messages_tx + 1;
  t.bytes_tx <- t.bytes_tx + bytes;
  charge t Cost.marshal

let message_rx ?(bytes = 0) t =
  t.messages_rx <- t.messages_rx + 1;
  t.bytes_rx <- t.bytes_rx + bytes;
  charge t Cost.marshal

let tuple_created t = t.tuples_created <- t.tuples_created + 1
let rule_executed t = t.rule_executions <- t.rule_executions + 1

let sample t ~now ~live_tuples ~live_bytes =
  t.samples <- (now, live_tuples, live_bytes) :: t.samples

(** CPU utilization proxy over a window [t0, t1): fraction of the
    notional budget consumed. [work_at] snapshots should bracket the
    window. *)
let cpu_percent ~work ~seconds =
  if seconds <= 0. then 0.
  else work /. (seconds *. budget_units_per_second) *. 100.

(** Memory proxy in MB: a fixed process baseline plus live tuple bytes
    with a constant per-tuple bookkeeping overhead. Calibrated against
    the paper: baseline Chord ≈ 8 MB, and Fig. 6's memory-vs-live-
    tuples slope ≈ 4 KiB per live tuple (their C++ tuples amortize
    table, index and queue bookkeeping). *)
let memory_mb ~live_tuples ~live_bytes =
  let baseline = 7.5e6 in
  let overhead_per_tuple = 4096 in
  (baseline +. float_of_int (live_bytes + (overhead_per_tuple * live_tuples)))
  /. 1.0e6

let work t = t.work
let messages_tx t = t.messages_tx
let messages_rx t = t.messages_rx
let bytes_tx t = t.bytes_tx
let bytes_rx t = t.bytes_rx
let tuples_created t = t.tuples_created
let rule_executions t = t.rule_executions
let samples t = List.rev t.samples

let mean xs =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.) xs))
