(** Per-node catalog of materialized tables.

    A predicate is a table iff it appears here; everything else is an
    event stream (transient tuples). *)

type t = {
  tables : (string, Table.t) Hashtbl.t;
  mutable names_cache : string list option;
      (* sorted; rebuilt on the first [names] after an [add] rather
         than re-sorting on every call *)
}

let create () = { tables = Hashtbl.create 16; names_cache = None }

let add t table =
  let name = Table.name table in
  if Hashtbl.mem t.tables name then
    invalid_arg (Fmt.str "Catalog.add: table %s already materialized" name);
  Hashtbl.replace t.tables name table;
  t.names_cache <- None

let find t name = Hashtbl.find_opt t.tables name

let find_exn t name =
  match find t name with
  | Some table -> table
  | None -> invalid_arg (Fmt.str "Catalog.find_exn: no table %s" name)

let is_table t name = Hashtbl.mem t.tables name

let names t =
  match t.names_cache with
  | Some ns -> ns
  | None ->
      let ns =
        Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort compare
      in
      t.names_cache <- Some ns;
      ns

let iter t f = List.iter (fun n -> f (find_exn t n)) (names t)

let total_live t ~now =
  Hashtbl.fold (fun _ table acc -> acc + Table.size table ~now) t.tables 0

let total_bytes t ~now =
  Hashtbl.fold (fun _ table acc -> acc + Table.bytes table ~now) t.tables 0
