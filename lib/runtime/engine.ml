(** The distributed engine: hosts N P2 nodes on a simulated network
    (DESIGN.md §3 substitution for the paper's 21-process testbed).

    Responsibilities: the virtual clock, message delivery with FIFO
    channels, periodic-rule timers, fault injection, periodic metric
    sampling, and on-line program installation. *)

open Overlog

type event =
  | Deliver of { dst : string; inc : int; src : string; packet : string }
      (* packet: the Wire-encoded message, decoded at delivery — every
         cross-node tuple really round-trips through the codec. [inc]
         is the destination's incarnation at send time: a restart bumps
         it, so packets in flight toward the previous incarnation are
         dropped instead of aliasing into the fresh channel's sequence
         space *)
  | Timer of { addr : string; inc : int; req : Node.timer_request }
  | Sample of { addr : string; inc : int }
  | Callback of (unit -> unit)
      (* host-scheduled ([Engine.at]): may touch any node or the
         network tables, so in sharded mode it runs alone, sequentially,
         between rounds *)
  | Owned_callback of { owner : string; f : unit -> unit }
      (* transport-scheduled (retransmit, delayed ack, batching flush,
         heartbeat): confined to one node's state, so a sharded run may
         execute it inside [owner]'s shard *)

(* Every event handled during a parallel round defers its cross-cutting
   effects — network sends, event scheduling, in-flight accounting —
   into its shard's log instead of applying them. The barrier replays
   all logs sorted by (causing event's queue seq, per-event effect
   index): a total order that depends only on the event queue contents,
   never on the shard count or on worker timing, which is what makes
   seeded sharded runs reproduce bit-for-bit (DESIGN.md §13). *)
type effect_ =
  | Eff_send of { src : string; dst : string; at : float; packet : string }
  | Eff_schedule of { at : float; ev : event }
  | Eff_inflight of { src : string; dst : string; d : int }

type shard = {
  mutable log : (int * int * effect_) list;  (* (event seq, idx, eff), newest first *)
  mutable cur_seq : int;   (* queue seq of the event being handled *)
  mutable cur_idx : int;   (* per-event effect counter *)
  mutable snow : float;    (* virtual now seen by this shard's nodes mid-round *)
  mutable handled : int;   (* events handled by this shard *)
  mutable busy_ns : float; (* wall time spent executing events *)
}

(** Raised (with the sanitizer on) when code running inside a shard
    drain mutates barrier-owned state directly — scheduling, a raw
    network send, in-flight accounting, an engine-RNG draw, membership
    change — instead of deferring the effect. [seq] is the queue seq of
    the event being drained (-1 when it could not be identified). *)
exception Discipline_violation of { site : string; seq : int }

let () =
  Printexc.register_printer (function
    | Discipline_violation { site; seq } ->
        Some
          (Fmt.str
             "Engine.Discipline_violation: %s called directly while draining \
              event seq %d; cross-shard effects must be deferred to the barrier"
             site seq)
    | _ -> None)

(* The queue seq of the event the current domain is draining; -1
   outside a drain. Domain-local so concurrent shards don't race. *)
let draining_seq = Domain.DLS.new_key (fun () -> ref (-1))

type sharding = {
  n : int;
  quantum : float;
      (* width of the tick window: owned events within [t0, t0+quantum]
         form one parallel round *)
  shards : shard array;
  mutable in_round : bool;
  mutable rounds : int;
  mutable parallel_ns : float;  (* wall time across all parallel phases *)
}

type t = {
  rng : Sim.Rng.t;
  network : Sim.Network.t;
  queue : event Sim.Event_queue.t;
  nodes : (string, Node.t) Hashtbl.t;
  transports : (string, Transport.t) Hashtbl.t;
      (* one reliable-transport endpoint per node, between the node's
         emit path and the raw network *)
  inflight : (string * string, int) Hashtbl.t;
      (* (src, dst) -> messages accepted by the network but not yet
         delivered: the simulator's stand-in for a per-destination
         send-queue depth *)
  mutable addrs_cache : string list option;
      (* sorted; invalidated on membership change instead of
         re-sorting on every [addrs] call *)
  mutable clock : float;
  sample_interval : float;
  mutable trace_default : bool;
  mutable strict_install : bool;
      (* applied to every node, present and future: install-time
         analysis errors reject the program instead of logging *)
  mutable reliable : bool;
      (* default for new transports; set_reliable flips everyone *)
  mutable seminaive : bool;
      (* machine eval mode for every node, present and future *)
  mutable batching : bool;
      (* cross-node delta batching for every transport, present and
         future; enabled together with semi-naive via set_seminaive *)
  mutable sharding : sharding option;
      (* None: the classic sequential loop. Some: the tick-window
         round/barrier loop, with node-owned events fanned out over
         [Pool] domains *)
  mutable sanitize : bool;
      (* effect-discipline sanitizer: raise [Discipline_violation] on
         direct mutation of barrier-owned state during a shard drain *)
  mutable trace_log : (string * Seglog.config) option;
      (* flight-recorder root directory + writer config; every node,
         present and future, spills to [dir]/[addr]/ *)
  mutable checkpoint : (string * Checkpoint.config) option;
      (* durable-checkpoint root directory + cadence; every node,
         present and future, snapshots its hard state to [dir]/[addr]/ *)
  ckpt_writers : (string, Checkpoint.writer) Hashtbl.t;
      (* per-address checkpoint writers. Keyed by address, not node:
         they model the node's disk, so they survive [restart] *)
  mutable ckpt_armed : bool;  (* the periodic snapshot callback is live *)
  incarnations : (string, int) Hashtbl.t;
      (* bumped by [restart]; events carry the incarnation they were
         minted under, and stale ones die instead of reaching (or
         rescheduling themselves onto) the reborn node *)
  programs : (string, installed list) Hashtbl.t;
      (* every program installed per address, newest first — the
         stand-in for the on-disk configuration a real process re-reads
         when it restarts *)
  host_watches : (string, (string * (Tuple.t -> unit)) list) Hashtbl.t;
      (* host-registered watchpoints per address, newest first;
         re-attached after a restart so observers survive the crash *)
  mutable seq_handled : int;
      (* events handled outside any shard (sequential mode + host
         callbacks) *)
}

and installed = Src_text of string | Src_ast of Ast.program

let create ?(seed = 1) ?(base_latency = 0.01) ?(jitter = 0.005) ?(loss_rate = 0.)
    ?(sample_interval = 1.0) ?(trace = false) ?(strict_install = false)
    ?(reliable = true) () =
  let rng = Sim.Rng.create seed in
  {
    rng;
    network = Sim.Network.create ~base_latency ~jitter ~loss_rate (Sim.Rng.split rng);
    queue = Sim.Event_queue.create ();
    nodes = Hashtbl.create 32;
    transports = Hashtbl.create 32;
    inflight = Hashtbl.create 32;
    addrs_cache = None;
    clock = 0.;
    sample_interval;
    trace_default = trace;
    strict_install;
    reliable;
    seminaive = true;
    batching = false;
    sharding = None;
    sanitize =
      (match Sys.getenv_opt "P2QL_SANITIZE" with
      | Some ("1" | "true" | "yes") -> true
      | _ -> false);
    trace_log = None;
    checkpoint = None;
    ckpt_writers = Hashtbl.create 32;
    ckpt_armed = false;
    incarnations = Hashtbl.create 32;
    programs = Hashtbl.create 32;
    host_watches = Hashtbl.create 32;
    seq_handled = 0;
  }

let now t = t.clock
let network t = t.network

let incarnation t addr =
  Option.value (Hashtbl.find_opt t.incarnations addr) ~default:0

(* The unified unknown-address check for the lifecycle / fault API:
   [remove_node], [crash], [recover] and [restart] all raise the same
   [Invalid_argument] shape, naming both the entry point and the
   address. *)
let require_known t fn addr =
  if not (Hashtbl.mem t.nodes addr) then
    invalid_arg (Fmt.str "Engine.%s: unknown node %s" fn addr)

let node t addr =
  match Hashtbl.find_opt t.nodes addr with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "Engine.node: unknown node %s" addr)

let node_opt t addr = Hashtbl.find_opt t.nodes addr
let addrs t =
  match t.addrs_cache with
  | Some l -> l
  | None ->
      let l =
        Hashtbl.fold (fun a _ acc -> a :: acc) t.nodes [] |> List.sort compare
      in
      t.addrs_cache <- Some l;
      l

(* The sanitizer chokepoint. Every legitimate path defers its effects
   before reaching the guarded sites, so a raise here always means a
   bypass: state that belongs to the barrier was touched mid-drain. *)
let guard t site =
  if t.sanitize then
    match t.sharding with
    | Some s when s.in_round ->
        raise (Discipline_violation { site; seq = !(Domain.DLS.get draining_seq) })
    | _ -> ()

(** Flip the effect-discipline sanitizer (also on via [P2QL_SANITIZE=1]
    in the environment). Purely a checking layer: runs are bit-for-bit
    identical with it on or off. *)
let set_sanitize t b = t.sanitize <- b

let sanitize t = t.sanitize

let schedule t ~at event =
  guard t "Engine.schedule";
  Sim.Event_queue.schedule t.queue ~time:at event

(** Schedule a host callback at an absolute simulation time. *)
let at t ~time f = schedule t ~at:time (Callback f)

(* --- Sharding plumbing --- *)

let shard_ix s addr = Hashtbl.hash addr mod s.n

(* The virtual clock as seen from code running on behalf of [addr]:
   inside a parallel round each shard tracks the time of the event it
   is currently handling (the global clock only advances at the
   barrier). *)
let now_for t addr =
  match t.sharding with
  | Some s when s.in_round -> s.shards.(shard_ix s addr).snow
  | _ -> t.clock

(* Append an effect to [addr]'s shard log, tagged with the causing
   event's queue seq and a per-event counter. Only [addr]'s own shard
   ever executes [addr]'s code, so the log is single-writer. *)
let defer t addr eff =
  match t.sharding with
  | Some s when s.in_round ->
      let sh = s.shards.(shard_ix s addr) in
      sh.log <- (sh.cur_seq, sh.cur_idx, eff) :: sh.log;
      sh.cur_idx <- sh.cur_idx + 1;
      true
  | _ -> false

(* Schedule on behalf of [owner]: deferred to the barrier inside a
   parallel round, immediate otherwise. *)
let sched_owned t owner ~at ev =
  if not (defer t owner (Eff_schedule { at; ev })) then schedule t ~at ev

let inflight_add t ~src ~dst d =
  guard t "Engine.inflight_add";
  let key = (src, dst) in
  let n = Option.value (Hashtbl.find_opt t.inflight key) ~default:0 + d in
  if n <= 0 then Hashtbl.remove t.inflight key else Hashtbl.replace t.inflight key n

(** Messages from [src] to [dst] accepted by the network but not yet
    delivered — the simulator's per-destination send-queue depth. *)
let inflight t ~src ~dst =
  Option.value (Hashtbl.find_opt t.inflight (src, dst)) ~default:0

(** Total undelivered messages originated by [src], over all
    destinations: the node's [net.sendq.depth] gauge. *)
let inflight_from t src =
  Hashtbl.fold (fun (s, _) n acc -> if String.equal s src then acc + n else acc)
    t.inflight 0

(* Below the transport: decide the packet's fate and queue delivery.
   Drops are final here — retransmission lives in [Transport]. [now] is
   the virtual time of the send (the causing event's time in sharded
   mode, where this only runs at the barrier: the network RNG and the
   per-channel FIFO floor are shared state). *)
let raw_send_now t ~now ~src ~dst packet =
  guard t "Engine.raw_send_now";
  match Sim.Network.send t.network ~now ~src ~dst with
  | Sim.Network.Drop _ -> ()
  | Sim.Network.Deliver when_ ->
      inflight_add t ~src ~dst 1;
      schedule t ~at:when_ (Deliver { dst; inc = incarnation t dst; src; packet })

let raw_send t ~src ~dst packet =
  if not (defer t src (Eff_send { src; dst; at = now_for t src; packet })) then
    raw_send_now t ~now:t.clock ~src ~dst packet

let transport t addr =
  match Hashtbl.find_opt t.transports addr with
  | Some tr -> tr
  | None -> invalid_arg (Fmt.str "Engine.transport: unknown node %s" addr)

let transport_opt t addr = Hashtbl.find_opt t.transports addr

(** Flip reliable transport on every node, present and future. Off
    reproduces the pre-transport fire-and-forget path (the loss-sweep
    control arm). *)
let set_reliable t b =
  t.reliable <- b;
  Hashtbl.iter (fun _ tr -> Transport.set_reliable tr b) t.transports

let reliable t = t.reliable

(** Select the evaluation pipeline on every node, present and future.
    [true] (the default planner behaviour, plus cross-node delta
    batching) runs delta strands semi-naively: the newest tuple joins
    against full relations, and same-instant shipments to one peer
    coalesce into single delta-batch frames. [false] is the ablation
    control: classical naive re-enumeration of the whole rule body on
    every table delta, with batching off — every re-derivation is
    re-shipped in its own frame. Engines start semi-naive with
    batching off (the historical wire behaviour); call
    [set_seminaive t true] to also turn batching on. *)
let set_seminaive t b =
  t.seminaive <- b;
  t.batching <- b;
  Hashtbl.iter
    (fun _ n ->
      Dataflow.Machine.set_eval_mode (Node.machine n)
        (if b then Dataflow.Machine.Seminaive else Dataflow.Machine.Naive))
    t.nodes;
  Hashtbl.iter (fun _ tr -> Transport.set_batching tr b) t.transports

let seminaive t = t.seminaive

(* --- Flight recorder (trace segment log) --- *)

let attach_trace_log node addr (dir, config) =
  if Node.trace_log node = None then begin
    let w = Seglog.create ~config ~dir:(Filename.concat dir addr) () in
    Node.set_trace_log node (Some w);
    Dataflow.Tracer.enable (Node.tracer node)
  end

(** Start spilling trace records to an on-disk segment log rooted at
    [dir]: every node, present and future, records to [dir]/[addr]/
    and has its tracer enabled. Nodes added afterwards default to the
    shrunk {!Dataflow.Tracer.spill_config} in-RAM window (history
    lives on disk); nodes that already exist keep the window they
    were created with, so call this before adding nodes to get the
    resident-memory win. Buffered records reach the disk only at tick
    barriers / run end ({!flush_trace_logs}) — single-threaded, which
    is what keeps sharded runs deterministic (DESIGN.md §15). *)
let set_trace_log ?(config = Seglog.default_config) t dir =
  guard t "Engine.set_trace_log";
  t.trace_log <- Some (dir, config);
  Hashtbl.iter (fun addr node -> attach_trace_log node addr (dir, config)) t.nodes

(** The flight-recorder root directory, when recording. *)
let trace_log t = Option.map fst t.trace_log

(** Write every node's buffered trace records to disk. Called by the
    run loops at barriers; cheap when nothing is buffered. *)
let flush_trace_logs t =
  if t.trace_log <> None then
    Hashtbl.iter (fun _ node -> Node.flush_trace_log node) t.nodes

(** Stop recording: flush and seal every node's segment log and
    detach the writers. Future nodes no longer record. *)
let close_trace_logs t =
  Hashtbl.iter
    (fun _ node ->
      match Node.trace_log node with
      | Some w ->
          Seglog.close w;
          Node.set_trace_log node None
      | None -> ())
    t.nodes;
  t.trace_log <- None

(* Create and wire a node + transport for [addr]. Shared by [add_node]
   and [restart], so a reborn node goes through exactly the fresh-boot
   path: new RNG splits, new transport (sequence state starts over),
   new metric registry. *)
let wire_node ?tracer_config ?trace t addr =
  let trace = Option.value trace ~default:t.trace_default in
  (* A recording engine defaults new nodes to the shrunk spill window:
     the segment log holds the history their RAM no longer does. *)
  let tracer_config =
    match (tracer_config, t.trace_log) with
    | None, Some _ -> Some Dataflow.Tracer.spill_config
    | c, _ -> c
  in
  let node = Node.create ~addr ~rng:(Sim.Rng.split t.rng) ~trace ?tracer_config () in
  Option.iter (attach_trace_log node addr) t.trace_log;
  Node.set_strict_install node t.strict_install;
  Node.set_now node (fun () -> now_for t addr);
  let tr =
    Transport.create ~addr ~rng:(Sim.Rng.split t.rng)
      ~now:(fun () -> now_for t addr)
      ~schedule:(fun delay f ->
        (* Transport timers only touch this node's state, so they may
           run inside its shard. *)
        sched_owned t addr
          ~at:(now_for t addr +. delay)
          (Owned_callback { owner = addr; f }))
      ~raw_send:(fun ~dst packet -> raw_send t ~src:addr ~dst packet)
      ~active:(fun () -> not (Sim.Network.is_crashed t.network addr))
      ()
  in
  Transport.set_reliable tr t.reliable;
  Transport.set_batching tr t.batching;
  Dataflow.Machine.set_eval_mode (Node.machine node)
    (if t.seminaive then Dataflow.Machine.Seminaive else Dataflow.Machine.Naive);
  Transport.set_deliver tr (fun ~src ~bytes m ->
      Node.receive node ~bytes ~src ~src_tuple_id:m.Wire.src_tuple_id
        ~delete:m.Wire.delete ~name:m.Wire.name ~fields:m.Wire.fields ());
  Node.set_send node (fun ~dst ~delete ~src_tuple ->
      Transport.send tr ~dst ~delete src_tuple);
  Node.set_timer_handler node (fun req ->
      (* Stagger first firings deterministically to avoid a thundering
         herd of simultaneous timers. Installs are host-driven (direct
         calls or [Engine.at] callbacks, both sequential), so drawing
         from the engine RNG here is deterministic even when sharded. *)
      guard t "Engine.rng (timer stagger)";
      let offset = Sim.Rng.float t.rng *. req.period in
      sched_owned t addr ~at:(t.clock +. offset)
        (Timer { addr; inc = incarnation t addr; req }));
  (* The send queue lives in the engine, so its depth gauge is wired
     here rather than in [Node.create] with the rest of the registry. *)
  Metrics.register (Node.registry node) "net.sendq.depth" Metrics.KGauge (fun () ->
      float_of_int (inflight_from t addr));
  (* Shard-occupancy gauges: reflected into p2Stats like every other
     registry metric, so the watchdog can alarm on shard imbalance.
     In sequential mode the single implicit shard reads fully busy. *)
  Metrics.register (Node.registry node) "engine.shards" Metrics.KGauge (fun () ->
      match t.sharding with Some s -> float_of_int s.n | None -> 0.);
  Metrics.register (Node.registry node) "engine.shard_busy_pct" Metrics.KGauge
    (fun () ->
      match t.sharding with
      | Some s when s.parallel_ns > 0. ->
          100. *. s.shards.(shard_ix s addr).busy_ns /. s.parallel_ns
      | _ -> 100.);
  Metrics.register (Node.registry node) "engine.barrier_wait_ns" Metrics.KGauge
    (fun () ->
      match t.sharding with
      | Some s ->
          Float.max 0. (s.parallel_ns -. s.shards.(shard_ix s addr).busy_ns)
      | None -> 0.);
  Transport.register_metrics tr (Node.registry node);
  (* ckpt.*: durable-checkpoint counters. Like trace.log.* they are
     registered unconditionally (the metric-documentation contract
     covers every node) and read 0 until checkpointing is enabled.
     The writer is keyed by address — it models the node's disk — so
     these survive a crash-restart where the node object does not. *)
  let cstat f () =
    match Hashtbl.find_opt t.ckpt_writers addr with
    | Some w -> f (Checkpoint.stats w)
    | None -> 0.
  in
  let ckpt name f =
    Metrics.register (Node.registry node) name Metrics.KCounter (cstat f)
  in
  ckpt "ckpt.snapshots" (fun s -> float_of_int s.Checkpoint.snapshots);
  ckpt "ckpt.rows" (fun s -> float_of_int s.Checkpoint.rows);
  ckpt "ckpt.bytes" (fun s -> float_of_int s.Checkpoint.bytes);
  ckpt "ckpt.write_ns" (fun s -> float_of_int s.Checkpoint.write_ns);
  ckpt "ckpt.retention_drops" (fun s -> float_of_int s.Checkpoint.retention_drops);
  Metrics.register (Node.registry node) "ckpt.last_stamp" Metrics.KGauge
    (cstat (fun s -> if Float.is_nan s.Checkpoint.last_stamp then 0. else s.Checkpoint.last_stamp));
  Hashtbl.replace t.nodes addr node;
  Hashtbl.replace t.transports addr tr;
  t.addrs_cache <- None;
  schedule t
    ~at:(t.clock +. t.sample_interval)
    (Sample { addr; inc = incarnation t addr });
  node

let add_node ?tracer_config ?trace t addr =
  guard t "Engine.add_node";
  if Hashtbl.mem t.nodes addr then
    invalid_arg (Fmt.str "Engine.add_node: duplicate node %s" addr);
  wire_node ?tracer_config ?trace t addr

(* Remember what the host fed this address, newest first. This is the
   engine's stand-in for the on-disk configuration a real process
   re-reads when it restarts: [restart] replays it oldest-first into
   the reborn node. *)
let record tbl addr entry =
  Hashtbl.replace tbl addr
    (entry :: Option.value (Hashtbl.find_opt tbl addr) ~default:[])

(** Install OverLog source on one node — usable at any point in the
    run (the paper's on-line piecemeal deployment). *)
let install t addr source =
  let n = node t addr in
  record t.programs addr (Src_text source);
  Node.install_text n source

(** Toggle strict install-time analysis on every node, present and
    future: programs with error diagnostics raise [Analysis.Rejected]
    instead of being logged and installed anyway. *)
let set_strict_install t b =
  t.strict_install <- b;
  Hashtbl.iter (fun _ n -> Node.set_strict_install n b) t.nodes

let install_ast t addr program =
  let n = node t addr in
  record t.programs addr (Src_ast program);
  Node.install n program

(** Install the same source on every node. *)
let install_all t source =
  let program = Parser.parse source in
  List.iter (fun addr -> install_ast t addr program) (addrs t)

let watch t addr name f =
  let n = node t addr in
  record t.host_watches addr (name, f);
  Node.watch n name f

(** Inject an event tuple into a node from the host program, e.g. to
    start a ring traversal ([orderingEvent]) or a forensic walk
    ([traceResp]). The location field is prepended automatically.
    Crashed hosts can not execute anything, so injection into one is
    refused; returns whether the tuple was delivered. *)
let inject t addr name values =
  let n = node t addr in
  if Sim.Network.is_crashed t.network addr then false
  else begin
    let tuple = Node.create_tuple n ~dst:addr name (Value.VAddr addr :: values) in
    Node.deliver n tuple;
    true
  end

(** Collect watched tuples into a returned (reversed at read) list ref. *)
let collect t addr name =
  let acc = ref [] in
  watch t addr name (fun tuple -> acc := tuple :: !acc);
  fun () -> List.rev !acc

(* --- Durable checkpoints --- *)

let ckpt_writer t addr (dir, config) =
  match Hashtbl.find_opt t.ckpt_writers addr with
  | Some w -> w
  | None ->
      let w = Checkpoint.create ~config ~dir:(Filename.concat dir addr) () in
      Hashtbl.replace t.ckpt_writers addr w;
      w

(* Hard-state selection: catalog tables with infinite lifetime, minus
   the metric reflections and runtime bookkeeping (derived state the
   reborn node rebuilds on its own). Catalog order is sorted by name
   and rows come back in insertion order — both bit-for-bit stable
   across shard counts, which is what makes seeded checkpoint files
   byte-identical (DESIGN.md §16). *)
let hard_state node ~now =
  let cat = Node.catalog node in
  Store.Catalog.names cat
  |> List.filter_map (fun name ->
         if List.mem name Node.reflected_tables || List.mem name Node.system_tables
         then None
         else
           match Store.Catalog.find cat name with
           | Some tbl when Store.Table.lifetime tbl = Float.infinity ->
               Some (name, Store.Table.tuples tbl ~now)
           | _ -> None)

(** Snapshot every live node's hard state right now. Runs in host
    context only (direct call or an [Engine.at] callback — in sharded
    mode those execute alone between rounds), so the write is
    single-threaded and the file bytes are deterministic. Crashed
    nodes are skipped: a dead machine writes nothing to its disk. *)
let checkpoint_now t =
  guard t "Engine.checkpoint_now";
  match t.checkpoint with
  | None -> ()
  | Some cfg ->
      List.iter
        (fun addr ->
          if not (Sim.Network.is_crashed t.network addr) then
            match node_opt t addr with
            | Some node ->
                let w = ckpt_writer t addr cfg in
                ignore
                  (Checkpoint.write w ~stamp:t.clock
                     ~tables:(hard_state node ~now:t.clock))
            | None -> ())
        (addrs t)

let rec ckpt_tick t =
  match t.checkpoint with
  | Some (_, config) when t.ckpt_armed ->
      checkpoint_now t;
      at t ~time:(t.clock +. config.Checkpoint.interval) (fun () -> ckpt_tick t)
  | _ -> ()

(** Start periodic durable checkpoints rooted at [dir]: every node,
    present and future, snapshots its hard-state tables to
    [dir]/[addr]/ every [config.interval] virtual seconds (first
    snapshot one interval from now). The writers survive node
    restarts — they model the node's disk — and [restart] recovers
    from the newest intact snapshot. *)
let set_checkpoint ?(config = Checkpoint.default_config) t dir =
  guard t "Engine.set_checkpoint";
  (match t.checkpoint with
  | Some (old_dir, _) when old_dir <> dir ->
      (* Redirecting to a fresh root: writers are per-directory. *)
      Hashtbl.iter (fun _ w -> Checkpoint.close w) t.ckpt_writers;
      Hashtbl.reset t.ckpt_writers
  | _ -> ());
  t.checkpoint <- Some (dir, config);
  if not t.ckpt_armed then begin
    t.ckpt_armed <- true;
    at t ~time:(t.clock +. config.Checkpoint.interval) (fun () -> ckpt_tick t)
  end

(** The checkpoint root directory, when checkpointing. *)
let checkpoint_dir t = Option.map fst t.checkpoint

(** Stop checkpointing and release the writers. Snapshot files stay
    on disk; the armed periodic callback dies at its next firing. *)
let close_checkpoints t =
  Hashtbl.iter (fun _ w -> Checkpoint.close w) t.ckpt_writers;
  Hashtbl.reset t.ckpt_writers;
  t.checkpoint <- None;
  t.ckpt_armed <- false

(* Handle one event. Safe both sequentially and inside a parallel
   round: every handler resolves the clock through [now_for] and routes
   cross-cutting effects through [sched_owned]/[raw_send], which defer
   to the barrier when a round is active. During a round, shared engine
   state is only ever *read* (nodes, transports, crash tables,
   in-flight counters) — all writes are deferred effects. *)
let handle t event =
  match event with
  | Deliver { dst; inc; src; packet } -> (
      if not (defer t dst (Eff_inflight { src; dst; d = -1 })) then
        inflight_add t ~src ~dst (-1);
      (* A packet launched toward an earlier incarnation dies here:
         after a restart both sides renegotiate from sequence 1, and a
         stale frame would otherwise alias into the fresh channel. *)
      if inc = incarnation t dst && not (Sim.Network.is_crashed t.network dst) then
        match Hashtbl.find_opt t.transports dst with
        | Some tr -> Transport.receive tr ~src packet
        | None -> ())
  | Timer { addr; inc; req } -> (
      (* Stale-incarnation timers stop rescheduling themselves: the
         restarted node reinstalls its programs and arms fresh timer
         chains, so letting the old chain live would double every
         periodic rule. *)
      match node_opt t addr with
      | Some node when inc = incarnation t addr ->
          if not (Sim.Network.is_crashed t.network addr) then Node.fire_periodic node req;
          sched_owned t addr ~at:(now_for t addr +. req.period) (Timer { addr; inc; req })
      | _ -> ())
  | Sample { addr; inc } -> (
      match node_opt t addr with
      | Some node when inc = incarnation t addr ->
          Sim.Metrics.sample (Node.metrics node) ~now:(now_for t addr)
            ~live_tuples:(Node.live_tuples node) ~live_bytes:(Node.live_bytes node);
          sched_owned t addr ~at:(now_for t addr +. t.sample_interval)
            (Sample { addr; inc })
      | _ -> ())
  | Callback f -> f ()
  | Owned_callback { f; _ } -> f ()

let owner_of = function
  | Deliver { dst; _ } -> Some dst
  | Timer { addr; _ } -> Some addr
  | Sample { addr; _ } -> Some addr
  | Owned_callback { owner; _ } -> Some owner
  | Callback _ -> None

(* One parallel round: each shard handles its window slice in queue
   order, deferring effects; the barrier then replays all logs in
   (event seq, effect idx) order — a total order fixed by the queue
   contents alone, so new queue seqs and network RNG draws happen
   identically for every shard count. *)
let run_round t s buckets =
  let round_t0 = Unix.gettimeofday () in
  s.in_round <- true;
  let jobs =
    Array.mapi
      (fun ix evs ->
        let evs = List.rev evs in
        let sh = s.shards.(ix) in
        fun () ->
          let t0 = Unix.gettimeofday () in
          List.iter
            (fun (time, seq, ev) ->
              sh.snow <- time;
              sh.cur_seq <- seq;
              sh.cur_idx <- 0;
              sh.handled <- sh.handled + 1;
              if t.sanitize then Domain.DLS.get draining_seq := seq;
              handle t ev)
            evs;
          if t.sanitize then Domain.DLS.get draining_seq := -1;
          sh.busy_ns <- sh.busy_ns +. ((Unix.gettimeofday () -. t0) *. 1e9))
      buckets
  in
  Fun.protect
    ~finally:(fun () -> s.in_round <- false)
    (fun () -> Pool.run jobs);
  s.rounds <- s.rounds + 1;
  s.parallel_ns <- s.parallel_ns +. ((Unix.gettimeofday () -. round_t0) *. 1e9);
  let effs =
    Array.fold_left
      (fun acc sh ->
        let l = sh.log in
        sh.log <- [];
        List.rev_append l acc)
      [] s.shards
  in
  let effs =
    List.sort
      (fun (s1, i1, _) (s2, i2, _) ->
        if s1 <> s2 then Int.compare s1 s2 else Int.compare i1 i2)
      effs
  in
  List.iter
    (fun (_, _, eff) ->
      match eff with
      | Eff_send { src; dst; at; packet } -> raw_send_now t ~now:at ~src ~dst packet
      | Eff_schedule { at; ev } -> schedule t ~at ev
      | Eff_inflight { src; dst; d } -> inflight_add t ~src ~dst d)
    effs

let run_until_sharded t s until =
  let buckets = Array.make s.n [] in
  let rec go () =
    match Sim.Event_queue.peek t.queue with
    | None -> t.clock <- until
    | Some (time, _) when time > until -> t.clock <- until
    | Some (time, ev) when owner_of ev = None ->
        (* Host callback: may mutate anything (fault injection,
           installs, p2Stats reflection), so it runs alone between
           rounds, with immediate effects. *)
        (match Sim.Event_queue.pop t.queue with
        | Some (_, ev) ->
            t.clock <- Float.max t.clock time;
            t.seq_handled <- t.seq_handled + 1;
            handle t ev
        | None -> ());
        go ()
    | Some (t0, _) ->
        let horizon = Float.min until (t0 +. s.quantum) in
        Array.fill buckets 0 s.n [];
        let wmax = ref t0 in
        let rec collect () =
          match Sim.Event_queue.peek t.queue with
          | Some (time, ev) when time <= horizon && owner_of ev <> None -> (
              match Sim.Event_queue.pop_entry t.queue with
              | Some (time, seq, ev) ->
                  let owner = Option.get (owner_of ev) in
                  let ix = shard_ix s owner in
                  buckets.(ix) <- (time, seq, ev) :: buckets.(ix);
                  wmax := Float.max !wmax time;
                  collect ()
              | None -> ())
          | _ -> ()
        in
        collect ();
        run_round t s buckets;
        (* The barrier is single-threaded: spilled trace records hit
           the disk here, in per-node append order, so the log bytes
           are identical for every shard count (DESIGN.md §15). *)
        flush_trace_logs t;
        t.clock <- Float.max t.clock !wmax;
        go ()
  in
  go ()

(** Run the simulation until the clock reaches [until]. *)
let run_until t until =
  (match t.sharding with
  | Some s -> run_until_sharded t s until
  | None ->
      let rec go () =
        match Sim.Event_queue.peek t.queue with
        | Some (time, _) when time <= until ->
            (match Sim.Event_queue.pop t.queue with
            | Some (time, event) ->
                t.clock <- Float.max t.clock time;
                t.seq_handled <- t.seq_handled + 1;
                handle t event
            | None -> ());
            go ()
        | _ -> t.clock <- until
      in
      go ());
  (* The sequential loop has no barriers: buffered trace records are
     bounded by the writer's high-water mark in between and land here. *)
  flush_trace_logs t

let run_for t seconds = run_until t (t.clock +. seconds)

(** Schedule a callback confined to [owner]'s state at an absolute
    simulation time. Unlike [Engine.at] — whose callbacks run alone
    between rounds — a sharded run executes this inside [owner]'s
    shard during the parallel phase, under the effect discipline. *)
let at_owned t ~owner ~time f =
  schedule t ~at:time (Owned_callback { owner; f })

(** Push a packet onto the network immediately, bypassing effect
    deferral. A test-only hook for exercising the sanitizer (the
    [raw_send_now] guard trips when called mid-drain); engine code
    must use the deferring send path instead. *)
let unsafe_direct_send t ~src ~dst packet =
  raw_send_now t ~now:(now_for t src) ~src ~dst packet

(* --- Shard control --- *)

let fresh_shard () =
  { log = []; cur_seq = 0; cur_idx = 0; snow = 0.; handled = 0; busy_ns = 0. }

(** Select the execution engine. [n = 0] restores the classic
    sequential loop. [n >= 1] switches to the deterministic
    round/barrier loop with [n] shards: node addresses are hashed onto
    shards, and every shard count — including 1 — produces bit-for-bit
    identical simulations for a given seed, because all cross-shard
    effects replay in a canonical order at tick barriers. [quantum] is
    the tick-window width in virtual seconds (default: the network's
    default base latency, 10 ms). *)
let set_shards ?(quantum = 0.01) t n =
  if n < 0 then invalid_arg "Engine.set_shards: negative shard count";
  if n = 0 then t.sharding <- None
  else
    t.sharding <-
      Some
        {
          n;
          quantum;
          shards = Array.init n (fun _ -> fresh_shard ());
          in_round = false;
          rounds = 0;
          parallel_ns = 0.;
        }

let shards t = match t.sharding with Some s -> s.n | None -> 0

(** Total events handled so far (all shards plus the sequential path) —
    the denominator of the bench's allocs-per-event measurement. *)
let events_handled t =
  t.seq_handled
  +
  match t.sharding with
  | Some s -> Array.fold_left (fun acc sh -> acc + sh.handled) 0 s.shards
  | None -> 0

(** Retire a node (churn "leave"). Pending events addressed to it
    (deliveries, timers, samples) die silently because every handler
    re-resolves the address; the address can not be reused. All
    per-address state is purged: its transport stops, the remaining
    transports forget their channels to it, and the network's FIFO
    floors, link cuts, crash flag and in-flight rows for it go too —
    so long churn campaigns don't leak. *)
let remove_node t addr =
  require_known t "remove_node" addr;
  let n = node t addr in
  (* Seal the departing node's flight recorder so its history survives
     the churn event intact. *)
  (match Node.trace_log n with
  | Some w ->
      Seglog.close w;
      Node.set_trace_log n None
  | None -> ());
  Hashtbl.remove t.nodes addr;
  (match Hashtbl.find_opt t.transports addr with
  | Some tr ->
      Transport.stop tr;
      Hashtbl.remove t.transports addr
  | None -> ());
  Hashtbl.iter (fun _ tr -> Transport.forget_peer tr addr) t.transports;
  Sim.Network.forget t.network addr;
  let stale =
    Hashtbl.fold
      (fun ((src, dst) as k) _ acc ->
        if String.equal src addr || String.equal dst addr then k :: acc else acc)
      t.inflight []
  in
  List.iter (Hashtbl.remove t.inflight) stale;
  (* Per-address recovery state goes too: the address can't be reused,
     so keeping recorded programs / watches / checkpoint writers would
     leak across a long churn campaign. Checkpoint files stay on disk
     for forensics. *)
  (match Hashtbl.find_opt t.ckpt_writers addr with
  | Some w ->
      Checkpoint.close w;
      Hashtbl.remove t.ckpt_writers addr
  | None -> ());
  Hashtbl.remove t.programs addr;
  Hashtbl.remove t.host_watches addr;
  Hashtbl.remove t.incarnations addr;
  t.addrs_cache <- None

(* --- Fault injection --- *)

let crash t addr =
  require_known t "crash" addr;
  Sim.Network.crash t.network addr

let recover t addr =
  require_known t "recover" addr;
  Sim.Network.recover t.network addr
let is_crashed t addr = Sim.Network.is_crashed t.network addr

(* --- Crash-restart recovery --- *)

type restart_outcome = {
  recovered_from : [ `Checkpoint of string * float | `Cold ];
      (* the snapshot file and its stamp, or nothing intact on disk *)
  restored_rows : int;  (* rows re-minted from the snapshot *)
  skipped_rows : int;
      (* snapshot rows whose table no longer exists after program
         replay (a program was changed between snapshot and restart) *)
}

let restart ?tracer_config ?trace t addr =
  guard t "Engine.restart";
  require_known t "restart" addr;
  let old = node t addr in
  (* The process image is gone: seal its flight recorder (history on
     disk survives the crash — that is the point of the recorder),
     stop its transport, and drop the node object. *)
  (match Node.trace_log old with
  | Some w ->
      Seglog.close w;
      Node.set_trace_log old None
  | None -> ());
  (match Hashtbl.find_opt t.transports addr with
  | Some tr ->
      Transport.stop tr;
      Hashtbl.remove t.transports addr
  | None -> ());
  Hashtbl.remove t.nodes addr;
  (* Peer re-handshake: every surviving transport forgets its channel
     to [addr], so both sides renegotiate from sequence 1 / cumulative
     ack 0 when traffic resumes. Frames queued toward the dead
     incarnation are legitimately lost — restart is reset-not-replay;
     durability is the checkpoint's job, not the send queue's. *)
  Hashtbl.iter (fun _ tr -> Transport.forget_peer tr addr) t.transports;
  (* Bump the incarnation: packets, timers and samples minted for the
     previous life die in [handle] instead of reaching the new one. *)
  Hashtbl.replace t.incarnations addr (incarnation t addr + 1);
  Sim.Network.recover t.network addr;
  let node = wire_node ?tracer_config ?trace t addr in
  (* Replay the recorded configuration oldest-first — programs then
     host watchpoints — exactly as a restarted process re-reads its
     config from disk. Replays go straight to the node: they are
     already recorded. *)
  List.iter
    (function
      | Src_text s -> Node.install_text node s
      | Src_ast p -> Node.install node p)
    (List.rev (Option.value (Hashtbl.find_opt t.programs addr) ~default:[]));
  List.iter
    (fun (name, f) -> Node.watch node name f)
    (List.rev (Option.value (Hashtbl.find_opt t.host_watches addr) ~default:[]));
  (* Restore hard state from the newest intact snapshot, scanning past
     damaged files; re-minted rows go through [deliver], so delta
     strands fire and the recovery cascade (e.g. Chord re-advertising
     its successors) starts immediately. *)
  let cold = { recovered_from = `Cold; restored_rows = 0; skipped_rows = 0 } in
  match t.checkpoint with
  | None -> cold
  | Some (dir, _) -> (
      match Checkpoint.latest ~dir:(Filename.concat dir addr) with
      | None -> cold
      | Some snap ->
          let restored = ref 0 and skipped = ref 0 in
          List.iter
            (fun (tbl : Checkpoint.table) ->
              if Store.Catalog.is_table (Node.catalog node) tbl.name then
                List.iter
                  (fun (m : Wire.message) ->
                    incr restored;
                    Node.deliver node
                      (Node.create_tuple node ~dst:addr m.Wire.name m.Wire.fields))
                  tbl.rows
              else skipped := !skipped + List.length tbl.rows)
            snap.Checkpoint.tables;
          {
            recovered_from = `Checkpoint (snap.Checkpoint.path, snap.Checkpoint.stamp);
            restored_rows = !restored;
            skipped_rows = !skipped;
          })
let cut_link t ~src ~dst = Sim.Network.cut_link t.network ~src ~dst
let heal_link t ~src ~dst = Sim.Network.heal_link t.network ~src ~dst
let set_loss_rate t rate = Sim.Network.set_loss_rate t.network rate
let set_latency t ~base ~jitter = Sim.Network.set_latency t.network ~base ~jitter

(* --- Measurement helpers (used by benches) --- *)

type snapshot = {
  time : float;
  work : float;
  messages_tx : int;
  messages_rx : int;
  live_tuples : int;
  live_bytes : int;
}

let snapshot_node t addr =
  let n = node t addr in
  let m = Node.metrics n in
  {
    time = t.clock;
    work = Sim.Metrics.work m;
    messages_tx = Sim.Metrics.messages_tx m;
    messages_rx = Sim.Metrics.messages_rx m;
    live_tuples = Node.live_tuples n;
    live_bytes = Node.live_bytes n;
  }

(** CPU%% proxy between two snapshots of the same node. *)
let cpu_percent ~before ~after =
  Sim.Metrics.cpu_percent
    ~work:(after.work -. before.work)
    ~seconds:(after.time -. before.time)

let memory_mb snap =
  Sim.Metrics.memory_mb ~live_tuples:snap.live_tuples ~live_bytes:snap.live_bytes

(** Node-local time at [addr] (the clock the node's tracer uses). *)
let local_time t addr = Node.local_time (node t addr)
