lib/runtime/engine.ml: Float Fmt Hashtbl List Node Option Overlog Parser Sim Value Wire
