(** Reliable transport between a {!Node} and the simulated network:
    per-peer sequence-numbered frames, cumulative acks (piggybacked and
    standalone), retransmission with exponential backoff and
    deterministic jitter, exactly-once in-order delivery, bounded send
    queues with an oldest-delete-pattern-first drop policy, and a
    heartbeat-driven peer failure detector reflected into the
    [p2PeerStatus] catalog table. *)

type config = {
  window : int;  (** max unacked data frames in flight per peer *)
  max_pending : int;  (** bounded per-peer queue behind the window *)
  reorder_limit : int;  (** receiver's out-of-order buffer per peer *)
  ack_delay : float;  (** standalone-ack delay (piggyback opportunity) *)
  rto_base : float;  (** initial retransmission timeout *)
  rto_max : float;  (** backoff cap *)
  heartbeat_period : float;  (** probe interval for silent peers *)
  suspect_after : int;  (** consecutive misses before suspect *)
  dead_after : float;  (** silence before a suspect peer is dead *)
  rate_window : float;  (** window for the retransmit-rate gauge *)
  max_batch : int;  (** tuples per delta-batch frame when batching *)
}

val default_config : config

(** Failure-detector verdict for a peer: [Alive] → [Suspect] after
    [suspect_after] consecutive misses (unanswered heartbeats or
    retransmissions) → [Dead] after [dead_after] seconds of silence;
    any frame from the peer restores [Alive]. *)
type status = Alive | Suspect | Dead

val status_name : status -> string

type peer_info = {
  peer : string;
  status : status;
  misses : int;
  silent_for : float;  (** seconds since the last frame from the peer *)
  sendq : int;  (** unacked + pending frames queued toward the peer *)
}

type t

(** [create ~addr ~rng ~now ~schedule ~raw_send ~active ()] builds a
    transport endpoint for the node at [addr]. The host injects the
    clock ([now]), a relative-delay scheduler ([schedule]), the raw
    packet send ([raw_send]), and a liveness predicate ([active],
    false while the owning node is crashed — the transport then stays
    silent but keeps retransmission state for recovery). [rng] drives
    backoff jitter and must be an independent deterministic stream.
    Also schedules the recurring heartbeat tick. *)
val create :
  addr:string ->
  ?config:config ->
  rng:Sim.Rng.t ->
  now:(unit -> float) ->
  schedule:(float -> (unit -> unit) -> unit) ->
  raw_send:(dst:string -> string -> unit) ->
  active:(unit -> bool) ->
  unit ->
  t

(** Set the upward hook invoked once per data message, in order,
    exactly once. *)
val set_deliver : t -> (src:string -> bytes:int -> Overlog.Wire.message -> unit) -> unit

val addr : t -> string

(** Ablation switch: with [reliable] off, sends are fire-and-forget
    (still framed) and receives deliver unconditionally — the pre-PR-5
    behaviour, kept for the loss-sweep control arm. *)
val reliable : t -> bool

val set_reliable : t -> bool -> unit

(** Delta batching (default off): when enabled, tuples shipped to the
    same peer within one virtual-clock instant coalesce into a single
    delta-batch frame occupying one sequence number, capped at
    [max_batch] tuples per frame; the receiver unbatches in item
    order, so delivery semantics are unchanged. Works in both reliable
    and fire-and-forget modes. *)
val batching : t -> bool

val set_batching : t -> bool -> unit

(** Permanently silence a retired node's transport: pending timers go
    stale and the heartbeat tick stops rescheduling itself. *)
val stop : t -> unit

(** Ship one tuple to [dst]. Reliable mode sequences the frame,
    retransmits until acked, and applies the bounded-queue drop policy
    under backpressure. *)
val send : t -> dst:string -> delete:bool -> Overlog.Tuple.t -> unit

(** Process one wire frame from [src]: ack bookkeeping, duplicate
    suppression, reordering, failure-detector refresh, and in-order
    upward delivery. Raises {!Overlog.Wire.Error} on malformed input. *)
val receive : t -> src:string -> string -> unit

(** Per-peer channel and failure-detector state, sorted by peer — the
    source of the [p2PeerStatus] reflection rows and [p2ql peers]. *)
val peers : t -> peer_info list

val peer_status : t -> string -> status option

(** Drop all state for a retired peer (queued frames, reorder buffer,
    detector state); armed timers for it go stale. *)
val forget_peer : t -> string -> unit

val retransmit_count : t -> int
val duplicate_count : t -> int

(** Register the [transport.*] metrics into a node registry; the
    catalog is documented in docs/OPERATIONS.md. *)
val register_metrics : t -> Metrics.t -> unit
