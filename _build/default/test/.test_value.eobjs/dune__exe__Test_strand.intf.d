test/test_strand.mli:
