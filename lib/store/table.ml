(** Soft-state tables implementing the paper's [materialize] semantics:

    - per-tuple maximum lifetime (tuples expire silently),
    - maximum table size with FIFO eviction of the oldest tuple,
    - primary keys: inserting a tuple whose key matches an existing row
      replaces it (refreshing its insertion time),
    - delta subscriptions: the runtime's planner registers callbacks to
      trigger delta rule strands on insertion and deletion,
    - lazily-created secondary hash indexes ([probe]) so join stages
      pay O(matches), not O(table), per lookup.

    Time is supplied by the caller (the simulation clock), never read
    from the OS, so runs are deterministic.

    Expiry and eviction are incremental: rows are tracked in a min-heap
    ordered by (insertion time, seq) with lazy invalidation (a refresh
    or replace pushes a fresh entry; stale entries are discarded when
    they surface). Reads therefore cost O(expired now) instead of a full
    O(N) sweep, and the eviction victim is found in amortized O(log N).
    Expiry deltas fire in (insertion time, seq) order — deterministic
    and independent of hash-table layout. *)

open Overlog

type delta = Insert of Tuple.t | Delete of Tuple.t | Refresh of Tuple.t

type row = { tuple : Tuple.t; mutable inserted_at : float; mutable seq : int }

(* Heap entries are snapshots of a row's (inserted_at, seq) at push
   time. An entry is exact while the row still carries that stamp; any
   refresh/replace/delete leaves it stale, to be dropped lazily. Every
   live row always has one exact entry, so the heap minimum over exact
   entries equals the oldest live row. *)
type hent = { stamp : float; hseq : int; hkey : string }

module Heap = struct
  type t = { mutable a : hent array; mutable len : int }

  let dummy = { stamp = 0.; hseq = 0; hkey = "" }
  let create () = { a = Array.make 16 dummy; len = 0 }

  let lt x y = x.stamp < y.stamp || (x.stamp = y.stamp && x.hseq < y.hseq)

  let push h e =
    if h.len = Array.length h.a then begin
      let a = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 a 0 h.len;
      h.a <- a
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    (* sift up *)
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      lt h.a.(!i) h.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let peek h = if h.len = 0 then None else Some h.a.(0)

  let pop h =
    if h.len = 0 then ()
    else begin
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      h.a.(h.len) <- dummy;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && lt h.a.(l) h.a.(!smallest) then smallest := l;
        if r < h.len && lt h.a.(r) h.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.a.(!smallest) in
          h.a.(!smallest) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end

  let clear h =
    h.a <- Array.make 16 dummy;
    h.len <- 0
end

(* A secondary index over a set of 1-indexed field positions: probe
   key -> (primary key -> row). Buckets are keyed by the same
   canonical-value strings as primary keys, so index identity follows
   [Value.equal] exactly like the main table. *)
type index = {
  ipositions : int list;
  buckets : (string, (string, row) Hashtbl.t) Hashtbl.t;
}

type t = {
  name : string;
  lifetime : float;
  max_size : int option;
  keys : int list;  (** 1-indexed field positions; [] = whole tuple *)
  rows : (string, row) Hashtbl.t;  (** key-string -> row *)
  mutable next_seq : int;
  mutable subs_rev : (delta -> unit) list;  (* newest first *)
  mutable subs_arr : (delta -> unit) array option;  (* install order *)
  heap : Heap.t;
  mutable indexes : index list;
  mutable insert_count : int;
  mutable delete_count : int;
  mutable expire_count : int;
  mutable evict_count : int;
  mutable probe_count : int;
}

let create ?(lifetime = infinity) ?max_size ?(keys = []) name =
  {
    name;
    lifetime;
    max_size;
    keys;
    rows = Hashtbl.create 16;
    next_seq = 0;
    subs_rev = [];
    subs_arr = None;
    heap = Heap.create ();
    indexes = [];
    insert_count = 0;
    delete_count = 0;
    expire_count = 0;
    evict_count = 0;
    probe_count = 0;
  }

let of_materialize (m : Ast.materialize) =
  create ~lifetime:m.mlifetime ?max_size:m.msize ~keys:m.mkeys m.mname

let name t = t.name
let keys t = t.keys
let lifetime t = t.lifetime

(* Only tables that can lose rows by age or capacity need the
   (inserted_at, seq) heap; unbounded immortal tables skip it. *)
let tracks_age t = t.lifetime <> infinity || t.max_size <> None

let canonical_cat parts = String.concat "\x00" (List.map Value.canonical_key parts)

let key_string t tuple =
  let parts =
    match t.keys with
    | [] -> Tuple.fields tuple
    | ks -> Tuple.key_of tuple ks
  in
  canonical_cat parts

(* Subscribers run in subscription order (rule-install order), keeping
   delta-strand firing deterministic. The reversed list + cached array
   makes [subscribe] O(1) per rule install instead of O(installed). *)
let subscribe t f =
  t.subs_rev <- f :: t.subs_rev;
  t.subs_arr <- None

let subscriber_array t =
  match t.subs_arr with
  | Some a -> a
  | None ->
      let a = Array.of_list (List.rev t.subs_rev) in
      t.subs_arr <- Some a;
      a

let notify t delta = Array.iter (fun f -> f delta) (subscriber_array t)

let is_expired t ~now row = now -. row.inserted_at > t.lifetime

(* --- index and heap maintenance ------------------------------------ *)

let bucket_key idx tuple = canonical_cat (Tuple.key_of tuple idx.ipositions)

let index_add idx k row =
  let bk = bucket_key idx row.tuple in
  let bucket =
    match Hashtbl.find_opt idx.buckets bk with
    | Some b -> b
    | None ->
        let b = Hashtbl.create 4 in
        Hashtbl.replace idx.buckets bk b;
        b
  in
  Hashtbl.replace bucket k row

let index_remove idx k row =
  let bk = bucket_key idx row.tuple in
  match Hashtbl.find_opt idx.buckets bk with
  | Some bucket ->
      Hashtbl.remove bucket k;
      if Hashtbl.length bucket = 0 then Hashtbl.remove idx.buckets bk
  | None -> ()

(* Attach/detach keep rows, every index, and the age heap in sync; all
   row addition/removal must go through them. *)
let attach t k row =
  Hashtbl.replace t.rows k row;
  List.iter (fun idx -> index_add idx k row) t.indexes;
  if tracks_age t then
    Heap.push t.heap { stamp = row.inserted_at; hseq = row.seq; hkey = k }

let detach t k row =
  Hashtbl.remove t.rows k;
  List.iter (fun idx -> index_remove idx k row) t.indexes

let touch t k row ~now =
  row.inserted_at <- now;
  if tracks_age t then Heap.push t.heap { stamp = now; hseq = row.seq; hkey = k }

(* The heap minimum, after lazily discarding entries whose row is gone
   or was refreshed since the entry was pushed. The surviving minimum
   is exact: every live row keeps an entry carrying its current stamp. *)
let rec heap_min t =
  match Heap.peek t.heap with
  | None -> None
  | Some e -> (
      match Hashtbl.find_opt t.rows e.hkey with
      | Some row when row.seq = e.hseq && row.inserted_at = e.stamp ->
          Some (e.hkey, row)
      | _ ->
          Heap.pop t.heap;
          heap_min t)

(* Remove expired rows; called before reads so expiry is precise
   without a background sweeper, but incremental: cost is O(rows that
   expired since the last call), not O(N). Removal is atomic with
   respect to delta notifications: subscribers (delta-triggered
   aggregates) must never observe a half-swept table. Deltas fire in
   (insertion time, seq) order. *)
let expire t ~now =
  if t.lifetime <> infinity then begin
    let dead = ref [] in
    let rec sweep () =
      match heap_min t with
      | Some (k, row) when is_expired t ~now row ->
          Heap.pop t.heap;
          detach t k row;
          t.expire_count <- t.expire_count + 1;
          dead := row :: !dead;
          sweep ()
      | _ -> ()
    in
    sweep ();
    List.iter (fun row -> notify t (Delete row.tuple)) (List.rev !dead)
  end

let size t ~now =
  expire t ~now;
  Hashtbl.length t.rows

(* Eviction victim: least recently inserted/refreshed (soft-state
   semantics: live state keeps getting refreshed and survives). The
   heap minimum is exactly that row. *)
let oldest t = heap_min t

type insert_result = Added | Replaced | Refreshed

(** Insert [tuple] at time [now]. Returns what happened. Triggers
    subscriber deltas for the insertion (and for any eviction). *)
let insert t ~now tuple =
  expire t ~now;
  let k = key_string t tuple in
  let result =
    match Hashtbl.find_opt t.rows k with
    | Some row when Tuple.equal_contents row.tuple tuple ->
        (* Same contents: refresh the soft state's lifetime only. *)
        touch t k row ~now;
        Refreshed
    | Some row ->
        detach t k row;
        attach t k { tuple; inserted_at = now; seq = row.seq };
        Replaced
    | None ->
        (match t.max_size with
        | Some cap when Hashtbl.length t.rows >= cap -> (
            match oldest t with
            | Some (ok, orow) ->
                detach t ok orow;
                t.evict_count <- t.evict_count + 1;
                notify t (Delete orow.tuple)
            | None -> ())
        | _ -> ());
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        attach t k { tuple; inserted_at = now; seq };
        Added
  in
  t.insert_count <- t.insert_count + 1;
  (match result with
  | Added | Replaced -> notify t (Insert tuple)
  | Refreshed -> notify t (Refresh tuple));
  result

(** Delete every row whose contents equal [tuple]'s key. *)
let delete t ~now tuple =
  expire t ~now;
  let k = key_string t tuple in
  match Hashtbl.find_opt t.rows k with
  | Some row ->
      detach t k row;
      t.delete_count <- t.delete_count + 1;
      notify t (Delete row.tuple);
      true
  | None -> false

let rows_in_seq_order t =
  Hashtbl.fold (fun k row acc -> (k, row) :: acc) t.rows []
  |> List.sort (fun (_, a) (_, b) -> Stdlib.compare a.seq b.seq)

(** Delete all rows matching a predicate, atomically with respect to
    delta notifications (see [expire]). Victims are removed and
    notified in insertion (seq) order. Returns removed tuples. *)
let delete_where t ~now pred =
  expire t ~now;
  let victims =
    List.filter (fun (_, row) -> pred row.tuple) (rows_in_seq_order t)
  in
  List.iter
    (fun (k, row) ->
      detach t k row;
      t.delete_count <- t.delete_count + 1)
    victims;
  List.iter (fun (_, row) -> notify t (Delete row.tuple)) victims;
  List.map (fun (_, row) -> row.tuple) victims

(** All live tuples, in insertion order (stable for tests). *)
let tuples t ~now =
  expire t ~now;
  List.map (fun (_, row) -> row.tuple) (rows_in_seq_order t)

let fold t ~now f init =
  List.fold_left f init (tuples t ~now)

let iter t ~now f = List.iter f (tuples t ~now)

let mem t ~now tuple =
  expire t ~now;
  match Hashtbl.find_opt t.rows (key_string t tuple) with
  | Some row -> Tuple.equal_contents row.tuple tuple
  | None -> false

let clear t =
  Hashtbl.reset t.rows;
  List.iter (fun idx -> Hashtbl.reset idx.buckets) t.indexes;
  Heap.clear t.heap

(* --- secondary-index probes ---------------------------------------- *)

let find_index t positions =
  List.find_opt (fun idx -> idx.ipositions = positions) t.indexes

(* Create (and backfill) the index on first use; thereafter it is
   maintained incrementally by attach/detach. *)
let ensure_index t positions =
  match find_index t positions with
  | Some idx -> idx
  | None ->
      let idx = { ipositions = positions; buckets = Hashtbl.create 64 } in
      Hashtbl.iter (fun k row -> index_add idx k row) t.rows;
      t.indexes <- idx :: t.indexes;
      idx

let indexed_positions t = List.map (fun idx -> idx.ipositions) t.indexes

(** Live rows whose fields at [positions] (1-indexed) equal [values]
    under {!Value.equal}, in insertion (seq) order — the same subset
    and order a scan-and-filter would produce, at O(matches log
    matches) instead of O(N). An empty [positions] is a full scan. *)
let probe t ~now ~positions ~values =
  if List.length positions <> List.length values then
    invalid_arg "Table.probe: positions/values length mismatch";
  if positions = [] then tuples t ~now
  else begin
    expire t ~now;
    t.probe_count <- t.probe_count + 1;
    let idx = ensure_index t positions in
    match Hashtbl.find_opt idx.buckets (canonical_cat values) with
    | None -> []
    | Some bucket ->
        Hashtbl.fold (fun _ row acc -> row :: acc) bucket []
        |> List.sort (fun a b -> Stdlib.compare a.seq b.seq)
        |> List.map (fun row -> row.tuple)
  end

let bytes t ~now =
  fold t ~now (fun acc tu -> acc + Tuple.size_bytes tu) 0

type stats = {
  live : int;
  inserts : int;
  deletes : int;
  expirations : int;
  evictions : int;
  probes : int;
}

let stats t ~now =
  {
    live = size t ~now;
    inserts = t.insert_count;
    deletes = t.delete_count;
    expirations = t.expire_count;
    evictions = t.evict_count;
    probes = t.probe_count;
  }

(* Raw lifetime counters, readable without touching expiry: metric
   gauges sample these from arbitrary host contexts, where triggering
   an expiry sweep (and its delta notifications) would be a surprising
   side effect. *)
let insert_count t = t.insert_count
let probe_count t = t.probe_count
