lib/dataflow/tracer.ml: Array Hashtbl List Option Overlog Sim Store Tuple Value
