(** Binary wire format for transport frames (little-endian,
    length-prefixed). Version 2: every frame carries a kind, a channel
    sequence number, and a cumulative acknowledgement; version-1 input
    is rejected with a clean {!Error}. *)

exception Error of string

val version : int

(** Encode a tuple as a data frame; [delete] marks delete patterns.
    The tuple's id travels as the source-tuple id for cross-node
    tracing (paper §2.1.3); [seq] / [ack] are the transport header
    (default 0 for unsequenced sends). Raises {!Error} on unencodable
    input (strings over 64 KiB, more than 65535 fields). *)
val encode : ?delete:bool -> ?seq:int -> ?ack:int -> Tuple.t -> string

(** Encode a list of [(delete, tuple)] shipments as one delta-batch
    frame (kind 3) that occupies a single sequence number; the receiver
    delivers the items in list order. Raises {!Error} on more than
    65535 items. *)
val encode_batch : ?seq:int -> ?ack:int -> (bool * Tuple.t) list -> string

(** Standalone cumulative-acknowledgement frame. *)
val encode_ack : ack:int -> string

(** Liveness probe; the receiver answers with an ack frame. *)
val encode_heartbeat : ack:int -> string

type message = {
  src_tuple_id : int;
  delete : bool;
  name : string;
  fields : Value.t list;
}

type kind = Data of message | Batch of message list | Ack | Heartbeat

type frame = { seq : int; ack : int; kind : kind }

(** Decode a wire frame; raises {!Error} on malformed input, including
    trailing bytes, unknown kinds, and the pre-transport version-1
    layout. *)
val decode : string -> frame

(** Wire size in bytes of a tuple's data-frame encoding. *)
val size : ?delete:bool -> Tuple.t -> int
