(** Reliable transport between a {!Node} and the simulated network.

    The engine's original send path was fire-and-forget: every
    [Sim.Network.Drop] silently lost a tuple, and the paper's monitors
    (tupleTable shipping §2.1.3, Chandy–Lamport snapshots §3.3,
    token-passing traversals §3.1.2) degraded invisibly. This layer
    makes cross-node channels earn the reliable-delivery assumption:

    - per-peer sequence-numbered data frames (Wire v2);
    - cumulative acks, piggybacked on reverse data frames plus delayed
      standalone ack frames;
    - retransmission of the lowest unacked frame with exponential
      backoff and deterministic RNG jitter;
    - exactly-once, in-order delivery at the receiver (duplicate
      suppression plus a bounded reorder buffer);
    - bounded per-peer send queues: frames beyond the window wait in a
      pending queue; when that fills, the oldest delete-pattern frame
      is evicted first, otherwise the newcomer is dropped and counted
      as backpressure ([transport.sendq.drops]);
    - a heartbeat-driven failure detector per peer
      (alive → suspect after [suspect_after] misses → dead after
      [dead_after] of silence → back to alive on any frame), reflected
      into the [p2PeerStatus] catalog table by {!P2stats};
    - optional delta batching ({!set_batching}): tuples shipped to the
      same peer within one virtual-clock instant coalesce into a single
      Wire delta-batch frame occupying one sequence number, unbatched
      transparently (in item order) at the receiver. The recursive
      cascades of semi-naive evaluation ship whole frontiers this way
      for one frame each.

    The transport is host-agnostic: the engine injects the clock, the
    scheduler, the raw network send and the upward deliver hook, so
    everything stays a pure function of the simulation seed. *)

open Overlog

type config = {
  window : int;  (** max unacked data frames in flight per peer *)
  max_pending : int;  (** bounded per-peer queue behind the window *)
  reorder_limit : int;  (** receiver's out-of-order buffer per peer *)
  ack_delay : float;  (** standalone-ack delay (piggyback opportunity) *)
  rto_base : float;  (** initial retransmission timeout *)
  rto_max : float;  (** backoff cap *)
  heartbeat_period : float;  (** probe interval for silent peers *)
  suspect_after : int;  (** consecutive misses before suspect *)
  dead_after : float;  (** silence before a suspect peer is dead *)
  rate_window : float;  (** window for the retransmit-rate gauge *)
  max_batch : int;  (** tuples per delta-batch frame when batching *)
}

let default_config =
  {
    window = 32;
    max_pending = 128;
    reorder_limit = 64;
    ack_delay = 0.05;
    rto_base = 0.25;
    rto_max = 4.0;
    heartbeat_period = 2.0;
    suspect_after = 3;
    dead_after = 10.0;
    rate_window = 10.0;
    max_batch = 64;
  }

type status = Alive | Suspect | Dead

let status_name = function Alive -> "alive" | Suspect -> "suspect" | Dead -> "dead"

(* A transmitted-but-unacked frame: one shipment group occupying one
   sequence number — a singleton for a plain data frame, several
   tuples for a delta batch. [deadline] names the armed retransmission
   timer: timer callbacks capture the value they were armed with and
   go stale when it moves (acks cannot cancel scheduled events, so
   they invalidate them instead). *)
type entry = {
  seq : int;
  items : (bool * Tuple.t) list;  (* (delete, tuple); nonempty *)
  mutable rto : float;
  mutable deadline : float;
}

type chan = {
  peer : string;
  (* outbound *)
  mutable next_seq : int;
  unacked : entry Queue.t;  (* seq order; front = lowest unacked *)
  mutable pending : (bool * Tuple.t) list Queue.t;
      (* shipment groups with no seq assigned yet *)
  buffer : (bool * Tuple.t) Queue.t;
      (* delta-batch coalescing buffer: sends within the current
         virtual-clock instant, flushed by a zero-delay callback *)
  mutable flush_armed : bool;
  (* inbound *)
  mutable cum_ack : int;  (* highest in-order data seq received *)
  reorder : (int, int * Wire.message list) Hashtbl.t;
      (* seq -> (bytes, msgs in delivery order) *)
  mutable ack_pending : bool;
  (* failure detector *)
  mutable last_heard : float;
  mutable misses : int;
  mutable status : status;
}

type peer_info = {
  peer : string;
  status : status;
  misses : int;
  silent_for : float;
  sendq : int;
}

type t = {
  addr : string;
  cfg : config;
  rng : Sim.Rng.t;
  chans : (string, chan) Hashtbl.t;
  mutable reliable : bool;
  mutable batching : bool;  (* coalesce same-instant sends per peer *)
  mutable stopped : bool;  (* node retired: drop timers, stop ticking *)
  (* engine hooks *)
  now : unit -> float;
  schedule : float -> (unit -> unit) -> unit;  (* relative delay *)
  raw_send : dst:string -> string -> unit;
  mutable deliver : src:string -> bytes:int -> Wire.message -> unit;
  active : unit -> bool;  (* false while the owning node is crashed *)
  (* counters (registered into the node's metric registry) *)
  tx_frames : Metrics.Counter.t;
  tx_acks : Metrics.Counter.t;
  tx_heartbeats : Metrics.Counter.t;
  retransmits : Metrics.Counter.t;
  tx_batches : Metrics.Counter.t;  (* delta-batch frames sent *)
  tx_batched_tuples : Metrics.Counter.t;  (* tuples inside those frames *)
  rx_frames : Metrics.Counter.t;
  rx_duplicates : Metrics.Counter.t;
  rx_reordered : Metrics.Counter.t;
  rx_batches : Metrics.Counter.t;  (* delta-batch frames received *)
  sendq_drops : Metrics.Counter.t;
  (* retransmit-rate window (for the watchdog's saturation rule) *)
  mutable rate_mark : float;
  mutable rate_base : int;
  mutable rate_prev : int;
}

let addr t = t.addr
let reliable t = t.reliable
let set_reliable t b = t.reliable <- b
let batching t = t.batching
let set_batching t b = t.batching <- b
let set_deliver t f = t.deliver <- f

(** Permanently silence a retired node's transport: pending timers go
    stale and the heartbeat tick stops rescheduling itself. *)
let stop t = t.stopped <- true

(* The channel table is keyed by peer address; a channel outlives the
   frames on it, so stale timer closures double-check that the channel
   they captured is still the live one (forget_peer swaps it out). *)
let chan_live t (c : chan) =
  match Hashtbl.find_opt t.chans c.peer with Some c' -> c' == c | None -> false

let chan t peer =
  match Hashtbl.find_opt t.chans peer with
  | Some c -> c
  | None ->
      let now = t.now () in
      let c =
        {
          peer;
          next_seq = 1;
          unacked = Queue.create ();
          pending = Queue.create ();
          buffer = Queue.create ();
          flush_armed = false;
          cum_ack = 0;
          reorder = Hashtbl.create 8;
          ack_pending = false;
          last_heard = now;
          misses = 0;
          status = Alive;
        }
      in
      Hashtbl.replace t.chans peer c;
      c

(* --- retransmit-rate window --- *)

let rotate_rate t =
  let now = t.now () in
  let cur = Metrics.Counter.value t.retransmits in
  if now -. t.rate_mark >= 2. *. t.cfg.rate_window then begin
    t.rate_prev <- 0;
    t.rate_base <- cur;
    t.rate_mark <- now
  end
  else if now -. t.rate_mark >= t.cfg.rate_window then begin
    t.rate_prev <- cur - t.rate_base;
    t.rate_base <- cur;
    t.rate_mark <- t.rate_mark +. t.cfg.rate_window
  end

(** Retransmits in the busier of the last completed and the current
    [rate_window] — responsive on the way up, decaying within two
    windows of quiet. *)
let retx_rate t =
  rotate_rate t;
  float_of_int (max t.rate_prev (Metrics.Counter.value t.retransmits - t.rate_base))

(* --- failure detector --- *)

let update_status t (c : chan) =
  match c.status with
  | Alive -> if c.misses >= t.cfg.suspect_after then c.status <- Suspect
  | Suspect ->
      if t.now () -. c.last_heard >= t.cfg.dead_after then c.status <- Dead
  | Dead -> ()

let miss t (c : chan) =
  c.misses <- c.misses + 1;
  update_status t c

let heard t (c : chan) =
  c.last_heard <- t.now ();
  c.misses <- 0;
  c.status <- Alive

(* --- sending --- *)

(* One shipment group on the wire: singletons stay ordinary data
   frames (batching is invisible when nothing coalesced), larger
   groups become one delta-batch frame. *)
let encode_group t c (items : (bool * Tuple.t) list) ~seq =
  match items with
  | [ (delete, tuple) ] -> Wire.encode ~delete ~seq ~ack:c.cum_ack tuple
  | items ->
      Metrics.Counter.incr t.tx_batches;
      Metrics.Counter.add t.tx_batched_tuples (List.length items);
      Wire.encode_batch ~seq ~ack:c.cum_ack items

let rec transmit t c (e : entry) =
  c.ack_pending <- false;  (* the frame piggybacks the current cum ack *)
  Metrics.Counter.incr t.tx_frames;
  t.raw_send ~dst:c.peer (encode_group t c e.items ~seq:e.seq);
  arm_retx t c e

and arm_retx t c e =
  if t.reliable then begin
    let delay = e.rto *. (1. +. (0.25 *. Sim.Rng.float t.rng)) in
    let deadline = t.now () +. delay in
    e.deadline <- deadline;
    t.schedule delay (fun () -> on_retx_timer t c e deadline)
  end

and on_retx_timer t c e deadline =
  (* Stale if the frame was acked, re-armed, or the channel forgotten. *)
  if t.reliable && (not t.stopped) && e.deadline = deadline && chan_live t c then
    if not (t.active ()) then
      (* crashed host: stay silent but keep the frame armed, so
         retransmission resumes after recovery *)
      arm_retx t c e
    else if
      match Queue.peek_opt c.unacked with Some front -> front == e | None -> false
    then begin
      (* Only the lowest unacked frame retransmits: the receiver
         buffers out-of-order frames, so filling the gap advances the
         cumulative ack past everything else that already arrived. *)
      miss t c;
      Metrics.Counter.incr t.retransmits;
      rotate_rate t;
      e.rto <- Float.min (e.rto *. 2.) t.cfg.rto_max;
      transmit t c e
    end
    else
      (* Not the front: re-arm without backoff; its turn comes when
         the frames before it are acked. *)
      arm_retx t c e

let promote t c =
  while Queue.length c.unacked < t.cfg.window && not (Queue.is_empty c.pending) do
    let items = Queue.pop c.pending in
    let e =
      { seq = c.next_seq; items; rto = t.cfg.rto_base; deadline = infinity }
    in
    c.next_seq <- c.next_seq + 1;
    Queue.push e c.unacked;
    transmit t c e
  done

let handle_ack t c ack =
  let advanced = ref false in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt c.unacked with
    | Some e when e.seq <= ack ->
        ignore (Queue.pop c.unacked);
        e.deadline <- infinity;  (* invalidate the armed timer *)
        advanced := true
    | _ -> continue := false
  done;
  if !advanced then promote t c

(* Drop policy when the pending queue is full: evict the oldest
   singleton delete-pattern group (soft-state cleanup is the safest
   loss; batches are never split), else refuse the newcomer. Either
   way one group is dropped and counted as backpressure. *)
let evict_oldest_delete (c : chan) =
  let found = ref false in
  let keep = Queue.create () in
  Queue.iter
    (fun group ->
      match group with
      | [ (true, _) ] when not !found -> found := true
      | _ -> Queue.push group keep)
    c.pending;
  if !found then c.pending <- keep;
  !found

(* Ship one group (one future sequence number) to the peer. *)
let send_group t c items =
  if not t.reliable then begin
    (* ablation: fire-and-forget, still in frame format *)
    let seq = c.next_seq in
    c.next_seq <- seq + 1;
    Metrics.Counter.incr t.tx_frames;
    t.raw_send ~dst:c.peer (encode_group t c items ~seq)
  end
  else if Queue.length c.unacked < t.cfg.window then begin
    let e =
      { seq = c.next_seq; items; rto = t.cfg.rto_base; deadline = infinity }
    in
    c.next_seq <- c.next_seq + 1;
    Queue.push e c.unacked;
    transmit t c e
  end
  else if Queue.length c.pending < t.cfg.max_pending then
    Queue.push items c.pending
  else begin
    Metrics.Counter.incr t.sendq_drops;
    if evict_oldest_delete c then Queue.push items c.pending
    (* else: the newcomer is the dropped group *)
  end

(* Drain the coalescing buffer into delta-batch groups of at most
   [max_batch] tuples each. Runs from a zero-delay callback, i.e. at
   the same virtual instant as the sends it coalesces (the event queue
   breaks ties in insertion order, so the flush follows the whole
   delivery cascade that filled the buffer). *)
let flush_buffer t c =
  c.flush_armed <- false;
  if (not t.stopped) && chan_live t c then
    while not (Queue.is_empty c.buffer) do
      let group = ref [] in
      while
        not (Queue.is_empty c.buffer) && List.length !group < t.cfg.max_batch
      do
        group := Queue.pop c.buffer :: !group
      done;
      send_group t c (List.rev !group)
    done

(** Ship one tuple to [dst], reliably (sequenced, retransmitted,
    bounded queue) unless the transport is ablated. With batching
    enabled the tuple first parks in the peer's coalescing buffer and
    leaves — together with everything else sent to that peer at this
    virtual instant — in a single delta-batch frame. *)
let send t ~dst ~delete tuple =
  let c = chan t dst in
  if t.batching then begin
    Queue.push (delete, tuple) c.buffer;
    if not c.flush_armed then begin
      c.flush_armed <- true;
      t.schedule 0. (fun () -> flush_buffer t c)
    end
  end
  else send_group t c [ (delete, tuple) ]

(* --- acks --- *)

let schedule_ack t (c : chan) =
  if not c.ack_pending then begin
    c.ack_pending <- true;
    t.schedule t.cfg.ack_delay (fun () ->
        (* piggybacked (cleared) or channel forgotten -> stale *)
        if c.ack_pending && (not t.stopped) && chan_live t c then begin
          c.ack_pending <- false;
          if t.active () then begin
            Metrics.Counter.incr t.tx_acks;
            Metrics.Counter.incr t.tx_frames;
            t.raw_send ~dst:c.peer (Wire.encode_ack ~ack:c.cum_ack)
          end
        end)
  end

(* --- receiving --- *)

(** A frame arrived from [src]. Decodes it, feeds the ack side,
    suppresses duplicates, reorders, and hands in-order data messages
    up through the deliver hook. Raises [Wire.Error] on malformed
    input (the simulator never corrupts frames). *)
let receive t ~src packet =
  let frame = Wire.decode packet in
  Metrics.Counter.incr t.rx_frames;
  let c = chan t src in
  heard t c;
  if t.reliable then handle_ack t c frame.Wire.ack;
  match frame.Wire.kind with
  | Wire.Ack -> ()
  | Wire.Heartbeat ->
      (* answer the probe (delayed, so reverse data can piggyback) *)
      if t.reliable then schedule_ack t c
  | Wire.Data _ | Wire.Batch _ ->
      (* A delta batch is one sequenced unit: its messages are
         delivered consecutively in item order, so batching stays
         invisible above the transport. The frame's bytes are charged
         with its first message. *)
      let msgs =
        match frame.Wire.kind with
        | Wire.Data msg -> [ msg ]
        | Wire.Batch msgs ->
            Metrics.Counter.incr t.rx_batches;
            msgs
        | Wire.Ack | Wire.Heartbeat -> assert false
      in
      let bytes = String.length packet in
      let deliver_all ~bytes msgs =
        List.iteri
          (fun i m -> t.deliver ~src ~bytes:(if i = 0 then bytes else 0) m)
          msgs
      in
      if not t.reliable then deliver_all ~bytes msgs
      else begin
        let s = frame.Wire.seq in
        if s <= c.cum_ack then begin
          (* duplicate: already delivered; re-ack so a lost ack can't
             make the sender retransmit forever *)
          Metrics.Counter.incr t.rx_duplicates;
          schedule_ack t c
        end
        else if s = c.cum_ack + 1 then begin
          deliver_all ~bytes msgs;
          c.cum_ack <- s;
          (* drain the reorder buffer while it continues the run *)
          let continue = ref true in
          while !continue do
            match Hashtbl.find_opt c.reorder (c.cum_ack + 1) with
            | Some (b, ms) ->
                Hashtbl.remove c.reorder (c.cum_ack + 1);
                c.cum_ack <- c.cum_ack + 1;
                deliver_all ~bytes:b ms
            | None -> continue := false
          done;
          schedule_ack t c
        end
        else begin
          (* gap: an earlier frame was lost (retransmission re-sends
             it); buffer this one unless it's already there *)
          if Hashtbl.mem c.reorder s then Metrics.Counter.incr t.rx_duplicates
          else if Hashtbl.length c.reorder < t.cfg.reorder_limit then begin
            Hashtbl.replace c.reorder s (bytes, msgs);
            Metrics.Counter.incr t.rx_reordered
          end;
          (* else: over the buffer bound; the retransmit path resupplies *)
          schedule_ack t c  (* duplicate acks point the sender at the gap *)
        end
      end

(* --- heartbeats --- *)

let rec heartbeat_tick t =
  if t.stopped then ()
  else begin
  (if not (t.active ()) then
     (* Crashed host: freeze the detector instead of accusing every
        peer of the silence we caused; recovery restarts with grace. *)
     Hashtbl.iter (fun _ c -> c.last_heard <- t.now ()) t.chans
   else if t.reliable then
     Hashtbl.iter
       (fun _ c ->
         if t.now () -. c.last_heard >= t.cfg.heartbeat_period then begin
           (* the previous probe (or traffic) went unanswered *)
           miss t c;
           Metrics.Counter.incr t.tx_heartbeats;
           Metrics.Counter.incr t.tx_frames;
           c.ack_pending <- false;  (* the heartbeat piggybacks the ack *)
           t.raw_send ~dst:c.peer (Wire.encode_heartbeat ~ack:c.cum_ack)
         end)
       t.chans);
  t.schedule t.cfg.heartbeat_period (fun () -> heartbeat_tick t)
  end

(* --- construction --- *)

let create ~addr ?(config = default_config) ~rng ~now ~schedule ~raw_send ~active ()
    =
  let t =
    {
      addr;
      cfg = config;
      rng;
      chans = Hashtbl.create 8;
      reliable = true;
      batching = false;
      stopped = false;
      now;
      schedule;
      raw_send;
      deliver = (fun ~src:_ ~bytes:_ _ -> ());
      active;
      tx_frames = Metrics.Counter.create ();
      tx_acks = Metrics.Counter.create ();
      tx_heartbeats = Metrics.Counter.create ();
      retransmits = Metrics.Counter.create ();
      tx_batches = Metrics.Counter.create ();
      tx_batched_tuples = Metrics.Counter.create ();
      rx_frames = Metrics.Counter.create ();
      rx_duplicates = Metrics.Counter.create ();
      rx_reordered = Metrics.Counter.create ();
      rx_batches = Metrics.Counter.create ();
      sendq_drops = Metrics.Counter.create ();
      rate_mark = now ();
      rate_base = 0;
      rate_prev = 0;
    }
  in
  (* stagger the first tick so co-created transports don't all probe
     on the same instant *)
  schedule (config.heartbeat_period *. (1. +. Sim.Rng.float rng)) (fun () ->
      heartbeat_tick t);
  t

(* --- introspection --- *)

let sendq_depth t =
  Hashtbl.fold
    (fun _ c acc ->
      acc + Queue.length c.unacked + Queue.length c.pending
      + Queue.length c.buffer)
    t.chans 0

let count_status t s =
  Hashtbl.fold
    (fun _ (c : chan) acc -> if c.status = s then acc + 1 else acc)
    t.chans 0

(** Per-peer channel and failure-detector state, sorted by peer — the
    source of the [p2PeerStatus] reflection rows and [p2ql peers]. *)
let peers t =
  Hashtbl.fold
    (fun _ (c : chan) acc ->
      {
        peer = c.peer;
        status = c.status;
        misses = c.misses;
        silent_for = t.now () -. c.last_heard;
        sendq =
          Queue.length c.unacked + Queue.length c.pending
          + Queue.length c.buffer;
      }
      :: acc)
    t.chans []
  |> List.sort (fun a b -> String.compare a.peer b.peer)

let peer_status t peer =
  Option.map (fun (c : chan) -> c.status) (Hashtbl.find_opt t.chans peer)

(** Drop all state for a retired peer: queued frames, reorder buffer,
    detector state. Armed timers go stale via {!chan_live}. *)
let forget_peer t peer = Hashtbl.remove t.chans peer

let retransmit_count t = Metrics.Counter.value t.retransmits
let duplicate_count t = Metrics.Counter.value t.rx_duplicates

(** Register the [transport.*] metric names into a node registry (the
    catalog is documented in docs/OPERATIONS.md). *)
let register_metrics t reg =
  Metrics.attach_counter reg "transport.tx.frames" t.tx_frames;
  Metrics.attach_counter reg "transport.tx.acks" t.tx_acks;
  Metrics.attach_counter reg "transport.tx.heartbeats" t.tx_heartbeats;
  Metrics.attach_counter reg "transport.retransmits" t.retransmits;
  Metrics.attach_counter reg "transport.tx.batches" t.tx_batches;
  Metrics.attach_counter reg "transport.tx.batched_tuples" t.tx_batched_tuples;
  Metrics.attach_counter reg "transport.rx.frames" t.rx_frames;
  Metrics.attach_counter reg "transport.rx.duplicates" t.rx_duplicates;
  Metrics.attach_counter reg "transport.rx.reordered" t.rx_reordered;
  Metrics.attach_counter reg "transport.rx.batches" t.rx_batches;
  Metrics.attach_counter reg "transport.sendq.drops" t.sendq_drops;
  Metrics.register reg "transport.sendq.depth" Metrics.KGauge (fun () ->
      float_of_int (sendq_depth t));
  Metrics.register reg "transport.retx.rate" Metrics.KGauge (fun () -> retx_rate t);
  Metrics.register reg "transport.peers.suspect" Metrics.KGauge (fun () ->
      float_of_int (count_status t Suspect));
  Metrics.register reg "transport.peers.dead" Metrics.KGauge (fun () ->
      float_of_int (count_status t Dead))
