(** Hand-written lexer for the OverLog dialect. *)

type token =
  | IDENT of string        (* lowercase-initial: predicate / constant / keyword *)
  | VARIABLE of string     (* uppercase-initial or _-initial: variable *)
  | INT of int
  | IDLIT of int  (* #123: ring identifier literal *)
  | FLOAT of float
  | STRING of string
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | LANGLE | RANGLE        (* < > when used as aggregate brackets *)
  | COMMA | DOT
  | IMPLIES                (* :- *)
  | ASSIGN                 (* := *)
  | AT                     (* @ *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | NEQ | LE | GE     (* == != <= >= ; < > are LANGLE/RANGLE *)
  | ANDAND | OROR | BANG
  | PRAGMA of string       (* %% rest-of-line: analyzer directive *)
  | EOF

exception Error of string * int  (* message, line *)

let token_to_string = function
  | IDENT s -> Fmt.str "ident %s" s
  | VARIABLE s -> Fmt.str "variable %s" s
  | INT i -> string_of_int i
  | IDLIT i -> "#" ^ string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Fmt.str "%S" s
  | LPAREN -> "(" | RPAREN -> ")"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | LANGLE -> "<" | RANGLE -> ">"
  | COMMA -> "," | DOT -> "."
  | IMPLIES -> ":-" | ASSIGN -> ":="
  | AT -> "@"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | EQ -> "==" | NEQ -> "!=" | LE -> "<=" | GE -> ">="
  | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
  | PRAGMA s -> Fmt.str "%%%% %s" s
  | EOF -> "<eof>"

type state = { src : string; mutable pos : int; mutable line : int }

let make src = { src; pos = 0; line = 1 }

let peek_char st =
  if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek_char2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek_char st with Some '\n' -> st.line <- st.line + 1 | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_alpha c || is_digit c || c = '_'

let rec skip_ws st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '/' when peek_char2 st = Some '/' ->
      skip_line_comment st;
      skip_ws st
  | Some '/' when peek_char2 st = Some '*' ->
      skip_block_comment st;
      skip_ws st
  | _ -> ()

and skip_line_comment st =
  let rec go () =
    match peek_char st with
    | Some '\n' | None -> ()
    | Some _ ->
        advance st;
        go ()
  in
  go ()

and skip_block_comment st =
  advance st;
  advance st;
  let rec go () =
    match (peek_char st, peek_char2 st) with
    | Some '*', Some '/' ->
        advance st;
        advance st
    | None, _ -> raise (Error ("unterminated comment", st.line))
    | Some _, _ ->
        advance st;
        go ()
  in
  go ()

let lex_number st =
  let start = st.pos in
  while (match peek_char st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  (* Decimal point only if followed by a digit — a bare '.' terminates
     the statement. *)
  let is_float =
    match (peek_char st, peek_char2 st) with
    | Some '.', Some c when is_digit c ->
        advance st;
        while (match peek_char st with Some c -> is_digit c | None -> false) do
          advance st
        done;
        true
    | _ -> false
  in
  let text = String.sub st.src start (st.pos - start) in
  if is_float then FLOAT (float_of_string text) else INT (int_of_string text)

let lex_ident st =
  let start = st.pos in
  while (match peek_char st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  let c0 = text.[0] in
  if (c0 >= 'A' && c0 <= 'Z') || c0 = '_' then VARIABLE text else IDENT text

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None -> raise (Error ("unterminated string", st.line))
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek_char st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some c -> advance st; Buffer.add_char buf c; go ()
        | None -> raise (Error ("unterminated string escape", st.line)))
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  STRING (Buffer.contents buf)

let next_token st =
  skip_ws st;
  match peek_char st with
  | None -> (EOF, st.line)
  | Some c ->
      let line = st.line in
      let two expected tok fallback =
        advance st;
        if peek_char st = Some expected then (advance st; tok) else fallback ()
      in
      let tok =
        if is_digit c then lex_number st
        else if is_alpha c || c = '_' then lex_ident st
        else
          match c with
          | '"' -> lex_string st
          | '#' -> (
              advance st;
              match peek_char st with
              | Some c when is_digit c -> (
                  match lex_number st with
                  | INT i -> IDLIT i
                  | _ -> raise (Error ("expected integer after #", line)))
              | _ -> raise (Error ("expected integer after #", line)))
          | '(' -> advance st; LPAREN
          | ')' -> advance st; RPAREN
          | '[' -> advance st; LBRACKET
          | ']' -> advance st; RBRACKET
          | ',' -> advance st; COMMA
          | '.' -> advance st; DOT
          | '@' -> advance st; AT
          | '+' -> advance st; PLUS
          | '-' -> advance st; MINUS
          | '*' -> advance st; STAR
          | '/' -> advance st; SLASH
          | '%' when peek_char2 st = Some '%' ->
              (* [%% ...] is an analyzer pragma: the rest of the line is
                 its text (a bare [%] stays the modulo operator). *)
              advance st;
              advance st;
              let start = st.pos in
              let rec go () =
                match peek_char st with
                | Some '\n' | None -> ()
                | Some _ ->
                    advance st;
                    go ()
              in
              go ();
              PRAGMA (String.trim (String.sub st.src start (st.pos - start)))
          | '%' -> advance st; PERCENT
          | ':' ->
              advance st;
              (match peek_char st with
              | Some '-' -> advance st; IMPLIES
              | Some '=' -> advance st; ASSIGN
              | _ -> raise (Error ("expected :- or :=", line)))
          | '=' -> two '=' EQ (fun () -> raise (Error ("expected ==", line)))
          | '!' -> two '=' NEQ (fun () -> BANG)
          | '<' -> two '=' LE (fun () -> LANGLE)
          | '>' -> two '=' GE (fun () -> RANGLE)
          | '&' -> two '&' ANDAND (fun () -> raise (Error ("expected &&", line)))
          | '|' -> two '|' OROR (fun () -> raise (Error ("expected ||", line)))
          | c -> raise (Error (Fmt.str "unexpected character %C" c, line))
      in
      (tok, line)

(** Tokenize a whole source string. *)
let tokenize src =
  let st = make src in
  let rec go acc =
    match next_token st with
    | (EOF, line) -> List.rev ((EOF, line) :: acc)
    | tl -> go (tl :: acc)
  in
  go []
