lib/overlog/lexer.ml: Buffer Fmt List String
