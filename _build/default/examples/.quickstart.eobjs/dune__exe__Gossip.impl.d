examples/gossip.ml: Epidemic Fmt List Overlog P2_runtime
