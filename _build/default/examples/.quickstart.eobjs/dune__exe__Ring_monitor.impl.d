examples/ring_monitor.ml: Chord Core Fmt List P2_runtime
