(** Execution tracer (paper §2.1): correlates strand taps into causal
    [ruleExec] rows and memoizes tuples in the [tupleTable] with
    reference counting. Handles pipelined executions via per-rule
    records associated with intervals of join stages (§2.1.2). *)

open Overlog

type t

type config = {
  max_records_per_rule : int;  (** the paper's fixed record array *)
  rule_exec_lifetime : float;
  rule_exec_cap : int;
  tuple_table_lifetime : float;
}

val default_config : config

(** Shrunk in-RAM window for nodes spilling trace records to a
    flight-recorder sink: 5 s / 256-row [ruleExec], 10 s
    [tupleTable]. History lives in the segment log instead. *)
val spill_config : config

(** Unbounded window for replay: restored history must never expire
    or be evicted out from under a forensic query. *)
val replay_config : config

val create :
  ?config:config ->
  addr:string ->
  now:(unit -> float) ->
  charge:(float -> unit) ->
  unit ->
  t

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

(** Attach (or detach, with [None]) the flight-recorder sink. While
    set, every tuple registration spills the tuple's contents plus
    its [tupleTable] row, and every new [ruleExec] row spills itself,
    each stamped with the node-local clock. The sink must not block:
    the runtime hands it a {!Seglog} writer that only buffers. *)
val set_sink : t -> (stamp:float -> delete:bool -> Tuple.t -> unit) option -> unit

(** Re-insert a recorded trace record (replay): [ruleExec] /
    [tupleTable] rows return to their tables (firing subscribed delta
    strands), other tuples refill the contents memo under their
    recorded id. Never feeds the sink. *)
val restore : t -> Tuple.t -> unit

(** Tracer self-metrics, counted only while tracing is enabled: taps
    fired (input/precondition/output/register observations), causal
    [ruleExec] rows added, and tuples memoized in the [tupleTable] —
    the runtime quantification of the paper's execution-logging
    overhead. *)
type stats = {
  taps : Metrics.Counter.t;
  rule_exec_rows : Metrics.Counter.t;
  tuples_registered : Metrics.Counter.t;
}

(** This tracer's live metric set. *)
val stats : t -> stats

(** [ruleExec(localAddr, ruleID, causeID, effectID, tCause, tOut,
    isEvent)] — queryable like any other table. *)
val rule_exec_table : t -> Store.Table.t

(** [tupleTable(localAddr, tupleID, srcAddr, srcTupleID, destAddr)]. *)
val tuple_table : t -> Store.Table.t

(** Resolve a memoized tuple id back to its contents (forensics). *)
val resolve : t -> int -> Tuple.t option

val live_bytes : t -> now:float -> int
val live_tuples : t -> now:float -> int

(** Record a created or received tuple in the tupleTable. *)
val register_tuple : t -> Tuple.t -> src:string -> src_id:int -> dst:string -> unit

(** Taps, driven by the execution machine. *)

val on_input : t -> rule:string -> join_count:int -> tuple_id:int -> unit

val on_precondition :
  t -> rule:string -> join_count:int -> stage:int -> tuple_id:int -> unit

val on_stage_complete : t -> rule:string -> join_count:int -> stage:int -> unit
val on_output : t -> rule:string -> join_count:int -> tuple_id:int -> unit

(** All agenda work for the triggering input [input_id] has drained:
    reclaim its record. *)
val on_execution_complete : t -> rule:string -> join_count:int -> input_id:int -> unit

(** Number of live tracer records for a rule (tests). *)
val record_count : t -> string -> int
