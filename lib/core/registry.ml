(** The embedded OverLog corpus: every program this repository
    generates and installs, paired with the programs that are
    co-installed before it (its analyzer environment).

    The paper deploys monitors piecemeal into nodes already running
    Chord (§3), so most monitors legitimately reference tables the
    Chord program materialized — checking them standalone would
    false-positive. [p2ql check --embedded] and the analyzer's positive
    sweep both walk this list. *)

let chord = Chord.program Chord.default_params
let chord_buggy = Chord.program Chord.buggy_params

(** (name, co-installed library programs in install order, program). *)
let embedded : (string * string list * string) list =
  [
    ("chord", [], chord);
    ("chord-buggy", [], chord_buggy);
    ("chord-boot-facts", [ chord ], Chord.boot_facts ~addr:"n0" ~landmark:"n0");
    ("ring-check-active", [ chord ], Ring_check.active_program ());
    ("ring-check-passive", [ chord ], Ring_check.passive_program);
    ("ordering-opportunistic", [ chord ], Ordering.opportunistic_program);
    ("ordering-traversal", [ chord ], Ordering.traversal_program);
    ( "ordering-traversal-ok",
      [ chord; Ordering.traversal_program ],
      Ordering.traversal_ok_program );
    ("oscillation-single", [ chord ], Oscillation.single_program);
    ( "oscillation-repeat",
      [ chord; Oscillation.single_program ],
      Oscillation.repeat_program () );
    ( "oscillation-collaborative",
      [ chord; Oscillation.single_program; Oscillation.repeat_program () ],
      Oscillation.collaborative_program () );
    ("consistency", [ chord ], Consistency.program ());
    ("snapshot-backpointer", [ chord ], Snapshot.backpointer_program ());
    ( "snapshot-participant",
      [ chord; Snapshot.backpointer_program () ],
      Snapshot.participant_program );
    ( "snapshot-initiator",
      [ chord; Snapshot.backpointer_program (); Snapshot.participant_program ],
      Snapshot.initiator_program ~t_snap:10. );
    ( "snapshot-lookup",
      [ chord; Snapshot.backpointer_program (); Snapshot.participant_program ],
      Snapshot.snap_lookup_program );
    ("assertions", [ chord ], Assertions.program ());
    ("profiler", [ chord; Consistency.program () ], Profiler.program ~root_rule:"cs2");
    ( "metrics-watchdog",
      [ P2_runtime.P2stats.schema () ],
      Watchdog.program () );
  ]

(** Analyzer environment for one embedded program: fold its library
    programs' definitions, as [Node.install] would see them. *)
let env_of_libs libs =
  List.fold_left
    (fun env src -> Analysis.env_of_program ~init:env (Overlog.Parser.parse src))
    Analysis.empty_env libs
