(* Higher-order watchpoints (paper §1.3): "the system can be
   programmed to react to events by installing new triggers itself,
   for example to provide more detailed information about a particular
   area of the system."

   This example installs a cheap, permanent watchpoint (a regression
   test left in production): it watches Chord's routing consistency at
   a low rate. When the watchpoint raises an alarm, the *host reacts by
   installing a more detailed diagnostic program on-line* — the active
   ring probes at a high rate plus an ordering traversal — exactly the
   autonomic escalation loop the paper motivates.

     dune exec examples/watchpoints.exe
*)

let banner fmt = Fmt.pr ("@.--- " ^^ fmt ^^ " ---@.")

let () =
  let engine = P2_runtime.Engine.create ~seed:31 () in
  Fmt.pr "Booting a 10-node P2 Chord ring...@.";
  let net = Chord.boot engine 10 in
  P2_runtime.Engine.run_for engine 150.;
  Fmt.pr "ring correct: %b@." (Chord.ring_correct net);

  banner "phase 1: cheap permanent watchpoint (consistency probe, 1/10 s)";
  let probe =
    Core.Consistency.install ~addrs:[ net.landmark ] ~t_probe:10. ~t_tally:10.
      ~window:10. ~alarm_below:0.99 net
  in
  (* the autonomic reaction: on the first consAlarm, escalate *)
  let escalated = ref false in
  let detail = ref None in
  let traversal = ref None in
  P2_runtime.Engine.watch engine net.landmark "consAlarm" (fun _ ->
      if not !escalated then begin
        escalated := true;
        Fmt.pr "[%.1f] consAlarm! escalating: installing detailed probes on-line@."
          (P2_runtime.Engine.now engine);
        detail := Some (Core.Ring_check.install ~active:true ~t_probe:2. net);
        let _, problems, ok = Core.Ordering.install ~opportunistic:false net in
        Core.Ordering.start_traversal net ~addr:net.landmark ~token:99;
        (* re-run the global traversal once the ring has had time to heal *)
        P2_runtime.Engine.at engine
          ~time:(P2_runtime.Engine.now engine +. 60.)
          (fun () -> Core.Ordering.start_traversal net ~addr:net.landmark ~token:100);
        traversal := Some (problems, ok)
      end);
  P2_runtime.Engine.run_for engine 90.;
  Fmt.pr "background probes so far: %d result(s), all healthy: %b@."
    (List.length (Core.Consistency.results probe))
    (List.for_all (fun r -> r.Core.Consistency.value >= 0.99)
       (Core.Consistency.results probe));

  banner "phase 2: inject a fault (crash one of the landmark's fingers)";
  let node = P2_runtime.Engine.node engine net.landmark in
  let victim =
    match Store.Catalog.find (P2_runtime.Node.catalog node) "uniqueFinger" with
    | Some t -> (
        match
          Store.Table.tuples t ~now:(P2_runtime.Engine.now engine)
          |> List.map (fun tu -> Overlog.Value.as_addr (Overlog.Tuple.field tu 2))
          |> List.filter (fun a -> a <> net.landmark)
        with
        | f :: _ -> f
        | [] -> List.nth net.addrs 5)
    | None -> List.nth net.addrs 5
  in
  Fmt.pr "crashing %s@." victim;
  P2_runtime.Engine.crash engine victim;
  P2_runtime.Engine.run_for engine 120.;

  banner "outcome";
  Fmt.pr "escalation triggered: %b@." !escalated;
  (match !detail with
  | Some d ->
      Fmt.pr "detailed probes found %d pred-side and %d succ-side inconsistencies@."
        (Core.Alarms.count d.pred_alarms)
        (Core.Alarms.count d.succ_alarms)
  | None -> Fmt.pr "no escalation was needed@.");
  (match !traversal with
  | Some (problems, ok) ->
      Fmt.pr
        "escalation traversals: %d completed cleanly, %d ordering problems@."
        (Core.Alarms.count ok) (Core.Alarms.count problems)
  | None -> ());
  Fmt.pr "ring correct again: %b@." (Chord.ring_correct ~exclude:[ victim ] net);
  let low =
    List.filter (fun r -> r.Core.Consistency.value < 1.0)
      (Core.Consistency.results probe)
  in
  Fmt.pr "consistency results below 1.0 after the crash: %d@." (List.length low);
  List.iter
    (fun r -> Fmt.pr "  [%.1f] consistency %.2f@." r.Core.Consistency.time r.value)
    low
