(** Execution profiling by forensic trace walking (paper §3.2).

    Starting from a selected response tuple ([traceResp]), rules ep1–ep6
    walk the execution graph {e backwards} — across nodes — through the
    tracer's [ruleExec] and [tupleTable] introspection tables, binning
    elapsed time into: time inside rule strands ([RuleT]), time between
    rules on the same node ([LocalT]), and time crossing the network
    ([NetT]). The walk stops when it reaches the rule that originated
    the traced computation ([root_rule], e.g. "cs2" for consistency
    probes), and reports the three bins.

    Because our nodes advance a deterministic local clock by the work
    they perform (DESIGN.md §3), the bins are nonzero and reproducible. *)

open Overlog

let program ~root_rule =
  Fmt.str
    {|
ep1 trav@NAddr(TupleID, TupleID, TupleTime, 0, 0, 0) :- traceResp@NAddr(TupleID, TupleTime).
/* the trav/ruleBack/forward cycle is the backward walk itself: each
   step moves to a strictly earlier tuple in the finite trace and ep5
   stops at the root rule */
%%%% allow E502
ep2 ruleBack@SrcAddr(ID, SrcTID, LastT, RuleT, NetT, LocalT, Local) :-
    trav@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT),
    tupleTable@NAddr(Curr, SrcAddr, SrcTID, LocSpec),
    Local := LocSpec == SrcAddr.
%%%% allow E502
ep3 forward@NAddr(ID, In, InT, RuleT + OutT - InT, NetT, LocalT + LastT - OutT, Rule) :-
    ruleBack@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, true),
    ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).
%%%% allow E502
ep4 forward@NAddr(ID, In, InT, RuleT + OutT - InT, NetT + LastT - OutT, LocalT, Rule) :-
    ruleBack@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, false),
    ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).
%%%% allow E502
ep5 trav@NAddr(ID, In, InT, RuleT, NetT, LocalT) :-
    forward@NAddr(ID, In, InT, RuleT, NetT, LocalT, Rule), Rule != "%s".
ep6 report@NAddr(ID, RuleT, NetT, LocalT) :-
    forward@NAddr(ID, In, InT, RuleT, NetT, LocalT, "%s").
|}
    root_rule root_rule

type report = {
  node : string;
  traced_tuple : int;
  rule_time : float;
  net_time : float;
  local_time : float;
}

type collector = { reports : report list ref }

let install ?(root_rule = "cs2") (net : Chord.network) =
  P2_runtime.Engine.install_all net.engine (program ~root_rule);
  let reports = ref [] in
  List.iter
    (fun addr ->
      P2_runtime.Engine.watch net.engine addr "report" (fun tuple ->
          match Tuple.fields tuple with
          | [ _; Value.VInt id; rt; nt; lt ] ->
              reports :=
                {
                  node = addr;
                  traced_tuple = id;
                  rule_time = Value.as_float rt;
                  net_time = Value.as_float nt;
                  local_time = Value.as_float lt;
                }
                :: !reports
          | _ -> ()))
    net.addrs;
  { reports }

let reports c = List.rev !(c.reports)

(** Start a backward walk from a tuple observed at [addr] (typically a
    [lookupResults] tuple caught by a watchpoint). [observed_at]
    defaults to the node's local clock — the same clock the tracer
    stamps [ruleExec] rows with, so time bins stay consistent. *)
let trace (net : Chord.network) ~addr ~tuple_id ?observed_at () =
  let observed_at =
    Option.value observed_at
      ~default:(P2_runtime.Engine.local_time net.engine addr)
  in
  ignore @@ P2_runtime.Engine.inject net.engine addr "traceResp"
    [ Value.VInt tuple_id; Value.VFloat observed_at ]

let pp_report ppf r =
  Fmt.pf ppf "%s tuple=%d rule=%.6fs net=%.6fs local=%.6fs" r.node r.traced_tuple
    r.rule_time r.net_time r.local_time
