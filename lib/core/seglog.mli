(** Append-only binary segment log for trace records — the on-disk
    half of the flight recorder (docs/FORENSICS.md).

    A log is a directory of fixed-size segment files named
    [seg-NNNNNNNN.p2sl]. Each segment starts with a CRC'd header
    (magic, format version, base stamp/sequence, last stamp, record
    count) followed by length-prefixed records: every record carries
    its own CRC-32, the node-local timestamp it was appended at, and a
    {!Overlog.Wire}-encoded tuple frame, so external tools can parse
    segments with nothing but this spec and the wire codec.

    Writers buffer appends in memory and hit the disk only on
    {!flush} — the engine calls it single-threaded at tick barriers,
    which is what keeps sharded runs deterministic (DESIGN.md §15) —
    or when the buffer crosses a high-water mark. Segments seal and
    rotate at a configurable size; retention drops the oldest sealed
    segments by count or age. Opening a writer over an existing log
    recovers from crashes: a torn tail record is truncated and the
    interrupted segment is sealed in place. *)

open Overlog

(** Writer tuning. *)
type config = {
  segment_bytes : int;
      (** seal the current segment and rotate once it reaches this
          many bytes (checked between records at flush time) *)
  retain_segments : int option;
      (** keep at most this many sealed segments; the oldest are
          deleted at rotation ([None]: unbounded) *)
  retain_age : float option;
      (** delete sealed segments whose newest record is older than
          this many seconds of node-local time ([None]: unbounded) *)
  buffer_bytes : int;
      (** flush automatically once this many bytes are buffered, so
          memory stays bounded even between barriers *)
}

(** 4 MiB segments, unbounded retention, 256 KiB write buffer. *)
val default_config : config

(** {1 Writing} *)

type writer

(** Open (or re-open) the log directory, creating it if needed.
    Recovery runs here: every unsealed segment is scanned, a torn
    tail record is truncated off, and the segment is sealed with its
    recovered record count; appending then continues in a fresh
    segment with the next record sequence number. *)
val create : ?config:config -> dir:string -> unit -> writer

(** Buffer one record. [stamp] is the node-local time of the
    observation; [delete] is carried in the wire frame. Flushes
    implicitly past [buffer_bytes]. Raises [Invalid_argument] on a
    closed writer. *)
val append : writer -> stamp:float -> delete:bool -> Tuple.t -> unit

(** Write all buffered records to the current segment (rotating and
    applying retention as size demands) and sync the channel. *)
val flush : writer -> unit

(** Flush, seal the current segment, and release the file handle. An
    empty current segment is deleted rather than sealed. *)
val close : writer -> unit

val dir : writer -> string

(** Cumulative writer counters (the [trace.log.*] metrics). *)
type stats = {
  segments_sealed : int;  (** segments sealed (rotation + close) *)
  records_written : int;  (** records flushed to disk *)
  bytes_written : int;  (** framed record bytes flushed to disk *)
  flush_ns : int;  (** cumulative wall time spent inside {!flush} *)
  retention_drops : int;  (** sealed segments deleted by retention *)
  buffered_records : int;  (** records waiting for the next flush *)
  buffered_bytes : int;  (** bytes waiting for the next flush *)
}

val stats : writer -> stats

(** {1 Reading} *)

(** One decoded record. [seq] is the log-wide append sequence number
    (segment base sequence + offset in the segment). *)
type record = { stamp : float; seq : int; delete : bool; tuple : Tuple.t }

(** Stream records of one log directory in append order, restricted
    to [from_ <= stamp <= to_] (defaults: unbounded). Sealed segments
    wholly outside the window are skipped without being read past
    their headers; records with CRC damage are skipped; a torn tail
    ends the segment. Safe on a log that is still being written. *)
val iter : ?from_:float -> ?to_:float -> dir:string -> (record -> unit) -> unit

(** Per-segment inventory, as reported by [p2ql logctl]. *)
type segment = {
  path : string;
  header_ok : bool;  (** magic, version and header CRC all check out *)
  sealed : bool;  (** header carries a final record count *)
  base_stamp : float;  (** stamp of the first record (nan if none) *)
  base_seq : int;  (** log-wide sequence of the first record *)
  last_stamp : float;  (** stamp of the newest record (nan if none) *)
  records : int;  (** CRC-good records found by scanning *)
  declared : int option;  (** header record count, sealed segments only *)
  bytes : int;  (** file size *)
  torn : bool;  (** scan hit an incomplete tail record *)
  bad_records : int;  (** records skipped for CRC mismatch *)
}

(** Inventory of every segment in the directory, in log order. *)
val segments : dir:string -> segment list

(** A segment is intact: readable header, no torn tail, no CRC-bad
    records, and (when sealed) the scanned count matches the header. *)
val intact : segment -> bool

(** CRC-32 (IEEE 802.3, reflected) of a string — the checksum used by
    both the segment header and record framing; exposed so tests and
    external parsers can cross-check. *)
val crc32 : string -> int
