(* §3.2 execution profiling: walking the ruleExec/tupleTable graph
   backwards from a response and binning latency into rule / local /
   network time. Requires tracing enabled. *)

open Overlog

let test_profile_consistency_lookup () =
  let engine = P2_runtime.Engine.create ~seed:11 ~trace:true () in
  let net = Chord.boot engine 6 in
  P2_runtime.Engine.run_for engine 120.;
  (* consistency probes give us cs2-rooted lookups to profile *)
  let _probe =
    Core.Consistency.install ~addrs:[ net.landmark ] ~t_probe:15. ~t_tally:10.
      ~window:5. net
  in
  let prof = Core.Profiler.install ~root_rule:"cs2" net in
  (* catch a *consistency* lookup response arriving back at the prober
     (matching a conLookup request id) and trace it; responses to
     Chord's own finger-fix lookups are not rooted at cs2 *)
  let con_reqs = ref [] in
  P2_runtime.Engine.watch engine net.landmark "conLookup" (fun t ->
      con_reqs := Tuple.field t 5 :: !con_reqs);
  let traced = ref false in
  P2_runtime.Engine.watch engine net.landmark "lookupResults" (fun t ->
      (* field 6 is the responder: skip lookups the landmark resolved
         against itself — a zero-hop trace has no network time *)
      if
        (not !traced)
        && (not (Value.equal (Tuple.field t 6) (Value.VAddr net.landmark)))
        && List.exists (Value.equal (Tuple.field t 5)) !con_reqs
      then begin
        traced := true;
        Core.Profiler.trace net ~addr:net.landmark ~tuple_id:(Tuple.id t) ()
      end);
  P2_runtime.Engine.run_for engine 120.;
  Alcotest.(check bool) "a response was traced" true !traced;
  match Core.Profiler.reports prof with
  | [] -> Alcotest.fail "no profiler report"
  | r :: _ ->
      (* the traced lookup crossed the network at least once, so
         network time dominates and is at least one base latency *)
      Alcotest.(check bool) "net time >= one hop" true (r.net_time >= 0.009);
      Alcotest.(check bool) "rule time positive" true (r.rule_time > 0.);
      Alcotest.(check bool) "rule time tiny vs net" true (r.rule_time < r.net_time);
      Alcotest.(check bool) "local time non-negative" true (r.local_time >= 0.)

let test_profile_local_chain () =
  (* a purely local rule chain: all time is rule/local, no network *)
  let engine = P2_runtime.Engine.create ~seed:3 ~trace:true () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a"
    {|
root mid@N(X) :- start@N(X).
step out@N(Y) :- mid@N(X), Y := X + 1.
|};
  let out_id = ref None in
  P2_runtime.Engine.watch engine "a" "out" (fun t -> out_id := Some (Tuple.id t));
  ignore @@ P2_runtime.Engine.inject engine "a" "start" [ Value.VInt 1 ];
  P2_runtime.Engine.run_for engine 1.;
  (* walk back from 'out' to the rule named 'root' *)
  P2_runtime.Engine.install engine "a" (Core.Profiler.program ~root_rule:"root");
  let reports = ref [] in
  P2_runtime.Engine.watch engine "a" "report" (fun t -> reports := t :: !reports);
  (match !out_id with
  | Some id ->
      ignore @@ P2_runtime.Engine.inject engine "a" "traceResp"
        [ Value.VInt id; Value.VFloat (P2_runtime.Engine.now engine) ]
  | None -> Alcotest.fail "no out tuple");
  P2_runtime.Engine.run_for engine 1.;
  match !reports with
  | [ r ] ->
      Alcotest.(check bool) "rule time positive" true
        (Value.as_float (Tuple.field r 3) > 0.);
      Alcotest.(check (float 1e-12)) "no net time" 0.
        (Value.as_float (Tuple.field r 4))
  | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs)

let test_trace_dead_end_is_silent () =
  (* tracing an unknown tuple id produces no report and no crash *)
  let engine = P2_runtime.Engine.create ~seed:3 ~trace:true () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a" (Core.Profiler.program ~root_rule:"root");
  let reports = ref [] in
  P2_runtime.Engine.watch engine "a" "report" (fun t -> reports := t :: !reports);
  ignore @@ P2_runtime.Engine.inject engine "a" "traceResp"
    [ Value.VInt 999999; Value.VFloat 0. ];
  P2_runtime.Engine.run_for engine 1.;
  Alcotest.(check int) "no report" 0 (List.length !reports)

let () =
  Alcotest.run "profiler"
    [
      ( "profiler",
        [
          Alcotest.test_case "distributed lookup" `Slow test_profile_consistency_lookup;
          Alcotest.test_case "local chain" `Quick test_profile_local_chain;
          Alcotest.test_case "dead end silent" `Quick test_trace_dead_end_is_silent;
        ] );
    ]
