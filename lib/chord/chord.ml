(** P2-Chord: the Chord lookup overlay written in OverLog, executed by
    the P2 runtime — the substrate every monitoring example in the
    paper (§3) runs against.

    Deviations from the original P2 Chord rules, documented here and in
    DESIGN.md: [lookupResults] carries two extra fields (the responder
    address and its current snapshot ID) so that the §3.3 snapshot
    algorithm's rule sr14 can treat late lookup responses as markers;
    [returnSucc] carries the sender address (needed by sr15's channel
    recording). Node identifiers live in the 31-bit ring of
    [Value.Ring] rather than SHA-1 space. *)

open Overlog

type params = {
  t_stabilize : float;  (* successor stabilization period, paper: 5 s *)
  t_fix_fingers : float;  (* finger fixing period, paper: 10 s *)
  t_ping : float;  (* liveness ping period, paper: 5 s *)
  ping_timeout : float;  (* silence before a neighbor is declared faulty *)
  succ_size : int;  (* successor-list capacity *)
  finger_positions : int;  (* how many finger exponents to cycle through *)
  remember_deceased : bool;
      (* true = purge gossip that recycles recently faulty neighbors
         (rules pg13–pg16). false = the "incorrect implementation" of
         paper §3.1.3, which oscillates dead neighbors in and out of
         the routing state forever — kept as an option so the
         oscillation detectors have their target bug to find. *)
}

let default_params =
  {
    t_stabilize = 5.;
    t_fix_fingers = 10.;
    t_ping = 5.;
    ping_timeout = 12.;
    succ_size = 16;
    finger_positions = Value.Ring.bits;
    remember_deceased = true;
  }

(** The §3.1.3 "incorrect implementation": recycles dead neighbors. *)
let buggy_params = { default_params with remember_deceased = false }

(** The OverLog program. Generated from [params] because periodic
    intervals must be literals in the rule text. *)
let program p =
  Fmt.str
    {|
/* ---------- P2 Chord ---------- */

/* identity and bootstrap */
materialize(node, infinity, 1, keys(1)).
materialize(landmark, infinity, 1, keys(1)).
materialize(joinReq, 60, 16, keys(1,2)).

/* routing state (soft state, refreshed by the protocol). The succ
   table is deliberately over-provisioned (4x the nominal successor
   list): candidates learned from gossip must survive long enough to
   win the bestSucc race, and stale entries die by expiry rather than
   eviction. */
materialize(succ, 30, %d, keys(1,3)).
materialize(bestSucc, infinity, 1, keys(1)).
materialize(pred, infinity, 1, keys(1)).
materialize(finger, 60, 64, keys(1,2)).
materialize(uniqueFinger, 60, 64, keys(1,2)).
materialize(nextFingerFix, infinity, 1, keys(1)).
materialize(fingerLookup, 60, 64, keys(1,2)).

/* liveness. lastSeen is soft state (a wall-clock observation, refreshed every ping round): finite-lifetime so checkpoints skip it — restoring pre-crash timestamps would mass-declare neighbors faulty on the reborn node's first pg5 tick. pg5 fires 12-17 s into a silence, inside the 30 s window. */
materialize(pingNode, 12, 64, keys(1,2)).
materialize(lastSeen, 30, 64, keys(1,2)).
materialize(faultyNode, 30, 32, keys(1,2)).

/* snapshot id threading (seeded to 0 at boot; advanced by the
   snapshot monitor when installed) */
materialize(currentSnap, infinity, 1, keys(1)).

/* ---------- join ---------- */

j1 joinMsg@NAddr(E) :- startJoin@NAddr(), E := f_rand().
j2 joinReq@NAddr(E) :- joinMsg@NAddr(E).
j3 lookup@LAddr(K, NAddr, E) :- joinMsg@NAddr(E), landmark@NAddr(LAddr),
   node@NAddr(NID), LAddr != NAddr, K := NID + 1.
j4 succ@NAddr(SID, SAddr) :- lookupResults@NAddr(K, SID, SAddr, E, RespAddr, SnapID),
   joinReq@NAddr(E).
j5 succ@NAddr(NID, NAddr) :- joinMsg@NAddr(E), landmark@NAddr(LAddr),
   node@NAddr(NID), LAddr == NAddr.
/* a non-landmark node whose best successor degenerated to itself has
   been isolated (e.g. it was partitioned away and its soft state
   expired): re-join through the landmark */
j6 joinMsg@NAddr(E) :- periodic@NAddr(E, %g), bestSucc@NAddr(SID, SAddr),
   SAddr == NAddr, landmark@NAddr(LAddr), LAddr != NAddr.

/* ---------- best successor selection ---------- */

bs1 bestSuccDist@NAddr(min<D>) :- node@NAddr(NID), succ@NAddr(SID, SAddr),
    D := SID - NID - 1.
bs2 bestSucc@NAddr(SID, SAddr) :- bestSuccDist@NAddr(D), succ@NAddr(SID, SAddr),
    node@NAddr(NID), D == SID - NID - 1.

/* ---------- stabilization (ring maintenance) ---------- */

sb1 stabilizeRequest@SAddr(NID, NAddr) :- periodic@NAddr(E, %g),
    bestSucc@NAddr(SID, SAddr), node@NAddr(NID), SAddr != NAddr.
sb2 sendPred@ReqAddr(PID, PAddr) :- stabilizeRequest@NAddr(ReqID, ReqAddr),
    pred@NAddr(PID, PAddr), PAddr != "-".
sb3 pred@NAddr(ReqID, ReqAddr) :- stabilizeRequest@NAddr(ReqID, ReqAddr),
    pred@NAddr(PID, PAddr), node@NAddr(NID), PAddr != "-", ReqID in (PID, NID).
sb3a pred@NAddr(ReqID, ReqAddr) :- stabilizeRequest@NAddr(ReqID, ReqAddr),
    pred@NAddr(PID, PAddr), PAddr == "-".
sb4 succ@NAddr(SID, SAddr) :- sendPred@NAddr(SID, SAddr).
/* the requester is also a successor candidate for the receiver; this
   is what links the landmark into the ring when the first node joins */
sb8 succ@NAddr(ReqID, ReqAddr) :- stabilizeRequest@NAddr(ReqID, ReqAddr).

/* successor-list gossip */
sb5 succReq@SAddr(NAddr) :- periodic@NAddr(E, %g), bestSucc@NAddr(SID, SAddr),
    SAddr != NAddr.
/* one returnSucc per successor-list row is the point of the gossip */
%%%% allow W512
sb6 returnSucc@ReqAddr(SID, SAddr, NAddr) :- succReq@NAddr(ReqAddr),
    succ@NAddr(SID, SAddr).
sb7 succ@NAddr(SID, SAddr) :- returnSucc@NAddr(SID, SAddr, Src).

/* ---------- fingers ---------- */

f0 finger@NAddr(0, SID, SAddr) :- bestSucc@NAddr(SID, SAddr).
f1 fixEvent@NAddr(E, I) :- periodic@NAddr(E, %g), nextFingerFix@NAddr(I).
f2 fingerLookup@NAddr(E, I) :- fixEvent@NAddr(E, I).
f3 lookup@NAddr(K, NAddr, E) :- fixEvent@NAddr(E, I), node@NAddr(NID),
   K := NID + f_pow2(I).
f4 finger@NAddr(I, BID, BAddr) :- lookupResults@NAddr(K, BID, BAddr, E, RespAddr, SnapID),
   fingerLookup@NAddr(E, I).
/* cycle positions downward from the top: high positions are the only
   ones that differ from the immediate successor in a sparsely
   populated ring, so they must be fixed first */
f5 nextFingerFix@NAddr(I2) :- lookupResults@NAddr(K, BID, BAddr, E, RespAddr, SnapID),
   fingerLookup@NAddr(E, I), I2 := (I + %d - 1) %% %d.
f6 uniqueFinger@NAddr(FAddr, FID) :- finger@NAddr(I, FID, FAddr).

/* periodic self-refresh: a fixed finger stays valid until it is
   re-fixed (the cycle takes finger_positions * t_fix_fingers seconds)
   or its node is declared faulty (pg9/pg10 purge it); without this,
   fingers expire long before the fixing cycle returns to them */
f7 finger@NAddr(I, FID, FAddr) :- periodic@NAddr(E, %g), finger@NAddr(I, FID, FAddr).
f8 uniqueFinger@NAddr(FAddr, FID) :- periodic@NAddr(E, %g), finger@NAddr(I, FID, FAddr).

/* ---------- lookups (paper rules l1-l3) ---------- */

l1 lookupResults@ReqAddr(K, SID, SAddr, E, NAddr, SnapID) :- node@NAddr(NID),
   lookup@NAddr(K, ReqAddr, E), bestSucc@NAddr(SID, SAddr),
   currentSnap@NAddr(SnapID), K in (NID, SID].
/* the l2/l3 recursion is the lookup itself: each hop strictly shrinks
   the remaining ID distance, so the cycle terminates in O(log N) hops
   and the min<D> forward goes to exactly one finger */
%%%% allow E502
l2 bestLookupDist@NAddr(K, ReqAddr, E, min<D>) :- node@NAddr(NID),
   lookup@NAddr(K, ReqAddr, E), uniqueFinger@NAddr(FAddr, FID),
   D := K - FID - 1, FID in (NID, K).
%%%% allow E502 W511
l3 lookup@FAddr(K, ReqAddr, E) :- node@NAddr(NID),
   bestLookupDist@NAddr(K, ReqAddr, E, D), uniqueFinger@NAddr(FAddr, FID),
   D == K - FID - 1, FID in (NID, K).

/* ---------- liveness pings and failure handling ---------- */

pn1 pingNode@NAddr(SAddr) :- periodic@NAddr(E, %g), succ@NAddr(SID, SAddr),
    SAddr != NAddr.
pn2 pingNode@NAddr(PAddr) :- periodic@NAddr(E, %g), pred@NAddr(PID, PAddr),
    PAddr != "-", PAddr != NAddr.
pn3 pingNode@NAddr(FAddr) :- periodic@NAddr(E, %g), uniqueFinger@NAddr(FAddr, FID),
    FAddr != NAddr.
/* eager variants: monitor a neighbor the moment it enters the routing
   state, not at the next periodic tick (keeps the liveness-coverage
   invariants of Core.Assertions airtight) */
pn1b pingNode@NAddr(SAddr) :- succ@NAddr(SID, SAddr), SAddr != NAddr.
pn2b pingNode@NAddr(PAddr) :- pred@NAddr(PID, PAddr), PAddr != "-", PAddr != NAddr.
pn3b pingNode@NAddr(FAddr) :- uniqueFinger@NAddr(FAddr, FID), FAddr != NAddr.

/* garbage-collect uniqueFinger rows whose backing finger entry was
   re-fixed to another node (negation keeps the pair consistent) */
f9 delete uniqueFinger@NAddr(FAddr, FID) :- periodic@NAddr(E, %g),
    uniqueFinger@NAddr(FAddr, FID), !finger@NAddr(_, FID, FAddr).

/* pinging every monitored neighbor each tick is the liveness check */
%%%% allow W511
pg1 pingReq@RAddr(NAddr, E) :- periodic@NAddr(E, %g), pingNode@NAddr(RAddr).
pg2 pingResp@SAddr(NAddr, E) :- pingReq@NAddr(SAddr, E).
pg3 lastSeen@NAddr(RAddr, T) :- pingResp@NAddr(RAddr, E), T := f_now().
pg4 lastSeen@NAddr(RAddr, T) :- pingNode@NAddr(RAddr), T := f_now().

pg5 faultyEvent@NAddr(FAddr, T) :- periodic@NAddr(E, %g),
    lastSeen@NAddr(FAddr, T0), T := f_now(), T - T0 > %g.
pg6 faultyNode@NAddr(FAddr, T) :- faultyEvent@NAddr(FAddr, T).
pg7 delete succ@NAddr(SID, FAddr) :- faultyEvent@NAddr(FAddr, T), succ@NAddr(SID, FAddr).
pg8 pred@NAddr(0, "-") :- faultyEvent@NAddr(FAddr, T), pred@NAddr(PID, FAddr).
pg9 delete finger@NAddr(I, FID, FAddr) :- faultyEvent@NAddr(FAddr, T),
    finger@NAddr(I, FID, FAddr).
pg10 delete uniqueFinger@NAddr(FAddr, FID) :- faultyEvent@NAddr(FAddr, T),
    uniqueFinger@NAddr(FAddr, FID).
pg11 delete lastSeen@NAddr(FAddr, T0) :- faultyEvent@NAddr(FAddr, T),
    lastSeen@NAddr(FAddr, T0).
pg12 delete pingNode@NAddr(FAddr) :- faultyEvent@NAddr(FAddr, T),
    pingNode@NAddr(FAddr).
|}
    (4 * p.succ_size) p.t_stabilize p.t_stabilize p.t_stabilize p.t_fix_fingers
    p.finger_positions p.finger_positions
    p.t_stabilize p.t_stabilize p.t_ping p.t_ping p.t_ping p.t_stabilize p.t_ping
    p.t_ping p.ping_timeout
  ^
  if p.remember_deceased then
    {|
/* Remember recently deceased neighbors (the faultyNode table) and
   purge gossip that recycles them — the paper's §3.1.3 cure for the
   recycled-dead-neighbor oscillation. Triggered both when a dead
   neighbor is re-inserted into succ and when a node is newly declared
   faulty. Omitted in the buggy variant (remember_deceased = false). */
pg13 purgeSucc@NAddr(SID, FAddr) :- succ@NAddr(SID, FAddr),
    faultyNode@NAddr(FAddr, T).
pg14 delete succ@NAddr(SID, FAddr) :- purgeSucc@NAddr(SID, FAddr).
pg15 purgePing@NAddr(FAddr) :- pingNode@NAddr(FAddr), faultyNode@NAddr(FAddr, T).
pg16 delete pingNode@NAddr(FAddr) :- purgePing@NAddr(FAddr).
|}
  else ""

(** Deterministic node identifier for an address. *)
let id_of_addr addr = Hashtbl.hash ("chord-id:" ^ addr) land (Value.Ring.space - 1)

(** Per-node bootstrap facts: identity, landmark, empty predecessor,
    snapshot-id zero. *)
let boot_facts ~addr ~landmark =
  Fmt.str
    {|
node@%s(#%d).
landmark@%s(%s).
pred@%s(0, "-").
currentSnap@%s(0).
nextFingerFix@%s(%d).
|}
    addr (id_of_addr addr) addr landmark addr addr addr
    (Value.Ring.bits - 1)

type network = {
  engine : P2_runtime.Engine.t;
  addrs : string list;
  landmark : string;
  params : params;
}

(** Boot an [n]-node Chord ring (paper §4: 21 nodes, staggered start).
    Nodes are named [<prefix>0 .. <prefix>n-1]; node 0 is the landmark.
    [join_spacing] is the delay between consecutive joins. *)
let boot ?(params = default_params) ?(prefix = "n") ?(join_spacing = 0.5)
    ?(join_retries = 3) engine n =
  let addrs = List.init n (fun i -> Fmt.str "%s%d" prefix i) in
  let landmark = List.hd addrs in
  let text = program params in
  List.iter
    (fun addr ->
      ignore (P2_runtime.Engine.add_node engine addr);
      P2_runtime.Engine.install engine addr text;
      P2_runtime.Engine.install engine addr (boot_facts ~addr ~landmark))
    addrs;
  List.iteri
    (fun i addr ->
      let t0 = P2_runtime.Engine.now engine +. (float_of_int i *. join_spacing) in
      for r = 0 to join_retries - 1 do
        P2_runtime.Engine.at engine
          ~time:(t0 +. (float_of_int r *. 5.))
          (fun () -> ignore @@ P2_runtime.Engine.inject engine addr "startJoin" [])
      done)
    addrs;
  { engine; addrs; landmark; params }

(** Churn entry points (used by the fault-injection harness). *)

(** Add one node to a running ring: install the program and bootstrap
    facts, then join through the landmark. [join_retries] staggered
    [startJoin] injections cover lost join lookups (joins are
    idempotent — each merely adds successor candidates). *)
let join ?(join_retries = 3) net addr =
  if List.mem addr net.addrs then invalid_arg (Fmt.str "Chord.join: duplicate node %s" addr);
  ignore (P2_runtime.Engine.add_node net.engine addr);
  P2_runtime.Engine.install net.engine addr (program net.params);
  P2_runtime.Engine.install net.engine addr (boot_facts ~addr ~landmark:net.landmark);
  let t0 = P2_runtime.Engine.now net.engine in
  for r = 0 to join_retries - 1 do
    P2_runtime.Engine.at net.engine
      ~time:(t0 +. (float_of_int r *. 5.))
      (fun () ->
        (* the node may already have left again (churn) *)
        if Option.is_some (P2_runtime.Engine.node_opt net.engine addr) then
          ignore @@ P2_runtime.Engine.inject net.engine addr "startJoin" [])
  done;
  { net with addrs = net.addrs @ [ addr ] }

(** Re-seed the join protocol after a cold restart (see chord.mli). *)
let rejoin ?(join_retries = 3) net addr =
  if not (List.mem addr net.addrs) then
    invalid_arg (Fmt.str "Chord.rejoin: unknown node %s" addr);
  if addr <> net.landmark then begin
    let t0 = P2_runtime.Engine.now net.engine in
    for r = 0 to join_retries - 1 do
      P2_runtime.Engine.at net.engine
        ~time:(t0 +. (float_of_int r *. 5.))
        (fun () ->
          if Option.is_some (P2_runtime.Engine.node_opt net.engine addr) then
            ignore @@ P2_runtime.Engine.inject net.engine addr "startJoin" [])
    done
  end

(** Remove a node permanently (fail-stop leave: Chord has no graceful
    departure, neighbors detect the silence via pings). *)
let leave net addr =
  if addr = net.landmark then invalid_arg "Chord.leave: cannot remove the landmark";
  if not (List.mem addr net.addrs) then
    invalid_arg (Fmt.str "Chord.leave: unknown node %s" addr);
  P2_runtime.Engine.crash net.engine addr;
  P2_runtime.Engine.remove_node net.engine addr;
  { net with addrs = List.filter (fun a -> a <> addr) net.addrs }

(** Issue a lookup for [key] starting at [addr]; results arrive as
    [lookupResults] tuples at [req_addr] (default: the issuing node). *)
let lookup net ~addr ?req_addr ~key ~req_id () =
  let req_addr = Option.value req_addr ~default:addr in
  ignore @@ P2_runtime.Engine.inject net.engine addr "lookup"
    [ Value.VId key; Value.VAddr req_addr; Value.VInt req_id ]

(* --- State extraction for tests and examples --- *)

(* A retired node has no tables: neighbor pointers can dangle at a
   departed address for a while (until stabilization drops them), and
   the walks below must treat that as a dead end, not an error. *)
let table_tuples net addr name =
  match P2_runtime.Engine.node_opt net.engine addr with
  | None -> []
  | Some node -> (
      match Store.Catalog.find (P2_runtime.Node.catalog node) name with
      | Some table ->
          Store.Table.tuples table ~now:(P2_runtime.Engine.now net.engine)
      | None -> [])

(** A node's current best successor, as (id, addr). *)
let best_succ net addr =
  match table_tuples net addr "bestSucc" with
  | [ t ] -> Some (Value.as_int (Tuple.field t 2), Value.as_addr (Tuple.field t 3))
  | _ -> None

let predecessor net addr =
  match table_tuples net addr "pred" with
  | [ t ] ->
      let paddr = Value.as_addr (Tuple.field t 3) in
      if paddr = "-" then None
      else Some (Value.as_int (Tuple.field t 2), paddr)
  | _ -> None

let successors net addr =
  table_tuples net addr "succ"
  |> List.map (fun t -> (Value.as_int (Tuple.field t 2), Value.as_addr (Tuple.field t 3)))

let fingers net addr =
  table_tuples net addr "finger"
  |> List.map (fun t ->
         ( Value.as_int (Tuple.field t 2),
           Value.as_int (Tuple.field t 3),
           Value.as_addr (Tuple.field t 4) ))

(** Walk the ring along best successors starting from the landmark.
    Returns the visited addresses; stops after [limit] hops or when the
    walk returns to the start. *)
let ring_walk ?limit net =
  let limit = Option.value limit ~default:(2 * List.length net.addrs) in
  let rec go addr acc n =
    if n >= limit then List.rev acc
    else
      match best_succ net addr with
      | Some (_, next) when next = net.landmark -> List.rev (addr :: acc)
      | Some (_, next) -> go next (addr :: acc) (n + 1)
      | None -> List.rev (addr :: acc)
  in
  go net.landmark [] 0

(** True when the ring is globally correct: the best-successor walk
    visits every live node exactly once, in increasing ID order
    (modulo one wrap). *)
let ring_correct ?(exclude = []) net =
  let live = List.filter (fun a -> not (List.mem a exclude)) net.addrs in
  let walk = ring_walk ~limit:(2 * List.length net.addrs) net in
  List.length walk = List.length live
  && List.sort compare walk = List.sort compare live
  &&
  let ids = List.map id_of_addr walk in
  let wraps =
    let rec count = function
      | a :: (b :: _ as rest) -> (if a >= b then 1 else 0) + count rest
      | [ last ] -> if last >= List.hd ids then 1 else 0
      | [] -> 0
    in
    count ids
  in
  wraps = 1 || List.length live = 1

(** The live node whose ID is the key's true successor — the oracle
    used to validate lookup answers. *)
let true_successor net ?(exclude = []) key =
  let live = List.filter (fun a -> not (List.mem a exclude)) net.addrs in
  let ids = List.map (fun a -> (id_of_addr a, a)) live in
  let sorted = List.sort compare ids in
  match List.find_opt (fun (id, _) -> id >= Value.Ring.norm key) sorted with
  | Some (_, a) -> a
  | None -> ( match sorted with (_, a) :: _ -> a | [] -> invalid_arg "empty ring")
