test/test_snapshot.ml: Alcotest Chord Core Fmt List Option Overlog P2_runtime Store Tuple Value
