test/test_profiler.ml: Alcotest Chord Core List Overlog P2_runtime Tuple Value
