lib/sim/network.ml: Float Hashtbl Rng String
