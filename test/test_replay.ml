(* Flight-recorder end-to-end oracles.

   - Replay equivalence: a live traced run spills its records through
     the engine's segment-log path; replaying the log must rebuild
     exactly the live tracer's ruleExec / tupleTable contents.
   - Windowed replay: restoring [--from/--to] must equal the live
     rows filtered on their tOut stamp (ruleExec records are stamped
     with tOut for precisely this reason).
   - Shard determinism: per-node log files are byte-identical across
     shard counts, because flushes happen only at single-threaded
     tick barriers in per-node append order.
   - Sanitized spill: recording during a sharded, sanitized run must
     never trip the effect discipline (file I/O is node-local). *)

module Engine = P2_runtime.Engine
module Node = P2_runtime.Node
open Overlog

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Fmt.str "p2replay_test_%d_%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* A small cross-node workload: a periodic driver on every node ships
   pings around a three-node line, so the trace holds local rules,
   remote deliveries, and steady periodic traffic. *)
let program =
  {|
materialize(seen, infinity, infinity, keys(1,2)).
g1 ping@b(E) :- periodic@a(E, 1.0).
g2 pong@c(E) :- ping@b(E).
g3 seen@N(E) :- pong@N(E).
|}

let addrs = [ "a"; "b"; "c" ]

(* Run the workload live with the flight recorder on. The live nodes
   use the expiry-free replay tracer config so their in-RAM tables
   still hold the full history at comparison time. *)
let record_live ~dir ~duration =
  let engine = Engine.create ~seed:7 ~trace:true () in
  Engine.set_trace_log engine dir;
  List.iter
    (fun a ->
      ignore
        (Engine.add_node ~tracer_config:Dataflow.Tracer.replay_config engine a))
    addrs;
  Engine.install_all engine program;
  Engine.run_for engine duration;
  Engine.close_trace_logs engine;
  engine

let canon tuple =
  Fmt.str "%s(%s)" (Tuple.name tuple)
    (String.concat "," (List.map Value.to_string (Tuple.fields tuple)))

let canon_table table ~now =
  Store.Table.tuples table ~now |> List.map canon |> List.sort String.compare

let tracer_tables engine addr =
  let tracer = Node.tracer (Engine.node engine addr) in
  let now = Engine.now engine in
  ( canon_table (Dataflow.Tracer.rule_exec_table tracer) ~now,
    canon_table (Dataflow.Tracer.tuple_table tracer) ~now )

let t_out_of row =
  match Tuple.fields row with
  | [ _; _; _; _; _; Value.VFloat t_out; _ ] -> t_out
  | _ -> Alcotest.fail "malformed ruleExec row"

(* --- full-range equivalence --- *)

let test_replay_equals_live () =
  with_dir @@ fun dir ->
  let live = record_live ~dir ~duration:30. in
  let replayed = Core.Replay.load ~dir () in
  Alcotest.(check (list string))
    "replay rebuilt every node" addrs
    (List.map (fun r -> r.Core.Replay.addr) replayed.Core.Replay.reports);
  List.iter
    (fun r -> Alcotest.(check bool) "restored records" true (r.Core.Replay.restored > 0))
    replayed.Core.Replay.reports;
  List.iter
    (fun addr ->
      let live_re, live_tt = tracer_tables live addr in
      let rep_re, rep_tt = tracer_tables replayed.Core.Replay.engine addr in
      Alcotest.(check bool) "live trace is non-trivial" true
        (List.length live_re > 0 && List.length live_tt > 0);
      Alcotest.(check (list string))
        (addr ^ ": ruleExec replayed exactly")
        live_re rep_re;
      Alcotest.(check (list string))
        (addr ^ ": tupleTable replayed exactly")
        live_tt rep_tt)
    addrs

(* --- time-windowed replay --- *)

let test_windowed_replay () =
  with_dir @@ fun dir ->
  let live = record_live ~dir ~duration:30. in
  let from_, to_ = (10., 20.) in
  let replayed = Core.Replay.load ~from_ ~to_ ~dir () in
  List.iter
    (fun addr ->
      let live_tracer = Node.tracer (Engine.node live addr) in
      let now = Engine.now live in
      let live_window =
        Store.Table.tuples (Dataflow.Tracer.rule_exec_table live_tracer) ~now
        |> List.filter (fun row ->
               let t = t_out_of row in
               from_ <= t && t <= to_)
        |> List.map canon |> List.sort String.compare
      in
      Alcotest.(check bool) "window is non-trivial" true
        (List.length live_window > 0);
      let rep_re, _ = tracer_tables replayed.Core.Replay.engine addr in
      Alcotest.(check (list string))
        (addr ^ ": windowed replay = live rows filtered on tOut")
        live_window rep_re)
    addrs

(* --- a historical query over the restored window --- *)

let test_historical_query () =
  with_dir @@ fun dir ->
  ignore (record_live ~dir ~duration:30.);
  (* count rule executions per rule id, hours after the fact *)
  let query =
    {|
materialize(execs, infinity, infinity, keys(1,2)).
q1 execs@N(R, count<*>) :- ruleExec@N(R, C, E, TC, TO, EV).
|}
  in
  let replayed = Core.Replay.load ~program:query ~dir () in
  let engine = replayed.Core.Replay.engine in
  let rules_seen =
    List.concat_map
      (fun addr ->
        let node = Engine.node engine addr in
        match Store.Catalog.find (Node.catalog node) "execs" with
        | None -> []
        | Some table ->
            List.filter_map
              (fun row ->
                match Tuple.fields row with
                | [ _; Value.VStr rule; Value.VInt n ] when n > 0 -> Some rule
                | _ -> None)
              (Store.Table.tuples table ~now:(Engine.now engine)))
      addrs
  in
  (* the workload's own rules must show up in the historical count *)
  List.iter
    (fun rule ->
      Alcotest.(check bool) (rule ^ " counted") true (List.mem rule rules_seen))
    [ "g1"; "g2"; "g3" ]

(* --- shard determinism of the on-disk log --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let record_chord ~dir ~shards ~sanitize =
  let engine = Engine.create ~seed:11 ~trace:true () in
  if shards > 0 then Engine.set_shards engine shards;
  if sanitize then Engine.set_sanitize engine true;
  Engine.set_trace_log engine dir;
  let net = Chord.boot engine 6 in
  Engine.run_until engine 60.;
  Engine.close_trace_logs engine;
  ignore net;
  engine

let log_files dir =
  Core.Replay.node_dirs dir
  |> List.concat_map (fun addr ->
         let node_dir = Filename.concat dir addr in
         Sys.readdir node_dir |> Array.to_list |> List.sort String.compare
         |> List.map (fun f -> (Filename.concat addr f, Filename.concat node_dir f)))

let test_shard_byte_identity () =
  with_dir @@ fun dir1 ->
  with_dir @@ fun dir2 ->
  ignore (record_chord ~dir:dir1 ~shards:1 ~sanitize:false);
  ignore (record_chord ~dir:dir2 ~shards:2 ~sanitize:false);
  let files1 = log_files dir1 and files2 = log_files dir2 in
  Alcotest.(check (list string))
    "same segment inventory" (List.map fst files1) (List.map fst files2);
  Alcotest.(check bool) "some segments recorded" true (files1 <> []);
  List.iter2
    (fun (rel, p1) (_, p2) ->
      Alcotest.(check bool)
        (rel ^ " byte-identical across shard counts")
        true
        (read_file p1 = read_file p2))
    files1 files2

let test_sanitized_spill () =
  with_dir @@ fun dir ->
  (* must complete without Engine.Discipline_violation: segment-log
     writes are node-local and happen at barriers only *)
  let engine = record_chord ~dir ~shards:2 ~sanitize:true in
  Alcotest.(check bool) "recording happened" true
    (Core.Replay.node_dirs dir <> []);
  List.iter
    (fun (s : Seglog.segment) ->
      Alcotest.(check bool) "segments intact" true (Seglog.intact s))
    (List.concat_map
       (fun addr -> Seglog.segments ~dir:(Filename.concat dir addr))
       (Core.Replay.node_dirs dir));
  ignore engine

(* --- spill-mode memory discipline --- *)

let test_spill_config_shrinks_ram () =
  (* with the recorder on, nodes default to the spill tracer config:
     the in-RAM ruleExec window stays bounded by its cap while the
     on-disk log keeps the full history *)
  with_dir @@ fun dir ->
  let engine = Engine.create ~seed:7 ~trace:true () in
  Engine.set_trace_log engine dir;
  List.iter (fun a -> ignore (Engine.add_node engine a)) addrs;
  Engine.install_all engine program;
  Engine.run_for engine 60.;
  Engine.close_trace_logs engine;
  let disk_records =
    List.fold_left
      (fun acc addr ->
        let records = ref 0 in
        Seglog.iter ~dir:(Filename.concat dir addr) (fun _ -> incr records);
        acc + !records)
      0 addrs
  in
  let ram_rows =
    List.fold_left
      (fun acc addr ->
        let tracer = Node.tracer (Engine.node engine addr) in
        acc
        + Store.Table.size
            (Dataflow.Tracer.rule_exec_table tracer)
            ~now:(Engine.now engine))
      0 addrs
  in
  Alcotest.(check bool) "disk log holds more history than RAM" true
    (disk_records > ram_rows);
  Alcotest.(check bool)
    "in-RAM window bounded by the spill cap" true
    (ram_rows
    <= List.length addrs * Dataflow.Tracer.spill_config.Dataflow.Tracer.rule_exec_cap)

let () =
  Alcotest.run "replay"
    [
      ( "oracle",
        [
          Alcotest.test_case "replay equals live" `Quick test_replay_equals_live;
          Alcotest.test_case "windowed replay" `Quick test_windowed_replay;
          Alcotest.test_case "historical query" `Quick test_historical_query;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "shard byte identity" `Slow test_shard_byte_identity;
          Alcotest.test_case "sanitized spill run" `Slow test_sanitized_spill;
        ] );
      ( "memory",
        [
          Alcotest.test_case "spill config shrinks RAM" `Quick
            test_spill_config_shrinks_ram;
        ] );
    ]
