(* Model-based checking of the store's secondary-index layer and
   incremental expiry: under randomized insert/replace/delete/evict/
   expire churn (random key specs, lifetimes, caps and probe
   patterns),

   - [Table.probe] must be observably equivalent to naive
     scan-and-match, whether the index was created before the churn
     (incremental maintenance) or after it (lazy backfill);
   - [Table.tuples] must stay in insertion order;
   - the delta-subscription firing sequence (kinds, payloads and
     subscriber order) must match the reference semantics exactly. *)

open Overlog
open Store

(* --- reference model ------------------------------------------------ *)

type mrow = {
  mutable mtuple : Tuple.t;
  mutable mat : float;  (* inserted/refreshed at *)
  mseq : int;
  mkey : string;
}

type model = {
  lifetime : float;
  cap : int option;
  keyspec : int list;
  mutable rows : mrow list;  (* insertion (seq) order *)
  mutable next : int;
  mutable log : (string * string) list;  (* (kind, tuple), reversed *)
}

let canon parts = String.concat "\x00" (List.map Value.canonical_key parts)

let mkey m tuple =
  canon
    (match m.keyspec with
    | [] -> Tuple.fields tuple
    | ks -> Tuple.key_of tuple ks)

let mlog m kind tu = m.log <- (kind, Tuple.to_string tu) :: m.log

let mexpire m now =
  if m.lifetime <> infinity then begin
    let dead, live =
      List.partition (fun r -> now -. r.mat > m.lifetime) m.rows
    in
    let dead =
      List.sort (fun a b -> compare (a.mat, a.mseq) (b.mat, b.mseq)) dead
    in
    m.rows <- live;
    List.iter (fun r -> mlog m "del" r.mtuple) dead
  end

let minsert m now tuple =
  mexpire m now;
  let k = mkey m tuple in
  match List.find_opt (fun r -> r.mkey = k) m.rows with
  | Some r when Tuple.equal_contents r.mtuple tuple ->
      r.mat <- now;
      mlog m "ref" tuple
  | Some r ->
      r.mtuple <- tuple;
      r.mat <- now;
      mlog m "ins" tuple
  | None ->
      (match m.cap with
      | Some cap when List.length m.rows >= cap -> (
          let victim =
            List.fold_left
              (fun acc r ->
                match acc with
                | Some best when (best.mat, best.mseq) <= (r.mat, r.mseq) -> acc
                | _ -> Some r)
              None m.rows
          in
          match victim with
          | Some v ->
              m.rows <- List.filter (fun r -> r != v) m.rows;
              mlog m "del" v.mtuple
          | None -> ())
      | _ -> ());
      let seq = m.next in
      m.next <- m.next + 1;
      m.rows <- m.rows @ [ { mtuple = tuple; mat = now; mseq = seq; mkey = k } ];
      mlog m "ins" tuple

let mdelete m now tuple =
  mexpire m now;
  let k = mkey m tuple in
  match List.find_opt (fun r -> r.mkey = k) m.rows with
  | Some r ->
      m.rows <- List.filter (fun r' -> r' != r) m.rows;
      mlog m "del" r.mtuple
  | None -> ()

let mdelete_where m now pred =
  mexpire m now;
  let victims = List.filter (fun r -> pred r.mtuple) m.rows in
  m.rows <- List.filter (fun r -> not (pred r.mtuple)) m.rows;
  List.iter (fun r -> mlog m "del" r.mtuple) victims

let mtuples m now =
  mexpire m now;
  List.map (fun r -> Tuple.to_string r.mtuple) m.rows

(* naive scan-and-match: the specification [Table.probe] must meet *)
let mprobe m now positions values =
  mexpire m now;
  let want = canon values in
  List.filter_map
    (fun r ->
      if canon (Tuple.key_of r.mtuple positions) = want then
        Some (Tuple.to_string r.mtuple)
      else None)
    m.rows

(* --- randomized operations ------------------------------------------ *)

type op =
  | Insert of int * int
  | Delete of int * int
  | DeleteWhere of int  (* parity of the payload field *)
  | Advance of float
  | Probe of int list * int * int

let probe_sets = [ [ 2 ]; [ 3 ]; [ 2; 3 ]; [ 1; 2 ] ]

let gen_config =
  QCheck.Gen.(
    triple
      (oneofl [ 2.; 5.; infinity ])
      (oneofl [ None; Some 3; Some 6 ])
      (oneofl [ []; [ 1; 2 ]; [ 2 ] ]))

let gen_ops =
  QCheck.Gen.(
    list_size (int_bound 80)
      (frequency
         [
           (6, map2 (fun k v -> Insert (k, v)) (int_bound 6) (int_bound 4));
           (2, map2 (fun k v -> Delete (k, v)) (int_bound 6) (int_bound 4));
           (1, map (fun p -> DeleteWhere p) (int_bound 1));
           (3, map (fun dt -> Advance (float_of_int dt /. 2.)) (int_bound 8));
           ( 3,
             map2
               (fun (k, v) i -> Probe (List.nth probe_sets i, k, v))
               (pair (int_bound 6) (int_bound 4))
               (int_bound (List.length probe_sets - 1)) );
         ]))

let gen_case = QCheck.Gen.pair gen_config gen_ops

let mk_tuple k v = Tuple.make "t" [ Value.VAddr "n"; Value.VInt k; Value.VInt v ]

let probe_values positions k v =
  List.map
    (function
      | 1 -> Value.VAddr "n"
      | 2 -> Value.VInt k
      | 3 -> Value.VInt v
      | _ -> Value.VNull)
    positions

(* Drive one table and the model through the same ops. [pre_index]
   forces index creation before the churn, exercising incremental
   maintenance; without it the first probe backfills lazily. Two
   subscribers share one log so inter-subscriber order is checked. *)
let run_case ~pre_index ((lifetime, cap, keyspec), ops) =
  let table = Table.create ~lifetime ?max_size:cap ~keys:keyspec "t" in
  let model = { lifetime; cap; keyspec; rows = []; next = 0; log = [] } in
  let tlog = ref [] in
  let sub tag kind tu = tlog := (tag, kind, Tuple.to_string tu) :: !tlog in
  let subscriber tag = function
    | Table.Insert tu -> sub tag "ins" tu
    | Table.Delete tu -> sub tag "del" tu
    | Table.Refresh tu -> sub tag "ref" tu
  in
  Table.subscribe table (subscriber "1");
  Table.subscribe table (subscriber "2");
  if pre_index then
    List.iter
      (fun positions ->
        ignore (Table.probe table ~now:0. ~positions ~values:(probe_values positions 0 0)))
      probe_sets;
  let now = ref 0. in
  let ok = ref true in
  let check b = if not b then ok := false in
  List.iter
    (fun op ->
      match op with
      | Insert (k, v) ->
          ignore (Table.insert table ~now:!now (mk_tuple k v));
          minsert model !now (mk_tuple k v)
      | Delete (k, v) ->
          ignore (Table.delete table ~now:!now (mk_tuple k v));
          mdelete model !now (mk_tuple k v)
      | DeleteWhere p ->
          let pred tu = Value.as_int (Tuple.field tu 3) land 1 = p in
          ignore (Table.delete_where table ~now:!now pred);
          mdelete_where model !now pred
      | Advance dt -> now := !now +. dt
      | Probe (positions, k, v) ->
          let values = probe_values positions k v in
          let got =
            Table.probe table ~now:!now ~positions ~values
            |> List.map Tuple.to_string
          in
          check (got = mprobe model !now positions values))
    ops;
  (* final state: live rows in insertion order, every probe pattern,
     and the complete delta firing sequence *)
  check (List.map Tuple.to_string (Table.tuples table ~now:!now) = mtuples model !now);
  List.iter
    (fun positions ->
      for k = 0 to 6 do
        for v = 0 to 4 do
          let values = probe_values positions k v in
          let got =
            Table.probe table ~now:!now ~positions ~values
            |> List.map Tuple.to_string
          in
          check (got = mprobe model !now positions values)
        done
      done)
    probe_sets;
  let expected_log =
    List.rev model.log
    |> List.concat_map (fun (kind, tu) -> [ ("1", kind, tu); ("2", kind, tu) ])
  in
  check (List.rev !tlog = expected_log);
  !ok

let prop_indexed_probe_equals_scan =
  QCheck.Test.make ~name:"indexed probe = naive scan (index first)" ~count:300
    (QCheck.make gen_case) (run_case ~pre_index:true)

let prop_lazy_index_equals_scan =
  QCheck.Test.make ~name:"indexed probe = naive scan (lazy backfill)" ~count:300
    (QCheck.make gen_case) (run_case ~pre_index:false)

(* The probes above must actually have used indexes. *)
let test_index_created () =
  let table = Table.create ~keys:[ 1; 2 ] "t" in
  ignore (Table.insert table ~now:0. (mk_tuple 1 2));
  ignore
    (Table.probe table ~now:0. ~positions:[ 2 ] ~values:[ Value.VInt 1 ]);
  ignore
    (Table.probe table ~now:0. ~positions:[ 2; 3 ]
       ~values:[ Value.VInt 1; Value.VInt 2 ]);
  Alcotest.(check int) "two indexes" 2 (List.length (Table.indexed_positions table));
  (* repeated probes reuse the index *)
  ignore
    (Table.probe table ~now:0. ~positions:[ 2 ] ~values:[ Value.VInt 7 ]);
  Alcotest.(check int) "still two" 2 (List.length (Table.indexed_positions table))

(* VStr/VAddr and VInt/VId must collide in index buckets exactly as
   they do under Value.equal (same canonicalization as primary keys). *)
let test_index_key_identity () =
  let table = Table.create ~keys:[ 1; 2 ] "t" in
  ignore
    (Table.insert table ~now:0.
       (Tuple.make "t" [ Value.VAddr "n"; Value.VStr "peer1"; Value.VInt 1 ]));
  let got =
    Table.probe table ~now:0. ~positions:[ 2 ] ~values:[ Value.VAddr "peer1" ]
  in
  Alcotest.(check int) "addr probe finds str row" 1 (List.length got);
  ignore
    (Table.insert table ~now:0.
       (Tuple.make "t" [ Value.VAddr "n"; Value.VId 5; Value.VInt 2 ]));
  let got =
    Table.probe table ~now:0. ~positions:[ 2 ] ~values:[ Value.VInt 5 ]
  in
  Alcotest.(check int) "int probe finds id row" 1 (List.length got)

let () =
  Alcotest.run "table_index"
    [
      ( "probe",
        [
          QCheck_alcotest.to_alcotest prop_indexed_probe_equals_scan;
          QCheck_alcotest.to_alcotest prop_lazy_index_equals_scan;
          Alcotest.test_case "index creation" `Quick test_index_created;
          Alcotest.test_case "index key identity" `Quick test_index_key_identity;
        ] );
    ]
