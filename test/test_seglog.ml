(* Flight-recorder segment log: framing round-trips, rotation,
   retention, CRC damage containment, and torn-tail crash recovery.
   Everything runs in throwaway directories under the system temp
   dir; each case gets a fresh one. *)

open Overlog

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Fmt.str "p2sl_test_%d_%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let tuple ?(name = "obs") i =
  Tuple.make ~id:i name
    [ Value.VAddr "n1"; Value.VInt i; Value.VStr (Fmt.str "payload-%d" i) ]

let read_all dir =
  let out = ref [] in
  Seglog.iter ~dir (fun r -> out := r :: !out);
  List.rev !out

(* --- round trip --- *)

let test_round_trip () =
  with_dir @@ fun dir ->
  let w = Seglog.create ~dir () in
  for i = 0 to 9 do
    Seglog.append w ~stamp:(float_of_int i) ~delete:(i mod 3 = 0) (tuple i)
  done;
  Seglog.close w;
  let records = read_all dir in
  Alcotest.(check int) "all records back" 10 (List.length records);
  List.iteri
    (fun i (r : Seglog.record) ->
      Alcotest.(check (float 0.)) "stamp" (float_of_int i) r.stamp;
      Alcotest.(check int) "seq" i r.seq;
      Alcotest.(check bool) "delete" (i mod 3 = 0) r.delete;
      Alcotest.(check string) "name" "obs" (Tuple.name r.tuple);
      Alcotest.(check int) "tuple id" i (Tuple.id r.tuple);
      Alcotest.(check bool) "fields" true
        (List.for_all2 Value.equal (Tuple.fields (tuple i))
           (Tuple.fields r.tuple)))
    records

let test_time_window () =
  with_dir @@ fun dir ->
  let w = Seglog.create ~dir () in
  for i = 0 to 99 do
    Seglog.append w ~stamp:(float_of_int i) ~delete:false (tuple i)
  done;
  Seglog.close w;
  let seen = ref [] in
  Seglog.iter ~from_:10. ~to_:19. ~dir (fun r -> seen := r.stamp :: !seen);
  Alcotest.(check (list (float 0.)))
    "window [10,19]"
    (List.init 10 (fun i -> float_of_int (10 + i)))
    (List.rev !seen)

(* --- rotation + retention --- *)

let small_config =
  { Seglog.default_config with segment_bytes = 512; buffer_bytes = 128 }

let test_rotation () =
  with_dir @@ fun dir ->
  let w = Seglog.create ~config:small_config ~dir () in
  for i = 0 to 199 do
    Seglog.append w ~stamp:(float_of_int i) ~delete:false (tuple i)
  done;
  Seglog.close w;
  let segs = Seglog.segments ~dir in
  Alcotest.(check bool) "rotated" true (List.length segs > 1);
  List.iter
    (fun (s : Seglog.segment) ->
      Alcotest.(check bool) "sealed" true s.sealed;
      Alcotest.(check bool) "intact" true (Seglog.intact s);
      Alcotest.(check (option int)) "declared = scanned" (Some s.records)
        s.declared)
    segs;
  Alcotest.(check int) "no records lost across rotation" 200
    (List.fold_left (fun a (s : Seglog.segment) -> a + s.records) 0 segs);
  (* base sequences chain across segments *)
  ignore
    (List.fold_left
       (fun expect (s : Seglog.segment) ->
         Alcotest.(check int) "seq chains" expect s.base_seq;
         expect + s.records)
       0 segs)

let test_retention_by_count () =
  with_dir @@ fun dir ->
  let config = { small_config with retain_segments = Some 2 } in
  let w = Seglog.create ~config ~dir () in
  for i = 0 to 399 do
    Seglog.append w ~stamp:(float_of_int i) ~delete:false (tuple i)
  done;
  Seglog.close w;
  let segs = Seglog.segments ~dir in
  (* <= 2 sealed survivors at every rotation, + the final sealed tail *)
  Alcotest.(check bool) "old segments dropped" true (List.length segs <= 3);
  let stats = Seglog.stats w in
  Alcotest.(check bool) "drops counted" true (stats.retention_drops > 0);
  Alcotest.(check int) "all records were written" 400 stats.records_written;
  (* the survivors hold the newest records *)
  let records = read_all dir in
  Alcotest.(check bool) "tail preserved" true
    (match List.rev records with last :: _ -> last.seq = 399 | [] -> false)

let test_retention_by_age () =
  with_dir @@ fun dir ->
  let config = { small_config with retain_age = Some 50. } in
  let w = Seglog.create ~config ~dir () in
  for i = 0 to 399 do
    Seglog.append w ~stamp:(float_of_int i) ~delete:false (tuple i)
  done;
  Seglog.close w;
  Alcotest.(check bool) "drops counted" true
    ((Seglog.stats w).retention_drops > 0);
  List.iter
    (fun (r : Seglog.record) ->
      (* age is judged against the recorded clock at rotation time;
         anything older than the window by a whole segment is gone *)
      Alcotest.(check bool) "old records dropped" true (r.stamp > 250.))
    (read_all dir)

(* --- damage --- *)

let patch_byte path off f =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (f (Bytes.get b 0));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1))

let flip c = Char.chr (Char.code c lxor 0xff)

let test_crc_corruption_skipped () =
  with_dir @@ fun dir ->
  let w = Seglog.create ~dir () in
  for i = 0 to 9 do
    Seglog.append w ~stamp:(float_of_int i) ~delete:false (tuple i)
  done;
  Seglog.close w;
  let seg =
    match Seglog.segments ~dir with [ s ] -> s | _ -> Alcotest.fail "one segment"
  in
  (* flip one byte in the middle of the file, past the header and the
     first few records: exactly one record's CRC stops matching *)
  patch_byte seg.path (seg.bytes / 2) flip;
  let segs = Seglog.segments ~dir in
  let s = List.hd segs in
  Alcotest.(check int) "one bad record" 1 s.bad_records;
  Alcotest.(check bool) "not intact" false (Seglog.intact s);
  Alcotest.(check int) "other records survive" 9 (List.length (read_all dir))

let test_header_corruption () =
  with_dir @@ fun dir ->
  let w = Seglog.create ~dir () in
  Seglog.append w ~stamp:1. ~delete:false (tuple 1);
  Seglog.close w;
  let seg = List.hd (Seglog.segments ~dir) in
  patch_byte seg.path 0 flip;
  let s = List.hd (Seglog.segments ~dir) in
  Alcotest.(check bool) "header rejected" false s.header_ok;
  Alcotest.(check bool) "not intact" false (Seglog.intact s)

(* --- torn-tail crash recovery --- *)

let test_torn_tail_recovery () =
  with_dir @@ fun dir ->
  let w = Seglog.create ~dir () in
  for i = 0 to 9 do
    Seglog.append w ~stamp:(float_of_int i) ~delete:false (tuple i)
  done;
  Seglog.flush w;
  (* crash: the writer never seals. Tear the last record's tail off. *)
  let seg = List.hd (Seglog.segments ~dir) in
  Alcotest.(check bool) "unsealed before recovery" false seg.sealed;
  let fd = Unix.openfile seg.path [ Unix.O_RDWR ] 0o644 in
  Unix.ftruncate fd (seg.bytes - 3);
  Unix.close fd;
  Alcotest.(check bool) "tail is torn" true
    (List.hd (Seglog.segments ~dir)).torn;
  (* re-opening recovers: truncates the torn record, seals in place *)
  let w2 = Seglog.create ~dir () in
  let recovered = List.hd (Seglog.segments ~dir) in
  Alcotest.(check bool) "sealed by recovery" true recovered.sealed;
  Alcotest.(check bool) "intact after recovery" true (Seglog.intact recovered);
  Alcotest.(check int) "one record truncated" 9 recovered.records;
  (* appends continue in a fresh segment with the next sequence *)
  Seglog.append w2 ~stamp:100. ~delete:false (tuple 100);
  Seglog.close w2;
  let records = read_all dir in
  Alcotest.(check int) "9 recovered + 1 new" 10 (List.length records);
  Alcotest.(check int) "seq continues after recovery" 9
    (List.nth records 9).seq

let test_empty_unsealed_deleted () =
  with_dir @@ fun dir ->
  (* a crash right after rotation leaves a header-only segment *)
  let w = Seglog.create ~dir () in
  Seglog.append w ~stamp:1. ~delete:false (tuple 1);
  Seglog.flush w;
  let seg = List.hd (Seglog.segments ~dir) in
  let fd = Unix.openfile seg.path [ Unix.O_RDWR ] 0o644 in
  (* tear off everything but the header *)
  Unix.ftruncate fd 37;
  Unix.close fd;
  (* closing the recovered writer also deletes its fresh empty segment *)
  Seglog.close (Seglog.create ~dir ());
  Alcotest.(check int) "empty segment deleted on recovery" 0
    (List.length (Seglog.segments ~dir))

(* --- wire framing property --- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.VInt i) int;
        map (fun f -> Value.VFloat f) (float_bound_inclusive 1e9);
        map (fun s -> Value.VStr s) (string_size (int_bound 40));
        map (fun b -> Value.VBool b) bool;
        map (fun s -> Value.VAddr s) (string_size (int_bound 10));
        return Value.VNull;
      ])

let record_gen =
  QCheck.Gen.(
    map3
      (* ids travel in the wire frame's u32 id field (node-local
         counters never outgrow it), so generate within it *)
      (fun id fields (stamp, delete) ->
        (stamp, delete, Tuple.make ~id:(id land 0xffffffff) "t" fields))
      int
      (list_size (int_bound 8) value_gen)
      (pair (map abs_float (float_bound_inclusive 1e6)) bool))

let prop_round_trip =
  QCheck.Test.make ~count:100 ~name:"seglog round-trips arbitrary tuples"
    (QCheck.make
       ~print:(fun recs ->
         String.concat "; "
           (List.map
              (fun (stamp, delete, t) ->
                Fmt.str "%h %b %a" stamp delete Tuple.pp t)
              recs))
       QCheck.Gen.(list_size (int_bound 50) record_gen))
    (fun recs ->
      with_dir @@ fun dir ->
      let w = Seglog.create ~config:small_config ~dir () in
      List.iter (fun (stamp, delete, t) -> Seglog.append w ~stamp ~delete t) recs;
      Seglog.close w;
      let back = read_all dir in
      if List.length back <> List.length recs then begin
        Fmt.epr "LENGTH %d vs %d@." (List.length recs) (List.length back);
        false
      end
      else
        List.for_all2
           (fun (stamp, delete, t) (r : Seglog.record) ->
             let ok = r.stamp = stamp && r.delete = delete
             && Tuple.id r.tuple = Tuple.id t
             && Tuple.name r.tuple = Tuple.name t
             && List.for_all2 Value.equal (Tuple.fields t) (Tuple.fields r.tuple) in
             if not ok then
               Fmt.epr "MISMATCH stamp %h/%h delete %b/%b id %d/%d in=%a out=%a@."
                 stamp r.stamp delete r.delete (Tuple.id t) (Tuple.id r.tuple)
                 Tuple.pp t Tuple.pp r.tuple;
             ok)
           recs back)

(* --- crc32 reference vectors --- *)

let test_crc32_vectors () =
  (* IEEE 802.3 reflected CRC-32 check values *)
  Alcotest.(check int) "crc32(\"\")" 0 (Seglog.crc32 "");
  Alcotest.(check int)
    "crc32(\"123456789\")" 0xCBF43926
    (Seglog.crc32 "123456789")

let () =
  Alcotest.run "seglog"
    [
      ( "framing",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "time window" `Quick test_time_window;
          Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
          QCheck_alcotest.to_alcotest prop_round_trip;
        ] );
      ( "rotation",
        [
          Alcotest.test_case "rotation" `Quick test_rotation;
          Alcotest.test_case "retention by count" `Quick test_retention_by_count;
          Alcotest.test_case "retention by age" `Quick test_retention_by_age;
        ] );
      ( "damage",
        [
          Alcotest.test_case "crc corruption skipped" `Quick
            test_crc_corruption_skipped;
          Alcotest.test_case "header corruption" `Quick test_header_corruption;
          Alcotest.test_case "torn tail recovery" `Quick test_torn_tail_recovery;
          Alcotest.test_case "empty unsealed deleted" `Quick
            test_empty_unsealed_deleted;
        ] );
    ]
