test/test_epidemic.ml: Alcotest Epidemic Float Fmt List P2_runtime Store
