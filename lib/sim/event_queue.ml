(** Priority queue of timestamped events.

    Ties are broken by insertion order, making the simulation fully
    deterministic and making same-time deliveries on one channel FIFO. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 0 (Obj.magic 0); size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = max 16 (2 * Array.length t.heap) in
  let heap = Array.make cap t.heap.(0) in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let schedule t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.schedule: NaN time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then
    if t.size = 0 then t.heap <- Array.make 16 entry else grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  (* sift up *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before t.heap.(i) t.heap.(parent) then begin
        let tmp = t.heap.(i) in
        t.heap.(i) <- t.heap.(parent);
        t.heap.(parent) <- tmp;
        up parent
      end
    end
  in
  up (t.size - 1)

let peek t = if t.size = 0 then None else Some (t.heap.(0).time, t.heap.(0).payload)

let pop_entry t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest = ref i in
        if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> i then begin
          let tmp = t.heap.(i) in
          t.heap.(i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0
    end;
    Some (top.time, top.seq, top.payload)
  end

let pop t =
  match pop_entry t with
  | Some (time, _, payload) -> Some (time, payload)
  | None -> None
