test/test_chord.ml: Alcotest Chord Fmt List Overlog P2_runtime Tuple Value
