examples/watchpoints.mli:
