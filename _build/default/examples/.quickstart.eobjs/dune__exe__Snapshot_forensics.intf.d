examples/snapshot_forensics.mli:
