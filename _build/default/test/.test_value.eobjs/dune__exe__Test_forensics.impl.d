test/test_forensics.ml: Alcotest Core List Option Overlog P2_runtime Str String Tuple Value
