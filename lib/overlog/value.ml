(** Runtime values carried in OverLog tuple fields.

    Values are immutable. Ring identifiers ([VId]) live in the circular
    identifier space [0, Ring.space) and support the modular interval
    tests that Chord-style programs rely on ([K in (A, B]] etc.). *)

type t =
  | VInt of int
  | VFloat of float
  | VStr of string
  | VBool of bool
  | VId of int  (** ring identifier in [0, Ring.space) *)
  | VAddr of string  (** node address, e.g. "n3" or "10.0.0.1:1024" *)
  | VList of t list
  | VNull

(** Circular identifier space arithmetic. *)
module Ring = struct
  (* 31-bit space: big enough to make collisions negligible in tests,
     small enough that all arithmetic stays within native ints. *)
  let bits = 31
  let space = 1 lsl bits

  let norm i = ((i mod space) + space) mod space

  (* Clockwise distance from [a] to [b]. *)
  let distance a b = norm (b - a)

  (* [between_oo a b x]: x in (a, b) on the ring, where the interval is
     traversed clockwise from a to b. When a = b the open interval is
     the whole ring minus {a} (Chord convention). *)
  let between_oo a b x =
    let a = norm a and b = norm b and x = norm x in
    if a = b then x <> a else distance a x > 0 && distance a x < distance a b

  let between_oc a b x =
    let a = norm a and b = norm b and x = norm x in
    if a = b then true else distance a x > 0 && distance a x <= distance a b

  let between_co a b x =
    let a = norm a and b = norm b and x = norm x in
    if a = b then true else distance a x < distance a b

  let between_cc a b x =
    let a = norm a and b = norm b and x = norm x in
    if a = b then x = a else distance a x <= distance a b
end

let rec equal v1 v2 =
  match (v1, v2) with
  | VInt a, VInt b -> a = b
  | VFloat a, VFloat b -> a = b
  | VStr a, VStr b -> String.equal a b
  | VBool a, VBool b -> a = b
  | VId a, VId b -> Ring.norm a = Ring.norm b
  | VAddr a, VAddr b -> String.equal a b
  | VList a, VList b -> List.length a = List.length b && List.for_all2 equal a b
  | VNull, VNull -> true
  (* Numeric cross-comparison: ints and ids compare by numeric value so
     that rules may mix them (`NID < SID` where one side came from a
     constant). *)
  | VInt a, VId b | VId a, VInt b -> a = b
  | VInt a, VFloat b | VFloat b, VInt a -> float_of_int a = b
  (* Program-text constants are strings; runtime locations are
     addresses. They must compare equal for rules like
     [PAddr != "-"] to work. *)
  | VStr a, VAddr b | VAddr a, VStr b -> String.equal a b
  | _ -> false

let rec compare v1 v2 =
  match (v1, v2) with
  | VInt a, VInt b -> Stdlib.compare a b
  | VFloat a, VFloat b -> Stdlib.compare a b
  | VStr a, VStr b -> String.compare a b
  | VBool a, VBool b -> Stdlib.compare a b
  | VId a, VId b -> Stdlib.compare (Ring.norm a) (Ring.norm b)
  | VAddr a, VAddr b -> String.compare a b
  | VList a, VList b -> List.compare compare a b
  | VNull, VNull -> 0
  | VInt a, VId b -> Stdlib.compare a (Ring.norm b)
  | VId a, VInt b -> Stdlib.compare (Ring.norm a) b
  | VInt a, VFloat b -> Stdlib.compare (float_of_int a) b
  | VFloat a, VInt b -> Stdlib.compare a (float_of_int b)
  | VStr a, VAddr b | VAddr a, VStr b -> String.compare a b
  | _ -> Stdlib.compare (tag v1) (tag v2)

and tag = function
  | VInt _ -> 0
  | VFloat _ -> 1
  | VStr _ -> 2
  | VBool _ -> 3
  | VId _ -> 4
  | VAddr _ -> 5
  | VList _ -> 6
  | VNull -> 7

let rec pp ppf = function
  | VInt i -> Fmt.int ppf i
  | VFloat f -> Fmt.float ppf f
  | VStr s -> Fmt.pf ppf "%S" s
  | VBool b -> Fmt.bool ppf b
  | VId i -> Fmt.pf ppf "#%d" (Ring.norm i)
  | VAddr a -> Fmt.string ppf a
  | VList vs -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ", ") pp) vs
  | VNull -> Fmt.string ppf "null"

let to_string v = Fmt.str "%a" pp v

(* Rough wire/heap size estimate, used by the memory-accounting proxy
   (see DESIGN.md §3): a boxed word per field plus payload bytes. *)
let rec size_bytes = function
  | VInt _ | VBool _ | VId _ | VNull -> 8
  | VFloat _ -> 8
  | VStr s | VAddr s -> 24 + String.length s
  | VList vs -> 24 + List.fold_left (fun acc v -> acc + size_bytes v) 0 vs

let truthy = function
  | VBool b -> b
  | VNull -> false
  | VInt 0 -> false
  | _ -> true

(** Accessors raising [Invalid_argument] on type mismatch. *)

let as_int = function
  | VInt i -> i
  | VId i -> Ring.norm i
  | v -> invalid_arg (Fmt.str "Value.as_int: %a" pp v)

let as_float = function
  | VFloat f -> f
  | VInt i -> float_of_int i
  | v -> invalid_arg (Fmt.str "Value.as_float: %a" pp v)

let as_string = function
  | VStr s | VAddr s -> s
  | v -> invalid_arg (Fmt.str "Value.as_string: %a" pp v)

let as_addr = function
  | VAddr a -> a
  | VStr s -> s
  | v -> invalid_arg (Fmt.str "Value.as_addr: %a" pp v)

let as_bool = function
  | VBool b -> b
  | v -> invalid_arg (Fmt.str "Value.as_bool: %a" pp v)

let as_list = function
  | VList l -> l
  | v -> invalid_arg (Fmt.str "Value.as_list: %a" pp v)

let hash v = Hashtbl.hash (to_string v)

(* Structural hash consistent with [equal]: since [VInt 2], [VId 2] and
   [VFloat 2.] can all compare equal, every numeric value hashes through
   its float image (exact below 2^53; beyond that a collision just falls
   back to the equality check the caller must already perform). *)
let rec hash_key = function
  | VInt i -> Hashtbl.hash (float_of_int i)
  | VId i -> Hashtbl.hash (float_of_int (Ring.norm i))
  | VFloat f -> Hashtbl.hash f
  | VStr s | VAddr s -> Hashtbl.hash s
  | VBool b -> if b then 0x5bd1e995 else 0x27d4eb2f
  | VNull -> 0x1b873593
  | VList vs ->
      List.fold_left (fun acc v -> ((acc * 31) + hash_key v) land max_int) 0x61c88647 vs

(** Hash of a value list, usable as a group key: [equal]-wise equal
    lists hash identically. *)
let hash_values vs =
  List.fold_left (fun acc v -> ((acc * 31) + hash_key v) land max_int) 17 vs

(* Canonical key text: two values that are [equal] must map to the
   same string (primary-key identity in tables). Strings and addresses
   share a representation; ints and ring ids share the numeric one. *)
let rec canonical_key = function
  | VInt i -> "n:" ^ string_of_int i
  | VId i -> "n:" ^ string_of_int (Ring.norm i)
  | VFloat f -> "f:" ^ string_of_float f
  | VStr s | VAddr s -> "s:" ^ s
  | VBool b -> if b then "b:1" else "b:0"
  | VList vs -> "l:[" ^ String.concat "" (List.map canonical_key vs) ^ "]"
  | VNull -> "null"
