(* Simulation substrate: RNG determinism, event queue ordering, FIFO
   network delivery, fault injection, metric accounting. *)

let test_rng_determinism () =
  let a = Sim.Rng.create 42 and b = Sim.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "same stream" (Sim.Rng.float a) (Sim.Rng.float b)
  done

let test_rng_different_seeds () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
  let xs = List.init 10 (fun _ -> Sim.Rng.float a) in
  let ys = List.init 10 (fun _ -> Sim.Rng.float b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_bounds () =
  let r = Sim.Rng.create 7 in
  for _ = 1 to 1000 do
    let f = Sim.Rng.float r in
    if f < 0. || f >= 1. then Alcotest.failf "float out of range: %f" f;
    let i = Sim.Rng.int r 10 in
    if i < 0 || i >= 10 then Alcotest.failf "int out of range: %d" i
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sim.Rng.int r 0))

let test_rng_split () =
  let r = Sim.Rng.create 5 in
  let a = Sim.Rng.split r and b = Sim.Rng.split r in
  Alcotest.(check bool) "split streams differ" true
    (List.init 5 (fun _ -> Sim.Rng.float a) <> List.init 5 (fun _ -> Sim.Rng.float b))

let test_queue_order () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.schedule q ~time:3. "c";
  Sim.Event_queue.schedule q ~time:1. "a";
  Sim.Event_queue.schedule q ~time:2. "b";
  let pop () = match Sim.Event_queue.pop q with Some (_, x) -> x | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_queue_fifo_ties () =
  let q = Sim.Event_queue.create () in
  for i = 0 to 9 do
    Sim.Event_queue.schedule q ~time:1. i
  done;
  let out = List.init 10 (fun _ ->
      match Sim.Event_queue.pop q with Some (_, x) -> x | None -> -1)
  in
  Alcotest.(check (list int)) "insertion order on ties" [ 0;1;2;3;4;5;6;7;8;9 ] out

let test_queue_interleaved () =
  let q = Sim.Event_queue.create () in
  (* push/pop interleaving with many elements exercises the heap *)
  let r = Sim.Rng.create 3 in
  let popped = ref [] in
  for _ = 1 to 500 do
    Sim.Event_queue.schedule q ~time:(Sim.Rng.float r) ()
  done;
  let last = ref (-1.) in
  let ok = ref true in
  let rec drain () =
    match Sim.Event_queue.pop q with
    | None -> ()
    | Some (t, ()) ->
        if t < !last then ok := false;
        last := t;
        popped := t :: !popped;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "monotone pops" true !ok;
  Alcotest.(check int) "all popped" 500 (List.length !popped)

let prop_queue_sorted =
  QCheck.Test.make ~name:"queue always sorted" ~count:100
    QCheck.(list (float_bound_inclusive 1000.))
    (fun times ->
      let q = Sim.Event_queue.create () in
      List.iter (fun t -> Sim.Event_queue.schedule q ~time:t ()) times;
      let rec drain acc =
        match Sim.Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, ()) -> drain (t :: acc)
      in
      let out = drain [] in
      out = List.sort compare times)

let test_network_fifo () =
  (* even with jitter, per-channel delivery times are monotone *)
  let net = Sim.Network.create ~base_latency:0.01 ~jitter:0.05 (Sim.Rng.create 1) in
  let last = ref 0. in
  let ok = ref true in
  for i = 0 to 99 do
    match Sim.Network.send net ~now:(float_of_int i *. 0.001) ~src:"a" ~dst:"b" with
    | Sim.Network.Deliver t ->
        if t <= !last then ok := false;
        last := t
    | Sim.Network.Drop _ -> Alcotest.fail "unexpected drop"
  done;
  Alcotest.(check bool) "fifo per channel" true !ok

let test_network_latency () =
  let net = Sim.Network.create ~base_latency:0.01 ~jitter:0. (Sim.Rng.create 1) in
  (match Sim.Network.send net ~now:5. ~src:"a" ~dst:"b" with
  | Sim.Network.Deliver t -> Alcotest.(check (float 1e-9)) "base latency" 5.01 t
  | Sim.Network.Drop _ -> Alcotest.fail "drop");
  (* loopback is instantaneous *)
  match Sim.Network.send net ~now:5. ~src:"a" ~dst:"a" with
  | Sim.Network.Deliver t -> Alcotest.(check (float 1e-9)) "loopback" 5. t
  | Sim.Network.Drop _ -> Alcotest.fail "drop"

let test_network_faults () =
  let net = Sim.Network.create ~loss_rate:0. (Sim.Rng.create 1) in
  Sim.Network.cut_link net ~src:"a" ~dst:"b";
  (match Sim.Network.send net ~now:0. ~src:"a" ~dst:"b" with
  | Sim.Network.Drop reason -> Alcotest.(check string) "cut" "link cut" reason
  | _ -> Alcotest.fail "expected drop");
  (* direction matters *)
  (match Sim.Network.send net ~now:0. ~src:"b" ~dst:"a" with
  | Sim.Network.Deliver _ -> ()
  | _ -> Alcotest.fail "reverse direction should work");
  Sim.Network.heal_link net ~src:"a" ~dst:"b";
  (match Sim.Network.send net ~now:0. ~src:"a" ~dst:"b" with
  | Sim.Network.Deliver _ -> ()
  | _ -> Alcotest.fail "healed");
  Sim.Network.crash net "c";
  Alcotest.(check bool) "crashed" true (Sim.Network.is_crashed net "c");
  (match Sim.Network.send net ~now:0. ~src:"x" ~dst:"c" with
  | Sim.Network.Drop _ -> ()
  | _ -> Alcotest.fail "to crashed");
  (match Sim.Network.send net ~now:0. ~src:"c" ~dst:"x" with
  | Sim.Network.Drop _ -> ()
  | _ -> Alcotest.fail "from crashed");
  Sim.Network.recover net "c";
  match Sim.Network.send net ~now:0. ~src:"x" ~dst:"c" with
  | Sim.Network.Deliver _ -> ()
  | _ -> Alcotest.fail "recovered"

let test_network_loss () =
  let net = Sim.Network.create ~loss_rate:0.5 (Sim.Rng.create 9) in
  let drops = ref 0 in
  for _ = 1 to 1000 do
    match Sim.Network.send net ~now:0. ~src:"a" ~dst:"b" with
    | Sim.Network.Drop _ -> incr drops
    | Sim.Network.Deliver _ -> ()
  done;
  Alcotest.(check bool) "roughly half dropped" true (!drops > 400 && !drops < 600);
  Alcotest.(check int) "tx counted" 1000 (Sim.Network.tx_count net);
  Alcotest.(check int) "drops counted" !drops (Sim.Network.drop_count net)

(* --- property: no fault-op interleaving breaks per-channel FIFO --- *)

type net_op =
  | Send of int * int
  | Cut of int * int
  | Heal of int * int
  | NodeCrash of int
  | NodeRecover of int
  | Loss of int  (* tenths: 0..4 -> 0.0..0.4 *)
  | Latency of int  (* milliseconds of base latency *)

let gen_net_op =
  QCheck.Gen.(
    let node = int_bound 3 in
    frequency
      [
        (8, map2 (fun s d -> Send (s, d)) node node);
        (1, map2 (fun s d -> Cut (s, d)) node node);
        (1, map2 (fun s d -> Heal (s, d)) node node);
        (1, map (fun n -> NodeCrash n) node);
        (1, map (fun n -> NodeRecover n) node);
        (1, map (fun t -> Loss t) (int_bound 4));
        (1, map (fun ms -> Latency ms) (int_range 1 80));
      ])

let prop_fifo_under_faults =
  QCheck.Test.make ~name:"per-channel FIFO survives fault interleavings" ~count:200
    (QCheck.make QCheck.Gen.(pair small_nat (list_size (int_range 1 150) gen_net_op)))
    (fun (seed, ops) ->
      let net =
        Sim.Network.create ~base_latency:0.01 ~jitter:0.05 (Sim.Rng.create (seed + 1))
      in
      let addr n = Fmt.str "n%d" n in
      let last : (string * string, float) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      List.iteri
        (fun i op ->
          let now = float_of_int i *. 0.01 in
          match op with
          | Send (s, d) when s <> d -> (
              match Sim.Network.send net ~now ~src:(addr s) ~dst:(addr d) with
              | Sim.Network.Drop _ -> ()
              | Sim.Network.Deliver t ->
                  let chan = (addr s, addr d) in
                  let prev = Option.value ~default:neg_infinity (Hashtbl.find_opt last chan) in
                  (* strictly later than the channel's previous delivery,
                     and never before the send *)
                  if t <= prev || t < now then ok := false;
                  Hashtbl.replace last chan t)
          | Send _ -> ()
          | Cut (s, d) -> Sim.Network.cut_link net ~src:(addr s) ~dst:(addr d)
          | Heal (s, d) -> Sim.Network.heal_link net ~src:(addr s) ~dst:(addr d)
          | NodeCrash n -> Sim.Network.crash net (addr n)
          | NodeRecover n -> Sim.Network.recover net (addr n)
          | Loss t -> Sim.Network.set_loss_rate net (float_of_int t /. 10.)
          | Latency ms ->
              let base = float_of_int ms /. 1000. in
              Sim.Network.set_latency net ~base ~jitter:(base /. 2.))
        ops;
      !ok)

(* --- engine determinism: same seed => identical deliveries and metrics --- *)

(* A small gossip deployment under jitter, loss, and mid-run faults;
   returns the full observable trace: every ping delivery (time, node,
   tuple) plus network counters and per-node metric snapshots. *)
let gossip_trace seed =
  let engine = P2_runtime.Engine.create ~seed ~base_latency:0.02 ~jitter:0.03 ~loss_rate:0.05 () in
  let addrs = [ "a"; "b"; "c" ] in
  List.iter (fun a -> ignore (P2_runtime.Engine.add_node engine a)) addrs;
  P2_runtime.Engine.install_all engine
    {|
materialize(peer, infinity, 16, keys(2)).
materialize(seen, 30, infinity, keys(1,2,3)).
g1 ping@P(N, E) :- periodic@N(E, 0.5), peer@N(P).
g2 seen@N(P, E) :- ping@N(P, E).
|};
  P2_runtime.Engine.install engine "a" {|peer@a(b). peer@a(c).|};
  P2_runtime.Engine.install engine "b" {|peer@b(c).|};
  P2_runtime.Engine.install engine "c" {|peer@c(a).|};
  let log = ref [] in
  List.iter
    (fun a ->
      P2_runtime.Engine.watch engine a "ping" (fun t ->
          log :=
            Fmt.str "%.9f %s %a" (P2_runtime.Engine.now engine) a Overlog.Tuple.pp t
            :: !log))
    addrs;
  P2_runtime.Engine.at engine ~time:3. (fun () -> P2_runtime.Engine.crash engine "b");
  P2_runtime.Engine.at engine ~time:4. (fun () ->
      P2_runtime.Engine.cut_link engine ~src:"a" ~dst:"c");
  P2_runtime.Engine.at engine ~time:6. (fun () -> P2_runtime.Engine.recover engine "b");
  P2_runtime.Engine.at engine ~time:7. (fun () ->
      P2_runtime.Engine.heal_link engine ~src:"a" ~dst:"c");
  P2_runtime.Engine.run_for engine 10.;
  let counters =
    ( Sim.Network.tx_count (P2_runtime.Engine.network engine),
      Sim.Network.drop_count (P2_runtime.Engine.network engine) )
  in
  let snaps = List.map (fun a -> P2_runtime.Engine.snapshot_node engine a) addrs in
  (List.rev !log, counters, snaps)

let test_engine_deterministic () =
  let t1 = gossip_trace 11 and t2 = gossip_trace 11 in
  let log1, counters1, snaps1 = t1 and log2, counters2, snaps2 = t2 in
  Alcotest.(check bool) "a run delivers messages" true (List.length log1 > 0);
  Alcotest.(check (list string)) "same seed: identical delivery order" log1 log2;
  Alcotest.(check (pair int int)) "same seed: identical tx/drop counters" counters1
    counters2;
  Alcotest.(check bool) "same seed: identical per-node metrics" true (snaps1 = snaps2)

let test_engine_seed_sensitivity () =
  let log1, _, _ = gossip_trace 11 and log2, _, _ = gossip_trace 12 in
  Alcotest.(check bool) "different seed: different trace" true (log1 <> log2)

let test_metrics () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.charge m 10.;
  Sim.Metrics.message_tx m ~bytes:100;
  Sim.Metrics.message_rx m;
  Sim.Metrics.tuple_created m;
  Sim.Metrics.rule_executed m;
  Alcotest.(check int) "tx" 1 (Sim.Metrics.messages_tx m);
  Alcotest.(check int) "rx" 1 (Sim.Metrics.messages_rx m);
  Alcotest.(check int) "bytes" 100 (Sim.Metrics.bytes_tx m);
  Alcotest.(check int) "tuples" 1 (Sim.Metrics.tuples_created m);
  Alcotest.(check int) "rules" 1 (Sim.Metrics.rule_executions m);
  Alcotest.(check bool) "work includes marshal" true (Sim.Metrics.work m > 10.);
  (* cpu proxy: one second's full budget over 100 s = 1% *)
  Alcotest.(check (float 1e-9)) "cpu percent" 1.
    (Sim.Metrics.cpu_percent
       ~work:Sim.Metrics.budget_units_per_second ~seconds:100.);
  Alcotest.(check bool) "memory grows with tuples" true
    (Sim.Metrics.memory_mb ~live_tuples:1000 ~live_bytes:100_000
    > Sim.Metrics.memory_mb ~live_tuples:0 ~live_bytes:0)

let test_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Sim.Metrics.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-6)) "stddev" 0.816497 (Sim.Metrics.stddev [ 1.; 2.; 3. ]);
  Alcotest.(check (float 0.)) "empty" 0. (Sim.Metrics.mean [])

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_different_seeds;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split;
        ] );
      ( "event queue",
        [
          Alcotest.test_case "order" `Quick test_queue_order;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_queue_interleaved;
          QCheck_alcotest.to_alcotest prop_queue_sorted;
        ] );
      ( "network",
        [
          Alcotest.test_case "fifo" `Quick test_network_fifo;
          Alcotest.test_case "latency" `Quick test_network_latency;
          Alcotest.test_case "faults" `Quick test_network_faults;
          Alcotest.test_case "loss" `Quick test_network_loss;
          QCheck_alcotest.to_alcotest prop_fifo_under_faults;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same run" `Quick test_engine_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_engine_seed_sensitivity;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics;
          Alcotest.test_case "stats" `Quick test_stddev;
        ] );
    ]
