lib/overlog/wire.mli: Tuple Value
