(* §3.4 forensics: backward derivation walks across nodes, taint
   analysis against suspect addresses, and DOT rendering. *)

open Overlog

let test_local_chain_walk () =
  let engine = P2_runtime.Engine.create ~seed:3 ~trace:true () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a"
    {|
r1 mid@N(X) :- start@N(X).
r2 out@N(Y) :- mid@N(X), Y := X + 1.
|};
  let out_id = ref None in
  P2_runtime.Engine.watch engine "a" "out" (fun t -> out_id := Some (Tuple.id t));
  ignore @@ P2_runtime.Engine.inject engine "a" "start" [ Value.VInt 1 ];
  P2_runtime.Engine.run_for engine 1.;
  let g =
    Core.Forensics.walk engine ~addr:"a" ~tuple_id:(Option.get !out_id)
  in
  (* out <- mid <- start: three tuples, two rule edges *)
  Alcotest.(check int) "three vertices" 3 (List.length g.vertices);
  Alcotest.(check int) "two edges" 2 (List.length g.edges);
  Alcotest.(check bool) "rules recorded" true
    (List.exists (fun e -> e.Core.Forensics.rule = "r1") g.edges
    && List.exists (fun e -> e.Core.Forensics.rule = "r2") g.edges);
  Alcotest.(check bool) "no network edges" true
    (List.for_all (fun e -> not e.Core.Forensics.crossed_network) g.edges)

let test_cross_node_walk () =
  let engine = P2_runtime.Engine.create ~seed:3 ~trace:true () in
  ignore (P2_runtime.Engine.add_node engine "a");
  ignore (P2_runtime.Engine.add_node engine "b");
  P2_runtime.Engine.install_all engine
    {|
s1 hop@b(X) :- start@a(X).
s2 out@N(Y) :- hop@N(X), Y := X * 10.
|};
  let out_id = ref None in
  P2_runtime.Engine.watch engine "b" "out" (fun t -> out_id := Some (Tuple.id t));
  ignore @@ P2_runtime.Engine.inject engine "a" "start" [ Value.VInt 4 ];
  P2_runtime.Engine.run_for engine 1.;
  let g = Core.Forensics.walk engine ~addr:"b" ~tuple_id:(Option.get !out_id) in
  Alcotest.(check bool) "has a network edge" true
    (List.exists (fun e -> e.Core.Forensics.crossed_network) g.edges);
  Alcotest.(check bool) "walk reaches node a" true
    (List.exists (fun v -> v.Core.Forensics.node = "a") g.vertices);
  (* the injected start tuple at a is the far ancestor *)
  Alcotest.(check bool) "ancestor contents resolved" true
    (List.exists
       (fun v ->
         match v.Core.Forensics.contents with
         | Some t -> Tuple.name t = "start"
         | None -> false)
       g.vertices)

let test_preconditions_included () =
  (* unlike the ep-profiler, the forensic walk follows precondition
     edges too *)
  let engine = P2_runtime.Engine.create ~seed:3 ~trace:true () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a"
    {|
materialize(cfg, infinity, infinity, keys(1,2)).
r out@N(X, C) :- ev@N(X), cfg@N(C).
|};
  P2_runtime.Engine.install engine "a" "cfg@a(77).";
  P2_runtime.Engine.run_for engine 1.;
  let out_id = ref None in
  P2_runtime.Engine.watch engine "a" "out" (fun t -> out_id := Some (Tuple.id t));
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 1 ];
  P2_runtime.Engine.run_for engine 1.;
  let g = Core.Forensics.walk engine ~addr:"a" ~tuple_id:(Option.get !out_id) in
  Alcotest.(check bool) "precondition edge present" true
    (List.exists (fun e -> not e.Core.Forensics.is_event) g.edges);
  Alcotest.(check bool) "cfg tuple among ancestors" true
    (List.exists
       (fun v ->
         match v.Core.Forensics.contents with
         | Some t -> Tuple.name t = "cfg"
         | None -> false)
       g.vertices)

let test_taint () =
  let engine = P2_runtime.Engine.create ~seed:3 ~trace:true () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a"
    {|
materialize(route, infinity, infinity, keys(1,2)).
r out@N(Via) :- ev@N(), route@N(Via).
|};
  P2_runtime.Engine.install engine "a" "route@a(badnode).";
  P2_runtime.Engine.run_for engine 1.;
  let out_id = ref None in
  P2_runtime.Engine.watch engine "a" "out" (fun t -> out_id := Some (Tuple.id t));
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [];
  P2_runtime.Engine.run_for engine 1.;
  let g = Core.Forensics.walk engine ~addr:"a" ~tuple_id:(Option.get !out_id) in
  let tainted = Core.Forensics.taint g ~suspects:[ "badnode" ] in
  Alcotest.(check bool) "tainted ancestors found" true (List.length tainted > 0);
  Alcotest.(check int) "unrelated suspect clean" 0
    (List.length (Core.Forensics.taint g ~suspects:[ "goodnode" ]))

let test_dot_render () =
  let engine = P2_runtime.Engine.create ~seed:3 ~trace:true () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a" "r1 out@N(X) :- start@N(X).";
  let out_id = ref None in
  P2_runtime.Engine.watch engine "a" "out" (fun t -> out_id := Some (Tuple.id t));
  ignore @@ P2_runtime.Engine.inject engine "a" "start" [ Value.VInt 1 ];
  P2_runtime.Engine.run_for engine 1.;
  let g = Core.Forensics.walk engine ~addr:"a" ~tuple_id:(Option.get !out_id) in
  let dot = Core.Forensics.to_dot g in
  Alcotest.(check bool) "digraph syntax" true
    (String.length dot > 0
    && String.sub dot 0 7 = "digraph"
    && String.contains dot '}');
  Alcotest.(check bool) "mentions rule r1" true
    (let re = Str.regexp_string "r1" in
     try ignore (Str.search_forward re dot 0); true with Not_found -> false)

let test_depth_bound () =
  (* a long chain is cut off at max_depth without looping *)
  let engine = P2_runtime.Engine.create ~seed:3 ~trace:true () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a"
    "r1 step@N(X2) :- step@N(X), X2 := X - 1, X > 0.\nr2 out@N(X) :- step@N(X), X == 0.";
  let out_id = ref None in
  P2_runtime.Engine.watch engine "a" "out" (fun t -> out_id := Some (Tuple.id t));
  ignore @@ P2_runtime.Engine.inject engine "a" "step" [ Value.VInt 30 ];
  P2_runtime.Engine.run_for engine 1.;
  let g =
    Core.Forensics.walk ~max_depth:10 engine ~addr:"a" ~tuple_id:(Option.get !out_id)
  in
  Alcotest.(check bool) "bounded" true (List.length g.vertices <= 12)

let () =
  Alcotest.run "forensics"
    [
      ( "walks",
        [
          Alcotest.test_case "local chain" `Quick test_local_chain_walk;
          Alcotest.test_case "cross node" `Quick test_cross_node_walk;
          Alcotest.test_case "preconditions" `Quick test_preconditions_included;
          Alcotest.test_case "depth bound" `Quick test_depth_bound;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "taint" `Quick test_taint;
          Alcotest.test_case "dot" `Quick test_dot_render;
        ] );
    ]
