(** Metric reflection: republish each node's metric registry into its
    own catalog as soft-state tuples, so OverLog rules can monitor the
    monitor (see docs/OPERATIONS.md).

    Tables, all keyed on the first two fields:
    - [p2Stats(Addr, Name, Value)] — one row per registry metric;
      [Value] is a float (counters are integral-valued).
    - [p2TableStats(Addr, Table, Live, Inserts, Deletes, Expirations,
      Evictions, Probes)] — per-table store counters.
    - [p2NetStats(Addr, Peer, TxMsgs, TxBytes, RxMsgs, RxBytes)] —
      per-peer traffic counters.
    - [p2PeerStatus(Addr, Peer, Status, Misses, SilentFor, SendQ)] —
      the transport failure detector's verdict per peer; [Status] is
      one of ["alive"], ["suspect"], ["dead"].

    Reflection rows for unchanged values only refresh their lifetime
    (no table delta), so delta rules over these tables fire exactly on
    movement. *)

(** The [materialize] schema for the three reflection tables. Rows live
    for three reflection periods, so a node that stops reflecting ages
    out. Also the analyzer environment for [Core.Watchdog]'s embedded
    corpus entry. *)
val schema : ?period:float -> unit -> string

(** Reflect one node's current registry, table stats and peer stats
    into its catalog, installing the schema first if needed. Tuples go
    through [Node.deliver], so delta strands fire and the agenda
    drains before this returns. [transport] additionally reflects the
    failure detector's per-peer verdicts as [p2PeerStatus] rows. *)
val reflect_node : ?transport:Transport.t -> period:float -> Node.t -> unit

(** Attach periodic reflection (default every 5 s of simulated time)
    to all nodes of the engine, present and future. Crashed nodes skip
    ticks; their rows on other nodes expire by lifetime. *)
val attach : ?period:float -> Engine.t -> unit

(** One node's stats as a JSON object ([metrics] / [tables] / [peers]).
    Reads registries directly without creating reflection tuples, so a
    dump never perturbs a deterministic run. *)
val node_json : Node.t -> string

(** Engine-wide JSON: [{"time": t, "nodes": {addr: ..., ...}}] with
    nodes in sorted-address order. *)
val to_json : Engine.t -> string

(** Human-readable registry snapshot, one [name value] line per
    metric. *)
val pp_node : Format.formatter -> Node.t -> unit
