(** Abstract syntax of the OverLog dialect implemented here.

    The dialect covers everything the paper uses: deductive rules with
    location specifiers ([head@Z(Y) :- event@N(Y), prec@N(Z).]),
    [materialize] declarations, facts, [delete] rules, head aggregates
    ([count<*>], [min<D>], [max<C>], plus [sum]/[avg]), assignments
    ([X := f_now()]), ring-interval tests ([K in (NID, SID]]), list
    literals and concatenation, and [watch] declarations. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type interval_kind = Open_open | Open_closed | Closed_open | Closed_closed

type expr =
  | Var of string                     (* capitalized identifier *)
  | Const of Value.t
  | Binop of binop * expr * expr
  | Unop_not of expr
  | Neg of expr
  | Call of string * expr list        (* built-in functions, f_... *)
  | ListExpr of expr list             (* [B, A] list construction *)
  | InRange of expr * expr * expr * interval_kind  (* X in (A, B] *)

(** A predicate occurrence [name@Loc(arg1, ..., argn)]. Internally the
    location is folded in as the first argument, so [args] always has
    the location at position 0. [loc_explicit] records whether the
    source used the [@] form (for pretty-printing round trips).
    [aline] is the 1-based source line of the predicate name (0 for
    synthesized atoms). *)
type atom = { pred : string; args : expr list; loc_explicit : bool; aline : int }

(** One aggregate allowed per rule head, P2-style. *)
type aggregate = Count | Min of string | Max of string | Sum of string | Avg of string

type head_field = Plain of expr | Agg of aggregate

type head = {
  hatom : string;
  hloc : expr;
  hfields : head_field list;
  hdelete : bool;
  hline : int;  (* source line of the head predicate; 0 if synthesized *)
}

type body_term =
  | Atom of atom          (* event or table predicate *)
  | NotAtom of atom       (* negation: no matching tuple exists *)
  | Cond of expr          (* selection, e.g. PAddr != "-" *)
  | Assign of string * expr  (* X := expr *)

type rule = { rname : string option; rhead : head; rbody : body_term list; rline : int }

type materialize = {
  mname : string;
  mlifetime : float;        (* seconds; infinity allowed *)
  msize : int option;       (* None = infinity *)
  mkeys : int list;         (* 1-indexed field positions *)
  mline : int;              (* source line of the declaration; 0 if synthesized *)
}

type statement =
  | Rule of rule
  | Materialize of materialize
  | Fact of string * Value.t list * int    (* ground tuple inserted at start; line *)
  | Watch of string * int                  (* watched predicate; line *)
  | Pragma of string list * int
      (* [%% allow E501 W511]: diagnostic codes (wildcards like E50x
         allowed) suppressed on the next rule; line *)

type program = statement list

let statement_line = function
  | Rule r -> r.rline
  | Materialize m -> m.mline
  | Fact (_, _, line) | Watch (_, line) | Pragma (_, line) -> line

(** Erase all source-line annotations (sets them to 0). Used where
    structural comparison should ignore positions, e.g. pretty-print
    round-trip tests. *)
let strip_lines (p : program) : program =
  let atom a = { a with aline = 0 } in
  let body_term = function
    | Atom a -> Atom (atom a)
    | NotAtom a -> NotAtom (atom a)
    | (Cond _ | Assign _) as t -> t
  in
  List.map
    (function
      | Rule r ->
          Rule
            {
              r with
              rline = 0;
              rhead = { r.rhead with hline = 0 };
              rbody = List.map body_term r.rbody;
            }
      | Materialize m -> Materialize { m with mline = 0 }
      | Fact (n, vs, _) -> Fact (n, vs, 0)
      | Watch (n, _) -> Watch (n, 0)
      | Pragma (cs, _) -> Pragma (cs, 0))
    p

let rec pp_expr ppf = function
  | Var v -> Fmt.string ppf v
  | Const c -> Value.pp ppf c
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Unop_not e -> Fmt.pf ppf "!(%a)" pp_expr e
  | Neg e -> Fmt.pf ppf "-(%a)" pp_expr e
  | Call (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args
  | ListExpr es -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ", ") pp_expr) es
  | InRange (x, a, b, k) ->
      let lo, hi =
        match k with
        | Open_open -> ("(", ")")
        | Open_closed -> ("(", "]")
        | Closed_open -> ("[", ")")
        | Closed_closed -> ("[", "]")
      in
      Fmt.pf ppf "%a in %s%a, %a%s" pp_expr x lo pp_expr a pp_expr b hi

and binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"

let pp_aggregate ppf = function
  | Count -> Fmt.string ppf "count<*>"
  | Min v -> Fmt.pf ppf "min<%s>" v
  | Max v -> Fmt.pf ppf "max<%s>" v
  | Sum v -> Fmt.pf ppf "sum<%s>" v
  | Avg v -> Fmt.pf ppf "avg<%s>" v

let pp_head_field ppf = function
  | Plain e -> pp_expr ppf e
  | Agg a -> pp_aggregate ppf a

let pp_atom ppf { pred; args; _ } =
  match args with
  | [] -> Fmt.pf ppf "%s()" pred
  | loc :: rest ->
      Fmt.pf ppf "%s@%a(%a)" pred pp_expr loc
        (Fmt.list ~sep:(Fmt.any ", ") pp_expr) rest

let pp_head ppf h =
  Fmt.pf ppf "%s%s@%a(%a)"
    (if h.hdelete then "delete " else "")
    h.hatom pp_expr h.hloc
    (Fmt.list ~sep:(Fmt.any ", ") pp_head_field) h.hfields

let pp_body_term ppf = function
  | Atom a -> pp_atom ppf a
  | NotAtom a -> Fmt.pf ppf "!%a" pp_atom a
  | Cond e -> pp_expr ppf e
  | Assign (v, e) -> Fmt.pf ppf "%s := %a" v pp_expr e

let pp_rule ppf r =
  Fmt.pf ppf "%s%a :- %a."
    (match r.rname with None -> "" | Some n -> n ^ " ")
    pp_head r.rhead
    (Fmt.list ~sep:(Fmt.any ", ") pp_body_term) r.rbody

let pp_statement ppf = function
  | Rule r -> pp_rule ppf r
  | Materialize m ->
      Fmt.pf ppf "materialize(%s, %s, %s, keys(%a))." m.mname
        (if m.mlifetime = infinity then "infinity" else Fmt.str "%g" m.mlifetime)
        (match m.msize with None -> "infinity" | Some n -> string_of_int n)
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.int) m.mkeys
  | Fact (n, vs, _) ->
      Fmt.pf ppf "%s(%a)." n (Fmt.list ~sep:(Fmt.any ", ") Value.pp) vs
  | Watch (n, _) -> Fmt.pf ppf "watch(%s)." n
  | Pragma (codes, _) ->
      Fmt.pf ppf "%%%% allow %a" (Fmt.list ~sep:(Fmt.any " ") Fmt.string) codes

let pp_program = Fmt.list ~sep:(Fmt.any "@.") pp_statement

(** All variables mentioned by an expression, left to right. *)
let rec expr_vars = function
  | Var v -> [ v ]
  | Const _ -> []
  | Binop (_, a, b) -> expr_vars a @ expr_vars b
  | Unop_not e | Neg e -> expr_vars e
  | Call (_, args) | ListExpr args -> List.concat_map expr_vars args
  | InRange (x, a, b, _) -> expr_vars x @ expr_vars a @ expr_vars b

let head_vars h =
  expr_vars h.hloc
  @ List.concat_map
      (function Plain e -> expr_vars e | Agg (Min v | Max v | Sum v | Avg v) -> [ v ] | Agg Count -> [])
      h.hfields

let rule_has_aggregate r =
  List.exists (function Agg _ -> true | Plain _ -> false) r.rhead.hfields
