(** Recovery-time differential measurement. See recovery.mli. *)

module Engine = P2_runtime.Engine

type arm = Checkpointed | Cold

type result = {
  arm : arm;
  recovered_from_checkpoint : bool;
  restored_rows : int;
  restart_at : float;
  ticks_to_converge : int option;
  probe_period : float;
  ckpt_bytes : int;
  ckpt_snapshots : int;
  ckpt_write_ns : int;
}

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

(* Scenario timing, relative to the end of settle. The victim reboots
   6 s after failing — inside its neighbors' 12 s suspicion window, the
   regime durable state is for: nobody has purged it yet, so a
   checkpointed reboot that restores its successor/predecessor
   pointers makes the ring correct almost immediately, while a cold
   reboot holds a broken ring position until the join + successor
   gossip chain rebuilds bestSucc from nothing (its stale finger
   entries even stall the first join lookups: neighbors forward them
   to the reborn node, which cannot answer until it re-learns a
   successor). A concurrent bipartition cuts two bystanders off and
   heals after 3 s — short enough that post-heal ping refreshes land
   before anyone's 12 s staleness threshold (a longer cut triggers
   faultyNode declarations whose 30 s purge-block gates the global
   ring walk identically in both arms, masking the differential) —
   the crash+partition plan the acceptance oracle calls for,
   stressing the walk without resetting either arm's clock. *)
let crash_delay = 5.
let restart_delay = 11.
let heal_delay = 8.

let measure ?(nodes = 21) ?(seed = 11) ?(shards = 0) ?(sanitize = false)
    ?(settle = 120.) ?(probe_period = 1.) ?(stable_for = 3) ?(deadline = 400.)
    ?(checkpoint_interval = 10.) ~dir arm =
  let engine = Engine.create ~seed () in
  if shards > 0 then Engine.set_shards engine shards;
  if sanitize then Engine.set_sanitize engine true;
  (match arm with
  | Checkpointed ->
      rm_rf dir;
      Engine.set_checkpoint engine
        ~config:
          { Checkpoint.default_config with interval = checkpoint_interval }
        dir
  | Cold -> ());
  let net = Chord.boot engine nodes in
  Engine.run_until engine settle;
  let t0 = Engine.now engine in
  (* The victim sits mid-list; the partition group is two non-landmark
     bystanders, cut off from everyone else while the victim is down. *)
  let non_landmark = List.filter (fun a -> a <> net.Chord.landmark) net.Chord.addrs in
  let victim = List.nth non_landmark (List.length non_landmark / 2) in
  let group =
    let others = List.filter (fun a -> a <> victim) non_landmark in
    [ List.nth others 1; List.nth others (List.length others - 2) ]
  in
  let rest =
    List.filter (fun a -> not (List.mem a group)) net.Chord.addrs
  in
  let cut healed =
    List.iter
      (fun g ->
        List.iter
          (fun r ->
            if healed then begin
              Engine.heal_link engine ~src:g ~dst:r;
              Engine.heal_link engine ~src:r ~dst:g
            end
            else begin
              Engine.cut_link engine ~src:g ~dst:r;
              Engine.cut_link engine ~src:r ~dst:g
            end)
          rest)
      group
  in
  Engine.at engine ~time:(t0 +. crash_delay) (fun () ->
      Engine.crash engine victim;
      cut false);
  let recovered = ref false and restored = ref 0 in
  let restart_at = t0 +. restart_delay in
  Engine.at engine ~time:restart_at (fun () ->
      let o = Engine.restart engine victim in
      (match o.Engine.recovered_from with
      | `Checkpoint _ -> recovered := true
      | `Cold -> Chord.rejoin net victim);
      restored := o.Engine.restored_rows);
  Engine.at engine ~time:(t0 +. heal_delay) (fun () -> cut true);
  (* Probe cadence: ring_correct sampled every [probe_period] after the
     restart; converged at the first probe of a [stable_for]-long
     streak. *)
  let tick = ref 0 and streak = ref 0 and converged = ref None in
  let n_probes = int_of_float (deadline /. probe_period) in
  for i = 1 to n_probes do
    Engine.at engine
      ~time:(restart_at +. (float_of_int i *. probe_period))
      (fun () ->
        incr tick;
        if Chord.ring_correct net then begin
          incr streak;
          if !streak >= stable_for && !converged = None then
            converged := Some (!tick - stable_for + 1)
        end
        else streak := 0)
  done;
  Engine.run_until engine (restart_at +. deadline +. 1.);
  let metric name =
    List.fold_left
      (fun acc addr ->
        match Engine.node_opt engine addr with
        | Some node -> (
            match Metrics.value (P2_runtime.Node.registry node) name with
            | Some v -> acc + int_of_float v
            | None -> acc)
        | None -> acc)
      0 (Engine.addrs engine)
  in
  let ckpt_bytes = metric "ckpt.bytes" in
  let ckpt_snapshots = metric "ckpt.snapshots" in
  let ckpt_write_ns = metric "ckpt.write_ns" in
  Engine.close_checkpoints engine;
  {
    arm;
    recovered_from_checkpoint = !recovered;
    restored_rows = !restored;
    restart_at;
    ticks_to_converge = !converged;
    probe_period;
    ckpt_bytes;
    ckpt_snapshots;
    ckpt_write_ns;
  }

let pp_result ppf r =
  Fmt.pf ppf "%s: %s rows=%d ticks=%s (period %gs) ckpt=%d files/%d bytes"
    (match r.arm with Checkpointed -> "checkpointed" | Cold -> "cold")
    (if r.recovered_from_checkpoint then "restored" else "cold-boot")
    r.restored_rows
    (match r.ticks_to_converge with
    | Some n -> string_of_int n
    | None -> "never")
    r.probe_period r.ckpt_snapshots r.ckpt_bytes
