(** Host-side forensic analysis over the tracer's tables (paper §3.4):

    "a traversal of the execution state of a lookup result can at each
    step trace back individual preconditions of the execution trace,
    evaluating whether they may have been dependent on routing
    oscillators."

    Where the §3.2 profiler walks only the event chain (the latency
    path), these walks follow {e every} causal edge — preconditions
    included — across nodes, reconstructing the full derivation DAG of
    a tuple. On top of it:

    - {!taint}: did any ancestor tuple mention one of the suspect
      addresses (e.g. known oscillators)?
    - {!to_dot}: render the derivation as a Graphviz graph for the
      human in the loop. *)

open Overlog

type vertex = {
  node : string;  (** where the tuple lived *)
  tuple_id : int;  (** its id on that node *)
  contents : Tuple.t option;  (** from the tracer's memo, if still alive *)
}

type edge = {
  rule : string;
  is_event : bool;  (** event edge vs precondition edge *)
  cause : vertex;
  effect : vertex;
  crossed_network : bool;
}

type graph = { root : vertex; vertices : vertex list; edges : edge list }

let tracer_of engine addr = P2_runtime.Node.tracer (P2_runtime.Engine.node engine addr)

let rule_exec_rows engine addr =
  Store.Table.tuples
    (Dataflow.Tracer.rule_exec_table (tracer_of engine addr))
    ~now:(P2_runtime.Engine.now engine)

let tuple_table_rows engine addr =
  Store.Table.tuples
    (Dataflow.Tracer.tuple_table (tracer_of engine addr))
    ~now:(P2_runtime.Engine.now engine)

(* Where did tuple [id] at [addr] come from? Returns (src addr, src id)
   when it crossed the network. *)
let provenance engine addr id =
  tuple_table_rows engine addr
  |> List.find_map (fun row ->
         if Value.as_int (Tuple.field row 2) = id then
           let src = Value.as_addr (Tuple.field row 3) in
           let src_id = Value.as_int (Tuple.field row 4) in
           if src <> addr || src_id <> id then Some (src, src_id) else None
         else None)

let vertex engine node tuple_id =
  { node; tuple_id; contents = Dataflow.Tracer.resolve (tracer_of engine node) tuple_id }

(** Walk the derivation DAG of tuple [tuple_id] at [addr] backwards
    through ruleExec/tupleTable, across nodes, up to [max_depth]
    causal steps. *)
let walk ?(max_depth = 64) engine ~addr ~tuple_id =
  let vertices = ref [] in
  let edges = ref [] in
  let seen = Hashtbl.create 32 in
  let rec go depth node id =
    if depth < max_depth && not (Hashtbl.mem seen (node, id)) then begin
      Hashtbl.replace seen (node, id) ();
      let v = vertex engine node id in
      vertices := v :: !vertices;
      (* follow network provenance: the same tuple under its id at the
         sender *)
      (match provenance engine node id with
      | Some (src, src_id) when src <> node ->
          (* go() adds the source vertex when it visits it *)
          let u = vertex engine src src_id in
          edges :=
            {
              rule = "<network>";
              is_event = true;
              cause = u;
              effect = v;
              crossed_network = true;
            }
            :: !edges;
          go (depth + 1) src src_id
      | _ ->
          (* locally derived: find the rule executions that produced it *)
          List.iter
            (fun row ->
              if Value.as_int (Tuple.field row 4) = id then begin
                let rule = Value.as_string (Tuple.field row 2) in
                let cause_id = Value.as_int (Tuple.field row 3) in
                let is_event = Value.as_bool (Tuple.field row 7) in
                let u = vertex engine node cause_id in
                edges :=
                  { rule; is_event; cause = u; effect = v; crossed_network = false }
                  :: !edges;
                go (depth + 1) node cause_id
              end)
            (rule_exec_rows engine node))
    end
  in
  go 0 addr tuple_id;
  { root = vertex engine addr tuple_id; vertices = List.rev !vertices;
    edges = List.rev !edges }

(** Does any value of any ancestor tuple mention one of the suspect
    addresses? Returns the offending vertices (the §3.4 "was this
    lookup dependent on a routing oscillator?" question). *)
let taint graph ~suspects =
  let mentions tuple =
    List.exists
      (fun v ->
        match v with
        | Value.VAddr a | Value.VStr a -> List.mem a suspects
        | _ -> false)
      (Tuple.fields tuple)
  in
  List.filter
    (fun v -> match v.contents with Some t -> mentions t | None -> false)
    graph.vertices

(** Render the derivation DAG as Graphviz dot. *)
let to_dot graph =
  let buf = Buffer.create 1024 in
  let vid v = Fmt.str "\"%s/%d\"" v.node v.tuple_id in
  Buffer.add_string buf "digraph derivation {\n  rankdir=BT;\n";
  List.iter
    (fun v ->
      let label =
        match v.contents with
        | Some t -> String.escaped (Tuple.to_string t)
        | None -> Fmt.str "%s/%d (expired)" v.node v.tuple_id
      in
      Buffer.add_string buf
        (Fmt.str "  %s [label=\"%s\\n@%s\"];\n" (vid v) label v.node))
    graph.vertices;
  List.iter
    (fun e ->
      let style =
        if e.crossed_network then "style=bold,color=blue"
        else if e.is_event then "color=black"
        else "style=dashed,color=gray"
      in
      Buffer.add_string buf
        (Fmt.str "  %s -> %s [label=\"%s\",%s];\n" (vid e.cause) (vid e.effect)
           (String.escaped e.rule) style))
    graph.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_summary ppf graph =
  Fmt.pf ppf "derivation of %s/%d: %d tuples, %d causal edges (%d cross-network)"
    graph.root.node graph.root.tuple_id
    (List.length graph.vertices) (List.length graph.edges)
    (List.length (List.filter (fun e -> e.crossed_network) graph.edges))
