lib/overlog/value.mli: Fmt
