lib/dataflow/machine.mli: Eval Overlog Strand Tracer Tuple Value
