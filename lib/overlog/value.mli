(** Runtime values carried in OverLog tuple fields. *)

type t =
  | VInt of int
  | VFloat of float
  | VStr of string
  | VBool of bool
  | VId of int  (** ring identifier, normalized into [0, Ring.space) *)
  | VAddr of string  (** node address *)
  | VList of t list
  | VNull

(** Circular identifier space arithmetic (Chord-style). All interval
    tests walk clockwise from the first bound; a degenerate interval
    with equal bounds covers the whole ring (open) or the single point
    (closed), following Chord's conventions. *)
module Ring : sig
  val bits : int
  val space : int

  (** Normalize into [0, space). *)
  val norm : int -> int

  (** Clockwise distance from the first to the second identifier. *)
  val distance : int -> int -> int

  val between_oo : int -> int -> int -> bool
  val between_oc : int -> int -> int -> bool
  val between_co : int -> int -> int -> bool
  val between_cc : int -> int -> int -> bool
end

(** Structural equality. Strings and addresses compare equal when their
    text matches (program constants are strings, runtime locations are
    addresses); ints, ids and floats cross-compare numerically. *)
val equal : t -> t -> bool

(** Total order consistent with {!equal}. *)
val compare : t -> t -> int

val pp : t Fmt.t
val to_string : t -> string

(** Rough heap/wire size estimate in bytes, used by the memory proxy. *)
val size_bytes : t -> int

(** Datalog truthiness: [false], [null] and [0] are false. *)
val truthy : t -> bool

(** Accessors; raise [Invalid_argument] on type mismatch. [as_addr]
    and [as_string] accept both strings and addresses. *)

val as_int : t -> int
val as_float : t -> float
val as_string : t -> string
val as_addr : t -> string
val as_bool : t -> bool
val as_list : t -> t list

val hash : t -> int

(** Structural hash consistent with {!equal}: equal values (including
    the int/id/float and string/address cross-equalities) hash the
    same. *)
val hash_key : t -> int

(** Hash of a value list under {!hash_key} — an allocation-free group
    key for aggregate evaluation (collisions must be resolved with
    {!equal}). *)
val hash_values : t list -> int

(** Canonical key text: values that are {!equal} map to the same
    string (used for primary-key identity in tables). *)
val canonical_key : t -> string
