(* Values and ring-identifier arithmetic. *)

open Overlog

let v = Alcotest.testable Value.pp Value.equal

let test_equality () =
  Alcotest.check v "int" (Value.VInt 3) (Value.VInt 3);
  Alcotest.(check bool) "str/addr cross" true
    (Value.equal (Value.VStr "n1") (Value.VAddr "n1"));
  Alcotest.(check bool) "addr/str cross" true
    (Value.equal (Value.VAddr "n1") (Value.VStr "n1"));
  Alcotest.(check bool) "int/id cross" true (Value.equal (Value.VInt 5) (Value.VId 5));
  Alcotest.(check bool) "id normalization" true
    (Value.equal (Value.VId 5) (Value.VId (5 + Value.Ring.space)));
  Alcotest.(check bool) "different" false
    (Value.equal (Value.VInt 1) (Value.VStr "1"));
  Alcotest.(check bool) "lists" true
    (Value.equal
       (Value.VList [ Value.VInt 1; Value.VStr "a" ])
       (Value.VList [ Value.VInt 1; Value.VStr "a" ]))

let test_compare () =
  Alcotest.(check bool) "lt" true (Value.compare (Value.VInt 1) (Value.VInt 2) < 0);
  Alcotest.(check bool) "float/int" true
    (Value.compare (Value.VFloat 1.5) (Value.VInt 2) < 0);
  Alcotest.(check bool) "id compare normalized" true
    (Value.compare (Value.VId (Value.Ring.space + 1)) (Value.VId 2) < 0);
  Alcotest.(check bool) "equal is 0" true
    (Value.compare (Value.VStr "x") (Value.VStr "x") = 0)

let test_ring_basics () =
  let open Value.Ring in
  Alcotest.(check int) "norm negative" (space - 1) (norm (-1));
  Alcotest.(check int) "norm wrap" 3 (norm (space + 3));
  Alcotest.(check int) "distance forward" 5 (distance 10 15);
  Alcotest.(check int) "distance wrap" (space - 5) (distance 15 10)

let test_ring_intervals () =
  let open Value.Ring in
  (* plain interval *)
  Alcotest.(check bool) "oo inside" true (between_oo 10 20 15);
  Alcotest.(check bool) "oo excl lo" false (between_oo 10 20 10);
  Alcotest.(check bool) "oo excl hi" false (between_oo 10 20 20);
  Alcotest.(check bool) "oc incl hi" true (between_oc 10 20 20);
  Alcotest.(check bool) "co incl lo" true (between_co 10 20 10);
  Alcotest.(check bool) "cc both" true (between_cc 10 20 10 && between_cc 10 20 20);
  (* wrapped interval *)
  Alcotest.(check bool) "wrap inside high" true (between_oo 20 10 25);
  Alcotest.(check bool) "wrap inside low" true (between_oo 20 10 5);
  Alcotest.(check bool) "wrap outside" false (between_oo 20 10 15);
  (* degenerate a = b: whole ring (Chord convention) *)
  Alcotest.(check bool) "oo a=b excludes a" false (between_oo 7 7 7);
  Alcotest.(check bool) "oo a=b includes rest" true (between_oo 7 7 8);
  Alcotest.(check bool) "oc a=b everything" true (between_oc 7 7 123);
  Alcotest.(check bool) "cc a=b only a" true (between_cc 7 7 7);
  Alcotest.(check bool) "cc a=b not rest" false (between_cc 7 7 8)

(* Property: x in (a,b] iff distance(a,x) in (0, distance(a,b)] — and
   complements partition the ring. *)
let prop_interval_partition =
  QCheck.Test.make ~name:"ring interval partition" ~count:500
    QCheck.(triple (int_bound (Value.Ring.space - 1)) (int_bound (Value.Ring.space - 1))
              (int_bound (Value.Ring.space - 1)))
    (fun (a, b, x) ->
      QCheck.assume (a <> b);
      let open Value.Ring in
      (* every x != a and x != b lies in exactly one of (a,b) and (b,a) *)
      if x = a || x = b then true
      else Bool.not (between_oo a b x) = between_oo b a x)

let prop_oc_co_duality =
  QCheck.Test.make ~name:"oc/co duality" ~count:500
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, x) ->
      let open Value.Ring in
      (* x in (a,b] iff x not in (b... complement: (a,b] and (b,a] partition ring minus nothing *)
      if norm a = norm b then true
      else Bool.not (between_oc a b x) = between_oc b a x || norm x = norm a || norm x = norm b)

let test_accessors () =
  Alcotest.(check int) "as_int id" 5 (Value.as_int (Value.VId 5));
  Alcotest.(check (float 1e-9)) "as_float int" 2.0 (Value.as_float (Value.VInt 2));
  Alcotest.(check string) "as_addr str" "n1" (Value.as_addr (Value.VStr "n1"));
  Alcotest.check_raises "as_int str" (Invalid_argument "Value.as_int: \"x\"")
    (fun () -> ignore (Value.as_int (Value.VStr "x")))

let test_truthy () =
  Alcotest.(check bool) "false" false (Value.truthy (Value.VBool false));
  Alcotest.(check bool) "null" false (Value.truthy Value.VNull);
  Alcotest.(check bool) "zero" false (Value.truthy (Value.VInt 0));
  Alcotest.(check bool) "one" true (Value.truthy (Value.VInt 1));
  Alcotest.(check bool) "string" true (Value.truthy (Value.VStr ""))

let test_size_bytes () =
  Alcotest.(check bool) "int size" true (Value.size_bytes (Value.VInt 1) > 0);
  Alcotest.(check bool) "str grows" true
    (Value.size_bytes (Value.VStr "aaaaaaaaaa") > Value.size_bytes (Value.VStr "a"));
  Alcotest.(check bool) "list sums" true
    (Value.size_bytes (Value.VList [ Value.VInt 1; Value.VInt 2 ])
    > Value.size_bytes (Value.VList [ Value.VInt 1 ]))

let test_canonical_key () =
  let open Value in
  Alcotest.(check string) "str/addr collide" (canonical_key (VStr "x"))
    (canonical_key (VAddr "x"));
  Alcotest.(check string) "int/id collide" (canonical_key (VInt 5))
    (canonical_key (VId 5));
  Alcotest.(check string) "id normalized" (canonical_key (VId 5))
    (canonical_key (VId (5 + Ring.space)));
  Alcotest.(check bool) "different values differ" true
    (canonical_key (VInt 1) <> canonical_key (VStr "1"));
  Alcotest.(check bool) "list nesting unambiguous" true
    (canonical_key (VList [ VStr "ab"; VStr "c" ])
    <> canonical_key (VList [ VStr "a"; VStr "bc" ]))

(* Property: equal values always share a canonical key. *)
let prop_equal_implies_same_key =
  let pairs =
    QCheck.Gen.(
      oneof
        [
          map (fun s -> (Value.VStr s, Value.VAddr s)) (string_size (int_bound 10));
          map (fun i -> (Value.VInt i, Value.VId i)) (int_bound (Value.Ring.space - 1));
          map (fun i -> (Value.VId i, Value.VId (i + Value.Ring.space)))
            (int_bound (Value.Ring.space - 1));
        ])
  in
  QCheck.Test.make ~name:"equal implies same canonical key" ~count:300
    (QCheck.make pairs) (fun (a, b) ->
      Value.equal a b && Value.canonical_key a = Value.canonical_key b)

(* --- structural hashing: cross-equal numerics and collision chains --- *)

(* [equal] admits int/id/float and str/addr cross-equalities, so
   [hash_key] must collapse all of them to one image (every numeric
   hashes through its float). *)
let test_hash_cross_equal () =
  let h = Value.hash_key in
  Alcotest.(check int) "int/float" (h (Value.VFloat 5.)) (h (Value.VInt 5));
  Alcotest.(check int) "int/id" (h (Value.VId 5)) (h (Value.VInt 5));
  Alcotest.(check int) "id normalization"
    (h (Value.VId 5))
    (h (Value.VId (5 + Value.Ring.space)));
  Alcotest.(check int) "str/addr" (h (Value.VStr "n3")) (h (Value.VAddr "n3"));
  Alcotest.(check int) "lists with cross-equal elements"
    (Value.hash_values [ Value.VInt 2; Value.VStr "a" ])
    (Value.hash_values [ Value.VFloat 2.; Value.VAddr "a" ])

let prop_equal_implies_same_hash =
  let pairs =
    QCheck.Gen.(
      oneof
        [
          map (fun s -> (Value.VStr s, Value.VAddr s)) (string_size (int_bound 10));
          map (fun i -> (Value.VInt i, Value.VId i)) (int_bound (Value.Ring.space - 1));
          map (fun i -> (Value.VInt i, Value.VFloat (float_of_int i))) (int_bound 100000);
        ])
  in
  QCheck.Test.make ~name:"equal implies same hash_key" ~count:300
    (QCheck.make pairs) (fun (a, b) ->
      Value.equal a b && Value.hash_key a = Value.hash_key b)

(* [Hashtbl.hash] folds to ~30 bits, so distinct ints with colliding
   [hash_values] exist within a small brute-force range — the birthday
   bound puts the first collision around 2^15 samples. *)
let find_colliding_ints () =
  let seen = Hashtbl.create (1 lsl 16) in
  let rec go i =
    if i > 5_000_000 then None
    else
      let h = Value.hash_values [ Value.VInt i ] in
      match Hashtbl.find_opt seen h with
      | Some j -> Some (j, i)
      | None ->
          Hashtbl.add seen h i;
          go (i + 1)
  in
  go 0

let test_hash_collision_exists () =
  match find_colliding_ints () with
  | None -> Alcotest.fail "no hash_values collision in the search range"
  | Some (a, b) ->
      Alcotest.(check bool) "distinct values" false
        (Value.equal (Value.VInt a) (Value.VInt b));
      Alcotest.(check int) "hashes collide"
        (Value.hash_values [ Value.VInt a ])
        (Value.hash_values [ Value.VInt b ])

(* End-to-end: aggregate grouping buckets by [hash_values] but must
   disambiguate buckets with [equal] — two group keys in the same
   hash chain stay two groups, not one merged group of double count. *)
let test_hash_collision_chain_groups () =
  match find_colliding_ints () with
  | None -> Alcotest.fail "no hash_values collision in the search range"
  | Some (a, b) ->
      let engine = P2_runtime.Engine.create () in
      ignore (P2_runtime.Engine.add_node engine "n1");
      P2_runtime.Engine.install engine "n1"
        (Fmt.str
           "materialize(obs, infinity, infinity, keys(2,3)).\n\
            obs@n1(%d, 1).\n\
            obs@n1(%d, 2).\n\
            c1 tally@A(K, count<*>) :- probe@A(J), obs@A(K, X)."
           a b);
      let tallies = P2_runtime.Engine.collect engine "n1" "tally" in
      ignore (P2_runtime.Engine.inject engine "n1" "probe" [ Value.VInt 0 ]);
      P2_runtime.Engine.run_for engine 1.;
      let got =
        List.map
          (fun t -> (Tuple.field t 2, Tuple.field t 3))
          (tallies ())
        |> List.sort compare
      in
      Alcotest.(check int) "two distinct groups" 2 (List.length got);
      List.iter
        (fun (k, c) ->
          Alcotest.(check bool)
            (Fmt.str "group key is one of the planted ints (%a)" Value.pp k)
            true
            (Value.equal k (Value.VInt a) || Value.equal k (Value.VInt b));
          Alcotest.check v "count is 1 per group" (Value.VInt 1) c)
        got

let test_tuple_basics () =
  let t = Tuple.make ~id:7 "foo" [ Value.VAddr "n1"; Value.VInt 2 ] in
  Alcotest.(check string) "name" "foo" (Tuple.name t);
  Alcotest.(check int) "id" 7 (Tuple.id t);
  Alcotest.(check int) "arity" 2 (Tuple.arity t);
  Alcotest.(check string) "location" "n1" (Tuple.location t);
  Alcotest.check v "field 1" (Value.VAddr "n1") (Tuple.field t 1);
  Alcotest.check v "field 2" (Value.VInt 2) (Tuple.field t 2);
  Alcotest.check_raises "field out of range"
    (Invalid_argument "Tuple.field 3 of foo/2") (fun () -> ignore (Tuple.field t 3))

let test_tuple_keys () =
  let t = Tuple.make "bar" [ Value.VAddr "a"; Value.VInt 1; Value.VStr "x" ] in
  Alcotest.(check int) "key extraction" 2 (List.length (Tuple.key_of t [ 1; 3 ]));
  Alcotest.check v "key order" (Value.VStr "x") (List.nth (Tuple.key_of t [ 1; 3 ]) 1);
  (* out-of-range key positions yield VNull rather than raising *)
  Alcotest.check v "oor key" Value.VNull (List.hd (Tuple.key_of t [ 9 ]))

let test_tuple_equality () =
  let t1 = Tuple.make ~id:1 "t" [ Value.VInt 1 ] in
  let t2 = Tuple.make ~id:2 "t" [ Value.VInt 1 ] in
  Alcotest.(check bool) "contents equal despite ids" true (Tuple.equal_contents t1 t2);
  let t3 = Tuple.make "t" [ Value.VInt 2 ] in
  Alcotest.(check bool) "different contents" false (Tuple.equal_contents t1 t3);
  Alcotest.(check bool) "compare orders" true (Tuple.compare_contents t1 t3 < 0)

let () =
  Alcotest.run "value"
    [
      ( "value",
        [
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "truthy" `Quick test_truthy;
          Alcotest.test_case "size_bytes" `Quick test_size_bytes;
        ] );
      ( "ring",
        [
          Alcotest.test_case "basics" `Quick test_ring_basics;
          Alcotest.test_case "intervals" `Quick test_ring_intervals;
          QCheck_alcotest.to_alcotest prop_interval_partition;
          QCheck_alcotest.to_alcotest prop_oc_co_duality;
        ] );
      ( "canonical key",
        [
          Alcotest.test_case "cases" `Quick test_canonical_key;
          QCheck_alcotest.to_alcotest prop_equal_implies_same_key;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "cross-equal values hash equal" `Quick
            test_hash_cross_equal;
          QCheck_alcotest.to_alcotest prop_equal_implies_same_hash;
          Alcotest.test_case "collisions exist in range" `Quick
            test_hash_collision_exists;
          Alcotest.test_case "collision chain keeps groups distinct" `Quick
            test_hash_collision_chain_groups;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basics" `Quick test_tuple_basics;
          Alcotest.test_case "keys" `Quick test_tuple_keys;
          Alcotest.test_case "equality" `Quick test_tuple_equality;
        ] );
    ]
