lib/store/table.mli: Ast Overlog Tuple
