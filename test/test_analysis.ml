(* Golden tests for the semantic analyzer (PR: `p2ql check`).

   Three families:
   - the broken-fixture corpus: one .olg per diagnostic code, asserting
     the exact (code, line) set of non-hint diagnostics;
   - the kitchen sink: many distinct codes from ONE analyze call;
   - the positive sweep: every program this repo ships (examples,
     generated Chord, every lib/core monitor under its install-time
     environment, epidemic) analyzes clean under --strict.

   Plus the install gate: strict engines reject, lax engines log. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture name = Filename.concat "fixtures/analysis" name

let non_hint d = d.Analysis.severity <> Analysis.Hint

let code_lines diags =
  List.filter non_hint diags
  |> List.map (fun d -> (d.Analysis.code, d.Analysis.line))

let pp_cl = Fmt.(Dump.list (Dump.pair string int))

(* --- broken fixtures: exact (code, line) golden sets --- *)

let golden : (string * (string * int) list) list =
  [
    ("e001_unbound_head.olg", [ ("E001", 2) ]);
    ("e002_unsafe.olg", [ ("E002", 2); ("E001", 3); ("E002", 3) ]);
    ("e003_no_positive.olg", [ ("E003", 2) ]);
    ("e004_two_events.olg", [ ("E004", 2) ]);
    ("e005_two_aggs.olg", [ ("E005", 2) ]);
    ("e006_bad_periodic.olg", [ ("E006", 2) ]);
    ("e101_arity.olg", [ ("E101", 3) ]);
    ("e102_keys.olg", [ ("E102", 1) ]);
    ("e103_dup_materialize.olg", [ ("E103", 2) ]);
    ("e104_delete_event.olg", [ ("E104", 2) ]);
    ("e105_reserved.olg", [ ("E105", 2) ]);
    ("w106_dup_rule.olg", [ ("W106", 3) ]);
    ("e201_arith.olg", [ ("E201", 2) ]);
    ("e202_cmp.olg", [ ("E202", 2) ]);
    ("e203_interval.olg", [ ("E203", 2) ]);
    ("e204_unknown_builtin.olg", [ ("E204", 2) ]);
    ("e205_builtin_args.olg", [ ("E205", 2) ]);
    ("w206_divint.olg", [ ("W206", 2) ]);
    ("e301_negcycle.olg", [ ("E301", 4) ]);
    ("e302_aggcycle.olg", [ ("E302", 3) ]);
    ("e401_multiloc.olg", [ ("E401", 3) ]);
    ("e402_headloc.olg", [ ("E402", 2) ]);
    ("e403_locexpr.olg", [ ("E403", 2) ]);
    ("w601_watch.olg", [ ("W601", 2) ]);
    ("w602_unused_table.olg", [ ("W602", 2) ]);
    ("e501_event_cycle.olg", [ ("E501", 2); ("E501", 3) ]);
    ("e502_remote_cycle.olg", [ ("E502", 2); ("E502", 3) ]);
    ("w511_multicast.olg", [ ("W511", 2) ]);
    ("w512_join_fanout.olg", [ ("W512", 2) ]);
  ]

let test_fixture (file, expected) () =
  let _, diags = Analysis.check_source (read_file (fixture file)) in
  let got = List.sort compare (code_lines diags) in
  let expected = List.sort compare expected in
  Alcotest.(check (testable pp_cl ( = )))
    (file ^ " (code, line) set") expected got;
  (* every broken fixture must actually fail a plain (non-strict or
     strict, depending on severity) check *)
  Alcotest.(check bool)
    (file ^ " fails --strict") true
    (Analysis.should_fail ~strict:true diags)

let test_parse_error_is_e000 () =
  let program, diags = Analysis.check_source "r1 out@A(X :- t@A(X)." in
  Alcotest.(check bool) "no AST" true (program = None);
  match diags with
  | [ d ] ->
      Alcotest.(check string) "code" "E000" d.Analysis.code;
      Alcotest.(check bool) "is error" true (d.Analysis.severity = Analysis.Error)
  | _ -> Alcotest.fail "expected exactly one E000 diagnostic"

(* --- the acceptance criterion: >= 6 distinct codes, one invocation --- *)

let test_kitchen_sink () =
  let _, diags = Analysis.check_source (read_file (fixture "kitchen_sink.olg")) in
  let codes =
    List.sort_uniq compare (List.map (fun d -> d.Analysis.code) (List.filter non_hint diags))
  in
  Alcotest.(check bool)
    (Fmt.str "distinct codes >= 6, got %a" Fmt.(Dump.list string) codes)
    true
    (List.length codes >= 6);
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Fmt.str "%s has a source line" d.Analysis.code)
        true (d.Analysis.line > 0))
    diags;
  (* the expected prefix of the story, in (line, code) order *)
  let got = code_lines diags in
  let expected =
    [ ("E102", 4); ("E103", 4); ("E001", 5); ("E004", 6); ("E101", 6);
      ("E201", 6); ("E002", 7); ("W601", 8) ]
  in
  Alcotest.(check (testable pp_cl ( = ))) "kitchen sink golden" expected got

let test_json_renderer () =
  let _, diags = Analysis.check_source (read_file (fixture "e001_unbound_head.olg")) in
  let json = Analysis.to_json ~file:"a \"b\".olg" diags in
  let contains sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "code present" true (contains "\"code\":\"E001\"" json);
  Alcotest.(check bool) "file escaped" true (contains "a \\\"b\\\".olg" json);
  Alcotest.(check bool) "array shaped" true
    (String.length json >= 2 && json.[0] = '[' && json.[String.length json - 1] = ']')

(* --- positive sweep: everything we ship analyzes clean --- *)

let check_clean name ~env source =
  let _, diags = Analysis.check_source ~env source in
  let bad = List.filter non_hint diags in
  Alcotest.(check (testable pp_cl ( = )))
    (name ^ " has no errors or warnings")
    []
    (List.map (fun d -> (d.Analysis.code, d.Analysis.line)) bad)

let test_embedded_programs_clean () =
  List.iter
    (fun (name, libs, source) ->
      check_clean name ~env:(Core.Registry.env_of_libs libs) source)
    Core.Registry.embedded;
  check_clean "epidemic" ~env:Analysis.empty_env
    Epidemic.(program default_params)

let test_examples_clean () =
  let dir = "../examples/olg" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".olg")
    |> List.sort compare
  in
  Alcotest.(check bool) "examples present" true (files <> []);
  List.iter
    (fun f ->
      check_clean f ~env:Analysis.empty_env (read_file (Filename.concat dir f)))
    files

(* --- cascade pass negatives and the pragma machinery --- *)

let diags_of src = snd (Analysis.check_source src)

let test_delayed_cycle_clean () =
  let diags = diags_of (read_file (fixture "e501_delayed_negative.olg")) in
  Alcotest.(check (testable pp_cl ( = )))
    "delayed cycle has no errors or warnings" [] (code_lines diags)

let cyc_src = "r1 pong@A(X) :- ping@A(X).\nr2 ping@A(X) :- pong@A(X)."

let test_pragma_suppresses () =
  let diags = diags_of (read_file (fixture "w511_pragma.olg")) in
  Alcotest.(check (testable pp_cl ( = )))
    "pragma silences W511" [] (code_lines diags);
  (* the suppression must not leave a dangling-pragma hint behind *)
  Alcotest.(check bool) "no H703" true
    (not (List.exists (fun d -> d.Analysis.code = "H703") diags))

let test_pragma_wildcard () =
  let src =
    "%% allow E5xx\nr1 pong@A(X) :- ping@A(X).\n%% allow E5xx\nr2 ping@A(X) :- pong@A(X)."
  in
  Alcotest.(check (testable pp_cl ( = )))
    "E5xx wildcard covers E501" [] (code_lines (diags_of src))

let test_pragma_owns_one_rule () =
  (* suppression is per-rule: r2's half of the cycle still fires *)
  let src = "%% allow E501\n" ^ cyc_src in
  Alcotest.(check (testable pp_cl ( = )))
    "unsuppressed rule still diagnosed"
    [ ("E501", 3) ]
    (code_lines (diags_of src))

let test_pragma_wrong_code_inert () =
  let src = "%% allow W511\n" ^ cyc_src in
  Alcotest.(check (testable pp_cl ( = )))
    "non-matching pragma suppresses nothing"
    [ ("E501", 2); ("E501", 3) ]
    (code_lines (diags_of src))

let test_dangling_pragma_h703 () =
  let diags =
    diags_of
      "materialize(t, infinity, 8, keys(2)).\n\
       r1 out@A(X) :- ev@A(X), t@A(X).\n\
       %% allow E501"
  in
  (match List.filter (fun d -> d.Analysis.code = "H703") diags with
  | [ d ] ->
      Alcotest.(check bool) "is hint" true (d.Analysis.severity = Analysis.Hint);
      Alcotest.(check int) "on the pragma line" 3 d.Analysis.line
  | _ -> Alcotest.fail "expected exactly one H703");
  (* hints never gate an install, even under --strict *)
  Alcotest.(check bool) "hints don't fail strict" false
    (Analysis.should_fail ~strict:true diags)

let test_pragma_round_trip () =
  let src = read_file (fixture "w511_pragma.olg") in
  let p1 = Overlog.Parser.parse src in
  let printed = Fmt.str "%a" Overlog.Ast.pp_program p1 in
  let p2 = Overlog.Parser.parse printed in
  Alcotest.(check bool)
    (Fmt.str "pragma survives pp -> reparse:@.%s" printed)
    true
    Overlog.Ast.(strip_lines p1 = strip_lines p2);
  (* and the reprinted pragma still suppresses *)
  Alcotest.(check (testable pp_cl ( = )))
    "reprinted program still clean" [] (code_lines (diags_of printed))

(* Exit-contract pin: warnings gate only under --strict; errors always.
   [p2ql check] maps this verbatim to its exit code on both the human
   and --json paths. *)
let test_should_fail_contract () =
  let warn_only = diags_of (read_file (fixture "w511_multicast.olg")) in
  Alcotest.(check bool) "warnings pass non-strict" false
    (Analysis.should_fail ~strict:false warn_only);
  Alcotest.(check bool) "warnings fail strict" true
    (Analysis.should_fail ~strict:true warn_only);
  let err = diags_of (read_file (fixture "e501_event_cycle.olg")) in
  Alcotest.(check bool) "errors fail non-strict" true
    (Analysis.should_fail ~strict:false err)

(* --- the install-time gate --- *)

let broken_program = "r1 out@A(X, Y) :- ping@A(X)."

(* Compiles fine (the planner does not type-check) but the analyzer
   rejects it: exercises the lax path where errors are logged and the
   install still proceeds. *)
let type_broken_program = {|r1 out@A(Z) :- ping@A(X), Z := X + "oops".|}

let test_strict_install_rejects () =
  let engine = P2_runtime.Engine.create ~strict_install:true () in
  ignore (P2_runtime.Engine.add_node engine "n1");
  (match P2_runtime.Engine.install engine "n1" broken_program with
  | exception Analysis.Rejected diags ->
      Alcotest.(check bool) "E001 reported" true
        (List.exists (fun d -> d.Analysis.code = "E001") diags)
  | () -> Alcotest.fail "strict install should reject E001");
  (* nothing was installed *)
  Alcotest.(check int) "no rules installed" 0
    (P2_runtime.Node.rules_installed (P2_runtime.Engine.node engine "n1"))

let test_lax_install_logs_and_proceeds () =
  let engine = P2_runtime.Engine.create () in
  ignore (P2_runtime.Engine.add_node engine "n1");
  P2_runtime.Engine.install engine "n1" type_broken_program;
  let node = P2_runtime.Engine.node engine "n1" in
  Alcotest.(check bool) "diagnostics recorded" true
    (List.exists
       (fun d -> d.Analysis.code = "E201")
       (P2_runtime.Node.last_diagnostics node));
  Alcotest.(check int) "rule still installed" 1
    (P2_runtime.Node.rules_installed node)

let test_piecemeal_env_threading () =
  (* A monitor referencing tables from an earlier install checks clean
     because the node's catalog feeds the analyzer environment. *)
  let engine = P2_runtime.Engine.create ~strict_install:true () in
  ignore (P2_runtime.Engine.add_node engine "n1");
  P2_runtime.Engine.install engine "n1"
    "materialize(peer, infinity, infinity, keys(1,2)).";
  (* references [peer] without materializing it: only legal because the
     first install defined it *)
  P2_runtime.Engine.install engine "n1"
    "m1 seen@A(P) :- probe@A(P), peer@A(P).";
  Alcotest.(check int) "monitor installed" 1
    (P2_runtime.Node.rules_installed (P2_runtime.Engine.node engine "n1"))

let test_strict_toggle_mid_run () =
  let engine = P2_runtime.Engine.create () in
  ignore (P2_runtime.Engine.add_node engine "n1");
  P2_runtime.Engine.install engine "n1" type_broken_program;
  P2_runtime.Engine.set_strict_install engine true;
  match P2_runtime.Engine.install engine "n1" type_broken_program with
  | exception Analysis.Rejected _ -> ()
  | () -> Alcotest.fail "toggled-strict engine should reject"

let () =
  Alcotest.run "analysis"
    [
      ( "fixtures",
        List.map
          (fun ((file, _) as case) ->
            Alcotest.test_case file `Quick (test_fixture case))
          golden
        @ [
            Alcotest.test_case "parse error -> E000" `Quick test_parse_error_is_e000;
            Alcotest.test_case "kitchen sink multi-code" `Quick test_kitchen_sink;
            Alcotest.test_case "json renderer" `Quick test_json_renderer;
          ] );
      ( "positive sweep",
        [
          Alcotest.test_case "embedded corpus clean" `Quick
            test_embedded_programs_clean;
          Alcotest.test_case "examples clean" `Quick test_examples_clean;
        ] );
      ( "cascade & pragmas",
        [
          Alcotest.test_case "delayed cycle is clean" `Quick
            test_delayed_cycle_clean;
          Alcotest.test_case "pragma suppresses its rule" `Quick
            test_pragma_suppresses;
          Alcotest.test_case "wildcard code pattern" `Quick test_pragma_wildcard;
          Alcotest.test_case "suppression is per-rule" `Quick
            test_pragma_owns_one_rule;
          Alcotest.test_case "non-matching pragma is inert" `Quick
            test_pragma_wrong_code_inert;
          Alcotest.test_case "dangling pragma -> H703" `Quick
            test_dangling_pragma_h703;
          Alcotest.test_case "pragma pp round-trip" `Quick test_pragma_round_trip;
          Alcotest.test_case "should_fail strictness contract" `Quick
            test_should_fail_contract;
        ] );
      ( "install gate",
        [
          Alcotest.test_case "strict rejects" `Quick test_strict_install_rejects;
          Alcotest.test_case "lax logs and proceeds" `Quick
            test_lax_install_logs_and_proceeds;
          Alcotest.test_case "piecemeal env threading" `Quick
            test_piecemeal_env_threading;
          Alcotest.test_case "strict toggle mid-run" `Quick
            test_strict_toggle_mid_run;
        ] );
    ]
