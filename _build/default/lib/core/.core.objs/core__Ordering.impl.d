lib/core/ordering.ml: Alarms Chord Overlog P2_runtime
