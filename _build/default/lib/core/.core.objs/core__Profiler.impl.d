lib/core/profiler.ml: Chord Fmt List Option Overlog P2_runtime Tuple Value
