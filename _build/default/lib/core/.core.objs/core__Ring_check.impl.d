lib/core/ring_check.ml: Alarms Chord Fmt P2_runtime
