(** The distributed engine: hosts N P2 nodes on a simulated network.
    Owns the virtual clock, message delivery (through the wire codec),
    periodic-rule timers, fault injection, metric sampling, and on-line
    program installation. *)

open Overlog

type t

val create :
  ?seed:int ->
  ?base_latency:float ->
  ?jitter:float ->
  ?loss_rate:float ->
  ?sample_interval:float ->
  ?trace:bool ->
  ?strict_install:bool ->
  ?reliable:bool ->
  unit ->
  t

(** Flip reliable transport (ack/retransmit, bounded queues, failure
    detection) on every node, present and future. Off reproduces the
    pre-transport fire-and-forget path — the control arm of loss
    sweeps. *)
val set_reliable : t -> bool -> unit

val reliable : t -> bool

(** Select the evaluation pipeline on every node, present and future.
    [true]: semi-naive delta evaluation (the default planner
    behaviour) plus cross-node delta batching — same-instant
    shipments to one peer coalesce into single delta-batch frames.
    [false]: the naive ablation — classical full-body re-enumeration
    on every table delta, batching off, every re-derivation re-shipped
    in its own frame. Engines start semi-naive with batching off (the
    historical wire behaviour); call [set_seminaive t true] to also
    enable batching. *)
val set_seminaive : t -> bool -> unit

val seminaive : t -> bool

(** Toggle strict install-time analysis on every node, present and
    future: programs with error-level diagnostics raise
    [Analysis.Rejected] instead of being logged and installed anyway. *)
val set_strict_install : t -> bool -> unit

(** Start the flight recorder: every node, present and future, spills
    its trace records ([ruleExec] / [tupleTable] rows plus registered
    tuple contents) to an on-disk segment log at [dir]/[addr]/, and
    has its tracer enabled. Nodes added after this call default to
    the shrunk {!Dataflow.Tracer.spill_config} in-RAM window — call
    before adding nodes to get the resident-memory win. Disk writes
    happen only at tick barriers and run end, single-threaded, so
    sharded runs stay deterministic and per-node logs are
    byte-identical across shard counts (DESIGN.md §15). *)
val set_trace_log : ?config:Seglog.config -> t -> string -> unit

(** The flight-recorder root directory, when recording. *)
val trace_log : t -> string option

(** Write every node's buffered trace records to disk (the run loops
    call this at barriers; exposed for hosts that inject events
    outside [run_until]). *)
val flush_trace_logs : t -> unit

(** Flush and seal every node's segment log and stop recording. *)
val close_trace_logs : t -> unit

(** Start periodic durable checkpoints rooted at [dir]: every node,
    present and future, snapshots its hard-state tables (infinite
    lifetime, excluding metric reflections and runtime bookkeeping) to
    a CRC'd, atomically-renamed file under [dir]/[addr]/ every
    [config.interval] virtual seconds. Writers are keyed by address —
    they model the node's disk — so they survive {!restart}, which
    recovers from the newest intact snapshot. Snapshots are written
    from host context only (single-threaded between rounds), so seeded
    runs produce byte-identical checkpoint files for every shard count
    (DESIGN.md §16). *)
val set_checkpoint : ?config:Checkpoint.config -> t -> string -> unit

(** The checkpoint root directory, when checkpointing. *)
val checkpoint_dir : t -> string option

(** Snapshot every live (non-crashed) node's hard state immediately.
    No-op when checkpointing is off. Host context only. *)
val checkpoint_now : t -> unit

(** Stop checkpointing and release the writers; snapshot files stay on
    disk. *)
val close_checkpoints : t -> unit

(** Raised (with the sanitizer on) by code running inside a shard
    drain that mutates barrier-owned state directly — scheduling, a
    raw network send, in-flight accounting, an engine-RNG draw, a
    membership change — instead of deferring the effect. [site] names
    the guarded entry point; [seq] is the queue seq of the event being
    drained (-1 when it could not be identified). *)
exception Discipline_violation of { site : string; seq : int }

(** Flip the effect-discipline sanitizer; engines also start with it
    on when [P2QL_SANITIZE] is [1]/[true]/[yes] in the environment.
    Purely a checking layer: runs are bit-for-bit identical with it on
    or off. *)
val set_sanitize : t -> bool -> unit

val sanitize : t -> bool

val now : t -> float
val network : t -> Sim.Network.t

(** Raises [Invalid_argument] for unknown addresses. *)
val node : t -> string -> Node.t

val node_opt : t -> string -> Node.t option

(** The node's reliable-transport endpoint. Raises [Invalid_argument]
    for unknown addresses. *)
val transport : t -> string -> Transport.t

val transport_opt : t -> string -> Transport.t option

(** All node addresses, sorted. *)
val addrs : t -> string list

(** Schedule a host callback at an absolute simulation time. *)
val at : t -> time:float -> (unit -> unit) -> unit

(** Schedule a callback confined to [owner]'s state at an absolute
    simulation time. Unlike [at] — whose callbacks run alone between
    rounds — a sharded run executes this inside [owner]'s shard during
    the parallel phase, under the effect discipline. *)
val at_owned : t -> owner:string -> time:float -> (unit -> unit) -> unit

(** Push a Wire-encoded packet onto the network immediately, bypassing
    effect deferral. A test-only hook for exercising the sanitizer
    (the guard trips when called mid-drain); engine code must use the
    deferring send path instead. *)
val unsafe_direct_send : t -> src:string -> dst:string -> string -> unit

(** Create a node. [trace] overrides the engine-wide default. *)
val add_node : ?tracer_config:Dataflow.Tracer.config -> ?trace:bool -> t -> string -> Node.t

(** Install OverLog source on one node — at any point in the run (the
    paper's on-line piecemeal deployment). *)
val install : t -> string -> string -> unit

val install_ast : t -> string -> Ast.program -> unit

(** Install the same source on every node. *)
val install_all : t -> string -> unit

val watch : t -> string -> string -> (Tuple.t -> unit) -> unit

(** Inject an event tuple into a node from the host program; the
    location field is prepended automatically. Refused (returns
    [false]) while the host is crashed — injected events must respect
    the fault model like everything else. *)
val inject : t -> string -> string -> Value.t list -> bool

(** Watch and accumulate; the returned closure reads the collected
    tuples in arrival order. *)
val collect : t -> string -> string -> unit -> Tuple.t list

(** Messages from [src] to [dst] accepted by the network but not yet
    delivered — the simulator's per-destination send-queue depth. *)
val inflight : t -> src:string -> dst:string -> int

(** Total undelivered messages originated by [src], over all
    destinations. Exposed per node as the [net.sendq.depth] gauge. *)
val inflight_from : t -> string -> int

(** Run the simulation until the clock reaches the given time. *)
val run_until : t -> float -> unit

val run_for : t -> float -> unit

(** Select the execution engine. [0] (the default) is the classic
    sequential event loop. [n >= 1] switches to the multicore
    round/barrier loop: node addresses are hashed onto [n] shards, each
    shard drains its nodes' events inside a tick window of [quantum]
    virtual seconds (default 10 ms, the network's default base
    latency) on its own domain, and a deterministic barrier replays
    all cross-shard effects in a canonical order. Seeded runs produce
    bit-for-bit identical simulations for every shard count >= 1;
    shard count 0 (the sequential loop) interleaves same-window events
    differently and is only promised to agree on fixpoints for
    programs insensitive to sub-quantum ordering. Host callbacks
    ([at]) always run alone between rounds. *)
val set_shards : ?quantum:float -> t -> int -> unit

(** Current shard count; 0 means the sequential loop. *)
val shards : t -> int

(** Events handled since creation (all shards plus the sequential
    path) — the denominator for allocs-per-event measurements. *)
val events_handled : t -> int

(** Retire a node permanently (churn "leave"): pending events addressed
    to it are dropped on delivery, and all per-address state (its
    transport, peers' channels to it, network FIFO floors / link cuts /
    crash flag, in-flight rows) is purged. Raises [Invalid_argument]
    for unknown addresses; the address can not be reused. *)
val remove_node : t -> string -> unit

(** Fault injection. [crash] and [recover] raise [Invalid_argument]
    naming the address when it is unknown, the same shape as
    [remove_node] and [restart]. *)

val crash : t -> string -> unit
val recover : t -> string -> unit
val is_crashed : t -> string -> bool

(** What {!restart} rebuilt the node from. *)
type restart_outcome = {
  recovered_from : [ `Checkpoint of string * float | `Cold ];
      (** the snapshot file and its stamp, or nothing intact on disk *)
  restored_rows : int;  (** rows re-minted from the snapshot *)
  skipped_rows : int;
      (** snapshot rows whose table no longer exists after program
          replay *)
}

(** Crash-restart recovery: reconstitute [addr] as a fresh process
    image. The old node object (all RAM state) is discarded, its
    flight-recorder log sealed, its transport stopped; every peer
    forgets its channel to it, so the reliable layer renegotiates from
    sequence 1 when traffic resumes — restart is reset-not-replay, and
    frames in flight toward the dead incarnation are dropped rather
    than allowed to alias into the fresh sequence space. The node is
    rebuilt through the same wiring as {!add_node}, its recorded
    programs and host watchpoints are replayed oldest-first (the
    on-disk-configuration analog), and hard state is restored from the
    newest intact checkpoint under {!checkpoint_dir} — scanning past
    damaged files, falling back to [`Cold] when nothing intact exists
    or checkpointing is off. Restored rows go through the normal
    delivery path, so delta strands fire and the recovery cascade
    starts immediately. Raises [Invalid_argument] for unknown
    addresses. *)
val restart :
  ?tracer_config:Dataflow.Tracer.config ->
  ?trace:bool ->
  t ->
  string ->
  restart_outcome
val cut_link : t -> src:string -> dst:string -> unit
val heal_link : t -> src:string -> dst:string -> unit

(** Adjust network-wide loss/latency mid-run (fault campaigns). *)

val set_loss_rate : t -> float -> unit
val set_latency : t -> base:float -> jitter:float -> unit

(** Measurement (used by the benches). *)

type snapshot = {
  time : float;
  work : float;
  messages_tx : int;
  messages_rx : int;
  live_tuples : int;
  live_bytes : int;
}

val snapshot_node : t -> string -> snapshot
val cpu_percent : before:snapshot -> after:snapshot -> float
val memory_mb : snapshot -> float

(** Node-local time at an address (the clock its tracer stamps with). *)
val local_time : t -> string -> float
