test/test_tracer.ml: Alcotest Ast Dataflow Eval List Machine Overlog Parser Store Strand Tracer Tuple Value
