lib/core/snapshot.ml: Chord Fmt List Option Overlog P2_runtime Store Tuple Value
