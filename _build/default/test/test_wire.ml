(* Wire codec: encode/decode round trips, malformed input, and a
   qcheck property over randomly generated tuples. *)

open Overlog

let v = Alcotest.testable Value.pp Value.equal

let roundtrip ?(delete = false) tuple =
  let m = Wire.decode (Wire.encode ~delete tuple) in
  Alcotest.(check string) "name" (Tuple.name tuple) m.Wire.name;
  Alcotest.(check bool) "delete" delete m.Wire.delete;
  Alcotest.(check int) "src id" (Tuple.id tuple) m.Wire.src_tuple_id;
  Alcotest.(check (list v)) "fields" (Tuple.fields tuple) m.Wire.fields

let test_simple () =
  roundtrip
    (Tuple.make ~id:42 "succ" [ Value.VAddr "n1"; Value.VId 12345; Value.VAddr "n2" ])

let test_all_types () =
  roundtrip
    (Tuple.make ~id:7 "everything"
       [
         Value.VAddr "node-17";
         Value.VInt (-123456789);
         Value.VFloat 3.14159;
         Value.VStr "hello \x00 world";
         Value.VBool true;
         Value.VBool false;
         Value.VId (Value.Ring.space - 1);
         Value.VNull;
         Value.VList [ Value.VInt 1; Value.VStr "x"; Value.VList [ Value.VBool true ] ];
       ])

let test_delete_flag () = roundtrip ~delete:true (Tuple.make ~id:1 "t" [ Value.VNull ])

let test_empty_fields () = roundtrip (Tuple.make ~id:1 "ping" [])

let test_malformed () =
  let bad data =
    match Wire.decode data with
    | exception Wire.Error _ -> ()
    | _ -> Alcotest.failf "expected decode failure"
  in
  bad "";
  bad "\x02" (* wrong version *);
  bad "\x01\x00\x00" (* truncated *);
  let good = Wire.encode (Tuple.make ~id:1 "t" [ Value.VInt 5 ]) in
  bad (good ^ "zz") (* trailing bytes *);
  bad (String.sub good 0 (String.length good - 1)) (* cut short *)

let test_size_matches_encoding () =
  let t = Tuple.make ~id:9 "x" [ Value.VAddr "a"; Value.VInt 1 ] in
  Alcotest.(check int) "size = encoded length"
    (String.length (Wire.encode t)) (Wire.size t)

(* random value generator for the property *)
let gen_value =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map (fun i -> Value.VInt i) int;
            map (fun f -> Value.VFloat (Int64.float_of_bits (Int64.of_int f))) int;
            map (fun s -> Value.VStr s) (string_size (int_bound 40));
            map (fun b -> Value.VBool b) bool;
            map (fun i -> Value.VId i) (int_bound (Value.Ring.space - 1));
            map (fun s -> Value.VAddr s) (string_size (int_bound 12));
            return Value.VNull;
          ]
      in
      if n = 0 then leaf
      else
        frequency
          [
            (4, leaf);
            (1, map (fun vs -> Value.VList vs) (list_size (int_bound 4) (self (n / 2))));
          ])

let arb_tuple =
  QCheck.make
    QCheck.Gen.(
      map3
        (fun name fields id ->
          Tuple.make ~id ("t" ^ name) fields)
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 10))
        (list_size (int_bound 8) gen_value)
        (int_bound 0xfffffff))

let prop_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip" ~count:500 arb_tuple (fun tuple ->
      let m = Wire.decode (Wire.encode tuple) in
      m.Wire.name = Tuple.name tuple
      && List.length m.Wire.fields = Tuple.arity tuple
      && List.for_all2
           (fun a b ->
             (* NaN floats compare unequal; treat bitwise *)
             match (a, b) with
             | Value.VFloat x, Value.VFloat y ->
                 Int64.bits_of_float x = Int64.bits_of_float y
             | _ -> Value.equal a b)
           m.Wire.fields (Tuple.fields tuple))

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "simple" `Quick test_simple;
          Alcotest.test_case "all types" `Quick test_all_types;
          Alcotest.test_case "delete flag" `Quick test_delete_flag;
          Alcotest.test_case "no fields" `Quick test_empty_fields;
          Alcotest.test_case "malformed" `Quick test_malformed;
          Alcotest.test_case "size" `Quick test_size_matches_encoding;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
    ]
