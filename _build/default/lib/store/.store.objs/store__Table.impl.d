lib/store/table.ml: Ast Hashtbl List Overlog Stdlib String Tuple Value
