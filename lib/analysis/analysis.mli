(** Semantic analysis over parsed OverLog programs.

    Runs before planning and collects {e all} diagnostics — not just
    the first — with source lines, severities and stable codes, in the
    spirit of classic Datalog safety/stratification checking and
    Webdamlog-style location well-formedness.

    Passes and code ranges:
    - E0xx safety / range restriction (head vars, conditions,
      assignments, event cardinality, periodic shape)
    - E1xx schema consistency (arity agreement, materialize keys,
      duplicates, event-vs-table misuse, reserved predicates)
    - E2xx type inference (operator/builtin/interval clashes)
    - E3xx stratification (negation and aggregation cycles)
    - E4xx location well-formedness (link restriction)
    - E50x / W51x cascade and message cost (undelayed event cycles,
      table-enumerated multicast, remote join fan-out) — see {!Cascade}
    - W6xx / H7xx liveness (unused tables, unknown watches, predicates
      assumed external)

    Errors mean the program is rejected under a strict install;
    warnings fail only [--strict] checks; hints never fail.

    A rule can opt out of specific diagnostics with a pragma on the
    line(s) before it: [%% allow E502 W51x]. Codes may use [x] as a
    per-character wildcard; the suppression applies only to the next
    rule statement. A pragma with no following rule is flagged H703. *)

open Overlog

type severity = Error | Warning | Hint

type diagnostic = {
  code : string;  (** stable, e.g. "E001" *)
  severity : severity;
  line : int;  (** 1-based source line; 0 when unknown *)
  rule : string option;  (** rule name, when the diagnostic is rule-scoped *)
  message : string;
}

(** Predicates defined outside the analyzed program — the paper installs
    monitors piecemeal into nodes that already run Chord, so a program
    may legitimately reference tables and events materialized by earlier
    installs. Arities are checked when known ([Some n], location
    included). *)
type env = {
  ext_tables : (string * int option) list;
  ext_events : (string * int option) list;
}

val empty_env : env

(** Derive an [env] from a program that is (or will be) co-installed:
    its materialized tables become external tables, its derived heads
    and facts become external events, with arities learned from use. *)
val env_of_program : ?init:env -> Ast.program -> env

(** Run every pass; diagnostics are sorted by line then code. *)
val analyze : ?env:env -> Ast.program -> diagnostic list

(** Parse then analyze. Parse failures surface as a single "E000"
    diagnostic instead of an exception, so [p2ql check] can report
    uniformly over a file set. *)
val check_source : ?env:env -> string -> Ast.program option * diagnostic list

val errors : diagnostic list -> diagnostic list
val warnings : diagnostic list -> diagnostic list

(** True when the list should fail a check: any error, or any warning
    under [strict]. Hints never fail. *)
val should_fail : strict:bool -> diagnostic list -> bool

(** Raised by strict install gates (see [Node.set_strict_install]). *)
exception Rejected of diagnostic list

val severity_to_string : severity -> string

(** [file] prefixes the location, compiler-style:
    ["chord.olg:12: error[E001]: rule j3: head variable K is unbound"]. *)
val pp_diagnostic : ?file:string -> Format.formatter -> diagnostic -> unit

(** Render a diagnostic list as a JSON array (no trailing newline). *)
val to_json : ?file:string -> diagnostic list -> string

(** The rule-dependency graph behind [p2ql explain]: which derivations
    travel where, what each rule costs per firing, and which event
    chains can cascade without a timer in between (DESIGN.md §14). *)
module Cascade : sig
  (** How a derivation travels along an edge: stays on the node, ships
      to another node, is gated behind a [periodic] timer, or is
      produced by a timer-triggered rule. *)
  type edge_kind = Local | Remote | Periodic | Delayed

  (** Messages per firing: none (local head), one (destination pinned
      by the trigger, a constant, or a size-1 table), one per row of a
      destination-enumerating table, or one per row of a joined
      table. *)
  type msg_cost = Mlocal | Unicast | Multicast | Join_fanout

  (** Work per firing: no table probes, all probes keyed by bound
      arguments, or at least one full scan. *)
  type join_cost = Jconst | Jindexed | Jscan

  type rule_info = {
    iname : string option;
    iline : int;
    itrigger : string;  (** triggering predicate ("periodic" for ticks) *)
    idelayed : bool;  (** fires on a timer, not in response to traffic *)
    iremote : bool;  (** head ships off the evaluation node *)
    imsg : msg_cost;
    ijoin : join_cost;
    ifanout : string option;
        (** the table whose rows multiply sends, when [imsg] is
            [Multicast] or [Join_fanout] and the table is known *)
  }

  type edge = {
    esrc : string;
    edst : string;
    ekind : edge_kind;
    erule : string option;
    eline : int;
  }

  type graph = {
    grules : rule_info list;
    gedges : edge list;
    gcycles : string list list;
        (** undelayed event cycles: SCC members, sorted *)
  }

  val edge_kind_name : edge_kind -> string
  val msg_cost_name : msg_cost -> string
  val join_cost_name : join_cost -> string

  (** Build the graph; [env] has the same meaning as in {!analyze}. *)
  val build : ?env:env -> Ast.program -> graph

  (** Human-readable per-rule cost table plus edge list. *)
  val pp : Format.formatter -> graph -> unit

  (** JSON object with [rules], [edges] and [cycles] arrays. *)
  val to_json : ?file:string -> graph -> string

  (** Graphviz rendering; cycle members are highlighted. *)
  val to_dot : graph -> string
end
