lib/sim/network.mli: Rng
