(** Alarm plumbing shared by all monitors: watchpoint collection of
    alarm tuples across a set of nodes.

    Monitors emit alarms as ordinary OverLog event tuples
    ([inconsistentPred], [repeatOscill], [consAlarm], ...); the host
    observes them through watchpoints. A collector can be installed at
    any time while the system runs. *)

open Overlog

type alarm = { time : float; node : string; tuple : Tuple.t }

type collector = { name : string; mutable alarms : alarm list }

(** Watch [name] on every address in [addrs] (default: all engine
    nodes) and accumulate occurrences. *)
let collect ?addrs engine name =
  let addrs = Option.value addrs ~default:(P2_runtime.Engine.addrs engine) in
  let c = { name; alarms = [] } in
  List.iter
    (fun addr ->
      P2_runtime.Engine.watch engine addr name (fun tuple ->
          c.alarms <-
            { time = P2_runtime.Engine.now engine; node = addr; tuple } :: c.alarms))
    addrs;
  c

(** Extend an existing collector to one more node (e.g. a node that
    joined after {!collect} ran). *)
let watch_more c engine addr =
  P2_runtime.Engine.watch engine addr c.name (fun tuple ->
      c.alarms <-
        { time = P2_runtime.Engine.now engine; node = addr; tuple } :: c.alarms)

let alarms c = List.rev c.alarms
let count c = List.length c.alarms
let clear c = c.alarms <- []

(** Alarms raised since a given time. *)
let since c t = List.filter (fun a -> a.time >= t) (alarms c)

let pp_alarm ppf a = Fmt.pf ppf "[%8.3f] %s: %a" a.time a.node Tuple.pp a.tuple
