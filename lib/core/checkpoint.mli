(** Durable table checkpoints — the crash-restart half of the fault
    model (docs/OPERATIONS.md "Durable checkpoints").

    A checkpoint directory (one per node, beside its flight-recorder
    seglog) holds numbered snapshot files named [ckpt-NNNNNNNN.p2ck].
    Each file is a complete image of the node's hard-state tables at
    one virtual instant: a CRC'd header followed by per-table sections
    whose rows are {!Overlog.Wire}-encoded data frames, so external
    tools can parse a checkpoint with nothing but this spec and the
    wire codec. Files are written to a temporary name and atomically
    renamed into place — a crash mid-write never leaves a damaged
    checkpoint visible, only (at worst) a stale [.tmp] that readers
    ignore. Retention keeps the newest N snapshots.

    Determinism: the byte image is a pure function of (stamp, index,
    table contents in catalog order, row order, tuple ids). Because
    the engine only writes checkpoints from single-threaded host
    context and sharded runs reproduce table state bit-for-bit, seeded
    runs yield byte-identical checkpoint files for every shard count
    (DESIGN.md §16). *)

open Overlog

(** Writer tuning. [interval] is consumed by the engine's periodic
    scheduler ({!P2_runtime.Engine.set_checkpoint}), not by this
    module; it lives here so one record configures the subsystem. *)
type config = {
  interval : float;  (** virtual seconds between periodic snapshots *)
  retain : int option;
      (** keep at most this many snapshot files; the oldest are
          deleted after each successful write ([None]: unbounded) *)
}

(** 10-second cadence, newest 3 snapshots retained. *)
val default_config : config

(** {1 Writing} *)

type writer

(** Open (or re-open) a node's checkpoint directory, creating it if
    needed; numbering continues after the highest existing snapshot,
    so a restarted process never overwrites history it might still
    need to fall back to. *)
val create : ?config:config -> dir:string -> unit -> writer

val dir : writer -> string

(** Write one complete snapshot: [tables] in the order given (the
    engine passes catalog order — sorted by name — with rows in
    insertion order). Returns the path of the new snapshot file.
    The write is atomic (temp file + rename) and applies retention
    afterwards. Raises [Invalid_argument] on a closed writer. *)
val write : writer -> stamp:float -> tables:(string * Tuple.t list) list -> string

(** Release the writer. Snapshot files stay on disk. *)
val close : writer -> unit

(** Cumulative writer counters (the [ckpt.*] metrics). *)
type stats = {
  snapshots : int;  (** snapshot files written *)
  rows : int;  (** table rows written across all snapshots *)
  bytes : int;  (** file bytes written across all snapshots *)
  write_ns : int;  (** cumulative wall time spent inside {!write} *)
  retention_drops : int;  (** snapshot files deleted by retention *)
  last_stamp : float;  (** stamp of the newest snapshot (nan if none) *)
}

val stats : writer -> stats

(** {1 Reading} *)

(** One decoded snapshot. Rows come back as wire messages — name,
    fields and the recorded source-tuple id — ready to re-mint on a
    restarted node. *)
type table = { name : string; rows : Wire.message list }

type snapshot = { path : string; index : int; stamp : float; tables : table list }

(** Decode and fully verify one snapshot file: magic, version, header
    CRC, body CRC, and per-row wire decoding. [Error] carries a
    human-readable reason. *)
val read : string -> (snapshot, string) result

(** (index, path) of every snapshot file in the directory, oldest
    first; [] for a missing directory. *)
val files : dir:string -> (int * string) list

(** The newest snapshot that passes full verification, scanning
    backwards past damaged files — the restart path's fallback chain.
    [None] when the directory holds no intact snapshot (cold boot). *)
val latest : dir:string -> snapshot option

(** Per-file inventory, as reported by [p2ql ckptctl]. *)
type info = {
  i_path : string;
  i_index : int;
  i_ok : bool;
  i_error : string option;  (** verification failure, when not ok *)
  i_stamp : float;  (** nan when the header is unreadable *)
  i_tables : int;
  i_rows : int;
  i_bytes : int;  (** file size *)
}

val inventory : dir:string -> info list
