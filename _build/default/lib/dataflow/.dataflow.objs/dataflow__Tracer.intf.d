lib/dataflow/tracer.mli: Overlog Store Tuple
