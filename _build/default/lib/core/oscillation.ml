(** State-oscillation detectors (paper §3.1.3): the "recycled dead
    neighbor" problem, where gossip keeps re-inserting a neighbor that
    was just declared faulty, at three granularities:

    - single oscillation (os1–os2): a recently faulty node reappears in
      a [sendPred] or [returnSucc] gossip message;
    - repeated oscillation (os3–os4): ≥ [threshold] oscillations of the
      same node within the [oscill] table's 120 s history;
    - collaborative detection (os5–os9): neighbors exchange
      [repeatOscill] verdicts; a node seen oscillating by more than
      [chaotic_threshold] neighbors is declared [chaotic]. *)

let single_program =
  {|
materialize(oscill, 120, infinity, keys(1,2,3)).

os1 oscill@NAddr(SAddr, T) :- sendPred@NAddr(SID, SAddr),
    faultyNode@NAddr(SAddr, T1), T := f_now().
os2 oscill@NAddr(SAddr, T) :- returnSucc@NAddr(SID, SAddr, Src),
    faultyNode@NAddr(SAddr, T1), T := f_now().
|}

let repeat_program ?(period = 60.) ?(threshold = 3) () =
  Fmt.str
    {|
os3 countOscill@NAddr(OscillAddr, count<*>) :- periodic@NAddr(E, %g),
    oscill@NAddr(OscillAddr, Time).
os4 repeatOscill@NAddr(OscillAddr) :- countOscill@NAddr(OscillAddr, Count),
    Count >= %d.
|}
    period threshold

let collaborative_program ?(chaotic_threshold = 3) () =
  Fmt.str
    {|
materialize(nbrOscill, 120, infinity, keys(1,2,3)).

os5 nbrOscill@NAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr).
os6 nbrOscill@SAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr),
    succ@NAddr(SID, SAddr).
os7 nbrOscill@PAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr),
    pred@NAddr(PID, PAddr), PAddr != "-".
os8 nbrOscillCount@NAddr(OscillAddr, count<*>) :-
    nbrOscill@NAddr(OscillAddr, ReporterAddr).
os9 chaotic@NAddr(OscillAddr) :- nbrOscillCount@NAddr(OscillAddr, Count), Count > %d.
|}
    chaotic_threshold

type collectors = {
  oscill : Alarms.collector;
  repeat : Alarms.collector;
  chaotic : Alarms.collector;
}

let install ?(repeat = true) ?(collaborative = true) ?period ?threshold
    ?chaotic_threshold (net : Chord.network) =
  let engine = net.engine in
  P2_runtime.Engine.install_all engine single_program;
  if repeat || collaborative then
    P2_runtime.Engine.install_all engine (repeat_program ?period ?threshold ());
  if collaborative then
    P2_runtime.Engine.install_all engine (collaborative_program ?chaotic_threshold ());
  {
    oscill = Alarms.collect engine "oscill";
    repeat = Alarms.collect engine "repeatOscill";
    chaotic = Alarms.collect engine "chaotic";
  }
