lib/overlog/wire.ml: Buffer Char Fmt Int64 List String Tuple Value
