(* Reliable transport end-to-end: eventual exactly-once delivery under
   loss, the ablated control arm, the peer failure detector observed
   through p2PeerStatus + the pure-OverLog watchdog, bounded send
   queues, node-retirement purges, the inject crash guard, and the
   headline acceptance run: an 8-node Chord ring converging under 20 %
   uniform loss with the transport on and failing with it off. *)

open Overlog
module Engine = P2_runtime.Engine
module Transport = P2_runtime.Transport

let table_tuples engine addr name =
  let node = Engine.node engine addr in
  match Store.Catalog.find (P2_runtime.Node.catalog node) name with
  | Some t -> Store.Table.tuples t ~now:(Engine.now engine)
  | None -> []

let two_nodes ?(seed = 3) ?(loss_rate = 0.) ?(reliable = true) () =
  let engine = Engine.create ~seed ~loss_rate ~reliable () in
  ignore (Engine.add_node engine "a");
  ignore (Engine.add_node engine "b");
  engine

let forward_rule = "f1 ping@b(X) :- ev@a(X)."

let ints_of tuples = List.map (fun t -> Value.as_int (Tuple.field t 2)) tuples

(* Every injected event arrives exactly once and in order despite 30 %
   uniform loss: retransmission recovers the drops, the receiver's
   sequence window suppresses the duplicates retransmission creates,
   and the reorder buffer restores the send order. *)
let test_eventual_delivery_under_loss () =
  let engine = two_nodes ~loss_rate:0.3 () in
  Engine.install engine "a" forward_rule;
  let got = Engine.collect engine "b" "ping" in
  for i = 1 to 20 do
    ignore @@ Engine.inject engine "a" "ev" [ Value.VInt i ]
  done;
  Engine.run_for engine 60.;
  Alcotest.(check (list int))
    "all 20 delivered exactly once, in order"
    (List.init 20 (fun i -> i + 1))
    (ints_of (got ()));
  Alcotest.(check bool)
    "loss actually forced retransmissions" true
    (Transport.retransmit_count (Engine.transport engine "a") > 0)

(* The control arm: same loss, transport ablated mid-run with
   [set_reliable false] — fire-and-forget drops messages for good. *)
let test_ablated_loses_messages () =
  let engine = two_nodes ~loss_rate:0.5 () in
  Engine.set_reliable engine false;
  Alcotest.(check bool) "ablation switch reads back" false (Engine.reliable engine);
  Engine.install engine "a" forward_rule;
  let got = Engine.collect engine "b" "ping" in
  for i = 1 to 40 do
    ignore @@ Engine.inject engine "a" "ev" [ Value.VInt i ]
  done;
  Engine.run_for engine 60.;
  let n = List.length (got ()) in
  Alcotest.(check bool)
    (Fmt.str "unreliable delivery is lossy (got %d/40)" n)
    true
    (n < 40 && Transport.retransmit_count (Engine.transport engine "a") = 0)

let find_peer_row engine addr peer =
  List.find_opt
    (fun t -> Value.equal (Tuple.field t 2) (Value.VStr peer))
    (table_tuples engine addr "p2PeerStatus")

let alarm_kinds alarms =
  List.filter_map
    (fun a ->
      match Tuple.field a.Core.Alarms.tuple 2 with
      | Value.VStr k -> Some k
      | _ -> None)
    alarms

(* Failure-detector transitions, observed both from the host API and
   from pure OverLog: crash a peer → p2PeerStatus flips suspect then
   dead and the watchdog raises peer-suspect / peer-dead p2Alarms;
   recover it → alive again. *)
let test_failure_detector_transitions () =
  let engine = two_nodes () in
  Engine.install engine "a" forward_rule;
  ignore @@ Engine.inject engine "a" "ev" [ Value.VInt 1 ];
  Engine.run_for engine 5.;
  let alarms = Core.Watchdog.install ~period:1. engine in
  Engine.run_for engine 5.;
  let status () = Transport.peer_status (Engine.transport engine "a") "b" in
  Alcotest.(check (option string))
    "alive while traffic flows" (Some "alive")
    (Option.map Transport.status_name (status ()));
  Engine.crash engine "b";
  Engine.run_for engine 40.;
  Alcotest.(check (option string))
    "dead after sustained silence" (Some "dead")
    (Option.map Transport.status_name (status ()));
  (match find_peer_row engine "a" "b" with
  | Some row ->
      Alcotest.(check string)
        "p2PeerStatus row reflects dead" "dead"
        (match Tuple.field row 3 with Value.VStr s -> s | _ -> "?")
  | None -> Alcotest.fail "no p2PeerStatus row for b at a");
  let kinds = alarm_kinds (Core.Alarms.alarms alarms) in
  Alcotest.(check bool)
    "watchdog raised peer-suspect" true (List.mem "peer-suspect" kinds);
  Alcotest.(check bool)
    "watchdog raised peer-dead" true (List.mem "peer-dead" kinds);
  Engine.recover engine "b";
  Engine.run_for engine 20.;
  Alcotest.(check (option string))
    "alive again after recovery" (Some "alive")
    (Option.map Transport.status_name (status ()));
  match find_peer_row engine "a" "b" with
  | Some row ->
      Alcotest.(check string)
        "p2PeerStatus row reflects recovery" "alive"
        (match Tuple.field row 3 with Value.VStr s -> s | _ -> "?")
  | None -> Alcotest.fail "no p2PeerStatus row for b after recovery"

(* Backpressure: flooding a dead peer fills the window (32) plus the
   pending queue (128) and then drops — the per-peer queue is bounded
   and the drops are counted. *)
let test_bounded_send_queue () =
  let engine = two_nodes () in
  Engine.crash engine "b";
  let tr = Engine.transport engine "a" in
  for i = 1 to 300 do
    Transport.send tr ~dst:"b" ~delete:false (Tuple.make "x" [ Value.VInt i ])
  done;
  let info =
    List.find (fun p -> p.Transport.peer = "b") (Transport.peers tr)
  in
  Alcotest.(check int) "queue bounded at window + pending" 160
    info.Transport.sendq;
  let drops =
    Metrics.value
      (P2_runtime.Node.registry (Engine.node engine "a"))
      "transport.sendq.drops"
  in
  Alcotest.(check (option (float 0.))) "overflow counted" (Some 140.) drops

(* Retiring a node purges every per-address trace: its transport, the
   peers' channels to it, and the network's crash flag — and the stale
   retransmission timers it leaves behind are inert. *)
let test_remove_node_purges () =
  let engine = two_nodes () in
  Engine.install engine "a" forward_rule;
  ignore @@ Engine.inject engine "a" "ev" [ Value.VInt 1 ];
  Engine.run_for engine 2.;
  Alcotest.(check bool) "peer channel exists" true
    (Transport.peer_status (Engine.transport engine "a") "b" <> None);
  Engine.crash engine "b";
  Engine.remove_node engine "b";
  Alcotest.(check bool) "node gone" true (Engine.node_opt engine "b" = None);
  Alcotest.(check bool) "transport gone" true
    (Engine.transport_opt engine "b" = None);
  Alcotest.(check bool) "peer channel purged" true
    (Transport.peer_status (Engine.transport engine "a") "b" = None);
  Alcotest.(check bool) "crash flag cleared" false
    (Sim.Network.is_crashed (Engine.network engine) "b");
  (* armed timers for the retired address must be inert *)
  Engine.run_for engine 30.

(* Host injection respects the fault model: refused while crashed. *)
let test_inject_crash_guard () =
  let engine = two_nodes () in
  let got = Engine.collect engine "a" "ev" in
  Engine.crash engine "a";
  Alcotest.(check bool) "refused while crashed" false
    (Engine.inject engine "a" "ev" [ Value.VInt 1 ]);
  Engine.run_for engine 1.;
  Alcotest.(check int) "nothing delivered" 0 (List.length (got ()));
  Engine.recover engine "a";
  Alcotest.(check bool) "accepted after recovery" true
    (Engine.inject engine "a" "ev" [ Value.VInt 2 ]);
  Engine.run_for engine 1.;
  Alcotest.(check int) "delivered after recovery" 1 (List.length (got ()))

(* Partition, then heal: frames sent into the cut are retransmitted
   (never abandoned), so after the heal every one arrives exactly once
   and in order; the failure detector walks suspect → alive without
   flapping back. *)
let test_partition_heal_resumes () =
  let engine = two_nodes () in
  Engine.install engine "a" forward_rule;
  let got = Engine.collect engine "b" "ping" in
  for i = 1 to 5 do
    ignore @@ Engine.inject engine "a" "ev" [ Value.VInt i ]
  done;
  Engine.run_for engine 5.;
  Alcotest.(check int) "pre-partition traffic delivered" 5
    (List.length (got ()));
  let cut () =
    Engine.cut_link engine ~src:"a" ~dst:"b";
    Engine.cut_link engine ~src:"b" ~dst:"a"
  and heal () =
    Engine.heal_link engine ~src:"a" ~dst:"b";
    Engine.heal_link engine ~src:"b" ~dst:"a"
  in
  cut ();
  let tr = Engine.transport engine "a" in
  let rtx_before = Transport.retransmit_count tr in
  for i = 6 to 15 do
    ignore @@ Engine.inject engine "a" "ev" [ Value.VInt i ]
  done;
  Engine.run_for engine 8.;
  Alcotest.(check bool) "retransmissions backing off into the cut" true
    (Transport.retransmit_count tr > rtx_before);
  Alcotest.(check (option string))
    "peer suspected during the partition" (Some "suspect")
    (Option.map Transport.status_name (Transport.peer_status tr "b"));
  Alcotest.(check int) "nothing crossed the cut" 5 (List.length (got ()));
  heal ();
  (* watch the detector after the heal: once alive, it must stay
     alive — recovery must not flap through suspect again *)
  let statuses = ref [] in
  for i = 1 to 20 do
    Engine.at engine
      ~time:(Engine.now engine +. float_of_int i)
      (fun () ->
        match Transport.peer_status tr "b" with
        | Some s -> statuses := Transport.status_name s :: !statuses
        | None -> ())
  done;
  Engine.run_for engine 21.;
  Alcotest.(check (list int))
    "every frame sent into the partition arrives exactly once, in order"
    (List.init 15 (fun i -> i + 1))
    (ints_of (got ()));
  Alcotest.(check (option string))
    "peer alive again after the heal" (Some "alive")
    (Option.map Transport.status_name (Transport.peer_status tr "b"));
  let after_first_alive =
    let rec drop = function
      | "alive" :: _ as l -> l
      | _ :: rest -> drop rest
      | [] -> []
    in
    drop (List.rev !statuses)
  in
  Alcotest.(check bool) "status settled" true (after_first_alive <> []);
  Alcotest.(check bool) "no flapping after recovery" true
    (List.for_all (( = ) "alive") after_first_alive)

(* The acceptance run: an 8-node Chord ring under 20 % uniform loss
   reaches ring well-formedness with the transport on — and fails with
   it ablated, same seed, same horizon. *)
let ring_under_loss ~reliable =
  let engine = Engine.create ~seed:1 ~loss_rate:0.2 ~reliable () in
  let net = Chord.boot engine 8 in
  Engine.run_for engine 240.;
  (engine, net)

let test_ring_converges_under_loss () =
  let engine, net = ring_under_loss ~reliable:true in
  Alcotest.(check bool) "ring well-formed at 20 % loss" true
    (Chord.ring_correct net);
  let tr = Engine.transport engine (List.hd net.Chord.addrs) in
  Alcotest.(check bool) "retransmissions happened" true
    (Transport.retransmit_count tr > 0)

let test_ring_fails_ablated () =
  let _, net = ring_under_loss ~reliable:false in
  Alcotest.(check bool) "ablated ring does not converge" false
    (Chord.ring_correct net)

let () =
  Alcotest.run "transport"
    [
      ( "delivery",
        [
          Alcotest.test_case "eventual delivery under loss" `Quick
            test_eventual_delivery_under_loss;
          Alcotest.test_case "ablated transport is lossy" `Quick
            test_ablated_loses_messages;
          Alcotest.test_case "bounded send queue" `Quick
            test_bounded_send_queue;
        ] );
      ( "failure detector",
        [
          Alcotest.test_case "suspect/dead/alive transitions" `Quick
            test_failure_detector_transitions;
          Alcotest.test_case "partition heal: resume without flapping" `Quick
            test_partition_heal_resumes;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "remove_node purges transport state" `Quick
            test_remove_node_purges;
          Alcotest.test_case "inject crash guard" `Quick
            test_inject_crash_guard;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "8-node ring converges at 20 % loss" `Slow
            test_ring_converges_under_loss;
          Alcotest.test_case "ablated ring fails at 20 % loss" `Slow
            test_ring_fails_ablated;
        ] );
    ]
