(* Parser unit tests, including round-trips through the pretty-printer
   and parses of every rule family used in the paper. *)

open Overlog

let parse1 src =
  match Parser.parse src with
  | [ s ] -> s
  | ss -> Alcotest.failf "expected 1 statement, got %d" (List.length ss)

let rule src =
  match parse1 src with
  | Ast.Rule r -> r
  | _ -> Alcotest.fail "expected a rule"

let test_materialize () =
  match parse1 "materialize(link, 100, 5, keys(1,2))." with
  | Ast.Materialize m ->
      Alcotest.(check string) "name" "link" m.mname;
      Alcotest.(check (float 0.)) "lifetime" 100. m.mlifetime;
      Alcotest.(check (option int)) "size" (Some 5) m.msize;
      Alcotest.(check (list int)) "keys" [ 1; 2 ] m.mkeys
  | _ -> Alcotest.fail "expected materialize"

let test_materialize_infinity () =
  match parse1 "materialize(oscill, infinity, infinity, keys(2,3))." with
  | Ast.Materialize m ->
      Alcotest.(check bool) "lifetime inf" true (m.mlifetime = infinity);
      Alcotest.(check (option int)) "size inf" None m.msize
  | _ -> Alcotest.fail "expected materialize"

let test_fact () =
  match parse1 {|link@n1(n2, 1).|} with
  | Ast.Fact (name, values, _) ->
      Alcotest.(check string) "name" "link" name;
      Alcotest.(check int) "arity" 3 (List.length values);
      Alcotest.(check bool) "loc" true
        (Value.equal (List.hd values) (Value.VStr "n1"))
  | _ -> Alcotest.fail "expected fact"

let test_fact_idlit () =
  match parse1 "node@n0(#42)." with
  | Ast.Fact (_, [ _; Value.VId 42 ], _) -> ()
  | _ -> Alcotest.fail "expected id literal fact"

let test_watch () =
  match parse1 "watch(lookupResults)." with
  | Ast.Watch (n, _) -> Alcotest.(check string) "name" "lookupResults" n
  | _ -> Alcotest.fail "expected watch"

let test_named_rule () =
  let r = rule "rp1 a@X(Y) :- b@X(Y)." in
  Alcotest.(check (option string)) "name" (Some "rp1") r.rname;
  Alcotest.(check string) "head" "a" r.rhead.hatom;
  Alcotest.(check int) "body" 1 (List.length r.rbody)

let test_unnamed_rule () =
  let r = rule "a@X(Y) :- b@X(Y)." in
  Alcotest.(check (option string)) "no name" None r.rname

let test_delete_rule () =
  let r = rule "cs10 delete lookupCluster@N(P, T, C) :- consistency@N(P, X)." in
  Alcotest.(check bool) "delete flag" true r.rhead.hdelete;
  Alcotest.(check (option string)) "named" (Some "cs10") r.rname;
  let r2 = rule "delete t@N(X) :- e@N(X)." in
  Alcotest.(check bool) "unnamed delete" true r2.rhead.hdelete

let test_implicit_location () =
  (* path(B, C) means the first argument is the location *)
  let r = rule "path(B, C) :- link(A, B), path(A, C)." in
  Alcotest.(check bool) "head loc is Var B" true (r.rhead.hloc = Ast.Var "B");
  Alcotest.(check int) "head fields" 1 (List.length r.rhead.hfields)

let test_aggregates () =
  let r = rule "os3 c@N(A, count<*>) :- periodic@N(E, 60), o@N(A, T)." in
  (match r.rhead.hfields with
  | [ Ast.Plain _; Ast.Agg Ast.Count ] -> ()
  | _ -> Alcotest.fail "expected count<*>");
  let r = rule "l2 d@N(K, min<D>) :- l@N(K), f@N(FID), D := K - FID - 1." in
  (match r.rhead.hfields with
  | [ Ast.Plain _; Ast.Agg (Ast.Min "D") ] -> ()
  | _ -> Alcotest.fail "expected min<D>");
  let r = rule "cs7 m@N(P, max<C>) :- r@N(P, S, C)." in
  match r.rhead.hfields with
  | [ Ast.Plain _; Ast.Agg (Ast.Max "C") ] -> ()
  | _ -> Alcotest.fail "expected max<C>"

let test_assignments_and_calls () =
  let r = rule "x@N(T) :- e@N(), T := f_now()." in
  match r.rbody with
  | [ Ast.Atom _; Ast.Assign ("T", Ast.Call ("f_now", [])) ] -> ()
  | _ -> Alcotest.fail "expected assignment of f_now()"

let test_intervals () =
  let r =
    rule "l1 res@R(K) :- node@N(NID), lookup@N(K, R, E), bs@N(SID), K in (NID, SID]."
  in
  match List.rev r.rbody with
  | Ast.Cond (Ast.InRange (_, _, _, Ast.Open_closed)) :: _ -> ()
  | _ -> Alcotest.fail "expected open-closed interval"

let test_interval_kinds () =
  let kind src =
    match List.rev (rule src).rbody with
    | Ast.Cond (Ast.InRange (_, _, _, k)) :: _ -> k
    | _ -> Alcotest.fail "no interval"
  in
  Alcotest.(check bool) "oo" true
    (kind "a@N(X) :- e@N(X, A, B), X in (A, B)." = Ast.Open_open);
  Alcotest.(check bool) "co" true
    (kind "a@N(X) :- e@N(X, A, B), X in [A, B)." = Ast.Closed_open);
  Alcotest.(check bool) "cc" true
    (kind "a@N(X) :- e@N(X, A, B), X in [A, B]." = Ast.Closed_closed)

let test_expressions () =
  let r = rule "x@N(A) :- e@N(A, B, C), (A > 0) || (B == C), A * 2 + 1 < 10." in
  Alcotest.(check int) "three body terms" 3 (List.length r.rbody)

let test_list_literals () =
  let r = rule "p@B(P) :- l@A(B), P := [B, A] + [A]." in
  match r.rbody with
  | [ _; Ast.Assign ("P", Ast.Binop (Ast.Add, Ast.ListExpr _, Ast.ListExpr _)) ] -> ()
  | _ -> Alcotest.fail "expected list concat"

let test_wildcard () =
  let r = rule "x@N() :- e@N(_, _)." in
  match r.rbody with
  | [ Ast.Atom { args = [ _; Ast.Var "_"; Ast.Var "_" ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected wildcards"

let test_negation () =
  let r = rule "a1 bad@N(S) :- periodic@N(E, 10), bs@N(S), !succ@N(S)." in
  (match r.rbody with
  | [ Ast.Atom _; Ast.Atom _; Ast.NotAtom { pred = "succ"; _ } ] -> ()
  | _ -> Alcotest.fail "expected negated atom");
  (* '!' in expression position is still boolean negation *)
  let r2 = rule "x@N() :- e@N(B), !(B == 1)." in
  match r2.rbody with
  | [ _; Ast.Cond (Ast.Unop_not _) ] -> ()
  | _ -> Alcotest.fail "expected boolean not"

let test_booleans () =
  let r = rule "f@N(X) :- re@N(R, X, true), R != false." in
  match r.rbody with
  | [ Ast.Atom { args = [ _; _; _; Ast.Const (Value.VBool true) ]; _ }; Ast.Cond _ ] ->
      ()
  | _ -> Alcotest.fail "expected boolean literal in atom"

let test_empty_head_args () =
  let r = rule "inconsistentPred@NAddr() :- x@NAddr(Y)." in
  Alcotest.(check int) "no extra fields" 0 (List.length r.rhead.hfields)

let test_parse_errors () =
  let bad src =
    match Parser.parse src with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" src
  in
  bad "a@X(Y) :- ";
  bad "a@X(Y) b@X(Y).";
  bad "materialize(t, 1, 2).";
  bad "a@X(count<*>) :- b@X(Y)" (* missing dot *);
  bad "delete a@X(Y)." (* delete fact makes no sense *)

let test_multi_statement () =
  let p =
    Parser.parse
      {|
materialize(t, 10, 5, keys(1)).
watch(x).
t@n1(3).
r1 x@N(Y) :- t@N(Y).
|}
  in
  Alcotest.(check int) "four statements" 4 (List.length p)

(* Round-trip: pretty-print a parsed program and parse it again; the
   ASTs must match (modulo IDLIT printing, which pp emits as #n). *)
let roundtrip_sources =
  [
    "rp1 reqBestSucc@PAddr(NAddr) :- periodic@NAddr(E, 10), pred@NAddr(PID, PAddr), \
     PAddr != \"-\".";
    "l2 bestLookupDist@NAddr(K, R, E, min<D>) :- node@NAddr(NID), lookup@NAddr(K, R, \
     E), finger@NAddr(FP, FID, FA), D := K - FID - 1, FID in (NID, K).";
    "os3 countOscill@NAddr(A, count<*>) :- periodic@NAddr(E, 60), oscill@NAddr(A, T).";
    "cs10 delete lookupCluster@NAddr(P, T, C) :- consistency@NAddr(P, X).";
    "sr11 channelState@NAddr(Src, E, \"Done\") :- haveSnap@NAddr(Src, E, C), \
     backPointer@NAddr(R), (C > 0) || (Src == R).";
  ]

let test_roundtrip () =
  List.iter
    (fun src ->
      let p1 = Parser.parse src in
      let printed = Fmt.str "%a" Ast.pp_program p1 in
      let p2 =
        try Parser.parse printed
        with Parser.Error (m, l) ->
          Alcotest.failf "reparse failed (%s line %d) on: %s" m l printed
      in
      let s1 = Fmt.str "%a" Ast.pp_program p1
      and s2 = Fmt.str "%a" Ast.pp_program p2 in
      Alcotest.(check string) "stable print" s1 s2)
    roundtrip_sources

let test_paper_programs_parse () =
  (* Every monitoring program shipped in lib/core must parse. *)
  let programs =
    [
      Core.Ring_check.active_program ();
      Core.Ring_check.passive_program;
      Core.Ordering.opportunistic_program;
      Core.Ordering.traversal_program;
      Core.Oscillation.single_program;
      Core.Oscillation.repeat_program ();
      Core.Oscillation.collaborative_program ();
      Core.Consistency.program ();
      Core.Profiler.program ~root_rule:"cs2";
      Core.Assertions.program ();
      Core.Snapshot.backpointer_program ();
      Core.Snapshot.participant_program;
      Core.Snapshot.initiator_program ~t_snap:8.;
      Core.Snapshot.snap_lookup_program;
      Chord.program Chord.default_params;
      Chord.program Chord.buggy_params;
    ]
  in
  List.iteri
    (fun i src ->
      match Parser.parse src with
      | _ -> ()
      | exception Parser.Error (m, l) ->
          Alcotest.failf "program %d failed to parse: %s (line %d)" i m l)
    programs

(* --- property: pp_program output re-parses to the same AST ---

   The generator stays inside the printer's round-trip fragment:
   - locations are always explicit ([loc_explicit = true]; the printer
     always emits [@]),
   - no [Const] that re-lexes as something else: floats are never
     integer-valued (%g would print [2.] as [2], an INT), no VNull
     ("null" re-parses as a string constant), no VAddr (prints bare),
     no negative VInt in expressions ([-5] re-parses as [Neg 5] — but
     facts fold constants, so negative ints ARE generated there),
     no VList in rule expressions ([[1]] re-parses as a ListExpr —
     fine in facts, where const folding rebuilds the value),
   - strings use printable ASCII plus tab/newline (the escapes the
     lexer understands),
   - [InRange] appears only as a top-level condition: the printer does
     not parenthesize it, so as a comparison operand it would not
     re-parse. Binops self-parenthesize and may nest freely. *)

let rt_gen_pred_name =
  QCheck.Gen.(map (fun s -> "p" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)))

let rt_gen_var =
  QCheck.Gen.(
    map2
      (fun c s -> Fmt.str "%c%s" c s)
      (char_range 'A' 'Z')
      (string_size ~gen:(char_range 'a' 'z') (int_bound 4)))

let rt_gen_string =
  QCheck.Gen.(
    string_size ~gen:(frequency [ (20, char_range ' ' '~'); (1, return '\n'); (1, return '\t') ])
      (int_bound 12))

(* never integer-valued, exact in binary and short in decimal *)
let rt_gen_float =
  QCheck.Gen.(
    map2
      (fun n k -> float_of_int n +. (0.25 *. float_of_int k))
      (int_bound 50) (oneofl [ 1; 2; 3 ]))

let rt_gen_const =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.VInt i) (int_bound 10_000);
        map (fun s -> Value.VStr s) rt_gen_string;
        map (fun b -> Value.VBool b) bool;
        map (fun i -> Value.VId i) (int_bound (Value.Ring.space - 1));
        map (fun f -> Value.VFloat f) rt_gen_float;
      ])

let rt_gen_expr =
  QCheck.Gen.(
    sized_size (int_bound 8) @@ fix (fun self n ->
        let leaf =
          oneof [ map (fun v -> Ast.Var v) rt_gen_var; map (fun c -> Ast.Const c) rt_gen_const ]
        in
        if n = 0 then leaf
        else
          let sub = self (n / 2) in
          frequency
            [
              (3, leaf);
              ( 2,
                map3
                  (fun op a b -> Ast.Binop (op, a, b))
                  (oneofl
                     Ast.[ Add; Sub; Mul; Div; Mod; Eq; Neq; Lt; Le; Gt; Ge; And; Or ])
                  sub sub );
              (1, map (fun e -> Ast.Unop_not e) sub);
              (1, map (fun e -> Ast.Neg e) sub);
              ( 1,
                map2
                  (fun f args -> Ast.Call ("f_" ^ f, args))
                  (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))
                  (list_size (int_bound 3) sub) );
              (1, map (fun es -> Ast.ListExpr es) (list_size (int_bound 3) sub));
            ]))

let rt_gen_atom =
  QCheck.Gen.(
    map3
      (fun pred loc args -> { Ast.pred; args = loc :: args; loc_explicit = true; aline = 0 })
      rt_gen_pred_name
      (map (fun v -> Ast.Var v) rt_gen_var)
      (list_size (int_bound 4) rt_gen_expr))

let rt_gen_body_term =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun a -> Ast.Atom a) rt_gen_atom);
        (1, map (fun a -> Ast.NotAtom a) rt_gen_atom);
        (1, map (fun e -> Ast.Cond e) rt_gen_expr);
        ( 1,
          map3
            (fun x (a, b) k -> Ast.Cond (Ast.InRange (x, a, b, k)))
            rt_gen_expr (pair rt_gen_expr rt_gen_expr)
            (oneofl Ast.[ Open_open; Open_closed; Closed_open; Closed_closed ]) );
        (1, map2 (fun v e -> Ast.Assign (v, e)) rt_gen_var rt_gen_expr);
      ])

let rt_gen_head_field =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun e -> Ast.Plain e) rt_gen_expr);
        ( 1,
          oneof
            [
              return (Ast.Agg Ast.Count);
              map (fun v -> Ast.Agg (Ast.Min v)) rt_gen_var;
              map (fun v -> Ast.Agg (Ast.Max v)) rt_gen_var;
              map (fun v -> Ast.Agg (Ast.Sum v)) rt_gen_var;
              map (fun v -> Ast.Agg (Ast.Avg v)) rt_gen_var;
            ] );
      ])

let rt_gen_rule =
  QCheck.Gen.(
    let gen_head =
      map3
        (fun hatom hloc (hfields, hdelete) ->
          { Ast.hatom; hloc; hfields; hdelete; hline = 0 })
        rt_gen_pred_name
        (map (fun v -> Ast.Var v) rt_gen_var)
        (pair (list_size (int_bound 4) rt_gen_head_field) bool)
    in
    map3
      (fun rname rhead rbody -> Ast.Rule { rname; rhead; rbody; rline = 0 })
      (opt (map (fun s -> "r" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 5))))
      gen_head
      (list_size (int_range 1 4) rt_gen_body_term))

(* fact values may be negative ints and lists: constant folding in the
   parser rebuilds both *)
let rt_gen_fact_value =
  QCheck.Gen.(
    sized_size (int_bound 4) @@ fix (fun self n ->
        let leaf =
          oneof [ rt_gen_const; map (fun i -> Value.VInt (-i)) (int_range 1 10_000) ]
        in
        if n = 0 then leaf
        else
          frequency
            [
              (4, leaf);
              (1, map (fun vs -> Value.VList vs) (list_size (int_bound 3) (self (n / 2))));
            ]))

let rt_gen_statement =
  QCheck.Gen.(
    frequency
      [
        (4, rt_gen_rule);
        ( 1,
          map2
            (fun mname (mlifetime, (msize, mkeys)) ->
              Ast.Materialize { mname; mlifetime; msize; mkeys; mline = 0 })
            rt_gen_pred_name
            (pair
               (oneofl [ 30.; 100.; 2.5; 0.5; infinity ])
               (pair (opt (int_range 1 64)) (list_size (int_range 1 3) (int_range 1 8)))) );
        ( 1,
          map2
            (fun n vs -> Ast.Fact (n, vs, 0))
            rt_gen_pred_name
            (list_size (int_range 1 5) rt_gen_fact_value) );
        (1, map (fun n -> Ast.Watch (n, 0)) rt_gen_pred_name);
      ])

let prop_pp_roundtrip =
  QCheck.Test.make ~name:"pp_program re-parses to the same AST" ~count:500
    (QCheck.make
       ~print:(fun p -> Fmt.str "%a" Ast.pp_program p)
       QCheck.Gen.(list_size (int_range 1 6) rt_gen_statement))
    (fun program ->
      let text = Fmt.str "%a" Ast.pp_program program in
      match Parser.parse_result text with
      | Error msg -> QCheck.Test.fail_reportf "re-parse failed: %s@.%s" msg text
      | Ok reparsed -> Ast.strip_lines reparsed = Ast.strip_lines program)

let () =
  Alcotest.run "parser"
    [
      ( "statements",
        [
          Alcotest.test_case "materialize" `Quick test_materialize;
          Alcotest.test_case "materialize infinity" `Quick test_materialize_infinity;
          Alcotest.test_case "fact" `Quick test_fact;
          Alcotest.test_case "fact idlit" `Quick test_fact_idlit;
          Alcotest.test_case "watch" `Quick test_watch;
          Alcotest.test_case "multi" `Quick test_multi_statement;
        ] );
      ( "rules",
        [
          Alcotest.test_case "named" `Quick test_named_rule;
          Alcotest.test_case "unnamed" `Quick test_unnamed_rule;
          Alcotest.test_case "delete" `Quick test_delete_rule;
          Alcotest.test_case "implicit location" `Quick test_implicit_location;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "assignments" `Quick test_assignments_and_calls;
          Alcotest.test_case "intervals" `Quick test_intervals;
          Alcotest.test_case "interval kinds" `Quick test_interval_kinds;
          Alcotest.test_case "expressions" `Quick test_expressions;
          Alcotest.test_case "lists" `Quick test_list_literals;
          Alcotest.test_case "wildcards" `Quick test_wildcard;
          Alcotest.test_case "negation" `Quick test_negation;
          Alcotest.test_case "booleans" `Quick test_booleans;
          Alcotest.test_case "empty head" `Quick test_empty_head_args;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "print/reparse" `Quick test_roundtrip;
          Alcotest.test_case "paper programs" `Quick test_paper_programs_parse;
          QCheck_alcotest.to_alcotest prop_pp_roundtrip;
        ] );
    ]
