lib/runtime/node.mli: Ast Dataflow Overlog Sim Store Tuple Value
