test/test_forensics.mli:
