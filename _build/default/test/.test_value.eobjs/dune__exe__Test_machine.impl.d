test/test_machine.ml: Alcotest Ast Dataflow Eval Fmt List Machine Option Overlog Parser Store Strand Tuple Value
