(** Timed fault schedules for deterministic injection campaigns.

    Everything here is a pure function of the RNG stream handed in, so
    a campaign run is reproducible from its seed alone. The text form
    is the replay artifact the shrinker prints: it must round-trip
    exactly (times are printed with enough digits to be re-read
    bit-for-bit). *)

type action =
  | Crash of string
  | Recover of string
  | Cut_link of string * string
  | Heal_link of string * string
  | Set_loss of float
  | Set_latency of float * float
  | Join of string
  | Leave of string
  | Corrupt_succ of string * string
  | Partition of string list
  | Heal_partition of string list
  | Restart of string

type timed = { time : float; action : action }

type t = { horizon : float; actions : timed list }

let empty horizon = { horizon; actions = [] }
let length p = List.length p.actions

let sort_actions = List.stable_sort (fun a b -> Float.compare a.time b.time)

let add p ~time action = { p with actions = sort_actions ({ time; action } :: p.actions) }

let remove p i = { p with actions = List.filteri (fun j _ -> j <> i) p.actions }

let truncate p =
  match List.rev p.actions with
  | [] -> { p with horizon = 0. }
  | last :: _ -> { p with horizon = Float.min p.horizon (last.time +. 1.) }

let scale_time p i =
  match List.nth_opt p.actions i with
  | None -> p
  | Some a ->
      let t' = if a.time <= 1. then 0. else a.time /. 2. in
      if t' = a.time then p
      else
        let actions =
          List.mapi (fun j b -> if j = i then { b with time = t' } else b) p.actions
        in
        { p with actions = sort_actions actions }

(* --- generation --- *)

let generate ?(extended = false) ~rng ~addrs ~horizon ~intensity () =
  if intensity <= 0 || addrs = [] then empty horizon
  else begin
    let landmark = List.hd addrs in
    let victims = List.filter (fun a -> a <> landmark) addrs in
    let pick l = List.nth l (Sim.Rng.int rng (List.length l)) in
    (* leave tail room so paired repairs land inside the window *)
    let start () = Sim.Rng.float rng *. horizon *. 0.7 in
    let repair_after t = Float.min horizon (t +. 5. +. (Sim.Rng.float rng *. horizon *. 0.25)) in
    let joins = ref 0 in
    let n_actions = intensity + Sim.Rng.int rng intensity in
    let acts = ref [] in
    let push time action = acts := { time; action } :: !acts in
    (* [extended] widens the action alphabet with partitions and
       crash-restarts without perturbing the classic 6-way draw
       sequence: a classic plan for (seed, intensity) is byte-identical
       whether or not this code exists. *)
    let arity = if extended then 8 else 6 in
    for _ = 1 to n_actions do
      let t = start () in
      match Sim.Rng.int rng arity with
      | 0 ->
          let v = pick victims in
          push t (Crash v);
          (* mostly transient: a recover follows 80% of the time *)
          if Sim.Rng.int rng 5 < 4 then push (repair_after t) (Recover v)
      | 1 ->
          let s = pick addrs and d = pick addrs in
          if s <> d then begin
            push t (Cut_link (s, d));
            push (repair_after t) (Heal_link (s, d))
          end
      | 2 ->
          let r = 0.02 *. float_of_int intensity *. (0.5 +. Sim.Rng.float rng) in
          push t (Set_loss (Float.min r 0.4));
          push (repair_after t) (Set_loss 0.)
      | 3 ->
          let base = 0.01 +. (0.02 *. float_of_int intensity *. Sim.Rng.float rng) in
          push t (Set_latency (base, base /. 2.));
          push (repair_after t) (Set_latency (0.01, 0.005))
      | 4 ->
          incr joins;
          push t (Join (Fmt.str "j%d" !joins))
      | 5 -> push t (Leave (pick victims))
      | 6 ->
          (* Bipartition: a victim subgroup is cut off from the rest of
             the network (the landmark always stays on the majority
             side, so the ring keeps its join anchor). Always paired
             with a heal — an unhealed partition makes convergence
             structurally impossible, which is a different experiment. *)
          let k = 1 + Sim.Rng.int rng (max 1 (List.length victims / 3)) in
          let group =
            List.init k (fun _ -> pick victims)
            |> List.sort_uniq compare
          in
          push t (Partition group);
          push (repair_after t) (Heal_partition group)
      | _ ->
          (* Crash-restart: fail-stop followed by a reboot that runs
             the recovery path (checkpoint restore or cold rejoin). *)
          let v = pick victims in
          push t (Crash v);
          push (repair_after t) (Restart v)
    done;
    { horizon; actions = sort_actions (List.rev !acts) }
  end

let plant_corruption ~rng ~addrs ~time plan =
  let landmark = List.hd addrs in
  let victims = List.filter (fun a -> a <> landmark) addrs in
  let victim = List.nth victims (Sim.Rng.int rng (List.length victims)) in
  let vid = Chord.id_of_addr victim in
  (* the farthest node clockwise: maximally wrong as a successor *)
  let target =
    List.filter (fun a -> a <> victim) addrs
    |> List.fold_left
         (fun best a ->
           match best with
           | Some b
             when Overlog.Value.Ring.distance vid (Chord.id_of_addr b)
                  >= Overlog.Value.Ring.distance vid (Chord.id_of_addr a) ->
               best
           | _ -> Some a)
         None
    |> Option.get
  in
  add plan ~time (Corrupt_succ (victim, target))

(* --- text form --- *)

let pp_action ppf = function
  | Crash a -> Fmt.pf ppf "crash %s" a
  | Recover a -> Fmt.pf ppf "recover %s" a
  | Cut_link (s, d) -> Fmt.pf ppf "cut %s %s" s d
  | Heal_link (s, d) -> Fmt.pf ppf "heal %s %s" s d
  | Set_loss r -> Fmt.pf ppf "loss %.17g" r
  | Set_latency (b, j) -> Fmt.pf ppf "latency %.17g %.17g" b j
  | Join a -> Fmt.pf ppf "join %s" a
  | Leave a -> Fmt.pf ppf "leave %s" a
  | Corrupt_succ (n, t) -> Fmt.pf ppf "corrupt-succ %s %s" n t
  | Partition g -> Fmt.pf ppf "partition %s" (String.concat "," g)
  | Heal_partition g -> Fmt.pf ppf "heal-partition %s" (String.concat "," g)
  | Restart a -> Fmt.pf ppf "restart %s" a

let pp ppf p =
  Fmt.pf ppf "horizon %.17g@." p.horizon;
  List.iter (fun { time; action } -> Fmt.pf ppf "%.17g %a@." time pp_action action) p.actions

let to_string p = Fmt.str "%a" pp p

let of_string text =
  let bad line = invalid_arg (Fmt.str "Fault_plan.of_string: bad line %S" line) in
  let fl line s = try float_of_string s with _ -> bad line in
  let parse_line (horizon, acts) line =
    let words =
      String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
    in
    match words with
    | [] -> (horizon, acts)
    | w :: _ when String.length w > 0 && w.[0] = '#' -> (horizon, acts)
    | [ "horizon"; h ] -> (Some (fl line h), acts)
    | t :: rest ->
        let time = fl line t in
        let action =
          match rest with
          | [ "crash"; a ] -> Crash a
          | [ "recover"; a ] -> Recover a
          | [ "cut"; s; d ] -> Cut_link (s, d)
          | [ "heal"; s; d ] -> Heal_link (s, d)
          | [ "loss"; r ] -> Set_loss (fl line r)
          | [ "latency"; b; j ] -> Set_latency (fl line b, fl line j)
          | [ "join"; a ] -> Join a
          | [ "leave"; a ] -> Leave a
          | [ "corrupt-succ"; n; tg ] -> Corrupt_succ (n, tg)
          | [ "partition"; g ] ->
              Partition (String.split_on_char ',' g |> List.filter (fun a -> a <> ""))
          | [ "heal-partition"; g ] ->
              Heal_partition
                (String.split_on_char ',' g |> List.filter (fun a -> a <> ""))
          | [ "restart"; a ] -> Restart a
          | _ -> bad line
        in
        (horizon, { time; action } :: acts)
  in
  let horizon, acts =
    List.fold_left parse_line (None, []) (String.split_on_char '\n' text)
  in
  match horizon with
  | None -> invalid_arg "Fault_plan.of_string: missing horizon line"
  | Some horizon -> { horizon; actions = sort_actions (List.rev acts) }
