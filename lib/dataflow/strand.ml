(** Rule strands: the compiled form of one OverLog rule, mirroring the
    planner output described in paper §2 (Figure 1).

    A strand has a trigger (the tuple event that starts it), a sequence
    of stages (table joins, selections, assignments), and a head
    action. Join stages are the stateful elements of the paper and are
    numbered; the tracer's pipelined record machinery (§2.1.2) is
    keyed on these stage numbers. *)

open Overlog

type trigger =
  | Event of Ast.atom        (* a transient tuple arriving / being created *)
  | Periodic of { atom : Ast.atom; period : float }
  | Table_delta of Ast.atom  (* insertion into a materialized table *)

type stage =
  | Join of { atom : Ast.atom; jstage : int; bound : int list; bound_args : Ast.expr list }
      (* jstage: 0-based join number; bound: 1-indexed argument
         positions whose value is known before the table is consulted
         (a constant, or a variable bound by earlier stages) — the
         probe key the machine hands to the store's hash indexes.
         bound_args: the argument expressions at those positions,
         precompiled so the machine never walks the atom with
         [List.nth] per evaluation *)
  | Neg_join of { atom : Ast.atom; bound : int list; bound_args : Ast.expr list }
      (* negation: succeeds when no tuple matches *)
  | Select of Ast.expr
  | Bind of string * Ast.expr

type aggregate_plan = {
  agg : Ast.aggregate;
  (* positions of plain fields within the head, for grouping *)
  group_fields : Ast.expr list;  (* head loc :: plain field exprs *)
}

type t = {
  rule : Ast.rule;
  rule_id : string;
  trigger : trigger;
  stages : stage list;
  stages_arr : stage array;
      (* same stages, precomputed once so the machine never rebuilds an
         array per agenda item *)
  join_count : int;
  head : Ast.head;
  aggregate : aggregate_plan option;
  naive_stages : stage list;
  naive_stages_arr : stage array;
      (* the classical (naive) plan for delta strands: the full body —
         trigger atom included — re-enumerated from an empty
         environment on every table delta. Used only when the machine
         runs in [Naive] mode as the semi-naive ablation control;
         identical to [stages] for event/periodic/aggregate strands. *)
}

exception Compile_error of string

let trigger_atom t =
  match t.trigger with
  | Event a | Table_delta a -> a
  | Periodic { atom; _ } -> atom

let trigger_name t = (trigger_atom t).pred

let atom_vars (a : Ast.atom) =
  List.concat_map Ast.expr_vars a.args
  |> List.filter (fun v -> v <> "_")

(* Variables bound after matching the trigger and running the stages.
   Negated atoms bind nothing: their variables are existential. *)
let bound_vars trigger stages =
  let init = atom_vars trigger in
  List.fold_left
    (fun acc -> function
      | Join { atom; _ } -> atom_vars atom @ acc
      | Neg_join _ | Select _ -> acc
      | Bind (v, _) -> v :: acc)
    init stages

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* Argument positions (1-indexed, location included) whose value is
   computable from the environment before the table is consulted: a
   literal constant, or a variable already bound when the stage runs.
   Only pure argument forms qualify — a computed expression is left to
   the per-tuple matcher so it is evaluated exactly as often as before
   (it could call builtins with ambient state). A repeated fresh
   variable's later occurrences do not qualify either: their value is
   only fixed by the match itself. *)
let probe_positions vars (a : Ast.atom) =
  List.mapi (fun i e -> (i + 1, e)) a.args
  |> List.filter_map (fun (p, e) ->
         match e with
         | Ast.Const _ -> Some (p, e)
         | Ast.Var v when v <> "_" && List.mem v vars -> Some (p, e)
         | _ -> None)
  |> List.split

(* Order the non-trigger body terms into stages. Terms keep their
   textual order — this matters for semantics, e.g. [ReqID := f_rand()]
   written after a join must run once per match, not once per trigger —
   except that a selection or assignment whose variables are not yet
   bound (possible after delta rewriting rotates the trigger to the
   front) is deferred until the join that binds them has been placed. *)
let order_stages ~rule_id ~initial_bound rest =
  let placeable bound = function
    | Ast.Atom _ | Ast.NotAtom _ -> true
    | Ast.Cond e -> subset (Ast.expr_vars e) bound
    | Ast.Assign (_, e) -> subset (Ast.expr_vars e) bound
  in
  let place_term (bound, acc, jstage) = function
    | Ast.Atom a ->
        let positions, bound_args = probe_positions bound a in
        ( atom_vars a @ bound,
          Join { atom = a; jstage; bound = positions; bound_args } :: acc,
          jstage + 1 )
    | Ast.NotAtom a ->
        let positions, bound_args = probe_positions bound a in
        (bound, Neg_join { atom = a; bound = positions; bound_args } :: acc, jstage)
    | Ast.Cond e -> (bound, Select e :: acc, jstage)
    | Ast.Assign (v, e) -> (bound, Bind (v, e) :: acc, jstage)
  in
  let bind_of = function Ast.Assign (v, _) -> [ v ] | _ -> [] in
  let rec go bound deferred pending acc jstage =
    (* flush deferred terms that have become placeable, in order *)
    let rec flush bound deferred acc jstage =
      match List.partition (placeable bound) deferred with
      | [], _ -> (bound, deferred, acc, jstage)
      | ready, rest ->
          let bound, acc, jstage =
            List.fold_left
              (fun (b, a, j) t ->
                let b, a, j = place_term (b, a, j) t in
                (bind_of t @ b, a, j))
              (bound, acc, jstage) ready
          in
          flush bound rest acc jstage
    in
    let bound, deferred, acc, jstage = flush bound deferred acc jstage in
    match pending with
    | [] ->
        if deferred <> [] then
          raise
            (Compile_error
               (Fmt.str "rule %s: unsafe body (unbound variables in condition)"
                  rule_id))
        else List.rev acc
    | t :: rest ->
        if placeable bound t then
          let bound, acc, jstage = place_term (bound, acc, jstage) t in
          go (bind_of t @ bound) deferred rest acc jstage
        else go bound (deferred @ [ t ]) rest acc jstage
  in
  go initial_bound [] rest [] 0

let head_aggregate (h : Ast.head) =
  let aggs = List.filter_map (function Ast.Agg a -> Some a | Ast.Plain _ -> None) h.hfields in
  match aggs with
  | [] -> None
  | [ a ] ->
      Some
        {
          agg = a;
          group_fields =
            h.hloc
            :: List.filter_map
                 (function Ast.Plain e -> Some e | Ast.Agg _ -> None)
                 h.hfields;
        }
  | _ -> raise (Compile_error "at most one aggregate per rule head")

let check_head_safety ~rule_id trigger stages (head : Ast.head) =
  let bound = bound_vars trigger stages in
  let needed = Ast.head_vars head in
  List.iter
    (fun v ->
      if v <> "_" && not (List.mem v bound) then
        raise
          (Compile_error (Fmt.str "rule %s: head variable %s is unbound" rule_id v)))
    needed

let count_joins stages =
  List.fold_left
    (fun acc -> function Join _ -> acc + 1 | Neg_join _ | Select _ | Bind _ -> acc)
    0 stages

let make_strand ~rule ~rule_id ~trigger ~rest =
  let trigger_a =
    match trigger with
    | Event a | Table_delta a -> a
    | Periodic { atom; _ } -> atom
  in
  let aggregate = head_aggregate rule.Ast.rhead in
  (* Aggregate delta strands keep only group-variable bindings from the
     trigger at run time (the delta identifies the affected group; the
     aggregate rescans the table), so stage ordering must assume the
     same restricted initial environment. *)
  let initial_bound =
    match (aggregate, trigger) with
    | Some plan, Table_delta _ ->
        let group_vars = List.concat_map Ast.expr_vars plan.group_fields in
        List.filter (fun v -> List.mem v group_vars) (atom_vars trigger_a)
    | _ -> atom_vars trigger_a
  in
  let stages = order_stages ~rule_id ~initial_bound rest in
  (* Delete heads are patterns: unbound variables act as wildcards
     (paper rule cs10), so safety only applies to derivation heads. *)
  if not rule.Ast.rhead.hdelete then
    check_head_safety ~rule_id trigger_a stages rule.Ast.rhead;
  (* Naive plan: a table delta merely signals "something changed" and
     the whole body — trigger atom included, in textual order — is
     re-joined from scratch. Aggregates already rescan the full body on
     every delta, so their plan is shared. *)
  let naive_stages =
    match (trigger, aggregate) with
    | Table_delta _, None -> order_stages ~rule_id ~initial_bound:[] rule.Ast.rbody
    | _ -> stages
  in
  {
    rule;
    rule_id;
    trigger;
    stages;
    stages_arr = Array.of_list stages;
    join_count = count_joins stages;
    head = rule.Ast.rhead;
    aggregate;
    naive_stages;
    naive_stages_arr = Array.of_list naive_stages;
  }

let periodic_period (atom : Ast.atom) ~rule_id =
  (* periodic@N(E, T [, Count]) — T must be a numeric literal. *)
  match atom.args with
  | _ :: _ :: t :: _ -> (
      match t with
      | Ast.Const (Value.VInt i) -> float_of_int i
      | Ast.Const (Value.VFloat f) -> f
      | _ ->
          raise
            (Compile_error
               (Fmt.str "rule %s: periodic period must be a numeric constant" rule_id)))
  | _ ->
      raise
        (Compile_error (Fmt.str "rule %s: periodic needs at least (E, T) fields" rule_id))

(** Compile one rule into its strands. [is_table] tells which
    predicates are materialized. Rules with exactly one event predicate
    get one strand triggered by it (P2 forbids more than one); rules
    over tables only get one delta strand per body atom. *)
let compile ~is_table ~fresh_rule_id (rule : Ast.rule) =
  let rule_id = match rule.rname with Some n -> n | None -> fresh_rule_id () in
  (* Negated atoms are never triggers: a rule cannot fire "because a
     tuple is absent" — it fires on its positive deltas/events and the
     negation is checked then (stratified, per-trigger evaluation). *)
  let atoms_with_index =
    List.mapi (fun i t -> (i, t)) rule.rbody
    |> List.filter_map (function
         | i, Ast.Atom a -> Some (i, a)
         | _, (Ast.NotAtom _ | Ast.Cond _ | Ast.Assign _) -> None)
  in
  if atoms_with_index = [] then
    raise (Compile_error (Fmt.str "rule %s: body has no predicates" rule_id));
  let is_event (a : Ast.atom) = a.pred = "periodic" || not (is_table a.pred) in
  let events = List.filter (fun (_, a) -> is_event a) atoms_with_index in
  let body_without i = List.filteri (fun j _ -> j <> i) rule.rbody in
  match events with
  | (i, a) :: [] ->
      let trigger =
        if a.pred = "periodic" then
          Periodic { atom = a; period = periodic_period a ~rule_id }
        else Event a
      in
      [ make_strand ~rule ~rule_id ~trigger ~rest:(body_without i) ]
  | _ :: _ :: _ ->
      raise
        (Compile_error
           (Fmt.str "rule %s: more than one event predicate in body (P2 restriction)"
              rule_id))
  | [] ->
      (* Delta strands: one per table predicate in the body. Aggregate
         rules keep the trigger atom in the scanned body — the delta
         only identifies the affected group and the aggregate must
         rescan the whole table (os8, bs1). *)
      let is_agg = Ast.rule_has_aggregate rule in
      List.map
        (fun (i, a) ->
          let rest = if is_agg then rule.rbody else body_without i in
          make_strand ~rule ~rule_id ~trigger:(Table_delta a) ~rest)
        atoms_with_index

let pp ppf t =
  let trig =
    match t.trigger with
    | Event a -> Fmt.str "event %s" a.pred
    | Periodic { period; _ } -> Fmt.str "periodic %g" period
    | Table_delta a -> Fmt.str "delta %s" a.pred
  in
  Fmt.pf ppf "strand %s [%s] joins=%d%s" t.rule_id trig t.join_count
    (if t.aggregate <> None then " agg" else "")
