(* Naive-vs-delta differential oracle for the evaluation pipeline.

   Semi-naive delta evaluation (the planner's default) and the naive
   full-body re-enumeration ablation must compute the same fixpoints —
   they are two executions of the same logic program — while
   semi-naive ships strictly fewer cross-node tuples on recursive
   workloads, and cross-node delta batching packs those shipments into
   fewer wire frames without changing anything observable.

   Three suites:
   - transitive closure over generated random digraphs, >= 10 seeds,
     all three arms (semi+batching / semi plain / naive);
   - every Core.Registry monitor co-installed on a live Chord ring,
     semi-naive vs naive, structural ring state compared exactly;
   - a campaign regression: the semi-naive reachable program under 20%
     loss with batched frames, judged by the eventual-delivery oracle. *)

module Engine = P2_runtime.Engine
module Node = P2_runtime.Node
open Overlog

type mode = Semi_batched | Semi_plain | Naive

let apply_mode engine = function
  | Semi_batched -> Engine.set_seminaive engine true
  | Semi_plain -> () (* engine default: semi-naive eval, batching off *)
  | Naive -> Engine.set_seminaive engine false

(* --- observation helpers --- *)

(* Canonical fixpoint: per node, per hard-state table, the sorted
   multiset of tuple contents. Soft-state tables are excluded — naive
   refiring refreshes row lifetimes, so expiry timing is legitimately
   mode-dependent; hard state is where the fixpoints must agree. *)
let fixpoint ?(only = fun _ -> true) engine =
  let now = Engine.now engine in
  List.concat_map
    (fun addr ->
      let cat = Node.catalog (Engine.node engine addr) in
      List.filter_map
        (fun tname ->
          let tbl = Store.Catalog.find_exn cat tname in
          if Store.Table.lifetime tbl = infinity && only tname then
            Some
              ( addr,
                tname,
                List.sort String.compare
                  (List.map Tuple.to_string (Store.Table.tuples tbl ~now)) )
          else None)
        (Store.Catalog.names cat))
    (Engine.addrs engine)

let pp_fixpoint ppf fp =
  List.iter
    (fun (addr, t, rows) ->
      Fmt.pf ppf "%s/%s: %a@." addr t Fmt.(list ~sep:(any "; ") string) rows)
    fp

let check_fixpoints_equal ~what a b =
  if a <> b then
    Alcotest.failf "%s: fixpoints differ@.--- first:@.%a--- second:@.%a" what
      pp_fixpoint a pp_fixpoint b

let sum_metric engine name =
  List.fold_left
    (fun acc addr ->
      let reg = Node.registry (Engine.node engine addr) in
      acc +. Option.value ~default:0. (Metrics.value reg name))
    0. (Engine.addrs engine)

(* Logical tuple shipments (independent of framing/batching). *)
let messages engine =
  List.fold_left
    (fun acc addr -> acc + (Engine.snapshot_node engine addr).Engine.messages_tx)
    0 (Engine.addrs engine)

let frames engine = int_of_float (sum_metric engine "transport.tx.frames")

(* --- suite 1: transitive closure over generated digraphs --- *)

let tc_program =
  {|materialize(link, infinity, 1024, keys(1, 2)).
materialize(path, infinity, 65536, keys(1, 2)).
p1 path@T(S) :- link@S(T).
p2 path@T(S) :- link@M(T), path@M(S).|}

(* A random recursive workload: [n] nodes, a guaranteed Hamiltonian
   cycle (so the closure is total and every rule recurses), plus
   random chords. Edges are injected staggered in time so the engine
   sees genuine incremental deltas, not one bulk load. *)
let gen_edges ~rng ~n =
  let addr i = Fmt.str "n%d" i in
  let cycle = List.init n (fun i -> (addr i, addr ((i + 1) mod n))) in
  let chords = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && (j - i) mod n <> 1 && Sim.Rng.float rng < 0.3 then
        chords := (addr i, addr j) :: !chords
    done
  done;
  cycle @ List.rev !chords

type arm = { fp : (string * string * string list) list; msgs : int; frames : int }

let run_tc ~mode ~seed ~n ~edges =
  let engine = Engine.create ~seed () in
  apply_mode engine mode;
  for i = 0 to n - 1 do
    ignore (Engine.add_node engine (Fmt.str "n%d" i))
  done;
  Engine.install_all engine tc_program;
  List.iteri
    (fun i (src, dst) ->
      Engine.at engine
        ~time:(1.0 +. (0.5 *. float_of_int i))
        (fun () -> ignore (Engine.inject engine src "link" [ Value.VAddr dst ])))
    edges;
  Engine.run_until engine (60. +. (0.5 *. float_of_int (List.length edges)));
  { fp = fixpoint engine; msgs = messages engine; frames = frames engine }

let test_tc_differential () =
  let strict_wins = ref 0 in
  for seed = 1 to 12 do
    let rng = Sim.Rng.create (1000 + seed) in
    let n = 3 + Sim.Rng.int rng 3 in
    let edges = gen_edges ~rng ~n in
    let semi_b = run_tc ~mode:Semi_batched ~seed ~n ~edges in
    let semi_p = run_tc ~mode:Semi_plain ~seed ~n ~edges in
    let naive = run_tc ~mode:Naive ~seed ~n ~edges in
    let what = Fmt.str "seed %d (%d nodes, %d edges)" seed n (List.length edges) in
    check_fixpoints_equal ~what:(what ^ " semi+batch vs semi") semi_b.fp semi_p.fp;
    check_fixpoints_equal ~what:(what ^ " semi vs naive") semi_p.fp naive.fp;
    (* The closure must actually be total: path at every node holds
       every node (the Hamiltonian cycle guarantees reachability). *)
    List.iter
      (fun (addr, t, rows) ->
        if t = "path" then
          Alcotest.(check int)
            (Fmt.str "%s: |path| at %s" what addr)
            n (List.length rows))
      semi_p.fp;
    (* Semi-naive never ships more tuples than naive; batching does not
       change what is shipped, only how it is framed. *)
    Alcotest.(check bool)
      (Fmt.str "%s: msgs semi (%d) <= naive (%d)" what semi_p.msgs naive.msgs)
      true
      (semi_p.msgs <= naive.msgs);
    Alcotest.(check int)
      (Fmt.str "%s: msgs semi+batch = semi" what)
      semi_p.msgs semi_b.msgs;
    Alcotest.(check bool)
      (Fmt.str "%s: frames batched (%d) <= plain (%d)" what semi_b.frames
         semi_p.frames)
      true
      (semi_b.frames <= semi_p.frames);
    if semi_p.msgs < naive.msgs then incr strict_wins
  done;
  (* Strictly fewer messages on recursive workloads: every digraph here
     recurses, so the naive re-shipping penalty must show up broadly. *)
  Alcotest.(check bool)
    (Fmt.str "strict message wins on %d/12 recursive workloads" !strict_wins)
    true (!strict_wins >= 10)

(* Batching must actually batch: on a workload with same-instant
   same-peer shipments, the batched arm uses measurably fewer frames
   and reports non-zero batch counters. *)
let test_tc_batching_packs_frames () =
  let rng = Sim.Rng.create 4242 in
  let n = 5 in
  let edges = gen_edges ~rng ~n in
  let seed = 99 in
  let semi_b = run_tc ~mode:Semi_batched ~seed ~n ~edges in
  let semi_p = run_tc ~mode:Semi_plain ~seed ~n ~edges in
  check_fixpoints_equal ~what:"batching fixpoint" semi_b.fp semi_p.fp;
  Alcotest.(check bool)
    (Fmt.str "batched frames (%d) < plain frames (%d)" semi_b.frames
       semi_p.frames)
    true
    (semi_b.frames < semi_p.frames)

(* --- suite 2: the embedded monitor corpus on a live ring --- *)

(* Structural ring state: time-free hard-state tables whose converged
   contents are a pure function of membership. Monitor-derived tables
   often embed f_now timestamps or event counts, which are legitimately
   schedule-dependent; the ring itself must not be. *)
let structural = [ "node"; "landmark"; "bestSucc"; "pred" ]

let run_registry_group ~mode ~seed ~params ~programs =
  let engine = Engine.create ~seed () in
  apply_mode engine mode;
  let net = Chord.boot ~params engine 5 in
  Engine.run_until engine 90.;
  (* Install the monitors piecemeal on the running ring (the paper's
     deployment story), deduplicated: a program text installs once. *)
  let seen = Hashtbl.create 8 in
  Hashtbl.add seen Core.Registry.chord ();
  List.iter
    (fun src ->
      if not (Hashtbl.mem seen src) then begin
        Hashtbl.add seen src ();
        Engine.install_all engine src
      end)
    programs;
  Engine.run_until engine 240.;
  let ring_ok = Chord.ring_correct net in
  (ring_ok, fixpoint ~only:(fun t -> List.mem t structural) engine)

let test_registry_differential () =
  (* chord-buggy replaces the chord library wholesale (same rule names,
     different bodies), so it gets its own ring; everything else
     co-installs over the standard ring. chord and chord-boot-facts are
     what Chord.boot already installs. *)
  let monitors =
    List.concat_map
      (fun (name, libs, program) ->
        match name with
        | "chord" | "chord-buggy" | "chord-boot-facts" -> []
        | _ -> libs @ [ program ])
      Core.Registry.embedded
  in
  List.iter
    (fun seed ->
      let semi =
        run_registry_group ~mode:Semi_batched ~seed ~params:Chord.default_params
          ~programs:monitors
      in
      let naive =
        run_registry_group ~mode:Naive ~seed ~params:Chord.default_params
          ~programs:monitors
      in
      Alcotest.(check bool)
        (Fmt.str "seed %d: semi-naive ring correct" seed)
        true (fst semi);
      Alcotest.(check bool)
        (Fmt.str "seed %d: naive ring correct" seed)
        true (fst naive);
      check_fixpoints_equal
        ~what:(Fmt.str "registry corpus seed %d" seed)
        (snd semi) (snd naive))
    [ 3; 8 ]

let test_registry_buggy_differential () =
  let seed = 5 in
  let semi =
    run_registry_group ~mode:Semi_batched ~seed ~params:Chord.buggy_params
      ~programs:[]
  in
  let naive =
    run_registry_group ~mode:Naive ~seed ~params:Chord.buggy_params ~programs:[]
  in
  (* The buggy variant need not converge to a correct ring — the point
     is that both evaluation modes agree on whatever it does compute. *)
  check_fixpoints_equal ~what:"chord-buggy" (snd semi) (snd naive)

(* --- suite 3: campaign regression, batched frames under loss --- *)

(* Reachability along best-successor edges: a recursive cross-node
   monitor. rb0 seeds from a periodic — the monitor is installed on a
   ring whose bestSucc rows already exist, and delta rules only see new
   deltas, so the edge relation must be enumerated once after install
   (later rounds refresh identically and go quiet). rb2 then closes
   transitively, delta-driven. On a converged ring the closure is
   total, so under 20% loss the reliable transport must still deliver
   every (possibly batched) delta frame for the assertion to hold. *)
let reach_program =
  {|materialize(reachable, infinity, 65536, keys(1, 2)).
rb0 reachable@S(N) :- periodic@N(E, 10), bestSucc@N(I, S).
rb1 reachable@S(N) :- bestSucc@N(I, S).
rb2 reachable@S(M) :- bestSucc@N(I, S), reachable@N(M), M != S.|}

let test_campaign_loss_batched () =
  let cfg =
    {
      Harness.Campaign.default_config with
      nodes = 5;
      settle = 120.;
      horizon = 30.;
      cooldown = 150.;
      loss_rate = 0.2;
      reliable = true;
      seminaive = true;
    }
  in
  let batches = ref 0. in
  let complete = ref true in
  let missing = ref "" in
  let run =
    Harness.Campaign.run_plan cfg ~seed:5
      ~after_settle:(fun engine -> Engine.install_all engine reach_program)
      ~on_done:(fun engine ->
        batches := sum_metric engine "transport.tx.batches";
        let addrs = Engine.addrs engine in
        let now = Engine.now engine in
        List.iter
          (fun a ->
            let cat = Node.catalog (Engine.node engine a) in
            match Store.Catalog.find cat "reachable" with
            | None ->
                complete := false;
                missing := Fmt.str "%s has no reachable table" a
            | Some tbl ->
                let got =
                  List.map
                    (fun t -> Value.to_string (Tuple.field t 2))
                    (Store.Table.tuples tbl ~now)
                in
                List.iter
                  (fun b ->
                    if b <> a && not (List.mem b got) then begin
                      complete := false;
                      missing := Fmt.str "%s not reachable at %s" b a
                    end)
                  addrs)
          addrs)
      (Harness.Fault_plan.empty cfg.Harness.Campaign.horizon)
  in
  Alcotest.(check bool)
    "oracle holds under 20% loss with batching" false
    (Harness.Campaign.failed run);
  Alcotest.(check bool) (Fmt.str "closure total (%s)" !missing) true !complete;
  Alcotest.(check bool)
    (Fmt.str "delta batches were exercised (%g)" !batches)
    true (!batches > 0.)

let () =
  Alcotest.run "seminaive"
    [
      ( "tc-differential",
        [
          Alcotest.test_case "naive vs delta fixpoints, 12 seeds" `Slow
            test_tc_differential;
          Alcotest.test_case "batching packs frames" `Quick
            test_tc_batching_packs_frames;
        ] );
      ( "registry-differential",
        [
          Alcotest.test_case "monitor corpus on a live ring" `Slow
            test_registry_differential;
          Alcotest.test_case "chord-buggy agrees with itself" `Slow
            test_registry_buggy_differential;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "loss sweep with batched frames" `Slow
            test_campaign_loss_batched;
        ] );
    ]
