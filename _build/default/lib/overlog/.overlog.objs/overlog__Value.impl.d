lib/overlog/value.ml: Fmt Hashtbl List Stdlib String
