examples/quickstart.ml: Dataflow Fmt List Overlog P2_runtime Store
