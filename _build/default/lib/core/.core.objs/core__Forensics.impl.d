lib/core/forensics.ml: Buffer Dataflow Fmt Hashtbl List Overlog P2_runtime Store String Tuple Value
