test/test_model.ml: Alcotest Chord Dataflow Fmt List Overlog P2_runtime QCheck QCheck_alcotest Store String Tuple Value
