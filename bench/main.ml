(* Benchmark harness: regenerates every measurement in the paper's
   evaluation (§4) — the in-text execution-logging overhead (E0) and
   Figures 4–7 — followed by ablations, a join micro-benchmark for the
   store's secondary-index layer, and Bechamel micro-benchmarks of the
   engine primitives.

   Each paper experiment runs the same workload as the paper on the
   simulated substrate: a 21-node P2 Chord (fix fingers every 10 s,
   stabilize every 5 s, ping every 5 s), the measured node being the
   last to join, three seeded runs per data point (mean, stddev).
   CPU%% and memory are the calibrated proxies described in DESIGN.md
   §3; messages and live tuples are counted directly.  The join
   micro-benchmark is the exception: it times real host CPU seconds,
   because the work-unit cost model charges per rule firing and is
   blind to how fast the firing actually ran.

   Usage:
     main.exe [--only e0,fig4,fig5,fig6,fig7,chord,tracing,stats,analysis,transport,
                      seminaive,scaling,join,micro]
              [--json PATH] [--check-speedup N] [--check-seminaive N]
              [--check-scaling R]

   --json writes every measurement to PATH as machine-readable JSON;
   --check-speedup exits nonzero unless the join micro-benchmark's
   indexed-vs-scan speedup is at least N; --check-seminaive exits
   nonzero unless semi-naive evaluation ships at least N x fewer
   tuples than the naive ablation on the transitive-closure workload;
   --check-scaling exits nonzero unless the sharded engine at 4 shards
   simulates at least R x the node-seconds-per-second of 1 shard on
   the scaling ring (all three are CI regression gates; the scaling
   gate needs a multicore host). *)

let nodes = 21
let settle = 150.  (* virtual seconds before measuring *)
let window = 60.   (* measurement window *)
let seeds = [ 1; 2; 3 ]

(* --- machine-readable results (hand-rolled JSON, no deps) --- *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Num of float
  | Int of int

let buf_json buf j =
  let add = Buffer.add_string buf in
  let str s =
    add "\"";
    String.iter
      (fun c ->
        match c with
        | '"' -> add "\\\""
        | '\\' -> add "\\\\"
        | '\n' -> add "\\n"
        | c when Char.code c < 0x20 -> add (Fmt.str "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    add "\""
  in
  let rec go j =
    match j with
    | Obj kvs ->
        add "{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then add ", ";
            str k;
            add ": ";
            go v)
          kvs;
        add "}"
    | Arr js ->
        add "[";
        List.iteri
          (fun i v ->
            if i > 0 then add ", ";
            go v)
          js;
        add "]"
    | Num f ->
        if Float.is_finite f then add (Fmt.str "%.17g" f)
        else add "null"  (* stddev of a degenerate sample, etc. *)
    | Int i -> add (string_of_int i)
  in
  go j

(* Section results accumulate here as each benchmark runs; the writer
   dumps them in run order at exit. Newest-first with a reverse at the
   dump — appending with [@] re-copies the whole list per section. *)
let results : (string * json) list ref = ref []
let record section j = results := (section, j) :: !results

let write_json path =
  let buf = Buffer.create 4096 in
  buf_json buf
    (Obj
       [
         ( "meta",
           Obj
             [
               ("nodes", Int nodes);
               ("settle_s", Num settle);
               ("window_s", Num window);
               ("seeds", Arr (List.map (fun s -> Int s) seeds));
             ] );
         ("sections", Obj (List.rev !results));
       ]);
  Buffer.add_char buf '\n';
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "@.Wrote %s@." path

(* --- paper-experiment machinery --- *)

let measured_addr (net : Chord.network) = List.nth net.addrs (nodes - 1)

type point = { cpu : float; mem : float; msgs : float; live : float }

let measure engine addr =
  let before = P2_runtime.Engine.snapshot_node engine addr in
  P2_runtime.Engine.run_for engine window;
  let after = P2_runtime.Engine.snapshot_node engine addr in
  {
    cpu = P2_runtime.Engine.cpu_percent ~before ~after;
    mem = P2_runtime.Engine.memory_mb after;
    msgs = float_of_int (after.messages_tx - before.messages_tx);
    live = float_of_int after.live_tuples;
  }

(* Run one configuration under each seed; [setup] installs the
   workload after the ring has settled. *)
let replicate ?(trace = false) setup =
  let points =
    List.map
      (fun seed ->
        let engine = P2_runtime.Engine.create ~seed ~trace () in
        let net = Chord.boot engine nodes in
        P2_runtime.Engine.run_for engine settle;
        let addr = measured_addr net in
        setup engine net addr;
        (* let the workload reach steady state before the window *)
        P2_runtime.Engine.run_for engine 30.;
        measure engine addr)
      seeds
  in
  let stat f =
    let xs = List.map f points in
    (Sim.Metrics.mean xs, Sim.Metrics.stddev xs)
  in
  ( stat (fun p -> p.cpu),
    stat (fun p -> p.mem),
    stat (fun p -> p.msgs),
    stat (fun p -> p.live) )

let pp_ms ppf (m, s) = Fmt.pf ppf "%8.3f ±%6.3f" m s

(* Rows collect per section, newest first; [rows_json] reverses and
   drains them into [record]. *)
let pending_rows : (string * json) list ref = ref []

let row label
    ((cpu, mem, msgs, live) :
      (float * float) * (float * float) * (float * float) * (float * float)) =
  Fmt.pr "  %-12s cpu%%: %a   mem MB: %a   msgs: %a   live: %a@." label pp_ms cpu
    pp_ms mem pp_ms msgs pp_ms live;
  let stat name (m, s) =
    [ (name ^ "_mean", Num m); (name ^ "_stddev", Num s) ]
  in
  pending_rows :=
    ( label,
      Obj
        (stat "cpu_pct" cpu @ stat "mem_mb" mem @ stat "msgs" msgs
       @ stat "live_tuples" live) )
    :: !pending_rows

let rows_json section =
  record section (Obj (List.rev !pending_rows));
  pending_rows := []

let header title expectation =
  Fmt.pr "@.=== %s ===@." title;
  Fmt.pr "  paper: %s@." expectation

(* --- E0: execution logging overhead (§4, in text) --- *)

let bench_e0 () =
  header "E0: execution-logging overhead"
    "CPU +40% (0.98 -> 1.38), memory +66% (8 MB -> 13 MB)";
  let base = replicate ~trace:false (fun _ _ _ -> ()) in
  let traced = replicate ~trace:true (fun _ _ _ -> ()) in
  row "tracing off" base;
  row "tracing on" traced;
  let cpu ((c, _), _, _, _) = c and mem (_, (m, _), _, _) = m in
  Fmt.pr "  measured: CPU x%.2f, memory x%.2f@."
    (cpu traced /. Float.max 1e-9 (cpu base))
    (mem traced /. Float.max 1e-9 (mem base));
  rows_json "e0"

(* --- Figure 4: periodic monitoring rules --- *)

let periodic_rules k =
  String.concat "\n"
    (List.init k (fun i ->
         Fmt.str "benchp%d result@NAddr() :- periodic@NAddr(E, 1)." i))

let bench_fig4 () =
  header "Figure 4: N periodic rules (period 1 s) on the measured node"
    "CPU grows ~linearly to ~4.5% at 250 rules; memory plateaus above baseline";
  List.iter
    (fun k ->
      let r =
        replicate (fun engine _net addr ->
            if k > 0 then P2_runtime.Engine.install engine addr (periodic_rules k))
      in
      row (Fmt.str "%d rules" k) r)
    [ 0; 50; 100; 150; 200; 250 ];
  rows_json "fig4"

(* --- Figure 5: piggy-backed rules with a state lookup --- *)

let piggyback_rules k =
  "benchdrv event@NAddr() :- periodic@NAddr(E, 1).\n"
  ^ String.concat "\n"
      (List.init k (fun i ->
           Fmt.str
             "benchb%d result@NAddr() :- event@NAddr(), bestSucc@NAddr(SID, SAddr)."
             i))

let bench_fig5 () =
  header "Figure 5: N piggybacked rules on one 1 s event, each with a state lookup"
    "CPU grows ~linearly to ~6% at 250 rules (state lookups cost more than timers)";
  List.iter
    (fun k ->
      let r =
        replicate (fun engine _net addr ->
            P2_runtime.Engine.install engine addr (piggyback_rules k))
      in
      row (Fmt.str "%d rules" k) r)
    [ 0; 50; 100; 150; 200; 250 ];
  rows_json "fig5"

(* --- Figure 6: proactive consistency probes --- *)

let bench_fig6 () =
  header "Figure 6: consistency probes at increasing rate (probes/s)"
    "memory & messages grow linearly with rate, CPU superlinearly";
  row "none" (replicate (fun _ _ _ -> ()));
  List.iter
    (fun rate ->
      let r =
        replicate (fun _engine net addr ->
            ignore
              (Core.Consistency.install ~addrs:[ addr ] ~t_probe:(1. /. rate)
                 ~t_tally:10. ~window:10. net))
      in
      row (Fmt.str "%g/s" rate) r)
    [ 1. /. 32.; 0.25; 0.5; 0.75; 1. ];
  rows_json "fig6"

(* --- Figure 7: consistent snapshots --- *)

let bench_fig7 () =
  header "Figure 7: consistent snapshots at increasing rate (snapshots/s)"
    "same metrics as Fig. 6 but much cheaper than probes at equal rates";
  row "none" (replicate (fun _ _ _ -> ()));
  List.iter
    (fun rate ->
      let r =
        replicate (fun _engine net addr ->
            ignore
              (Core.Snapshot.install ~initiator:addr ~t_snap:(1. /. rate)
                 ~lookups:false net))
      in
      row (Fmt.str "%g/s" rate) r)
    [ 1. /. 32.; 0.25; 0.5; 0.75; 1. ];
  rows_json "fig7"

(* --- Ablation: correct vs buggy Chord (DESIGN.md) --- *)

let bench_ablation_buggy_chord () =
  header "Ablation: correct vs buggy Chord under a flapping node"
    "(the buggy variant recycles dead neighbors, §3.1.3)";
  let flapping params label =
    let points =
      List.map
        (fun seed ->
          let engine = P2_runtime.Engine.create ~seed () in
          let net = Chord.boot ~params engine nodes in
          P2_runtime.Engine.run_for engine settle;
          let det = Core.Oscillation.install ~period:20. ~threshold:2 net in
          let victim = List.nth net.addrs (nodes / 2) in
          for i = 0 to 5 do
            let t0 = P2_runtime.Engine.now engine +. (float_of_int i *. 35.) in
            P2_runtime.Engine.at engine ~time:t0 (fun () ->
                P2_runtime.Engine.crash engine victim);
            P2_runtime.Engine.at engine ~time:(t0 +. 20.) (fun () ->
                P2_runtime.Engine.recover engine victim)
          done;
          P2_runtime.Engine.run_for engine 220.;
          ( float_of_int (Core.Alarms.count det.oscill),
            float_of_int (Core.Alarms.count det.repeat) ))
        seeds
    in
    let osc = Sim.Metrics.mean (List.map fst points) in
    let rep = Sim.Metrics.mean (List.map snd points) in
    Fmt.pr "  %-22s oscillations: %7.1f   repeat-oscillators: %7.1f@." label osc rep;
    pending_rows :=
      (label, Obj [ ("oscillations", Num osc); ("repeat_oscillators", Num rep) ])
      :: !pending_rows
  in
  flapping Chord.default_params "remember-deceased";
  flapping Chord.buggy_params "buggy (recycles dead)";
  rows_json "chord_ablation"

(* --- Ablation: tracing granularity --- *)

let bench_ablation_tracing () =
  header "Ablation: tracing on one node vs all nodes"
    "(per-node cost of the introspection machinery)";
  let one_node =
    replicate ~trace:false (fun engine _net addr ->
        Dataflow.Tracer.enable (P2_runtime.Node.tracer (P2_runtime.Engine.node engine addr)))
  in
  let all_nodes = replicate ~trace:true (fun _ _ _ -> ()) in
  row "traced: self" one_node;
  row "traced: all" all_nodes;
  rows_json "tracing_ablation"

(* --- Runtime self-metrics snapshot --- *)

(* Not a timing benchmark: records the landmark node's full metric
   registry after a settled ring, so CI artifacts carry the runtime's
   own vital signs next to the paper-figure numbers (and regressions
   in e.g. agenda depth or message counts are diffable). *)
let bench_stats () =
  header "Runtime self-metrics (p2Stats source)"
    "(registry snapshot of the landmark node after a settled 8-node ring)";
  let engine = P2_runtime.Engine.create ~seed:1 () in
  let net = Chord.boot engine 8 in
  P2_runtime.P2stats.attach ~period:5. engine;
  P2_runtime.Engine.run_for engine 120.;
  let node = P2_runtime.Engine.node engine net.Chord.landmark in
  let samples = Metrics.snapshot (P2_runtime.Node.registry node) in
  List.iter
    (fun (s : Metrics.sample) ->
      match s.name with
      | "machine.agenda.depth_max" | "machine.agenda.executed" | "net.msgs_tx"
      | "store.inserts" | "store.tables" ->
          Fmt.pr "  %-28s %.0f@." s.name s.value
      | _ -> ())
    samples;
  record "stats"
    (Obj (List.map (fun (s : Metrics.sample) -> (s.name, Num s.value)) samples))

(* --- Static analysis cost (the p2ql check / explain passes) --- *)

(* Host microseconds, not the work-unit proxy: the analyzer runs at
   install time on the real CPU, so its price is wall-clock. The
   cascade/cost pass is timed both inside the full analyzer and alone
   ([Analysis.Cascade.build], what [p2ql explain] runs per program). *)
let bench_analysis () =
  header "Static analysis (p2ql check / explain)"
    "(host us per rule over the embedded corpus; install-time budget)";
  let corpus =
    List.map
      (fun (_, libs, src) ->
        (Core.Registry.env_of_libs libs, Overlog.Parser.parse src))
      Core.Registry.embedded
  in
  let rules =
    List.fold_left
      (fun acc (_, p) ->
        acc
        + List.length
            (List.filter (function Overlog.Ast.Rule _ -> true | _ -> false) p))
      0 corpus
  in
  let time f =
    f ();  (* warm *)
    let reps = 20 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let full =
    time (fun () -> List.iter (fun (env, p) -> ignore (Analysis.analyze ~env p)) corpus)
  in
  let cascade =
    time (fun () ->
        List.iter (fun (env, p) -> ignore (Analysis.Cascade.build ~env p)) corpus)
  in
  let per_rule t = t *. 1e6 /. float_of_int rules in
  Fmt.pr "  programs: %d   rules: %d@." (List.length corpus) rules;
  Fmt.pr "  full analyze:   %8.1f us total   %6.2f us/rule@." (full *. 1e6)
    (per_rule full);
  Fmt.pr "  cascade alone:  %8.1f us total   %6.2f us/rule@." (cascade *. 1e6)
    (per_rule cascade);
  record "analysis"
    (Obj
       [
         ("programs", Int (List.length corpus));
         ("rules", Int rules);
         ("analyze_total_us", Num (full *. 1e6));
         ("analyze_us_per_rule", Num (per_rule full));
         ("cascade_total_us", Num (cascade *. 1e6));
         ("cascade_us_per_rule", Num (per_rule cascade));
       ])

(* --- Reliable transport under loss --- *)

(* The PR-5 reliability ablation: an 8-node ring booted under uniform
   loss, transport on vs off, same seed and horizon. Retransmissions
   and suppressed duplicates are summed over every node's endpoint;
   the wall-clock is real host seconds for the settle (the transport's
   timer traffic is the overhead being priced). *)
let bench_transport () =
  header "Reliable transport under loss"
    "(8-node ring, 240 s settle; ring converges at 20 % loss only with \
     ack/retransmit on)";
  let arm ~reliable ~loss =
    let t0 = Sys.time () in
    let engine = P2_runtime.Engine.create ~seed:1 ~loss_rate:loss ~reliable () in
    let net = Chord.boot engine 8 in
    P2_runtime.Engine.run_for engine 240.;
    let wall = Sys.time () -. t0 in
    let retx, dups =
      List.fold_left
        (fun (r, d) addr ->
          let tr = P2_runtime.Engine.transport engine addr in
          ( r + P2_runtime.Transport.retransmit_count tr,
            d + P2_runtime.Transport.duplicate_count tr ))
        (0, 0) net.Chord.addrs
    in
    let ok = Chord.ring_correct net in
    Fmt.pr
      "  %-9s loss=%3.0f%%  retransmits=%-6d duplicates=%-5d ring_correct=%-5b \
       wall=%6.2fs@."
      (if reliable then "reliable" else "ablated")
      (100. *. loss) retx dups ok wall;
    Obj
      [
        ("reliable", Int (if reliable then 1 else 0));
        ("loss", Num loss);
        ("retransmits", Int retx);
        ("duplicates", Int dups);
        ("ring_correct", Int (if ok then 1 else 0));
        ("wall_s", Num wall);
      ]
  in
  (* bind in display order: list elements would evaluate right-to-left *)
  let r0 = arm ~reliable:true ~loss:0. in
  let r20 = arm ~reliable:true ~loss:0.2 in
  let a0 = arm ~reliable:false ~loss:0. in
  let a20 = arm ~reliable:false ~loss:0.2 in
  record "transport" (Arr [ r0; r20; a0; a20 ])

(* --- Semi-naive vs naive evaluation on transitive closure --- *)

(* The PR-6 evaluation ablation: a distributed transitive closure over
   a fixed digraph (Hamiltonian cycle plus skip-3 chords), edges
   injected staggered so every arrival is an incremental delta. Three
   arms, same seed and schedule: naive full-body re-enumeration,
   semi-naive delta evaluation, and semi-naive with cross-node delta
   batching. Messages are logical tuple shipments (counted at emit, so
   framing cannot hide them); frames are transport.tx.frames summed
   over all endpoints; ns/event is real host time over injected edges
   (the work-unit model cannot see evaluation-strategy savings). The
   [--check-seminaive N] gate fails unless naive ships at least N x
   the tuples semi-naive does. *)

let tc_nodes = 10

let tc_program =
  {|materialize(link, infinity, 1024, keys(1, 2)).
materialize(path, infinity, 65536, keys(1, 2)).
p1 path@T(S) :- link@S(T).
p2 path@T(S) :- link@M(T), path@M(S).|}

let tc_edges =
  List.init tc_nodes (fun i -> (i, (i + 1) mod tc_nodes))
  @ List.init tc_nodes (fun i -> (i, (i + 3) mod tc_nodes))

let bench_seminaive check =
  header "Semi-naive delta evaluation vs naive re-enumeration"
    (Fmt.str
       "(%d-node transitive closure, %d edges; semi-naive must ship strictly \
        fewer tuples, batching strictly fewer frames)"
       tc_nodes (List.length tc_edges));
  let arm ~label ~mode =
    let t0 = Sys.time () in
    let engine = P2_runtime.Engine.create ~seed:1 () in
    (match mode with
    | `Naive -> P2_runtime.Engine.set_seminaive engine false
    | `Semi -> ()
    | `Semi_batched -> P2_runtime.Engine.set_seminaive engine true);
    for i = 0 to tc_nodes - 1 do
      ignore (P2_runtime.Engine.add_node engine (Fmt.str "n%d" i))
    done;
    P2_runtime.Engine.install_all engine tc_program;
    List.iteri
      (fun i (src, dst) ->
        P2_runtime.Engine.at engine
          ~time:(1.0 +. (0.5 *. float_of_int i))
          (fun () ->
            ignore
            @@ P2_runtime.Engine.inject engine (Fmt.str "n%d" src) "link"
                 [ Overlog.Value.VAddr (Fmt.str "n%d" dst) ]))
      tc_edges;
    P2_runtime.Engine.run_until engine
      (60. +. (0.5 *. float_of_int (List.length tc_edges)));
    let wall = Sys.time () -. t0 in
    let addrs = P2_runtime.Engine.addrs engine in
    let msgs =
      List.fold_left
        (fun acc a ->
          acc + (P2_runtime.Engine.snapshot_node engine a).P2_runtime.Engine.messages_tx)
        0 addrs
    in
    let metric name =
      List.fold_left
        (fun acc a ->
          let reg = P2_runtime.Node.registry (P2_runtime.Engine.node engine a) in
          acc +. Option.value ~default:0. (Metrics.value reg name))
        0. addrs
    in
    let frames = int_of_float (metric "transport.tx.frames") in
    let batches = int_of_float (metric "transport.tx.batches") in
    let ns_per_event = wall /. float_of_int (List.length tc_edges) *. 1e9 in
    Fmt.pr "  %-12s msgs=%-5d frames=%-5d batches=%-4d %10.0f ns/event@." label
      msgs frames batches ns_per_event;
    ( msgs,
      ( label,
        Obj
          [
            ("msgs", Int msgs);
            ("frames", Int frames);
            ("batches", Int batches);
            ("ns_per_event", Num ns_per_event);
          ] ) )
  in
  let naive_msgs, naive_row = arm ~label:"naive" ~mode:`Naive in
  let semi_msgs, semi_row = arm ~label:"semi" ~mode:`Semi in
  let _, batch_row = arm ~label:"semi+batch" ~mode:`Semi_batched in
  let reduction = float_of_int naive_msgs /. float_of_int (max 1 semi_msgs) in
  Fmt.pr "  message reduction: x%.2f@." reduction;
  (* The same batching toggle priced on the real protocol: a live
     Chord ring's maintenance traffic (stabilize/ping/fix-fingers),
     batching on vs off, same seed and horizon. Messages are logical
     shipments and must agree exactly — batching only packs frames. *)
  let chord_arm ~label ~batched =
    let engine = P2_runtime.Engine.create ~seed:1 () in
    if batched then P2_runtime.Engine.set_seminaive engine true;
    let net = Chord.boot engine 8 in
    P2_runtime.Engine.run_for engine 240.;
    let addrs = P2_runtime.Engine.addrs engine in
    let msgs =
      List.fold_left
        (fun acc a ->
          acc + (P2_runtime.Engine.snapshot_node engine a).P2_runtime.Engine.messages_tx)
        0 addrs
    in
    let frames =
      int_of_float
        (List.fold_left
           (fun acc a ->
             let reg = P2_runtime.Node.registry (P2_runtime.Engine.node engine a) in
             acc
             +. Option.value ~default:0.
                  (Metrics.value reg "transport.tx.frames"))
           0. addrs)
    in
    let ok = Chord.ring_correct net in
    Fmt.pr "  chord %-9s msgs=%-6d frames=%-6d ring_correct=%b@." label msgs
      frames ok;
    ( msgs,
      ( label,
        Obj
          [
            ("msgs", Int msgs);
            ("frames", Int frames);
            ("ring_correct", Int (if ok then 1 else 0));
          ] ) )
  in
  let plain_msgs, chord_plain = chord_arm ~label:"plain" ~batched:false in
  let batched_msgs, chord_batched = chord_arm ~label:"batched" ~batched:true in
  if plain_msgs <> batched_msgs then
    Fmt.epr "  WARNING: chord batching changed logical shipments (%d vs %d)@."
      plain_msgs batched_msgs;
  record "seminaive"
    (Obj
       [
         ("nodes", Int tc_nodes);
         ("edges", Int (List.length tc_edges));
         naive_row;
         semi_row;
         batch_row;
         ("msg_reduction", Num reduction);
         ("chord", Obj [ chord_plain; chord_batched ]);
       ]);
  match check with
  | Some floor when reduction < floor ->
      Fmt.epr "FAIL: semi-naive message reduction x%.2f below required x%.1f@."
        reduction floor;
      exit 1
  | Some floor ->
      Fmt.pr "  check: x%.2f >= required x%.1f — ok@." reduction floor
  | None -> ()

(* --- Scaling: the multicore sharded engine --- *)

(* The PR-7 scaling benchmark: a 256-node Chord ring booted and run
   for 60 virtual seconds under each execution engine, same seed.
   Rate is node-virtual-seconds simulated per wall second
   (N x horizon / wall); allocs/event is the [Gc.minor_words] delta
   over [Engine.events_handled] — the allocation budget of the tuple
   hot path. Shard counts >= 1 are bit-for-bit deterministic, so their
   message totals must agree exactly; the sequential loop (shards = 0)
   is the allocation baseline. The [--check-scaling R] gate fails
   unless 4 shards reach at least R x the 1-shard rate — meaningful
   only on a multicore host (a single-core pool runs every shard job
   on the caller, so the gate would price pure barrier overhead). *)

let scaling_nodes = 256
let scaling_horizon = 60.

(* Coarser than the 10 ms default: fewer, fatter rounds amortize the
   barrier without giving up cross-shard-count determinism. *)
let scaling_quantum = 0.05

(* Allocation budget of the sequential hot path at the growth seed
   (commit b004cbc), measured with this arm's exact workload before
   the match/probe/group-key rewrites — kept so the JSON carries the
   before/after pair for the allocs-per-event regression story. *)
let seed_allocs_per_event = 878.4

let bench_scaling check =
  header "Scaling: sharded engine on a 256-node Chord ring"
    (Fmt.str
       "(%.0f virtual s, quantum %.0f ms; rate = node-virtual-seconds per \
        wall second)"
       scaling_horizon (1000. *. scaling_quantum));
  let arm shards =
    Gc.compact ();
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let engine = P2_runtime.Engine.create ~seed:1 () in
    if shards > 0 then
      P2_runtime.Engine.set_shards ~quantum:scaling_quantum engine shards;
    let net = Chord.boot engine scaling_nodes in
    P2_runtime.Engine.run_for engine scaling_horizon;
    let wall = Unix.gettimeofday () -. t0 in
    let words = Gc.minor_words () -. w0 in
    let events = P2_runtime.Engine.events_handled engine in
    let msgs =
      List.fold_left
        (fun acc a ->
          acc + (P2_runtime.Engine.snapshot_node engine a).P2_runtime.Engine.messages_tx)
        0 net.Chord.addrs
    in
    let rate = float_of_int scaling_nodes *. scaling_horizon /. wall in
    let allocs = words /. float_of_int (max 1 events) in
    let ok = Chord.ring_correct net in
    Fmt.pr
      "  shards=%d  %8.0f node-s/s  wall=%6.2fs  events=%-8d allocs/event=%6.1f \
       msgs=%-7d ring_correct=%b@."
      shards rate wall events allocs msgs ok;
    pending_rows :=
      ( Fmt.str "shards=%d" shards,
        Obj
          [
            ("rate_node_s_per_s", Num rate);
            ("wall_s", Num wall);
            ("events", Int events);
            ("allocs_per_event", Num allocs);
            ("msgs", Int msgs);
            ("ring_correct", Int (if ok then 1 else 0));
          ] )
      :: !pending_rows;
    (rate, allocs, msgs)
  in
  let _, seq_allocs, _ = arm 0 in
  let rate1, _, msgs1 = arm 1 in
  let _, _, msgs2 = arm 2 in
  let rate4, _, msgs4 = arm 4 in
  if msgs1 <> msgs2 || msgs1 <> msgs4 then begin
    Fmt.epr
      "FAIL: sharded runs disagree on messages (1:%d 2:%d 4:%d) — determinism \
       broken@."
      msgs1 msgs2 msgs4;
    exit 1
  end;
  let speedup = rate4 /. Float.max 1e-9 rate1 in
  Fmt.pr "  pool workers: %d   shards=4 vs shards=1 speedup: x%.2f@."
    (P2_runtime.Pool.size ()) speedup;
  if seed_allocs_per_event > 0. then
    Fmt.pr "  allocs/event: %.1f (seed baseline %.1f, %+.1f%%)@." seq_allocs
      seed_allocs_per_event
      (100. *. (seq_allocs -. seed_allocs_per_event) /. seed_allocs_per_event);
  pending_rows :=
    ( "summary",
      Obj
        [
          ("speedup_4v1", Num speedup);
          ("pool_workers", Int (P2_runtime.Pool.size ()));
          ("seed_allocs_per_event", Num seed_allocs_per_event);
        ] )
    :: !pending_rows;
  rows_json "scaling";
  match check with
  | Some floor when speedup < floor ->
      Fmt.epr "FAIL: scaling speedup x%.2f below required x%.1f@." speedup floor;
      exit 1
  | Some floor -> Fmt.pr "  check: x%.2f >= required x%.1f — ok@." speedup floor
  | None -> ()

(* --- Join micro-benchmark: indexed probes vs full scans --- *)

(* A single node holds a 1000-row materialized table; each injected
   event joins against it with both non-location key positions bound,
   matching exactly one row.  The indexed run uses the secondary-index
   probe path; the ablation flips [Machine.set_use_probe] off, forcing
   the pre-index full-scan path through the *same* machine code — so
   any difference is attributable to the index.  Local derivation is
   synchronous, so wall-timing the inject loop captures the full join.
   Host CPU seconds ([Sys.time]), because the simulator's work-unit
   cost model charges per firing and cannot see the speedup. *)

let join_rows = 1000
let join_reps = 3

let bench_join check_speedup =
  header "Join micro-benchmark: indexed probe vs full scan"
    (Fmt.str "(%d-row table, bound-key probes; ablation via use_probe)" join_rows);
  let setup () =
    let engine = P2_runtime.Engine.create ~seed:11 () in
    let node = P2_runtime.Engine.add_node engine "a" in
    P2_runtime.Engine.install engine "a"
      "materialize(big, infinity, 2048, keys(1,2)).\n\
       materialize(out, infinity, 2048, keys(1,2,3)).\n\
       rj out@N(X, Y) :- ev@N(X), big@N(X, Y).";
    for i = 0 to join_rows - 1 do
      ignore @@ P2_runtime.Engine.inject engine "a" "big"
        [ Overlog.Value.VInt i; Overlog.Value.VInt (i * 7) ]
    done;
    (engine, node)
  in
  let time_run ~use_probe ~events =
    let engine, node = setup () in
    Dataflow.Machine.set_use_probe (P2_runtime.Node.machine node) use_probe;
    (* warm the path (index creation / first allocation) untimed *)
    ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Overlog.Value.VInt 0 ];
    let t0 = Sys.time () in
    for i = 1 to events do
      ignore @@ P2_runtime.Engine.inject engine "a" "ev"
        [ Overlog.Value.VInt (i mod join_rows) ]
    done;
    (Sys.time () -. t0) /. float_of_int events
  in
  (* more indexed events so the measured interval is well above the
     [Sys.time] granularity *)
  let indexed_events = 100_000 and scan_events = 2_000 in
  let reps f = List.init join_reps (fun _ -> f ()) in
  let indexed = reps (fun () -> time_run ~use_probe:true ~events:indexed_events) in
  let scanned = reps (fun () -> time_run ~use_probe:false ~events:scan_events) in
  let mean = Sim.Metrics.mean and stddev = Sim.Metrics.stddev in
  let speedup = mean scanned /. Float.max 1e-12 (mean indexed) in
  Fmt.pr "  indexed probe: %10.0f ns/event ±%8.0f  (%d events x%d)@."
    (mean indexed *. 1e9) (stddev indexed *. 1e9) indexed_events join_reps;
  Fmt.pr "  full scan:     %10.0f ns/event ±%8.0f  (%d events x%d)@."
    (mean scanned *. 1e9) (stddev scanned *. 1e9) scan_events join_reps;
  Fmt.pr "  speedup: x%.1f@." speedup;
  let run name xs events =
    ( name,
      Obj
        [
          ("ns_per_event_mean", Num (mean xs *. 1e9));
          ("ns_per_event_stddev", Num (stddev xs *. 1e9));
          ("events", Int events);
          ("reps", Int join_reps);
        ] )
  in
  record "join_microbench"
    (Obj
       [
         ("table_rows", Int join_rows);
         run "indexed" indexed indexed_events;
         run "scan" scanned scan_events;
         ("speedup", Num speedup);
       ]);
  match check_speedup with
  | Some floor when speedup < floor ->
      Fmt.epr "FAIL: join speedup x%.1f below required x%.1f@." speedup floor;
      exit 1
  | Some floor -> Fmt.pr "  check: x%.1f >= required x%.1f — ok@." speedup floor
  | None -> ()

(* --- Bechamel micro-benchmarks of the engine primitives --- *)

let microbenches () =
  let open Bechamel in
  let open Toolkit in
  Fmt.pr "@.=== Micro-benchmarks (Bechamel, ns/op) ===@.";
  let chord_text = Chord.program Chord.default_params in
  let parse_test =
    Test.make ~name:"parse-chord-program"
      (Staged.stage (fun () -> ignore (Overlog.Parser.parse chord_text)))
  in
  let eval_test =
    let env =
      Overlog.Eval.Env.bind
        (Overlog.Eval.Env.bind Overlog.Eval.Env.empty "K" (Overlog.Value.VId 50))
        "F" (Overlog.Value.VId 7)
    in
    let e =
      match
        Overlog.Parser.parse "r x@N(D) :- e@N(K, F), D := K - F - 1, D in (1, 100]."
      with
      | [ Overlog.Ast.Rule { rbody = [ _; Overlog.Ast.Assign (_, e); _ ]; _ } ] -> e
      | _ -> assert false
    in
    Test.make ~name:"eval-ring-expression"
      (Staged.stage (fun () ->
           ignore (Overlog.Eval.eval Overlog.Eval.null_context env e)))
  in
  let table_test =
    let table = Store.Table.create ~keys:[ 1; 2 ] ~max_size:1024 "bench" in
    let i = ref 0 in
    Test.make ~name:"table-insert-replace"
      (Staged.stage (fun () ->
           incr i;
           ignore
             (Store.Table.insert table ~now:0.
                (Overlog.Tuple.make "bench"
                   [ Overlog.Value.VAddr "n"; Overlog.Value.VInt (!i mod 512) ]))))
  in
  (* store-level view of the join speedup: one indexed probe vs one
     naive scan of the same 1024-row table *)
  let probe_table =
    let table = Store.Table.create ~keys:[ 1; 2 ] "bench2" in
    for i = 0 to 1023 do
      ignore
        (Store.Table.insert table ~now:0.
           (Overlog.Tuple.make "bench2"
              [ Overlog.Value.VAddr "n"; Overlog.Value.VInt i; Overlog.Value.VInt (i * 3) ]))
    done;
    table
  in
  let probe_test =
    let i = ref 0 in
    Test.make ~name:"probe-1k-indexed"
      (Staged.stage (fun () ->
           incr i;
           ignore
             (Store.Table.probe probe_table ~now:0. ~positions:[ 2 ]
                ~values:[ Overlog.Value.VInt (!i mod 1024) ])))
  in
  let scan_test =
    let i = ref 0 in
    Test.make ~name:"scan-1k-naive"
      (Staged.stage (fun () ->
           incr i;
           let want = Overlog.Value.VInt (!i mod 1024) in
           ignore
             (List.filter
                (fun tu -> Overlog.Value.equal (Overlog.Tuple.field tu 2) want)
                (Store.Table.tuples probe_table ~now:0.))))
  in
  let route_test =
    let engine = P2_runtime.Engine.create ~seed:7 () in
    ignore (P2_runtime.Engine.add_node engine "a");
    P2_runtime.Engine.install engine "a"
      "materialize(t, infinity, 1024, keys(1,2)).\nr t@N(X) :- ev@N(X).";
    let i = ref 0 in
    Test.make ~name:"inject-derive-insert"
      (Staged.stage (fun () ->
           incr i;
           ignore @@ P2_runtime.Engine.inject engine "a" "ev"
             [ Overlog.Value.VInt (!i mod 512) ]))
  in
  (* the group-key hot path: each injected event fires an aggregate
     over 512 rows in 32 groups, so every op hashes 512 group keys
     (PR 7 replaced string-concatenated keys with Value.hash_values) *)
  let aggregate_test =
    let engine = P2_runtime.Engine.create ~seed:7 () in
    ignore (P2_runtime.Engine.add_node engine "a");
    P2_runtime.Engine.install engine "a"
      "materialize(g, infinity, 1024, keys(1,2,3)).\n\
       ra out@N(G, count<*>) :- ev@N(), g@N(G, X).";
    for i = 0 to 511 do
      ignore @@ P2_runtime.Engine.inject engine "a" "g"
        [ Overlog.Value.VInt (i mod 32); Overlog.Value.VInt i ]
    done;
    Test.make ~name:"aggregate-512rows-32groups"
      (Staged.stage (fun () ->
           ignore @@ P2_runtime.Engine.inject engine "a" "ev" []))
  in
  let grouped =
    Test.make_grouped ~name:"p2"
      [
        parse_test; eval_test; table_test; probe_test; scan_test; route_test;
        aggregate_test;
      ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates =
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> (name, est) :: acc
        | _ -> acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, est) -> Fmt.pr "  %-28s %12.1f ns/op@." name est) estimates;
  record "micro"
    (Obj (List.map (fun (name, est) -> (name, Num est)) estimates))

(* --- forensics: the flight recorder (PR 9, docs/FORENSICS.md) --- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "p2bench_flight_%d_%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* Raw segment-log write throughput: how fast trace records reach the
   disk, independent of the engine. Representative record shapes
   (a ruleExec row and a medium tuple), default 4 MiB segments. *)
let bench_seglog_throughput () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let open Overlog in
  let w = Seglog.create ~dir () in
  let rule_exec i =
    Tuple.make ~id:i "ruleExec"
      [ Value.VAddr "n12"; Value.VStr "sb5"; Value.VInt i; Value.VInt (i + 1);
        Value.VFloat 101.25; Value.VFloat 101.3125; Value.VBool true ]
  in
  let total = 200_000 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to total do
    Seglog.append w ~stamp:(float_of_int i *. 1e-3) ~delete:false (rule_exec i)
  done;
  Seglog.close w;
  let dt = Unix.gettimeofday () -. t0 in
  let stats = Seglog.stats w in
  let records_per_s = float_of_int total /. dt in
  let mb_per_s = float_of_int stats.Seglog.bytes_written /. dt /. 1048576. in
  Fmt.pr "  append+flush: %d records, %.1f MB in %.3fs -> %.0f records/s, %.1f MB/s@."
    total
    (float_of_int stats.Seglog.bytes_written /. 1048576.)
    dt records_per_s mb_per_s;
  Obj
    [
      ("records", Int total);
      ("bytes", Int stats.Seglog.bytes_written);
      ("segments", Int stats.Seglog.segments_sealed);
      ("seconds", Num dt);
      ("records_per_s", Num records_per_s);
      ("mb_per_s", Num mb_per_s);
    ]

(* One traced Chord run per seed per arm; the spill arm writes the
   flight-recorder log and keeps only the shrunk in-RAM window. *)
let forensics_arm ~spill ~log_root seed =
  let engine = P2_runtime.Engine.create ~seed ~trace:true () in
  if spill then
    P2_runtime.Engine.set_trace_log engine
      (Filename.concat log_root (Fmt.str "seed%d" seed));
  let net = Chord.boot engine nodes in
  P2_runtime.Engine.run_for engine settle;
  let addr = measured_addr net in
  let p = measure engine addr in
  P2_runtime.Engine.close_trace_logs engine;
  (p, addr)

let bench_forensics () =
  header "forensics: flight recorder"
    "disk spill trades the tracer's in-RAM window for an on-disk log \
     replayable long after the fact (paper §3.4)";
  let write = bench_seglog_throughput () in
  let log_root = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf log_root) @@ fun () ->
  let stat f points = Sim.Metrics.(mean (List.map f points), stddev (List.map f points)) in
  let in_ram =
    List.map (fun s -> fst (forensics_arm ~spill:false ~log_root s)) seeds
  in
  let spill =
    List.map (fun s -> fst (forensics_arm ~spill:true ~log_root s)) seeds
  in
  let arm label points =
    row label (stat (fun p -> p.cpu) points, stat (fun p -> p.mem) points,
               stat (fun p -> p.msgs) points, stat (fun p -> p.live) points)
  in
  arm "in-RAM window" in_ram;
  arm "disk spill" spill;
  let mem points = Sim.Metrics.mean (List.map (fun p -> p.mem) points) in
  let drop_pct = 100. *. (1. -. (mem spill /. Float.max 1e-9 (mem in_ram))) in
  (* on-disk footprint + integrity of what one arm's runs recorded *)
  let log_records, log_bytes =
    List.fold_left
      (fun (recs, bytes) seed_dir ->
        List.fold_left
          (fun (r, b) addr ->
            List.fold_left
              (fun (r, b) (s : Seglog.segment) -> (r + s.records, b + s.bytes))
              (r, b)
              (Seglog.segments ~dir:(Filename.concat seed_dir addr)))
          (recs, bytes) (Core.Replay.node_dirs seed_dir))
      (0, 0)
      (List.map (fun s -> Filename.concat log_root (Fmt.str "seed%d" s)) seeds)
  in
  Fmt.pr "  resident memory: %.2f -> %.2f MB (%.0f%% drop); log: %d records, %.1f MB@."
    (mem in_ram) (mem spill) drop_pct log_records
    (float_of_int log_bytes /. 1048576.);
  (* time-travel replay of one recorded run, full range *)
  let replay_dir = Filename.concat log_root (Fmt.str "seed%d" (List.hd seeds)) in
  let t0 = Unix.gettimeofday () in
  let replayed = Core.Replay.load ~dir:replay_dir () in
  let replay_s = Unix.gettimeofday () -. t0 in
  let restored =
    List.fold_left
      (fun a r -> a + r.Core.Replay.restored)
      0 replayed.Core.Replay.reports
  in
  Fmt.pr "  replay: %d records -> fresh dataflow in %.3fs (%.0f records/s)@."
    restored replay_s
    (float_of_int restored /. Float.max 1e-9 replay_s);
  rows_json "forensics_resident";
  record "forensics"
    (Obj
       [
         ("write_throughput", write);
         ("mem_in_ram_mb", Num (mem in_ram));
         ("mem_spill_mb", Num (mem spill));
         ("mem_drop_pct", Num drop_pct);
         ("log_records", Int log_records);
         ("log_bytes", Int log_bytes);
         ("replay_records", Int restored);
         ("replay_seconds", Num replay_s);
         ( "replay_records_per_s",
           Num (float_of_int restored /. Float.max 1e-9 replay_s) );
       ])

(* --- recovery: durable checkpoints + crash-restart (PR 10) --- *)

(* Both arms of the recovery-time differential (lib/harness/recovery):
   the same seeded 21-node crash + partition scenario, once with
   durable checkpoints armed and once cold. The checkpoint stream cost
   is the overhead side of the trade; the tick gap is the payoff. *)
let bench_recovery check =
  header "recovery: durable checkpoints + crash-restart"
    "restoring hard state from the newest snapshot must beat a cold \
     rejoin through the landmark to ring convergence (docs/OPERATIONS.md)";
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let run arm = Harness.Recovery.measure ~deadline:60. ~dir arm in
  let ck = run Harness.Recovery.Checkpointed in
  let cold = run Harness.Recovery.Cold in
  let ticks r = Option.value r.Harness.Recovery.ticks_to_converge ~default:(-1) in
  let write_s = float_of_int ck.Harness.Recovery.ckpt_write_ns /. 1e9 in
  let mb = float_of_int ck.Harness.Recovery.ckpt_bytes /. 1048576. in
  let mb_per_s = mb /. Float.max 1e-9 write_s in
  let snaps_per_s =
    float_of_int ck.Harness.Recovery.ckpt_snapshots /. Float.max 1e-9 write_s
  in
  Fmt.pr
    "  checkpoint writes: %d snapshots, %.2f MB in %.3fs -> %.0f snapshots/s, \
     %.1f MB/s@."
    ck.Harness.Recovery.ckpt_snapshots mb write_s snaps_per_s mb_per_s;
  Fmt.pr
    "  restart-to-convergence: checkpointed %d tick(s) vs cold rejoin %d \
     tick(s) (probe %gs, %d restored row(s))@."
    (ticks ck) (ticks cold) ck.Harness.Recovery.probe_period
    ck.Harness.Recovery.restored_rows;
  record "recovery"
    (Obj
       [
         ("ckpt_snapshots", Int ck.Harness.Recovery.ckpt_snapshots);
         ("ckpt_bytes", Int ck.Harness.Recovery.ckpt_bytes);
         ("ckpt_write_seconds", Num write_s);
         ("ckpt_mb_per_s", Num mb_per_s);
         ("restored_rows", Int ck.Harness.Recovery.restored_rows);
         ("ticks_checkpointed", Int (ticks ck));
         ("ticks_cold", Int (ticks cold));
         ("probe_period_s", Num ck.Harness.Recovery.probe_period);
       ]);
  if check then
    let strict =
      ck.Harness.Recovery.recovered_from_checkpoint
      &&
      match
        ( ck.Harness.Recovery.ticks_to_converge,
          cold.Harness.Recovery.ticks_to_converge )
      with
      | Some fast, Some slow -> fast < slow
      | _ -> false
    in
    if strict then
      Fmt.pr "  recovery gate passed: %d < %d@." (ticks ck) (ticks cold)
    else begin
      Fmt.epr
        "FAIL: checkpointed restart (%d ticks) not strictly faster than cold \
         rejoin (%d ticks)@."
        (ticks ck) (ticks cold);
      exit 1
    end

(* --- driver --- *)

let all_sections =
  [
    ("e0", bench_e0);
    ("fig4", bench_fig4);
    ("fig5", bench_fig5);
    ("fig6", bench_fig6);
    ("fig7", bench_fig7);
    ("chord", bench_ablation_buggy_chord);
    ("tracing", bench_ablation_tracing);
    ("stats", bench_stats);
    ("analysis", bench_analysis);
    ("transport", bench_transport);
    ("forensics", bench_forensics);
    ("micro", microbenches);
  ]

let () =
  let json_path = ref "" in
  let only = ref "" in
  let check = ref 0. in
  let check_semi = ref 0. in
  let check_scaling = ref 0. in
  let check_recovery = ref false in
  let usage =
    "main.exe [--only SECTIONS] [--json PATH] [--check-speedup N] \
     [--check-seminaive N] [--check-scaling R] [--check-recovery]"
  in
  Arg.parse
    [
      ( "--only",
        Arg.Set_string only,
        "SECTIONS  comma-separated subset of: "
        ^ String.concat ","
            (List.map fst all_sections
            @ [ "seminaive"; "scaling"; "join"; "recovery" ]) );
      ("--json", Arg.Set_string json_path, "PATH  write results as JSON");
      ( "--check-speedup",
        Arg.Set_float check,
        "N  fail unless the join micro-benchmark speedup is >= N" );
      ( "--check-seminaive",
        Arg.Set_float check_semi,
        "N  fail unless semi-naive's message reduction over naive is >= N" );
      ( "--check-scaling",
        Arg.Set_float check_scaling,
        "R  fail unless 4 shards reach R x the 1-shard simulation rate" );
      ( "--check-recovery",
        Arg.Set check_recovery,
        "  fail unless the checkpointed restart converges in strictly fewer \
         ticks than the cold rejoin" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  let wanted = String.split_on_char ',' !only in
  let enabled name = !only = "" || List.mem name wanted in
  List.iter
    (fun name ->
      if
        not
          (List.mem_assoc name all_sections
          || name = "join" || name = "seminaive" || name = "scaling"
          || name = "recovery" || name = "")
      then (
        Fmt.epr "unknown section %s@." name;
        exit 2))
    (if !only = "" then [] else wanted);
  Fmt.pr "P2 monitoring & forensics — paper evaluation reproduction@.";
  Fmt.pr "(%d-node Chord, settle %.0fs, window %.0fs, seeds %a; see EXPERIMENTS.md)@."
    nodes settle window
    Fmt.(list ~sep:(any ",") int)
    seeds;
  List.iter (fun (name, f) -> if enabled name then f ()) all_sections;
  if enabled "seminaive" then
    bench_seminaive (if !check_semi > 0. then Some !check_semi else None);
  if enabled "scaling" then
    bench_scaling (if !check_scaling > 0. then Some !check_scaling else None);
  if enabled "recovery" then bench_recovery !check_recovery;
  if enabled "join" then
    bench_join (if !check > 0. then Some !check else None);
  if !json_path <> "" then write_json !json_path
