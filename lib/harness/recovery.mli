(** Recovery-time measurement: the differential experiment behind the
    crash-restart acceptance criterion (ISSUE 10) and the bench's
    [recovery] section.

    One [measure] call runs a complete seeded scenario on a fresh
    engine: boot an [nodes]-ring, settle, crash a victim while
    partitioning a bystander group (the ring must re-converge through
    leftover damage, not a pristine network), heal the partition,
    restart the victim, then probe {!Chord.ring_correct} on a fixed
    cadence until it holds for [stable_for] consecutive probes.

    The two arms differ only in whether durable checkpoints were
    enabled before boot: [Checkpointed] restarts restore hard state
    from the newest snapshot, [Cold] restarts rejoin through the
    landmark. Everything else — seed, schedule, probe cadence — is
    identical, so the tick counts are directly comparable, and the
    oracle requirement is [Checkpointed] strictly fewer ticks than
    [Cold]. *)

type arm = Checkpointed | Cold

type result = {
  arm : arm;
  recovered_from_checkpoint : bool;
      (** what {!P2_runtime.Engine.restart} actually reported — a
          [Checkpointed] arm measurement is only valid when true *)
  restored_rows : int;  (** rows re-minted from the snapshot (0 cold) *)
  restart_at : float;  (** virtual time of the restart *)
  ticks_to_converge : int option;
      (** probe ticks from restart to the first probe of the stable
          streak; [None] when the ring never stabilized before the
          deadline *)
  probe_period : float;  (** virtual seconds between probes *)
  ckpt_bytes : int;  (** checkpoint bytes written across the run *)
  ckpt_snapshots : int;  (** snapshot files written across the run *)
  ckpt_write_ns : int;  (** wall time spent inside snapshot writes *)
}

(** Run one arm of the experiment. [dir] is the checkpoint root for
    the [Checkpointed] arm (wiped first, so repeated measurements are
    deterministic); the [Cold] arm never touches it. [deadline] is
    the probe window length in virtual seconds after the restart. *)
val measure :
  ?nodes:int ->
  ?seed:int ->
  ?shards:int ->
  ?sanitize:bool ->
  ?settle:float ->
  ?probe_period:float ->
  ?stable_for:int ->
  ?deadline:float ->
  ?checkpoint_interval:float ->
  dir:string ->
  arm ->
  result

val pp_result : result Fmt.t
