lib/overlog/parser.mli: Ast
