(** Timed fault schedules for deterministic injection campaigns.

    A plan is a list of (time, action) pairs relative to the start of
    the fault window, plus the window length ([horizon]). Plans are
    generated from a {!Sim.Rng} stream so a campaign is a pure function
    of its seed, and serialize to a line-oriented text format that
    replays a shrunk schedule bit-for-bit. *)

type action =
  | Crash of string
  | Recover of string
  | Cut_link of string * string
  | Heal_link of string * string
  | Set_loss of float  (** network-wide loss-rate ramp *)
  | Set_latency of float * float  (** base, jitter *)
  | Join of string  (** churn: a fresh node joins the ring *)
  | Leave of string  (** churn: fail-stop departure, never returns *)
  | Corrupt_succ of string * string
      (** planted bug hook: pin [node]'s best successor to [target],
          re-asserted on every change — the invariant violation the
          oracle must catch. Never produced by {!generate}. *)
  | Partition of string list
      (** cut the network along a bipartition: every link between the
          listed group and the rest of the nodes goes down, both
          directions. The landmark is never in the group. *)
  | Heal_partition of string list
      (** restore the links the matching [Partition] cut *)
  | Restart of string
      (** crash-restart: reboot the node through the engine's recovery
          path — checkpoint restore when an intact snapshot exists,
          cold rejoin otherwise *)

type timed = { time : float; action : action }

type t = { horizon : float; actions : timed list }
    (** [actions] is sorted by time (stable). *)

val empty : float -> t
val length : t -> int

(** Insert an action, keeping the schedule sorted. *)
val add : t -> time:float -> action -> t

(** Drop the [i]-th action (schedule order). *)
val remove : t -> int -> t

(** Shrink helper: cut the horizon to just after the last action. *)
val truncate : t -> t

(** Shrink helper: halve the [i]-th action's time (snapping below 1 s
    to 0); the schedule is re-sorted afterwards. *)
val scale_time : t -> int -> t

(** Random plan, driven entirely by [rng]. [intensity] scales the
    action count and fault magnitudes; 0 yields an empty plan. The
    first address (the landmark) is never crashed or removed, so the
    ring always has its join anchor. Destructive actions are paired
    with a repair (recover / heal / ramp-down) most of the time.
    [extended] (default false) widens the alphabet with [Partition] /
    [Heal_partition] pairs and [Crash] / [Restart] pairs; the classic
    alphabet's draw sequence is unchanged, so existing seeded plans
    stay byte-identical. *)
val generate :
  ?extended:bool ->
  rng:Sim.Rng.t ->
  addrs:string list ->
  horizon:float ->
  intensity:int ->
  unit ->
  t

(** Append the planted successor-corruption bug: [node] (a non-landmark
    ring member) gets its best successor pinned to the live node
    farthest from it on the ring. *)
val plant_corruption : rng:Sim.Rng.t -> addrs:string list -> time:float -> t -> t

val pp_action : action Fmt.t
val pp : t Fmt.t

(** Replayable text form: a [horizon] header line followed by one
    action per line. [of_string] raises [Invalid_argument] on
    malformed input; blank lines and [#] comments are skipped. *)
val to_string : t -> string

val of_string : string -> t
