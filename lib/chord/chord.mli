(** P2-Chord: the Chord DHT written in OverLog (the paper's substrate
    for every monitoring example), plus host-side oracles used by tests
    and tools. *)

type params = {
  t_stabilize : float;
  t_fix_fingers : float;
  t_ping : float;
  ping_timeout : float;
  succ_size : int;
  finger_positions : int;
  remember_deceased : bool;
      (** [false] reproduces the §3.1.3 "incorrect implementation" that
          recycles dead neighbors (the oscillation detectors' target). *)
}

(** The paper's §4 configuration: stabilize 5 s, fix fingers 10 s,
    ping 5 s; remembers deceased neighbors. *)
val default_params : params

(** The incorrect variant: [remember_deceased = false]. *)
val buggy_params : params

(** The OverLog program text for the given parameters. *)
val program : params -> string

(** Deterministic ring identifier for an address. *)
val id_of_addr : string -> int

(** Per-node bootstrap facts: identity, landmark, empty predecessor,
    snapshot id zero, first finger position. *)
val boot_facts : addr:string -> landmark:string -> string

type network = {
  engine : P2_runtime.Engine.t;
  addrs : string list;
  landmark : string;
  params : params;
}

(** Boot an [n]-node ring: nodes [<prefix>0 .. <prefix>n-1] with node 0
    as the landmark, joins staggered by [join_spacing] seconds and
    retried [join_retries] times. Run the engine afterwards to let the
    ring converge. *)
val boot :
  ?params:params ->
  ?prefix:string ->
  ?join_spacing:float ->
  ?join_retries:int ->
  P2_runtime.Engine.t ->
  int ->
  network

(** Churn entry points (used by the fault-injection harness). *)

(** Add one node to a running ring and join it through the landmark;
    [startJoin] is injected [join_retries] times, 5 s apart, to survive
    message loss. Raises [Invalid_argument] on a duplicate address. *)
val join : ?join_retries:int -> network -> string -> network

(** Re-seed the join protocol on an existing member after a cold
    restart ([Engine.restart] that found no intact checkpoint): the
    engine has already replayed its programs and boot facts, but with
    no successor state rule [j6] never fires, so the staggered
    [startJoin] injections must be re-issued explicitly. A no-op for
    the landmark (it anchors the ring; it needs no join). Raises
    [Invalid_argument] for addresses outside the network. *)
val rejoin : ?join_retries:int -> network -> string -> unit

(** Remove a node permanently (fail-stop: neighbors detect the silence
    via liveness pings). Raises [Invalid_argument] for the landmark or
    an unknown address. *)
val leave : network -> string -> network

(** Issue a lookup for [key] starting at [addr]; results arrive as
    [lookupResults] tuples at [req_addr] (default: the issuing node). *)
val lookup :
  network -> addr:string -> ?req_addr:string -> key:int -> req_id:int -> unit -> unit

(** State extraction (host-side views over the node tables). *)

val best_succ : network -> string -> (int * string) option
val predecessor : network -> string -> (int * string) option
val successors : network -> string -> (int * string) list
val fingers : network -> string -> (int * int * string) list

(** Walk the ring along best successors from the landmark. *)
val ring_walk : ?limit:int -> network -> string list

(** True when the best-successor walk visits every live node exactly
    once in ring-ID order (one wrap). *)
val ring_correct : ?exclude:string list -> network -> bool

(** The live node whose identifier is the key's true successor — the
    oracle lookups are validated against. *)
val true_successor : network -> ?exclude:string list -> int -> string
