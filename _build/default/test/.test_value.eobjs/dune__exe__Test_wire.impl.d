test/test_wire.ml: Alcotest Int64 List Overlog QCheck QCheck_alcotest String Tuple Value Wire
