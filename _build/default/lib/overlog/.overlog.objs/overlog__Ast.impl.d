lib/overlog/ast.ml: Fmt List Value
