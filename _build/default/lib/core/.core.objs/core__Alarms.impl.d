lib/core/alarms.ml: Fmt List Option Overlog P2_runtime Tuple
