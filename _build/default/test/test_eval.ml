(* Expression evaluation, unification, and builtins. *)

open Overlog

let v = Alcotest.testable Value.pp Value.equal

let ctx =
  {
    Eval.now = (fun () -> 100.);
    rand = (fun () -> 0.25);
    rand_id = (fun () -> 777);
    local_addr = "me";
  }

let e src =
  (* parse "x@N(...) :- e@N(), X := <expr>." and pull out the expr *)
  match Parser.parse (Fmt.str "x@N(A) :- e@N(A), Z := %s." src) with
  | [ Ast.Rule { rbody = [ _; Ast.Assign (_, expr) ]; _ } ] -> expr
  | _ -> Alcotest.fail "bad expression source"

let eval ?(env = Eval.Env.empty) src = Eval.eval ctx env (e src)

let test_arith () =
  Alcotest.check v "int add" (Value.VInt 7) (eval "3 + 4");
  Alcotest.check v "precedence" (Value.VInt 11) (eval "3 + 4 * 2");
  Alcotest.check v "parens" (Value.VInt 14) (eval "(3 + 4) * 2");
  Alcotest.check v "sub" (Value.VInt (-1)) (eval "3 - 4");
  Alcotest.check v "div" (Value.VInt 2) (eval "9 / 4");
  Alcotest.check v "mod" (Value.VInt 1) (eval "9 % 4");
  Alcotest.check v "float" (Value.VFloat 2.5) (eval "1.5 + 1.0");
  Alcotest.check v "mixed int float" (Value.VFloat 2.5) (eval "1.5 + 1");
  Alcotest.check v "neg" (Value.VInt (-5)) (eval "-5")

let test_ring_arith () =
  (* VId arithmetic wraps *)
  let env = Eval.Env.bind Eval.Env.empty "I" (Value.VId 3) in
  Alcotest.check v "wrap sub" (Value.VId (Value.Ring.space - 2)) (eval ~env "I - 5");
  Alcotest.check v "add" (Value.VId 8) (eval ~env "I + 5")

let test_strings_lists () =
  Alcotest.check v "concat" (Value.VStr "ab") (eval {|"a" + "b"|});
  Alcotest.check v "list concat"
    (Value.VList [ Value.VInt 1; Value.VInt 2 ])
    (eval "[1] + [2]");
  Alcotest.check v "list append element"
    (Value.VList [ Value.VInt 1; Value.VInt 2 ])
    (eval "[1] + 2")

let test_comparisons () =
  Alcotest.check v "lt" (Value.VBool true) (eval "1 < 2");
  Alcotest.check v "ge" (Value.VBool false) (eval "1 >= 2");
  Alcotest.check v "eq str" (Value.VBool true) (eval {|"x" == "x"|});
  Alcotest.check v "neq" (Value.VBool true) (eval "1 != 2");
  Alcotest.check v "and or" (Value.VBool true) (eval "(1 < 2) && ((3 < 2) || true)");
  Alcotest.check v "not" (Value.VBool false) (eval "!(1 < 2)")

let test_in_range () =
  Alcotest.check v "in oc" (Value.VBool true) (eval "5 in (1, 5]");
  Alcotest.check v "not in oo" (Value.VBool false) (eval "5 in (1, 5)");
  Alcotest.check v "wrap" (Value.VBool true) (eval "1 in (10, 3]")

let test_builtins () =
  Alcotest.check v "now" (Value.VFloat 100.) (eval "f_now()");
  Alcotest.check v "rand scaled" (Value.VInt 250000000) (eval "f_rand()");
  Alcotest.check v "randID" (Value.VId 777) (eval "f_randID()");
  Alcotest.check v "localAddr" (Value.VAddr "me") (eval "f_localAddr()");
  Alcotest.check v "pow2" (Value.VInt 8) (eval "f_pow2(3)");
  Alcotest.check v "size" (Value.VInt 2) (eval "f_size([1, 2])");
  Alcotest.check v "first" (Value.VInt 1) (eval "f_first([1, 2])");
  Alcotest.check v "last" (Value.VInt 2) (eval "f_last([1, 2])");
  Alcotest.check v "member" (Value.VBool true) (eval "f_member([1, 2], 2)");
  Alcotest.check v "min" (Value.VInt 1) (eval "f_min(1, 2)");
  Alcotest.check v "max" (Value.VInt 2) (eval "f_max(1, 2)");
  Alcotest.check v "abs" (Value.VInt 3) (eval "f_abs(-3)");
  Alcotest.check v "float" (Value.VFloat 3.) (eval "f_float(3)");
  Alcotest.check v "int" (Value.VInt 3) (eval "f_int(3.7)");
  (* f_id is deterministic *)
  Alcotest.check v "f_id deterministic" (eval {|f_id("x")|}) (eval {|f_id("x")|})

let test_eval_errors () =
  let bad src =
    match eval src with
    | exception Eval.Error _ -> ()
    | r -> Alcotest.failf "expected error on %S, got %a" src Value.pp r
  in
  bad "X + 1" (* unbound *);
  bad "1 / 0";
  bad "f_bogus()";
  bad {|"a" * 2|}

let test_env () =
  let env = Eval.Env.bind Eval.Env.empty "X" (Value.VInt 5) in
  Alcotest.(check (option v)) "find" (Some (Value.VInt 5)) (Eval.Env.find env "X");
  Alcotest.(check (option v)) "missing" None (Eval.Env.find env "Y");
  (* unify binds or checks *)
  (match Eval.Env.unify env "X" (Value.VInt 5) with
  | Some _ -> ()
  | None -> Alcotest.fail "unify same should succeed");
  (match Eval.Env.unify env "X" (Value.VInt 6) with
  | None -> ()
  | Some _ -> Alcotest.fail "unify different should fail");
  (* wildcard never binds *)
  let env' = Eval.Env.bind env "_" (Value.VInt 9) in
  Alcotest.(check (option v)) "wildcard not stored" None (Eval.Env.find env' "_")

let atom args_src =
  match Parser.parse (Fmt.str "x@N(A) :- %s." args_src) with
  | [ Ast.Rule { rbody = [ Ast.Atom a ]; _ } ] -> a
  | _ -> Alcotest.fail "bad atom source"

let test_match_atom () =
  let a = atom "pred@NAddr(PID, PAddr)" in
  let t = Tuple.make "pred" [ Value.VAddr "n1"; Value.VId 3; Value.VAddr "n2" ] in
  (match Eval.match_atom ctx Eval.Env.empty a t with
  | Some env ->
      Alcotest.(check (option v)) "NAddr" (Some (Value.VAddr "n1"))
        (Eval.Env.find env "NAddr");
      Alcotest.(check (option v)) "PID" (Some (Value.VId 3)) (Eval.Env.find env "PID")
  | None -> Alcotest.fail "should match");
  (* arity mismatch *)
  let t2 = Tuple.make "pred" [ Value.VAddr "n1"; Value.VId 3 ] in
  Alcotest.(check bool) "arity mismatch" true
    (Eval.match_atom ctx Eval.Env.empty a t2 = None);
  (* constant mismatch *)
  let a2 = atom {|pred@NAddr(PID, "-")|} in
  Alcotest.(check bool) "const mismatch" true
    (Eval.match_atom ctx Eval.Env.empty a2 t = None);
  let t3 = Tuple.make "pred" [ Value.VAddr "n1"; Value.VId 0; Value.VStr "-" ] in
  Alcotest.(check bool) "const match" true
    (Eval.match_atom ctx Eval.Env.empty a2 t3 <> None)

let test_match_repeated_vars () =
  (* ri6-style: countWraps@N(SAddr, E, SAddr, ...) requires fields equal *)
  let a = atom "cw@N(S, E, S)" in
  let t_match =
    Tuple.make "cw" [ Value.VAddr "n"; Value.VAddr "a"; Value.VInt 1; Value.VAddr "a" ]
  in
  let t_nomatch =
    Tuple.make "cw" [ Value.VAddr "n"; Value.VAddr "a"; Value.VInt 1; Value.VAddr "b" ]
  in
  Alcotest.(check bool) "repeated var match" true
    (Eval.match_atom ctx Eval.Env.empty a t_match <> None);
  Alcotest.(check bool) "repeated var mismatch" true
    (Eval.match_atom ctx Eval.Env.empty a t_nomatch = None)

let test_match_bound_env () =
  let a = atom "succ@NAddr(SID, SAddr)" in
  let env = Eval.Env.bind Eval.Env.empty "SAddr" (Value.VAddr "n7") in
  let t_yes = Tuple.make "succ" [ Value.VAddr "n"; Value.VId 1; Value.VAddr "n7" ] in
  let t_no = Tuple.make "succ" [ Value.VAddr "n"; Value.VId 1; Value.VAddr "n8" ] in
  Alcotest.(check bool) "bound matches" true (Eval.match_atom ctx env a t_yes <> None);
  Alcotest.(check bool) "bound rejects" true (Eval.match_atom ctx env a t_no = None)

(* Property: evaluating a comparison against its negation always
   disagrees. *)
let prop_not_involution =
  QCheck.Test.make ~name:"not involution" ~count:200
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let env =
        Eval.Env.bind (Eval.Env.bind Eval.Env.empty "A" (Value.VInt a)) "B"
          (Value.VInt b)
      in
      let lt = Eval.eval_bool ctx env (e "A < B") in
      let nlt = Eval.eval_bool ctx env (e "!(A < B)") in
      lt <> nlt)

let () =
  Alcotest.run "eval"
    [
      ( "expressions",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "ring arith" `Quick test_ring_arith;
          Alcotest.test_case "strings/lists" `Quick test_strings_lists;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "in range" `Quick test_in_range;
          Alcotest.test_case "builtins" `Quick test_builtins;
          Alcotest.test_case "errors" `Quick test_eval_errors;
          QCheck_alcotest.to_alcotest prop_not_involution;
        ] );
      ( "unification",
        [
          Alcotest.test_case "env" `Quick test_env;
          Alcotest.test_case "match atom" `Quick test_match_atom;
          Alcotest.test_case "repeated vars" `Quick test_match_repeated_vars;
          Alcotest.test_case "bound env" `Quick test_match_bound_env;
        ] );
    ]
