(** Deterministic fault-injection campaigns over the simulated Chord
    deployment: boot, settle, inject a {!Fault_plan}, judge with the
    {!Oracle}, and on failure shrink the plan to a minimal reproducing
    schedule.

    Everything is a pure function of [(config, seed, plan)]: running
    the same campaign twice yields bit-for-bit identical verdicts,
    stats and reports. *)

type config = {
  nodes : int;  (** ring size at boot *)
  settle : float;  (** virtual seconds to converge before faults *)
  horizon : float;  (** fault-window length *)
  cooldown : float;
      (** post-window observation (must exceed the oracle's heal
          window, or healing can't be distinguished from failure) *)
  loss_rate : float;
      (** uniform message loss for the whole run, boot included —
          the eventual-delivery sweep ([p2ql campaign --loss]) *)
  reliable : bool;
      (** reliable transport on (default) or ablated
          ([Engine.set_reliable false]) — the loss sweep's control *)
  seminaive : bool;
      (** semi-naive delta evaluation with cross-node delta batching
          (default) or the naive re-enumeration ablation
          ([Engine.set_seminaive false]) *)
  shards : int;
      (** execution engine: 0 (default) the sequential event loop,
          [n >= 1] the multicore round/barrier loop on [n] shards
          ([Engine.set_shards]) — every [n >= 1] yields the same
          bit-for-bit verdicts *)
  sanitize : bool;
      (** effect-discipline sanitizer ([Engine.set_sanitize]): direct
          mutation of barrier-owned engine state during a shard drain
          raises [Engine.Discipline_violation]. Off (default) unless
          [P2QL_SANITIZE] forces it; purely a checking layer, verdicts
          are identical either way *)
  trace_log : string option;
      (** flight recorder ([Engine.set_trace_log]): when set, every
          run writes its segment log under
          [DIR/seed<seed>-i<intensity>/<addr>/], sealed once the
          verdict lands — failing cells can then be investigated with
          [p2ql replay] without re-running the campaign. Shrinking
          never records ([None]: off) *)
  extended_faults : bool;
      (** widen generated plans with [Partition]/[Heal_partition] and
          [Crash]/[Restart] pairs ([Fault_plan.generate ~extended]).
          Off (default) keeps the classic alphabet and its exact seeded
          draw sequence *)
  checkpoint : string option;
      (** durable checkpoints ([Engine.set_checkpoint]): when set,
          every run snapshots hard state under
          [DIR/seed<seed>-i<intensity>/<addr>/] and [Restart] actions
          recover from the newest intact snapshot (cold rejoin through
          the landmark otherwise). The cell directory is wiped at the
          start of each run, so re-runs — including every shrink
          attempt, which keeps checkpointing on to preserve recovery
          semantics — stay deterministic *)
  checkpoint_interval : float;
      (** virtual seconds between snapshots (default 10) *)
  params : Chord.params;
  oracle : Oracle.config;
}

val default_config : config

type stats = {
  tx : int;  (** network sends during fault window + cooldown *)
  dropped : int;
  oracle : Oracle.stats;
}

type outcome = Pass | Fail of Oracle.violation list

type run = {
  seed : int;
  intensity : int;
  plan : Fault_plan.t;
  outcome : outcome;
  stats : stats;
}

val failed : run -> bool

(** Execute one explicit plan. [intensity] only labels the report.
    [after_settle] runs once the ring has settled, before the oracle is
    armed — the hook for installing extra monitoring programs that must
    live through the fault window. [on_done] runs after the oracle
    verdict is sealed, with the settled engine — the hook for stats
    dumps ([P2_runtime.P2stats.to_json]); it cannot perturb the
    verdict. *)
val run_plan :
  config ->
  seed:int ->
  ?intensity:int ->
  ?after_settle:(P2_runtime.Engine.t -> unit) ->
  ?on_done:(P2_runtime.Engine.t -> unit) ->
  Fault_plan.t ->
  run

(** Generate the plan for [(seed, intensity)] and run it. The plan RNG
    is derived from both, so every cell of a sweep differs. *)
val run_seed :
  config ->
  seed:int ->
  intensity:int ->
  ?after_settle:(P2_runtime.Engine.t -> unit) ->
  ?on_done:(P2_runtime.Engine.t -> unit) ->
  unit ->
  run

(** The plan {!run_seed} would execute (for display / replay). *)
val plan_of_seed : config -> seed:int -> intensity:int -> Fault_plan.t

(** Sweep seeds × intensity levels; results in sweep order. [on_done]
    is passed to every run. *)
val sweep :
  config ->
  seeds:int list ->
  intensities:int list ->
  ?after_settle:(P2_runtime.Engine.t -> unit) ->
  ?on_done:(P2_runtime.Engine.t -> unit) ->
  unit ->
  run list

(** Shrink a failing plan to a minimal reproducing schedule: greedy
    single-action removal to fixpoint, then horizon truncation and
    action-time halving. Returns the shrunk plan and the number of
    re-executions spent. The result still fails under [seed]. *)
val shrink : config -> seed:int -> Fault_plan.t -> Fault_plan.t * int

(** One line per run: seed, intensity, verdict, stats. *)
val pp_run : run Fmt.t

(** Full report: per-run lines, violations of failing runs, summary. *)
val pp_report : run list Fmt.t
