(* Ring monitoring (paper §3.1): boot a Chord ring, install the ring
   well-formedness checks, the ID-ordering traversal and the
   oscillation detectors *while the system runs*, then inject faults
   and watch the detectors fire.

     dune exec examples/ring_monitor.exe
*)

let banner fmt = Fmt.pr ("@.--- " ^^ fmt ^^ " ---@.")

let () =
  let engine = P2_runtime.Engine.create ~seed:2026 () in
  Fmt.pr "Booting an 8-node P2 Chord ring (buggy variant: recycles dead neighbors)...@.";
  let net = Chord.boot ~params:Chord.buggy_params engine 8 in
  P2_runtime.Engine.run_for engine 150.;
  Fmt.pr "ring: %a@." Fmt.(list ~sep:(any " -> ") string) (Chord.ring_walk net);
  Fmt.pr "ring correct: %b@." (Chord.ring_correct net);

  banner "installing monitors on-line (no restart)";
  let ring = Core.Ring_check.install ~active:true ~passive:false ~t_probe:5. net in
  let _closer, problems, ok = Core.Ordering.install net in
  let osc = Core.Oscillation.install ~period:20. ~threshold:2 net in
  Fmt.pr "installed: active ring probes (rp1-rp3, rp5-rp7), ordering traversal@.";
  Fmt.pr "           (ri2-ri6), oscillation detectors (os1-os9)@.";

  banner "healthy period: 60 s";
  P2_runtime.Engine.run_for engine 60.;
  Core.Ordering.start_traversal net ~addr:net.landmark ~token:1;
  P2_runtime.Engine.run_for engine 5.;
  Fmt.pr "pred alarms: %d, succ alarms: %d, ordering problems: %d, traversals ok: %d@."
    (Core.Alarms.count ring.pred_alarms)
    (Core.Alarms.count ring.succ_alarms)
    (Core.Alarms.count problems) (Core.Alarms.count ok);
  Fmt.pr "oscillations: %d@." (Core.Alarms.count osc.oscill);

  banner "fault injection: flapping node (up 15 s / down 20 s)";
  let victim = List.nth net.addrs 4 in
  Fmt.pr "victim: %s@." victim;
  let start = P2_runtime.Engine.now engine in
  for i = 0 to 5 do
    let t0 = start +. (float_of_int i *. 35.) in
    P2_runtime.Engine.at engine ~time:t0 (fun () ->
        P2_runtime.Engine.crash engine victim);
    P2_runtime.Engine.at engine ~time:(t0 +. 20.) (fun () ->
        P2_runtime.Engine.recover engine victim)
  done;
  P2_runtime.Engine.run_for engine 230.;

  banner "detector results";
  Fmt.pr "oscillation events: %d@." (Core.Alarms.count osc.oscill);
  Fmt.pr "repeat oscillators flagged: %d@." (Core.Alarms.count osc.repeat);
  Fmt.pr "chaotic proclamations: %d@." (Core.Alarms.count osc.chaotic);
  (match Core.Alarms.alarms osc.repeat with
  | a :: _ -> Fmt.pr "first repeat-oscillator alarm: %a@." Core.Alarms.pp_alarm a
  | [] -> ());

  banner "ring state after the victim settles";
  P2_runtime.Engine.run_for engine 120.;
  Core.Ordering.start_traversal net ~addr:net.landmark ~token:2;
  P2_runtime.Engine.run_for engine 5.;
  Fmt.pr "ring: %a@." Fmt.(list ~sep:(any " -> ") string) (Chord.ring_walk net);
  Fmt.pr "ring correct: %b, traversals ok so far: %d@." (Chord.ring_correct net)
    (Core.Alarms.count ok)
