(* Consistent snapshots and forensics (paper §3.2–§3.3):

   1. take a Chandy–Lamport snapshot of a running Chord ring,
   2. verify a global property (ring correctness) on the snapshot,
   3. run Chord lookups *over the snapshot* (rules l1s–l3s),
   4. profile a live consistency-probe lookup by walking the tracer's
      ruleExec/tupleTable graph backwards (rules ep1–ep6).

     dune exec examples/snapshot_forensics.exe
*)

open Overlog

let banner fmt = Fmt.pr ("@.--- " ^^ fmt ^^ " ---@.")

let () =
  let engine = P2_runtime.Engine.create ~seed:7 ~trace:true () in
  Fmt.pr "Booting a 8-node P2 Chord ring with execution tracing on...@.";
  let net = Chord.boot engine 8 in
  P2_runtime.Engine.run_for engine 150.;
  Fmt.pr "ring: %a@." Fmt.(list ~sep:(any " -> ") string) (Chord.ring_walk net);

  banner "consistent snapshot (Chandy-Lamport, rules sr1-sr16)";
  let snap = Core.Snapshot.install net in
  P2_runtime.Engine.run_for engine 20.;  (* let backPointer tables build *)
  Core.Snapshot.trigger snap ~id:1;
  P2_runtime.Engine.run_for engine 10.;
  List.iter
    (fun addr ->
      Fmt.pr "  %s: snapshot %s; snapped bestSucc = %a@." addr
        (Option.value ~default:"missing" (Core.Snapshot.state_of snap addr ~id:1))
        Fmt.(option ~none:(any "-") string)
        (Option.map fst (Core.Snapshot.snapped_best_succ snap addr ~id:1)))
    net.addrs;
  Fmt.pr "global check on the snapshot: snapped ring correct = %b@."
    (Core.Snapshot.snapped_ring_correct snap ~id:1);

  banner "lookups over the snapshot (rules l1s-l3s)";
  let key = 123456789 in
  let results = ref [] in
  List.iter
    (fun a ->
      P2_runtime.Engine.watch engine a "sLookupResults" (fun t ->
          results := (a, Value.as_addr (Tuple.field t 5)) :: !results))
    net.addrs;
  List.iteri
    (fun i addr -> Core.Snapshot.lookup snap ~addr ~id:1 ~key ~req_id:(9000 + i) ())
    net.addrs;
  P2_runtime.Engine.run_for engine 5.;
  Fmt.pr "true successor of key %d: %s@." key (Chord.true_successor net key);
  List.iter
    (fun (from, answer) -> Fmt.pr "  snapshot lookup from %s -> %s@." from answer)
    !results;

  banner "execution profiling of a consistency-probe lookup (ep1-ep6)";
  let _probe =
    Core.Consistency.install ~addrs:[ net.landmark ] ~t_probe:15. ~t_tally:10.
      ~window:5. net
  in
  let prof = Core.Profiler.install ~root_rule:"cs2" net in
  let con_reqs = ref [] in
  P2_runtime.Engine.watch engine net.landmark "conLookup" (fun t ->
      con_reqs := Tuple.field t 5 :: !con_reqs);
  let traced = ref 0 in
  P2_runtime.Engine.watch engine net.landmark "lookupResults" (fun t ->
      if !traced < 3 && List.exists (Value.equal (Tuple.field t 5)) !con_reqs
      then begin
        incr traced;
        Core.Profiler.trace net ~addr:net.landmark ~tuple_id:(Tuple.id t) ()
      end);
  P2_runtime.Engine.run_for engine 60.;
  Fmt.pr "profiled %d probe responses; latency split (rule / network / queueing):@."
    !traced;
  List.iter
    (fun r -> Fmt.pr "  %a@." Core.Profiler.pp_report r)
    (Core.Profiler.reports prof);
  match Core.Profiler.reports prof with
  | r :: _ ->
      Fmt.pr
        "@.reading: the lookup spent %.1f us inside rule strands, %.1f ms on the \
         wire,@.and %.1f us queued between rules — network-dominated, as the paper \
         expects.@."
        (r.rule_time *. 1e6) (r.net_time *. 1e3) (r.local_time *. 1e6)
  | [] -> ()
