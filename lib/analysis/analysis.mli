(** Semantic analysis over parsed OverLog programs.

    Runs before planning and collects {e all} diagnostics — not just
    the first — with source lines, severities and stable codes, in the
    spirit of classic Datalog safety/stratification checking and
    Webdamlog-style location well-formedness.

    Passes and code ranges:
    - E0xx safety / range restriction (head vars, conditions,
      assignments, event cardinality, periodic shape)
    - E1xx schema consistency (arity agreement, materialize keys,
      duplicates, event-vs-table misuse, reserved predicates)
    - E2xx type inference (operator/builtin/interval clashes)
    - E3xx stratification (negation and aggregation cycles)
    - E4xx location well-formedness (link restriction)
    - W6xx / H7xx liveness (unused tables, unknown watches, predicates
      assumed external)

    Errors mean the program is rejected under a strict install;
    warnings fail only [--strict] checks; hints never fail. *)

open Overlog

type severity = Error | Warning | Hint

type diagnostic = {
  code : string;  (** stable, e.g. "E001" *)
  severity : severity;
  line : int;  (** 1-based source line; 0 when unknown *)
  rule : string option;  (** rule name, when the diagnostic is rule-scoped *)
  message : string;
}

(** Predicates defined outside the analyzed program — the paper installs
    monitors piecemeal into nodes that already run Chord, so a program
    may legitimately reference tables and events materialized by earlier
    installs. Arities are checked when known ([Some n], location
    included). *)
type env = {
  ext_tables : (string * int option) list;
  ext_events : (string * int option) list;
}

val empty_env : env

(** Derive an [env] from a program that is (or will be) co-installed:
    its materialized tables become external tables, its derived heads
    and facts become external events, with arities learned from use. *)
val env_of_program : ?init:env -> Ast.program -> env

(** Run every pass; diagnostics are sorted by line then code. *)
val analyze : ?env:env -> Ast.program -> diagnostic list

(** Parse then analyze. Parse failures surface as a single "E000"
    diagnostic instead of an exception, so [p2ql check] can report
    uniformly over a file set. *)
val check_source : ?env:env -> string -> Ast.program option * diagnostic list

val errors : diagnostic list -> diagnostic list
val warnings : diagnostic list -> diagnostic list

(** True when the list should fail a check: any error, or any warning
    under [strict]. Hints never fail. *)
val should_fail : strict:bool -> diagnostic list -> bool

(** Raised by strict install gates (see [Node.set_strict_install]). *)
exception Rejected of diagnostic list

val severity_to_string : severity -> string

(** [file] prefixes the location, compiler-style:
    ["chord.olg:12: error[E001]: rule j3: head variable K is unbound"]. *)
val pp_diagnostic : ?file:string -> Format.formatter -> diagnostic -> unit

(** Render a diagnostic list as a JSON array (no trailing newline). *)
val to_json : ?file:string -> diagnostic list -> string
