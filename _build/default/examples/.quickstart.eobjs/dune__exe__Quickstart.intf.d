examples/quickstart.mli:
