lib/runtime/node.ml: Ast Dataflow Eval Fmt Fun Hashtbl List Overlog Parser Sim Store String Tuple Value Wire
