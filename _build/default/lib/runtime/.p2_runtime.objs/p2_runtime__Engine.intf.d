lib/runtime/engine.mli: Ast Dataflow Node Overlog Sim Tuple Value
