(** Execution tracer (paper §2.1).

    Dataflow taps report three kinds of observation per rule strand:
    the input event entering the strand, each precondition tuple
    fetched by a join stage, and the output tuple leaving the strand.
    The tracer correlates them into causal [ruleExec] rows:

    {v ruleExec(localAddr, ruleID, causeID, effectID, tCause, tOut, isEvent) v}

    one row linking the triggering event to each output (isEvent =
    true) and one row per precondition (isEvent = false). Tuples are
    memoized by node-unique ID through the [tupleTable]:

    {v tupleTable(localAddr, tupleID, srcAddr, srcTupleID, destAddr) v}

    with reference counting from [ruleExec] rows (§2.1.3): an entry is
    discarded when the last referring [ruleExec] row is removed or
    times out.

    Pipelined execution (§2.1.2) is handled by keeping multiple tracer
    records per rule, each associated with a contiguous interval of
    join stages; stage-completion signals advance the interval, and an
    output is matched to the most advanced record. *)

open Overlog

type record = {
  created : int;  (* monotone counter for "newest" tie-breaks *)
  mutable lo : int;  (* first associated stage *)
  mutable hi : int;  (* one past the last associated stage *)
  mutable input : (int * float) option;  (* tuple id, observation time *)
  mutable preconds : (int * float) option array;  (* slot per join stage *)
}

type rule_state = { join_count : int; mutable records : record list (* newest first *) }

type config = {
  max_records_per_rule : int;  (* the paper's fixed record array *)
  rule_exec_lifetime : float;
  rule_exec_cap : int;
  tuple_table_lifetime : float;
}

let default_config =
  {
    max_records_per_rule = 16;
    rule_exec_lifetime = 30.;
    rule_exec_cap = 2048;
    tuple_table_lifetime = 60.;
  }

(* With a sink spilling every record to disk, the in-RAM window only
   needs to cover queries over the very recent past; history belongs
   to the segment log. *)
let spill_config =
  {
    max_records_per_rule = 16;
    rule_exec_lifetime = 5.;
    rule_exec_cap = 256;
    tuple_table_lifetime = 10.;
  }

(* Replay restores hours of history into the tables at once: nothing
   may expire or be evicted, or the reconstruction would silently
   drop the very rows a forensic query is after. *)
let replay_config =
  {
    max_records_per_rule = 16;
    rule_exec_lifetime = infinity;
    rule_exec_cap = 1_000_000;
    tuple_table_lifetime = infinity;
  }

(* Tracer self-metrics (counted only while tracing is enabled): how
   many taps fired, how many causal rows the reconstruction emitted,
   and how many tuples were memoized. Together with the work-unit
   charges these quantify the paper's "execution logging increases CPU
   by 40%" overhead at runtime. *)
type stats = {
  taps : Metrics.Counter.t;  (* input/precondition/output/register taps *)
  rule_exec_rows : Metrics.Counter.t;  (* ruleExec rows added *)
  tuples_registered : Metrics.Counter.t;  (* tupleTable memoizations *)
}

type t = {
  addr : string;
  mutable enabled : bool;
  config : config;
  rules : (string, rule_state) Hashtbl.t;
  rule_exec : Store.Table.t;
  tuple_table : Store.Table.t;
  contents : (int, Tuple.t) Hashtbl.t;  (* tuple id -> memoized tuple *)
  refs : (int, int) Hashtbl.t;  (* tuple id -> ruleExec reference count *)
  charge : float -> unit;
  now : unit -> float;
  mutable seq : int;
  stats : stats;
  mutable sink : (stamp:float -> delete:bool -> Tuple.t -> unit) option;
      (* flight-recorder tap: called once per registered tuple and per
         tupleTable/ruleExec row as they are produced *)
}

(* Work-unit cost of one tap observation; this is where the paper's
   "execution logging increases CPU by 40%" overhead comes from. *)
let tap_cost = Sim.Metrics.Cost.tracer_tap

let create ?(config = default_config) ~addr ~now ~charge () =
  let rule_exec =
    Store.Table.create ~lifetime:config.rule_exec_lifetime
      ~max_size:config.rule_exec_cap ~keys:[ 2; 3; 4; 7 ] "ruleExec"
  in
  let tuple_table =
    Store.Table.create ~lifetime:config.tuple_table_lifetime ~keys:[ 2 ] "tupleTable"
  in
  let t =
    {
      addr;
      enabled = false;
      config;
      rules = Hashtbl.create 32;
      rule_exec;
      tuple_table;
      contents = Hashtbl.create 256;
      refs = Hashtbl.create 256;
      charge;
      now;
      seq = 0;
      stats =
        {
          taps = Metrics.Counter.create ();
          rule_exec_rows = Metrics.Counter.create ();
          tuples_registered = Metrics.Counter.create ();
        };
      sink = None;
    }
  in
  (* Reference counting: when a ruleExec row disappears (expiry,
     eviction or deletion), unreference its cause and effect tuples. *)
  Store.Table.subscribe rule_exec (function
    | Store.Table.Delete row -> (
        match Tuple.fields row with
        | _ :: _ :: cause :: effect :: _ ->
            let unref v =
              match v with
              | Value.VInt id -> (
                  match Hashtbl.find_opt t.refs id with
                  | Some n when n <= 1 ->
                      Hashtbl.remove t.refs id;
                      Hashtbl.remove t.contents id;
                      let _ =
                        Store.Table.delete_where t.tuple_table ~now:(t.now ()) (fun tu ->
                            Value.equal (Tuple.field tu 2) (Value.VInt id))
                      in
                      ()
                  | Some n -> Hashtbl.replace t.refs id (n - 1)
                  | None -> ())
              | _ -> ()
            in
            unref cause;
            unref effect
        | _ -> ())
    | Store.Table.Insert _ | Store.Table.Refresh _ -> ());
  t

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let enabled t = t.enabled
let stats t = t.stats
let set_sink t sink = t.sink <- sink

let rule_exec_table t = t.rule_exec
let tuple_table t = t.tuple_table

(** Resolve a memoized tuple ID back to its contents (forensics API). *)
let resolve t id = Hashtbl.find_opt t.contents id

let live_bytes t ~now =
  Store.Table.bytes t.rule_exec ~now
  + Store.Table.bytes t.tuple_table ~now
  + Hashtbl.fold (fun _ tu acc -> acc + Tuple.size_bytes tu) t.contents 0

let live_tuples t ~now =
  Store.Table.size t.rule_exec ~now + Store.Table.size t.tuple_table ~now

(** Record a freshly created or received tuple in the tupleTable.
    [src]/[src_id] describe where it came from (the local node itself
    for locally created tuples); [dst] is where it is headed. *)
let register_tuple t tuple ~src ~src_id ~dst =
  if t.enabled then begin
    t.charge tap_cost;
    Metrics.Counter.incr t.stats.taps;
    Metrics.Counter.incr t.stats.tuples_registered;
    let id = Tuple.id tuple in
    Hashtbl.replace t.contents id tuple;
    let row =
      Tuple.make "tupleTable"
        [ Value.VAddr t.addr; Value.VInt id; Value.VAddr src; Value.VInt src_id;
          Value.VAddr dst ]
    in
    let _ = Store.Table.insert t.tuple_table ~now:(t.now ()) row in
    (* Spill both halves of the registration: the memoized contents
       (whose wire src_tuple_id is the local id, so replay rebuilds
       the id -> tuple memo without any cross-record correlation) and
       the provenance row itself. *)
    match t.sink with
    | Some f ->
        let stamp = t.now () in
        f ~stamp ~delete:false tuple;
        f ~stamp ~delete:false row
    | None -> ()
  end

let ref_tuple t id =
  Hashtbl.replace t.refs id (1 + Option.value ~default:0 (Hashtbl.find_opt t.refs id))

let emit_rule_exec t ~rule ~cause ~effect ~t_cause ~t_out ~is_event =
  let row =
    Tuple.make "ruleExec"
      [ Value.VAddr t.addr; Value.VStr rule; Value.VInt cause; Value.VInt effect;
        Value.VFloat t_cause; Value.VFloat t_out; Value.VBool is_event ]
  in
  (match Store.Table.insert t.rule_exec ~now:(t.now ()) row with
  | Store.Table.Added ->
      Metrics.Counter.incr t.stats.rule_exec_rows;
      ref_tuple t cause;
      ref_tuple t effect;
      (match t.sink with
      | Some f -> f ~stamp:t_out ~delete:false row
      | None -> ())
  | Store.Table.Replaced | Store.Table.Refreshed -> ());
  t.charge Sim.Metrics.Cost.table_insert

(** Re-insert a recorded trace record (replay path). [ruleExec] and
    [tupleTable] rows go back into their tables — delta strands
    subscribed to them fire exactly as they would have live — and any
    other tuple refills the contents memo under its recorded id. Works
    with tracing disabled and never feeds the sink, so a replaying
    node can not re-record its own reconstruction. *)
let restore t tuple =
  match Tuple.name tuple with
  | "ruleExec" -> (
      match Store.Table.insert t.rule_exec ~now:(t.now ()) tuple with
      | Store.Table.Added -> (
          match Tuple.fields tuple with
          | _ :: _ :: Value.VInt cause :: Value.VInt effect :: _ ->
              ref_tuple t cause;
              ref_tuple t effect
          | _ -> ())
      | Store.Table.Replaced | Store.Table.Refreshed -> ())
  | "tupleTable" ->
      let _ = Store.Table.insert t.tuple_table ~now:(t.now ()) tuple in
      ()
  | _ -> Hashtbl.replace t.contents (Tuple.id tuple) tuple

let state_for t ~rule ~join_count =
  match Hashtbl.find_opt t.rules rule with
  | Some s -> s
  | None ->
      let s = { join_count; records = [] } in
      Hashtbl.replace t.rules rule s;
      s

let fresh_record t ~join_count =
  t.seq <- t.seq + 1;
  {
    created = t.seq;
    lo = 0;
    hi = 1;
    input = None;
    preconds = Array.make (max join_count 1) None;
  }

(* Effective stage count: strands without joins get one virtual stage
   so the record lifecycle (input -> output -> completion) still runs. *)
let stage_count s = max s.join_count 1

(** A trigger tuple entered the strand for [rule]. *)
let on_input t ~rule ~join_count ~tuple_id =
  if t.enabled then begin
    t.charge tap_cost;
    Metrics.Counter.incr t.stats.taps;
    let s = state_for t ~rule ~join_count in
    (* Reuse a record whose stage interval has emptied (execution
       done); otherwise evict the oldest when at capacity (the paper's
       fixed number of execution records). *)
    let record =
      match List.find_opt (fun r -> r.lo >= stage_count s) s.records with
      | Some r ->
          r.lo <- 0;
          r.hi <- 1;
          Array.fill r.preconds 0 (Array.length r.preconds) None;
          r
      | None ->
          if List.length s.records >= t.config.max_records_per_rule then
            s.records <-
              (match List.rev s.records with
              | _oldest :: rest -> List.rev rest
              | [] -> []);
          let r = fresh_record t ~join_count in
          s.records <- r :: s.records;
          r
    in
    record.input <- Some (tuple_id, t.now ())
  end

(* The record currently associated with stage [i]; if none, extend the
   record with the latest associated stages to contain [i] (§2.1.2). *)
let record_for_stage s i =
  match List.find_opt (fun r -> r.lo <= i && i < r.hi) s.records with
  | Some r -> Some r
  | None -> (
      let candidates = List.filter (fun r -> r.hi <= i) s.records in
      match
        List.sort
          (fun a b ->
            match compare b.hi a.hi with 0 -> compare b.created a.created | c -> c)
          candidates
      with
      | r :: _ ->
          r.hi <- i + 1;
          Some r
      | [] -> None)

(** A join at stage [stage] fetched precondition tuple [tuple_id]. *)
let on_precondition t ~rule ~join_count ~stage ~tuple_id =
  if t.enabled then begin
    t.charge tap_cost;
    Metrics.Counter.incr t.stats.taps;
    let s = state_for t ~rule ~join_count in
    match record_for_stage s stage with
    | None -> ()
    | Some r ->
        if stage < Array.length r.preconds then begin
          r.preconds.(stage) <- Some (tuple_id, t.now ());
          (* Flush any filled-in fields to the right: tuples flow left
             to right, so they belong to an abandoned sub-execution. *)
          for j = stage + 1 to Array.length r.preconds - 1 do
            r.preconds.(j) <- None
          done
        end
  end

(** The stateful element at [stage] finished its current input and is
    seeking a new one. *)
let on_stage_complete t ~rule ~join_count ~stage =
  if t.enabled then begin
    let s = state_for t ~rule ~join_count in
    match List.find_opt (fun r -> r.lo = stage && r.hi > r.lo) s.records with
    | Some r ->
        (* Abandon the completed stage; the record is now associated
           with the next stage onward (it is "between" joins). *)
        r.lo <- stage + 1;
        if r.hi < r.lo + 1 then r.hi <- r.lo + 1;
        (* Execution fully done: drop the record. *)
        if r.lo >= stage_count s then
          s.records <- List.filter (fun x -> x != r) s.records
    | None -> ()
  end

(** All work spawned by the triggering input [input_id] has drained:
    reclaim its record. Stage-completion signals alone cannot reclaim
    records of executions that die at a selection after their joins
    (under depth-first scheduling the completion for an earlier stage
    arrives when the record's association has already moved on), and a
    lingering record would capture the next execution's preconditions
    and misattribute its outputs. A record already reclaimed by full
    stage advancement makes this a no-op. *)
let on_execution_complete t ~rule ~join_count ~input_id =
  if t.enabled then begin
    let s = state_for t ~rule ~join_count in
    s.records <-
      List.filter
        (fun r -> match r.input with Some (id, _) -> id <> input_id | None -> true)
        s.records
  end

(** An output tuple left the strand: package the most advanced record
    into ruleExec rows. *)
let on_output t ~rule ~join_count ~tuple_id =
  if t.enabled then begin
    t.charge tap_cost;
    Metrics.Counter.incr t.stats.taps;
    let s = state_for t ~rule ~join_count in
    let best =
      List.fold_left
        (fun acc r ->
          match acc with
          | None -> Some r
          | Some b ->
              if r.hi > b.hi || (r.hi = b.hi && r.created > b.created) then Some r
              else acc)
        None s.records
    in
    match best with
    | None -> ()
    | Some r ->
        let t_out = t.now () in
        (match r.input with
        | Some (cause, t_cause) ->
            emit_rule_exec t ~rule ~cause ~effect:tuple_id ~t_cause ~t_out ~is_event:true
        | None -> ());
        Array.iter
          (function
            | Some (cause, t_cause) ->
                emit_rule_exec t ~rule ~cause ~effect:tuple_id ~t_cause ~t_out
                  ~is_event:false
            | None -> ())
          r.preconds
  end

(* Test/debug visibility. *)
let record_count t rule =
  match Hashtbl.find_opt t.rules rule with
  | Some s -> List.length s.records
  | None -> 0
