(* P2 Chord: convergence, lookup correctness and consistency, failure
   handling, churn. These are slower integration tests. *)

open Overlog

let boot ?(seed = 11) ?(n = 8) ?(settle = 120.) () =
  let engine = P2_runtime.Engine.create ~seed ~trace:false () in
  let net = Chord.boot engine n in
  P2_runtime.Engine.run_for engine settle;
  (engine, net)

let test_ring_converges () =
  let _, net = boot () in
  Alcotest.(check bool) "ring correct after settling" true (Chord.ring_correct net)

let test_ring_converges_21 () =
  (* the paper's population size *)
  let _, net = boot ~seed:3 ~n:21 ~settle:180. () in
  Alcotest.(check bool) "21-node ring" true (Chord.ring_correct net)

let test_succ_and_pred_symmetry () =
  let _, net = boot () in
  List.iter
    (fun a ->
      match Chord.best_succ net a with
      | Some (_, s) -> (
          match Chord.predecessor net s with
          | Some (_, p) -> Alcotest.(check string) (a ^ " succ/pred symmetric") a p
          | None -> Alcotest.failf "%s has no predecessor" s)
      | None -> Alcotest.failf "%s has no successor" a)
    net.addrs

let collect_lookups engine net =
  let results = ref [] in
  List.iter
    (fun a ->
      P2_runtime.Engine.watch engine a "lookupResults" (fun t ->
          (* our injected req-ids live in a narrow band; Chord's own
             finger-fix lookups use f_rand ids and must be ignored *)
          match Tuple.field t 5 with
          | Value.VInt r when r >= 1_000_000 && r < 1_100_000 ->
              results := (r, Value.as_addr (Tuple.field t 4)) :: !results
          | _ -> ()))
    net.Chord.addrs;
  results

let test_lookup_correctness () =
  let engine, net = boot () in
  let results = collect_lookups engine net in
  (* lookups for several random keys from every node *)
  let keys = [ 12345; 99999999; 1 lsl 29; 77; Value.Ring.space - 1 ] in
  List.iteri
    (fun ki key ->
      List.iteri
        (fun ni addr ->
          Chord.lookup net ~addr ~key ~req_id:(1_000_000 + (ki * 100) + ni) ())
        net.addrs)
    keys;
  P2_runtime.Engine.run_for engine 5.;
  let expected = List.length keys * List.length net.addrs in
  Alcotest.(check bool) "most lookups answered" true
    (List.length !results >= expected * 9 / 10);
  List.iter
    (fun (rid, answer) ->
      let key = List.nth keys ((rid - 1_000_000) / 100) in
      Alcotest.(check string)
        (Fmt.str "lookup %d finds true successor" rid)
        (Chord.true_successor net key) answer)
    !results

let test_lookup_consistency_all_agree () =
  let engine, net = boot ~seed:5 () in
  let results = collect_lookups engine net in
  List.iteri
    (fun ni addr -> Chord.lookup net ~addr ~key:424242 ~req_id:(1_000_000 + ni) ())
    net.addrs;
  P2_runtime.Engine.run_for engine 5.;
  let answers = List.sort_uniq compare (List.map snd !results) in
  Alcotest.(check int) "single answer cluster" 1 (List.length answers)

let test_node_failure_heals () =
  let engine, net = boot ~seed:7 ~settle:150. () in
  Alcotest.(check bool) "converged" true (Chord.ring_correct net);
  (* kill a non-landmark node; ring must heal around it *)
  let victim = List.nth net.addrs 3 in
  P2_runtime.Engine.crash engine victim;
  P2_runtime.Engine.run_for engine 120.;
  let live = List.filter (fun a -> a <> victim) net.addrs in
  let walk = Chord.ring_walk net in
  Alcotest.(check bool) "victim out of the ring" false (List.mem victim walk);
  Alcotest.(check int) "all live nodes present" (List.length live) (List.length walk);
  Alcotest.(check bool) "ring correct without victim" true
    (Chord.ring_correct ~exclude:[ victim ] net)

let test_lookups_after_failure () =
  let engine, net = boot ~seed:7 ~settle:150. () in
  let victim = List.nth net.addrs 3 in
  P2_runtime.Engine.crash engine victim;
  P2_runtime.Engine.run_for engine 120.;
  let results = collect_lookups engine net in
  let key = 555555 in
  List.iteri
    (fun ni addr ->
      if addr <> victim then Chord.lookup net ~addr ~key ~req_id:(1_000_000 + ni) ())
    net.addrs;
  P2_runtime.Engine.run_for engine 5.;
  let truth = Chord.true_successor net ~exclude:[ victim ] key in
  Alcotest.(check bool) "some lookups answered" true (List.length !results > 0);
  List.iter
    (fun (_, answer) -> Alcotest.(check string) "post-failure answer" truth answer)
    !results

let test_late_join () =
  (* a node joining long after the ring stabilized gets integrated *)
  let engine = P2_runtime.Engine.create ~seed:13 () in
  let net = Chord.boot engine 6 in
  P2_runtime.Engine.run_for engine 120.;
  Alcotest.(check bool) "initial ring" true (Chord.ring_correct net);
  ignore (P2_runtime.Engine.add_node engine "late");
  P2_runtime.Engine.install engine "late" (Chord.program net.params);
  P2_runtime.Engine.install engine "late"
    (Chord.boot_facts ~addr:"late" ~landmark:net.landmark);
  ignore @@ P2_runtime.Engine.inject engine "late" "startJoin" [];
  P2_runtime.Engine.run_for engine 120.;
  let net' = { net with addrs = net.addrs @ [ "late" ] } in
  Alcotest.(check bool) "ring includes late joiner" true (Chord.ring_correct net')

let test_crash_and_recover () =
  let engine, net = boot ~seed:7 ~settle:150. () in
  (* Dense probing plus the passive stabilization-piggybacked check:
     with reliable transport the heal completes within one or two
     stabilization rounds, so a 10 s probe period can sample right past
     the whole inconsistency window. *)
  let mon = Core.Ring_check.install ~active:true ~passive:true ~t_probe:2. net in
  let victim = List.nth net.addrs 3 in
  P2_runtime.Engine.crash engine victim;
  P2_runtime.Engine.run_for engine 120.;
  Alcotest.(check bool) "ring healed around the crash" true
    (Chord.ring_correct ~exclude:[ victim ] net);
  Alcotest.(check bool) "monitors alarmed during the outage" true
    (Core.Alarms.count mon.Core.Ring_check.pred_alarms
     + Core.Alarms.count mon.Core.Ring_check.succ_alarms
    > 0);
  P2_runtime.Engine.recover engine victim;
  (* the recovered node kept its identity but its view is stale;
     re-kick the join protocol and let stabilization do the rest *)
  ignore @@ P2_runtime.Engine.inject engine victim "startJoin" [];
  P2_runtime.Engine.run_for engine 180.;
  Alcotest.(check bool) "full ring re-converged within 180 s" true
    (Chord.ring_correct net);
  (* §3.1.1 agreement: once the ring is whole, the alarms clear *)
  let t_end = P2_runtime.Engine.now engine in
  let recent c = List.length (Core.Alarms.since c (t_end -. 30.)) in
  Alcotest.(check int) "inconsistentPred silent in final window" 0
    (recent mon.Core.Ring_check.pred_alarms);
  Alcotest.(check int) "inconsistentSucc silent in final window" 0
    (recent mon.Core.Ring_check.succ_alarms)

let test_join_leave_churn () =
  let engine, net = boot ~seed:9 ~n:6 ~settle:150. () in
  let net = Chord.join net "x1" in
  P2_runtime.Engine.run_for engine 120.;
  Alcotest.(check bool) "joiner integrated" true (Chord.ring_correct net);
  let leaver = List.nth net.Chord.addrs 2 in
  let net = Chord.leave net leaver in
  P2_runtime.Engine.run_for engine 120.;
  Alcotest.(check bool) "ring heals after fail-stop leave" true
    (Chord.ring_correct net);
  Alcotest.(check bool) "leaver gone from the walk" false
    (List.mem leaver (Chord.ring_walk net));
  Alcotest.check_raises "landmark cannot leave"
    (Invalid_argument "Chord.leave: cannot remove the landmark") (fun () ->
      ignore (Chord.leave net net.Chord.landmark));
  Alcotest.check_raises "duplicate join rejected"
    (Invalid_argument (Fmt.str "Chord.join: duplicate node %s" net.Chord.landmark))
    (fun () -> ignore (Chord.join net net.Chord.landmark))

let test_ids_deterministic () =
  Alcotest.(check int) "id stable" (Chord.id_of_addr "n3") (Chord.id_of_addr "n3");
  Alcotest.(check bool) "ids differ" true
    (Chord.id_of_addr "n1" <> Chord.id_of_addr "n2");
  let n = 21 in
  let ids = List.init n (fun i -> Chord.id_of_addr (Fmt.str "n%d" i)) in
  Alcotest.(check int) "no collisions at paper scale" n
    (List.length (List.sort_uniq compare ids))

let () =
  Alcotest.run "chord"
    [
      ( "convergence",
        [
          Alcotest.test_case "8-node ring" `Slow test_ring_converges;
          Alcotest.test_case "21-node ring" `Slow test_ring_converges_21;
          Alcotest.test_case "succ/pred symmetry" `Slow test_succ_and_pred_symmetry;
          Alcotest.test_case "ids deterministic" `Quick test_ids_deterministic;
        ] );
      ( "lookups",
        [
          Alcotest.test_case "correctness" `Slow test_lookup_correctness;
          Alcotest.test_case "consistency" `Slow test_lookup_consistency_all_agree;
        ] );
      ( "churn",
        [
          Alcotest.test_case "failure heals" `Slow test_node_failure_heals;
          Alcotest.test_case "lookups after failure" `Slow test_lookups_after_failure;
          Alcotest.test_case "late join" `Slow test_late_join;
          Alcotest.test_case "crash and recover" `Slow test_crash_and_recover;
          Alcotest.test_case "join/leave churn" `Slow test_join_leave_churn;
        ] );
    ]
