(* Unit tests for the metrics library: counter/gauge/histogram
   semantics, registry registration rules, snapshot determinism and
   the JSON rendering. *)

let feq = Alcotest.(check (float 1e-9))

(* --- counters and gauges --- *)

let test_counter () =
  let c = Metrics.Counter.create () in
  Alcotest.(check int) "starts at 0" 0 (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.incr c;
  Metrics.Counter.add c 40;
  Alcotest.(check int) "incr + add" 42 (Metrics.Counter.value c)

let test_gauge () =
  let g = Metrics.Gauge.create () in
  feq "starts at 0" 0. (Metrics.Gauge.value g);
  Metrics.Gauge.set g 3.5;
  Metrics.Gauge.add g 1.5;
  feq "set + add" 5. (Metrics.Gauge.value g);
  Metrics.Gauge.max_of g 2.;
  feq "max_of below keeps" 5. (Metrics.Gauge.value g);
  Metrics.Gauge.max_of g 9.;
  feq "max_of above raises" 9. (Metrics.Gauge.value g)

(* --- histograms --- *)

let test_histogram_basic () =
  let h = Metrics.Histogram.create ~bounds:[| 1.; 10.; 100. |] () in
  Alcotest.(check int) "empty count" 0 (Metrics.Histogram.count h);
  feq "empty quantile" 0. (Metrics.Histogram.quantile h 0.5);
  List.iter (Metrics.Histogram.observe h) [ 0.5; 5.; 5.; 50. ];
  Alcotest.(check int) "count" 4 (Metrics.Histogram.count h);
  feq "sum" 60.5 (Metrics.Histogram.sum h);
  feq "max" 50. (Metrics.Histogram.max_value h);
  feq "mean" 15.125 (Metrics.Histogram.mean h);
  (* ranks: 1 obs <=1, 2 obs in (1,10], 1 in (10,100] *)
  feq "p25 -> first bucket bound" 1. (Metrics.Histogram.quantile h 0.25);
  feq "p50 -> second bucket bound" 10. (Metrics.Histogram.quantile h 0.5);
  feq "p100 -> third bucket bound" 100. (Metrics.Histogram.quantile h 1.0)

let test_histogram_overflow_and_buckets () =
  let h = Metrics.Histogram.create ~bounds:[| 1.; 2. |] () in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 1.5; 77. ];
  (* the overflow observation reports the exact maximum *)
  feq "overflow quantile is exact max" 77. (Metrics.Histogram.quantile h 1.0);
  match Metrics.Histogram.buckets h with
  | [ (b1, c1); (b2, c2); (b3, c3) ] ->
      feq "bound 1" 1. b1;
      feq "bound 2" 2. b2;
      Alcotest.(check bool) "overflow bound is inf" true (b3 = infinity);
      Alcotest.(check (list int)) "bucket counts" [ 1; 1; 1 ] [ c1; c2; c3 ]
  | bs -> Alcotest.failf "expected 3 buckets, got %d" (List.length bs)

let test_histogram_validation () =
  let bad bounds =
    match Metrics.Histogram.create ~bounds () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "bad bounds accepted"
  in
  bad [||];
  bad [| 1.; 1. |];
  bad [| 2.; 1. |]

(* --- registry --- *)

let test_registry_names_sorted_and_unique () =
  let r = Metrics.create () in
  Metrics.gauge r "zeta" (fun () -> 1.);
  let c = Metrics.counter r "alpha" in
  Metrics.Counter.incr c;
  Metrics.register r "mid" Metrics.KGauge (fun () -> 2.);
  Alcotest.(check (list string))
    "sorted names" [ "alpha"; "mid"; "zeta" ] (Metrics.names r);
  match Metrics.gauge r "alpha" (fun () -> 0.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate name accepted"

let test_registry_histogram_scalars () =
  let r = Metrics.create () in
  let h = Metrics.Histogram.create () in
  Metrics.attach_histogram r "lat" h;
  Metrics.Histogram.observe h 3.;
  Metrics.Histogram.observe h 5.;
  Alcotest.(check (list string))
    "five derived scalars"
    [ "lat.count"; "lat.max"; "lat.p50"; "lat.p99"; "lat.sum" ]
    (Metrics.names r);
  feq "count scalar" 2. (Option.get (Metrics.value r "lat.count"));
  feq "sum scalar" 8. (Option.get (Metrics.value r "lat.sum"));
  feq "max scalar" 5. (Option.get (Metrics.value r "lat.max"))

let test_snapshot_deterministic () =
  let mk () =
    let r = Metrics.create () in
    let c = Metrics.counter r "events" in
    Metrics.Counter.add c 7;
    Metrics.gauge r "depth" (fun () -> 3.) ;
    r
  in
  let s1 = Metrics.snapshot (mk ()) and s2 = Metrics.snapshot (mk ()) in
  Alcotest.(check bool) "identical registries snapshot identically" true (s1 = s2);
  Alcotest.(check (list string))
    "snapshot order is sorted-name order" [ "depth"; "events" ]
    (List.map (fun (s : Metrics.sample) -> s.name) s1)

(* substring helper without extra deps *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_json_format () =
  let r = Metrics.create () in
  let c = Metrics.counter r "n.count" in
  Metrics.Counter.add c 42;
  Metrics.gauge r "x.level" (fun () -> 1.5);
  let json = Metrics.json_of_samples (Metrics.snapshot r) in
  Alcotest.(check bool) "integral without fraction" true (contains json "\"n.count\": 42");
  Alcotest.(check bool) "float with fraction" true (contains json "\"x.level\": 1.5");
  Alcotest.(check bool) "object braces" true
    (String.length json >= 2 && json.[0] = '{' && json.[String.length json - 1] = '}')

let () =
  Alcotest.run "metrics"
    [
      ( "scalars",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "overflow+buckets" `Quick
            test_histogram_overflow_and_buckets;
          Alcotest.test_case "validation" `Quick test_histogram_validation;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names sorted, duplicates rejected" `Quick
            test_registry_names_sorted_and_unique;
          Alcotest.test_case "histogram scalars" `Quick
            test_registry_histogram_scalars;
          Alcotest.test_case "snapshot determinism" `Quick
            test_snapshot_deterministic;
          Alcotest.test_case "json format" `Quick test_json_format;
        ] );
    ]
