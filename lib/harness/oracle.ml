(** Invariant oracles: host-side ground truth the OverLog monitors are
    cross-checked against (see oracle.mli for the semantics). *)

open Overlog

type config = {
  check_interval : float;
  probe_interval : float;
  grace : float;
  heal_window : float;
  miss_window : float;
  t_probe : float;
  min_answer_rate : float;
}

let default_config =
  {
    check_interval = 2.;
    probe_interval = 15.;
    grace = 30.;
    heal_window = 90.;
    miss_window = 90.;
    t_probe = 10.;
    min_answer_rate = 0.5;
  }

type violation = { time : float; kind : string; detail : string }

let pp_violation ppf v = Fmt.pf ppf "[%8.3f] %-18s %s" v.time v.kind v.detail

type stats = {
  checks : int;
  unhealthy_checks : int;
  alarms : int;
  probes_issued : int;
  probes_answered : int;
  probes_wrong : int;
}

(* Probe request-ids live in their own band so Chord's internal
   finger-fix lookups (f_rand ids) never collide with them. *)
let probe_band = 2_000_000

type probe = { key : int; expect_at_issue : string; healthy_at_issue : bool }

type t = {
  engine : P2_runtime.Engine.t;
  get_net : unit -> Chord.network;
  cfg : config;
  rng : Sim.Rng.t;
  mutable checks : (float * string list) list;  (* newest first *)
  mutable probes_issued : int;
  mutable probes_answered : int;
  mutable probes_wrong : int;
  pending : (int, probe) Hashtbl.t;
  mutable probe_violations : violation list;
  ring_mon : Core.Ring_check.collectors;
}

let crashed_of t net =
  List.filter (fun a -> P2_runtime.Engine.is_crashed t.engine a) net.Chord.addrs

let live_of net crashed =
  List.filter (fun a -> not (List.mem a crashed)) net.Chord.addrs

(* The closest live node clockwise from [a]'s identifier — the true
   ring successor [a]'s bestSucc pointer must name. *)
let expected_succ live a =
  let aid = Chord.id_of_addr a in
  match List.filter (fun b -> b <> a) live with
  | [] -> a
  | others ->
      List.fold_left
        (fun best b ->
          match best with
          | Some x
            when Value.Ring.distance aid (Chord.id_of_addr x)
                 <= Value.Ring.distance aid (Chord.id_of_addr b) ->
              best
          | _ -> Some b)
        None others
      |> Option.get

(* One global invariant sample: the list of violated invariant kinds
   (empty = healthy), computed straight from the node tables. *)
let sample_kinds t =
  let net = t.get_net () in
  let crashed = crashed_of t net in
  let live = live_of net crashed in
  if List.mem net.Chord.landmark crashed then [ "landmark-dead" ]
  else begin
    let kinds = ref [] in
    let push k = if not (List.mem k !kinds) then kinds := k :: !kinds in
    if not (Chord.ring_correct ~exclude:crashed net) then push "ring-walk";
    List.iter
      (fun a ->
        match Chord.best_succ net a with
        | None -> push "no-succ"
        | Some (_, s) ->
            if s <> expected_succ live a then push "succ-order"
            else if s <> a then begin
              (* pointer symmetry: my successor's predecessor is me *)
              match Chord.predecessor net s with
              | Some (_, p) when p = a -> ()
              | Some _ | None -> push "pred-asym"
            end)
      live;
    List.rev !kinds
  end

(* Health gates for probe verdicts are sampled fresh, not read off the
   last periodic check: a fault landing between that check and the
   probe (e.g. a leave 20 ms earlier) would otherwise let a lookup be
   judged against membership its route never saw. *)
let healthy_now t = sample_kinds t = []

(* --- lookup-consistency probes --- *)

let true_succ t net key =
  Chord.true_successor net ~exclude:(crashed_of t net) key

let issue_probe t =
  let net = t.get_net () in
  let key = Sim.Rng.int t.rng Value.Ring.space in
  let req_id = probe_band + t.probes_issued in
  t.probes_issued <- t.probes_issued + 1;
  Hashtbl.replace t.pending req_id
    { key; expect_at_issue = true_succ t net key; healthy_at_issue = healthy_now t };
  Chord.lookup net ~addr:net.Chord.landmark ~key ~req_id ()

let on_probe_result t tuple =
  match Tuple.field tuple 5 with
  | Value.VInt req_id when Hashtbl.mem t.pending req_id ->
      let probe = Hashtbl.find t.pending req_id in
      Hashtbl.remove t.pending req_id;
      t.probes_answered <- t.probes_answered + 1;
      let answer = Value.as_addr (Tuple.field tuple 4) in
      let net = t.get_net () in
      let expect_now = true_succ t net probe.key in
      (* only blame the system when the route oracle is unambiguous:
         healthy at issue and at arrival, membership unchanged *)
      if
        probe.healthy_at_issue && healthy_now t
        && String.equal probe.expect_at_issue expect_now
        && not (String.equal answer expect_now)
      then begin
        t.probes_wrong <- t.probes_wrong + 1;
        t.probe_violations <-
          {
            time = P2_runtime.Engine.now t.engine;
            kind = "lookup-inconsistent";
            detail =
              Fmt.str "lookup(%d) answered %s, oracle route says %s" probe.key
                answer expect_now;
          }
          :: t.probe_violations
      end
  | _ -> ()

(* --- installation --- *)

let rec schedule_check t =
  P2_runtime.Engine.at t.engine
    ~time:(P2_runtime.Engine.now t.engine +. t.cfg.check_interval)
    (fun () ->
      t.checks <- (P2_runtime.Engine.now t.engine, sample_kinds t) :: t.checks;
      schedule_check t)

let rec schedule_probe t =
  P2_runtime.Engine.at t.engine
    ~time:(P2_runtime.Engine.now t.engine +. t.cfg.probe_interval)
    (fun () ->
      issue_probe t;
      schedule_probe t)

let install engine ~get_net ~seed cfg =
  let net = get_net () in
  let ring_mon = Core.Ring_check.install ~active:true ~t_probe:cfg.t_probe net in
  let t =
    {
      engine;
      get_net;
      cfg;
      rng = Sim.Rng.create (seed lxor 0x5ca1ab1e);
      checks = [];
      probes_issued = 0;
      probes_answered = 0;
      probes_wrong = 0;
      pending = Hashtbl.create 16;
      probe_violations = [];
      ring_mon;
    }
  in
  (* probe answers land on the landmark (the prober) *)
  P2_runtime.Engine.watch engine net.Chord.landmark "lookupResults" (fun tuple ->
      on_probe_result t tuple);
  (* first sample right away: the settled ring must already be healthy *)
  t.checks <- (P2_runtime.Engine.now engine, sample_kinds t) :: t.checks;
  schedule_check t;
  schedule_probe t;
  t

let on_join t addr =
  P2_runtime.Engine.install t.engine addr
    (Core.Ring_check.active_program ~t_probe:t.cfg.t_probe ());
  Core.Alarms.watch_more t.ring_mon.Core.Ring_check.pred_alarms t.engine addr;
  Core.Alarms.watch_more t.ring_mon.Core.Ring_check.succ_alarms t.engine addr

(* --- finalization --- *)

(* Maximal streaks of consecutive unhealthy checks, oldest first:
   (start, end, union of kinds). *)
let unhealthy_streaks checks =
  let rec go acc current = function
    | [] -> ( match current with Some s -> s :: acc | None -> acc)
    | (time, kinds) :: rest -> (
        match (kinds, current) with
        | [], None -> go acc None rest
        | [], Some s -> go (s :: acc) None rest
        | _, None -> go acc (Some (time, time, kinds)) rest
        | _, Some (t0, _, ks) ->
            let ks' = List.filter (fun k -> not (List.mem k ks)) kinds @ ks in
            go acc (Some (t0, time, ks')) rest)
  in
  List.rev (go [] None (List.rev checks))

let finalize t =
  let checks = List.rev t.checks (* oldest first *) in
  let streaks = unhealthy_streaks t.checks in
  let alarm_times =
    List.map
      (fun a -> a.Core.Alarms.time)
      (Core.Alarms.alarms t.ring_mon.Core.Ring_check.pred_alarms
      @ Core.Alarms.alarms t.ring_mon.Core.Ring_check.succ_alarms)
    |> List.sort Float.compare
  in
  let violations = ref (List.rev t.probe_violations) in
  let add v = violations := v :: !violations in
  (* 1. unhealed streaks: broken longer than the healing window *)
  List.iter
    (fun (t0, t1, kinds) ->
      if t1 -. t0 >= t.cfg.heal_window then
        add
          {
            time = t0;
            kind = "unhealed";
            detail =
              Fmt.str "invariants %a violated for %.0f s (limit %.0f s)"
                Fmt.(list ~sep:(any ",") string)
                kinds (t1 -. t0) t.cfg.heal_window;
          })
    streaks;
  (* 2. false alarms: monitor fired, oracle healthy throughout ±grace *)
  let unhealthy_near ta =
    List.exists
      (fun (tc, kinds) ->
        kinds <> [] && Float.abs (tc -. ta) <= t.cfg.grace)
      checks
  in
  List.iter
    (fun ta ->
      if not (unhealthy_near ta) then
        add
          {
            time = ta;
            kind = "false-alarm";
            detail =
              Fmt.str "monitor alarm with no oracle violation within %.0f s"
                t.cfg.grace;
          })
    alarm_times;
  (* 3. missed detections: long oracle-bad span, monitors silent *)
  List.iter
    (fun (t0, t1, kinds) ->
      if
        t1 -. t0 >= t.cfg.miss_window
        && not
             (List.exists
                (fun ta -> ta >= t0 -. t.cfg.grace && ta <= t1 +. t.cfg.grace)
                alarm_times)
      then
        add
          {
            time = t0;
            kind = "missed-detection";
            detail =
              Fmt.str "oracle saw %a for %.0f s but the monitors never fired"
                Fmt.(list ~sep:(any ",") string)
                kinds (t1 -. t0);
          })
    streaks;
  (* 4. eventual delivery: monitor probes must keep being answered even
     under message loss — the reliable-transport payoff a loss sweep
     verifies. Few-probe runs are skipped (one pending probe would
     dominate the rate). *)
  if t.probes_issued >= 5 then begin
    let rate =
      float_of_int t.probes_answered /. float_of_int t.probes_issued
    in
    if rate < t.cfg.min_answer_rate then
      add
        {
          time = 0.;
          kind = "probe-starvation";
          detail =
            Fmt.str
              "only %d of %d probe lookups answered (%.0f%%, floor %.0f%%): \
               monitor tuples are not eventually delivered"
              t.probes_answered t.probes_issued (100. *. rate)
              (100. *. t.cfg.min_answer_rate);
        }
  end;
  let violations =
    List.sort (fun a b -> Float.compare a.time b.time) !violations
  in
  let stats =
    {
      checks = List.length checks;
      unhealthy_checks =
        List.length (List.filter (fun (_, ks) -> ks <> []) checks);
      alarms = List.length alarm_times;
      probes_issued = t.probes_issued;
      probes_answered = t.probes_answered;
      probes_wrong = t.probes_wrong;
    }
  in
  (violations, stats)
