(* Epidemic dissemination overlay: full spread, loss resilience,
   dedup via negation, coverage accounting, and the low-coverage
   watchpoint under partition. *)

let boot ?(seed = 5) ?(loss = 0.) ?(n = 16) ?(degree = 3) () =
  let engine = P2_runtime.Engine.create ~seed ~loss_rate:loss () in
  let net = Epidemic.boot ~degree engine n in
  (engine, net)

let test_full_dissemination () =
  let engine, net = boot () in
  Epidemic.publish net ~addr:(List.hd net.addrs) ~item_id:1 ~payload:"hello";
  P2_runtime.Engine.run_for engine 30.;
  Alcotest.(check int) "everyone infected" (List.length net.addrs)
    (List.length (Epidemic.holders net ~item_id:1))

let test_coverage_counts_everyone () =
  let engine, net = boot () in
  let origin = List.hd net.addrs in
  Epidemic.publish net ~addr:origin ~item_id:7 ~payload:"x";
  P2_runtime.Engine.run_for engine 30.;
  Alcotest.(check (option int)) "acks from all others"
    (Some (List.length net.addrs - 1))
    (Epidemic.coverage net ~origin ~item_id:7)

let test_loss_resilience () =
  (* epidemic redundancy beats 20% message loss *)
  let engine, net = boot ~loss:0.2 () in
  Epidemic.publish net ~addr:(List.hd net.addrs) ~item_id:2 ~payload:"lossy";
  P2_runtime.Engine.run_for engine 60.;
  Alcotest.(check int) "everyone infected despite loss" (List.length net.addrs)
    (List.length (Epidemic.holders net ~item_id:2))

let test_multiple_items () =
  let engine, net = boot () in
  List.iteri
    (fun i addr -> Epidemic.publish net ~addr ~item_id:(100 + i) ~payload:"multi")
    net.addrs;
  P2_runtime.Engine.run_for engine 40.;
  List.iteri
    (fun i _ ->
      Alcotest.(check int)
        (Fmt.str "item %d everywhere" (100 + i))
        (List.length net.addrs)
        (List.length (Epidemic.holders net ~item_id:(100 + i))))
    net.addrs

let test_no_duplicate_acks () =
  (* acks are retried while hot (loss tolerance) but the origin's
     ackSeen table deduplicates to exactly one row per node *)
  let engine, net = boot () in
  let origin = List.hd net.addrs in
  Epidemic.publish net ~addr:origin ~item_id:3 ~payload:"once";
  P2_runtime.Engine.run_for engine 40.;
  let node = P2_runtime.Engine.node engine origin in
  let seen =
    match Store.Catalog.find (P2_runtime.Node.catalog node) "ackSeen" with
    | Some t -> Store.Table.size t ~now:(P2_runtime.Engine.now engine)
    | None -> 0
  in
  Alcotest.(check int) "one ackSeen row per node" (List.length net.addrs - 1) seen

let test_latency_orderly () =
  let engine, net = boot () in
  let t0 = P2_runtime.Engine.now engine in
  Epidemic.publish net ~addr:(List.hd net.addrs) ~item_id:4 ~payload:"t";
  P2_runtime.Engine.run_for engine 30.;
  let times = Epidemic.receipt_times net ~item_id:4 in
  Alcotest.(check int) "all receipts" (List.length net.addrs) (List.length times);
  List.iter
    (fun (_, t) ->
      Alcotest.(check bool) "receipt within run" true (t >= t0 && t <= t0 +. 30.))
    times;
  (* with gossip every 2 s and a 16-node degree-3 graph, full spread
     should take a handful of rounds, not the whole run *)
  let latest = List.fold_left (fun acc (_, t) -> Float.max acc t) t0 times in
  Alcotest.(check bool) "spread in bounded rounds" true (latest -. t0 < 20.)

let test_low_coverage_watchpoint () =
  (* partition some nodes away: the origin's e7 watchpoint must report
     lagging coverage after the deadline *)
  let engine, net = boot ~seed:9 () in
  let origin = List.hd net.addrs in
  let alarms = ref [] in
  P2_runtime.Engine.watch engine origin "lowCoverage" (fun t -> alarms := t :: !alarms);
  (* cut a third of the population off entirely *)
  List.iteri
    (fun i addr -> if i >= 11 then P2_runtime.Engine.crash engine addr)
    net.addrs;
  Epidemic.publish net ~addr:origin ~item_id:5 ~payload:"partial";
  P2_runtime.Engine.run_for engine 90.;
  Alcotest.(check bool) "low coverage alarm raised" true (List.length !alarms > 0);
  Alcotest.(check bool) "coverage below population" true
    (match Epidemic.coverage net ~origin ~item_id:5 with
    | Some c -> c < List.length net.addrs - 1
    | None -> false)

let test_no_alarm_on_full_coverage () =
  let engine, net = boot () in
  let origin = List.hd net.addrs in
  let alarms = ref 0 in
  P2_runtime.Engine.watch engine origin "lowCoverage" (fun _ -> incr alarms);
  Epidemic.publish net ~addr:origin ~item_id:6 ~payload:"full";
  P2_runtime.Engine.run_for engine 90.;
  Alcotest.(check int) "no false alarm" 0 !alarms

let () =
  Alcotest.run "epidemic"
    [
      ( "dissemination",
        [
          Alcotest.test_case "full spread" `Slow test_full_dissemination;
          Alcotest.test_case "coverage" `Slow test_coverage_counts_everyone;
          Alcotest.test_case "20% loss" `Slow test_loss_resilience;
          Alcotest.test_case "many items" `Slow test_multiple_items;
          Alcotest.test_case "ack dedup" `Slow test_no_duplicate_acks;
          Alcotest.test_case "latency" `Slow test_latency_orderly;
        ] );
      ( "monitoring",
        [
          Alcotest.test_case "low coverage alarm" `Slow test_low_coverage_watchpoint;
          Alcotest.test_case "no false alarm" `Slow test_no_alarm_on_full_coverage;
        ] );
    ]
