(** Durable table checkpoints (see checkpoint.mli for the on-disk
    format contract). *)

open Overlog

(* --- Framing constants ---------------------------------------------

   Snapshot header (41 bytes, little-endian):
     0   "P2CK"                magic
     4   u8   format version   (1)
     5   f64  stamp            (virtual time of the snapshot)
     13  u64  snapshot index
     21  u32  table count
     25  u32  total row count
     29  u32  body length
     33  u32  CRC-32 of the body
     37  u32  CRC-32 of bytes [0,37)

   Body, one section per table:
     u16  name length | name | u32 row count
     then per row: u32 frame length | Wire data frame (Wire.encode) *)

let magic = "P2CK"
let format_version = 1
let header_len = 41

(* Length sanity bound while decoding: a frame longer than this means
   the length prefix itself is damaged. *)
let max_frame_len = 1 lsl 24

let crc32 = Seglog.crc32

type config = { interval : float; retain : int option }

let default_config = { interval = 10.; retain = Some 3 }

(* --- Directory layout ---------------------------------------------- *)

let file_name ix = Fmt.str "ckpt-%08d.p2ck" ix

let file_index name =
  if
    String.length name = 18
    && String.sub name 0 5 = "ckpt-"
    && Filename.check_suffix name ".p2ck"
  then int_of_string_opt (String.sub name 5 8)
  else None

let files ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun n ->
             Option.map (fun ix -> (ix, Filename.concat dir n)) (file_index n))
      |> List.sort compare

let rec mkdir_p dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- Writer -------------------------------------------------------- *)

type stats = {
  snapshots : int;
  rows : int;
  bytes : int;
  write_ns : int;
  retention_drops : int;
  last_stamp : float;
}

type writer = {
  w_dir : string;
  config : config;
  mutable next_index : int;
  mutable closed : bool;
  mutable snapshots : int;
  mutable rows_written : int;
  mutable bytes_written : int;
  mutable write_ns : int;
  mutable retention_drops : int;
  mutable last_stamp : float;
}

let create ?(config = default_config) ~dir () =
  mkdir_p dir;
  let next_index =
    match List.rev (files ~dir) with (ix, _) :: _ -> ix + 1 | [] -> 0
  in
  {
    w_dir = dir;
    config;
    next_index;
    closed = false;
    snapshots = 0;
    rows_written = 0;
    bytes_written = 0;
    write_ns = 0;
    retention_drops = 0;
    last_stamp = Float.nan;
  }

let dir w = w.w_dir

let stats w =
  {
    snapshots = w.snapshots;
    rows = w.rows_written;
    bytes = w.bytes_written;
    write_ns = w.write_ns;
    retention_drops = w.retention_drops;
    last_stamp = w.last_stamp;
  }

let encode_header ~stamp ~index ~tables ~rows ~body =
  let b = Buffer.create header_len in
  Buffer.add_string b magic;
  Buffer.add_uint8 b format_version;
  Buffer.add_int64_le b (Int64.bits_of_float stamp);
  Buffer.add_int64_le b (Int64.of_int index);
  Buffer.add_int32_le b (Int32.of_int tables);
  Buffer.add_int32_le b (Int32.of_int rows);
  Buffer.add_int32_le b (Int32.of_int (String.length body));
  Buffer.add_int32_le b (Int32.of_int (crc32 body));
  let prefix = Buffer.contents b in
  Buffer.add_int32_le b (Int32.of_int (crc32 prefix));
  Buffer.contents b

let encode_body tables =
  let b = Buffer.create 4096 in
  let rows = ref 0 in
  List.iter
    (fun (name, tuples) ->
      Buffer.add_uint16_le b (String.length name);
      Buffer.add_string b name;
      Buffer.add_int32_le b (Int32.of_int (List.length tuples));
      List.iter
        (fun tuple ->
          incr rows;
          (* Tuple ids reflect allocation order, which varies across
             shard counts; snapshots carry none so seeded runs are
             byte-identical however they were executed (restores mint
             fresh ids anyway). *)
          let frame = Wire.encode (Tuple.with_id tuple 0) in
          Buffer.add_int32_le b (Int32.of_int (String.length frame));
          Buffer.add_string b frame)
        tuples)
    tables;
  (Buffer.contents b, !rows)

let apply_retention w =
  match w.config.retain with
  | None -> ()
  | Some keep ->
      let all = files ~dir:w.w_dir in
      let excess = List.length all - keep in
      if excess > 0 then
        List.iteri
          (fun i (_, path) ->
            if i < excess then begin
              (try Sys.remove path with Sys_error _ -> ());
              w.retention_drops <- w.retention_drops + 1
            end)
          all

let write w ~stamp ~tables =
  if w.closed then invalid_arg "Checkpoint.write: closed writer";
  let t0 = Unix.gettimeofday () in
  let index = w.next_index in
  let body, rows = encode_body tables in
  let header =
    encode_header ~stamp ~index ~tables:(List.length tables) ~rows ~body
  in
  let path = Filename.concat w.w_dir (file_name index) in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc header;
  output_string oc body;
  close_out oc;
  (* The rename is the commit point: readers either see the previous
     set of snapshots or the complete new one, never a torn file. *)
  Sys.rename tmp path;
  w.next_index <- index + 1;
  w.snapshots <- w.snapshots + 1;
  w.rows_written <- w.rows_written + rows;
  w.bytes_written <- w.bytes_written + String.length header + String.length body;
  w.last_stamp <- stamp;
  apply_retention w;
  w.write_ns <- w.write_ns + int_of_float ((Unix.gettimeofday () -. t0) *. 1e9);
  path

let close w = w.closed <- true

(* --- Reader -------------------------------------------------------- *)

type table = { name : string; rows : Wire.message list }

type snapshot = { path : string; index : int; stamp : float; tables : table list }

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          Ok (really_input_string ic len))

let u16_at s off = String.get_uint16_le s off
let u32_at s off = Int32.to_int (String.get_int32_le s off) land 0xFFFFFFFF

type header = {
  h_stamp : float;
  h_index : int;
  h_tables : int;
  h_rows : int;
  h_body_len : int;
  h_body_crc : int;
}

let decode_header s =
  if String.length s < header_len then Error "file shorter than header"
  else if String.sub s 0 4 <> magic then Error "bad magic"
  else if Char.code s.[4] <> format_version then
    Error (Fmt.str "unsupported version %d" (Char.code s.[4]))
  else if u32_at s 37 <> crc32 (String.sub s 0 37) then Error "header CRC mismatch"
  else
    Ok
      {
        h_stamp = Int64.float_of_bits (String.get_int64_le s 5);
        h_index = Int64.to_int (String.get_int64_le s 13);
        h_tables = u32_at s 21;
        h_rows = u32_at s 25;
        h_body_len = u32_at s 29;
        h_body_crc = u32_at s 33;
      }

let decode_body ~tables body =
  let len = String.length body in
  let pos = ref 0 in
  let fail fmt = Fmt.kstr (fun m -> raise (Wire.Error m)) fmt in
  let need n what = if !pos + n > len then fail "truncated %s" what in
  let out = ref [] in
  for _ = 1 to tables do
    need 2 "table name length";
    let nlen = u16_at body !pos in
    pos := !pos + 2;
    need nlen "table name";
    let name = String.sub body !pos nlen in
    pos := !pos + nlen;
    need 4 "row count";
    let count = u32_at body !pos in
    pos := !pos + 4;
    let rows = ref [] in
    for _ = 1 to count do
      need 4 "row length";
      let flen = u32_at body !pos in
      pos := !pos + 4;
      if flen > max_frame_len then fail "row frame length %d out of range" flen;
      need flen "row frame";
      let frame = String.sub body !pos flen in
      pos := !pos + flen;
      match (Wire.decode frame).kind with
      | Wire.Data m -> rows := m :: !rows
      | _ -> fail "row frame is not a data frame"
    done;
    out := { name; rows = List.rev !rows } :: !out
  done;
  if !pos <> len then fail "trailing bytes after last table";
  List.rev !out

let read path =
  match read_file path with
  | Error e -> Error e
  | Ok s -> (
      match decode_header s with
      | Error e -> Error e
      | Ok h ->
          if String.length s - header_len <> h.h_body_len then
            Error
              (Fmt.str "body length %d does not match header %d"
                 (String.length s - header_len)
                 h.h_body_len)
          else
            let body = String.sub s header_len h.h_body_len in
            if crc32 body <> h.h_body_crc then Error "body CRC mismatch"
            else (
              match decode_body ~tables:h.h_tables body with
              | exception Wire.Error e -> Error e
              | tables ->
                  let rows =
                    List.fold_left (fun acc t -> acc + List.length t.rows) 0 tables
                  in
                  if rows <> h.h_rows then
                    Error (Fmt.str "row count %d does not match header %d" rows h.h_rows)
                  else Ok { path; index = h.h_index; stamp = h.h_stamp; tables }))

let latest ~dir =
  let rec scan = function
    | [] -> None
    | (_, path) :: older -> (
        match read path with Ok s -> Some s | Error _ -> scan older)
  in
  scan (List.rev (files ~dir))

(* --- Inventory ------------------------------------------------------ *)

type info = {
  i_path : string;
  i_index : int;
  i_ok : bool;
  i_error : string option;
  i_stamp : float;
  i_tables : int;
  i_rows : int;
  i_bytes : int;
}

let inventory ~dir =
  List.map
    (fun (ix, path) ->
      let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
      match read path with
      | Ok s ->
          {
            i_path = path;
            i_index = ix;
            i_ok = true;
            i_error = None;
            i_stamp = s.stamp;
            i_tables = List.length s.tables;
            i_rows =
              List.fold_left (fun acc t -> acc + List.length t.rows) 0 s.tables;
            i_bytes = bytes;
          }
      | Error e ->
          let stamp =
            match read_file path with
            | Ok s when String.length s >= 13 && String.sub s 0 4 = magic ->
                Int64.float_of_bits (String.get_int64_le s 5)
            | _ -> Float.nan
          in
          {
            i_path = path;
            i_index = ix;
            i_ok = false;
            i_error = Some e;
            i_stamp = stamp;
            i_tables = 0;
            i_rows = 0;
            i_bytes = bytes;
          })
    (files ~dir)
