(** Ring ID-ordering detectors (paper §3.1.2).

    Even a topologically well-formed ring can violate Chord's semantic
    requirement that nodes appear in increasing ID order. Two
    detectors:

    - {b Opportunistic check} (rule ri1): flags any lookup response
      whose node ID falls strictly between the local predecessor and
      successor IDs — evidence that local routing state misses a
      closer node.
    - {b Token traversal} (rules ri2–ri6): a token walks the ring
      along best successors counting ID "wrap-arounds"; a full
      traversal must see exactly one. *)

(** ri1, adapted to our 7-field [lookupResults] and with a guard
    excluding the local node itself (which legitimately lies between
    its own neighbors). *)
let opportunistic_program =
  {|
ri1 closerID@NAddr(ResltNodeID, ResltNodeAddr) :-
    lookupResults@NAddr(Key, ResltNodeID, ResltNodeAddr, ReqNo, RespAddr, SnapID),
    pred@NAddr(PID, PAddr), bestSucc@NAddr(SID, SAddr), node@NAddr(NID),
    PAddr != "-", ResltNodeID != NID, ResltNodeID in (PID, SID).
|}

(** ri2–ri6: the wrap-around counting traversal. *)
let traversal_program =
  {|
ri2 ordering@NAddr(E, NAddr, NID, 0) :- orderingEvent@NAddr(E), node@NAddr(NID).
/* the ordering/countWraps cycle is the traversal itself: one token
   hops successor to successor and ri5's SAddr != SrcAddr stops it
   after a single trip around the ring */
%% allow E502
ri3 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps) :-
    ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SID, SAddr), MyID < SID.
%% allow E502
ri4 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps + 1) :-
    ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SID, SAddr), MyID >= SID.
%% allow E502
ri5 ordering@SAddr(E, SrcAddr, SID, Wraps) :-
    countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps), SAddr != SrcAddr.
ri6 orderingProblem@SrcAddr(E, SrcAddr, SID, Wraps) :-
    countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps), SAddr == SrcAddr, Wraps != 1.
|}

(** Also report successful traversals so tests can observe completion
    (not in the paper, which stays silent on a healthy ring). *)
let traversal_ok_program =
  {|
ri7 orderingOk@SrcAddr(E, Wraps) :-
    countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps), SAddr == SrcAddr, Wraps == 1.
|}

let install ?(opportunistic = true) ?(traversal = true) (net : Chord.network) =
  if opportunistic then
    P2_runtime.Engine.install_all net.engine opportunistic_program;
  if traversal then begin
    P2_runtime.Engine.install_all net.engine traversal_program;
    P2_runtime.Engine.install_all net.engine traversal_ok_program
  end;
  ( Alarms.collect net.engine "closerID",
    Alarms.collect net.engine "orderingProblem",
    Alarms.collect net.engine "orderingOk" )

(** Launch one traversal from [addr] with traversal ID [token]. *)
let start_traversal (net : Chord.network) ~addr ~token =
  ignore @@ P2_runtime.Engine.inject net.engine addr "orderingEvent" [ Overlog.Value.VInt token ]
