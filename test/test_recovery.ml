(* The recovery-time oracle (ISSUE 10 acceptance): on a 21-node ring
   under a crash + partition plan, a checkpointed restart must reach
   ring-invariant convergence in strictly fewer probe ticks than a
   cold rejoin through the landmark — and the verdict must be
   identical however the simulation is sharded. *)

module R = Harness.Recovery

let dir suffix =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Fmt.str "p2rec-test-%d-%s" (Unix.getpid ()) suffix)

let measure ?shards arm suffix =
  R.measure ?shards ~nodes:21 ~seed:11 ~deadline:60. ~dir:(dir suffix) arm

let test_checkpointed_strictly_faster () =
  let ck = measure R.Checkpointed "ck" in
  let cold = measure R.Cold "cold" in
  Alcotest.(check bool) "checkpointed arm recovered from a snapshot" true
    ck.R.recovered_from_checkpoint;
  Alcotest.(check bool) "checkpointed arm restored hard state" true
    (ck.R.restored_rows > 0);
  Alcotest.(check bool) "cold arm restored nothing" true
    (cold.R.restored_rows = 0 && not cold.R.recovered_from_checkpoint);
  Alcotest.(check bool) "checkpoint stream non-empty" true
    (ck.R.ckpt_snapshots > 0 && ck.R.ckpt_bytes > 0);
  match (ck.R.ticks_to_converge, cold.R.ticks_to_converge) with
  | Some fast, Some slow ->
      Alcotest.(check bool)
        (Fmt.str "checkpointed (%d ticks) strictly faster than cold (%d)" fast
           slow)
        true (fast < slow)
  | fast, slow ->
      Alcotest.fail
        (Fmt.str "an arm never converged (ckpt=%s cold=%s)"
           (match fast with Some n -> string_of_int n | None -> "never")
           (match slow with Some n -> string_of_int n | None -> "never"))

let test_verdict_stable_across_shards () =
  let ticks shards arm suffix =
    (measure ~shards arm (Fmt.str "%s-s%d" suffix shards)).R.ticks_to_converge
  in
  let base_ck = ticks 0 R.Checkpointed "ck" in
  let base_cold = ticks 0 R.Cold "cold" in
  List.iter
    (fun shards ->
      Alcotest.(check bool)
        (Fmt.str "shards=%d checkpointed ticks match sequential" shards)
        true
        (ticks shards R.Checkpointed "ck" = base_ck);
      Alcotest.(check bool)
        (Fmt.str "shards=%d cold ticks match sequential" shards)
        true
        (ticks shards R.Cold "cold" = base_cold))
    [ 1; 2 ]

let () =
  Alcotest.run "recovery"
    [
      ( "oracle",
        [
          Alcotest.test_case "checkpointed restart strictly faster" `Slow
            test_checkpointed_strictly_faster;
          Alcotest.test_case "verdict stable across shard counts" `Slow
            test_verdict_stable_across_shards;
        ] );
    ]
