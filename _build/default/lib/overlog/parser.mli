(** Recursive-descent parser for the OverLog dialect.

    See {!Ast} for the supported syntax. Statements end with ['.'];
    lowercase identifiers in expression position are string constants,
    capitalized identifiers are variables, identifiers starting with
    [f_] followed by ['('] are built-in calls, [#123] is a ring-id
    literal, [!pred(...)] in a rule body is negation. *)

exception Error of string * int  (** message, source line *)

(** Parse a program. Raises {!Error} (lexer errors are converted). *)
val parse : string -> Ast.program

val parse_exn : string -> Ast.program

(** Result-typed variant; the error string includes the line. *)
val parse_result : string -> (Ast.program, string) result
