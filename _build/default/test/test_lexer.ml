(* Lexer unit tests. *)

open Overlog

let toks src = List.map fst (Lexer.tokenize src)

let tok = Alcotest.testable (Fmt.of_to_string Lexer.token_to_string) ( = )

let test_idents () =
  Alcotest.(check (list tok)) "cases"
    [ Lexer.IDENT "foo"; Lexer.VARIABLE "Bar"; Lexer.VARIABLE "_"; Lexer.EOF ]
    (toks "foo Bar _")

let test_numbers () =
  Alcotest.(check (list tok)) "ints and floats"
    [ Lexer.INT 42; Lexer.FLOAT 3.5; Lexer.EOF ]
    (toks "42 3.5");
  (* a dot not followed by a digit terminates the statement *)
  Alcotest.(check (list tok)) "int then dot"
    [ Lexer.INT 100; Lexer.DOT; Lexer.EOF ]
    (toks "100.");
  Alcotest.(check (list tok)) "id literal"
    [ Lexer.IDLIT 17; Lexer.EOF ]
    (toks "#17")

let test_strings () =
  Alcotest.(check (list tok)) "plain" [ Lexer.STRING "hi"; Lexer.EOF ] (toks {|"hi"|});
  Alcotest.(check (list tok)) "escapes"
    [ Lexer.STRING "a\nb\"c"; Lexer.EOF ]
    (toks {|"a\nb\"c"|})

let test_operators () =
  Alcotest.(check (list tok)) "punctuation"
    [
      Lexer.LPAREN; Lexer.RPAREN; Lexer.LBRACKET; Lexer.RBRACKET; Lexer.COMMA;
      Lexer.AT; Lexer.IMPLIES; Lexer.ASSIGN; Lexer.EOF;
    ]
    (toks "( ) [ ] , @ :- :=");
  Alcotest.(check (list tok)) "comparisons"
    [
      Lexer.EQ; Lexer.NEQ; Lexer.LE; Lexer.GE; Lexer.LANGLE; Lexer.RANGLE;
      Lexer.BANG; Lexer.EOF;
    ]
    (toks "== != <= >= < > !");
  Alcotest.(check (list tok)) "arith and logic"
    [
      Lexer.PLUS; Lexer.MINUS; Lexer.STAR; Lexer.SLASH; Lexer.PERCENT;
      Lexer.ANDAND; Lexer.OROR; Lexer.EOF;
    ]
    (toks "+ - * / % && ||")

let test_comments () =
  Alcotest.(check (list tok)) "line comment"
    [ Lexer.INT 1; Lexer.INT 2; Lexer.EOF ]
    (toks "1 // comment\n2");
  Alcotest.(check (list tok)) "block comment"
    [ Lexer.INT 1; Lexer.INT 2; Lexer.EOF ]
    (toks "1 /* multi\nline */ 2")

let test_line_numbers () =
  let all = Lexer.tokenize "a\nb\n\nc" in
  Alcotest.(check (list int)) "lines" [ 1; 2; 4; 4 ] (List.map snd all)

let test_errors () =
  let expect_error src =
    match Lexer.tokenize src with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "expected lexer error on %S" src
  in
  expect_error "\"unterminated";
  expect_error "/* unterminated";
  expect_error "$";
  expect_error ": x";
  expect_error "= x";
  expect_error "& x";
  expect_error "#x"

let test_rule_snippet () =
  (* a realistic rule lexes cleanly *)
  let ts = toks {|rp1 reqBestSucc@PAddr(NAddr) :- periodic@NAddr(E, 10), pred@NAddr(PID, PAddr), PAddr != "-".|} in
  Alcotest.(check bool) "nonempty" true (List.length ts > 20);
  Alcotest.(check bool) "ends with dot eof" true
    (match List.rev ts with Lexer.EOF :: Lexer.DOT :: _ -> true | _ -> false)

let () =
  Alcotest.run "lexer"
    [
      ( "lexer",
        [
          Alcotest.test_case "idents" `Quick test_idents;
          Alcotest.test_case "numbers" `Quick test_numbers;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "line numbers" `Quick test_line_numbers;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "rule snippet" `Quick test_rule_snippet;
        ] );
    ]
