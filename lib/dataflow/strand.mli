(** Rule strands: the compiled form of one OverLog rule (the planner
    output of paper §2, Figure 1). *)

open Overlog

type trigger =
  | Event of Ast.atom  (** a transient tuple arriving or created locally *)
  | Periodic of { atom : Ast.atom; period : float }
  | Table_delta of Ast.atom  (** insertion into a materialized table *)

type stage =
  | Join of { atom : Ast.atom; jstage : int; bound : int list; bound_args : Ast.expr list }
      (** [jstage]: 0-based join number. [bound]: 1-indexed argument
          positions (location included) already bound when the stage
          runs — the probe key for the store's hash indexes.
          [bound_args]: the argument expressions at those positions,
          precompiled at strand build time so probes never walk the
          atom with [List.nth] on the hot path. *)
  | Neg_join of { atom : Ast.atom; bound : int list; bound_args : Ast.expr list }
      (** succeeds when no tuple matches *)
  | Select of Ast.expr
  | Bind of string * Ast.expr

type aggregate_plan = {
  agg : Ast.aggregate;
  group_fields : Ast.expr list;  (** head location :: plain head fields *)
}

type t = {
  rule : Ast.rule;
  rule_id : string;
  trigger : trigger;
  stages : stage list;
  stages_arr : stage array;  (** [stages] precomputed for the machine *)
  join_count : int;
  head : Ast.head;
  aggregate : aggregate_plan option;
  naive_stages : stage list;
  naive_stages_arr : stage array;
      (** classical (naive) plan for delta strands: the full body
          re-joined from an empty environment on every delta — the
          ablation control for semi-naive evaluation. Identical to
          [stages] for event/periodic/aggregate strands. *)
}

exception Compile_error of string

val trigger_atom : t -> Ast.atom
val trigger_name : t -> string

(** Compile one rule into its strands. [is_table] says which predicates
    are materialized. A rule with one event predicate gets one strand
    (two events is an error, per P2); a rule over tables only gets one
    delta strand per positive body atom. Raises {!Compile_error} on
    unsafe rules (unbound head or condition variables — delete heads
    excepted, their unbound variables are wildcards). *)
val compile :
  is_table:(string -> bool) -> fresh_rule_id:(unit -> string) -> Ast.rule -> t list

val pp : t Fmt.t
