(* Fault-injection harness (lib/harness): plan generation and text
   round-trips, campaign determinism, a smoke sweep, and the
   acceptance path — a planted successor corruption must be caught by
   the oracle and shrunk to a minimal replayable schedule. *)

module F = Harness.Fault_plan
module C = Harness.Campaign

(* Small but realistic: 6 nodes, 60 s fault window, cooldown long
   enough (> heal_window) to tell healing from failure. *)
let cfg = { C.default_config with nodes = 6; horizon = 60. }
let addrs = List.init cfg.C.nodes (Fmt.str "n%d")

let sorted p =
  let rec go = function
    | { F.time = a; _ } :: ({ F.time = b; _ } :: _ as rest) ->
        a <= b && go rest
    | _ -> true
  in
  go p.F.actions

(* --- fault plans --- *)

let test_plan_roundtrip () =
  for seed = 1 to 25 do
    let rng = Sim.Rng.create seed in
    let plan =
      F.generate ~rng ~addrs ~horizon:60. ~intensity:(1 + (seed mod 4)) ()
    in
    let plan =
      if seed mod 3 = 0 then F.plant_corruption ~rng ~addrs ~time:30. plan
      else plan
    in
    Alcotest.(check bool) "generated plan is sorted" true (sorted plan);
    let reread = F.of_string (F.to_string plan) in
    Alcotest.(check bool) "text round-trip is exact" true (plan = reread)
  done

let test_plan_generation_deterministic () =
  let gen seed =
    F.generate ~rng:(Sim.Rng.create seed) ~addrs ~horizon:60. ~intensity:3 ()
  in
  Alcotest.(check bool) "same seed, same plan" true (gen 7 = gen 7);
  Alcotest.(check bool) "seeds differ, plans differ" false (gen 7 = gen 8);
  Alcotest.(check int) "intensity 0 is the empty plan" 0
    (F.length (F.generate ~rng:(Sim.Rng.create 7) ~addrs ~horizon:60. ~intensity:0 ()))

let test_plan_landmark_protected () =
  for seed = 1 to 25 do
    let rng = Sim.Rng.create seed in
    let plan = F.generate ~rng ~addrs ~horizon:60. ~intensity:4 () in
    List.iter
      (fun { F.action; _ } ->
        match action with
        | F.Crash a | F.Leave a ->
            Alcotest.(check bool) "landmark never crashed or removed" false
              (a = List.hd addrs)
        | _ -> ())
      plan.F.actions
  done

let test_plan_shrink_ops () =
  let plan =
    F.generate ~rng:(Sim.Rng.create 3) ~addrs ~horizon:60. ~intensity:4 ()
  in
  let n = F.length plan in
  Alcotest.(check bool) "plan has actions" true (n > 0);
  for i = 0 to n - 1 do
    Alcotest.(check int) "remove drops one action" (n - 1) (F.length (F.remove plan i))
  done;
  let t = F.truncate plan in
  Alcotest.(check bool) "truncate shrinks the horizon" true (t.F.horizon <= plan.F.horizon);
  for i = 0 to n - 1 do
    let s = F.scale_time plan i in
    Alcotest.(check int) "scale_time keeps the length" n (F.length s);
    Alcotest.(check bool) "scale_time keeps sortedness" true (sorted s)
  done;
  Alcotest.(check (float 0.)) "truncate of empty plan zeroes horizon" 0.
    (F.truncate (F.empty 60.)).F.horizon

(* --- extended fault alphabet (partitions + restarts) --- *)

let test_extended_generation () =
  (* over enough seeds the widened alphabet must actually draw the new
     action kinds, every partition must pair with a later heal, every
     extended crash with a later restart — and the classic draw
     sequence must be untouched when the flag is off *)
  let saw_partition = ref false and saw_restart = ref false in
  for seed = 1 to 40 do
    let plan =
      F.generate ~extended:true
        ~rng:(Sim.Rng.create seed)
        ~addrs ~horizon:60. ~intensity:4 ()
    in
    Alcotest.(check bool) "extended plan sorted" true (sorted plan);
    List.iter
      (fun { F.time; F.action } ->
        match action with
        | F.Partition g ->
            saw_partition := true;
            Alcotest.(check bool) "partition group non-empty" true (g <> []);
            Alcotest.(check bool) "landmark never partitioned" false
              (List.mem (List.hd addrs) g);
            Alcotest.(check bool) "partition paired with a later heal" true
              (List.exists
                 (fun b ->
                   b.F.action = F.Heal_partition g && b.F.time > time)
                 plan.F.actions)
        | F.Restart a ->
            saw_restart := true;
            Alcotest.(check bool) "restart follows its crash" true
              (List.exists
                 (fun b -> b.F.action = F.Crash a && b.F.time < time)
                 plan.F.actions)
        | _ -> ())
      plan.F.actions
  done;
  Alcotest.(check bool) "partitions drawn" true !saw_partition;
  Alcotest.(check bool) "restarts drawn" true !saw_restart;
  let classic seed =
    F.generate ~rng:(Sim.Rng.create seed) ~addrs ~horizon:60. ~intensity:3 ()
  in
  Alcotest.(check bool) "flag off preserves the classic draw sequence" true
    (classic 7 = classic 7
    && List.for_all
         (fun { F.action; _ } ->
           match action with
           | F.Partition _ | F.Heal_partition _ | F.Restart _ -> false
           | _ -> true)
         (classic 7).F.actions)

let test_extended_roundtrip () =
  let plan =
    {
      F.horizon = 60.;
      F.actions =
        [
          { F.time = 5.; F.action = F.Partition [ "n1"; "n3" ] };
          { F.time = 10.; F.action = F.Crash "n2" };
          { F.time = 15.; F.action = F.Heal_partition [ "n1"; "n3" ] };
          { F.time = 20.; F.action = F.Restart "n2" };
        ];
    }
  in
  Alcotest.(check bool) "new actions survive the text round-trip" true
    (F.of_string (F.to_string plan) = plan);
  for seed = 1 to 25 do
    let plan =
      F.generate ~extended:true
        ~rng:(Sim.Rng.create seed)
        ~addrs ~horizon:60. ~intensity:(1 + (seed mod 4)) ()
    in
    Alcotest.(check bool) "generated extended plan round-trips" true
      (F.of_string (F.to_string plan) = plan)
  done

let test_extended_campaign_passes () =
  let cfg =
    {
      cfg with
      C.extended_faults = true;
      C.checkpoint =
        Some
          (Filename.concat
             (Filename.get_temp_dir_name ())
             (Fmt.str "p2camp-test-%d" (Unix.getpid ())));
    }
  in
  let runs = C.sweep cfg ~seeds:[ 3; 4 ] ~intensities:[ 2 ] () in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Fmt.str "seed %d heals through partition/restart faults" r.C.seed)
        true (not (C.failed r)))
    runs

(* --- campaigns --- *)

let test_baseline_passes () =
  let run = C.run_plan cfg ~seed:1 (F.empty 30.) in
  Alcotest.(check bool) "fault-free run passes" true (not (C.failed run));
  Alcotest.(check bool) "oracle sampled" true (run.C.stats.C.oracle.Harness.Oracle.checks > 10)

let test_campaign_reproducible () =
  let r1 = C.run_seed cfg ~seed:2 ~intensity:2 () in
  let r2 = C.run_seed cfg ~seed:2 ~intensity:2 () in
  Alcotest.(check string) "reports identical bit-for-bit"
    (Fmt.str "%a" C.pp_report [ r1 ])
    (Fmt.str "%a" C.pp_report [ r2 ]);
  Alcotest.(check bool) "run records structurally equal" true (r1 = r2)

let test_smoke_sweep () =
  let runs = C.sweep cfg ~seeds:[ 1; 2 ] ~intensities:[ 1 ] () in
  Alcotest.(check int) "sweep covers the grid" 2 (List.length runs);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Fmt.str "seed %d heals and passes" r.C.seed)
        true (not (C.failed r)))
    runs

let test_planted_corruption_caught_and_shrunk () =
  let plan =
    C.plan_of_seed cfg ~seed:1 ~intensity:1
    |> F.plant_corruption ~rng:(Sim.Rng.create 41) ~addrs ~time:30.
  in
  let run = C.run_plan cfg ~seed:1 plan in
  Alcotest.(check bool) "planted corruption detected" true (C.failed run);
  (match run.C.outcome with
  | C.Fail vs ->
      Alcotest.(check bool) "oracle reports an unhealed violation" true
        (List.exists (fun v -> v.Harness.Oracle.kind = "unhealed") vs)
  | C.Pass -> ());
  let shrunk, attempts = C.shrink cfg ~seed:1 run.C.plan in
  Alcotest.(check bool) "shrinker ran" true (attempts > 0);
  Alcotest.(check bool)
    (Fmt.str "shrunk to <= 3 actions (got %d)" (F.length shrunk))
    true
    (F.length shrunk <= 3);
  (* the printed schedule is the replay artifact: re-reading it must
     reproduce the failure *)
  let replayed = F.of_string (F.to_string shrunk) in
  Alcotest.(check bool) "replayed shrunk plan still fails" true
    (C.failed (C.run_plan cfg ~seed:1 replayed))

let () =
  Alcotest.run "harness"
    [
      ( "fault_plan",
        [
          Alcotest.test_case "text round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "deterministic generation" `Quick
            test_plan_generation_deterministic;
          Alcotest.test_case "landmark protected" `Quick test_plan_landmark_protected;
          Alcotest.test_case "shrink operations" `Quick test_plan_shrink_ops;
          Alcotest.test_case "extended generation" `Quick
            test_extended_generation;
          Alcotest.test_case "extended text round-trip" `Quick
            test_extended_roundtrip;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "baseline passes" `Slow test_baseline_passes;
          Alcotest.test_case "reproducible" `Slow test_campaign_reproducible;
          Alcotest.test_case "smoke sweep" `Slow test_smoke_sweep;
          Alcotest.test_case "extended sweep with checkpoints" `Slow
            test_extended_campaign_passes;
          Alcotest.test_case "planted corruption caught, shrunk" `Slow
            test_planted_corruption_caught_and_shrunk;
        ] );
    ]
