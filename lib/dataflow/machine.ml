(** Strand execution machine: the per-node dataflow interpreter.

    Work is scheduled as agenda items so that strand stages can be
    interleaved (pipelined execution, paper §2.1.2). Two scheduling
    modes are supported:

    - [Depth_first] (default): each triggering tuple is processed to
      completion before the next — the sequential semantics of §2.1.1.
    - [Breadth_first]: join continuations are queued behind other
      pending work, so two in-flight inputs to the same strand
      genuinely interleave — exercising the pipelined tracer records.

    All state access goes through a [ctx] of closures supplied by the
    runtime node, keeping this module independent of the network and
    table plumbing. *)

open Overlog

type mode = Depth_first | Breadth_first

(* Evaluation strategy for table-delta strands. [Seminaive] is the
   planner's delta rewriting (paper §2 / Grumbach-Wang-Wu): the newest
   tuple — a frontier of size one — is joined against the full stored
   relations, so each derivation happens once per supporting delta.
   [Naive] is the classical ablation control: any delta merely signals
   "this table changed" and the whole rule body is re-enumerated from
   an empty environment, re-deriving (and re-shipping) everything the
   rule ever produced. Event and periodic strands are unaffected: their
   trigger is transient, so there is no full relation to re-scan. *)
type eval_mode = Seminaive | Naive

type ctx = {
  addr : string;
  now : unit -> float;
  eval_ctx : Eval.context;
  scan : string -> Tuple.t list;  (* contents of a materialized table *)
  probe : string -> positions:int list -> values:Value.t list -> Tuple.t list;
      (* rows whose fields at the 1-indexed positions equal the values,
         in the same (insertion) order a scan would yield them — backed
         by the store's hash indexes, O(matches) instead of O(table) *)
  create_tuple : dst:string -> string -> Value.t list -> Tuple.t;
      (* allocate a node-unique id, register with the tracer, count it *)
  emit : delete:bool -> Tuple.t -> unit;  (* route a head tuple *)
  charge : float -> unit;
  rule_executed : unit -> unit;
  tracer : Tracer.t option;
}

type prov = { cause_id : int; cause_time : float }

(* One triggering input's execution: [pending] counts agenda items
   still in flight for it. When it drains to zero the tracer is told
   the execution finished so it can reclaim that input's record
   (§2.1.2). *)
type exec = { mutable pending : int; input_id : int; traced : bool }
(* [traced = false] for naive-mode re-enumerations: their stage plan
   has different join numbering than the semi-naive plan the tracer's
   pipelined records are keyed on, so they bypass the taps entirely. *)

type item =
  | Run of Strand.t * Strand.stage array * int * Eval.Env.t * prov * exec
      (* execute the given stage plan from index onwards under the
         environment (the plan is carried in the item so a mid-drain
         eval-mode flip cannot mix plans within one execution) *)
  | Join_cont of
      Strand.t * Strand.stage array * int * int * (Eval.Env.t * Tuple.t) list * prov * exec
      (* stage index, join number, remaining matches *)
  | Complete of Strand.t * int * exec
      (* deferred stage-completion signal: the join at this stage has
         handed its last match downstream and seeks new input *)

(* Hot-path self-metrics (always on; each update is one unboxed
   increment). Reflected into [p2Stats] by the runtime — the names are
   catalogued in docs/OPERATIONS.md. *)
type stats = {
  triggers : Metrics.Counter.t;  (* strand triggers that matched *)
  naive_refires : Metrics.Counter.t;
      (* full-body re-enumerations fired by the naive ablation mode *)
  executed : Metrics.Counter.t;  (* agenda items executed *)
  enqueued : Metrics.Counter.t;  (* agenda items pushed *)
  drains : Metrics.Counter.t;  (* drain (fixpoint) invocations *)
  drain_items : Metrics.Histogram.t;  (* items per non-empty drain *)
  drain_work_us : Metrics.Histogram.t;
      (* node-local work (notional µs) consumed per non-empty drain:
         the strand-latency distribution of one fixpoint *)
}

type t = {
  ctx : ctx;
  mutable mode : mode;
  mutable eval_mode : eval_mode;
  mutable use_probe : bool;
      (* ablation switch: false forces every join/negation back onto
         the full-scan path (the pre-index behaviour) *)
  mutable front : item list;
  mutable back : item list;
  stats : stats;
  mutable depth : int;  (* current agenda depth: |front| + |back| *)
  mutable depth_max : int;  (* agenda-depth high-water mark *)
  mutable last_fired : string option;
      (* rule id of the most recently executed strand — the forensic
         breadcrumb reported when the agenda bound trips *)
  mutable ground_truth : (string * int * int) list;
      (* (rule, cause event id, output id): provenance oracle used by
         tests to validate the tracer's inferred ruleExec rows *)
  mutable record_ground_truth : bool;
}

(** The [drain] bound tripped: almost always a runaway recursive
    program. Carries where it happened and which strand was executing
    when the budget ran out, so the report points at the offender. *)
exception
  Agenda_explosion of { addr : string; last_strand : string option; items : int }

let () =
  Printexc.register_printer (function
    | Agenda_explosion { addr; last_strand; items } ->
        Some
          (Fmt.str
             "Machine.Agenda_explosion: node %s exceeded %d agenda items (last strand: \
              %s)"
             addr items
             (Option.value last_strand ~default:"<none>"))
    | _ -> None)

let create ?(mode = Depth_first) ctx =
  {
    ctx;
    mode;
    eval_mode = Seminaive;
    use_probe = true;
    front = [];
    back = [];
    stats =
      {
        triggers = Metrics.Counter.create ();
        naive_refires = Metrics.Counter.create ();
        executed = Metrics.Counter.create ();
        enqueued = Metrics.Counter.create ();
        drains = Metrics.Counter.create ();
        drain_items = Metrics.Histogram.create ();
        drain_work_us = Metrics.Histogram.create ();
      };
    depth = 0;
    depth_max = 0;
    last_fired = None;
    ground_truth = [];
    record_ground_truth = false;
  }

let set_mode t mode = t.mode <- mode
let set_eval_mode t m = t.eval_mode <- m
let eval_mode t = t.eval_mode
let set_use_probe t b = t.use_probe <- b
let stats t = t.stats

let item_exec = function
  | Run (_, _, _, _, _, x) | Join_cont (_, _, _, _, _, _, x) | Complete (_, _, x) -> x

let note_push t =
  Metrics.Counter.incr t.stats.enqueued;
  t.depth <- t.depth + 1;
  if t.depth > t.depth_max then t.depth_max <- t.depth

let push_front t item =
  (item_exec item).pending <- (item_exec item).pending + 1;
  note_push t;
  t.front <- item :: t.front

let push_back t item =
  (item_exec item).pending <- (item_exec item).pending + 1;
  note_push t;
  t.back <- item :: t.back

let pop t =
  let took item =
    t.depth <- t.depth - 1;
    Some item
  in
  match t.front with
  | item :: rest ->
      t.front <- rest;
      took item
  | [] -> (
      match List.rev t.back with
      | [] -> None
      | item :: rest ->
          t.front <- rest;
          t.back <- [];
          took item)

(* The running depth counter tracks |front| + |back| exactly (every
   mutation goes through push_front/push_back/pop), making this O(1). *)
let pending t = t.depth

let agenda_depth = pending
let agenda_depth_max t = t.depth_max

(* --- Tracer taps --- *)

let tap_input t (s : Strand.t) tuple =
  match t.ctx.tracer with
  | Some tr ->
      Tracer.on_input tr ~rule:s.rule_id ~join_count:s.join_count
        ~tuple_id:(Tuple.id tuple)
  | None -> ()

let tap_precondition t (s : Strand.t) ~jstage tuple =
  match t.ctx.tracer with
  | Some tr ->
      Tracer.on_precondition tr ~rule:s.rule_id ~join_count:s.join_count ~stage:jstage
        ~tuple_id:(Tuple.id tuple)
  | None -> ()

let tap_stage_complete t (s : Strand.t) ~jstage =
  match t.ctx.tracer with
  | Some tr ->
      Tracer.on_stage_complete tr ~rule:s.rule_id ~join_count:s.join_count ~stage:jstage
  | None -> ()

let tap_output t (s : Strand.t) tuple =
  match t.ctx.tracer with
  | Some tr ->
      Tracer.on_output tr ~rule:s.rule_id ~join_count:s.join_count
        ~tuple_id:(Tuple.id tuple)
  | None -> ()

(* --- Head emission --- *)

let coerce_addr = function
  | Value.VStr s -> Value.VAddr s
  | v -> v

(* Evaluate a delete head into a pattern tuple: unbound variables act
   as wildcards, encoded as VNull (cs10's [delete lookupCluster@N(
   ProbeID, T, Count)] binds only ProbeID). *)
let eval_delete_field ctx env e =
  match e with
  | Ast.Var v when v <> "_" -> (
      match Eval.Env.find env v with
      | Some x -> x
      | None -> Value.VNull)
  | Ast.Var _ -> Value.VNull
  | e -> Eval.eval ctx env e

let emit_head t (s : Strand.t) env prov x =
  let ctx = t.ctx in
  let head = s.head in
  if head.hdelete then begin
    let loc = coerce_addr (eval_delete_field ctx.eval_ctx env head.hloc) in
    let fields =
      List.map
        (function
          | Ast.Plain e -> eval_delete_field ctx.eval_ctx env e
          | Ast.Agg _ -> Value.VNull)
        head.hfields
    in
    let dst = match loc with Value.VAddr a -> a | _ -> ctx.addr in
    let tuple = ctx.create_tuple ~dst head.hatom (loc :: fields) in
    ctx.rule_executed ();
    ctx.emit ~delete:true tuple
  end
  else begin
    let loc = coerce_addr (Eval.eval ctx.eval_ctx env head.hloc) in
    let fields =
      List.map
        (function
          | Ast.Plain e -> Eval.eval ctx.eval_ctx env e
          | Ast.Agg _ -> invalid_arg "emit_head: aggregate in non-aggregate strand")
        head.hfields
    in
    ctx.charge Sim.Metrics.Cost.element;
    let dst = match loc with Value.VAddr a -> a | _ -> ctx.addr in
    let tuple = ctx.create_tuple ~dst head.hatom (loc :: fields) in
    if x.traced then tap_output t s tuple;
    if t.record_ground_truth then
      t.ground_truth <- (s.rule_id, prov.cause_id, Tuple.id tuple) :: t.ground_truth;
    ctx.rule_executed ();
    ctx.emit ~delete:false tuple
  end

(* --- Stage execution --- *)

exception Unbound_probe

(* Candidate tuples for a join/negation stage. With bound argument
   positions the store's hash index yields the candidates in
   O(matches); unbound patterns (and machines with probing ablated)
   fall back to the full scan. Candidates are a superset filter only:
   [match_atom] still verifies every tuple, so the probe is purely an
   access-path optimization. Probe keys are read, never evaluated —
   only constants and already-bound variables qualify as bound
   positions (see [Strand.probe_positions]). *)
let candidates t env (atom : Ast.atom) bound bound_args =
  if bound = [] || not t.use_probe then t.ctx.scan atom.pred
  else
    match
      List.map
        (fun arg ->
          match arg with
          | Ast.Const v -> v
          | Ast.Var v -> (
              match Eval.Env.find env v with
              | Some x -> x
              | None -> raise_notrace Unbound_probe)
          | _ -> raise_notrace Unbound_probe)
        bound_args
    with
    | values -> t.ctx.probe atom.pred ~positions:bound ~values
    | exception Unbound_probe -> t.ctx.scan atom.pred

(* Run non-join stages inline from [idx]; stop at the next join or the
   head. *)
let rec run_from t (s : Strand.t) stages idx env prov x =
  if idx >= Array.length stages then emit_head t s env prov x
  else
    match stages.(idx) with
    | Strand.Select e ->
        t.ctx.charge Sim.Metrics.Cost.eval;
        if Eval.eval_bool t.ctx.eval_ctx env e then
          run_from t s stages (idx + 1) env prov x
    | Strand.Bind (v, e) ->
        t.ctx.charge Sim.Metrics.Cost.eval;
        let env = Eval.Env.bind env v (Eval.eval t.ctx.eval_ctx env e) in
        run_from t s stages (idx + 1) env prov x
    | Strand.Neg_join { atom; bound; bound_args } ->
        t.ctx.charge Sim.Metrics.Cost.table_lookup;
        let exists =
          Eval.match_atom_exists t.ctx.eval_ctx env atom
            (candidates t env atom bound bound_args)
        in
        if not exists then run_from t s stages (idx + 1) env prov x
    | Strand.Join { atom; jstage; bound; bound_args } ->
        (* Cost model: P2 joins probe hash-indexed tables, so a probe
           costs one lookup plus work proportional to the matches it
           yields — not to the table size. Since the store grew real
           hash indexes this is how the implementation behaves too,
           not just how it is charged. *)
        t.ctx.charge Sim.Metrics.Cost.table_lookup;
        let matches =
          Eval.match_atom_all
            ~on_match:(fun _ -> t.ctx.charge Sim.Metrics.Cost.eval)
            t.ctx.eval_ctx env atom
            (candidates t env atom bound bound_args)
        in
        if matches = [] then (if x.traced then tap_stage_complete t s ~jstage)
        else process_join t s stages idx jstage matches prov x

and process_join t s stages idx jstage matches prov x =
  match matches with
  | [] -> if x.traced then tap_stage_complete t s ~jstage
  | (env', tuple) :: rest ->
      if x.traced then tap_precondition t s ~jstage tuple;
      (match t.mode with
      | Depth_first ->
          (* Continue this match to completion first, then the rest;
             the completion signal runs after the last match's
             downstream work. *)
          if rest = [] then push_front t (Complete (s, jstage, x))
          else push_front t (Join_cont (s, stages, idx, jstage, rest, prov, x));
          push_front t (Run (s, stages, idx + 1, env', prov, x))
      | Breadth_first ->
          push_back t (Run (s, stages, idx + 1, env', prov, x));
          if rest = [] then push_back t (Complete (s, jstage, x))
          else push_back t (Join_cont (s, stages, idx, jstage, rest, prov, x)))

let tap_execution_complete t (s : Strand.t) ~input_id =
  match t.ctx.tracer with
  | Some tr ->
      Tracer.on_execution_complete tr ~rule:s.rule_id ~join_count:s.join_count
        ~input_id
  | None -> ()

let item_strand = function
  | Run (s, _, _, _, _, _) | Join_cont (s, _, _, _, _, _, _) | Complete (s, _, _) -> s

let exec_item t item =
  t.ctx.charge Sim.Metrics.Cost.element;
  Metrics.Counter.incr t.stats.executed;
  let s0 = item_strand item in
  t.last_fired <- Some s0.Strand.rule_id;
  Eval.in_rule ~rule:s0.Strand.rule_id ~pred:s0.head.Ast.hatom (fun () ->
      match item with
      | Run (s, stages, idx, env, prov, x) -> run_from t s stages idx env prov x
      | Join_cont (s, stages, idx, jstage, matches, prov, x) ->
          process_join t s stages idx jstage matches prov x
      | Complete (s, jstage, x) -> if x.traced then tap_stage_complete t s ~jstage);
  let x = item_exec item in
  x.pending <- x.pending - 1;
  if x.pending = 0 && x.traced then
    tap_execution_complete t (item_strand item) ~input_id:x.input_id

(* --- Aggregates --- *)

(* Enumerate all satisfying environments of the stages (synchronous,
   no pipelining: aggregates rescan their source tables, §2
   semantics). *)
let enumerate t (s : Strand.t) env0 =
  let stages = s.stages_arr in
  let results = ref [] in
  let rec go idx env =
    if idx >= Array.length stages then results := env :: !results
    else
      match stages.(idx) with
      | Strand.Select e ->
          t.ctx.charge Sim.Metrics.Cost.eval;
          if Eval.eval_bool t.ctx.eval_ctx env e then go (idx + 1) env
      | Strand.Bind (v, e) ->
          t.ctx.charge Sim.Metrics.Cost.eval;
          go (idx + 1) (Eval.Env.bind env v (Eval.eval t.ctx.eval_ctx env e))
      | Strand.Neg_join { atom; bound; bound_args } ->
          t.ctx.charge Sim.Metrics.Cost.table_lookup;
          let exists =
            Eval.match_atom_exists t.ctx.eval_ctx env atom
              (candidates t env atom bound bound_args)
          in
          if not exists then go (idx + 1) env
      | Strand.Join { atom; bound; bound_args; _ } ->
          t.ctx.charge Sim.Metrics.Cost.table_lookup;
          List.iter
            (fun (env', _) ->
              t.ctx.charge Sim.Metrics.Cost.eval;
              go (idx + 1) env')
            (Eval.match_atom_all t.ctx.eval_ctx env atom
               (candidates t env atom bound bound_args))
  in
  go 0 env0;
  List.rev !results

let agg_value (agg : Ast.aggregate) envs ctx =
  match agg with
  | Ast.Count -> Some (Value.VInt (List.length envs))
  | Ast.Min v | Ast.Max v | Ast.Sum v | Ast.Avg v -> (
      let values =
        List.filter_map (fun env -> Eval.Env.find env v) envs
      in
      match values with
      | [] -> None
      | first :: rest -> (
          match agg with
          | Ast.Min _ ->
              Some (List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) first rest)
          | Ast.Max _ ->
              Some (List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) first rest)
          | Ast.Sum _ ->
              Some
                (List.fold_left
                   (fun a b -> Eval.num_binop Ast.Add a b)
                   first rest)
          | Ast.Avg _ ->
              let sum =
                List.fold_left (fun a b -> a +. Value.as_float b) 0. values
              in
              Some (Value.VFloat (sum /. float_of_int (List.length values)))
          | Ast.Count -> assert false))
  |> fun r ->
  ignore ctx;
  r

let run_aggregate t (s : Strand.t) env0 trigger_tuple =
  let ctx = t.ctx in
  let plan = Option.get s.aggregate in
  let envs = enumerate t s env0 in
  (* Group by the evaluated plain head fields. Keys are structural
     hashes ([Value.hash_values]) with [Value.equal]-checked buckets,
     so no "\x00"-joined key string is materialized per evaluation —
     that string build used to dominate aggregate-strand allocation. *)
  let groups : (int, (Value.t list * Eval.Env.t list ref) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let group_order = ref [] in
  let equal_keys a b =
    try List.for_all2 Value.equal a b with Invalid_argument _ -> false
  in
  List.iter
    (fun env ->
      let key_values = List.map (Eval.eval ctx.eval_ctx env) plan.group_fields in
      let h = Value.hash_values key_values in
      let bucket =
        match Hashtbl.find_opt groups h with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.replace groups h b;
            b
      in
      match List.find_opt (fun (kv, _) -> equal_keys kv key_values) !bucket with
      | Some (_, cell) -> cell := env :: !cell
      | None ->
          let group = (key_values, ref [ env ]) in
          bucket := group :: !bucket;
          group_order := group :: !group_order)
    envs;
  (* Empty-count groups: when an *event* triggers a count whose group
     fields it binds (sr8's haveSnap count), the aggregate must emit 0
     so downstream "is this new?" rules can fire. Table-delta triggers
     must NOT do this: recomputing on a deletion would resurrect
     deleted state as a zero row. *)
  let event_triggered =
    match s.trigger with
    | Strand.Event _ | Strand.Periodic _ -> true
    | Strand.Table_delta _ -> false
  in
  (if !group_order = [] && plan.agg = Ast.Count && event_triggered then
     match
       List.map (fun e -> Eval.eval ctx.eval_ctx env0 e) plan.group_fields
     with
     | key_values -> group_order := [ (key_values, ref []) ]
     | exception _ -> ());
  List.iter
    (fun (key_values, cell) ->
      let group_envs = !cell in
      match
        if group_envs = [] then
          if plan.agg = Ast.Count then Some (Value.VInt 0) else None
        else agg_value plan.agg group_envs ctx.eval_ctx
      with
      | None -> ()
      | Some agg_v ->
          (* Reassemble the head in its original field order. *)
          let remaining = ref (List.tl key_values) (* drop loc *) in
          let loc = coerce_addr (List.hd key_values) in
          let fields =
            List.map
              (function
                | Ast.Plain _ ->
                    let v = List.hd !remaining in
                    remaining := List.tl !remaining;
                    v
                | Ast.Agg _ -> agg_v)
              s.head.hfields
          in
          let dst = match loc with Value.VAddr a -> a | _ -> ctx.addr in
          let tuple = ctx.create_tuple ~dst s.head.hatom (loc :: fields) in
          tap_output t s tuple;
          if t.record_ground_truth then
            t.ground_truth <-
              (s.rule_id, Tuple.id trigger_tuple, Tuple.id tuple) :: t.ground_truth;
          ctx.rule_executed ();
          ctx.emit ~delete:s.head.hdelete tuple)
    (List.rev !group_order);
  (* The virtual stage completes immediately: aggregates are atomic. *)
  tap_stage_complete t s ~jstage:0

(* --- Triggering --- *)

(* For aggregate strands triggered by a table delta, the delta only
   identifies the affected group: keep bindings of group variables and
   rescan everything else (so os8's count<*> counts all reporters for
   the updated oscillator, not just the one in the delta). *)
let restrict_to_group_vars (s : Strand.t) env =
  match s.aggregate with
  | None -> env
  | Some plan ->
      let group_vars = List.concat_map Ast.expr_vars plan.group_fields in
      List.filter (fun (v, _) -> List.mem v group_vars) env

(* True when the strand must run as a naive full-body re-enumeration:
   the machine is in [Naive] mode and the strand is a non-aggregate
   table-delta strand (aggregates already rescan their body on every
   delta, so both modes coincide for them). *)
let naive_refire t (s : Strand.t) =
  t.eval_mode = Naive && s.aggregate = None
  && match s.trigger with
     | Strand.Table_delta _ -> true
     | Strand.Event _ | Strand.Periodic _ -> false

(** Offer a tuple to a strand. Returns true if the trigger matched. *)
let trigger t (s : Strand.t) tuple =
  let atom = Strand.trigger_atom s in
  t.ctx.charge Sim.Metrics.Cost.element;
  if naive_refire t s then begin
    (* Naive ablation: the delta is only a change signal — fire
       unconditionally and re-join the whole body (trigger atom
       included) from an empty environment. Anything previously
       derived is re-emitted; the store's refresh semantics keep the
       cascade finite, but every re-derivation is re-shipped, which is
       exactly the cost semi-naive evaluation avoids. *)
    Metrics.Counter.incr t.stats.triggers;
    Metrics.Counter.incr t.stats.naive_refires;
    t.last_fired <- Some s.rule_id;
    let prov = { cause_id = Tuple.id tuple; cause_time = t.ctx.now () } in
    push_back t
      (Run
         ( s,
           s.naive_stages_arr,
           0,
           Eval.Env.empty,
           prov,
           { pending = 0; input_id = Tuple.id tuple; traced = false } ));
    true
  end
  else
    match
      Eval.in_rule ~rule:s.rule_id ~pred:s.head.Ast.hatom (fun () ->
          Eval.match_atom t.ctx.eval_ctx Eval.Env.empty atom tuple)
    with
    | None -> false
    | Some env ->
        Metrics.Counter.incr t.stats.triggers;
        t.last_fired <- Some s.rule_id;
        Eval.in_rule ~rule:s.rule_id ~pred:s.head.Ast.hatom (fun () ->
            match s.aggregate with
            | Some _ ->
                let env =
                  match s.trigger with
                  | Strand.Table_delta _ -> restrict_to_group_vars s env
                  | Strand.Event _ | Strand.Periodic _ -> env
                in
                tap_input t s tuple;
                run_aggregate t s env tuple;
                tap_execution_complete t s ~input_id:(Tuple.id tuple)
            | None ->
                tap_input t s tuple;
                let prov = { cause_id = Tuple.id tuple; cause_time = t.ctx.now () } in
                push_back t
                  (Run
                     ( s,
                       s.stages_arr,
                       0,
                       env,
                       prov,
                       { pending = 0; input_id = Tuple.id tuple; traced = true } )));
        true

(** Drain the agenda. Bounded to guard against runaway recursive
    programs; raises {!Agenda_explosion} if the bound is exceeded. *)
let drain ?(max_items = 1_000_000) t =
  Metrics.Counter.incr t.stats.drains;
  let t0 = t.ctx.now () in
  let count = ref 0 in
  let rec go () =
    match pop t with
    | None -> ()
    | Some item ->
        incr count;
        if !count > max_items then
          raise
            (Agenda_explosion
               { addr = t.ctx.addr; last_strand = t.last_fired; items = !count });
        exec_item t item;
        go ()
  in
  go ();
  (* Empty drains (every delivery re-checks the agenda) would swamp
     the distributions with zeros; record only fixpoints that did
     work. The work delta is on the node-local clock, whose
     work-units component advances by exactly what this drain
     charged, so it doubles as a per-fixpoint latency in notional µs. *)
  if !count > 0 then begin
    Metrics.Histogram.observe t.stats.drain_items (Float.of_int !count);
    Metrics.Histogram.observe t.stats.drain_work_us
      ((t.ctx.now () -. t0) *. 1e6)
  end

let last_fired t = t.last_fired
let ground_truth t = List.rev t.ground_truth
let set_record_ground_truth t b = t.record_ground_truth <- b
let clear_ground_truth t = t.ground_truth <- []
