test/test_store.ml: Alcotest Ast Catalog List Overlog QCheck QCheck_alcotest Store Table Tuple Value
