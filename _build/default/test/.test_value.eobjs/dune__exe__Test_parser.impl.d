test/test_parser.ml: Alcotest Ast Chord Core Fmt List Overlog Parser Value
