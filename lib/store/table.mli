(** Soft-state tables implementing the paper's [materialize] semantics:
    per-tuple lifetime, bounded size with oldest-state eviction,
    primary keys with replace-on-insert, delta subscriptions, and
    lazily-created secondary hash indexes for O(matches) join probes.

    Time is always supplied by the caller (the simulation clock), so
    table behaviour is deterministic. Expiry is incremental (a
    min-heap ordered by insertion time with lazy invalidation), so
    reads cost O(rows expired since the last read), not O(N). *)

open Overlog

type t

type delta = Insert of Tuple.t | Delete of Tuple.t | Refresh of Tuple.t

type insert_result =
  | Added  (** new row *)
  | Replaced  (** a row with the same primary key had different contents *)
  | Refreshed  (** identical contents: only the lifetime was extended *)

(** [create ?lifetime ?max_size ?keys name]. [keys] are 1-indexed field
    positions forming the primary key; [[]] keys the whole tuple. *)
val create : ?lifetime:float -> ?max_size:int -> ?keys:int list -> string -> t

val of_materialize : Ast.materialize -> t
val name : t -> string
val keys : t -> int list

(** Row lifetime in seconds; [infinity] for hard-state tables. *)
val lifetime : t -> float

(** Register a delta callback. Subscribers run in subscription order;
    registration is O(1) amortized. Bulk removals ([delete_where],
    expiry sweeps) notify only after all rows are gone, so subscribers
    never observe half-deleted tables. *)
val subscribe : t -> (delta -> unit) -> unit

(** Drop rows older than the lifetime, notifying subscribers in
    (insertion time, seq) order. Called implicitly by every reading or
    writing operation; costs O(rows expired since the last call). *)
val expire : t -> now:float -> unit

val size : t -> now:float -> int
val insert : t -> now:float -> Tuple.t -> insert_result

(** Delete the row whose key and contents equal the given tuple's. *)
val delete : t -> now:float -> Tuple.t -> bool

(** Delete all rows matching the predicate; removes and notifies in
    insertion (seq) order. Returns the removed tuples. *)
val delete_where : t -> now:float -> (Tuple.t -> bool) -> Tuple.t list

(** Live rows in insertion order. *)
val tuples : t -> now:float -> Tuple.t list

(** [probe t ~now ~positions ~values]: live rows whose fields at the
    1-indexed [positions] equal [values] under [Value.equal], in
    insertion order — observably identical to filtering {!tuples}, but
    O(matches) via a hash index created lazily on first probe of a
    position set and maintained incrementally across
    insert/replace/delete/evict/expire. [positions = []] is a full
    scan. Raises [Invalid_argument] on a positions/values length
    mismatch. *)
val probe : t -> now:float -> positions:int list -> values:Value.t list -> Tuple.t list

(** Position sets currently carrying an index (introspection/tests). *)
val indexed_positions : t -> int list list

val fold : t -> now:float -> ('a -> Tuple.t -> 'a) -> 'a -> 'a
val iter : t -> now:float -> (Tuple.t -> unit) -> unit
val mem : t -> now:float -> Tuple.t -> bool
val clear : t -> unit
val bytes : t -> now:float -> int

type stats = {
  live : int;  (** rows alive at the query time *)
  inserts : int;  (** lifetime inserts (incl. replaces and refreshes) *)
  deletes : int;  (** explicit deletions *)
  expirations : int;  (** rows dropped by lifetime expiry *)
  evictions : int;  (** rows dropped by the max-size FIFO bound *)
  probes : int;  (** secondary-index probes served *)
}

(** Lifetime operation counts plus the live-row census — the source of
    the runtime's per-table [p2TableStats] reflection. *)
val stats : t -> now:float -> stats

(** Lifetime insert count, read without triggering an expiry sweep —
    safe for metric gauges sampled from arbitrary host contexts. *)
val insert_count : t -> int

(** Lifetime index-probe count, likewise side-effect-free. *)
val probe_count : t -> int
