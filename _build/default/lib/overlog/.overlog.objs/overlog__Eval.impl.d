lib/overlog/eval.ml: Ast Float Fmt Hashtbl List Tuple Value
