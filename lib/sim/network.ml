(** Network model: point-to-point messaging with per-channel FIFO
    delivery, configurable latency/jitter, and fault injection (message
    loss, link cuts, node crashes).

    FIFO per channel is a hard requirement of the paper's
    Chandy–Lamport snapshot implementation (§3.3), so delivery times on
    one channel are forced monotone even with latency jitter. *)

type fate = Deliver of float  (** delivery time *) | Drop of string  (** reason *)

type t = {
  rng : Rng.t;
  mutable base_latency : float;
  mutable jitter : float;  (** uniform extra in [0, jitter) *)
  mutable loss_rate : float;
  last_delivery : (string * string, float) Hashtbl.t;
  cut_links : (string * string, unit) Hashtbl.t;
  crashed : (string, unit) Hashtbl.t;
  mutable tx_count : int;
  mutable drop_count : int;
}

let create ?(base_latency = 0.01) ?(jitter = 0.005) ?(loss_rate = 0.) rng =
  {
    rng;
    base_latency;
    jitter;
    loss_rate;
    last_delivery = Hashtbl.create 64;
    cut_links = Hashtbl.create 8;
    crashed = Hashtbl.create 8;
    tx_count = 0;
    drop_count = 0;
  }

let set_latency t ~base ~jitter =
  t.base_latency <- base;
  t.jitter <- jitter

let set_loss_rate t rate = t.loss_rate <- rate

let cut_link t ~src ~dst = Hashtbl.replace t.cut_links (src, dst) ()
let heal_link t ~src ~dst = Hashtbl.remove t.cut_links (src, dst)

let crash t node = Hashtbl.replace t.crashed node ()
let recover t node = Hashtbl.remove t.crashed node
let is_crashed t node = Hashtbl.mem t.crashed node

(** Purge every row that mentions [node]: FIFO floors, link cuts, and
    crash state. Used when a node is retired so the tables don't leak
    across long churn campaigns. *)
let forget t node =
  let stale tbl =
    Hashtbl.fold
      (fun ((src, dst) as k) _ acc ->
        if String.equal src node || String.equal dst node then k :: acc else acc)
      tbl []
  in
  List.iter (Hashtbl.remove t.last_delivery) (stale t.last_delivery);
  List.iter (Hashtbl.remove t.cut_links) (stale t.cut_links);
  Hashtbl.remove t.crashed node

(** Decide the fate of a message sent from [src] to [dst] at [now]. *)
let send t ~now ~src ~dst =
  t.tx_count <- t.tx_count + 1;
  if Hashtbl.mem t.crashed src then begin
    t.drop_count <- t.drop_count + 1;
    Drop "source crashed"
  end
  else if Hashtbl.mem t.crashed dst then begin
    t.drop_count <- t.drop_count + 1;
    Drop "destination crashed"
  end
  else if Hashtbl.mem t.cut_links (src, dst) then begin
    t.drop_count <- t.drop_count + 1;
    Drop "link cut"
  end
  else if t.loss_rate > 0. && Rng.float t.rng < t.loss_rate then begin
    t.drop_count <- t.drop_count + 1;
    Drop "random loss"
  end
  else begin
    let latency =
      if String.equal src dst then 0.
      else t.base_latency +. (t.jitter *. Rng.float t.rng)
    in
    let naive = now +. latency in
    let key = (src, dst) in
    let fifo_floor =
      match Hashtbl.find_opt t.last_delivery key with
      | Some last -> last +. 1e-9
      | None -> 0.
    in
    let when_ = Float.max naive fifo_floor in
    Hashtbl.replace t.last_delivery key when_;
    Deliver when_
  end

let tx_count t = t.tx_count
let drop_count t = t.drop_count
