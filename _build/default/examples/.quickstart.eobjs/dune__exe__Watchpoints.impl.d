examples/watchpoints.ml: Chord Core Fmt List Overlog P2_runtime Store
