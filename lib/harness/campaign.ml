(** Campaign runner: boot → settle → inject a fault plan → judge →
    shrink failures. See campaign.mli. *)

module Engine = P2_runtime.Engine

type config = {
  nodes : int;
  settle : float;
  horizon : float;
  cooldown : float;
  loss_rate : float;
  reliable : bool;
  seminaive : bool;
  shards : int;
  sanitize : bool;
  trace_log : string option;
  extended_faults : bool;
  checkpoint : string option;
  checkpoint_interval : float;
  params : Chord.params;
  oracle : Oracle.config;
}

let default_config =
  {
    nodes = 8;
    settle = 120.;
    horizon = 120.;
    cooldown = 150.;
    loss_rate = 0.;
    reliable = true;
    seminaive = true;
    shards = 0;
    sanitize = false;
    trace_log = None;
    extended_faults = false;
    checkpoint = None;
    checkpoint_interval = 10.;
    params = Chord.default_params;
    oracle = Oracle.default_config;
  }

(* A run's checkpoint cell is recreated from scratch: re-running one
   (seed, intensity) cell — which the shrinker does dozens of times —
   must not recover from a previous attempt's snapshots. *)
let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

type stats = { tx : int; dropped : int; oracle : Oracle.stats }
type outcome = Pass | Fail of Oracle.violation list

type run = {
  seed : int;
  intensity : int;
  plan : Fault_plan.t;
  outcome : outcome;
  stats : stats;
}

let failed r = match r.outcome with Pass -> false | Fail _ -> true

(* The planted bug: pin [addr]'s bestSucc to [target] with a
   delta-triggered pump — any correction (stabilization, successor
   repair) re-fires the rule in the same engine event, so the
   corruption is visible at every oracle sample. [k] uniquifies the
   table / rule names across multiple plants in one run. *)
let apply_corruption engine addr target k =
  let s = Fmt.str "h%d" k in
  Engine.install engine addr
    (Fmt.str
       {|materialize(corruptTarget%s, infinity, 1, keys(1)).
ctseed%s corruptTarget%s@N(I, A) :- corruptEv%s@N(I, A).
ctpump%s bestSucc@N(I, A2) :- bestSucc@N(I0, A0), corruptTarget%s@N(I, A2), A0 != A2.|}
       s s s s s s);
  ignore
  @@ Engine.inject engine addr
       (Fmt.str "corruptEv%s" s)
       [ Overlog.Value.VId (Chord.id_of_addr target); Overlog.Value.VAddr target ]

let run_plan cfg ~seed ?(intensity = 0) ?after_settle ?on_done (plan : Fault_plan.t) =
  let engine =
    Engine.create ~seed ~loss_rate:cfg.loss_rate ~reliable:cfg.reliable ()
  in
  Engine.set_seminaive engine cfg.seminaive;
  if cfg.shards > 0 then Engine.set_shards engine cfg.shards;
  (* only ever turn the sanitizer ON: engines may already start
     sanitized via P2QL_SANITIZE *)
  if cfg.sanitize then Engine.set_sanitize engine true;
  (* One flight-recorder log per sweep cell, before boot so every node
     gets the shrunk spill-mode tracer window. *)
  Option.iter
    (fun dir ->
      Engine.set_trace_log engine
        (Filename.concat dir (Fmt.str "seed%d-i%d" seed intensity)))
    cfg.trace_log;
  (* Durable checkpoints, one cell directory per (seed, intensity) —
     wiped first so repeated runs (and every shrink attempt) start
     from the same empty disk and stay deterministic. *)
  Option.iter
    (fun dir ->
      let cell = Filename.concat dir (Fmt.str "seed%d-i%d" seed intensity) in
      rm_rf cell;
      Engine.set_checkpoint engine
        ~config:
          { Checkpoint.default_config with interval = cfg.checkpoint_interval }
        cell)
    cfg.checkpoint;
  let net = ref (Chord.boot ~params:cfg.params engine cfg.nodes) in
  Engine.run_until engine cfg.settle;
  Option.iter (fun f -> f engine) after_settle;
  let oracle = Oracle.install engine ~get_net:(fun () -> !net) ~seed cfg.oracle in
  let t0 = Engine.now engine in
  let network = Engine.network engine in
  let tx0 = Sim.Network.tx_count network in
  let drop0 = Sim.Network.drop_count network in
  let corrupt_k = ref 0 in
  (* Link cuts applied per partition group, so the matching heal undoes
     exactly what the cut did even if membership changed in between. *)
  let partition_cuts : (string, (string * string) list) Hashtbl.t =
    Hashtbl.create 4
  in
  let group_key g = String.concat "," (List.sort compare g) in
  (* Every action is guarded so a shrunk plan stays executable when its
     counterpart was removed (a Recover without the Crash, a Leave
     without the Join, ...). *)
  let apply = function
    | Fault_plan.Crash a ->
        if List.mem a !net.Chord.addrs then Engine.crash engine a
    | Fault_plan.Recover a ->
        if List.mem a !net.Chord.addrs && Engine.is_crashed engine a then
          Engine.recover engine a
    | Fault_plan.Cut_link (s, d) -> Engine.cut_link engine ~src:s ~dst:d
    | Fault_plan.Heal_link (s, d) -> Engine.heal_link engine ~src:s ~dst:d
    | Fault_plan.Set_loss r -> Engine.set_loss_rate engine r
    | Fault_plan.Set_latency (b, j) -> Engine.set_latency engine ~base:b ~jitter:j
    | Fault_plan.Join a ->
        if not (List.mem a !net.Chord.addrs) then begin
          net := Chord.join !net a;
          Oracle.on_join oracle a
        end
    | Fault_plan.Leave a ->
        if List.mem a !net.Chord.addrs && a <> !net.Chord.landmark then
          net := Chord.leave !net a
    | Fault_plan.Corrupt_succ (n, target) ->
        if List.mem n !net.Chord.addrs && not (Engine.is_crashed engine n) then begin
          incr corrupt_k;
          apply_corruption engine n target !corrupt_k
        end
    | Fault_plan.Partition group ->
        let members = List.filter (fun a -> List.mem a !net.Chord.addrs) group in
        let rest =
          List.filter (fun a -> not (List.mem a members)) !net.Chord.addrs
        in
        if members <> [] && rest <> [] then begin
          let cuts =
            List.concat_map (fun m -> List.map (fun r -> (m, r)) rest) members
          in
          List.iter
            (fun (m, r) ->
              Engine.cut_link engine ~src:m ~dst:r;
              Engine.cut_link engine ~src:r ~dst:m)
            cuts;
          Hashtbl.replace partition_cuts (group_key group) cuts
        end
    | Fault_plan.Heal_partition group -> (
        match Hashtbl.find_opt partition_cuts (group_key group) with
        | Some cuts ->
            List.iter
              (fun (m, r) ->
                Engine.heal_link engine ~src:m ~dst:r;
                Engine.heal_link engine ~src:r ~dst:m)
              cuts;
            Hashtbl.remove partition_cuts (group_key group)
        | None -> ())
    | Fault_plan.Restart a ->
        if
          List.mem a !net.Chord.addrs
          && a <> !net.Chord.landmark
          && Option.is_some (Engine.node_opt engine a)
        then begin
          let outcome = Engine.restart engine a in
          (* A cold reboot has programs and boot facts back (the engine
             replays them) but no successor state, and Chord's j6
             self-heal needs an existing bestSucc row — re-seed the
             join protocol explicitly. *)
          match outcome.Engine.recovered_from with
          | `Cold -> Chord.rejoin !net a
          | `Checkpoint _ -> ()
        end
  in
  List.iter
    (fun { Fault_plan.time; action } ->
      Engine.at engine ~time:(t0 +. time) (fun () -> apply action))
    plan.Fault_plan.actions;
  Engine.run_until engine (t0 +. plan.Fault_plan.horizon +. cfg.cooldown);
  let violations, ostats = Oracle.finalize oracle in
  (* After the verdict is sealed: a stats dump here cannot perturb the
     run, so hooks may read (but should not advance) the engine. *)
  Option.iter (fun f -> f engine) on_done;
  Engine.close_trace_logs engine;
  Engine.close_checkpoints engine;
  {
    seed;
    intensity;
    plan;
    outcome = (if violations = [] then Pass else Fail violations);
    stats =
      {
        tx = Sim.Network.tx_count network - tx0;
        dropped = Sim.Network.drop_count network - drop0;
        oracle = ostats;
      };
  }

(* Mix seed and intensity into one plan-RNG seed so every cell of a
   sweep gets an independent schedule. *)
let plan_rng ~seed ~intensity = Sim.Rng.create ((seed * 65599) + intensity)

let plan_of_seed cfg ~seed ~intensity =
  let addrs = List.init cfg.nodes (Fmt.str "n%d") in
  Fault_plan.generate ~extended:cfg.extended_faults
    ~rng:(plan_rng ~seed ~intensity)
    ~addrs ~horizon:cfg.horizon ~intensity ()

let run_seed cfg ~seed ~intensity ?after_settle ?on_done () =
  run_plan cfg ~seed ~intensity ?after_settle ?on_done
    (plan_of_seed cfg ~seed ~intensity)

let sweep cfg ~seeds ~intensities ?after_settle ?on_done () =
  List.concat_map
    (fun seed ->
      List.map
        (fun intensity -> run_seed cfg ~seed ~intensity ?after_settle ?on_done ())
        intensities)
    seeds

(* --- shrinking --- *)

let shrink cfg ~seed plan0 =
  (* Shrinking re-executes the same (seed, intensity) cell dozens of
     times; recording those would pile every attempt into one log. *)
  let cfg = { cfg with trace_log = None } in
  let attempts = ref 0 in
  let fails p =
    incr attempts;
    failed (run_plan cfg ~seed p)
  in
  (* greedy single-action removal, to fixpoint *)
  let rec drop_pass p =
    let rec try_i i p changed =
      if i >= Fault_plan.length p then (p, changed)
      else
        let candidate = Fault_plan.remove p i in
        if fails candidate then try_i i candidate true
        else try_i (i + 1) p changed
    in
    let p', changed = try_i 0 p false in
    if changed then drop_pass p' else p'
  in
  let p = drop_pass plan0 in
  (* narrow the observation window to just past the last action *)
  let p =
    let c = Fault_plan.truncate p in
    if c.Fault_plan.horizon < p.Fault_plan.horizon && fails c then c else p
  in
  (* pull actions earlier: halve times while the failure reproduces *)
  let rec time_pass p =
    let rec try_i i p changed =
      if i >= Fault_plan.length p then (p, changed)
      else
        let c = Fault_plan.scale_time p i in
        if c <> p && fails c then try_i i c true
        else try_i (i + 1) p changed
    in
    let p', changed = try_i 0 p false in
    if changed then time_pass p' else p'
  in
  (time_pass p, !attempts)

(* --- reporting --- *)

let pp_outcome ppf = function
  | Pass -> Fmt.string ppf "PASS"
  | Fail vs -> Fmt.pf ppf "FAIL(%d)" (List.length vs)

let pp_run ppf r =
  let o = r.stats.oracle in
  Fmt.pf ppf
    "seed=%-4d intensity=%d actions=%-2d %a tx=%-6d drop=%-5d unhealthy=%d/%d alarms=%-3d probes=%d/%d wrong=%d"
    r.seed r.intensity (Fault_plan.length r.plan) pp_outcome r.outcome
    r.stats.tx r.stats.dropped o.Oracle.unhealthy_checks o.Oracle.checks
    o.Oracle.alarms o.Oracle.probes_answered o.Oracle.probes_issued
    o.Oracle.probes_wrong

let pp_report ppf runs =
  List.iter (fun r -> Fmt.pf ppf "%a@." pp_run r) runs;
  List.iter
    (fun r ->
      match r.outcome with
      | Pass -> ()
      | Fail vs ->
          Fmt.pf ppf "@.seed=%d intensity=%d failed:@." r.seed r.intensity;
          List.iter (fun v -> Fmt.pf ppf "  %a@." Oracle.pp_violation v) vs;
          Fmt.pf ppf "plan:@.%a" Fault_plan.pp r.plan)
    runs;
  let total = List.length runs in
  let passed = List.length (List.filter (fun r -> not (failed r)) runs) in
  Fmt.pf ppf "@.%d/%d runs passed@." passed total
