(** Semantic analysis over parsed OverLog programs. See the interface
    for the pass/code overview.

    Design notes:

    - Every pass appends to a shared diagnostic buffer; nothing is
      fail-fast, so one [p2ql check] run reports the whole story.
    - Stratification uses {e temporal} edges: only pure deductive rules
      (no event predicate in the body, non-delete head) contribute
      dependency edges. A rule triggered by an event or timer derives
      at a strictly later instant, which is exactly how Chord's
      bestSucc/succ/stabilize cycle stays sound — classic stratification
      would falsely reject it.
    - Type inference is deliberately conservative: conflicting evidence
      widens to "unknown" silently, and only locally-provable clashes
      (e.g. a ring id added to a float, a string in a ring interval)
      are reported, so table-driven programs with no facts in scope
      never false-positive. *)

open Overlog

type severity = Error | Warning | Hint

type diagnostic = {
  code : string;
  severity : severity;
  line : int;
  rule : string option;
  message : string;
}

type env = {
  ext_tables : (string * int option) list;
  ext_events : (string * int option) list;
}

let empty_env = { ext_tables = []; ext_events = [] }

exception Rejected of diagnostic list

module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* Predicates the runtime provides: the periodic timer event and the
   tracer's introspection tables (queryable like any table, paper
   §2.1). Their schemas are runtime-defined, so arity and column types
   are not checked here. *)
let reserved_event = "periodic"
let system_tables = [ "ruleExec"; "tupleTable" ]
let is_system p = p = reserved_event || List.mem p system_tables

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

(* --- Program shape helpers --- *)

let positive_atoms (r : Ast.rule) =
  List.filter_map (function Ast.Atom a -> Some a | _ -> None) r.rbody

let negated_atoms (r : Ast.rule) =
  List.filter_map (function Ast.NotAtom a -> Some a | _ -> None) r.rbody

let atom_vars (a : Ast.atom) =
  List.concat_map Ast.expr_vars a.args |> List.filter (fun v -> v <> "_")

(* Variables bound by the rule body: all variables of positive atoms,
   plus assignment targets whose right-hand sides are (transitively)
   bound. Mirrors the strand planner's stage-ordering closure. *)
let bound_vars (r : Ast.rule) =
  let init =
    List.fold_left
      (fun acc a -> SSet.union acc (SSet.of_list (atom_vars a)))
      SSet.empty (positive_atoms r)
  in
  let assigns =
    List.filter_map (function Ast.Assign (v, e) -> Some (v, e) | _ -> None) r.rbody
  in
  let rec close bound =
    let bound' =
      List.fold_left
        (fun acc (v, e) ->
          if List.for_all (fun x -> x = "_" || SSet.mem x acc) (Ast.expr_vars e) then
            SSet.add v acc
          else acc)
        bound assigns
    in
    if SSet.equal bound bound' then bound else close bound'
  in
  close init

let rule_label (r : Ast.rule) = r.rname

(* --- The analyzer --- *)

type ctx = {
  program : Ast.program;
  env : env;
  mutable diags : diagnostic list;
}

let emit ctx ?rule ~code ~severity ~line fmt =
  Fmt.kstr
    (fun message ->
      ctx.diags <- { code; severity; line; rule; message } :: ctx.diags)
    fmt

let rules ctx = List.filter_map (function Ast.Rule r -> Some r | _ -> None) ctx.program

let materializes ctx =
  List.filter_map (function Ast.Materialize m -> Some m | _ -> None) ctx.program

let facts ctx =
  List.filter_map (function Ast.Fact (n, vs, l) -> Some (n, vs, l) | _ -> None) ctx.program

let watches ctx =
  List.filter_map (function Ast.Watch (n, l) -> Some (n, l) | _ -> None) ctx.program

let local_tables ctx = List.map (fun m -> m.Ast.mname) (materializes ctx) |> SSet.of_list

let ext_table_set ctx = SSet.of_list (List.map fst ctx.env.ext_tables)
let ext_event_set ctx = SSet.of_list (List.map fst ctx.env.ext_events)

(* A predicate is a table if materialized here, installed earlier on
   the node (env), or provided by the tracer. Everything else is an
   event — the same classification the strand compiler uses. *)
let is_table ctx p =
  SSet.mem p (local_tables ctx) || SSet.mem p (ext_table_set ctx)
  || List.mem p system_tables

let is_event_atom ctx (a : Ast.atom) =
  a.Ast.pred = reserved_event || not (is_table ctx a.Ast.pred)

(* --- Pass 1: safety / range restriction (E00x) --- *)

let check_safety ctx =
  List.iter
    (fun (r : Ast.rule) ->
      let rule = rule_label r in
      let bound = bound_vars r in
      let unbound vars =
        List.filter (fun v -> v <> "_" && not (SSet.mem v bound)) vars
        |> List.sort_uniq compare
      in
      (* E003: a body with no positive predicate has nothing to fire on. *)
      if positive_atoms r = [] then
        emit ctx ?rule ~code:"E003" ~severity:Error ~line:r.rline
          "rule body has no positive predicate"
      else begin
        (* E001: derivation-head variables must be bound (delete heads
           are patterns; unbound variables there are wildcards, cs10). *)
        if not r.rhead.hdelete then begin
          let head_field_vars =
            List.concat_map
              (function
                | Ast.Plain e -> Ast.expr_vars e
                | Ast.Agg (Min v | Max v | Sum v | Avg v) -> [ v ]
                | Ast.Agg Count -> [])
              r.rhead.hfields
          in
          List.iter
            (fun v ->
              emit ctx ?rule ~code:"E001" ~severity:Error ~line:r.rhead.hline
                "head variable %s is not bound by the body" v)
            (unbound head_field_vars)
        end;
        (* E002: conditions and assignment right-hand sides must be
           fully bound by positive atoms / earlier assignments. *)
        List.iter
          (function
            | Ast.Cond e -> (
                match unbound (Ast.expr_vars e) with
                | [] -> ()
                | vs ->
                    emit ctx ?rule ~code:"E002" ~severity:Error ~line:r.rline
                      "condition uses unbound variable%s %s"
                      (if List.length vs > 1 then "s" else "")
                      (String.concat ", " vs))
            | Ast.Assign (v, e) -> (
                match unbound (Ast.expr_vars e) with
                | [] -> ()
                | vs ->
                    emit ctx ?rule ~code:"E002" ~severity:Error ~line:r.rline
                      "assignment to %s uses unbound variable%s %s" v
                      (if List.length vs > 1 then "s" else "")
                      (String.concat ", " vs))
            | Ast.Atom _ | Ast.NotAtom _ -> ())
          r.rbody
      end;
      (* E004: at most one event predicate per body (P2 restriction) —
         a rule fires on one tuple arrival, the rest must be state. *)
      (match List.filter (is_event_atom ctx) (positive_atoms r) with
      | _ :: _ :: _ as evs ->
          emit ctx ?rule ~code:"E004" ~severity:Error ~line:r.rline
            "more than one event predicate in body (P2 restriction): %s"
            (String.concat ", " (List.map (fun (a : Ast.atom) -> a.pred) evs))
      | _ -> ());
      (* E005: at most one aggregate per head. *)
      let aggs =
        List.filter (function Ast.Agg _ -> true | Ast.Plain _ -> false) r.rhead.hfields
      in
      if List.length aggs > 1 then
        emit ctx ?rule ~code:"E005" ~severity:Error ~line:r.rhead.hline
          "more than one aggregate in rule head";
      (* E006: periodic@N(E, T [, Count]) needs a numeric-literal period. *)
      List.iter
        (fun (a : Ast.atom) ->
          if a.pred = reserved_event then
            match a.args with
            | _ :: _ :: t :: _ -> (
                match t with
                | Ast.Const (Value.VInt _ | Value.VFloat _) -> ()
                | _ ->
                    emit ctx ?rule ~code:"E006" ~severity:Error ~line:a.aline
                      "periodic period must be a numeric constant")
            | _ ->
                emit ctx ?rule ~code:"E006" ~severity:Error ~line:a.aline
                  "periodic needs at least (E, T) fields")
        (positive_atoms r))
    (rules ctx)

(* --- Pass 2: schema consistency (E10x, W10x) --- *)

(* Every use of a predicate with its arity (location included). *)
type use = { uline : int; uarity : int; urule : string option; uwhat : string }

let collect_uses ctx =
  let tbl : (string, use list ref) Hashtbl.t = Hashtbl.create 64 in
  let add p u =
    if not (is_system p) then
      match Hashtbl.find_opt tbl p with
      | Some l -> l := u :: !l
      | None -> Hashtbl.replace tbl p (ref [ u ])
  in
  List.iter
    (fun ((n, vs, line) : string * Value.t list * int) ->
      add n { uline = line; uarity = List.length vs; urule = None; uwhat = "fact" })
    (facts ctx);
  List.iter
    (fun (r : Ast.rule) ->
      let urule = rule_label r in
      add r.rhead.hatom
        {
          uline = r.rhead.hline;
          uarity = 1 + List.length r.rhead.hfields;
          urule;
          uwhat = "rule head";
        };
      List.iter
        (fun (a : Ast.atom) ->
          add a.pred
            { uline = a.aline; uarity = List.length a.args; urule; uwhat = "body atom" })
        (positive_atoms r @ negated_atoms r))
    (rules ctx);
  tbl

let check_schema ctx =
  let uses = collect_uses ctx in
  (* E101: arity agreement across all uses, and against the arity of a
     co-installed definition when the env knows it. *)
  let ext_arity p =
    match List.assoc_opt p ctx.env.ext_tables with
    | Some a -> a
    | None -> Option.join (List.assoc_opt p ctx.env.ext_events)
  in
  Hashtbl.iter
    (fun p l ->
      let us = List.rev !l in
      let reference =
        match ext_arity p with
        | Some a -> Some (a, 0, "co-installed definition")
        | None -> (
            match us with
            | { uarity; uline; uwhat; _ } :: _ -> Some (uarity, uline, uwhat)
            | [] -> None)
      in
      match reference with
      | None -> ()
      | Some (arity, ref_line, ref_what) ->
          List.iter
            (fun u ->
              if u.uarity <> arity then
                emit ctx ?rule:u.urule ~code:"E101" ~severity:Error ~line:u.uline
                  "%s uses %s with arity %d but the %s%s has arity %d" u.uwhat p
                  u.uarity ref_what
                  (if ref_line > 0 then Fmt.str " at line %d" ref_line else "")
                  arity)
            us)
    uses;
  (* E102: materialize keys within arity; E103: duplicate materialize;
     E105: reserved predicates can not be redeclared. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (m : Ast.materialize) ->
      if is_system m.mname then
        emit ctx ~code:"E105" ~severity:Error ~line:m.mline
          "%s is a built-in predicate and can not be materialized" m.mname
      else begin
        (match Hashtbl.find_opt seen m.mname with
        | Some first ->
            emit ctx ~code:"E103" ~severity:Error ~line:m.mline
              "duplicate materialize for %s (first declared at line %d)" m.mname first
        | None -> Hashtbl.replace seen m.mname m.mline);
        let arity =
          match Hashtbl.find_opt uses m.mname with
          | Some l -> ( match !l with u :: _ -> Some u.uarity | [] -> None)
          | None -> None
        in
        List.iter
          (fun k ->
            match arity with
            | _ when k < 1 ->
                emit ctx ~code:"E102" ~severity:Error ~line:m.mline
                  "key position %d is out of range (positions are 1-based)" k
            | Some a when k > a ->
                emit ctx ~code:"E102" ~severity:Error ~line:m.mline
                  "key position %d exceeds the arity of %s (%d, location included)" k
                  m.mname a
            | _ -> ())
          m.mkeys
      end)
    (materializes ctx);
  (* E105 also covers deriving or asserting the built-ins. *)
  List.iter
    (fun (r : Ast.rule) ->
      if is_system r.rhead.hatom then
        emit ctx ?rule:(rule_label r) ~code:"E105" ~severity:Error ~line:r.rhead.hline
          "%s is a built-in predicate and can not appear in a rule head" r.rhead.hatom)
    (rules ctx);
  List.iter
    (fun (n, _, line) ->
      if is_system n then
        emit ctx ~code:"E105" ~severity:Error ~line
          "%s is a built-in predicate and can not be asserted as a fact" n)
    (facts ctx);
  (* E104: delete heads are patterns over materialized tables; deleting
     from an event stream is meaningless. *)
  List.iter
    (fun (r : Ast.rule) ->
      if r.rhead.hdelete && not (is_table ctx r.rhead.hatom) then
        emit ctx ?rule:(rule_label r) ~code:"E104" ~severity:Error ~line:r.rhead.hline
          "delete head %s is not a materialized table" r.rhead.hatom)
    (rules ctx);
  (* W106: duplicate rule names confuse tracing (ruleExec is keyed on
     the rule id). *)
  let named = Hashtbl.create 16 in
  List.iter
    (fun (r : Ast.rule) ->
      match r.rname with
      | None -> ()
      | Some n -> (
          match Hashtbl.find_opt named n with
          | Some first ->
              emit ctx ~rule:n ~code:"W106" ~severity:Warning ~line:r.rline
                "duplicate rule name %s (first used at line %d)" n first
          | None -> Hashtbl.replace named n r.rline))
    (rules ctx)

(* --- Pass 3: type inference (E20x, W20x) --- *)

type ty = TInt | TFloat | TStr | TBool | TId | TAddr | TList | TAny

let ty_name = function
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "string"
  | TBool -> "bool"
  | TId -> "id"
  | TAddr -> "addr"
  | TList -> "list"
  | TAny -> "?"

let ty_of_value = function
  | Value.VInt _ -> TInt
  | Value.VFloat _ -> TFloat
  | Value.VStr _ -> TStr
  | Value.VBool _ -> TBool
  | Value.VId _ -> TId
  | Value.VAddr _ -> TAddr
  | Value.VList _ -> TList
  | Value.VNull -> TAny

(* Join for column/variable types. Pairs the runtime treats as
   interchangeable join to the more specific runtime behaviour; any
   other mix widens silently to TAny (never a diagnostic: cross-rule
   evidence is circumstantial). *)
let join a b =
  if a = b then a
  else
    match (a, b) with
    | TAny, _ | _, TAny -> TAny
    | TInt, TFloat | TFloat, TInt -> TFloat
    | TInt, TId | TId, TInt -> TId
    | TStr, TAddr | TAddr, TStr -> TAddr
    | _ -> TAny

let numeric = function TInt | TFloat | TId | TAny -> true | _ -> false
let ring_compatible = function TInt | TId | TAny -> true | _ -> false

(* Comparison classes, following Value.equal/compare cross-compatibility. *)
let comparable a b =
  let cls = function
    | TInt | TFloat | TId -> `Num
    | TStr | TAddr -> `Str
    | TBool -> `Bool
    | TList -> `List
    | TAny -> `Any
  in
  match (cls a, cls b) with `Any, _ | _, `Any -> true | ca, cb -> ca = cb

let type_pass ctx =
  (* Column types per predicate, grown from facts, builtin results and
     head derivations over a few fixpoint rounds; diagnostics are only
     emitted on the final (reporting) round. *)
  (* Per-column lattice: None = no evidence yet, Some TAny = top
     (unknown or conflicting — never reported), Some concrete between.
     The merge is monotone, so the capped fixpoint rounds converge. *)
  let cols : (string, ty option array) Hashtbl.t = Hashtbl.create 32 in
  let col_ty p i =
    if is_system p then TAny
    else
      match Hashtbl.find_opt cols p with
      | Some a when i < Array.length a -> Option.value a.(i) ~default:TAny
      | _ -> TAny
  in
  let update_col p i t =
    if not (is_system p) then begin
      let a =
        match Hashtbl.find_opt cols p with
        | Some a when i < Array.length a -> a
        | Some a ->
            let b = Array.make (i + 1) None in
            Array.blit a 0 b 0 (Array.length a);
            Hashtbl.replace cols p b;
            b
        | None ->
            let b = Array.make (i + 1) None in
            Hashtbl.replace cols p b;
            b
      in
      a.(i) <-
        (match a.(i) with
        | None -> Some t
        | Some t0 -> Some (join t0 t))
    end
  in
  (* Seed from facts. Location fields are addresses at runtime (the
     installer coerces the string), whatever the literal looked like. *)
  List.iter
    (fun (n, vs, _) ->
      List.iteri (fun i v -> update_col n i (if i = 0 then TAddr else ty_of_value v)) vs)
    (facts ctx);
  let report = ref false in
  let infer_rule (r : Ast.rule) =
    let rule = rule_label r in
    let venv = ref SMap.empty in
    let bind v t =
      if v <> "_" then
        venv :=
          SMap.update v
            (function None -> Some t | Some t0 -> Some (join t0 t))
            !venv
    in
    let var_ty v = Option.value (SMap.find_opt v !venv) ~default:TAny in
    (* Variables take the column types of the positive atoms binding
       them (negated atoms are patterns over the same columns). *)
    List.iter
      (fun (a : Ast.atom) ->
        List.iteri
          (fun i e ->
            match e with
            | Ast.Var v -> bind v (if i = 0 then TAddr else col_ty a.pred i)
            | _ -> ())
          a.args)
      (positive_atoms r @ negated_atoms r);
    let diag code line fmt = emit ctx ?rule ~code ~severity:Error ~line fmt in
    let rec infer line e =
      match e with
      | Ast.Var "_" -> TAny
      | Ast.Var v -> var_ty v
      | Ast.Const v -> ty_of_value v
      | Ast.Neg e ->
          let t = infer line e in
          if !report && not (numeric t) then
            diag "E201" line "cannot negate a %s value" (ty_name t);
          t
      | Ast.Unop_not e ->
          ignore (infer line e);
          TBool
      | Ast.ListExpr es ->
          List.iter (fun e -> ignore (infer line e)) es;
          TList
      | Ast.InRange (x, a, b, _) ->
          List.iter
            (fun e ->
              let t = infer line e in
              if !report && not (ring_compatible t) then
                diag "E203" line
                  "ring interval test over a %s value (identifiers or ints required)"
                  (ty_name t))
            [ x; a; b ];
          TBool
      | Ast.Binop ((Ast.And | Ast.Or), a, b) ->
          ignore (infer line a);
          ignore (infer line b);
          TBool
      | Ast.Binop ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b)
        ->
          let ta = infer line a and tb = infer line b in
          if !report && not (comparable ta tb) then
            diag "E202" line "comparison %s between %s and %s can never hold"
              (Ast.binop_name op) (ty_name ta) (ty_name tb);
          TBool
      | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op, a, b) ->
          let ta = infer line a and tb = infer line b in
          arith line op ta tb
      | Ast.Call (f, args) ->
          let tys = List.map (infer line) args in
          builtin line f tys
    and arith line op ta tb =
      let bad () =
        if !report then
          diag "E201" line "operator %s applied to %s and %s" (Ast.binop_name op)
            (ty_name ta) (ty_name tb)
      in
      match op with
      | Ast.Add when ta = TList || tb = TList -> TList
      | Ast.Add when ta = TStr && tb = TStr -> TStr
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
          if not (numeric ta && numeric tb) then begin
            bad ();
            TAny
          end
          else if (ta = TId && tb = TFloat) || (ta = TFloat && tb = TId) then begin
            (* ids and floats have no common arithmetic at runtime *)
            bad ();
            TAny
          end
          else begin
            if !report && op = Ast.Div && ta = TInt && tb = TInt then
              emit ctx ?rule ~code:"W206" ~severity:Warning ~line
                "integer division truncates; wrap an operand in f_float for a ratio";
            if ta = TId || tb = TId then TId
            else if ta = TFloat || tb = TFloat then TFloat
            else if ta = TInt && tb = TInt then TInt
            else TAny
          end
      | _ -> assert false
    and builtin line f tys =
      let n = List.length tys in
      let arg i = List.nth tys i in
      let want i pred what =
        if !report && not (pred (arg i)) then
          diag "E205" line "%s: argument %d is a %s (%s expected)" f (i + 1)
            (ty_name (arg i)) what
      in
      let is_list = function TList | TAny -> true | _ -> false in
      let is_float_ok = function TInt | TFloat | TAny -> true | _ -> false in
      match (f, n) with
      | "f_now", 0 -> TFloat
      | "f_rand", 0 -> TInt
      | "f_randID", 0 -> TId
      | "f_localAddr", 0 -> TAddr
      | "f_coinFlip", 1 ->
          want 0 is_float_ok "probability";
          TBool
      | "f_size", 1 ->
          want 0 is_list "list";
          TInt
      | ("f_first" | "f_last"), 1 ->
          want 0 is_list "list";
          TAny
      | "f_member", 2 ->
          want 0 is_list "list";
          TBool
      | "f_pow2", 1 ->
          want 0 ring_compatible "int";
          TInt
      | "f_float", 1 ->
          want 0 is_float_ok "number";
          TFloat
      | "f_int", 1 ->
          want 0 numeric "number";
          TInt
      | "f_id", 1 -> TId
      | "f_str", 1 -> TStr
      | ("f_min" | "f_max"), 2 ->
          if !report && not (comparable (arg 0) (arg 1)) then
            diag "E205" line "%s: %s and %s are not comparable" f (ty_name (arg 0))
              (ty_name (arg 1));
          join (arg 0) (arg 1)
      | "f_abs", 1 ->
          want 0 is_float_ok "number";
          arg 0
      | _ ->
          if !report then
            diag "E204" line "unknown builtin %s/%d" f n;
          TAny
    in
    (* Assignments in textual order, twice: the planner defers terms
       whose variables a later join binds, so one sweep can be short.
       The first sweep is always silent so the reporting round emits
       each assignment diagnostic exactly once. *)
    let saved_report = !report in
    report := false;
    List.iter
      (function
        | Ast.Assign (v, e) -> bind v (infer r.rline e)
        | _ -> ())
      r.rbody;
    report := saved_report;
    List.iter
      (function
        | Ast.Assign (v, e) -> bind v (infer r.rline e)
        | _ -> ())
      r.rbody;
    (* Conditions and atom argument expressions are only walked when
       reporting — they produce no bindings. *)
    if !report then
      List.iter
        (function
          | Ast.Cond e -> ignore (infer r.rline e)
          | Ast.Atom a | Ast.NotAtom a ->
              List.iter
                (function
                  | Ast.Var _ | Ast.Const _ -> ()
                  | e -> ignore (infer a.aline e))
                a.args
          | Ast.Assign _ -> ())
        r.rbody;
    (* Flow the head derivation into the head predicate's columns. *)
    if not r.rhead.hdelete then begin
      update_col r.rhead.hatom 0 TAddr;
      List.iteri
        (fun i f ->
          let t =
            match f with
            | Ast.Plain e -> infer r.rhead.hline e
            | Ast.Agg Ast.Count -> TInt
            | Ast.Agg (Ast.Min v | Ast.Max v | Ast.Sum v) -> var_ty v
            | Ast.Agg (Ast.Avg _) -> TFloat
          in
          update_col r.rhead.hatom (i + 1) t)
        r.rhead.hfields
    end
  in
  for _ = 1 to 5 do
    List.iter infer_rule (rules ctx)
  done;
  report := true;
  List.iter infer_rule (rules ctx)

(* --- Pass 4: stratification (E30x) --- *)

let check_stratification ctx =
  (* Only pure deductive rules — every positive body atom a table, no
     periodic trigger, non-delete head — contribute edges. Event- and
     timer-triggered rules derive at a later instant (temporal edges in
     the Dedalus sense) and so can not build a same-instant cycle. *)
  let deductive =
    List.filter
      (fun (r : Ast.rule) ->
        (not r.rhead.hdelete)
        && positive_atoms r <> []
        && List.for_all (fun a -> not (is_event_atom ctx a)) (positive_atoms r))
      (rules ctx)
  in
  (* edge: (from-predicate, to-head, kind, rule, line) *)
  let edges =
    List.concat_map
      (fun (r : Ast.rule) ->
        let h = r.rhead.hatom in
        let agg = Ast.rule_has_aggregate r in
        List.map
          (fun (a : Ast.atom) ->
            (a.pred, h, (if agg then `Agg else `Pos), r, a.aline))
          (positive_atoms r)
        @ List.map
            (fun (a : Ast.atom) -> (a.pred, h, `Neg, r, a.aline))
            (negated_atoms r))
      deductive
  in
  (* Strongly connected components by Kosaraju over the predicate graph. *)
  let adj = Hashtbl.create 32 and radj = Hashtbl.create 32 in
  let nodes = Hashtbl.create 32 in
  let add_edge tbl u v =
    let l = match Hashtbl.find_opt tbl u with Some l -> l | None -> [] in
    Hashtbl.replace tbl u (v :: l)
  in
  List.iter
    (fun (u, v, _, _, _) ->
      Hashtbl.replace nodes u ();
      Hashtbl.replace nodes v ();
      add_edge adj u v;
      add_edge radj v u)
    edges;
  let order = ref [] in
  let visited = Hashtbl.create 32 in
  let rec dfs1 u =
    if not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      List.iter dfs1 (Option.value (Hashtbl.find_opt adj u) ~default:[]);
      order := u :: !order
    end
  in
  Hashtbl.iter (fun u () -> dfs1 u) nodes;
  let comp = Hashtbl.create 32 in
  let rec dfs2 u c =
    if not (Hashtbl.mem comp u) then begin
      Hashtbl.replace comp u c;
      List.iter (fun v -> dfs2 v c) (Option.value (Hashtbl.find_opt radj u) ~default:[])
    end
  in
  List.iteri (fun i u -> dfs2 u i) !order;
  let same_comp u v =
    match (Hashtbl.find_opt comp u, Hashtbl.find_opt comp v) with
    | Some a, Some b -> a = b
    | _ -> false
  in
  List.iter
    (fun (u, v, kind, r, line) ->
      if same_comp u v then
        match kind with
        | `Neg ->
            emit ctx ?rule:(rule_label r) ~code:"E301" ~severity:Error ~line
              "%s depends negatively on %s inside a recursive cycle (not stratifiable)"
              v u
        | `Agg ->
            emit ctx ?rule:(rule_label r) ~code:"E302" ~severity:Error ~line
              "%s aggregates over %s inside a recursive cycle (not stratifiable)" v u
        | `Pos -> ())
    edges

(* --- Pass 5: location well-formedness (E40x) --- *)

let check_locations ctx =
  List.iter
    (fun (r : Ast.rule) ->
      let rule = rule_label r in
      (* The link restriction: every body atom names the same location
         specifier — a rule evaluates at one node; rewrites that split
         multi-site rules are the planner's job upstream, not ours. *)
      let specs =
        List.filter_map
          (fun (a : Ast.atom) ->
            match a.args with
            | [] -> None
            | loc :: _ -> (
                match loc with
                | Ast.Var "_" -> None
                | Ast.Var v -> Some (`Spec ("variable " ^ v))
                | Ast.Const c -> Some (`Spec (Fmt.str "constant %a" Value.pp c))
                | _ -> Some `Complex))
          (positive_atoms r @ negated_atoms r)
      in
      List.iter
        (fun (a : Ast.atom) ->
          match a.args with
          | (Ast.Var _ | Ast.Const _) :: _ | [] -> ()
          | _ ->
              emit ctx ?rule ~code:"E403" ~severity:Error ~line:a.aline
                "location of %s must be a variable or constant" a.pred)
        (positive_atoms r @ negated_atoms r);
      let distinct =
        List.sort_uniq compare
          (List.filter_map (function `Spec s -> Some s | `Complex -> None) specs)
      in
      (match distinct with
      | _ :: _ :: _ ->
          emit ctx ?rule ~code:"E401" ~severity:Error ~line:r.rline
            "body atoms join across distinct locations (%s); a rule evaluates at one \
             node"
            (String.concat ", " distinct)
      | _ -> ());
      (* Head location: a variable must be bound (delete heads route on
         whatever the pattern binds, wildcards included). *)
      match r.rhead.hloc with
      | Ast.Var "_" when not r.rhead.hdelete ->
          emit ctx ?rule ~code:"E402" ~severity:Error ~line:r.rhead.hline
            "head location can not be a wildcard"
      | Ast.Var v ->
          if (not r.rhead.hdelete) && not (SSet.mem v (bound_vars r)) then
            emit ctx ?rule ~code:"E402" ~severity:Error ~line:r.rhead.hline
              "head location variable %s is not bound by the body" v
      | Ast.Const _ -> ()
      | _ ->
          emit ctx ?rule ~code:"E403" ~severity:Error ~line:r.rhead.hline
            "head location must be a variable or constant")
    (rules ctx)

(* --- Pass 6: liveness (W60x, H70x) --- *)

let check_liveness ctx =
  let produced =
    List.fold_left
      (fun acc (r : Ast.rule) ->
        if r.rhead.hdelete then acc else SSet.add r.rhead.hatom acc)
      SSet.empty (rules ctx)
  in
  let produced =
    List.fold_left (fun acc (n, _, _) -> SSet.add n acc) produced (facts ctx)
  in
  let consumed =
    List.fold_left
      (fun acc (r : Ast.rule) ->
        let acc =
          List.fold_left
            (fun acc (a : Ast.atom) -> SSet.add a.pred acc)
            acc
            (positive_atoms r @ negated_atoms r)
        in
        if r.rhead.hdelete then SSet.add r.rhead.hatom acc else acc)
      SSet.empty (rules ctx)
  in
  let known p =
    is_system p || is_table ctx p
    || SSet.mem p (ext_event_set ctx)
    || SSet.mem p produced || SSet.mem p consumed
  in
  (* W601: watching a predicate nothing defines is a typo. *)
  List.iter
    (fun (n, line) ->
      if not (known n) then
        emit ctx ~code:"W601" ~severity:Warning ~line
          "watch of unknown predicate %s" n)
    (watches ctx);
  (* W602: a table materialized here that no rule or fact touches. *)
  List.iter
    (fun (m : Ast.materialize) ->
      if
        (not (SSet.mem m.mname produced))
        && not (SSet.mem m.mname consumed)
      then
        emit ctx ~code:"W602" ~severity:Warning ~line:m.mline
          "table %s is materialized but never read or written" m.mname)
    (materializes ctx);
  (* Hints: predicates this program assumes someone else supplies. The
     paper's piecemeal installs make this legitimate, hence hint-level. *)
  let hinted = Hashtbl.create 8 in
  List.iter
    (fun (r : Ast.rule) ->
      List.iter
        (fun (a : Ast.atom) ->
          let p = a.pred in
          if not (Hashtbl.mem hinted p) then
            if
              is_event_atom ctx a && p <> reserved_event
              && (not (SSet.mem p produced))
              && not (SSet.mem p (ext_event_set ctx))
            then begin
              Hashtbl.replace hinted p ();
              emit ctx ?rule:(rule_label r) ~code:"H701" ~severity:Hint ~line:a.aline
                "event %s is never derived here; rules triggered by it only fire if \
                 it is injected or installed elsewhere"
                p
            end
            else if
              SSet.mem p (local_tables ctx)
              && (not (SSet.mem p produced))
              && not (Hashtbl.mem hinted p)
            then begin
              Hashtbl.replace hinted p ();
              emit ctx ?rule:(rule_label r) ~code:"H702" ~severity:Hint ~line:a.aline
                "table %s is read but never written by this program; assumed \
                 populated externally"
                p
            end)
        (positive_atoms r @ negated_atoms r))
    (rules ctx)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* --- Pass 7: cascade / message-cost analysis (E50x, W51x) --- *)

(* The location spec of an atom or head: a variable, a constant, or
   nothing (wildcard / complex expression — E40x complains elsewhere). *)
type loc_spec = LVar of string | LConst of Value.t | LNone

let atom_loc (a : Ast.atom) =
  match a.args with
  | Ast.Var v :: _ when v <> "_" -> LVar v
  | Ast.Const c :: _ -> LConst c
  | _ -> LNone

let expr_loc = function
  | Ast.Var v when v <> "_" -> LVar v
  | Ast.Const c -> LConst c
  | _ -> LNone

let same_loc a b =
  match (a, b) with
  | LVar x, LVar y -> x = y
  | LConst x, LConst y -> Value.equal x y
  | _ -> false

(* How a rule fires: a periodic tick, an event arrival, or a table
   delta (pure deductive). E004 guarantees at most one event atom. *)
type trig = Tick of Ast.atom | Ev of Ast.atom | Delta

let trigger_of ctx (r : Ast.rule) =
  match List.find_opt (is_event_atom ctx) (positive_atoms r) with
  | Some a when a.Ast.pred = reserved_event -> Tick a
  | Some a -> Ev a
  | None -> Delta

(* The rule's evaluation location (the link restriction means all body
   atoms agree; take the first that names one). *)
let eval_loc (r : Ast.rule) =
  List.fold_left
    (fun acc a -> if acc = LNone then atom_loc a else acc)
    LNone (positive_atoms r)

let head_remote (r : Ast.rule) =
  match expr_loc r.rhead.hloc with
  | LNone -> false
  | h -> not (same_loc h (eval_loc r))

(* Declared row bound of a table in this program: [None] unknown
   (co-installed or system), [Some None] unbounded, [Some (Some n)]. *)
let declared_size ctx p =
  List.find_opt (fun (m : Ast.materialize) -> m.Ast.mname = p) (materializes ctx)
  |> Option.map (fun (m : Ast.materialize) -> m.Ast.msize)

let size_many ctx p =
  match declared_size ctx p with
  | Some None -> true
  | Some (Some n) -> n > 1
  | None -> false

let size_one ctx p =
  match declared_size ctx p with Some (Some n) -> n <= 1 | _ -> false

let pp_size ppf = function
  | Some None -> Fmt.string ppf "unbounded"
  | Some (Some n) -> Fmt.pf ppf "%d rows" n
  | None -> Fmt.string ppf "unknown size"

(** The rule-dependency graph with per-rule message- and join-cost
    classes — the model behind [p2ql explain] and the E50x/W51x
    diagnostics (DESIGN.md §14). *)
module Cascade = struct
  type edge_kind = Local | Remote | Periodic | Delayed

  type msg_cost = Mlocal | Unicast | Multicast | Join_fanout

  type join_cost = Jconst | Jindexed | Jscan

  type rule_info = {
    iname : string option;
    iline : int;
    itrigger : string;  (** triggering predicate ("periodic" for ticks) *)
    idelayed : bool;  (** fires on a timer, not in response to traffic *)
    iremote : bool;  (** head ships off the evaluation node *)
    imsg : msg_cost;
    ijoin : join_cost;
    ifanout : string option;
        (** the table whose rows multiply sends, when imsg is
            [Multicast] or [Join_fanout] and the table is known *)
  }

  type edge = {
    esrc : string;
    edst : string;
    ekind : edge_kind;
    erule : string option;
    eline : int;
  }

  type graph = {
    grules : rule_info list;
    gedges : edge list;
    gcycles : string list list;
        (** undelayed event cycles: SCC members, sorted *)
  }

  let edge_kind_name = function
    | Local -> "local"
    | Remote -> "remote"
    | Periodic -> "periodic"
    | Delayed -> "timer-delayed"

  let msg_cost_name = function
    | Mlocal -> "local"
    | Unicast -> "unicast"
    | Multicast -> "multicast"
    | Join_fanout -> "join-fanout"

  let join_cost_name = function
    | Jconst -> "const"
    | Jindexed -> "indexed"
    | Jscan -> "scan"

  (* Non-trigger positive table atoms, in textual order. *)
  let join_atoms ctx trig (r : Ast.rule) =
  let skip =
    match trig with Tick a | Ev a -> Some a | Delta -> None
  in
  List.filter
    (fun (a : Ast.atom) ->
      (match skip with Some s -> s != a | None -> true) && is_table ctx a.Ast.pred)
    (positive_atoms r)

(* Message-cost class of one rule, plus the fan-out table when the
   class is driven by table enumeration. *)
let msg_cost_of ctx trig (r : Ast.rule) =
  if not (head_remote r) then (Mlocal, None)
  else
    let joins = join_atoms ctx trig r in
    let big_join =
      List.find_opt (fun (a : Ast.atom) -> size_many ctx a.Ast.pred) joins
    in
    match expr_loc r.rhead.hloc with
    | LConst _ | LNone -> (
        (* fixed peer; joins can still multiply the messages *)
        match big_join with
        | Some a -> (Join_fanout, Some a.Ast.pred)
        | None -> (Unicast, None))
    | LVar v ->
        let in_trigger =
          match trig with
          | Tick a | Ev a -> List.mem v (atom_vars a)
          | Delta -> false
        in
        let binders =
          List.filter (fun (a : Ast.atom) -> List.mem v (atom_vars a)) joins
        in
        if in_trigger || binders = [] then
          (* destination determined per trigger (or computed) *)
          match big_join with
          | Some a -> (Join_fanout, Some a.Ast.pred)
          | None -> (Unicast, None)
        else if List.exists (fun (a : Ast.atom) -> size_one ctx a.Ast.pred) binders
        then
          (* a size-1 binder pins the destination to one row *)
          match big_join with
          | Some a when not (List.memq a binders) -> (Join_fanout, Some a.Ast.pred)
          | _ -> (Unicast, None)
        else
          let named =
            match
              List.find_opt (fun (a : Ast.atom) -> size_many ctx a.Ast.pred) binders
            with
            | Some a -> Some a.Ast.pred
            | None -> (
                match binders with a :: _ -> Some a.Ast.pred | [] -> None)
          in
          (Multicast, named)

(* Join-cost class: walk the non-trigger table atoms in plan (textual)
   order; a probe is indexed when some argument is already bound — a
   constant, a trigger variable, or a variable an earlier stage bound.
   Anything else is a full scan per firing. *)
let join_cost_of ctx trig (r : Ast.rule) =
  let joins = join_atoms ctx trig r in
  if joins = [] then Jconst
  else begin
    let bound =
      ref
        (match trig with
        | Tick a | Ev a -> SSet.of_list (atom_vars a)
        | Delta -> SSet.empty)
    in
    let assigns =
      List.filter_map
        (function Ast.Assign (v, e) -> Some (v, e) | _ -> None)
        r.rbody
    in
    let close () =
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (v, e) ->
            if
              (not (SSet.mem v !bound))
              && List.for_all
                   (fun x -> x = "_" || SSet.mem x !bound)
                   (Ast.expr_vars e)
            then begin
              bound := SSet.add v !bound;
              changed := true
            end)
          assigns
      done
    in
    close ();
    let scan = ref false in
    List.iter
      (fun (a : Ast.atom) ->
        let probe_bound =
          List.exists
            (function
              | Ast.Const _ -> true
              | Ast.Var v -> v <> "_" && SSet.mem v !bound
              | _ -> false)
            a.Ast.args
        in
        (* First join of a delta rule probes with the delta's bindings;
           approximating the planner, treat the first stage as bound. *)
        if (not probe_bound) && not (trig = Delta && a == List.hd joins) then
          scan := true;
        List.iter (fun v -> bound := SSet.add v !bound) (atom_vars a);
        close ())
      joins;
    if !scan then Jscan else Jindexed
  end

(* Build the full dependency graph: one edge per (body atom, head),
   labeled by how the derivation travels. *)
let build_graph ctx =
  let infos_edges =
    List.map
      (fun (r : Ast.rule) ->
        let trig = trigger_of ctx r in
        let delayed = match trig with Tick _ -> true | _ -> false in
        let remote = head_remote r in
        let imsg, ifanout = msg_cost_of ctx trig r in
        let info =
          {
            iname = rule_label r;
            iline = r.rline;
            itrigger =
              (match trig with
              | Tick _ -> reserved_event
              | Ev a -> a.Ast.pred
              | Delta -> (
                  match positive_atoms r with
                  | a :: _ -> a.Ast.pred
                  | [] -> "?"));
            idelayed = delayed;
            iremote = remote;
            imsg;
            ijoin = join_cost_of ctx trig r;
            ifanout;
          }
        in
        let edges =
          List.map
            (fun (a : Ast.atom) ->
              let kind =
                if a.Ast.pred = reserved_event then Periodic
                else if delayed then Delayed
                else if remote then Remote
                else Local
              in
              {
                esrc = a.Ast.pred;
                edst = r.rhead.hatom;
                ekind = kind;
                erule = rule_label r;
                eline = r.rline;
              })
            (positive_atoms r)
        in
        (info, edges))
      (rules ctx)
  in
  (List.map fst infos_edges, List.concat_map snd infos_edges)

(* Undelayed event cycles: the subgraph of event-to-event edges from
   rules that fire in direct response to an event (no periodic gate,
   non-delete head, event head). A cycle here has no timer and no
   table dedup to bound it — every firing can re-trigger the cycle
   within the same instant (or one network hop later). *)
let event_cycles ctx =
  let ev_edges =
    List.filter_map
      (fun (r : Ast.rule) ->
        match trigger_of ctx r with
        | Ev a
          when (not r.rhead.hdelete)
               && (not (is_table ctx r.rhead.hatom))
               && not (is_system r.rhead.hatom) ->
            Some (a.Ast.pred, r.rhead.hatom, head_remote r, r)
        | _ -> None)
      (rules ctx)
  in
  (* Kosaraju over the event predicates. *)
  let adj = Hashtbl.create 16 and radj = Hashtbl.create 16 in
  let nodes = Hashtbl.create 16 in
  let add_edge tbl u v =
    let l = match Hashtbl.find_opt tbl u with Some l -> l | None -> [] in
    Hashtbl.replace tbl u (v :: l)
  in
  List.iter
    (fun (u, v, _, _) ->
      Hashtbl.replace nodes u ();
      Hashtbl.replace nodes v ();
      add_edge adj u v;
      add_edge radj v u)
    ev_edges;
  let order = ref [] in
  let visited = Hashtbl.create 16 in
  let rec dfs1 u =
    if not (Hashtbl.mem visited u) then begin
      Hashtbl.replace visited u ();
      List.iter dfs1 (Option.value (Hashtbl.find_opt adj u) ~default:[]);
      order := u :: !order
    end
  in
  Hashtbl.iter (fun u () -> dfs1 u) nodes;
  let comp = Hashtbl.create 16 in
  let rec dfs2 u c =
    if not (Hashtbl.mem comp u) then begin
      Hashtbl.replace comp u c;
      List.iter (fun v -> dfs2 v c) (Option.value (Hashtbl.find_opt radj u) ~default:[])
    end
  in
  List.iteri (fun i u -> dfs2 u i) !order;
  let same_comp u v =
    match (Hashtbl.find_opt comp u, Hashtbl.find_opt comp v) with
    | Some a, Some b -> a = b
    | _ -> false
  in
  let cyclic = List.filter (fun (u, v, _, _) -> same_comp u v) ev_edges in
  (* Group the offending edges by component. *)
  let by_comp = Hashtbl.create 4 in
  List.iter
    (fun ((u, _, _, _) as e) ->
      let c = Hashtbl.find comp u in
      let l = match Hashtbl.find_opt by_comp c with Some l -> l | None -> [] in
      Hashtbl.replace by_comp c (e :: l))
    cyclic;
  Hashtbl.fold
    (fun _ edges acc ->
      let members =
        List.concat_map (fun (u, v, _, _) -> [ u; v ]) edges
        |> List.sort_uniq compare
      in
      let remote = List.exists (fun (_, _, rem, _) -> rem) edges in
      (members, remote, List.rev edges) :: acc)
    by_comp []
  |> List.sort compare

  (** Build the dependency graph for a program, against the same
      optional installed-state environment [analyze] takes. *)
  let build ?(env = empty_env) (program : Ast.program) =
    let ctx = { program; env; diags = [] } in
    let grules, gedges = build_graph ctx in
    let gcycles = List.map (fun (members, _, _) -> members) (event_cycles ctx) in
    { grules; gedges; gcycles }

  let pp_cycle ppf c =
    Fmt.string ppf (String.concat " -> " (c @ [ List.hd c ]))

  let pp ppf g =
    Fmt.pf ppf "%-12s %5s  %-16s %-7s %-12s %-8s %s@." "rule" "line" "trigger"
      "dest" "msg-cost" "join" "fan-out";
    List.iter
      (fun i ->
        Fmt.pf ppf "%-12s %5d  %-16s %-7s %-12s %-8s %s@."
          (Option.value i.iname ~default:"-")
          i.iline i.itrigger
          (if i.iremote then "remote" else "local")
          (msg_cost_name i.imsg) (join_cost_name i.ijoin)
          (Option.value i.ifanout ~default:"-"))
      g.grules;
    Fmt.pf ppf "@.edges:@.";
    List.iter
      (fun e ->
        Fmt.pf ppf "  %s -> %s  [%s%s]@." e.esrc e.edst (edge_kind_name e.ekind)
          (match e.erule with Some r -> ", rule " ^ r | None -> ""))
      g.gedges;
    if g.gcycles <> [] then begin
      Fmt.pf ppf "@.undelayed event cycles:@.";
      List.iter (fun c -> Fmt.pf ppf "  %a@." pp_cycle c) g.gcycles
    end

  let to_json ?file g =
    let str s = Fmt.str "\"%s\"" (json_escape s) in
    let opt = function Some s -> str s | None -> "null" in
    let obj fields =
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> Fmt.str "\"%s\":%s" k v) fields)
      ^ "}"
    in
    let arr l = "[" ^ String.concat "," l ^ "]" in
    let rule i =
      obj
        [
          ("rule", opt i.iname);
          ("line", string_of_int i.iline);
          ("trigger", str i.itrigger);
          ("delayed", string_of_bool i.idelayed);
          ("remote", string_of_bool i.iremote);
          ("msg_cost", str (msg_cost_name i.imsg));
          ("join_cost", str (join_cost_name i.ijoin));
          ("fanout_table", opt i.ifanout);
        ]
    in
    let edge e =
      obj
        [
          ("src", str e.esrc);
          ("dst", str e.edst);
          ("kind", str (edge_kind_name e.ekind));
          ("rule", opt e.erule);
          ("line", string_of_int e.eline);
        ]
    in
    obj
      ((match file with Some f -> [ ("file", str f) ] | None -> [])
      @ [
          ("rules", arr (List.map rule g.grules));
          ("edges", arr (List.map edge g.gedges));
          ("cycles", arr (List.map (fun c -> arr (List.map str c)) g.gcycles));
        ])

  let to_dot g =
    let b = Buffer.create 1024 in
    Buffer.add_string b "digraph cascade {\n  rankdir=LR;\n";
    let in_cycle = SSet.of_list (List.concat g.gcycles) in
    let nodes =
      List.concat_map (fun e -> [ e.esrc; e.edst ]) g.gedges
      |> List.sort_uniq compare
    in
    List.iter
      (fun n ->
        Buffer.add_string b
          (Fmt.str "  \"%s\"%s;\n" n
             (if SSet.mem n in_cycle then
                " [color=red, style=bold]"
              else "")))
      nodes;
    List.iter
      (fun e ->
        let style =
          match e.ekind with
          | Local -> "solid"
          | Remote -> "bold"
          | Periodic -> "dashed"
          | Delayed -> "dotted"
        in
        Buffer.add_string b
          (Fmt.str "  \"%s\" -> \"%s\" [style=%s, label=\"%s%s\"];\n" e.esrc
             e.edst style
             (match e.erule with Some r -> r ^ ": " | None -> "")
             (edge_kind_name e.ekind)))
      g.gedges;
    Buffer.add_string b "}\n";
    Buffer.contents b
end

let check_cascade ctx =
  (* E501 / E502: undelayed event cycles. *)
  List.iter
    (fun (members, remote, edges) ->
      let cycle = String.concat " -> " (members @ [ List.hd members ]) in
      List.iter
        (fun (u, v, _, (r : Ast.rule)) ->
          if remote then
            emit ctx ?rule:(rule_label r) ~code:"E502" ~severity:Error ~line:r.rline
              "%s re-triggers %s across nodes in an undelayed event cycle (%s): \
               potential unbounded message loop; gate a step with periodic or \
               route it through a materialized table"
              v u cycle
          else
            emit ctx ?rule:(rule_label r) ~code:"E501" ~severity:Error ~line:r.rline
              "%s re-triggers %s in an undelayed event cycle (%s): potential \
               unbounded cascade in a single instant; gate a step with periodic \
               or route it through a materialized table"
              v u cycle)
        edges)
    (Cascade.event_cycles ctx);
  (* W511 / W512: per-rule message amplification, only where this
     program's own declarations prove the fan-out (co-installed tables
     of unknown size classify in [p2ql explain] but never warn). *)
  List.iter
    (fun (r : Ast.rule) ->
      let trig = trigger_of ctx r in
      match trig with
      | Delta -> ()  (* deductive deltas are incremental, not amplified *)
      | Tick _ | Ev _ -> (
          let what =
            match trig with
            | Tick _ -> "periodic tick"
            | Ev a -> a.Ast.pred ^ " event"
            | Delta -> assert false
          in
          match Cascade.msg_cost_of ctx trig r with
          | Cascade.Multicast, Some tbl when size_many ctx tbl ->
              emit ctx ?rule:(rule_label r) ~code:"W511" ~severity:Warning
                ~line:r.rline
                "every %s multicasts %s to each matching row of %s (%a): the \
                 destination is enumerated from a table, not bound by the \
                 trigger"
                what r.rhead.hatom tbl pp_size (declared_size ctx tbl)
          | Cascade.Join_fanout, Some tbl when size_many ctx tbl ->
              emit ctx ?rule:(rule_label r) ~code:"W512" ~severity:Warning
                ~line:r.rline
                "every %s ships one %s per row joined from %s (%a): remote \
                 join fan-out"
                what r.rhead.hatom tbl pp_size (declared_size ctx tbl)
          | _ -> ()))
    (rules ctx)

(* --- Pragma suppression ([%% allow E501 W51x] before a rule) --- *)

(* Wildcard code match: 'x'/'X' in the pattern matches any character
   at that position, so [E50x] covers the whole family. *)
let code_matches pat code =
  String.length pat = String.length code
  &&
  let n = String.length pat in
  let rec go i =
    i >= n || ((pat.[i] = code.[i] || pat.[i] = 'x' || pat.[i] = 'X') && go (i + 1))
  in
  go 0

(* A pragma attaches to the next rule statement; pending codes
   accumulate across consecutive pragma lines. Returns the (rule,
   codes) pairs and flags pragmas with nothing to attach to. *)
let collect_pragmas ctx =
  let attached = ref [] in
  let pending = ref [] in
  List.iter
    (function
      | Ast.Pragma (codes, line) -> pending := !pending @ [ (codes, line) ]
      | Ast.Rule r ->
          if !pending <> [] then begin
            attached := (r, List.concat_map fst !pending) :: !attached;
            pending := []
          end
      | Ast.Materialize _ | Ast.Fact _ | Ast.Watch _ -> ())
    ctx.program;
  List.iter
    (fun (codes, line) ->
      emit ctx ~code:"H703" ~severity:Hint ~line
        "pragma allows %s but no rule follows; it has no effect"
        (String.concat " " codes))
    !pending;
  List.rev !attached

(* The source extent of a rule: its own line through the last line any
   of its atoms sits on (diagnostics anchor anywhere inside). *)
let rule_extent (r : Ast.rule) =
  let lines =
    r.rline :: r.rhead.hline
    :: List.filter_map
         (function
           | Ast.Atom a | Ast.NotAtom a -> if a.Ast.aline > 0 then Some a.Ast.aline else None
           | _ -> None)
         r.rbody
    |> List.filter (fun l -> l > 0)
  in
  match lines with
  | [] -> (0, 0)
  | l -> (List.fold_left min max_int l, List.fold_left max 0 l)

let apply_pragmas ctx diags =
  (* [diags] already holds everything emitted so far; reset the context
     so the H703 hints [collect_pragmas] emits can be recovered and
     appended rather than silently lost. *)
  ctx.diags <- [];
  let allows = collect_pragmas ctx in
  let hints = ctx.diags in
  let kept =
    match allows with
    | [] -> diags
    | allows ->
        List.filter
          (fun d ->
            not
              (List.exists
                 (fun ((r : Ast.rule), codes) ->
                   List.exists (fun pat -> code_matches pat d.code) codes
                   && (match (d.rule, rule_label r) with
                      | Some a, Some b when a = b -> true
                      | _ ->
                          let lo, hi = rule_extent r in
                          lo > 0 && d.line >= lo && d.line <= hi))
                 allows))
          diags
  in
  kept @ hints

(* --- Entry points --- *)

let compare_diag a b =
  match compare a.line b.line with 0 -> compare a.code b.code | c -> c

let analyze ?(env = empty_env) (program : Ast.program) =
  let ctx = { program; env; diags = [] } in
  check_safety ctx;
  check_schema ctx;
  type_pass ctx;
  check_stratification ctx;
  check_locations ctx;
  check_liveness ctx;
  check_cascade ctx;
  (* [sort_uniq] first: a rule can trip the same check several times
     with an identical message (e.g. both interval endpoints are
     strings) — one report per distinct complaint is enough. *)
  List.sort_uniq compare ctx.diags |> apply_pragmas ctx |> List.sort compare_diag

let check_source ?env source =
  match Parser.parse_result source with
  | Ok program -> (Some program, analyze ?env program)
  | Error msg ->
      (* parse_result formats as "line N: message" *)
      let line =
        try Scanf.sscanf msg "line %d:" (fun l -> l) with
        | Scanf.Scan_failure _ | End_of_file | Failure _ -> 0
      in
      (None, [ { code = "E000"; severity = Error; line; rule = None; message = msg } ])

let env_of_program ?(init = empty_env) (program : Ast.program) =
  let arities = Hashtbl.create 32 in
  let learn p n = if not (Hashtbl.mem arities p) then Hashtbl.replace arities p n in
  List.iter
    (function
      | Ast.Fact (p, vs, _) -> learn p (List.length vs)
      | Ast.Rule r ->
          learn r.rhead.hatom (1 + List.length r.rhead.hfields);
          List.iter
            (function
              | Ast.Atom a | Ast.NotAtom a -> learn a.pred (List.length a.args)
              | _ -> ())
            r.rbody
      | Ast.Materialize _ | Ast.Watch _ | Ast.Pragma _ -> ())
    program;
  let arity p = Hashtbl.find_opt arities p in
  let tables =
    List.filter_map
      (function Ast.Materialize m -> Some (m.mname, arity m.mname) | _ -> None)
      program
  in
  let table_names = SSet.of_list (List.map fst tables) in
  let events =
    List.filter_map
      (function
        | Ast.Rule r
          when (not r.rhead.hdelete)
               && (not (SSet.mem r.rhead.hatom table_names))
               && not (is_system r.rhead.hatom) ->
            Some (r.rhead.hatom, arity r.rhead.hatom)
        | Ast.Fact (p, vs, _) when not (SSet.mem p table_names) ->
            Some (p, Some (List.length vs))
        | _ -> None)
      program
    |> List.sort_uniq compare
  in
  {
    ext_tables = init.ext_tables @ tables;
    ext_events = init.ext_events @ events;
  }

let errors = List.filter (fun d -> d.severity = Error)
let warnings = List.filter (fun d -> d.severity = Warning)

let should_fail ~strict diags =
  List.exists
    (fun d ->
      match d.severity with Error -> true | Warning -> strict | Hint -> false)
    diags

(* --- Rendering --- *)

let pp_diagnostic ?file ppf d =
  let loc =
    match file with
    | Some f -> Fmt.str "%s:%d: " f d.line
    | None -> if d.line > 0 then Fmt.str "line %d: " d.line else ""
  in
  Fmt.pf ppf "%s%s[%s]: %s%s" loc
    (severity_to_string d.severity)
    d.code
    (match d.rule with Some r -> Fmt.str "rule %s: " r | None -> "")
    d.message

let to_json ?file diags =
  let obj d =
    let fields =
      (match file with Some f -> [ ("file", Fmt.str "\"%s\"" (json_escape f)) ] | None -> [])
      @ [
          ("line", string_of_int d.line);
          ("code", Fmt.str "\"%s\"" d.code);
          ("severity", Fmt.str "\"%s\"" (severity_to_string d.severity));
          ( "rule",
            match d.rule with
            | Some r -> Fmt.str "\"%s\"" (json_escape r)
            | None -> "null" );
          ("message", Fmt.str "\"%s\"" (json_escape d.message));
        ]
    in
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> Fmt.str "\"%s\":%s" k v) fields)
    ^ "}"
  in
  "[" ^ String.concat "," (List.map obj diags) ^ "]"

let () =
  Printexc.register_printer (function
    | Rejected diags ->
        Some
          (Fmt.str "Analysis.Rejected: %d diagnostic(s)@.%a" (List.length diags)
             (Fmt.list ~sep:Fmt.cut (pp_diagnostic ?file:None))
             diags)
    | _ -> None)
