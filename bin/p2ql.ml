(* p2ql — command-line front end to the P2 monitoring runtime.

   Subcommands:
     parse   check & pretty-print an OverLog program
     run     execute an OverLog program on a simulated network
     chord   boot a Chord ring with optional monitors and faults

   Examples:
     p2ql parse prog.olg
     p2ql run prog.olg --nodes n1,n2,n3 --duration 30 --watch path
     p2ql chord --nodes 21 --duration 300 --monitors ring,oscillation \
          --crash n4:150 --snapshot-rate 0.1
     p2ql chord --nodes 21 --duration 300 --trace-log /tmp/flight
     p2ql logctl /tmp/flight
     p2ql replay --log /tmp/flight --from 100 --to 200 --olg query.olg
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- parse --- *)

let parse_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Also run the semantic analyzer; exit non-zero on any error")
  in
  let action file check =
    match Overlog.Parser.parse_result (read_file file) with
    | Ok program ->
        Fmt.pr "%a@." Overlog.Ast.pp_program program;
        Fmt.pr "// ok: %d statement(s)@." (List.length program);
        if not check then 0
        else begin
          let diags = Analysis.analyze program in
          List.iter (Fmt.epr "%a@." (Analysis.pp_diagnostic ~file)) diags;
          if Analysis.should_fail ~strict:false diags then 1 else 0
        end
    | Error msg ->
        Fmt.epr "parse error: %s@." msg;
        1
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Check and pretty-print an OverLog program")
    Term.(const action $ file $ check)

(* --- check --- *)

(** The embedded corpus [p2ql check --embedded] verifies: everything the
    repo generates and installs, plus epidemic (which lives outside
    [Core] because it does not ride on Chord). *)
let embedded_corpus () =
  Core.Registry.embedded
  @ [ ("epidemic", [], Epidemic.(program default_params)) ]

let check_cmd =
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"OverLog files, or directories expanded to their *.olg files")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Treat warnings as fatal (hints never are)")
  in
  let json =
    Arg.(
      value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array")
  in
  let libs =
    Arg.(
      value & opt_all file []
      & info [ "lib" ] ~docv:"FILE"
          ~doc:
            "A co-installed program (repeatable): its tables and events \
             become external definitions for the checked programs, \
             mirroring the paper's piecemeal installs")
  in
  let embedded =
    Arg.(
      value & flag
      & info [ "embedded" ]
          ~doc:
            "Also check every program this repository embeds (Chord and \
             all monitors), each under its install-time environment")
  in
  let expand path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".olg")
      |> List.sort compare
      |> List.map (Filename.concat path)
    else [ path ]
  in
  let action paths strict json libs embedded =
    if paths = [] && not embedded then begin
      Fmt.epr "p2ql check: nothing to check (give PATHs or --embedded)@.";
      2
    end
    else begin
      let env =
        List.fold_left
          (fun env file ->
            Analysis.env_of_program ~init:env
              (Overlog.Parser.parse (read_file file)))
          Analysis.empty_env libs
      in
      let file_results =
        List.concat_map expand paths
        |> List.map (fun file ->
               let _, diags = Analysis.check_source ~env (read_file file) in
               (file, diags))
      in
      let embedded_results =
        if not embedded then []
        else
          List.map
            (fun (name, lib_sources, source) ->
              let env = Core.Registry.env_of_libs lib_sources in
              let _, diags = Analysis.check_source ~env source in
              ("embedded:" ^ name, diags))
            (embedded_corpus ())
      in
      let results = file_results @ embedded_results in
      if json then begin
        let bodies =
          (* each [to_json] is a complete array; splice their elements *)
          List.filter_map
            (fun (file, diags) ->
              if diags = [] then None
              else
                let s = Analysis.to_json ~file diags in
                Some (String.sub s 1 (String.length s - 2)))
            results
        in
        Fmt.pr "[%s]@." (String.concat "," bodies)
      end
      else
        List.iter
          (fun (file, diags) ->
            List.iter (Fmt.pr "%a@." (Analysis.pp_diagnostic ~file)) diags)
          results;
      let failed =
        List.exists (fun (_, d) -> Analysis.should_fail ~strict d) results
      in
      if not json then begin
        let total = List.length results in
        let bad =
          List.length
            (List.filter (fun (_, d) -> Analysis.should_fail ~strict d) results)
        in
        Fmt.pr "// %d program(s) checked, %d failed%s@." total bad
          (if strict then " (strict)" else "")
      end;
      if failed then 1 else 0
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Semantically analyze OverLog programs without running them")
    Term.(const action $ paths $ strict $ json $ libs $ embedded)

(* --- explain --- *)

let explain_cmd =
  let paths =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE" ~doc:"OverLog files to explain")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one JSON object per program (graph + diagnostics)")
  in
  let dot =
    Arg.(
      value & flag
      & info [ "dot" ] ~doc:"Emit the dependency graph as Graphviz dot")
  in
  let libs =
    Arg.(
      value & opt_all file []
      & info [ "lib" ] ~docv:"FILE"
          ~doc:
            "A co-installed program (repeatable): its tables and events \
             become external definitions, so their sizes and kinds inform \
             the cost classes")
  in
  let embedded =
    Arg.(
      value & flag
      & info [ "embedded" ]
          ~doc:
            "Explain every program this repository embeds, each under its \
             install-time environment")
  in
  let action paths json dot libs embedded =
    if paths = [] && not embedded then begin
      Fmt.epr "p2ql explain: nothing to explain (give FILEs or --embedded)@.";
      2
    end
    else begin
      let env =
        List.fold_left
          (fun env file ->
            Analysis.env_of_program ~init:env
              (Overlog.Parser.parse (read_file file)))
          Analysis.empty_env libs
      in
      let programs =
        List.map (fun file -> (file, env, read_file file)) paths
        @
        if not embedded then []
        else
          List.map
            (fun (name, lib_sources, source) ->
              ("embedded:" ^ name, Core.Registry.env_of_libs lib_sources, source))
            (embedded_corpus ())
      in
      let failed = ref false in
      let outputs =
        List.filter_map
          (fun (file, env, source) ->
            match Overlog.Parser.parse_result source with
            | Error msg ->
                Fmt.epr "%s: parse error: %s@." file msg;
                failed := true;
                None
            | Ok program ->
                let graph = Analysis.Cascade.build ~env program in
                let diags = Analysis.analyze ~env program in
                Some (file, graph, diags))
          programs
      in
      if json then
        Fmt.pr "[%s]@."
          (String.concat ","
             (List.map
                (fun (file, graph, diags) ->
                  Fmt.str "{\"file\":\"%s\",\"graph\":%s,\"diagnostics\":%s}"
                    file
                    (Analysis.Cascade.to_json graph)
                    (Analysis.to_json diags))
                outputs))
      else if dot then
        List.iter
          (fun (file, graph, _) ->
            Fmt.pr "// %s@.%s" file (Analysis.Cascade.to_dot graph))
          outputs
      else
        List.iter
          (fun (file, graph, diags) ->
            Fmt.pr "=== %s ===@.%a" file Analysis.Cascade.pp graph;
            if diags <> [] then begin
              Fmt.pr "@.diagnostics:@.";
              List.iter (Fmt.pr "  %a@." (Analysis.pp_diagnostic ~file)) diags
            end;
            Fmt.pr "@.")
          outputs;
      if !failed then 1 else 0
    end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Annotate OverLog programs with their rule-dependency graph, \
          per-rule message/join cost classes, and cascade cycles")
    Term.(const action $ paths $ json $ dot $ libs $ embedded)

(* --- run --- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed")

let duration_arg =
  Arg.(
    value & opt float 30.
    & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc:"Simulated duration")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Enable execution tracing on all nodes")

(* Evaluation-pipeline selection (PR-6): [--seminaive] turns on
   cross-node delta batching on top of the default semi-naive
   evaluation; [--naive] is the ablation — full-body re-enumeration on
   every table delta, batching off. Neither flag keeps the engine
   default (semi-naive evaluation, unbatched wire). *)
let seminaive_arg =
  Arg.(
    value & flag
    & info [ "seminaive" ]
        ~doc:
          "Semi-naive delta evaluation with cross-node delta batching \
           (same-instant shipments to one peer coalesce into single frames)")

let naive_arg =
  Arg.(
    value & flag
    & info [ "naive" ]
        ~doc:
          "Naive evaluation ablation: re-enumerate full rule bodies on every \
           table delta and ship every re-derivation unbatched")

(* Execution-engine selection (PR-7): 0 keeps the classic sequential
   event loop; N >= 1 runs the multicore round/barrier loop with node
   ids hashed onto N shards. Any N >= 1 reproduces the same seeded
   simulation bit-for-bit. *)
let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition nodes onto $(docv) shards, each drained on its own \
           domain between deterministic tick barriers; 0 (default) is the \
           sequential event loop")

let apply_shards engine shards =
  if shards > 0 then P2_runtime.Engine.set_shards engine shards

(* The sanitizer only ever turns on here: engines may already start
   sanitized via P2QL_SANITIZE=1, and the flag's absence must not
   override that. *)
let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Enable the shard effect-discipline sanitizer: direct mutation of \
           barrier-owned engine state during a shard drain raises \
           $(b,Engine.Discipline_violation) instead of silently racing. \
           Also on when $(b,P2QL_SANITIZE=1) is in the environment. Runs \
           are bit-for-bit identical with it on or off")

let apply_sanitize engine b =
  if b then P2_runtime.Engine.set_sanitize engine true

(* Flight recorder (PR-9): spill every node's trace records to an
   on-disk segment log; inspect afterwards with [p2ql logctl] and
   [p2ql replay]. Applied before nodes exist, so they all pick up the
   shrunk spill-mode tracer window. *)
let trace_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-log" ] ~docv:"DIR"
        ~doc:
          "Record a flight-recorder segment log under $(docv)/ADDR/ for \
           every node (enables tracing, with the shrunk in-RAM spill \
           window). Inspect afterwards with $(b,p2ql logctl) and \
           $(b,p2ql replay)")

let apply_trace_log engine dir =
  Option.iter (fun d -> P2_runtime.Engine.set_trace_log engine d) dir

(* Durable checkpoints (PR-10): snapshot every node's hard-state
   tables to DIR/ADDR/ on a periodic cadence; [Engine.restart] then
   recovers a crashed node from its newest intact snapshot. Inspect
   afterwards with [p2ql ckptctl]. *)
let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"DIR"
        ~doc:
          "Write durable checkpoints of every node's hard-state tables \
           under $(docv)/ADDR/; restarts recover from the newest intact \
           snapshot. Inspect afterwards with $(b,p2ql ckptctl)")

let checkpoint_interval_arg =
  Arg.(
    value & opt float 10.
    & info [ "checkpoint-interval" ] ~docv:"SECONDS"
        ~doc:"Virtual seconds between checkpoint snapshots (default 10)")

let apply_checkpoint engine dir interval =
  Option.iter
    (fun d ->
      P2_runtime.Engine.set_checkpoint engine
        ~config:{ Checkpoint.default_config with interval }
        d)
    dir

(* Engine node-management calls raise [Invalid_argument] on unknown
   addresses; inside a scheduled callback that would abort the whole
   simulation, so surface it as a CLI diagnostic instead. *)
let or_cli_error f = try f () with Invalid_argument msg -> Fmt.epr "p2ql: %s@." msg

let apply_eval_mode engine ~seminaive ~naive =
  if naive && seminaive then begin
    Fmt.epr "p2ql: --naive and --seminaive are mutually exclusive@.";
    exit 2
  end;
  if naive then P2_runtime.Engine.set_seminaive engine false
  else if seminaive then P2_runtime.Engine.set_seminaive engine true

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let nodes =
    Arg.(
      value
      & opt (list string) [ "n1"; "n2"; "n3" ]
      & info [ "nodes" ] ~docv:"ADDRS" ~doc:"Comma-separated node addresses")
  in
  let watches =
    Arg.(
      value & opt (list string) []
      & info [ "watch" ] ~docv:"NAMES" ~doc:"Tuple names to print when they appear")
  in
  let dump =
    Arg.(
      value & opt (list string) []
      & info [ "dump" ] ~docv:"TABLES" ~doc:"Tables to dump at the end of the run")
  in
  let action file nodes seed duration trace seminaive naive shards sanitize
      trace_log checkpoint checkpoint_interval watches dump =
    let engine = P2_runtime.Engine.create ~seed ~trace () in
    apply_eval_mode engine ~seminaive ~naive;
    apply_shards engine shards;
    apply_sanitize engine sanitize;
    apply_trace_log engine trace_log;
    apply_checkpoint engine checkpoint checkpoint_interval;
    List.iter (fun a -> ignore (P2_runtime.Engine.add_node engine a)) nodes;
    (match Overlog.Parser.parse_result (read_file file) with
    | Error msg ->
        Fmt.epr "parse error: %s@." msg;
        exit 1
    | Ok program ->
        List.iter (fun a -> P2_runtime.Engine.install_ast engine a program) nodes);
    List.iter
      (fun name ->
        List.iter
          (fun addr ->
            P2_runtime.Engine.watch engine addr name (fun t ->
                Fmt.pr "[%8.3f] %s: %a@." (P2_runtime.Engine.now engine) addr
                  Overlog.Tuple.pp t))
          nodes)
      watches;
    P2_runtime.Engine.run_for engine duration;
    List.iter
      (fun table_name ->
        Fmt.pr "@.=== %s ===@." table_name;
        List.iter
          (fun addr ->
            let node = P2_runtime.Engine.node engine addr in
            match Store.Catalog.find (P2_runtime.Node.catalog node) table_name with
            | Some table ->
                List.iter
                  (fun t -> Fmt.pr "%s: %a@." addr Overlog.Tuple.pp t)
                  (Store.Table.tuples table ~now:(P2_runtime.Engine.now engine))
            | None -> ())
          nodes)
      dump;
    P2_runtime.Engine.close_trace_logs engine;
    P2_runtime.Engine.close_checkpoints engine;
    0
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run an OverLog program on a simulated network")
    Term.(
      const action $ file $ nodes $ seed_arg $ duration_arg $ trace_arg
      $ seminaive_arg $ naive_arg $ shards_arg $ sanitize_arg $ trace_log_arg
      $ checkpoint_arg $ checkpoint_interval_arg $ watches $ dump)

(* --- chord --- *)

let chord_cmd =
  let n =
    Arg.(value & opt int 8 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Ring size")
  in
  let monitors =
    Arg.(
      value & opt (list string) []
      & info [ "monitors" ] ~docv:"LIST"
          ~doc:"Monitors to install: ring, ordering, oscillation, consistency")
  in
  let crash =
    Arg.(
      value & opt (some string) None
      & info [ "crash" ] ~docv:"ADDR:TIME" ~doc:"Crash a node at a given time")
  in
  let restart =
    Arg.(
      value & opt (some string) None
      & info [ "restart" ] ~docv:"ADDR:TIME"
          ~doc:
            "Restart a crashed node at a given time: recover its hard \
             state from the newest intact checkpoint when $(b,--checkpoint) \
             is set, cold-boot and rejoin through the landmark otherwise")
  in
  let snapshot_rate =
    Arg.(
      value & opt (some float) None
      & info [ "snapshot-rate" ] ~docv:"HZ" ~doc:"Periodic consistent snapshots")
  in
  let buggy =
    Arg.(
      value & flag
      & info [ "buggy" ] ~doc:"Use the incorrect Chord that recycles dead neighbors")
  in
  let lookups =
    Arg.(
      value & opt int 0
      & info [ "lookups" ] ~docv:"N" ~doc:"Random lookups to issue at the end")
  in
  let dot =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write the derivation graph of the first answered lookup as \
             Graphviz dot (implies --trace and --lookups >= 1)")
  in
  let action n seed duration trace shards sanitize trace_log checkpoint
      checkpoint_interval monitors crash restart snapshot_rate buggy lookups
      dot =
    let trace = trace || dot <> None in
    let lookups = if dot <> None then max 1 lookups else lookups in
    let engine = P2_runtime.Engine.create ~seed ~trace () in
    apply_shards engine shards;
    apply_sanitize engine sanitize;
    apply_trace_log engine trace_log;
    apply_checkpoint engine checkpoint checkpoint_interval;
    let params = if buggy then Chord.buggy_params else Chord.default_params in
    let net = Chord.boot ~params engine n in
    let traced : (string * int) option ref = ref None in
    let collectors = ref [] in
    let monitor name =
      match name with
      | "ring" ->
          let c = Core.Ring_check.install ~active:true net in
          collectors :=
            !collectors @ [ ("inconsistentPred", c.pred_alarms);
                            ("inconsistentSucc", c.succ_alarms) ]
      | "ordering" ->
          let closer, problems, ok = Core.Ordering.install net in
          collectors :=
            !collectors
            @ [ ("closerID", closer); ("orderingProblem", problems);
                ("orderingOk", ok) ]
      | "oscillation" ->
          let c = Core.Oscillation.install net in
          collectors :=
            !collectors
            @ [ ("oscill", c.oscill); ("repeatOscill", c.repeat);
                ("chaotic", c.chaotic) ]
      | "consistency" ->
          let c = Core.Consistency.install ~addrs:[ net.landmark ] net in
          collectors := !collectors @ [ ("consAlarm", c.alarms) ]
      | other -> Fmt.epr "unknown monitor %S (ignored)@." other
    in
    List.iter monitor monitors;
    let snap =
      Option.map (fun rate -> Core.Snapshot.install ~t_snap:(1. /. rate) net)
        snapshot_rate
    in
    (match crash with
    | Some spec -> (
        match String.split_on_char ':' spec with
        | [ addr; time ] ->
            P2_runtime.Engine.at engine ~time:(float_of_string time) (fun () ->
                Fmt.pr "[%s] crashing %s@." time addr;
                or_cli_error (fun () -> P2_runtime.Engine.crash engine addr))
        | _ -> Fmt.epr "bad --crash spec %S (want ADDR:TIME)@." spec)
    | None -> ());
    (match restart with
    | Some spec -> (
        match String.split_on_char ':' spec with
        | [ addr; time ] ->
            P2_runtime.Engine.at engine ~time:(float_of_string time) (fun () ->
                or_cli_error (fun () ->
                    let o = P2_runtime.Engine.restart engine addr in
                    match o.P2_runtime.Engine.recovered_from with
                    | `Checkpoint (path, stamp) ->
                        Fmt.pr
                          "[%s] restarted %s from %s (stamp %g, %d row(s))@."
                          time addr (Filename.basename path) stamp
                          o.P2_runtime.Engine.restored_rows
                    | `Cold ->
                        Fmt.pr "[%s] restarted %s cold; rejoining via landmark@."
                          time addr;
                        Chord.rejoin net addr))
        | _ -> Fmt.epr "bad --restart spec %S (want ADDR:TIME)@." spec)
    | None -> ());
    P2_runtime.Engine.run_for engine duration;
    Fmt.pr "ring: %a@." Fmt.(list ~sep:(any " -> ") string) (Chord.ring_walk net);
    Fmt.pr "ring correct: %b@." (Chord.ring_correct net);
    if lookups > 0 then begin
      let results = ref 0 and correct = ref 0 in
      let rng = Sim.Rng.create (seed + 99) in
      let pending = ref [] in
      List.iter
        (fun addr ->
          P2_runtime.Engine.watch engine addr "lookupResults" (fun t ->
              match Overlog.Tuple.field t 5 with
              | Overlog.Value.VInt r when List.mem_assoc r !pending ->
                  incr results;
                  if !traced = None then traced := Some (addr, Overlog.Tuple.id t);
                  let key = List.assoc r !pending in
                  if
                    Overlog.Value.as_addr (Overlog.Tuple.field t 4)
                    = Chord.true_successor net key
                  then incr correct
              | _ -> ()))
        net.addrs;
      for i = 0 to lookups - 1 do
        let key = Sim.Rng.int rng Overlog.Value.Ring.space in
        let addr = List.nth net.addrs (Sim.Rng.int rng n) in
        pending := (1_000_000 + i, key) :: !pending;
        Chord.lookup net ~addr ~key ~req_id:(1_000_000 + i) ()
      done;
      P2_runtime.Engine.run_for engine 10.;
      Fmt.pr "lookups: %d issued, %d answered, %d correct@." lookups !results
        !correct
    end;
    (match snap with
    | Some s ->
        Fmt.pr "latest snapshots:@.";
        List.iter
          (fun id ->
            Fmt.pr "  snapshot %d: all done = %b@." id (Core.Snapshot.all_done s ~id))
          [ 1; 2; 3 ]
    | None -> ());
    List.iter
      (fun (name, c) ->
        Fmt.pr "%-18s %d alarm(s)@." name (Core.Alarms.count c);
        List.iteri
          (fun i a -> if i < 5 then Fmt.pr "    %a@." Core.Alarms.pp_alarm a)
          (Core.Alarms.alarms c))
      !collectors;
    (match (dot, !traced) with
    | Some file, Some (addr, tuple_id) ->
        let graph = Core.Forensics.walk engine ~addr ~tuple_id in
        let oc = open_out file in
        output_string oc (Core.Forensics.to_dot graph);
        close_out oc;
        Fmt.pr "%a -> %s@." Core.Forensics.pp_summary graph file
    | Some _, None -> Fmt.epr "--dot: no lookup was answered, nothing to trace@."
    | None, _ -> ());
    P2_runtime.Engine.close_trace_logs engine;
    P2_runtime.Engine.close_checkpoints engine;
    0
  in
  Cmd.v
    (Cmd.info "chord" ~doc:"Boot a monitored Chord ring on the simulator")
    Term.(
      const action $ n $ seed_arg $ duration_arg $ trace_arg $ shards_arg
      $ sanitize_arg $ trace_log_arg $ checkpoint_arg $ checkpoint_interval_arg
      $ monitors $ crash $ restart $ snapshot_rate $ buggy $ lookups $ dot)

(* --- stats --- *)

let stats_cmd =
  let n =
    Arg.(value & opt int 8 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Ring size")
  in
  let period =
    Arg.(
      value & opt float 5.
      & info [ "period" ] ~docv:"SECONDS" ~doc:"Metric-reflection period")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Dump the final stats as one JSON document")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Print a per-node vital-signs line at every reflection tick \
             while the simulation runs")
  in
  let watchdog =
    Arg.(
      value & flag
      & info [ "watchdog" ]
          ~doc:
            "Also install the pure-OverLog watchdog rules and report \
             $(b,p2Alarm) tuples")
  in
  let olg =
    Arg.(
      value & opt (some file) None
      & info [ "olg" ] ~docv:"FILE"
          ~doc:"Extra OverLog program to install on every node")
  in
  let action n seed duration trace period json watch watchdog olg =
    let engine = P2_runtime.Engine.create ~seed ~trace () in
    let net = Chord.boot engine n in
    (match olg with
    | Some file -> P2_runtime.Engine.install_all engine (read_file file)
    | None -> ());
    let alarms =
      if watchdog then Some (Core.Watchdog.install ~period engine)
      else begin
        P2_runtime.P2stats.attach ~period engine;
        None
      end
    in
    if watch then begin
      let rec tick () =
        List.iter
          (fun addr ->
            let node = P2_runtime.Engine.node engine addr in
            let reg = P2_runtime.Node.registry node in
            let v name = Option.value (Metrics.value reg name) ~default:0. in
            Fmt.pr
              "[%8.1f] %-6s agenda_max=%-5.0f executed=%-8.0f tx=%-7.0f \
               rx=%-7.0f sendq=%.0f@."
              (P2_runtime.Engine.now engine)
              addr
              (v "machine.agenda.depth_max")
              (v "machine.agenda.executed")
              (v "net.msgs_tx") (v "net.msgs_rx") (v "net.sendq.depth"))
          (P2_runtime.Engine.addrs engine);
        P2_runtime.Engine.at engine
          ~time:(P2_runtime.Engine.now engine +. period)
          tick
      in
      P2_runtime.Engine.at engine ~time:(P2_runtime.Engine.now engine +. period)
        tick
    end;
    P2_runtime.Engine.run_for engine duration;
    if json then Fmt.pr "%s@." (P2_runtime.P2stats.to_json engine)
    else
      List.iter
        (fun addr ->
          Fmt.pr "%a@." P2_runtime.P2stats.pp_node
            (P2_runtime.Engine.node engine addr))
        (P2_runtime.Engine.addrs engine);
    (match alarms with
    | Some c ->
        Fmt.pr "p2Alarm: %d alarm(s)@." (Core.Alarms.count c);
        List.iter (fun a -> Fmt.pr "  %a@." Core.Alarms.pp_alarm a)
          (Core.Alarms.alarms c)
    | None -> ());
    ignore net;
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Boot a Chord ring with metric reflection and dump the runtime's \
          own vital signs (p2Stats)")
    Term.(
      const action $ n $ seed_arg $ duration_arg $ trace_arg $ period $ json
      $ watch $ watchdog $ olg)

(* --- campaign --- *)

let campaign_cmd =
  let seeds =
    Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep")
  in
  let seed_base =
    Arg.(value & opt int 1 & info [ "seed-base" ] ~docv:"N" ~doc:"First seed of the sweep")
  in
  let intensities =
    Arg.(
      value & opt (list int) [ 1 ]
      & info [ "intensity" ] ~docv:"LEVELS"
          ~doc:"Comma-separated fault-intensity levels (0 = fault-free baseline)")
  in
  let n =
    Arg.(value & opt int 8 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Ring size")
  in
  let plant =
    Arg.(
      value & flag
      & info [ "plant-corruption" ]
          ~doc:
            "Append the planted successor-corruption bug to every plan; the \
             campaign then $(i,expects) each run to fail and its shrunk plan \
             to have at most 3 actions (harness self-test)")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip shrinking failing plans")
  in
  let replay =
    Arg.(
      value & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay one fault plan from a file instead of sweeping")
  in
  let buggy =
    Arg.(
      value & flag
      & info [ "buggy" ] ~doc:"Use the incorrect Chord that recycles dead neighbors")
  in
  let stats_json =
    Arg.(
      value & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Write each run's final runtime stats (p2Stats registries, \
             table and peer counters) as a JSON array to FILE. Dumps are \
             taken after each verdict is sealed, so they never perturb \
             campaign determinism")
  in
  let loss =
    Arg.(
      value & opt float 0.
      & info [ "loss" ] ~docv:"RATE"
          ~doc:
            "Uniform message-loss rate for the whole run, boot included — \
             the eventual-delivery sweep exercising the reliable transport")
  in
  let unreliable =
    Arg.(
      value & flag
      & info [ "unreliable" ]
          ~doc:
            "Ablate the reliable transport (fire-and-forget sends) — the \
             control arm of a loss sweep; expected to fail under --loss")
  in
  let extended =
    Arg.(
      value & flag
      & info [ "extended-faults" ]
          ~doc:
            "Widen generated fault plans with partition/heal-partition and \
             crash/restart pairs (restarts recover from checkpoints when \
             $(b,--checkpoint) is set). Off keeps the classic fault \
             alphabet and its exact seeded draw sequence")
  in
  let action seeds seed_base intensities n duration plant no_shrink replay buggy
      stats_json loss unreliable extended checkpoint checkpoint_interval naive
      shards sanitize trace_log =
    (* Accumulate one JSON object per run; flushed at exit. *)
    let dumps = ref [] in
    let on_done =
      Option.map
        (fun _ engine -> dumps := P2_runtime.P2stats.to_json engine :: !dumps)
        stats_json
    in
    let flush_dumps () =
      Option.iter
        (fun file ->
          let oc = open_out file in
          output_string oc ("[" ^ String.concat "," (List.rev !dumps) ^ "]\n");
          close_out oc;
          Fmt.pr "stats: %d dump(s) -> %s@." (List.length !dumps) file)
        stats_json
    in
    let cfg =
      {
        Harness.Campaign.default_config with
        nodes = n;
        horizon = duration;
        loss_rate = loss;
        reliable = not unreliable;
        seminaive = not naive;
        shards;
        sanitize;
        trace_log;
        extended_faults = extended;
        checkpoint;
        checkpoint_interval;
        params = (if buggy then Chord.buggy_params else Chord.default_params);
      }
    in
    let shrink_and_print r =
      let plan, attempts =
        Harness.Campaign.shrink cfg ~seed:r.Harness.Campaign.seed r.plan
      in
      Fmt.pr "@.shrunk seed=%d to %d action(s) in %d re-run(s); replayable plan:@."
        r.seed
        (Harness.Fault_plan.length plan)
        attempts;
      Fmt.pr "%s" (Harness.Fault_plan.to_string plan);
      plan
    in
    let code =
    match replay with
    | Some file -> (
        match Harness.Fault_plan.of_string (read_file file) with
        | exception Invalid_argument msg ->
            Fmt.epr "p2ql: %s: %s@." file msg;
            2
        | plan ->
            let run = Harness.Campaign.run_plan cfg ~seed:seed_base ?on_done plan in
            Fmt.pr "%a@." Harness.Campaign.pp_report [ run ];
            if Harness.Campaign.failed run then 1 else 0)
    | None ->
        let seed_list = List.init seeds (fun i -> seed_base + i) in
        let runs =
          if not plant then
            Harness.Campaign.sweep cfg ~seeds:seed_list ~intensities ?on_done ()
          else
            (* harness self-test: every plan carries the planted bug *)
            List.concat_map
              (fun seed ->
                List.map
                  (fun intensity ->
                    let plan =
                      Harness.Campaign.plan_of_seed cfg ~seed ~intensity
                      |> Harness.Fault_plan.plant_corruption
                           ~rng:(Sim.Rng.create (seed + 7919))
                           ~addrs:(List.init n (Fmt.str "n%d"))
                           ~time:(duration /. 2.)
                    in
                    Harness.Campaign.run_plan cfg ~seed ~intensity ?on_done plan)
                  intensities)
              seed_list
        in
        Fmt.pr "%a" Harness.Campaign.pp_report runs;
        let failing = List.filter Harness.Campaign.failed runs in
        let shrunk =
          if no_shrink then [] else List.map shrink_and_print failing
        in
        if plant then
          (* success = the planted bug was caught everywhere, and the
             shrinker reduced it to (at most) the corruption itself + 2 *)
          if
            List.length failing = List.length runs
            && (no_shrink
               || List.for_all (fun p -> Harness.Fault_plan.length p <= 3) shrunk)
          then begin
            Fmt.pr "@.planted corruption caught in all %d run(s)@." (List.length runs);
            0
          end
          else begin
            Fmt.epr "@.planted corruption NOT caught (or shrink too large)@.";
            1
          end
        else if failing = [] then 0
        else 1
    in
    flush_dumps ();
    code
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a deterministic fault-injection campaign against Chord")
    Term.(
      const action $ seeds $ seed_base $ intensities $ n $ duration_arg $ plant
      $ no_shrink $ replay $ buggy $ stats_json $ loss $ unreliable $ extended
      $ checkpoint_arg $ checkpoint_interval_arg $ naive_arg $ shards_arg
      $ sanitize_arg $ trace_log_arg)

(* --- replay --- *)

let replay_cmd =
  let log =
    Arg.(
      required
      & opt (some string) None
      & info [ "log" ] ~docv:"DIR"
          ~doc:"Flight-recorder root directory (as written by --trace-log)")
  in
  let from_ =
    Arg.(
      value
      & opt (some float) None
      & info [ "from" ] ~docv:"T1"
          ~doc:
            "Restore only records stamped at or after $(docv) (recorded \
             node-local time)")
  in
  let to_ =
    Arg.(
      value
      & opt (some float) None
      & info [ "to" ] ~docv:"T2"
          ~doc:"Restore only records stamped at or before $(docv)")
  in
  let olg =
    Arg.(
      value
      & opt (some file) None
      & info [ "olg" ] ~docv:"FILE"
          ~doc:
            "Historical OverLog query, installed on every replay node \
             before restoration so its rules fire for each recorded \
             $(b,ruleExec) / $(b,tupleTable) row in log order")
  in
  let watches =
    Arg.(
      value & opt (list string) []
      & info [ "watch" ] ~docv:"NAMES"
          ~doc:"Tuple names to print as the query derives them")
  in
  let dump =
    Arg.(
      value & opt (list string) []
      & info [ "dump" ] ~docv:"TABLES"
          ~doc:"Tables to dump from every replay node once the replay settles")
  in
  let action log from_ to_ olg watches dump =
    let program =
      match olg with
      | None -> None
      | Some file -> (
          let src = read_file file in
          (* Surface parse errors before spending time restoring. *)
          match Overlog.Parser.parse_result src with
          | Ok _ -> Some src
          | Error msg ->
              Fmt.epr "parse error: %s@." msg;
              exit 1)
    in
    let on_node _engine node =
      List.iter
        (fun name ->
          P2_runtime.Node.watch node name (fun t ->
              Fmt.pr "[replay] %s: %a@." (P2_runtime.Node.addr node)
                Overlog.Tuple.pp t))
        watches
    in
    match Core.Replay.load ?from_ ?to_ ?program ~on_node ~dir:log () with
    | exception Invalid_argument msg ->
        Fmt.epr "p2ql replay: %s@." msg;
        1
    | t ->
        Fmt.pr "%a" Core.Replay.pp_report t;
        let engine = t.Core.Replay.engine in
        let addrs = P2_runtime.Engine.addrs engine in
        List.iter
          (fun table_name ->
            Fmt.pr "@.=== %s ===@." table_name;
            List.iter
              (fun addr ->
                let node = P2_runtime.Engine.node engine addr in
                match
                  Store.Catalog.find (P2_runtime.Node.catalog node) table_name
                with
                | Some table ->
                    List.iter
                      (fun tu -> Fmt.pr "%s: %a@." addr Overlog.Tuple.pp tu)
                      (Store.Table.tuples table
                         ~now:(P2_runtime.Engine.now engine))
                | None -> ())
              addrs)
          dump;
        0
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Time-travel replay: stream a recorded flight-recorder log back \
          through a fresh dataflow instance, optionally running a \
          historical OverLog query over the recorded window")
    Term.(const action $ log $ from_ $ to_ $ olg $ watches $ dump)

(* --- logctl --- *)

let logctl_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:"Flight-recorder root directory (as written by --trace-log)")
  in
  let action dir =
    if not (Sys.file_exists dir) then begin
      Fmt.epr "p2ql logctl: %s: no such directory@." dir;
      1
    end
    else
    let addrs = Core.Replay.node_dirs dir in
    if addrs = [] then begin
      Fmt.epr "p2ql logctl: no node directories under %s@." dir;
      1
    end
    else begin
      let bad = ref 0 and total_segments = ref 0 in
      let total_records = ref 0 and total_bytes = ref 0 in
      List.iter
        (fun addr ->
          let segs = Seglog.segments ~dir:(Filename.concat dir addr) in
          total_segments := !total_segments + List.length segs;
          Fmt.pr "%s: %d segment(s)@." addr (List.length segs);
          List.iter
            (fun (s : Seglog.segment) ->
              total_records := !total_records + s.records;
              total_bytes := !total_bytes + s.bytes;
              let status =
                if Seglog.intact s then
                  if s.sealed then "sealed" else "open"
                else begin
                  incr bad;
                  String.concat ","
                    ((if not s.header_ok then [ "bad-header" ] else [])
                    @ (if s.torn then [ "torn-tail" ] else [])
                    @ (if s.bad_records > 0 then
                         [ Fmt.str "%d bad record(s)" s.bad_records ]
                       else [])
                    @
                    match s.declared with
                    | Some d when d <> s.records ->
                        [ Fmt.str "declared %d, found %d" d s.records ]
                    | _ -> [])
                end
              in
              Fmt.pr "  %-16s %9d bytes %7d records  seq %d+  [%g, %g]  %s@."
                (Filename.basename s.path)
                s.bytes s.records s.base_seq s.base_stamp s.last_stamp status)
            segs)
        addrs;
      if !total_segments = 0 then begin
        Fmt.epr "p2ql logctl: no segments under %s@." dir;
        1
      end
      else begin
        Fmt.pr "@.%d node(s), %d records, %d bytes%s@." (List.length addrs)
          !total_records !total_bytes
          (if !bad = 0 then ", all segments intact"
           else Fmt.str ", %d DAMAGED segment(s)" !bad);
        if !bad = 0 then 0 else 1
      end
    end
  in
  Cmd.v
    (Cmd.info "logctl"
       ~doc:
         "Inventory a flight-recorder log: per-segment record counts, \
          stamp ranges and integrity (exit 1 if any segment is damaged)")
    Term.(const action $ dir)

(* --- ckptctl --- *)

let ckptctl_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:"Checkpoint root directory (as written by --checkpoint)")
  in
  let action dir =
    if not (Sys.file_exists dir) then begin
      Fmt.epr "p2ql ckptctl: %s: no such directory@." dir;
      1
    end
    else
    let addrs = Core.Replay.node_dirs dir in
    if addrs = [] then begin
      Fmt.epr "p2ql ckptctl: no node directories under %s@." dir;
      1
    end
    else begin
      let bad = ref 0 and total = ref 0 in
      let total_rows = ref 0 and total_bytes = ref 0 in
      List.iter
        (fun addr ->
          let node_dir = Filename.concat dir addr in
          let infos = Checkpoint.inventory ~dir:node_dir in
          let recoverable =
            match Checkpoint.latest ~dir:node_dir with
            | Some s -> Fmt.str "latest intact: %s" (Filename.basename s.Checkpoint.path)
            | None -> "NO intact snapshot (restart cold-boots)"
          in
          Fmt.pr "%s: %d snapshot(s), %s@." addr (List.length infos) recoverable;
          List.iter
            (fun (i : Checkpoint.info) ->
              incr total;
              total_rows := !total_rows + i.Checkpoint.i_rows;
              total_bytes := !total_bytes + i.Checkpoint.i_bytes;
              if not i.Checkpoint.i_ok then incr bad;
              Fmt.pr "  %-18s %9d bytes %4d table(s) %5d row(s)  stamp %-8g %s@."
                (Filename.basename i.Checkpoint.i_path)
                i.Checkpoint.i_bytes i.Checkpoint.i_tables i.Checkpoint.i_rows
                i.Checkpoint.i_stamp
                (if i.Checkpoint.i_ok then "ok"
                 else
                   "DAMAGED: "
                   ^ Option.value i.Checkpoint.i_error ~default:"unreadable"))
            infos)
        addrs;
      if !total = 0 then begin
        Fmt.epr "p2ql ckptctl: no snapshots under %s@." dir;
        1
      end
      else begin
        Fmt.pr "@.%d node(s), %d snapshot(s), %d row(s), %d bytes%s@."
          (List.length addrs) !total !total_rows !total_bytes
          (if !bad = 0 then ", all snapshots intact"
           else Fmt.str ", %d DAMAGED snapshot(s)" !bad);
        if !bad = 0 then 0 else 1
      end
    end
  in
  Cmd.v
    (Cmd.info "ckptctl"
       ~doc:
         "Inventory a checkpoint directory: per-snapshot table/row counts, \
          stamps and integrity, and which snapshot each node would recover \
          from (exit 1 if any snapshot is damaged or none exist)")
    Term.(const action $ dir)

(* --- peers --- *)

let peers_cmd =
  let n =
    Arg.(value & opt int 8 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Ring size")
  in
  let loss =
    Arg.(
      value & opt float 0.
      & info [ "loss" ] ~docv:"RATE" ~doc:"Uniform message-loss rate")
  in
  let crash =
    Arg.(
      value & opt (some string) None
      & info [ "crash" ] ~docv:"ADDR:TIME"
          ~doc:
            "Crash a node at a given time and watch its peers' failure \
             detectors turn; append :TIME2 to recover it again")
  in
  let action n seed duration loss crash =
    let engine = P2_runtime.Engine.create ~seed ~loss_rate:loss () in
    let net = Chord.boot engine n in
    (match crash with
    | Some spec -> (
        let at time f =
          P2_runtime.Engine.at engine ~time:(float_of_string time) f
        in
        match String.split_on_char ':' spec with
        | [ addr; t_crash ] ->
            at t_crash (fun () ->
                or_cli_error (fun () -> P2_runtime.Engine.crash engine addr))
        | [ addr; t_crash; t_recover ] ->
            at t_crash (fun () ->
                or_cli_error (fun () -> P2_runtime.Engine.crash engine addr));
            at t_recover (fun () ->
                or_cli_error (fun () -> P2_runtime.Engine.recover engine addr))
        | _ -> Fmt.epr "bad --crash spec %S (want ADDR:TIME[:TIME2])@." spec)
    | None -> ());
    P2_runtime.Engine.run_for engine duration;
    ignore net;
    List.iter
      (fun addr ->
        let tr = P2_runtime.Engine.transport engine addr in
        Fmt.pr "%s  (retransmits=%d duplicates=%d)@." addr
          (P2_runtime.Transport.retransmit_count tr)
          (P2_runtime.Transport.duplicate_count tr);
        List.iter
          (fun p ->
            Fmt.pr "  %-8s %-8s misses=%-3d silent=%7.2fs sendq=%d@."
              p.P2_runtime.Transport.peer
              (P2_runtime.Transport.status_name p.P2_runtime.Transport.status)
              p.P2_runtime.Transport.misses p.P2_runtime.Transport.silent_for
              p.P2_runtime.Transport.sendq)
          (P2_runtime.Transport.peers tr))
      (P2_runtime.Engine.addrs engine);
    0
  in
  Cmd.v
    (Cmd.info "peers"
       ~doc:
         "Boot a Chord ring and print every node's transport channels and \
          failure-detector verdicts (the host-side view of p2PeerStatus)")
    Term.(const action $ n $ seed_arg $ duration_arg $ loss $ crash)

let () =
  let doc = "P2 declarative monitoring & forensics runtime" in
  let info = Cmd.info "p2ql" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            parse_cmd; check_cmd; explain_cmd; run_cmd; chord_cmd; stats_cmd;
            campaign_cmd; peers_cmd; replay_cmd; logctl_cmd; ckptctl_cmd;
          ]))
