(** Introspection: reflect node state back as queryable tables
    (paper §2.1 — "most of the state of a running P2 node is reflected
    back to the system as tables, themselves queryable in OverLog").

    [attach] materializes three system tables on a node and keeps them
    refreshed from a periodic engine callback:

    - [sysRule(Addr, RuleId, Text)] — every installed rule;
    - [sysTable(Addr, Name, Lifetime, MaxSize, Live)] — catalog stats;
    - [sysNode(Addr, RulesInstalled, TuplesCreated, DeadEvents)].

    Since they are plain tables, OverLog monitoring rules can join
    against them like any application state. *)

open Overlog

let attach engine addr =
  let node = Engine.node engine addr in
  let catalog = Node.catalog node in
  let ensure name keys =
    match Store.Catalog.find catalog name with
    | Some table -> table
    | None ->
        let table = Store.Table.create ~keys name in
        Store.Catalog.add catalog table;
        table
  in
  let sys_rule = ensure "sysRule" [ 2 ] in
  let sys_table = ensure "sysTable" [ 2 ] in
  let sys_node = ensure "sysNode" [ 1 ] in
  let refresh () =
    let now = Engine.now engine in
    let put table fields =
      let tuple = Tuple.make (Store.Table.name table) fields in
      let _ = Store.Table.insert table ~now tuple in
      ()
    in
    Store.Catalog.iter catalog (fun table ->
        let name = Store.Table.name table in
        if name <> "sysRule" && name <> "sysTable" && name <> "sysNode" then
          put sys_table
            [
              Value.VAddr addr;
              Value.VStr name;
              Value.VFloat infinity;
              Value.VInt (-1);
              Value.VInt (Store.Table.size table ~now);
            ]);
    put sys_node
      [
        Value.VAddr addr;
        Value.VInt (Node.rules_installed node);
        Value.VInt (Sim.Metrics.tuples_created (Node.metrics node));
        Value.VInt (Node.dead_events node);
      ];
    List.iter
      (fun (rule_id, text) ->
        put sys_rule [ Value.VAddr addr; Value.VStr rule_id; Value.VStr text ])
      (Node.rules node)
  in
  let rec tick () =
    refresh ();
    Engine.at engine ~time:(Engine.now engine +. 1.0) tick
  in
  tick ()


