lib/core/oscillation.ml: Alarms Chord Fmt P2_runtime
