(** Append-only binary segment log for trace records (see
    seglog.mli and docs/FORENSICS.md for the on-disk format spec). *)

open Overlog

(* --- Framing constants ---------------------------------------------

   Segment header (37 bytes, little-endian):
     0   "P2SL"                magic
     4   u8   format version   (1)
     5   f64  base stamp       (first record's stamp; nan while open)
     13  u64  base seq         (log-wide seq of the first record)
     21  f64  last stamp       (newest record's stamp; nan while open)
     29  u32  record count     (0xFFFFFFFF while open)
     33  u32  CRC-32 of bytes [0,33)

   Record:
     u32  payload length
     u32  CRC-32 of the payload
     payload = f64 stamp | Wire data frame (Wire.encode) *)

let magic = "P2SL"
let format_version = 1
let header_len = 37
let count_sentinel = 0xFFFFFFFF

(* Length sanity bound during scans: a frame longer than this means
   the length prefix itself is damaged, so treat the tail as torn. *)
let max_record_len = 1 lsl 24

(* --- CRC-32 (IEEE 802.3, reflected), table-driven ------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* --- Config -------------------------------------------------------- *)

type config = {
  segment_bytes : int;
  retain_segments : int option;
  retain_age : float option;
  buffer_bytes : int;
}

let default_config =
  {
    segment_bytes = 4 * 1024 * 1024;
    retain_segments = None;
    retain_age = None;
    buffer_bytes = 256 * 1024;
  }

(* --- Directory layout ---------------------------------------------- *)

let seg_name ix = Fmt.str "seg-%08d.p2sl" ix

let seg_index name =
  if
    String.length name = 17
    && String.sub name 0 4 = "seg-"
    && Filename.check_suffix name ".p2sl"
  then int_of_string_opt (String.sub name 4 8)
  else None

(* (index, path) for every segment file, in log order. *)
let seg_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun n ->
             Option.map (fun ix -> (ix, Filename.concat dir n)) (seg_index n))
      |> List.sort compare

let rec mkdir_p dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- Header codec -------------------------------------------------- *)

let encode_header ~base_stamp ~base_seq ~last_stamp ~count =
  let b = Buffer.create header_len in
  Buffer.add_string b magic;
  Buffer.add_uint8 b format_version;
  Buffer.add_int64_le b (Int64.bits_of_float base_stamp);
  Buffer.add_int64_le b (Int64.of_int base_seq);
  Buffer.add_int64_le b (Int64.bits_of_float last_stamp);
  Buffer.add_int32_le b (Int32.of_int count);
  let body = Buffer.contents b in
  Buffer.add_int32_le b (Int32.of_int (crc32 body));
  Buffer.contents b

let u32_at s off = Int32.to_int (String.get_int32_le s off) land 0xFFFFFFFF

type header = {
  h_base_stamp : float;
  h_base_seq : int;
  h_last_stamp : float;
  h_count : int;
}

let decode_header s =
  if
    String.length s >= header_len
    && String.sub s 0 4 = magic
    && Char.code s.[4] = format_version
    && u32_at s 33 = crc32 (String.sub s 0 33)
  then
    Some
      {
        h_base_stamp = Int64.float_of_bits (String.get_int64_le s 5);
        h_base_seq = Int64.to_int (String.get_int64_le s 13);
        h_last_stamp = Int64.float_of_bits (String.get_int64_le s 21);
        h_count = u32_at s 29;
      }
  else None

(* --- Record framing ------------------------------------------------ *)

let frame_record ~stamp ~delete tuple =
  let payload =
    let b = Buffer.create 64 in
    Buffer.add_int64_le b (Int64.bits_of_float stamp);
    Buffer.add_string b (Wire.encode ~delete tuple);
    Buffer.contents b
  in
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_int32_le b (Int32.of_int (crc32 payload));
  Buffer.add_string b payload;
  Buffer.contents b

(* Visit every CRC-good record payload in a segment image; returns
   (good count, end offset of the last complete record, torn?, CRC-bad
   count). CRC-bad records with intact framing are skipped and the
   scan continues; incomplete framing at the tail stops it. *)
let scan_payloads s visit =
  let len = String.length s in
  let rec go off good bad =
    if off + 8 > len then (good, off, off < len, bad)
    else
      let plen = u32_at s off in
      let crc = u32_at s (off + 4) in
      if plen = 0 || plen > max_record_len || off + 8 + plen > len then
        (good, off, true, bad)
      else
        let payload = String.sub s (off + 8) plen in
        if crc32 payload <> crc then go (off + 8 + plen) good (bad + 1)
        else begin
          visit payload;
          go (off + 8 + plen) (good + 1) bad
        end
  in
  go header_len 0 0

let payload_stamp payload =
  if String.length payload >= 8 then
    Some (Int64.float_of_bits (String.get_int64_le payload 0))
  else None

let decode_payload payload =
  match payload_stamp payload with
  | None -> None
  | Some stamp -> (
      let frame = String.sub payload 8 (String.length payload - 8) in
      match Wire.decode frame with
      | { Wire.kind = Wire.Data m; _ } ->
          Some
            ( stamp,
              m.Wire.delete,
              Tuple.make ~id:m.Wire.src_tuple_id m.Wire.name m.Wire.fields )
      | _ -> None
      | exception Wire.Error _ -> None)

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all with Sys_error _ -> ""

(* --- Writer -------------------------------------------------------- *)

type stats = {
  segments_sealed : int;
  records_written : int;
  bytes_written : int;
  flush_ns : int;
  retention_drops : int;
  buffered_records : int;
  buffered_bytes : int;
}

type writer = {
  config : config;
  w_dir : string;
  mutable chan : out_channel;
  mutable cur_path : string;
  mutable cur_index : int;
  mutable cur_base_seq : int;
  mutable cur_first_stamp : float;  (* nan until the first record *)
  mutable cur_last_stamp : float;
  mutable cur_records : int;
  mutable cur_bytes : int;  (* file bytes including the header *)
  mutable pending : (float * string) list;  (* newest first *)
  mutable pending_records : int;
  mutable pending_bytes : int;
  mutable next_seq : int;  (* log-wide seq of the next append *)
  mutable closed : bool;
  mutable segments_sealed : int;
  mutable records_written : int;
  mutable bytes_written : int;
  mutable flush_ns : int;
  mutable retention_drops : int;
}

let dir w = w.w_dir

let stats w =
  {
    segments_sealed = w.segments_sealed;
    records_written = w.records_written;
    bytes_written = w.bytes_written;
    flush_ns = w.flush_ns;
    retention_drops = w.retention_drops;
    buffered_records = w.pending_records;
    buffered_bytes = w.pending_bytes;
  }

(* Patch a header in place through a raw fd (also used by recovery,
   which may need to truncate a torn tail with the same handle). *)
let rewrite_header ?truncate_at path header =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Option.iter (Unix.ftruncate fd) truncate_at;
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      let b = Bytes.of_string header in
      let n = Unix.write fd b 0 (Bytes.length b) in
      if n <> Bytes.length b then failwith "Seglog: short header write")

let open_segment w =
  let path = Filename.concat w.w_dir (seg_name w.cur_index) in
  let chan = open_out_bin path in
  output_string chan
    (encode_header ~base_stamp:Float.nan ~base_seq:w.next_seq
       ~last_stamp:Float.nan ~count:count_sentinel);
  Stdlib.flush chan;
  w.chan <- chan;
  w.cur_path <- path;
  w.cur_base_seq <- w.next_seq;
  w.cur_first_stamp <- Float.nan;
  w.cur_last_stamp <- Float.nan;
  w.cur_records <- 0;
  w.cur_bytes <- header_len

(* Seal the current segment: patch the header with the real stamps and
   count. An empty segment is deleted instead. *)
let seal_current w =
  Stdlib.flush w.chan;
  close_out w.chan;
  if w.cur_records = 0 then Sys.remove w.cur_path
  else begin
    rewrite_header w.cur_path
      (encode_header ~base_stamp:w.cur_first_stamp ~base_seq:w.cur_base_seq
         ~last_stamp:w.cur_last_stamp ~count:w.cur_records);
    w.segments_sealed <- w.segments_sealed + 1
  end

(* Read just the header of a sealed segment (37 bytes). *)
let read_header path =
  match
    In_channel.with_open_bin path (fun ic ->
        really_input_string ic header_len)
  with
  | s -> decode_header s
  | exception (Sys_error _ | End_of_file) -> None

(* Drop sealed segments beyond the count / age horizons. [now_stamp]
   is the node-local stamp of the newest record (ages are measured on
   the recorded clock, not wall time). *)
let apply_retention w ~now_stamp =
  let drop path =
    (try Sys.remove path with Sys_error _ -> ());
    w.retention_drops <- w.retention_drops + 1
  in
  let sealed () =
    List.filter (fun (ix, _) -> ix <> w.cur_index) (seg_files w.w_dir)
  in
  (match w.config.retain_segments with
  | Some n when n >= 0 ->
      let s = sealed () in
      let excess = List.length s - n in
      if excess > 0 then
        List.iteri (fun i (_, path) -> if i < excess then drop path) s
  | _ -> ());
  match w.config.retain_age with
  | Some age ->
      List.iter
        (fun (_, path) ->
          match read_header path with
          | Some h when h.h_count <> count_sentinel ->
              if h.h_last_stamp < now_stamp -. age then drop path
          | _ -> ())
        (sealed ())
  | None -> ()

let roll w ~now_stamp =
  seal_current w;
  w.cur_index <- w.cur_index + 1;
  open_segment w;
  (* after the index advance, so the freshly sealed segment is part of
     the retention census *)
  apply_retention w ~now_stamp

let flush w =
  if w.pending <> [] then begin
    let t0 = Unix.gettimeofday () in
    let items = List.rev w.pending in
    w.pending <- [];
    w.pending_records <- 0;
    w.pending_bytes <- 0;
    List.iter
      (fun (stamp, framed) ->
        if w.cur_bytes >= w.config.segment_bytes && w.cur_records > 0 then
          roll w ~now_stamp:stamp;
        output_string w.chan framed;
        if w.cur_records = 0 then w.cur_first_stamp <- stamp;
        w.cur_last_stamp <- stamp;
        (* seq advances as records reach the segment, not as they are
           buffered — rolling mid-flush must hand the new segment the
           seq of the next record it will actually hold *)
        w.next_seq <- w.next_seq + 1;
        w.cur_records <- w.cur_records + 1;
        w.cur_bytes <- w.cur_bytes + String.length framed;
        w.records_written <- w.records_written + 1;
        w.bytes_written <- w.bytes_written + String.length framed)
      items;
    Stdlib.flush w.chan;
    w.flush_ns <- w.flush_ns + int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
  end

let append w ~stamp ~delete tuple =
  if w.closed then invalid_arg "Seglog.append: writer is closed";
  let framed = frame_record ~stamp ~delete tuple in
  w.pending <- (stamp, framed) :: w.pending;
  w.pending_records <- w.pending_records + 1;
  w.pending_bytes <- w.pending_bytes + String.length framed;
  if w.pending_bytes >= w.config.buffer_bytes then flush w

let close w =
  if not w.closed then begin
    flush w;
    seal_current w;
    w.closed <- true
  end

(* Crash recovery for one unsealed (or torn) segment: scan, truncate
   the torn tail, and seal in place with the recovered stamps/count.
   Returns the seq one past the segment's last record, or [None] when
   the header itself is unreadable (the file is left untouched). *)
let recover_segment path =
  let contents = read_file path in
  match decode_header contents with
  | None -> None
  | Some h ->
      let first = ref Float.nan and last = ref Float.nan in
      let count, end_off, torn, _bad =
        scan_payloads contents (fun payload ->
            match payload_stamp payload with
            | Some st ->
                if Float.is_nan !first then first := st;
                last := st
            | None -> ())
      in
      if count = 0 then begin
        Sys.remove path;
        Some h.h_base_seq
      end
      else begin
        if torn || h.h_count = count_sentinel then
          rewrite_header path
            ?truncate_at:(if torn then Some end_off else None)
            (encode_header ~base_stamp:!first ~base_seq:h.h_base_seq
               ~last_stamp:!last ~count);
        Some (h.h_base_seq + count)
      end

let create ?(config = default_config) ~dir () =
  mkdir_p dir;
  (* Recover every unsealed segment (normally just the last one a
     crash left behind); sealed headers are trusted for the sequence
     handoff without rescanning their records. *)
  let next_index, next_seq =
    List.fold_left
      (fun (next_ix, next_seq) (ix, path) ->
        let seg_next =
          match read_header path with
          | Some h when h.h_count <> count_sentinel ->
              Some (h.h_base_seq + h.h_count)
          | Some _ -> recover_segment path
          | None -> None
        in
        (max next_ix (ix + 1), max next_seq (Option.value seg_next ~default:0)))
      (1, 0) (seg_files dir)
  in
  let w =
    {
      config;
      w_dir = dir;
      chan = stdout;  (* replaced by open_segment below *)
      cur_path = "";
      cur_index = next_index;
      cur_base_seq = next_seq;
      cur_first_stamp = Float.nan;
      cur_last_stamp = Float.nan;
      cur_records = 0;
      cur_bytes = 0;
      pending = [];
      pending_records = 0;
      pending_bytes = 0;
      next_seq;
      closed = false;
      segments_sealed = 0;
      records_written = 0;
      bytes_written = 0;
      flush_ns = 0;
      retention_drops = 0;
    }
  in
  open_segment w;
  w

(* --- Reading ------------------------------------------------------- *)

type record = { stamp : float; seq : int; delete : bool; tuple : Tuple.t }

let iter ?(from_ = neg_infinity) ?(to_ = infinity) ~dir f =
  List.iter
    (fun (_, path) ->
      match read_header path with
      | None -> ()
      | Some h ->
          let sealed = h.h_count <> count_sentinel in
          (* Sealed segments wholly outside the window need only their
             headers. *)
          if not (sealed && (h.h_base_stamp > to_ || h.h_last_stamp < from_))
          then begin
            let contents = read_file path in
            let seq = ref h.h_base_seq in
            ignore
              (scan_payloads contents (fun payload ->
                   let s = !seq in
                   incr seq;
                   match decode_payload payload with
                   | Some (stamp, delete, tuple)
                     when from_ <= stamp && stamp <= to_ ->
                       f { stamp; seq = s; delete; tuple }
                   | _ -> ()))
          end)
    (seg_files dir)

type segment = {
  path : string;
  header_ok : bool;
  sealed : bool;
  base_stamp : float;
  base_seq : int;
  last_stamp : float;
  records : int;
  declared : int option;
  bytes : int;
  torn : bool;
  bad_records : int;
}

let segments ~dir =
  List.map
    (fun (_, path) ->
      let contents = read_file path in
      match decode_header contents with
      | None ->
          {
            path;
            header_ok = false;
            sealed = false;
            base_stamp = Float.nan;
            base_seq = -1;
            last_stamp = Float.nan;
            records = 0;
            declared = None;
            bytes = String.length contents;
            torn = true;
            bad_records = 0;
          }
      | Some h ->
          let first = ref Float.nan and last = ref Float.nan in
          let records, _end_off, torn, bad_records =
            scan_payloads contents (fun payload ->
                match payload_stamp payload with
                | Some st ->
                    if Float.is_nan !first then first := st;
                    last := st
                | None -> ())
          in
          let sealed = h.h_count <> count_sentinel in
          {
            path;
            header_ok = true;
            sealed;
            base_stamp = (if sealed then h.h_base_stamp else !first);
            base_seq = h.h_base_seq;
            last_stamp = (if sealed then h.h_last_stamp else !last);
            records;
            declared = (if sealed then Some h.h_count else None);
            bytes = String.length contents;
            torn;
            bad_records;
          })
    (seg_files dir)

let intact s =
  s.header_ok && (not s.torn) && s.bad_records = 0
  && match s.declared with None -> true | Some n -> n = s.records
