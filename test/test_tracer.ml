(* Tracer: ruleExec/tupleTable contents, causal links, reference
   counting, and the pipelined record machinery of paper §2.1.2. *)

open Overlog
open Dataflow

let mk_tracer ?config () =
  let now = ref 0. in
  let tr =
    Tracer.create ?config ~addr:"n" ~now:(fun () -> !now) ~charge:(fun _ -> ()) ()
  in
  Tracer.enable tr;
  (tr, now)

let rule_exec_rows tr =
  Store.Table.tuples (Tracer.rule_exec_table tr) ~now:0.
  |> List.map (fun t ->
         ( Value.as_string (Tuple.field t 2),
           Value.as_int (Tuple.field t 3),
           Value.as_int (Tuple.field t 4),
           Value.as_bool (Tuple.field t 7) ))

(* Simulate the §2.1.1 sequential execution of rule "r" with one join
   stage: input 1, precondition 2, output 3. *)
let test_sequential_rows () =
  let tr, _ = mk_tracer () in
  Tracer.on_input tr ~rule:"r" ~join_count:1 ~tuple_id:1;
  Tracer.on_precondition tr ~rule:"r" ~join_count:1 ~stage:0 ~tuple_id:2;
  Tracer.on_output tr ~rule:"r" ~join_count:1 ~tuple_id:3;
  Tracer.on_stage_complete tr ~rule:"r" ~join_count:1 ~stage:0;
  let rows = List.sort compare (rule_exec_rows tr) in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  Alcotest.(check bool) "event row" true (List.mem ("r", 1, 3, true) rows);
  Alcotest.(check bool) "precond row" true (List.mem ("r", 2, 3, false) rows);
  Alcotest.(check int) "record reclaimed" 0 (Tracer.record_count tr "r")

let test_multi_output () =
  (* one input, two matches -> two outputs, both linked to the input *)
  let tr, _ = mk_tracer () in
  Tracer.on_input tr ~rule:"r" ~join_count:1 ~tuple_id:1;
  Tracer.on_precondition tr ~rule:"r" ~join_count:1 ~stage:0 ~tuple_id:2;
  Tracer.on_output tr ~rule:"r" ~join_count:1 ~tuple_id:10;
  Tracer.on_precondition tr ~rule:"r" ~join_count:1 ~stage:0 ~tuple_id:3;
  Tracer.on_output tr ~rule:"r" ~join_count:1 ~tuple_id:11;
  Tracer.on_stage_complete tr ~rule:"r" ~join_count:1 ~stage:0;
  let rows = rule_exec_rows tr in
  Alcotest.(check bool) "out 10 from input" true (List.mem ("r", 1, 10, true) rows);
  Alcotest.(check bool) "out 10 from prec 2" true (List.mem ("r", 2, 10, false) rows);
  Alcotest.(check bool) "out 11 from input" true (List.mem ("r", 1, 11, true) rows);
  Alcotest.(check bool) "out 11 from prec 3" true (List.mem ("r", 3, 11, false) rows)

let test_precondition_flush () =
  (* §2.1.1: observing a precondition in the middle of the strand
     flushes filled-in fields to its right *)
  let tr, _ = mk_tracer () in
  Tracer.on_input tr ~rule:"r" ~join_count:2 ~tuple_id:1;
  Tracer.on_precondition tr ~rule:"r" ~join_count:2 ~stage:0 ~tuple_id:2;
  Tracer.on_precondition tr ~rule:"r" ~join_count:2 ~stage:1 ~tuple_id:3;
  Tracer.on_output tr ~rule:"r" ~join_count:2 ~tuple_id:10;
  (* second match of the first join: stage-1 slot must flush *)
  Tracer.on_precondition tr ~rule:"r" ~join_count:2 ~stage:0 ~tuple_id:4;
  Tracer.on_precondition tr ~rule:"r" ~join_count:2 ~stage:1 ~tuple_id:5;
  Tracer.on_output tr ~rule:"r" ~join_count:2 ~tuple_id:11;
  let rows = rule_exec_rows tr in
  Alcotest.(check bool) "out 11 not linked to stale prec 3" false
    (List.mem ("r", 3, 11, false) rows);
  Alcotest.(check bool) "out 11 linked to prec 4" true
    (List.mem ("r", 4, 11, false) rows);
  Alcotest.(check bool) "out 11 linked to prec 5" true
    (List.mem ("r", 5, 11, false) rows)

(* The Figure 3 scenario: two pipelined executions of a two-join rule.
   The first event finished its prec1 lookups and is working through
   prec2 matches while a second event started on prec1. *)
let test_pipelined_figure3 () =
  let tr, _ = mk_tracer () in
  let rule = "r2" and join_count = 2 in
  (* event A enters, fetches from prec1, completes stage 0 *)
  Tracer.on_input tr ~rule ~join_count ~tuple_id:1;
  Tracer.on_precondition tr ~rule ~join_count ~stage:0 ~tuple_id:11;
  Tracer.on_stage_complete tr ~rule ~join_count ~stage:0;
  (* event B enters and occupies stage 0 *)
  Tracer.on_input tr ~rule ~join_count ~tuple_id:2;
  Tracer.on_precondition tr ~rule ~join_count ~stage:0 ~tuple_id:21;
  Alcotest.(check int) "two records in flight" 2 (Tracer.record_count tr rule);
  (* event A proceeds through stage 1 and emits *)
  Tracer.on_precondition tr ~rule ~join_count ~stage:1 ~tuple_id:12;
  Tracer.on_output tr ~rule ~join_count ~tuple_id:100;
  Tracer.on_stage_complete tr ~rule ~join_count ~stage:1;
  (* event B proceeds *)
  Tracer.on_stage_complete tr ~rule ~join_count ~stage:0;
  Tracer.on_precondition tr ~rule ~join_count ~stage:1 ~tuple_id:22;
  Tracer.on_output tr ~rule ~join_count ~tuple_id:200;
  Tracer.on_stage_complete tr ~rule ~join_count ~stage:1;
  let rows = rule_exec_rows tr in
  (* output 100 belongs to event 1 with preconditions 11, 12 *)
  Alcotest.(check bool) "A event link" true (List.mem (rule, 1, 100, true) rows);
  Alcotest.(check bool) "A prec1 link" true (List.mem (rule, 11, 100, false) rows);
  Alcotest.(check bool) "A prec2 link" true (List.mem (rule, 12, 100, false) rows);
  (* output 200 belongs to event 2 with preconditions 21, 22 *)
  Alcotest.(check bool) "B event link" true (List.mem (rule, 2, 200, true) rows);
  Alcotest.(check bool) "B prec1 link" true (List.mem (rule, 21, 200, false) rows);
  Alcotest.(check bool) "B prec2 link" true (List.mem (rule, 22, 200, false) rows);
  (* no cross-contamination *)
  Alcotest.(check bool) "no B->100" false (List.mem (rule, 2, 100, true) rows);
  Alcotest.(check bool) "no 21->100" false (List.mem (rule, 21, 100, false) rows)

let test_record_cap () =
  let config = { Tracer.default_config with max_records_per_rule = 4 } in
  let tr, _ = mk_tracer ~config () in
  (* many inputs that never complete: the record array must not grow
     beyond the cap *)
  for i = 1 to 20 do
    Tracer.on_input tr ~rule:"r" ~join_count:1 ~tuple_id:i
  done;
  Alcotest.(check bool) "bounded records" true (Tracer.record_count tr "r" <= 4)

let test_tuple_table_and_refcount () =
  let tr, now = mk_tracer () in
  let tu id = Tuple.make ~id "x" [ Value.VAddr "n"; Value.VInt id ] in
  Tracer.register_tuple tr (tu 1) ~src:"m" ~src_id:9 ~dst:"n";
  Tracer.register_tuple tr (tu 2) ~src:"n" ~src_id:2 ~dst:"n";
  Alcotest.(check int) "two entries" 2
    (Store.Table.size (Tracer.tuple_table tr) ~now:0.);
  (match Tracer.resolve tr 1 with
  | Some t -> Alcotest.(check string) "contents memoized" "x" (Tuple.name t)
  | None -> Alcotest.fail "expected memoized tuple");
  (* link 1 -> 2 in ruleExec, then let the row expire: both refs drop,
     entries are reclaimed *)
  Tracer.on_input tr ~rule:"r" ~join_count:0 ~tuple_id:1;
  Tracer.on_output tr ~rule:"r" ~join_count:0 ~tuple_id:2;
  Tracer.on_stage_complete tr ~rule:"r" ~join_count:0 ~stage:0;
  Alcotest.(check int) "one ruleExec row" 1
    (Store.Table.size (Tracer.rule_exec_table tr) ~now:!now);
  now := 1000.;
  (* access triggers expiry of ruleExec (lifetime 60) and the refcount
     subscription reclaims the tupleTable entries *)
  Alcotest.(check int) "ruleExec expired" 0
    (Store.Table.size (Tracer.rule_exec_table tr) ~now:!now);
  Alcotest.(check bool) "contents reclaimed" true (Tracer.resolve tr 1 = None);
  Alcotest.(check bool) "contents reclaimed 2" true (Tracer.resolve tr 2 = None)

let test_disabled_tracer_is_free () =
  let tr, _ = mk_tracer () in
  Tracer.disable tr;
  Tracer.on_input tr ~rule:"r" ~join_count:1 ~tuple_id:1;
  Tracer.on_output tr ~rule:"r" ~join_count:1 ~tuple_id:2;
  Tracer.register_tuple tr (Tuple.make ~id:1 "x" [ Value.VAddr "n" ]) ~src:"n"
    ~src_id:1 ~dst:"n";
  Alcotest.(check int) "no rows" 0 (Store.Table.size (Tracer.rule_exec_table tr) ~now:0.);
  Alcotest.(check int) "no tupleTable" 0
    (Store.Table.size (Tracer.tuple_table tr) ~now:0.)

(* Ground truth property: drive the machine on a random program shape
   and compare the tracer's inferred event rows against the machine's
   provenance oracle. *)
let test_ground_truth_matches () =
  let catalog = Store.Catalog.create () in
  Store.Catalog.add catalog (Store.Table.create ~keys:[] "t");
  let now = ref 0. in
  let tr = Tracer.create ~addr:"n" ~now:(fun () -> !now) ~charge:(fun _ -> ()) () in
  Tracer.enable tr;
  let next_id = ref 1000 in
  let ctx =
    {
      Machine.addr = "n";
      now = (fun () -> !now);
      eval_ctx =
        { Eval.now = (fun () -> !now); rand = (fun () -> 0.5);
          rand_id = (fun () -> 1); local_addr = "n" };
      scan =
        (fun name ->
          match Store.Catalog.find catalog name with
          | Some t -> Store.Table.tuples t ~now:!now
          | None -> []);
      probe =
        (fun name ~positions ~values ->
          match Store.Catalog.find catalog name with
          | Some t -> Store.Table.probe t ~now:!now ~positions ~values
          | None -> []);
      create_tuple =
        (fun ~dst name fields ->
          incr next_id;
          let t = Tuple.make ~id:!next_id name fields in
          Tracer.register_tuple tr t ~src:"n" ~src_id:!next_id ~dst;
          t);
      emit = (fun ~delete:_ _ -> ());
      charge = (fun _ -> ());
      rule_executed = (fun () -> ());
      tracer = Some tr;
    }
  in
  let machine = Machine.create ctx in
  Machine.set_record_ground_truth machine true;
  let s =
    match
      Parser.parse "r out@N(X, Y) :- ev@N(X), t@N(Y)."
    with
    | [ Ast.Rule r ] -> (
        match
          Strand.compile ~is_table:(fun n -> n = "t") ~fresh_rule_id:(fun () -> "r") r
        with
        | [ s ] -> s
        | _ -> Alcotest.fail "one strand expected")
    | _ -> Alcotest.fail "parse"
  in
  let table = Store.Catalog.find_exn catalog "t" in
  for i = 1 to 5 do
    incr next_id;
    ignore
      (Store.Table.insert table ~now:!now
         (Tuple.make ~id:!next_id "t" [ Value.VAddr "n"; Value.VInt i ]))
  done;
  (* several sequential triggers *)
  for e = 1 to 4 do
    incr next_id;
    let tuple = Tuple.make ~id:!next_id "ev" [ Value.VAddr "n"; Value.VInt e ] in
    ignore (Machine.trigger machine s tuple);
    Machine.drain machine
  done;
  let truth = Machine.ground_truth machine in
  let inferred =
    Store.Table.tuples (Tracer.rule_exec_table tr) ~now:!now
    |> List.filter_map (fun t ->
           if Value.as_bool (Tuple.field t 7) then
             Some
               ( Value.as_string (Tuple.field t 2),
                 Value.as_int (Tuple.field t 3),
                 Value.as_int (Tuple.field t 4) )
           else None)
  in
  Alcotest.(check int) "same cardinality" (List.length truth) (List.length inferred);
  List.iter
    (fun link ->
      if not (List.mem link inferred) then
        Alcotest.failf "missing inferred link for ground truth")
    truth

let () =
  Alcotest.run "tracer"
    [
      ( "records",
        [
          Alcotest.test_case "sequential" `Quick test_sequential_rows;
          Alcotest.test_case "multi output" `Quick test_multi_output;
          Alcotest.test_case "flush right" `Quick test_precondition_flush;
          Alcotest.test_case "figure 3 pipelined" `Quick test_pipelined_figure3;
          Alcotest.test_case "record cap" `Quick test_record_cap;
        ] );
      ( "tables",
        [
          Alcotest.test_case "tupleTable + refcount" `Quick test_tuple_table_and_refcount;
          Alcotest.test_case "disabled is free" `Quick test_disabled_tracer_is_free;
          Alcotest.test_case "ground truth" `Quick test_ground_truth_matches;
        ] );
    ]
