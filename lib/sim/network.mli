(** Network model: point-to-point messaging with per-channel FIFO
    delivery (required by Chandy–Lamport), configurable latency and
    jitter, and fault injection. *)

type t

type fate = Deliver of float  (** delivery time *) | Drop of string  (** reason *)

val create : ?base_latency:float -> ?jitter:float -> ?loss_rate:float -> Rng.t -> t
val set_latency : t -> base:float -> jitter:float -> unit
val set_loss_rate : t -> float -> unit
val cut_link : t -> src:string -> dst:string -> unit
val heal_link : t -> src:string -> dst:string -> unit
val crash : t -> string -> unit
val recover : t -> string -> unit
val is_crashed : t -> string -> bool

(** Purge all per-node state (FIFO floors, link cuts, crash flag) for a
    retired address. *)
val forget : t -> string -> unit

(** Decide the fate of a message from [src] to [dst] sent at [now].
    Delivery times on one (src, dst) channel are forced monotone. *)
val send : t -> now:float -> src:string -> dst:string -> fate

val tx_count : t -> int
val drop_count : t -> int
