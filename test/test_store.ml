(* Soft-state table semantics: keys, expiry, eviction, subscriptions. *)

open Overlog
open Store

let mk ?lifetime ?max_size ?(keys = []) name = Table.create ?lifetime ?max_size ~keys name

let t3 addr a b = Tuple.make "t" [ Value.VAddr addr; Value.VInt a; Value.VInt b ]

let test_insert_and_read () =
  let tbl = mk "t" in
  Alcotest.(check bool) "added" true (Table.insert tbl ~now:0. (t3 "n" 1 2) = Table.Added);
  Alcotest.(check int) "size" 1 (Table.size tbl ~now:0.);
  Alcotest.(check bool) "mem" true (Table.mem tbl ~now:0. (t3 "n" 1 2))

let test_primary_key_replace () =
  let tbl = mk ~keys:[ 1; 2 ] "t" in
  ignore (Table.insert tbl ~now:0. (t3 "n" 1 10));
  (* same key (n,1), different payload -> replaced *)
  Alcotest.(check bool) "replaced" true
    (Table.insert tbl ~now:1. (t3 "n" 1 20) = Table.Replaced);
  Alcotest.(check int) "still one row" 1 (Table.size tbl ~now:1.);
  (match Table.tuples tbl ~now:1. with
  | [ row ] -> Alcotest.(check bool) "new payload" true (Value.equal (Tuple.field row 3) (Value.VInt 20))
  | _ -> Alcotest.fail "expected one row");
  (* different key -> added *)
  Alcotest.(check bool) "added" true (Table.insert tbl ~now:1. (t3 "n" 2 30) = Table.Added);
  Alcotest.(check int) "two rows" 2 (Table.size tbl ~now:1.)

let test_refresh () =
  let tbl = mk ~lifetime:10. ~keys:[ 1; 2 ] "t" in
  ignore (Table.insert tbl ~now:0. (t3 "n" 1 2));
  (* identical contents: a refresh extending the lifetime *)
  Alcotest.(check bool) "refreshed" true
    (Table.insert tbl ~now:8. (t3 "n" 1 2) = Table.Refreshed);
  Alcotest.(check int) "alive at 15 thanks to refresh" 1 (Table.size tbl ~now:15.);
  Alcotest.(check int) "dead at 19" 0 (Table.size tbl ~now:19.)

let test_expiry () =
  let tbl = mk ~lifetime:5. "t" in
  ignore (Table.insert tbl ~now:0. (t3 "n" 1 2));
  ignore (Table.insert tbl ~now:3. (t3 "n" 3 4));
  Alcotest.(check int) "both alive" 2 (Table.size tbl ~now:4.);
  Alcotest.(check int) "one expired" 1 (Table.size tbl ~now:6.);
  Alcotest.(check int) "all expired" 0 (Table.size tbl ~now:9.)

let test_eviction_fifo () =
  let tbl = mk ~max_size:2 "t" in
  ignore (Table.insert tbl ~now:0. (t3 "n" 1 1));
  ignore (Table.insert tbl ~now:1. (t3 "n" 2 2));
  ignore (Table.insert tbl ~now:2. (t3 "n" 3 3));
  Alcotest.(check int) "capped" 2 (Table.size tbl ~now:2.);
  Alcotest.(check bool) "oldest evicted" false (Table.mem tbl ~now:2. (t3 "n" 1 1));
  Alcotest.(check bool) "newest kept" true (Table.mem tbl ~now:2. (t3 "n" 3 3))

let test_eviction_respects_refresh () =
  let tbl = mk ~max_size:2 ~keys:[ 1; 2 ] "t" in
  ignore (Table.insert tbl ~now:0. (t3 "n" 1 1));
  ignore (Table.insert tbl ~now:1. (t3 "n" 2 2));
  (* refresh row 1 so row 2 becomes the eviction victim *)
  ignore (Table.insert tbl ~now:2. (t3 "n" 1 1));
  ignore (Table.insert tbl ~now:3. (t3 "n" 3 3));
  Alcotest.(check bool) "refreshed row kept" true (Table.mem tbl ~now:3. (t3 "n" 1 1));
  Alcotest.(check bool) "stale row evicted" false (Table.mem tbl ~now:3. (t3 "n" 2 2))

let test_delete () =
  let tbl = mk ~keys:[ 1; 2 ] "t" in
  ignore (Table.insert tbl ~now:0. (t3 "n" 1 1));
  ignore (Table.insert tbl ~now:0. (t3 "n" 2 2));
  Alcotest.(check bool) "deleted" true (Table.delete tbl ~now:0. (t3 "n" 1 1));
  Alcotest.(check bool) "gone" false (Table.delete tbl ~now:0. (t3 "n" 1 1));
  Alcotest.(check int) "one left" 1 (Table.size tbl ~now:0.)

let test_delete_where () =
  let tbl = mk "t" in
  for i = 1 to 5 do
    ignore (Table.insert tbl ~now:0. (t3 "n" i (i * i)))
  done;
  let removed =
    Table.delete_where tbl ~now:0. (fun tu -> Value.as_int (Tuple.field tu 2) mod 2 = 0)
  in
  Alcotest.(check int) "two removed" 2 (List.length removed);
  Alcotest.(check int) "three left" 3 (Table.size tbl ~now:0.)

let test_key_identity_follows_equality () =
  (* VStr and VAddr render differently but are equal: they must share
     a primary-key slot (a real bug once: fact-seeded rows never got
     replaced by runtime rows) *)
  let tbl = mk ~keys:[ 1; 2 ] "t" in
  let row v time =
    Tuple.make "t" [ Value.VAddr "n"; v; Value.VFloat time ]
  in
  ignore (Table.insert tbl ~now:0. (row (Value.VStr "peer1") 0.));
  Alcotest.(check bool) "addr replaces str row" true
    (Table.insert tbl ~now:1. (row (Value.VAddr "peer1") 1.) = Table.Replaced);
  Alcotest.(check int) "single row" 1 (Table.size tbl ~now:1.);
  ignore (Table.insert tbl ~now:2. (Tuple.make "t" [ Value.VAddr "n"; Value.VId 5; Value.VFloat 0. ]));
  Alcotest.(check bool) "int replaces id row" true
    (Table.insert tbl ~now:3. (Tuple.make "t" [ Value.VAddr "n"; Value.VInt 5; Value.VFloat 1. ]) = Table.Replaced)

let test_subscriptions () =
  let tbl = mk ~lifetime:5. ~keys:[ 1; 2 ] "t" in
  let log = ref [] in
  Table.subscribe tbl (function
    | Table.Insert tu -> log := ("ins", Tuple.to_string tu) :: !log
    | Table.Delete tu -> log := ("del", Tuple.to_string tu) :: !log
    | Table.Refresh tu -> log := ("ref", Tuple.to_string tu) :: !log);
  ignore (Table.insert tbl ~now:0. (t3 "n" 1 1));
  ignore (Table.insert tbl ~now:1. (t3 "n" 1 1));  (* refresh *)
  ignore (Table.insert tbl ~now:2. (t3 "n" 1 9));  (* replace -> insert *)
  ignore (Table.delete tbl ~now:3. (t3 "n" 1 9));
  let kinds = List.rev_map fst !log in
  Alcotest.(check (list string)) "delta kinds" [ "ins"; "ref"; "ins"; "del" ] kinds

let test_expiry_notifies () =
  let tbl = mk ~lifetime:2. "t" in
  let deletes = ref 0 in
  Table.subscribe tbl (function Table.Delete _ -> incr deletes | _ -> ());
  ignore (Table.insert tbl ~now:0. (t3 "n" 1 1));
  ignore (Table.size tbl ~now:5.);
  Alcotest.(check int) "expiry delta" 1 !deletes

let test_subscriber_order () =
  let tbl = mk "t" in
  let order = ref [] in
  Table.subscribe tbl (fun _ -> order := 1 :: !order);
  Table.subscribe tbl (fun _ -> order := 2 :: !order);
  ignore (Table.insert tbl ~now:0. (t3 "n" 1 1));
  Alcotest.(check (list int)) "install order" [ 1; 2 ] (List.rev !order)

let test_stats_and_bytes () =
  let tbl = mk ~lifetime:5. ~max_size:2 "t" in
  ignore (Table.insert tbl ~now:0. (t3 "n" 1 1));
  ignore (Table.insert tbl ~now:0. (t3 "n" 2 2));
  ignore (Table.insert tbl ~now:0. (t3 "n" 3 3));
  let s = Table.stats tbl ~now:0. in
  Alcotest.(check int) "live" 2 s.live;
  Alcotest.(check int) "inserts" 3 s.inserts;
  Alcotest.(check int) "evictions" 1 s.evictions;
  Alcotest.(check bool) "bytes positive" true (Table.bytes tbl ~now:0. > 0)

let test_of_materialize () =
  let m =
    { Ast.mname = "x"; mlifetime = 9.; msize = Some 4; mkeys = [ 1 ]; mline = 0 }
  in
  let tbl = Table.of_materialize m in
  Alcotest.(check string) "name" "x" (Table.name tbl);
  Alcotest.(check (list int)) "keys" [ 1 ] (Table.keys tbl)

let test_catalog () =
  let c = Catalog.create () in
  Catalog.add c (mk "a");
  Catalog.add c (mk "b");
  Alcotest.(check bool) "is_table" true (Catalog.is_table c "a");
  Alcotest.(check bool) "missing" false (Catalog.is_table c "z");
  Alcotest.(check (list string)) "names sorted" [ "a"; "b" ] (Catalog.names c);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Catalog.add: table a already materialized") (fun () ->
      Catalog.add c (mk "a"));
  ignore (Table.insert (Catalog.find_exn c "a") ~now:0. (t3 "n" 1 1));
  Alcotest.(check int) "total live" 1 (Catalog.total_live c ~now:0.)

(* Property: a table never exceeds its capacity, whatever the
   insertion sequence. *)
let prop_capacity =
  QCheck.Test.make ~name:"capacity bound" ~count:200
    QCheck.(list (pair small_nat small_nat))
    (fun ops ->
      let tbl = mk ~max_size:5 ~keys:[ 1; 2 ] "t" in
      List.iteri (fun i (a, b) -> ignore (Table.insert tbl ~now:(float_of_int i) (t3 "n" a b))) ops;
      Table.size tbl ~now:1e6 <= 5 || true |> fun _ ->
      Table.size tbl ~now:0. <= 5)

(* Property: after expiry time passes with no refresh, table is empty. *)
let prop_expiry_total =
  QCheck.Test.make ~name:"total expiry" ~count:100
    QCheck.(list small_nat)
    (fun xs ->
      let tbl = mk ~lifetime:1. "t" in
      List.iter (fun x -> ignore (Table.insert tbl ~now:0. (t3 "n" x x))) xs;
      Table.size tbl ~now:10. = 0)

let () =
  Alcotest.run "store"
    [
      ( "table",
        [
          Alcotest.test_case "insert/read" `Quick test_insert_and_read;
          Alcotest.test_case "primary key" `Quick test_primary_key_replace;
          Alcotest.test_case "refresh" `Quick test_refresh;
          Alcotest.test_case "expiry" `Quick test_expiry;
          Alcotest.test_case "eviction" `Quick test_eviction_fifo;
          Alcotest.test_case "eviction vs refresh" `Quick test_eviction_respects_refresh;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "delete_where" `Quick test_delete_where;
          Alcotest.test_case "key identity" `Quick test_key_identity_follows_equality;
          Alcotest.test_case "subscriptions" `Quick test_subscriptions;
          Alcotest.test_case "expiry notifies" `Quick test_expiry_notifies;
          Alcotest.test_case "subscriber order" `Quick test_subscriber_order;
          Alcotest.test_case "stats" `Quick test_stats_and_bytes;
          Alcotest.test_case "of_materialize" `Quick test_of_materialize;
          QCheck_alcotest.to_alcotest prop_capacity;
          QCheck_alcotest.to_alcotest prop_expiry_total;
        ] );
      ("catalog", [ Alcotest.test_case "catalog" `Quick test_catalog ]);
    ]
