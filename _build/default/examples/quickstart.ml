(* Quickstart: the paper's §2 "all routes" example.

   A distributed path-vector computation is four lines of OverLog: a
   link table, a path table, a one-hop base case and a recursive rule
   that extends paths over the network. Run it on a simulated 5-node
   topology and watch the routing tables fill in.

     dune exec examples/quickstart.exe
*)

let program =
  {|
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).

/* one-hop paths: a link from A to B gives B a path back to A */
p1 path@B(C, P, W) :- link@A(B, W0), C := A, P := [B, A], W := W0.

/* recursion: extend any of A's paths over a link from A to B */
p2 path@B(C, P2, W2) :- link@A(B, W), path@A(C, P, Y), P2 := [B] + P,
   W2 := W + Y.
|}

(* A small directed topology (edges point "towards" the new holder of
   the path, as in the paper's rule):

     n1 -> n2 -> n3 -> n5
            \-> n4 ->/           *)
let topology =
  {|
link@n1(n2, 1).
link@n2(n3, 2).
link@n2(n4, 1).
link@n3(n5, 1).
link@n4(n5, 5).
|}

let () =
  let engine = P2_runtime.Engine.create ~seed:42 ~trace:true () in
  let addrs = [ "n1"; "n2"; "n3"; "n4"; "n5" ] in
  List.iter (fun a -> ignore (P2_runtime.Engine.add_node engine a)) addrs;
  P2_runtime.Engine.install_all engine program;
  P2_runtime.Engine.install engine "n1" topology;
  P2_runtime.Engine.run_for engine 5.0;

  Fmt.pr "=== routing tables after 5 simulated seconds ===@.";
  List.iter
    (fun addr ->
      let node = P2_runtime.Engine.node engine addr in
      let table = Store.Catalog.find_exn (P2_runtime.Node.catalog node) "path" in
      let paths = Store.Table.tuples table ~now:(P2_runtime.Engine.now engine) in
      Fmt.pr "@.%s knows %d path(s):@." addr (List.length paths);
      List.iter
        (fun t ->
          Fmt.pr "  to %a  via %a  cost %a@." Overlog.Value.pp
            (Overlog.Tuple.field t 2) Overlog.Value.pp (Overlog.Tuple.field t 3)
            Overlog.Value.pp (Overlog.Tuple.field t 4))
        paths)
    addrs;

  (* Because the engine traces execution, the derivation of any path is
     already queryable: ruleExec rows link each path tuple to the rule
     and input that produced it. *)
  let n5 = P2_runtime.Engine.node engine "n5" in
  let rule_exec = Dataflow.Tracer.rule_exec_table (P2_runtime.Node.tracer n5) in
  Fmt.pr "@.=== n5's ruleExec (how its paths came to be) ===@.";
  List.iter
    (fun t -> Fmt.pr "  %a@." Overlog.Tuple.pp t)
    (Store.Table.tuples rule_exec ~now:(P2_runtime.Engine.now engine))
