(** Invariant oracles for fault-injection campaigns.

    The oracle runs {e outside} the OverLog engine and cross-checks it:

    - {b Ring well-formedness}: the best-successor walk from the
      landmark must visit every live node exactly once in ring-ID order
      (computed directly from the node tables, not from monitor
      output).
    - {b Successor ordering}: each live node's best successor must be
      the closest live node clockwise; and pointer symmetry must hold
      (my successor's predecessor is me — what the paper's §3.1.1
      probes check).
    - {b Lookup consistency}: probe lookups issued from the landmark
      are validated against the omniscient route
      ({!Chord.true_successor} over the live membership).
    - {b Monitor agreement}: the §3.1.1 OverLog ring monitors must
      raise alarms exactly when the oracle observes a violation, modulo
      a convergence [grace] window — alarms while the oracle saw a
      healthy ring throughout [±grace] are {e false alarms}; oracle-bad
      intervals longer than [miss_window] with no alarm anywhere near
      are {e missed detections}.

    A transiently broken ring (after a crash or during a join) is not a
    failure: only streaks of unhealthy checks longer than [heal_window]
    violate the "re-converges" invariant. *)

type config = {
  check_interval : float;  (** global invariant sampling period *)
  probe_interval : float;  (** lookup-consistency probe period *)
  grace : float;  (** convergence slack for monitor agreement *)
  heal_window : float;  (** max tolerated unhealthy streak *)
  miss_window : float;  (** oracle-bad span that must produce an alarm *)
  t_probe : float;  (** period of the §3.1.1 active monitor probes *)
  min_answer_rate : float;
      (** eventual delivery: minimum fraction of probe lookups that
          must come back answered (checked once ≥ 5 were issued) —
          under a loss sweep this is what the reliable transport
          earns *)
}

val default_config : config

type violation = { time : float; kind : string; detail : string }

val pp_violation : violation Fmt.t

type stats = {
  checks : int;
  unhealthy_checks : int;
  alarms : int;
  probes_issued : int;
  probes_answered : int;
  probes_wrong : int;
}

type t

(** Install the oracle on a settled ring: the §3.1.1 active ring
    monitor goes onto every node, and self-rescheduling check / probe
    callbacks start immediately. [get_net] must reflect churn (the
    campaign updates it on join / leave). [seed] derives the probe-key
    stream. *)
val install :
  P2_runtime.Engine.t -> get_net:(unit -> Chord.network) -> seed:int -> config -> t

(** Tell the oracle a node joined: installs the monitor program and
    alarm watches there. *)
val on_join : t -> string -> unit

(** Close the books: streak analysis, monitor-agreement analysis, and
    the accumulated probe verdicts. Call once, after the run. *)
val finalize : t -> violation list * stats
