test/test_runtime.ml: Alcotest Dataflow List Overlog P2_runtime Store Tuple Value
