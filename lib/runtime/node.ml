(** One P2 node: tables, compiled strands, tracer, metrics, and the
    planner that installs OverLog programs — including on-line, while
    the node runs (the paper's "deploy piecemeal at any point in the
    life cycle").

    The node is transport-agnostic: the engine injects [send] and
    [now] closures and drives delivery. *)

open Overlog

type timer_request = { strand : Dataflow.Strand.t; period : float }

type peer_stats = {
  mutable tx_msgs : int;
  mutable tx_bytes : int;
  mutable rx_msgs : int;
  mutable rx_bytes : int;
}

type t = {
  addr : string;
  catalog : Store.Catalog.t;
  metrics : Sim.Metrics.t;
  registry : Metrics.t;
  peers : (string, peer_stats) Hashtbl.t;
  rng : Sim.Rng.t;
  tracer : Dataflow.Tracer.t;
  mutable machine : Dataflow.Machine.t;
  event_strands : (string, Dataflow.Strand.t list ref) Hashtbl.t;
  delta_strands : (string, Dataflow.Strand.t list ref) Hashtbl.t;
  watches : (string, (Tuple.t -> unit) list ref) Hashtbl.t;
  mutable next_tuple_id : int;
  clock : (unit -> float) ref;
  mutable now : unit -> float;
  mutable send : dst:string -> delete:bool -> src_tuple:Tuple.t -> unit;
  mutable on_timer_request : timer_request -> unit;
  mutable rules_installed : int;
  mutable rule_texts : (string * string) list;  (* (rule id, source), newest first *)
  mutable anon_rule_counter : int;
  mutable dead_events : int;
  mutable delivering : int;  (* re-entrancy depth, to defer drains *)
  mutable strict_install : bool;
      (* reject programs with analysis errors instead of logging them *)
  mutable last_diagnostics : Analysis.diagnostic list;
      (* what the analyzer said about the most recent install *)
  mutable trace_log : Seglog.writer option;
      (* flight-recorder spill target; the tracer sink feeds it *)
}

let system_tables = [ "ruleExec"; "tupleTable" ]

(* Tables populated by the runtime's own metric reflection. They are
   exempt from tracer registration: reflecting hundreds of p2Stats
   rows per tick into the tupleTable would make the measurement
   instrument dominate what it measures. *)
let reflected_tables = [ "p2Stats"; "p2TableStats"; "p2NetStats"; "p2PeerStatus" ]

let log_src = Logs.Src.create "p2.analysis" ~doc:"OverLog install-time analysis"

module Log = (val Logs.src_log log_src)

let fresh_tuple_id t =
  let id = t.next_tuple_id in
  t.next_tuple_id <- id + 1;
  id

let addr t = t.addr
let catalog t = t.catalog
let metrics t = t.metrics
let registry t = t.registry
let tracer t = t.tracer

let peer t addr =
  match Hashtbl.find_opt t.peers addr with
  | Some p -> p
  | None ->
      let p = { tx_msgs = 0; tx_bytes = 0; rx_msgs = 0; rx_bytes = 0 } in
      Hashtbl.replace t.peers addr p;
      p

let peers t =
  Hashtbl.fold (fun a p acc -> (a, p) :: acc) t.peers []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
let dead_events t = t.dead_events
let rules_installed t = t.rules_installed

let eval_context t =
  {
    Eval.now = (fun () -> t.now ());
    rand = (fun () -> Sim.Rng.float t.rng);
    rand_id = (fun () -> Sim.Rng.int t.rng Value.Ring.space);
    local_addr = t.addr;
  }

let scan t name =
  match Store.Catalog.find t.catalog name with
  | Some table -> Store.Table.tuples table ~now:(t.now ())
  | None -> (
      (* The tracer's introspection tables are queryable like any
         other (paper §2.1). *)
      match name with
      | "ruleExec" ->
          Store.Table.tuples (Dataflow.Tracer.rule_exec_table t.tracer) ~now:(t.now ())
      | "tupleTable" ->
          Store.Table.tuples (Dataflow.Tracer.tuple_table t.tracer) ~now:(t.now ())
      | _ -> [])

(* Indexed access path for join stages with bound argument positions.
   The tracer's introspection tables and unknown predicates fall back
   to the plain scan — the machine re-verifies candidates, so a
   superset is always safe. *)
let probe t name ~positions ~values =
  match Store.Catalog.find t.catalog name with
  | Some table -> Store.Table.probe table ~now:(t.now ()) ~positions ~values
  | None -> scan t name

let is_table t name =
  Store.Catalog.is_table t.catalog name || List.mem name system_tables

(* Register a freshly minted local tuple with the tracer. *)
let create_tuple t ~dst name fields =
  let id = fresh_tuple_id t in
  let tuple = Tuple.make ~id name fields in
  Sim.Metrics.tuple_created t.metrics;
  if not (List.mem name system_tables || List.mem name reflected_tables) then
    Dataflow.Tracer.register_tuple t.tracer tuple ~src:t.addr ~src_id:id ~dst;
  tuple

let strand_list tbl name =
  match Hashtbl.find_opt tbl name with
  | Some l -> !l
  | None -> []

let add_strand tbl name strand =
  match Hashtbl.find_opt tbl name with
  | Some l -> l := !l @ [ strand ]
  | None -> Hashtbl.replace tbl name (ref [ strand ])

(* Deliver a tuple that has materialized locally: notify watches, then
   either insert it (materialized predicate — delta strands fire via
   the table subscription) or hand it to event strands. *)
let rec deliver t tuple =
  t.delivering <- t.delivering + 1;
  Fun.protect
    ~finally:(fun () ->
      t.delivering <- t.delivering - 1;
      if t.delivering = 0 then Dataflow.Machine.drain t.machine)
    (fun () ->
      let name = Tuple.name tuple in
      (match Hashtbl.find_opt t.watches name with
      | Some fs -> List.iter (fun f -> f tuple) !fs
      | None -> ());
      match Store.Catalog.find t.catalog name with
      | Some table ->
          Sim.Metrics.charge t.metrics Sim.Metrics.Cost.table_insert;
          let _ = Store.Table.insert table ~now:(t.now ()) tuple in
          ()
      | None ->
          let strands = strand_list t.event_strands name in
          if strands = [] && not (Hashtbl.mem t.watches name) then
            t.dead_events <- t.dead_events + 1
          else
            List.iter
              (fun s -> ignore (Dataflow.Machine.trigger t.machine s tuple))
              strands)

and emit t ~delete tuple =
  let dst = Tuple.location tuple in
  if String.equal dst t.addr then
    if delete then apply_delete t tuple else deliver t tuple
  else begin
    let bytes = Wire.size ~delete tuple in
    Sim.Metrics.message_tx t.metrics ~bytes;
    let p = peer t dst in
    p.tx_msgs <- p.tx_msgs + 1;
    p.tx_bytes <- p.tx_bytes + bytes;
    t.send ~dst ~delete ~src_tuple:tuple
  end

(* Delete-head semantics: fields bound in the pattern must match; VNull
   fields are wildcards (cs10 binds only some head variables). *)
and apply_delete t pattern =
  match Store.Catalog.find t.catalog (Tuple.name pattern) with
  | None -> ()
  | Some table ->
      let matches candidate =
        Tuple.arity candidate = Tuple.arity pattern
        && List.for_all2
             (fun p c -> p = Value.VNull || Value.equal p c)
             (Tuple.fields pattern) (Tuple.fields candidate)
      in
      let _ = Store.Table.delete_where table ~now:(t.now ()) matches in
      ()

(* A tuple arrived from the network: mint a local id, record the
   cross-node link in the tupleTable (paper §2.1.3), and deliver.
   [bytes] is the wire-frame size when the transport knows it. *)
let receive t ?(bytes = 0) ~src ~src_tuple_id ~delete ~name ~fields () =
  Sim.Metrics.message_rx ~bytes t.metrics;
  let p = peer t src in
  p.rx_msgs <- p.rx_msgs + 1;
  p.rx_bytes <- p.rx_bytes + bytes;
  let id = fresh_tuple_id t in
  let tuple = Tuple.make ~id name fields in
  Sim.Metrics.tuple_created t.metrics;
  if not (List.mem name system_tables || List.mem name reflected_tables) then
    Dataflow.Tracer.register_tuple t.tracer tuple ~src ~src_id:src_tuple_id ~dst:t.addr;
  if delete then apply_delete t tuple else deliver t tuple

let dummy_machine addr =
  Dataflow.Machine.create
    {
      Dataflow.Machine.addr;
      now = (fun () -> 0.);
      eval_ctx = Eval.null_context;
      scan = (fun _ -> []);
      probe = (fun _ ~positions:_ ~values:_ -> []);
      create_tuple = (fun ~dst:_ name fields -> Tuple.make name fields);
      emit = (fun ~delete:_ _ -> ());
      charge = (fun _ -> ());
      rule_executed = (fun () -> ());
      tracer = None;
    }

(* Publish every runtime counter under a stable dotted name. Gauges
   close over [t] so they always read the node's current machine and
   tracer; the store gauges use the side-effect-free [Table] counter
   accessors so sampling never triggers expiry sweeps. The full name
   catalog is documented in docs/OPERATIONS.md, and a test pins the
   two in sync. *)
let register_metrics t =
  let reg = t.registry in
  let counter name f = Metrics.register reg name Metrics.KCounter f in
  let gauge name f = Metrics.register reg name Metrics.KGauge f in
  (* machine: agenda and strand execution *)
  let ms () = Dataflow.Machine.stats t.machine in
  counter "machine.triggers" (fun () ->
      float_of_int (Metrics.Counter.value (ms ()).triggers));
  counter "machine.naive_refires" (fun () ->
      float_of_int (Metrics.Counter.value (ms ()).naive_refires));
  counter "machine.agenda.executed" (fun () ->
      float_of_int (Metrics.Counter.value (ms ()).executed));
  counter "machine.agenda.enqueued" (fun () ->
      float_of_int (Metrics.Counter.value (ms ()).enqueued));
  gauge "machine.agenda.depth" (fun () ->
      float_of_int (Dataflow.Machine.agenda_depth t.machine));
  gauge "machine.agenda.depth_max" (fun () ->
      float_of_int (Dataflow.Machine.agenda_depth_max t.machine));
  counter "machine.drains" (fun () ->
      float_of_int (Metrics.Counter.value (ms ()).drains));
  Metrics.attach_histogram reg "machine.drain_items"
    (Dataflow.Machine.stats t.machine).drain_items;
  Metrics.attach_histogram reg "machine.drain_work_us"
    (Dataflow.Machine.stats t.machine).drain_work_us;
  (* node: planner and lifecycle counters *)
  counter "node.rules_installed" (fun () -> float_of_int t.rules_installed);
  counter "node.dead_events" (fun () -> float_of_int t.dead_events);
  counter "node.tuples_created" (fun () ->
      float_of_int (Sim.Metrics.tuples_created t.metrics));
  counter "node.rule_executions" (fun () ->
      float_of_int (Sim.Metrics.rule_executions t.metrics));
  counter "node.work_units" (fun () -> Sim.Metrics.work t.metrics);
  (* net: node-wide traffic (per-peer detail goes to p2NetStats) *)
  counter "net.msgs_tx" (fun () -> float_of_int (Sim.Metrics.messages_tx t.metrics));
  counter "net.msgs_rx" (fun () -> float_of_int (Sim.Metrics.messages_rx t.metrics));
  counter "net.bytes_tx" (fun () -> float_of_int (Sim.Metrics.bytes_tx t.metrics));
  counter "net.bytes_rx" (fun () -> float_of_int (Sim.Metrics.bytes_rx t.metrics));
  (* store: catalog-wide census; live counts go through the normal
     expiry-aware reads only inside [live_tuples] (the Sample event),
     so these gauges stay cheap and side-effect-free *)
  gauge "store.tables" (fun () ->
      float_of_int (List.length (Store.Catalog.names t.catalog)));
  let sum_over_tables count =
    (* Reflection tables are excluded so the instrument does not count
       its own inserts and inflate what it reports. *)
    List.fold_left
      (fun acc n ->
        if List.mem n reflected_tables then acc
        else acc + count (Store.Catalog.find_exn t.catalog n))
      0
      (Store.Catalog.names t.catalog)
  in
  counter "store.inserts" (fun () ->
      float_of_int (sum_over_tables Store.Table.insert_count));
  counter "store.probes" (fun () ->
      float_of_int (sum_over_tables Store.Table.probe_count));
  (* tracer: execution-logging overhead *)
  let ts = Dataflow.Tracer.stats t.tracer in
  gauge "tracer.enabled" (fun () ->
      if Dataflow.Tracer.enabled t.tracer then 1. else 0.);
  Metrics.attach_counter reg "tracer.taps" ts.taps;
  Metrics.attach_counter reg "tracer.rule_exec_rows" ts.rule_exec_rows;
  Metrics.attach_counter reg "tracer.tuples_registered" ts.tuples_registered;
  (* trace.log: flight-recorder spill. Registered unconditionally (the
     documentation contract covers every node) and reading 0 until a
     segment-log writer is attached. *)
  let wstat f () =
    match t.trace_log with
    | Some w -> float_of_int (f (Seglog.stats w))
    | None -> 0.
  in
  counter "trace.log.segments" (wstat (fun s -> s.Seglog.segments_sealed));
  counter "trace.log.records" (wstat (fun s -> s.Seglog.records_written));
  counter "trace.log.bytes" (wstat (fun s -> s.Seglog.bytes_written));
  counter "trace.log.flush_ns" (wstat (fun s -> s.Seglog.flush_ns));
  counter "trace.log.retention_drops" (wstat (fun s -> s.Seglog.retention_drops))

let create ~addr ~rng ?(trace = false) ?tracer_config () =
  let metrics = Sim.Metrics.create () in
  (* The clock closure is redirected by the engine via [set_now]; the
     tracer reads it through the node record so it always sees the
     current clock. *)
  let clock = ref (fun () -> 0.) in
  (* Node-local time = simulation clock + accumulated work (work units
     are notional microseconds). This gives rule executions a nonzero,
     deterministic duration, so the §3.2 profiler sees realistic
     in-rule vs. network time splits. *)
  let local_now () = !clock () +. (Sim.Metrics.work metrics *. 1e-6) in
  let tracer =
    Dataflow.Tracer.create ?config:tracer_config ~addr ~now:local_now
      ~charge:(fun c -> Sim.Metrics.charge metrics c)
      ()
  in
  let t =
    {
      addr;
      catalog = Store.Catalog.create ();
      metrics;
      registry = Metrics.create ();
      peers = Hashtbl.create 8;
      rng;
      tracer;
      machine = dummy_machine addr;
      event_strands = Hashtbl.create 16;
      delta_strands = Hashtbl.create 16;
      watches = Hashtbl.create 8;
      next_tuple_id = 1;
      clock;
      now = local_now;
      send = (fun ~dst:_ ~delete:_ ~src_tuple:_ -> ());
      on_timer_request = (fun _ -> ());
      rules_installed = 0;
      rule_texts = [];
      anon_rule_counter = 0;
      dead_events = 0;
      delivering = 0;
      strict_install = false;
      last_diagnostics = [];
      trace_log = None;
    }
  in
  let ctx =
    {
      Dataflow.Machine.addr;
      now = (fun () -> t.now ());
      eval_ctx = eval_context t;
      scan = (fun name -> scan t name);
      probe = (fun name ~positions ~values -> probe t name ~positions ~values);
      create_tuple = (fun ~dst name fields -> create_tuple t ~dst name fields);
      emit = (fun ~delete tuple -> emit t ~delete tuple);
      charge = (fun c -> Sim.Metrics.charge t.metrics c);
      rule_executed = (fun () -> Sim.Metrics.rule_executed t.metrics);
      tracer = Some t.tracer;
    }
  in
  t.machine <- Dataflow.Machine.create ctx;
  if trace then Dataflow.Tracer.enable t.tracer;
  register_metrics t;
  t

(* The tracer captured the clock ref at construction, so updating it
   here keeps node and tracer time in sync. *)
let set_now t now = t.clock := now

(** Attach (or detach) the flight-recorder writer: the tracer sink
    streams every trace record into it. The sink only buffers; disk
    writes happen in [flush_trace_log], which the engine calls at
    tick barriers. *)
let set_trace_log t w =
  t.trace_log <- w;
  Dataflow.Tracer.set_sink t.tracer
    (Option.map
       (fun writer ~stamp ~delete tuple ->
         Seglog.append writer ~stamp ~delete tuple)
       w)

let trace_log t = t.trace_log

let flush_trace_log t =
  match t.trace_log with Some w -> Seglog.flush w | None -> ()
let set_send t send = t.send <- send
let set_timer_handler t f = t.on_timer_request <- f
let machine t = t.machine

let watch t name f =
  match Hashtbl.find_opt t.watches name with
  | Some fs -> fs := f :: !fs
  | None -> Hashtbl.replace t.watches name (ref [ f ])

let fresh_rule_id t () =
  t.anon_rule_counter <- t.anon_rule_counter + 1;
  Fmt.str "%s_r%d" t.addr t.anon_rule_counter

(* Install a strand: index it by trigger, subscribe to table deltas,
   request timers. *)
let install_strand t (s : Dataflow.Strand.t) =
  match s.trigger with
  | Dataflow.Strand.Event atom -> add_strand t.event_strands atom.pred s
  | Dataflow.Strand.Periodic { period; _ } -> t.on_timer_request { strand = s; period }
  | Dataflow.Strand.Table_delta atom -> (
      add_strand t.delta_strands atom.pred s;
      let table =
        match Store.Catalog.find t.catalog atom.pred with
        | Some table -> Some table
        | None -> (
            match atom.pred with
            | "ruleExec" -> Some (Dataflow.Tracer.rule_exec_table t.tracer)
            | "tupleTable" -> Some (Dataflow.Tracer.tuple_table t.tracer)
            | _ -> None)
      in
      match table with
      | None ->
          raise
            (Dataflow.Strand.Compile_error
               (Fmt.str "delta strand over unknown table %s" atom.pred))
      | Some table ->
          let is_agg = s.aggregate <> None in
          Store.Table.subscribe table (function
            | Store.Table.Insert tuple ->
                ignore (Dataflow.Machine.trigger t.machine s tuple)
            | Store.Table.Delete tuple when is_agg ->
                (* Aggregates must recompute when rows expire or are
                   deleted so counts go back down. *)
                ignore (Dataflow.Machine.trigger t.machine s tuple)
            | Store.Table.Delete _ | Store.Table.Refresh _ -> ()))

(* The analyzer's view of this node: tables already in the catalog
   (earlier piecemeal installs, paper §3) plus the tracer's
   introspection tables; events any installed strand consumes. *)
let analysis_env t =
  {
    Analysis.ext_tables =
      List.map (fun n -> (n, None)) (Store.Catalog.names t.catalog @ system_tables);
    ext_events =
      Hashtbl.fold (fun name _ acc -> (name, None) :: acc) t.event_strands [];
  }

(** Install a parsed program. The semantic analyzer runs first: under
    [set_strict_install] any error-level diagnostic rejects the whole
    program ({!Analysis.Rejected}); otherwise errors are logged and
    installation proceeds (the strand compiler still enforces its own
    invariants). Materializations are processed before rules so rules
    later in the same batch see their tables. Facts are routed like any
    derived tuple (remote facts are shipped). *)
let install t (program : Ast.program) =
  let diags = Analysis.analyze ~env:(analysis_env t) program in
  t.last_diagnostics <- diags;
  (match Analysis.errors diags with
  | [] -> ()
  | errs ->
      if t.strict_install then raise (Analysis.Rejected diags)
      else
        List.iter
          (fun d ->
            Log.warn (fun m -> m "%s: %a" t.addr (fun ppf -> Analysis.pp_diagnostic ppf) d))
          errs);
  let materializes, rest =
    List.partition (function Ast.Materialize _ -> true | _ -> false) program
  in
  List.iter
    (function
      | Ast.Materialize m ->
          if not (Store.Catalog.is_table t.catalog m.mname) then
            Store.Catalog.add t.catalog (Store.Table.of_materialize m)
      | _ -> ())
    materializes;
  List.iter
    (function
      | Ast.Materialize _ -> ()
      | Ast.Watch _ -> ()  (* watches are host-side: use [watch] *)
      | Ast.Pragma _ -> ()  (* analyzer directive, no runtime effect *)
      | Ast.Fact (name, values, _) ->
          let dst =
            match values with
            | loc :: _ -> ( try Value.as_addr loc with Invalid_argument _ -> t.addr)
            | [] -> t.addr
          in
          let values =
            match values with
            | Value.VStr a :: rest -> Value.VAddr a :: rest
            | vs -> vs
          in
          let tuple = create_tuple t ~dst name values in
          emit t ~delete:false tuple
      | Ast.Rule rule ->
          let strands =
            Dataflow.Strand.compile ~is_table:(is_table t) ~fresh_rule_id:(fresh_rule_id t)
              rule
          in
          List.iter (install_strand t) strands;
          (match strands with
          | s :: _ ->
              t.rule_texts <-
                (s.Dataflow.Strand.rule_id, Fmt.str "%a" Ast.pp_rule rule)
                :: t.rule_texts
          | [] -> ());
          t.rules_installed <- t.rules_installed + 1)
    rest

let install_text t source = install t (Parser.parse source)
let set_strict_install t b = t.strict_install <- b
let strict_install t = t.strict_install
let last_diagnostics t = t.last_diagnostics

(* Fire a periodic strand: construct the built-in periodic(addr, nonce,
   period) event and trigger just that strand. *)
let fire_periodic t (req : timer_request) =
  Sim.Metrics.charge t.metrics Sim.Metrics.Cost.timer;
  let nonce = Value.VInt (Sim.Rng.int t.rng 1_000_000_000) in
  let atom = Dataflow.Strand.trigger_atom req.strand in
  (* Arity must match the atom: periodic@N(E, T) or periodic@N(E, T, C). *)
  let extra = max 0 (List.length atom.args - 3) in
  let fields =
    Value.VAddr t.addr :: nonce :: Value.VFloat req.period
    :: List.init extra (fun _ -> Value.VNull)
  in
  let tuple = create_tuple t ~dst:t.addr "periodic" fields in
  ignore (Dataflow.Machine.trigger t.machine req.strand tuple);
  Dataflow.Machine.drain t.machine

(* Total soft state on this node, for the memory proxy. *)
let live_tuples t =
  let now = t.now () in
  Store.Catalog.total_live t.catalog ~now + Dataflow.Tracer.live_tuples t.tracer ~now

let live_bytes t =
  let now = t.now () in
  Store.Catalog.total_bytes t.catalog ~now + Dataflow.Tracer.live_bytes t.tracer ~now


(** The node-local clock (simulation time + work offset); timestamps
    recorded by this node's tracer are on this clock. *)
let local_time t = t.now ()

(** Installed rules as (rule id, pretty-printed source), oldest first —
    the data behind the [sysRule] introspection table. *)
let rules t = List.rev t.rule_texts
