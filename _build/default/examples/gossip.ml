(* Epidemic dissemination (generality demo): the same runtime, language
   and monitoring machinery running a completely different overlay — a
   self-monitoring rumor-mongering broadcast.

     dune exec examples/gossip.exe
*)

let () =
  let engine = P2_runtime.Engine.create ~seed:2024 ~loss_rate:0.1 () in
  Fmt.pr "Booting a 24-node epidemic overlay (10%% message loss)...@.";
  let net = Epidemic.boot ~degree:3 engine 24 in
  let origin = List.hd net.addrs in

  (* the overlay monitors its own coverage through rule e7 *)
  P2_runtime.Engine.watch engine origin "lowCoverage" (fun t ->
      Fmt.pr "[%.1f] lowCoverage alarm: %a@." (P2_runtime.Engine.now engine)
        Overlog.Tuple.pp t);

  Fmt.pr "@.publishing item 1 at %s...@." origin;
  let t0 = P2_runtime.Engine.now engine in
  Epidemic.publish net ~addr:origin ~item_id:1 ~payload:"rumor";
  P2_runtime.Engine.run_for engine 40.;

  let times = Epidemic.receipt_times net ~item_id:1 in
  Fmt.pr "infected %d/%d nodes@." (List.length times) (List.length net.addrs);
  (match Epidemic.coverage net ~origin ~item_id:1 with
  | Some c -> Fmt.pr "origin's ack-based coverage: %d@." c
  | None -> Fmt.pr "no coverage recorded@.");
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) times in
  Fmt.pr "@.dissemination wave (receipt latency per node):@.";
  List.iter (fun (addr, t) -> Fmt.pr "  %-5s +%5.2fs@." addr (t -. t0)) sorted;

  (* now partition a third of the population and publish again: the
     built-in watchpoint reports the lagging item *)
  Fmt.pr "@.crashing 8 nodes and publishing item 2...@.";
  List.iteri
    (fun i addr -> if i >= 16 then P2_runtime.Engine.crash engine addr)
    net.addrs;
  Epidemic.publish net ~addr:origin ~item_id:2 ~payload:"partial";
  P2_runtime.Engine.run_for engine 60.;
  match Epidemic.coverage net ~origin ~item_id:2 with
  | Some c -> Fmt.pr "item 2 coverage stalled at %d/%d@." c (List.length net.addrs - 1)
  | None -> Fmt.pr "item 2: no acks at all@."
