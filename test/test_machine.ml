(* Strand execution: joins, selections, assignments, aggregates,
   multi-match fan-out, scheduling modes. Uses a standalone harness
   with in-memory tables (no network, no node). *)

open Overlog
open Dataflow

type harness = {
  machine : Machine.t;
  catalog : Store.Catalog.t;
  emitted : (bool * Tuple.t) list ref;  (* (delete, tuple), newest first *)
  mutable next_id : int;
}

let make_harness ?(tables = []) ?mode () =
  let catalog = Store.Catalog.create () in
  List.iter
    (fun (name, keys) -> Store.Catalog.add catalog (Store.Table.create ~keys name))
    tables;
  let emitted = ref [] in
  let h_ref = ref None in
  let ctx =
    {
      Machine.addr = "n";
      now = (fun () -> 0.);
      eval_ctx =
        {
          Eval.now = (fun () -> 0.);
          rand = (fun () -> 0.5);
          rand_id = (fun () -> 42);
          local_addr = "n";
        };
      scan =
        (fun name ->
          match Store.Catalog.find catalog name with
          | Some t -> Store.Table.tuples t ~now:0.
          | None -> []);
      probe =
        (fun name ~positions ~values ->
          match Store.Catalog.find catalog name with
          | Some t -> Store.Table.probe t ~now:0. ~positions ~values
          | None -> []);
      create_tuple =
        (fun ~dst:_ name fields ->
          let h = Option.get !h_ref in
          h.next_id <- h.next_id + 1;
          Tuple.make ~id:h.next_id name fields);
      emit = (fun ~delete tuple -> emitted := (delete, tuple) :: !emitted);
      charge = (fun _ -> ());
      rule_executed = (fun () -> ());
      tracer = None;
    }
  in
  let h = { machine = Machine.create ?mode ctx; catalog; emitted; next_id = 100 } in
  h_ref := Some h;
  h

let counter = ref 0

let strands ?(tables = []) h src =
  ignore h;
  let is_table name = List.mem name tables in
  let fresh_rule_id () =
    incr counter;
    Fmt.str "m%d" !counter
  in
  match Parser.parse src with
  | [ Ast.Rule r ] -> Strand.compile ~is_table ~fresh_rule_id r
  | _ -> Alcotest.fail "expected one rule"

let strand ?tables h src =
  match strands ?tables h src with
  | [ s ] -> s
  | _ -> Alcotest.fail "expected one strand"

let put h name fields =
  let t = Store.Catalog.find_exn h.catalog name in
  h.next_id <- h.next_id + 1;
  ignore (Store.Table.insert t ~now:0. (Tuple.make ~id:h.next_id name fields))

let fire h s name fields =
  h.next_id <- h.next_id + 1;
  let tuple = Tuple.make ~id:h.next_id name fields in
  let matched = Machine.trigger h.machine s tuple in
  Machine.drain h.machine;
  matched

let results h = List.rev_map snd !(h.emitted)
let addr a = Value.VAddr a
let vi i = Value.VInt i

let test_simple_event_rule () =
  let h = make_harness () in
  let s = strand h "r out@N(X, Y) :- ev@N(X), Y := X * 2." in
  Alcotest.(check bool) "matched" true (fire h s "ev" [ addr "n"; vi 5 ]);
  match results h with
  | [ t ] ->
      Alcotest.(check string) "name" "out" (Tuple.name t);
      Alcotest.(check bool) "doubled" true (Value.equal (Tuple.field t 3) (vi 10))
  | ts -> Alcotest.failf "expected 1 emission, got %d" (List.length ts)

let test_trigger_mismatch () =
  let h = make_harness () in
  let s = strand h {|r out@N() :- ev@N(X), X == 1.|} in
  (* constant in trigger atom *)
  let s2 = strand h {|r2 out@N() :- ev2@N(1).|} in
  Alcotest.(check bool) "cond filters" true (fire h s "ev" [ addr "n"; vi 2 ]);
  Alcotest.(check int) "no emission" 0 (List.length (results h));
  Alcotest.(check bool) "const arg mismatch" false
    (fire h s2 "ev2" [ addr "n"; vi 2 ]);
  Alcotest.(check bool) "const arg match" true (fire h s2 "ev2" [ addr "n"; vi 1 ])

let test_join_fanout () =
  let h = make_harness ~tables:[ ("t", [ 1; 2 ]) ] () in
  let s = strand ~tables:[ "t" ] h "r out@N(X, Y) :- ev@N(X), t@N(Y)." in
  put h "t" [ addr "n"; vi 1 ];
  put h "t" [ addr "n"; vi 2 ];
  put h "t" [ addr "n"; vi 3 ];
  ignore (fire h s "ev" [ addr "n"; vi 9 ]);
  Alcotest.(check int) "one emission per match" 3 (List.length (results h))

let test_join_unification () =
  let h = make_harness ~tables:[ ("t", [ 1; 2 ]) ] () in
  let s = strand ~tables:[ "t" ] h "r out@N(X) :- ev@N(X), t@N(X)." in
  put h "t" [ addr "n"; vi 1 ];
  put h "t" [ addr "n"; vi 2 ];
  ignore (fire h s "ev" [ addr "n"; vi 2 ]);
  match results h with
  | [ t ] -> Alcotest.(check bool) "joined on X" true (Value.equal (Tuple.field t 2) (vi 2))
  | _ -> Alcotest.fail "expected exactly one join result"

let test_multi_join () =
  let h = make_harness ~tables:[ ("a", []); ("b", []) ] () in
  let s = strand ~tables:[ "a"; "b" ] h "r out@N(X, Y, Z) :- ev@N(X), a@N(X, Y), b@N(Y, Z)." in
  put h "a" [ addr "n"; vi 1; vi 10 ];
  put h "a" [ addr "n"; vi 1; vi 20 ];
  put h "b" [ addr "n"; vi 10; vi 100 ];
  put h "b" [ addr "n"; vi 20; vi 200 ];
  put h "b" [ addr "n"; vi 20; vi 201 ];
  ignore (fire h s "ev" [ addr "n"; vi 1 ]);
  (* (1,10,100), (1,20,200), (1,20,201) *)
  Alcotest.(check int) "three chained results" 3 (List.length (results h));
  let zs =
    List.map (fun t -> Value.as_int (Tuple.field t 4)) (results h) |> List.sort compare
  in
  Alcotest.(check (list int)) "values" [ 100; 200; 201 ] zs

let test_breadth_first_same_results () =
  let run mode =
    let h = make_harness ~tables:[ ("a", []); ("b", []) ] ~mode () in
    let s = strand ~tables:[ "a"; "b" ] h "r out@N(X, Y, Z) :- ev@N(X), a@N(X, Y), b@N(Y, Z)." in
    put h "a" [ addr "n"; vi 1; vi 10 ];
    put h "a" [ addr "n"; vi 1; vi 20 ];
    put h "b" [ addr "n"; vi 10; vi 100 ];
    put h "b" [ addr "n"; vi 20; vi 200 ];
    ignore (fire h s "ev" [ addr "n"; vi 1 ]);
    List.map Tuple.to_string (results h) |> List.sort compare
  in
  Alcotest.(check (list string)) "modes agree"
    (run Machine.Depth_first) (run Machine.Breadth_first)

let test_selection_between_joins () =
  let h = make_harness ~tables:[ ("a", []); ("b", []) ] () in
  let s =
    strand ~tables:[ "a"; "b" ] h
      "r out@N(Y, Z) :- ev@N(), a@N(Y), Y > 1, b@N(Y, Z)."
  in
  put h "a" [ addr "n"; vi 1 ];
  put h "a" [ addr "n"; vi 2 ];
  put h "b" [ addr "n"; vi 1; vi 10 ];
  put h "b" [ addr "n"; vi 2; vi 20 ];
  ignore (fire h s "ev" [ addr "n" ]);
  match results h with
  | [ t ] -> Alcotest.(check bool) "only Y=2 passes" true (Value.equal (Tuple.field t 3) (vi 20))
  | ts -> Alcotest.failf "expected 1, got %d" (List.length ts)

let test_remote_head_location () =
  let h = make_harness () in
  let s = strand h "r out@Dest(X) :- ev@N(Dest, X)." in
  ignore (fire h s "ev" [ addr "n"; addr "m"; vi 1 ]);
  match results h with
  | [ t ] -> Alcotest.(check string) "routed to m" "m" (Tuple.location t)
  | _ -> Alcotest.fail "expected 1 emission"

let test_delete_head_with_wildcards () =
  let h = make_harness ~tables:[ ("t", [ 1; 2 ]) ] () in
  let s = strand ~tables:[ "t" ] h "r delete t@N(X, Y) :- ev@N(X)." in
  ignore (fire h s "ev" [ addr "n"; vi 1 ]);
  match !(h.emitted) with
  | [ (true, pat) ] ->
      Alcotest.(check bool) "bound field" true (Value.equal (Tuple.field pat 2) (vi 1));
      Alcotest.(check bool) "wildcard is VNull" true (Tuple.field pat 3 = Value.VNull)
  | _ -> Alcotest.fail "expected 1 delete emission"

let test_negation_blocks () =
  let h = make_harness ~tables:[ ("t", [ 1; 2 ]) ] () in
  let s = strand ~tables:[ "t" ] h "r out@N(X) :- ev@N(X), !t@N(X)." in
  put h "t" [ addr "n"; vi 1 ];
  ignore (fire h s "ev" [ addr "n"; vi 1 ]);
  Alcotest.(check int) "blocked by existing tuple" 0 (List.length (results h));
  ignore (fire h s "ev" [ addr "n"; vi 2 ]);
  Alcotest.(check int) "passes when absent" 1 (List.length (results h))

let test_negation_existential () =
  (* unbound variables in the negated atom are existential: !t@N(_, Y)
     fails if ANY row exists for the bound prefix *)
  let h = make_harness ~tables:[ ("t", []) ] () in
  let s = strand ~tables:[ "t" ] h "r out@N(X) :- ev@N(X), !t@N(X, _)." in
  put h "t" [ addr "n"; vi 1; vi 99 ];
  ignore (fire h s "ev" [ addr "n"; vi 1 ]);
  ignore (fire h s "ev" [ addr "n"; vi 2 ]);
  match results h with
  | [ t ] -> Alcotest.(check bool) "only X=2 passed" true (Value.equal (Tuple.field t 2) (vi 2))
  | ts -> Alcotest.failf "expected 1 result, got %d" (List.length ts)

let test_negation_after_join () =
  (* negation placed after a join filters per match *)
  let h = make_harness ~tables:[ ("a", []); ("bad", []) ] () in
  let s = strand ~tables:[ "a"; "bad" ] h "r out@N(Y) :- ev@N(), a@N(Y), !bad@N(Y)." in
  put h "a" [ addr "n"; vi 1 ];
  put h "a" [ addr "n"; vi 2 ];
  put h "bad" [ addr "n"; vi 1 ];
  ignore (fire h s "ev" [ addr "n" ]);
  match results h with
  | [ t ] -> Alcotest.(check bool) "only clean row" true (Value.equal (Tuple.field t 2) (vi 2))
  | ts -> Alcotest.failf "expected 1 result, got %d" (List.length ts)

(* --- aggregates --- *)

let test_count_aggregate () =
  let h = make_harness ~tables:[ ("t", []) ] () in
  let s = strand ~tables:[ "t" ] h "r c@N(A, count<*>) :- ev@N(), t@N(A, B)." in
  put h "t" [ addr "n"; vi 1; vi 10 ];
  put h "t" [ addr "n"; vi 1; vi 11 ];
  put h "t" [ addr "n"; vi 2; vi 12 ];
  ignore (fire h s "ev" [ addr "n" ]);
  let counts =
    results h
    |> List.map (fun t -> (Value.as_int (Tuple.field t 2), Value.as_int (Tuple.field t 3)))
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "grouped counts" [ (1, 2); (2, 1) ] counts

let test_count_zero_when_group_bound () =
  (* sr8 pattern: count over an empty join with all group vars bound
     by the trigger must emit 0 *)
  let h = make_harness ~tables:[ ("t", []) ] () in
  let s = strand ~tables:[ "t" ] h "r c@N(S, I, count<*>) :- m@N(S, I), t@N(I, X)." in
  ignore (fire h s "m" [ addr "n"; addr "src"; vi 7 ]);
  match results h with
  | [ t ] ->
      Alcotest.(check bool) "zero count" true (Value.equal (Tuple.field t 4) (vi 0))
  | ts -> Alcotest.failf "expected 1 zero-count emission, got %d" (List.length ts)

let test_min_max_aggregates () =
  let h = make_harness ~tables:[ ("t", []) ] () in
  let smin = strand ~tables:[ "t" ] h "r lo@N(min<X>) :- ev@N(), t@N(X)." in
  let smax = strand ~tables:[ "t" ] h "r hi@N(max<X>) :- ev2@N(), t@N(X)." in
  put h "t" [ addr "n"; vi 5 ];
  put h "t" [ addr "n"; vi 2 ];
  put h "t" [ addr "n"; vi 9 ];
  ignore (fire h smin "ev" [ addr "n" ]);
  ignore (fire h smax "ev2" [ addr "n" ]);
  let vals = List.map (fun t -> Value.as_int (Tuple.field t 2)) (results h) in
  Alcotest.(check (list int)) "min then max" [ 2; 9 ] vals

let test_min_over_empty_emits_nothing () =
  let h = make_harness ~tables:[ ("t", []) ] () in
  let s = strand ~tables:[ "t" ] h "r lo@N(min<X>) :- ev@N(), t@N(X)." in
  ignore (fire h s "ev" [ addr "n" ]);
  Alcotest.(check int) "no emission" 0 (List.length (results h))

let test_sum_avg () =
  let h = make_harness ~tables:[ ("t", []) ] () in
  let ssum = strand ~tables:[ "t" ] h "r s@N(sum<X>) :- ev@N(), t@N(X)." in
  let savg = strand ~tables:[ "t" ] h "r a@N(avg<X>) :- ev2@N(), t@N(X)." in
  put h "t" [ addr "n"; vi 1 ];
  put h "t" [ addr "n"; vi 2 ];
  put h "t" [ addr "n"; vi 3 ];
  ignore (fire h ssum "ev" [ addr "n" ]);
  ignore (fire h savg "ev2" [ addr "n" ]);
  match results h with
  | [ s; a ] ->
      Alcotest.(check bool) "sum 6" true (Value.equal (Tuple.field s 2) (vi 6));
      Alcotest.(check (float 1e-9)) "avg 2" 2. (Value.as_float (Tuple.field a 2))
  | _ -> Alcotest.fail "expected 2 emissions"

let test_aggregate_with_assignment () =
  (* bs1 pattern: min over a computed expression *)
  let h = make_harness ~tables:[ ("succ", []); ("node", []) ] () in
  let s =
    strand ~tables:[ "succ"; "node" ] h
      "bs1 d@N(min<D>) :- ev@N(), node@N(NID), succ@N(SID), D := SID - NID - 1."
  in
  put h "node" [ addr "n"; Value.VId 100 ];
  put h "succ" [ addr "n"; Value.VId 150 ];
  put h "succ" [ addr "n"; Value.VId 110 ];
  ignore (fire h s "ev" [ addr "n" ]);
  match results h with
  | [ t ] ->
      Alcotest.(check bool) "min distance 9" true
        (Value.equal (Tuple.field t 2) (Value.VId 9))
  | _ -> Alcotest.fail "expected 1 emission"

let test_probe_matches_scan () =
  (* The indexed probe path and the ablated full-scan path must derive
     the same facts in the same order, joins and negations alike. *)
  let run use_probe =
    let h = make_harness ~tables:[ ("a", []); ("b", []); ("bad", []) ] () in
    Machine.set_use_probe h.machine use_probe;
    let s =
      strand ~tables:[ "a"; "b"; "bad" ] h
        "r out@N(X, Y, Z) :- ev@N(X), a@N(X, Y), b@N(Y, Z), !bad@N(Z)."
    in
    for i = 1 to 3 do
      put h "a" [ addr "n"; vi 1; vi (10 * i) ];
      put h "b" [ addr "n"; vi (10 * i); vi (100 * i) ];
      put h "b" [ addr "n"; vi (10 * i); vi ((100 * i) + 1) ]
    done;
    put h "bad" [ addr "n"; vi 201 ];
    ignore (fire h s "ev" [ addr "n"; vi 1 ]);
    List.map Tuple.to_string (results h)
  in
  let probed = run true and scanned = run false in
  Alcotest.(check int) "five results" 5 (List.length probed);
  Alcotest.(check (list string)) "probe = scan, same order" scanned probed

let test_agenda_explosion_guard () =
  let h = make_harness ~tables:[ ("t", []) ] () in
  let s = strand ~tables:[ "t" ] h "r out@N(X) :- ev@N(), t@N(X)." in
  for i = 1 to 50 do
    put h "t" [ addr "n"; vi i ]
  done;
  h.next_id <- h.next_id + 1;
  let tuple = Tuple.make ~id:h.next_id "ev" [ addr "n" ] in
  ignore (Machine.trigger h.machine s tuple);
  match Machine.drain ~max_items:10 h.machine with
  | exception Machine.Agenda_explosion { addr; last_strand; items } ->
      Alcotest.(check string) "node address in report" "n" addr;
      Alcotest.(check (option string)) "last fired strand" (Some "r") last_strand;
      Alcotest.(check bool) "item budget reported" true (items > 10)
  | () -> Alcotest.fail "expected drain bound to trip"

(* Runtime evaluation errors are tagged with the rule that raised them
   (satellite: forensic context in Eval.Error reports). *)
let test_eval_error_carries_rule () =
  let h = make_harness ~tables:[ ("t", []) ] () in
  let s = strand ~tables:[ "t" ] h "divzero out@N(Y) :- ev@N(X), Y := X / 0." in
  try
    ignore (fire h s "ev" [ addr "n"; vi 6 ]);
    Alcotest.fail "expected Eval.Error"
  with Overlog.Eval.Error msg ->
    let contains sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool)
      (Fmt.str "rule id in %S" msg)
      true
      (contains "rule divzero")

let () =
  Alcotest.run "machine"
    [
      ( "execution",
        [
          Alcotest.test_case "simple rule" `Quick test_simple_event_rule;
          Alcotest.test_case "trigger mismatch" `Quick test_trigger_mismatch;
          Alcotest.test_case "join fanout" `Quick test_join_fanout;
          Alcotest.test_case "join unification" `Quick test_join_unification;
          Alcotest.test_case "multi join" `Quick test_multi_join;
          Alcotest.test_case "bfs = dfs results" `Quick test_breadth_first_same_results;
          Alcotest.test_case "selection between joins" `Quick test_selection_between_joins;
          Alcotest.test_case "remote head" `Quick test_remote_head_location;
          Alcotest.test_case "delete wildcards" `Quick test_delete_head_with_wildcards;
          Alcotest.test_case "drain guard" `Quick test_agenda_explosion_guard;
          Alcotest.test_case "eval error names rule" `Quick test_eval_error_carries_rule;
          Alcotest.test_case "negation blocks" `Quick test_negation_blocks;
          Alcotest.test_case "negation existential" `Quick test_negation_existential;
          Alcotest.test_case "negation after join" `Quick test_negation_after_join;
          Alcotest.test_case "probe = scan" `Quick test_probe_matches_scan;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "count groups" `Quick test_count_aggregate;
          Alcotest.test_case "count zero" `Quick test_count_zero_when_group_bound;
          Alcotest.test_case "min/max" `Quick test_min_max_aggregates;
          Alcotest.test_case "min empty" `Quick test_min_over_empty_emits_nothing;
          Alcotest.test_case "sum/avg" `Quick test_sum_avg;
          Alcotest.test_case "computed min" `Quick test_aggregate_with_assignment;
        ] );
    ]
