(* Wire codec: frame encode/decode round trips (v2 transport header),
   version rejection, malformed input, duplicate/reorder suppression at
   the transport layer, and qcheck properties over random tuples. *)

open Overlog

let v = Alcotest.testable Value.pp Value.equal

let data_of frame =
  match frame.Wire.kind with
  | Wire.Data m -> m
  | Wire.Batch _ | Wire.Ack | Wire.Heartbeat ->
      Alcotest.failf "expected a data frame"

let batch_of frame =
  match frame.Wire.kind with
  | Wire.Batch ms -> ms
  | Wire.Data _ | Wire.Ack | Wire.Heartbeat ->
      Alcotest.failf "expected a delta-batch frame"

let roundtrip ?(delete = false) ?(seq = 0) ?(ack = 0) tuple =
  let frame = Wire.decode (Wire.encode ~delete ~seq ~ack tuple) in
  Alcotest.(check int) "seq" seq frame.Wire.seq;
  Alcotest.(check int) "ack" ack frame.Wire.ack;
  let m = data_of frame in
  Alcotest.(check string) "name" (Tuple.name tuple) m.Wire.name;
  Alcotest.(check bool) "delete" delete m.Wire.delete;
  Alcotest.(check int) "src id" (Tuple.id tuple) m.Wire.src_tuple_id;
  Alcotest.(check (list v)) "fields" (Tuple.fields tuple) m.Wire.fields

let test_simple () =
  roundtrip
    (Tuple.make ~id:42 "succ" [ Value.VAddr "n1"; Value.VId 12345; Value.VAddr "n2" ])

let test_all_types () =
  roundtrip
    (Tuple.make ~id:7 "everything"
       [
         Value.VAddr "node-17";
         Value.VInt (-123456789);
         Value.VFloat 3.14159;
         Value.VStr "hello \x00 world";
         Value.VBool true;
         Value.VBool false;
         Value.VId (Value.Ring.space - 1);
         Value.VNull;
         Value.VList [ Value.VInt 1; Value.VStr "x"; Value.VList [ Value.VBool true ] ];
       ])

let test_delete_flag () = roundtrip ~delete:true (Tuple.make ~id:1 "t" [ Value.VNull ])

let test_empty_fields () = roundtrip (Tuple.make ~id:1 "ping" [])

let test_transport_header () =
  roundtrip ~seq:7 ~ack:3 (Tuple.make ~id:1 "t" [ Value.VInt 5 ]);
  roundtrip ~seq:0xffffffff ~ack:0xfffffffe (Tuple.make ~id:1 "t" [])

let test_control_frames () =
  (match Wire.decode (Wire.encode_ack ~ack:12) with
  | { Wire.seq = 0; ack = 12; kind = Wire.Ack } -> ()
  | _ -> Alcotest.failf "bad ack frame");
  match Wire.decode (Wire.encode_heartbeat ~ack:99) with
  | { Wire.seq = 0; ack = 99; kind = Wire.Heartbeat } -> ()
  | _ -> Alcotest.failf "bad heartbeat frame"

let test_old_version_rejected () =
  (* A version-1 frame starts with byte 0x01 and has no transport
     header; the decoder must refuse it with a clean error, naming the
     version, rather than misparsing or crashing. *)
  let v1 = "\x01\x2a\x00\x00\x00\x00\x01t\x00\x00" in
  match Wire.decode v1 with
  | exception Wire.Error msg ->
      let mentions_version =
        try
          ignore (Str.search_forward (Str.regexp_string "version") msg 0);
          true
        with Not_found -> false
      in
      Alcotest.(check bool) "mentions version" true mentions_version
  | _ -> Alcotest.failf "expected decode failure for version-1 input"

let test_malformed () =
  let bad data =
    match Wire.decode data with
    | exception Wire.Error _ -> ()
    | _ -> Alcotest.failf "expected decode failure"
  in
  bad "";
  bad "\x01" (* old version byte *);
  bad "\x03" (* future version byte *);
  bad "\x02\x00\x00" (* truncated header *);
  bad "\x02\x09\x00\x00\x00\x00\x00\x00\x00\x00" (* unknown frame kind *);
  let good = Wire.encode (Tuple.make ~id:1 "t" [ Value.VInt 5 ]) in
  bad (good ^ "zz") (* trailing bytes *);
  bad (String.sub good 0 (String.length good - 1)) (* cut short *);
  bad (Wire.encode_ack ~ack:3 ^ "x") (* trailing bytes on a control frame *)

let test_size_matches_encoding () =
  let t = Tuple.make ~id:9 "x" [ Value.VAddr "a"; Value.VInt 1 ] in
  Alcotest.(check int) "size = encoded length"
    (String.length (Wire.encode t)) (Wire.size t)

(* --- duplicate / reorder suppression at the transport layer --- *)

(* A transport endpoint with stub hooks: manual clock, captured timers
   (never fired — irrelevant to receive-side dedup), captured output. *)
let make_transport () =
  let clock = ref 0. in
  let tr =
    P2_runtime.Transport.create ~addr:"n0" ~rng:(Sim.Rng.create 7)
      ~now:(fun () -> !clock)
      ~schedule:(fun _ _ -> ())
      ~raw_send:(fun ~dst:_ _ -> ())
      ~active:(fun () -> true)
      ()
  in
  tr

let test_duplicate_suppressed_exactly_once () =
  let tr = make_transport () in
  let delivered = ref [] in
  P2_runtime.Transport.set_deliver tr (fun ~src:_ ~bytes:_ m ->
      delivered := m.Wire.name :: !delivered);
  let frame seq name = Wire.encode ~seq (Tuple.make ~id:seq name []) in
  (* in-order, then an exact duplicate *)
  P2_runtime.Transport.receive tr ~src:"peer" (frame 1 "t1");
  P2_runtime.Transport.receive tr ~src:"peer" (frame 1 "t1");
  (* reordered: seq 3 arrives before seq 2, then 3 again (duplicate in
     the reorder buffer), then the gap-filler 2 *)
  P2_runtime.Transport.receive tr ~src:"peer" (frame 3 "t3");
  P2_runtime.Transport.receive tr ~src:"peer" (frame 3 "t3");
  P2_runtime.Transport.receive tr ~src:"peer" (frame 2 "t2");
  (* stale retransmission of an already-delivered frame *)
  P2_runtime.Transport.receive tr ~src:"peer" (frame 2 "t2");
  Alcotest.(check (list string))
    "each delivered exactly once, in order" [ "t1"; "t2"; "t3" ]
    (List.rev !delivered);
  Alcotest.(check int) "duplicates counted" 3
    (P2_runtime.Transport.duplicate_count tr)

(* random value generator for the property *)
let gen_value =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map (fun i -> Value.VInt i) int;
            map (fun f -> Value.VFloat (Int64.float_of_bits (Int64.of_int f))) int;
            map (fun s -> Value.VStr s) (string_size (int_bound 40));
            map (fun b -> Value.VBool b) bool;
            map (fun i -> Value.VId i) (int_bound (Value.Ring.space - 1));
            map (fun s -> Value.VAddr s) (string_size (int_bound 12));
            return Value.VNull;
          ]
      in
      if n = 0 then leaf
      else
        frequency
          [
            (4, leaf);
            (1, map (fun vs -> Value.VList vs) (list_size (int_bound 4) (self (n / 2))));
          ])

let arb_tuple =
  QCheck.make
    QCheck.Gen.(
      map3
        (fun name fields id ->
          Tuple.make ~id ("t" ^ name) fields)
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 10))
        (list_size (int_bound 8) gen_value)
        (int_bound 0xfffffff))

(* NaN-aware structural equality, recursing into lists: the generators
   can produce NaN bit patterns, and Value.equal would reject a NaN
   that round-tripped perfectly — including one buried in a VList. *)
let rec value_eq a b =
  match (a, b) with
  | Value.VFloat x, Value.VFloat y -> Int64.bits_of_float x = Int64.bits_of_float y
  | Value.VList xs, Value.VList ys ->
      List.length xs = List.length ys && List.for_all2 value_eq xs ys
  | _ -> Value.equal a b

let prop_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip" ~count:500 arb_tuple (fun tuple ->
      let m = data_of (Wire.decode (Wire.encode tuple)) in
      m.Wire.name = Tuple.name tuple
      && List.length m.Wire.fields = Tuple.arity tuple
      && List.for_all2 value_eq m.Wire.fields (Tuple.fields tuple))

(* --- the full-message property: flags, source id, edge values --- *)

(* Deeper nesting than [gen_value], plus adversarial leaves: extreme
   ints, NaN / infinities / signed zero, empty and binary strings. *)
let gen_edge_value =
  let open QCheck.Gen in
  sized_size (int_bound 12) @@ fix (fun self n ->
      let leaf =
        oneof
          [
            oneofl
              [
                Value.VInt max_int;
                Value.VInt min_int;
                Value.VInt 0;
                Value.VFloat Float.nan;
                Value.VFloat Float.infinity;
                Value.VFloat Float.neg_infinity;
                Value.VFloat (-0.);
                Value.VFloat Float.min_float;
                Value.VStr "";
                Value.VStr "\x00\xff\x7f";
                Value.VAddr "";
                Value.VId 0;
                Value.VId (Value.Ring.space - 1);
                Value.VList [];
                Value.VNull;
              ];
            map (fun i -> Value.VInt i) int;
            map (fun f -> Value.VFloat (Int64.float_of_bits (Int64.of_int f))) int;
            map (fun s -> Value.VStr s) (string_size (int_bound 60));
          ]
      in
      if n = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (2, map (fun vs -> Value.VList vs) (list_size (int_bound 6) (self (n / 2))));
          ])

let arb_message =
  QCheck.make
    QCheck.Gen.(
      map3
        (fun (name, delete) fields (id, seq, ack) ->
          (Tuple.make ~id ("t" ^ name) fields, delete, seq, ack))
        (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 10)) bool)
        (list_size (int_bound 8) gen_edge_value)
        (triple (int_bound 0xffffffff) (int_bound 0xffffffff) (int_bound 0xffffffff)))

let prop_message_roundtrip =
  QCheck.Test.make ~name:"wire frame roundtrip (flags, id, seq/ack, edges)"
    ~count:1000 arb_message (fun (tuple, delete, seq, ack) ->
      let frame = Wire.decode (Wire.encode ~delete ~seq ~ack tuple) in
      let m = data_of frame in
      frame.Wire.seq = seq
      && frame.Wire.ack = ack
      && m.Wire.name = Tuple.name tuple
      && m.Wire.delete = delete
      && m.Wire.src_tuple_id = Tuple.id tuple
      && List.length m.Wire.fields = Tuple.arity tuple
      && List.for_all2 value_eq m.Wire.fields (Tuple.fields tuple))

let prop_size_matches =
  QCheck.Test.make ~name:"wire size = encoded length" ~count:300 arb_message
    (fun (tuple, delete, _, _) ->
      Wire.size ~delete tuple = String.length (Wire.encode ~delete tuple))

(* --- delta-batch frames (kind 3) --- *)

let check_message (delete, tuple) (m : Wire.message) =
  m.Wire.name = Tuple.name tuple
  && m.Wire.delete = delete
  && m.Wire.src_tuple_id = Tuple.id tuple
  && List.length m.Wire.fields = Tuple.arity tuple
  && List.for_all2 value_eq m.Wire.fields (Tuple.fields tuple)

let test_batch_roundtrip () =
  let items =
    [
      (false, Tuple.make ~id:1 "path" [ Value.VAddr "n1"; Value.VAddr "n0" ]);
      (true, Tuple.make ~id:2 "link" [ Value.VAddr "n1"; Value.VAddr "n2" ]);
      (false, Tuple.make ~id:3 "ping" []);
    ]
  in
  let frame = Wire.decode (Wire.encode_batch ~seq:9 ~ack:4 items) in
  Alcotest.(check int) "seq" 9 frame.Wire.seq;
  Alcotest.(check int) "ack" 4 frame.Wire.ack;
  let ms = batch_of frame in
  Alcotest.(check int) "count" (List.length items) (List.length ms);
  Alcotest.(check bool) "items preserved in order" true
    (List.for_all2 check_message items ms)

let test_batch_singleton_and_empty () =
  (* the codec is total on the edge sizes even though the transport
     never emits them: a 1-batch and a 0-batch both round-trip *)
  let one = [ (false, Tuple.make ~id:5 "t" [ Value.VInt 1 ]) ] in
  Alcotest.(check int) "singleton" 1
    (List.length (batch_of (Wire.decode (Wire.encode_batch one))));
  Alcotest.(check int) "empty" 0
    (List.length (batch_of (Wire.decode (Wire.encode_batch []))))

let test_batch_malformed () =
  let bad data =
    match Wire.decode data with
    | exception Wire.Error _ -> ()
    | _ -> Alcotest.failf "expected decode failure"
  in
  let good =
    Wire.encode_batch
      [ (false, Tuple.make ~id:1 "t" [ Value.VInt 5 ]) ]
  in
  bad (good ^ "z") (* trailing bytes *);
  bad (String.sub good 0 (String.length good - 1)) (* truncated item *);
  (* count larger than the items present *)
  bad "\x02\x03\x00\x00\x00\x00\x00\x00\x00\x00\x02\x00"

let arb_batch =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 1 20)
           (map3
              (fun name fields (delete, id) ->
                (delete, Tuple.make ~id ("t" ^ name) fields))
              (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
              (list_size (int_bound 6) gen_edge_value)
              (pair bool (int_bound 0xfffffff))))
        (pair (int_bound 0xffffffff) (int_bound 0xffffffff)))

let prop_batch_roundtrip =
  QCheck.Test.make ~name:"batch roundtrip preserves count, order, content"
    ~count:300 arb_batch (fun (items, (seq, ack)) ->
      let frame = Wire.decode (Wire.encode_batch ~seq ~ack items) in
      let ms = batch_of frame in
      frame.Wire.seq = seq
      && frame.Wire.ack = ack
      && List.length ms = List.length items
      && List.for_all2 check_message items ms)

let test_batch_transport_unbatches_in_order () =
  let tr = make_transport () in
  let delivered = ref [] in
  P2_runtime.Transport.set_deliver tr (fun ~src:_ ~bytes:_ m ->
      delivered := m.Wire.name :: !delivered);
  let tuple name = Tuple.make ~id:1 name [] in
  let batch seq names =
    Wire.encode_batch ~seq (List.map (fun n -> (false, tuple n)) names)
  in
  P2_runtime.Transport.receive tr ~src:"peer" (batch 1 [ "a"; "b"; "c" ]);
  Alcotest.(check (list string))
    "batch items delivered in item order" [ "a"; "b"; "c" ]
    (List.rev !delivered)

let test_batch_duplicate_suppressed_exactly_once () =
  let tr = make_transport () in
  let delivered = ref [] in
  P2_runtime.Transport.set_deliver tr (fun ~src:_ ~bytes:_ m ->
      delivered := m.Wire.name :: !delivered);
  let tuple name = Tuple.make ~id:1 name [] in
  let batch seq names =
    Wire.encode_batch ~seq (List.map (fun n -> (false, tuple n)) names)
  in
  (* a duplicated batch must not re-deliver any of its items *)
  P2_runtime.Transport.receive tr ~src:"peer" (batch 1 [ "a"; "b" ]);
  P2_runtime.Transport.receive tr ~src:"peer" (batch 1 [ "a"; "b" ]);
  Alcotest.(check (list string))
    "delivered exactly once" [ "a"; "b" ]
    (List.rev !delivered);
  Alcotest.(check int) "duplicate counted" 1
    (P2_runtime.Transport.duplicate_count tr)

let test_batch_reorder_buffered () =
  let tr = make_transport () in
  let delivered = ref [] in
  P2_runtime.Transport.set_deliver tr (fun ~src:_ ~bytes:_ m ->
      delivered := m.Wire.name :: !delivered);
  let tuple name = Tuple.make ~id:1 name [] in
  let batch seq names =
    Wire.encode_batch ~seq (List.map (fun n -> (false, tuple n)) names)
  in
  let data seq name = Wire.encode ~seq (tuple name) in
  (* seq 2 (a batch) arrives before seq 1 (plain data): the batch is
     buffered whole, then released — after the gap filler, in item
     order — mirroring the PR-5 reorder cases *)
  P2_runtime.Transport.receive tr ~src:"peer" (batch 2 [ "x"; "y" ]);
  Alcotest.(check (list string)) "gap holds the batch back" [] (List.rev !delivered);
  P2_runtime.Transport.receive tr ~src:"peer" (data 1 "w");
  (* duplicate of the already-delivered batch, now below cum_ack *)
  P2_runtime.Transport.receive tr ~src:"peer" (batch 2 [ "x"; "y" ]);
  Alcotest.(check (list string))
    "in-order release, batch delivered once" [ "w"; "x"; "y" ]
    (List.rev !delivered)

let test_oversize_rejected () =
  let huge = Tuple.make ~id:1 "t" [ Value.VStr (String.make 70_000 'x') ] in
  (match Wire.encode huge with
  | exception Wire.Error _ -> ()
  | _ -> Alcotest.failf "expected Wire.Error for an oversize string");
  let wide = Tuple.make ~id:1 "t" [ Value.VList (List.init 70_000 (fun i -> Value.VInt i)) ] in
  match Wire.encode wide with
  | exception Wire.Error _ -> ()
  | _ -> Alcotest.failf "expected Wire.Error for an oversize list"

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "simple" `Quick test_simple;
          Alcotest.test_case "all types" `Quick test_all_types;
          Alcotest.test_case "delete flag" `Quick test_delete_flag;
          Alcotest.test_case "no fields" `Quick test_empty_fields;
          Alcotest.test_case "transport header" `Quick test_transport_header;
          Alcotest.test_case "control frames" `Quick test_control_frames;
          Alcotest.test_case "old version rejected" `Quick test_old_version_rejected;
          Alcotest.test_case "malformed" `Quick test_malformed;
          Alcotest.test_case "size" `Quick test_size_matches_encoding;
          Alcotest.test_case "oversize rejected" `Quick test_oversize_rejected;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_message_roundtrip;
          QCheck_alcotest.to_alcotest prop_size_matches;
        ] );
      ( "batch",
        [
          Alcotest.test_case "roundtrip" `Quick test_batch_roundtrip;
          Alcotest.test_case "singleton and empty" `Quick
            test_batch_singleton_and_empty;
          Alcotest.test_case "malformed" `Quick test_batch_malformed;
          QCheck_alcotest.to_alcotest prop_batch_roundtrip;
        ] );
      ( "transport",
        [
          Alcotest.test_case "duplicates suppressed exactly once" `Quick
            test_duplicate_suppressed_exactly_once;
          Alcotest.test_case "batch unbatches in order" `Quick
            test_batch_transport_unbatches_in_order;
          Alcotest.test_case "batch duplicate suppressed exactly once" `Quick
            test_batch_duplicate_suppressed_exactly_once;
          Alcotest.test_case "batch reorder buffered" `Quick
            test_batch_reorder_buffered;
        ] );
    ]
