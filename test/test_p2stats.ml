(* Integration tests for metric reflection (P2stats), the pure-OverLog
   watchdog, the JSON dump hooks, and the OPERATIONS.md contract: every
   registered metric name is documented, and every OverLog block in the
   manual passes the semantic analyzer. *)

open Overlog

module Engine = P2_runtime.Engine
module Node = P2_runtime.Node
module P2stats = P2_runtime.P2stats

let table_tuples engine addr name =
  let node = Engine.node engine addr in
  match Store.Catalog.find (Node.catalog node) name with
  | Some t -> Store.Table.tuples t ~now:(Engine.now engine)
  | None -> []

(* A settled 4-node Chord ring with reflection attached. *)
let chord_with_stats ?(period = 2.) ?(seconds = 40.) () =
  let engine = Engine.create ~seed:1 () in
  let net = Chord.boot engine 4 in
  P2stats.attach ~period engine;
  Engine.run_for engine seconds;
  (engine, net)

(* --- reflection --- *)

let stat_value engine addr name =
  table_tuples engine addr "p2Stats"
  |> List.find_map (fun t ->
         match (Tuple.field t 2, Tuple.field t 3) with
         | Value.VStr n, Value.VFloat v when n = name -> Some v
         | _ -> None)

let test_p2stats_rows_appear () =
  let engine, _ = chord_with_stats () in
  let rows = table_tuples engine "n0" "p2Stats" in
  Alcotest.(check bool) "p2Stats has rows" true (rows <> []);
  (* one row per registry metric *)
  let names = Metrics.names (Node.registry (Engine.node engine "n0")) in
  Alcotest.(check int) "one row per metric" (List.length names) (List.length rows);
  let v name =
    match stat_value engine "n0" name with
    | Some v -> v
    | None -> Alcotest.failf "no p2Stats row for %s" name
  in
  Alcotest.(check bool) "strand executions reflected non-zero" true
    (v "machine.agenda.executed" > 0.);
  Alcotest.(check bool) "table inserts reflected non-zero" true
    (v "store.inserts" > 0.);
  Alcotest.(check bool) "messages reflected non-zero" true (v "net.msgs_tx" > 0.)

let test_p2tablestats_and_netstats () =
  let engine, _ = chord_with_stats () in
  let tables =
    table_tuples engine "n0" "p2TableStats"
    |> List.map (fun t ->
           match Tuple.field t 2 with Value.VStr n -> n | _ -> "?")
  in
  Alcotest.(check bool) "per-table rows exist" true (List.mem "succ" tables);
  Alcotest.(check bool) "reflection tables not self-reported" false
    (List.mem "p2Stats" tables);
  let peers = table_tuples engine "n0" "p2NetStats" in
  Alcotest.(check bool) "per-peer rows exist" true (peers <> []);
  List.iter
    (fun t ->
      match Tuple.field t 3 with
      | Value.VInt tx -> Alcotest.(check bool) "tx_msgs >= 0" true (tx >= 0)
      | v -> Alcotest.failf "tx_msgs not an int: %a" Value.pp v)
    peers

(* Reflection rows must never leak into the tracer's tupleTable: the
   instrument would otherwise dominate what it measures. *)
let test_reflection_exempt_from_tracer () =
  let engine = Engine.create ~seed:1 ~trace:true () in
  ignore (Chord.boot engine 4);
  P2stats.attach ~period:2. engine;
  Engine.run_for engine 20.;
  let node = Engine.node engine "n0" in
  let tuple_table = Dataflow.Tracer.tuple_table (Node.tracer node) in
  Alcotest.(check bool) "p2Stats rows were reflected" true
    (table_tuples engine "n0" "p2Stats" <> []);
  (* tupleTable rows don't carry names, so approximate: a registered
     tuple resolves back to its contents via the tracer memo *)
  Store.Table.iter tuple_table ~now:(Engine.now engine) (fun row ->
      match Tuple.field row 2 with
      | Value.VInt id -> (
          match Dataflow.Tracer.resolve (Node.tracer node) id with
          | Some t ->
              Alcotest.(check bool)
                (Fmt.str "reflected tuple %s in tupleTable" (Tuple.name t))
                false
                (List.mem (Tuple.name t) Node.reflected_tables)
          | None -> ())
      | _ -> ())

(* --- determinism --- *)

let test_json_deterministic_and_nonzero () =
  let dump () =
    let engine, _ = chord_with_stats () in
    P2stats.to_json engine
  in
  let j1 = dump () and j2 = dump () in
  Alcotest.(check string) "same seed, same dump" j1 j2;
  let contains sub =
    let n = String.length j1 and m = String.length sub in
    let rec go i = i + m <= n && (String.sub j1 i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has executed counter" true
    (contains "\"machine.agenda.executed\"");
  Alcotest.(check bool) "has per-table section" true (contains "\"tables\"");
  Alcotest.(check bool) "executed is non-zero" false
    (contains "\"machine.agenda.executed\": 0,")

(* Attaching reflection must not change what the system itself
   computes: the ring converges identically with and without it. *)
let test_reflection_preserves_ring () =
  let ring ~reflect =
    let engine = Engine.create ~seed:5 () in
    let net = Chord.boot engine 4 in
    if reflect then P2stats.attach ~period:1. engine;
    Engine.run_for engine 60.;
    Chord.ring_walk net
  in
  Alcotest.(check (list string))
    "identical ring with and without reflection" (ring ~reflect:false)
    (ring ~reflect:true)

(* --- watchdog --- *)

let test_watchdog_fires_under_agenda_load () =
  let engine = Engine.create ~seed:1 () in
  ignore (Chord.boot engine 4);
  (* Chord's agenda high-water mark exceeds 5 during joins, so a
     threshold of 5 must fire; the send-queue threshold is set out of
     reach so only agenda alarms appear. *)
  let alarms =
    Core.Watchdog.install ~period:2. ~agenda_threshold:5.
      ~sendq_threshold:1e9 engine
  in
  Engine.run_for engine 30.;
  Alcotest.(check bool) "watchdog fired" true (Core.Alarms.count alarms > 0);
  List.iter
    (fun (a : Core.Alarms.alarm) ->
      match (Tuple.field a.tuple 2, Tuple.field a.tuple 3) with
      | Value.VStr kind, Value.VFloat v ->
          Alcotest.(check string) "alarm kind" "agenda-growth" kind;
          Alcotest.(check bool) "alarm carries the offending value" true (v > 5.)
      | _ -> Alcotest.fail "malformed p2Alarm tuple")
    (Core.Alarms.alarms alarms)

let test_watchdog_quiet_in_steady_state () =
  let engine = Engine.create ~seed:1 () in
  ignore (Chord.boot engine 4);
  (* default thresholds are far above a small healthy ring *)
  let alarms = Core.Watchdog.install ~period:2. engine in
  Engine.run_for engine 40.;
  Alcotest.(check int) "no alarms" 0 (Core.Alarms.count alarms)

(* --- campaign hook --- *)

let test_campaign_on_done_hook () =
  let cfg =
    {
      Harness.Campaign.default_config with
      nodes = 4;
      settle = 30.;
      horizon = 10.;
      cooldown = 20.;
    }
  in
  let dump = ref "" in
  let run =
    Harness.Campaign.run_plan cfg ~seed:3
      ~on_done:(fun engine -> dump := P2stats.to_json engine)
      (Harness.Fault_plan.empty 10.)
  in
  Alcotest.(check bool) "baseline run passes" false (Harness.Campaign.failed run);
  Alcotest.(check bool) "hook produced a dump" true (String.length !dump > 2);
  (* the dump must not perturb the verdict: identical run without the
     hook yields identical stats *)
  let run' = Harness.Campaign.run_plan cfg ~seed:3 (Harness.Fault_plan.empty 10.) in
  Alcotest.(check bool) "verdict unchanged by hook" true (run.stats = run'.stats)

(* --- documentation contract --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* cwd is test/ under `dune runtest` (the declared dep) but the
   project root under `dune exec`. *)
let operations_md () =
  let candidates = [ "../docs/OPERATIONS.md"; "docs/OPERATIONS.md" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> read_file path
  | None -> Alcotest.fail "docs/OPERATIONS.md not found"

(* Every metric name a node registers must appear verbatim in the
   operator's manual. *)
let test_operations_documents_every_metric () =
  let doc = operations_md () in
  let contains sub =
    let n = String.length doc and m = String.length sub in
    let rec go i = i + m <= n && (String.sub doc i m = sub || go (i + 1)) in
    go 0
  in
  let engine = Engine.create ~seed:1 () in
  let node = Engine.add_node engine "n0" in
  let undocumented =
    List.filter (fun name -> not (contains ("`" ^ name ^ "`")))
      (Metrics.names (Node.registry node))
  in
  Alcotest.(check (list string)) "every metric documented" [] undocumented

(* Every fenced OverLog block in the manual must pass the analyzer
   under the reflection-schema environment (mirroring the CI check on
   examples). *)
let test_operations_olg_blocks_analyze () =
  let doc = operations_md () in
  let lines = String.split_on_char '\n' doc in
  let blocks =
    let rec go acc cur in_block = function
      | [] -> List.rev acc
      | line :: rest ->
          if in_block then
            if String.trim line = "```" then
              go (String.concat "\n" (List.rev cur) :: acc) [] false rest
            else go acc (line :: cur) true rest
          else if String.trim line = "```olg" then go acc [] true rest
          else go acc cur false rest
    in
    go [] [] false lines
  in
  Alcotest.(check bool) "manual has OverLog examples" true (List.length blocks >= 1);
  let env =
    Analysis.env_of_program (Parser.parse (P2stats.schema ()))
  in
  List.iteri
    (fun i block ->
      let _, diags = Analysis.check_source ~env block in
      match Analysis.errors diags with
      | [] -> ()
      | errs ->
          Alcotest.failf "OPERATIONS.md block %d: %a" i
            (Fmt.list (fun ppf d -> Analysis.pp_diagnostic ppf d))
            errs)
    blocks

let () =
  Alcotest.run "p2stats"
    [
      ( "reflection",
        [
          Alcotest.test_case "p2Stats rows appear" `Quick test_p2stats_rows_appear;
          Alcotest.test_case "table and net stats" `Quick
            test_p2tablestats_and_netstats;
          Alcotest.test_case "exempt from tracer" `Quick
            test_reflection_exempt_from_tracer;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "json dump deterministic" `Quick
            test_json_deterministic_and_nonzero;
          Alcotest.test_case "reflection preserves the ring" `Quick
            test_reflection_preserves_ring;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "fires under agenda load" `Quick
            test_watchdog_fires_under_agenda_load;
          Alcotest.test_case "quiet in steady state" `Quick
            test_watchdog_quiet_in_steady_state;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "campaign on_done" `Quick test_campaign_on_done_hook;
        ] );
      ( "documentation",
        [
          Alcotest.test_case "every metric documented" `Quick
            test_operations_documents_every_metric;
          Alcotest.test_case "manual examples analyze" `Quick
            test_operations_olg_blocks_analyze;
        ] );
    ]
