(** Binary wire format for transport frames.

    P2 marshals tuples onto UDP; the simulator does not need real
    sockets, but encoding messages for real gives honest on-the-wire
    byte counts for the bandwidth metrics and guarantees that
    everything a program sends is actually serializable.

    Version 2 adds the reliable-transport header: every frame carries a
    kind (data / ack / heartbeat), a per-channel sequence number and a
    cumulative acknowledgement, so the runtime's transport layer can
    retransmit, suppress duplicates and piggyback acks on reverse
    traffic. Version-1 frames (no transport header) are rejected with a
    clean {!Error}.

    Format (all integers little-endian):
    {v
      frame     := u8 version | u8 kind | u32 seq | u32 ack | payload
      payload   := data                  (kind 0)
                 | (empty)               (kind 1: ack, kind 2: heartbeat)
                 | u16 count | data*     (kind 3: delta batch)
      data      := u32 src_tuple_id | u8 flags | str name | u16 nfields | field*
      field     := u8 tag | payload
      str       := u16 length | bytes
    v}
    Flags bit 0 marks delete-pattern messages.

    A delta batch (kind 3) coalesces every tuple shipped to one peer
    within a single virtual-clock instant into one frame consuming one
    sequence number; the receiver unbatches it and delivers the
    messages in item order, so batching is invisible above the
    transport. *)

exception Error of string

let version = 2

let flag_delete = 1

(* --- encoding --- *)

let put_u8 buf i = Buffer.add_char buf (Char.chr (i land 0xff))

let put_u16 buf i =
  if i < 0 || i > 0xffff then raise (Error "u16 out of range");
  put_u8 buf (i land 0xff);
  put_u8 buf (i lsr 8)

let put_u32 buf i =
  put_u16 buf (i land 0xffff);
  put_u16 buf ((i lsr 16) land 0xffff)

let put_int64 buf i =
  for b = 0 to 7 do
    put_u8 buf (Int64.to_int (Int64.shift_right_logical i (8 * b)) land 0xff)
  done

let put_i64 buf i = put_int64 buf (Int64.of_int i)

(* float bits use all 64 bits: they must never pass through OCaml's
   63-bit int *)
let put_f64 buf f = put_int64 buf (Int64.bits_of_float f)

let put_str buf s =
  if String.length s > 0xffff then raise (Error "string too long");
  put_u16 buf (String.length s);
  Buffer.add_string buf s

let rec put_value buf v =
  match v with
  | Value.VInt i ->
      put_u8 buf 0;
      put_i64 buf i
  | Value.VFloat f ->
      put_u8 buf 1;
      put_f64 buf f
  | Value.VStr s ->
      put_u8 buf 2;
      put_str buf s
  | Value.VBool b ->
      put_u8 buf 3;
      put_u8 buf (if b then 1 else 0)
  | Value.VId i ->
      put_u8 buf 4;
      put_i64 buf (Value.Ring.norm i)
  | Value.VAddr a ->
      put_u8 buf 5;
      put_str buf a
  | Value.VList vs ->
      put_u8 buf 6;
      put_u16 buf (List.length vs);
      List.iter (put_value buf) vs
  | Value.VNull -> put_u8 buf 7

let kind_data = 0
let kind_ack = 1
let kind_heartbeat = 2
let kind_batch = 3

let put_header buf ~kind ~seq ~ack =
  put_u8 buf version;
  put_u8 buf kind;
  put_u32 buf (seq land 0xffffffff);
  put_u32 buf (ack land 0xffffffff)

let put_data buf ~delete tuple =
  put_u32 buf (Tuple.id tuple land 0xffffffff);
  put_u8 buf (if delete then flag_delete else 0);
  put_str buf (Tuple.name tuple);
  let fields = Tuple.fields tuple in
  put_u16 buf (List.length fields);
  List.iter (put_value buf) fields

(** Encode a tuple as a data frame. [delete] marks delete patterns; the
    source tuple id travels with the message so the receiver's tracer
    can record the cross-node link (paper §2.1.3). [seq] is the
    channel sequence number, [ack] the piggybacked cumulative
    acknowledgement (both default 0 for unsequenced sends). *)
let encode ?(delete = false) ?(seq = 0) ?(ack = 0) tuple =
  let buf = Buffer.create 64 in
  put_header buf ~kind:kind_data ~seq ~ack;
  put_data buf ~delete tuple;
  Buffer.contents buf

(** Encode a list of tuple shipments as one delta-batch frame occupying
    a single sequence number. Raises {!Error} on more than 65535
    items. *)
let encode_batch ?(seq = 0) ?(ack = 0) items =
  let buf = Buffer.create 256 in
  put_header buf ~kind:kind_batch ~seq ~ack;
  put_u16 buf (List.length items);
  List.iter (fun (delete, tuple) -> put_data buf ~delete tuple) items;
  Buffer.contents buf

(** Standalone cumulative-acknowledgement frame. *)
let encode_ack ~ack =
  let buf = Buffer.create 16 in
  put_header buf ~kind:kind_ack ~seq:0 ~ack;
  Buffer.contents buf

(** Liveness-probe frame; the receiver answers with an ack. *)
let encode_heartbeat ~ack =
  let buf = Buffer.create 16 in
  put_header buf ~kind:kind_heartbeat ~seq:0 ~ack;
  Buffer.contents buf

(* --- decoding --- *)

type reader = { data : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.data then raise (Error "truncated message")

let get_u8 r =
  need r 1;
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_u16 r =
  let lo = get_u8 r in
  let hi = get_u8 r in
  lo lor (hi lsl 8)

let get_u32 r =
  let lo = get_u16 r in
  let hi = get_u16 r in
  lo lor (hi lsl 16)

let get_int64 r =
  let v = ref 0L in
  for b = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (get_u8 r)) (8 * b))
  done;
  !v

let get_i64 r = Int64.to_int (get_int64 r)

let get_f64 r = Int64.float_of_bits (get_int64 r)

let get_str r =
  let n = get_u16 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let rec get_value r =
  match get_u8 r with
  | 0 -> Value.VInt (get_i64 r)
  | 1 -> Value.VFloat (get_f64 r)
  | 2 -> Value.VStr (get_str r)
  | 3 -> Value.VBool (get_u8 r <> 0)
  | 4 -> Value.VId (get_i64 r)
  | 5 -> Value.VAddr (get_str r)
  | 6 ->
      let n = get_u16 r in
      Value.VList (List.init n (fun _ -> get_value r))
  | 7 -> Value.VNull
  | t -> raise (Error (Fmt.str "unknown value tag %d" t))

type message = { src_tuple_id : int; delete : bool; name : string; fields : Value.t list }

type kind = Data of message | Batch of message list | Ack | Heartbeat

type frame = { seq : int; ack : int; kind : kind }

let get_data r =
  let src_tuple_id = get_u32 r in
  let flags = get_u8 r in
  let name = get_str r in
  let nfields = get_u16 r in
  let fields = List.init nfields (fun _ -> get_value r) in
  { src_tuple_id; delete = flags land flag_delete <> 0; name; fields }

(** Decode a wire frame. Raises [Error] on malformed input, including
    the pre-transport version-1 layout. *)
let decode data =
  let r = { data; pos = 0 } in
  let v = get_u8 r in
  if v <> version then
    raise (Error (Fmt.str "unsupported version %d (expected %d)" v version));
  let k = get_u8 r in
  let seq = get_u32 r in
  let ack = get_u32 r in
  let kind =
    if k = kind_data then Data (get_data r)
    else if k = kind_batch then begin
      let count = get_u16 r in
      Batch (List.init count (fun _ -> get_data r))
    end
    else if k = kind_ack then Ack
    else if k = kind_heartbeat then Heartbeat
    else raise (Error (Fmt.str "unknown frame kind %d" k))
  in
  if r.pos <> String.length data then raise (Error "trailing bytes");
  { seq; ack; kind }

(** Wire size of a tuple's data frame without materializing the
    encoding. *)
let size ?(delete = false) tuple = String.length (encode ~delete tuple)
