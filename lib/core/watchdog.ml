(** Pure-OverLog runtime watchdog: "monitor the monitor". Joins over
    the [p2Stats] reflection rows (see [P2_runtime.P2stats]) and
    raises [p2Alarm] event tuples when the runtime's own vital signs
    cross thresholds — agenda growth (a strand storm or a rule that
    feeds itself) and send-queue saturation (a node flooding a peer
    faster than the network drains).

    The rules are delta-triggered: a [p2Stats] row only produces a
    table delta when its value changes, so the watchdog fires on
    movement, not on every reflection tick. *)

(** [p2Alarm(Addr, Kind, Value)] with [Kind] one of ["agenda-growth"],
    ["sendq-saturation"], ["peer-suspect"], ["peer-dead"] or
    ["retx-saturation"]. Thresholds are baked into the program text;
    the defaults are far above anything the embedded Chord simulations
    reach in steady state. The peer rules join the transport failure
    detector's [p2PeerStatus] reflection (Value carries the peer's
    silence in seconds — a float, like every other alarm payload, so
    the analyzer's type pass stays satisfied across rules). *)
let program ?(agenda_threshold = 512.) ?(sendq_threshold = 64.)
    ?(retx_threshold = 256.) () =
  (* %f, not %g: the OverLog lexer has no exponent literals, and %g
     renders e.g. 1e9 as "1e+09". *)
  Fmt.str
    {|
wd1 p2Alarm@A("agenda-growth", V) :- p2Stats@A(Name, V),
    Name == "machine.agenda.depth_max", V > %f.
wd2 p2Alarm@A("sendq-saturation", V) :- p2Stats@A(Name, V),
    Name == "net.sendq.depth", V > %f.
wd3 p2Alarm@A("peer-suspect", SilentFor) :-
    p2PeerStatus@A(Peer, Status, Misses, SilentFor, SendQ),
    Status == "suspect".
wd4 p2Alarm@A("retx-saturation", V) :- p2Stats@A(Name, V),
    Name == "transport.retx.rate", V > %f.
wd5 p2Alarm@A("peer-dead", SilentFor) :-
    p2PeerStatus@A(Peer, Status, Misses, SilentFor, SendQ),
    Status == "dead".
|}
    agenda_threshold sendq_threshold retx_threshold

(** Install the watchdog on every node and start metric reflection if
    the caller has not already done so ([reflect = false] to skip).
    Returns a collector of [p2Alarm] tuples. *)
let install ?(reflect = true) ?period ?agenda_threshold ?sendq_threshold
    ?retx_threshold engine =
  if reflect then P2_runtime.P2stats.attach ?period engine;
  List.iter
    (fun addr ->
      let node = P2_runtime.Engine.node engine addr in
      (* The watchdog joins over p2Stats, so the schema must exist
         before the delta strands are installed. *)
      if not (Store.Catalog.is_table (P2_runtime.Node.catalog node) "p2Stats") then
        P2_runtime.Node.install_text node (P2_runtime.P2stats.schema ?period ());
      P2_runtime.Node.install_text node
        (program ?agenda_threshold ?sendq_threshold ?retx_threshold ()))
    (P2_runtime.Engine.addrs engine);
  Alarms.collect engine "p2Alarm"
