(** One P2 node: tables, compiled strands, tracer, metrics, and the
    planner that installs OverLog programs — including on-line while
    the node runs. Transport-agnostic: the engine injects [send] and
    the clock. *)

open Overlog

type t

type timer_request = { strand : Dataflow.Strand.t; period : float }

(** Per-peer traffic accounting, keyed by the remote address. Updated
    on every send ([tx_*]) and receive ([rx_*]); the source of the
    [p2NetStats] reflection rows. *)
type peer_stats = {
  mutable tx_msgs : int;  (** messages sent to the peer *)
  mutable tx_bytes : int;  (** wire bytes sent to the peer *)
  mutable rx_msgs : int;  (** messages received from the peer *)
  mutable rx_bytes : int;  (** wire bytes received from the peer *)
}

val create :
  addr:string ->
  rng:Sim.Rng.t ->
  ?trace:bool ->
  ?tracer_config:Dataflow.Tracer.config ->
  unit ->
  t

(** Names of the metric-reflection tables ([p2Stats], [p2TableStats],
    [p2NetStats], [p2PeerStatus]). Their rows are exempt from tracer
    registration and from the [store.*] aggregate counters, so the
    measurement instrument never dominates what it measures. *)
val reflected_tables : string list

(** Names of the bookkeeping tables the runtime itself maintains
    ([ruleExec], [tupleTable]). Like {!reflected_tables} they are
    excluded from tracer registration, and the engine's checkpointer
    skips both groups: reflections and bookkeeping are derived state,
    rebuilt by the restarted node rather than restored. *)
val system_tables : string list

val addr : t -> string
val catalog : t -> Store.Catalog.t
val metrics : t -> Sim.Metrics.t

(** This node's metric registry. Every runtime counter, gauge and
    histogram aggregate is registered here under a stable dotted name
    (see docs/OPERATIONS.md for the full catalog); snapshots feed the
    [p2Stats] reflection and [p2ql stats]. *)
val registry : t -> Metrics.t

(** Per-peer traffic counters, sorted by peer address. *)
val peers : t -> (string * peer_stats) list

val tracer : t -> Dataflow.Tracer.t
val machine : t -> Dataflow.Machine.t
val dead_events : t -> int
val rules_installed : t -> int

(** Installed rules as (rule id, pretty-printed source), oldest first. *)
val rules : t -> (string * string) list

(** Engine wiring. [set_now] also drives the tracer's clock. *)

val set_now : t -> (unit -> float) -> unit
val set_send : t -> (dst:string -> delete:bool -> src_tuple:Tuple.t -> unit) -> unit
val set_timer_handler : t -> (timer_request -> unit) -> unit

(** Attach (or detach, with [None]) a flight-recorder segment-log
    writer: the tracer sink buffers every trace record into it, and
    the [trace.log.*] metrics start reading its counters. The buffer
    only reaches the disk in {!flush_trace_log}. *)
val set_trace_log : t -> Seglog.writer option -> unit

val trace_log : t -> Seglog.writer option

(** Write buffered trace records to disk. The engine calls this
    single-threaded at tick barriers (and at the end of a run), which
    keeps sharded runs deterministic — see DESIGN.md §15. *)
val flush_trace_log : t -> unit

(** Watchpoint: called for every local appearance of the tuple name. *)
val watch : t -> string -> (Tuple.t -> unit) -> unit

(** Install a parsed program: the semantic analyzer runs first (strict
    mode rejects on errors with {!Analysis.Rejected}, otherwise errors
    are logged), then materializations, facts (routed like any tuple,
    possibly remotely) and rules. *)
val install : t -> Ast.program -> unit

val install_text : t -> string -> unit

(** When true, [install] raises {!Analysis.Rejected} if the analyzer
    reports any error-level diagnostic. Default false: errors are
    logged on the [p2.analysis] source and installation proceeds. *)
val set_strict_install : t -> bool -> unit

val strict_install : t -> bool

(** Diagnostics from the most recent [install] on this node. *)
val last_diagnostics : t -> Analysis.diagnostic list

(** The analyzer environment this node's installs run under: catalog
    tables and consumed events from earlier piecemeal installs. *)
val analysis_env : t -> Analysis.env

(** Mint a node-unique tuple (registered with the tracer). *)
val create_tuple : t -> dst:string -> string -> Value.t list -> Tuple.t

(** Deliver a local tuple: watches, table insert or event strands. *)
val deliver : t -> Tuple.t -> unit

(** A tuple arrived from the network. [bytes] is the wire-frame size
    when the transport knows it (defaults to 0), credited to the
    node-wide and per-peer receive byte counters. *)
val receive :
  t ->
  ?bytes:int ->
  src:string ->
  src_tuple_id:int ->
  delete:bool ->
  name:string ->
  fields:Value.t list ->
  unit ->
  unit

(** Fire a periodic strand (engine timer callback). *)
val fire_periodic : t -> timer_request -> unit

(** Soft-state census (memory proxy inputs). *)

val live_tuples : t -> int
val live_bytes : t -> int

(** The node-local clock (simulation time + work offset). *)
val local_time : t -> float
