(* Rule compilation: trigger selection, delta rewriting, stage
   ordering, safety checks. *)

open Overlog
open Dataflow

let counter = ref 0

let compile ?(tables = []) src =
  let is_table name = List.mem name tables in
  let fresh_rule_id () =
    incr counter;
    Fmt.str "anon%d" !counter
  in
  match Parser.parse src with
  | [ Ast.Rule r ] -> Strand.compile ~is_table ~fresh_rule_id r
  | _ -> Alcotest.fail "expected one rule"

let trigger_kind (s : Strand.t) =
  match s.trigger with
  | Strand.Event a -> "event:" ^ a.pred
  | Strand.Periodic { period; _ } -> Fmt.str "periodic:%g" period
  | Strand.Table_delta a -> "delta:" ^ a.pred

let test_event_trigger () =
  match compile ~tables:[ "t" ] "r1 out@N(X) :- ev@N(X), t@N(X)." with
  | [ s ] ->
      Alcotest.(check string) "trigger" "event:ev" (trigger_kind s);
      Alcotest.(check int) "one join" 1 s.join_count;
      Alcotest.(check string) "rule id" "r1" s.rule_id
  | ss -> Alcotest.failf "expected 1 strand, got %d" (List.length ss)

let test_periodic_trigger () =
  match compile ~tables:[ "t" ] "r out@N() :- periodic@N(E, 5), t@N(X)." with
  | [ s ] -> Alcotest.(check string) "trigger" "periodic:5" (trigger_kind s)
  | _ -> Alcotest.fail "expected 1 strand"

let test_delta_rewriting () =
  (* all-table rule: one delta strand per body atom *)
  match compile ~tables:[ "a"; "b" ] "r out@N(X) :- a@N(X), b@N(X)." with
  | [ s1; s2 ] ->
      Alcotest.(check string) "delta a" "delta:a" (trigger_kind s1);
      Alcotest.(check string) "delta b" "delta:b" (trigger_kind s2);
      (* the non-trigger atom remains as a join *)
      Alcotest.(check int) "join in s1" 1 s1.join_count;
      Alcotest.(check int) "join in s2" 1 s2.join_count
  | ss -> Alcotest.failf "expected 2 strands, got %d" (List.length ss)

let test_two_events_rejected () =
  match compile "r out@N(X) :- ev1@N(X), ev2@N(X)." with
  | exception Strand.Compile_error _ -> ()
  | _ -> Alcotest.fail "two events must be rejected"

let test_no_predicates_rejected () =
  match compile "r out@N(X) :- X := 1." with
  | exception Strand.Compile_error _ -> ()
  | _ -> Alcotest.fail "no-predicate body must be rejected"

let test_unbound_head_rejected () =
  match compile "r out@N(X, Y) :- ev@N(X)." with
  | exception Strand.Compile_error _ -> ()
  | _ -> Alcotest.fail "unbound head var must be rejected"

let test_unbound_cond_rejected () =
  match compile "r out@N(X) :- ev@N(X), Y > 1." with
  | exception Strand.Compile_error _ -> ()
  | _ -> Alcotest.fail "unbound condition must be rejected"

let test_delete_head_pattern_allowed () =
  (* delete heads may mention unbound variables (wildcards) *)
  match compile ~tables:[ "t" ] "r delete t@N(X, Y) :- ev@N(X)." with
  | [ s ] -> Alcotest.(check bool) "delete" true s.head.hdelete
  | _ -> Alcotest.fail "expected 1 strand"

let test_condition_placement () =
  (* condition on trigger vars runs before the join; condition on join
     vars runs after *)
  match
    compile ~tables:[ "t" ] "r out@N(X, Y) :- ev@N(X), X > 0, t@N(Y), Y > X."
  with
  | [ s ] -> (
      match s.stages with
      | [ Strand.Select _; Strand.Join _; Strand.Select _ ] -> ()
      | _ ->
          Alcotest.failf "bad stage order: %d stages" (List.length s.stages))
  | _ -> Alcotest.fail "expected 1 strand"

let test_condition_reordered_for_delta () =
  (* when the delta trigger is the second atom, a condition written
     before it that uses first-atom vars must wait for the join *)
  match compile ~tables:[ "a"; "b" ] "r out@N(X, Y) :- a@N(X), X > 0, b@N(Y)." with
  | [ _s1; s2 ] -> (
      (* s2 is the delta on b: stages must be join(a) then select *)
      match s2.stages with
      | [ Strand.Join _; Strand.Select _ ] -> ()
      | _ -> Alcotest.fail "condition should be placed after join of a")
  | _ -> Alcotest.fail "expected 2 strands"

let test_assignment_binds () =
  match compile "r out@N(Z) :- ev@N(X), Z := X + 1." with
  | [ s ] -> (
      match s.stages with
      | [ Strand.Bind ("Z", _) ] -> ()
      | _ -> Alcotest.fail "expected bind stage")
  | _ -> Alcotest.fail "expected 1 strand"

let test_aggregate_plan () =
  match compile ~tables:[ "t" ] "r c@N(A, count<*>) :- t@N(A, B)." with
  | [ s ] -> (
      match s.aggregate with
      | Some plan ->
          Alcotest.(check bool) "count" true (plan.agg = Ast.Count);
          Alcotest.(check int) "group fields incl loc" 2
            (List.length plan.group_fields);
          (* aggregate delta strands rescan the trigger table *)
          Alcotest.(check int) "trigger atom kept as join" 1 s.join_count
      | None -> Alcotest.fail "expected aggregate")
  | _ -> Alcotest.fail "expected 1 strand"

let test_aggregate_event_trigger () =
  match
    compile ~tables:[ "t" ] "r c@N(count<*>) :- periodic@N(E, 60), t@N(A)."
  with
  | [ s ] ->
      Alcotest.(check bool) "agg" true (s.aggregate <> None);
      Alcotest.(check string) "periodic" "periodic:60" (trigger_kind s)
  | _ -> Alcotest.fail "expected 1 strand"

let test_two_aggregates_rejected () =
  match compile ~tables:[ "t" ] "r c@N(count<*>, max<A>) :- t@N(A)." with
  | exception Strand.Compile_error _ -> ()
  | _ -> Alcotest.fail "two aggregates must be rejected"

let test_periodic_requires_constant () =
  match compile "r out@N() :- periodic@N(E, T)." with
  | exception Strand.Compile_error _ -> ()
  | _ -> Alcotest.fail "variable period must be rejected"

let test_anonymous_rule_ids () =
  match compile "out@N(X) :- ev@N(X)." with
  | [ s ] -> Alcotest.(check bool) "generated id" true (String.length s.rule_id > 0)
  | _ -> Alcotest.fail "expected 1 strand"

let test_negation_not_trigger () =
  (* a rule whose only positive predicate is a table still gets delta
     strands on that table only; the negated atom is a check stage *)
  match compile ~tables:[ "a"; "b" ] "r out@N(X) :- a@N(X), !b@N(X)." with
  | [ s ] ->
      Alcotest.(check string) "delta on a" "delta:a" (trigger_kind s);
      (match s.stages with
      | [ Strand.Neg_join _ ] -> ()
      | _ -> Alcotest.fail "expected neg-join stage");
      Alcotest.(check int) "negation is not a join stage" 0 s.join_count
  | ss -> Alcotest.failf "expected 1 strand, got %d" (List.length ss)

let test_negation_binds_nothing () =
  (* variables appearing only under negation cannot be used in the head *)
  match compile ~tables:[ "b" ] "r out@N(Y) :- ev@N(X), !b@N(X, Y)." with
  | exception Strand.Compile_error _ -> ()
  | _ -> Alcotest.fail "negated atoms must not bind head variables"

let test_join_stage_numbering () =
  match
    compile ~tables:[ "a"; "b"; "c" ] "r out@N(X, Y, Z) :- ev@N(X), a@N(Y), b@N(Z), c@N(X)."
  with
  | [ s ] ->
      let jstages =
        List.filter_map
          (function Strand.Join { jstage; _ } -> Some jstage | _ -> None)
          s.stages
      in
      Alcotest.(check (list int)) "numbered in order" [ 0; 1; 2 ] jstages;
      Alcotest.(check int) "join count" 3 s.join_count
  | _ -> Alcotest.fail "expected 1 strand"

let () =
  Alcotest.run "strand"
    [
      ( "triggers",
        [
          Alcotest.test_case "event" `Quick test_event_trigger;
          Alcotest.test_case "periodic" `Quick test_periodic_trigger;
          Alcotest.test_case "delta rewriting" `Quick test_delta_rewriting;
          Alcotest.test_case "two events rejected" `Quick test_two_events_rejected;
          Alcotest.test_case "no predicates" `Quick test_no_predicates_rejected;
        ] );
      ( "safety",
        [
          Alcotest.test_case "unbound head" `Quick test_unbound_head_rejected;
          Alcotest.test_case "unbound cond" `Quick test_unbound_cond_rejected;
          Alcotest.test_case "delete patterns" `Quick test_delete_head_pattern_allowed;
          Alcotest.test_case "periodic constant" `Quick test_periodic_requires_constant;
        ] );
      ( "stages",
        [
          Alcotest.test_case "condition placement" `Quick test_condition_placement;
          Alcotest.test_case "delta reorder" `Quick test_condition_reordered_for_delta;
          Alcotest.test_case "assignment" `Quick test_assignment_binds;
          Alcotest.test_case "join numbering" `Quick test_join_stage_numbering;
          Alcotest.test_case "anonymous ids" `Quick test_anonymous_rule_ids;
          Alcotest.test_case "negation no trigger" `Quick test_negation_not_trigger;
          Alcotest.test_case "negation binds nothing" `Quick test_negation_binds_nothing;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "plan" `Quick test_aggregate_plan;
          Alcotest.test_case "event trigger" `Quick test_aggregate_event_trigger;
          Alcotest.test_case "two rejected" `Quick test_two_aggregates_rejected;
        ] );
    ]
