(** An epidemic (rumor-mongering) dissemination overlay in OverLog.

    The paper argues its techniques "apply equally well to other
    algorithms with distributed state and control" (§3); this second
    substrate exercises exactly that claim. The protocol is push
    gossip: a published item stays "hot" for a bounded time during
    which its holder re-offers it to its neighbors every round; a
    receiver that has never seen the item (negation) stores it, makes
    it hot in turn, and acknowledges the origin. The origin counts
    acknowledgements (aggregate) into a coverage table that a
    watchpoint rule can alarm on — a self-monitoring broadcast.

    Rules:
    - e1/e2: publish — store locally, mark hot;
    - e3: gossip every hot item to every neighbor each round;
    - e4/e5: first receipt — store, re-gossip, ack the origin
      (deduplicated with [!item(...)]), re-acking while hot so acks
      survive message loss;
    - e6: count distinct ack senders per item at the origin;
    - e7: lagging-coverage watchpoint, fired by the origin when an item
      older than the deadline has not reached the expected population. *)

open Overlog

type params = {
  t_gossip : float;  (* gossip round period *)
  hot_for : float;  (* how long an item keeps being re-offered *)
  coverage_deadline : float;  (* age after which coverage is checked *)
  expected : int;  (* population size the alarm compares against *)
}

let default_params =
  { t_gossip = 2.; hot_for = 10.; coverage_deadline = 30.; expected = 0 }

let program p =
  Fmt.str
    {|
/* ---------- epidemic dissemination ---------- */

materialize(peer, infinity, infinity, keys(1,2)).
materialize(item, infinity, infinity, keys(1,2)).
materialize(hot, %g, infinity, keys(1,2)).
materialize(ackSeen, infinity, infinity, keys(1,2,3)).
materialize(coverage, infinity, infinity, keys(1,2)).

e1 item@NAddr(ItemID, Payload, Origin, T) :- publish@NAddr(ItemID, Payload),
   Origin := NAddr, T := f_now().
e2 hot@NAddr(ItemID, Payload, Origin) :- publish@NAddr(ItemID, Payload),
   Origin := NAddr.

/* gossiping every hot item to every peer each round is the epidemic */
%%%% allow W511
e3 gossipMsg@PAddr(ItemID, Payload, Origin) :- periodic@NAddr(E, %g),
   hot@NAddr(ItemID, Payload, Origin), peer@NAddr(PAddr).

e4 infect@NAddr(ItemID, Payload, Origin) :- gossipMsg@NAddr(ItemID, Payload, Origin),
   !item@NAddr(ItemID, _, _, _).
e5a item@NAddr(ItemID, Payload, Origin, T) :- infect@NAddr(ItemID, Payload, Origin),
    T := f_now().
e5b hot@NAddr(ItemID, Payload, Origin) :- infect@NAddr(ItemID, Payload, Origin).
e5c ack@Origin(ItemID, NAddr) :- infect@NAddr(ItemID, Payload, Origin).
/* re-ack while the item is hot: an epidemic cannot rely on one ack
   message surviving a lossy network; the origin's ackSeen table
   deduplicates */
%%%% allow W511
e5d ack@Origin(ItemID, NAddr) :- periodic@NAddr(E, %g),
    hot@NAddr(ItemID, Payload, Origin), Origin != NAddr.

e6a ackSeen@NAddr(ItemID, Sender) :- ack@NAddr(ItemID, Sender).
e6b coverage@NAddr(ItemID, count<*>) :- ackSeen@NAddr(ItemID, Sender).

e7 lowCoverage@NAddr(ItemID, C) :- periodic@NAddr(E, %g),
   item@NAddr(ItemID, Payload, Origin, T), Origin == NAddr,
   T < f_now() - %g, coverage@NAddr(ItemID, C), C < %d.
|}
    p.hot_for p.t_gossip p.t_gossip p.coverage_deadline p.coverage_deadline
    (p.expected - 1)

type network = {
  engine : P2_runtime.Engine.t;
  addrs : string list;
  params : params;
}

(** Boot [n] nodes wired into a ring backbone plus random shortcut
    edges up to [degree] outgoing peers each. The backbone guarantees
    strong connectivity (a pure random out-digraph can leave nodes with
    no incoming edge at all); the shortcuts give the epidemic its
    logarithmic spread. *)
let boot ?(params = default_params) ?(prefix = "g") ?(degree = 3) ?(seed = 7) engine n
    =
  let params = { params with expected = n } in
  let addrs = List.init n (fun i -> Fmt.str "%s%d" prefix i) in
  let rng = Sim.Rng.create seed in
  let text = program params in
  List.iter
    (fun addr ->
      ignore (P2_runtime.Engine.add_node engine addr);
      P2_runtime.Engine.install engine addr text)
    addrs;
  List.iteri
    (fun i addr ->
      let peers = ref [ (i + 1) mod n ] in
      while List.length !peers < min degree (n - 1) do
        let j = Sim.Rng.int rng n in
        if j <> i && not (List.mem j !peers) then peers := j :: !peers
      done;
      List.iter
        (fun j ->
          P2_runtime.Engine.install engine addr
            (Fmt.str "peer@%s(%s)." addr (List.nth addrs j)))
        !peers)
    addrs;
  { engine; addrs; params }

(** Publish [payload] under [item_id] at [addr]. *)
let publish net ~addr ~item_id ~payload =
  ignore @@ P2_runtime.Engine.inject net.engine addr "publish"
    [ Value.VInt item_id; Value.VStr payload ]

(** Addresses that have stored the item. *)
let holders net ~item_id =
  List.filter
    (fun addr ->
      let node = P2_runtime.Engine.node net.engine addr in
      match Store.Catalog.find (P2_runtime.Node.catalog node) "item" with
      | Some table ->
          List.exists
            (fun t -> Value.equal (Tuple.field t 2) (Value.VInt item_id))
            (Store.Table.tuples table ~now:(P2_runtime.Engine.now net.engine))
      | None -> false)
    net.addrs

(** The origin's ack-based coverage count for an item (itself excluded). *)
let coverage net ~origin ~item_id =
  let node = P2_runtime.Engine.node net.engine origin in
  match Store.Catalog.find (P2_runtime.Node.catalog node) "coverage" with
  | Some table ->
      Store.Table.tuples table ~now:(P2_runtime.Engine.now net.engine)
      |> List.find_map (fun t ->
             if Value.equal (Tuple.field t 2) (Value.VInt item_id) then
               Some (Value.as_int (Tuple.field t 3))
             else None)
  | None -> None

(** Per-node receipt timestamps for an item (dissemination latency). *)
let receipt_times net ~item_id =
  List.filter_map
    (fun addr ->
      let node = P2_runtime.Engine.node net.engine addr in
      match Store.Catalog.find (P2_runtime.Node.catalog node) "item" with
      | Some table ->
          Store.Table.tuples table ~now:(P2_runtime.Engine.now net.engine)
          |> List.find_map (fun t ->
                 if Value.equal (Tuple.field t 2) (Value.VInt item_id) then
                   Some (addr, Value.as_float (Tuple.field t 5))
                 else None)
      | None -> None)
    net.addrs
