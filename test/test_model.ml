(* Heavier property suites:
   - model-based checking of Table against a reference implementation
     under random operation sequences;
   - engine-level equivalence of the two strand-scheduling modes;
   - Chord ring convergence across seeds. *)

open Overlog

(* --- model-based table test --- *)

(* Reference model: assoc list keyed by canonical key, storing
   (tuple, inserted_at). Mirrors lifetime + key semantics (no caps). *)
module Model = struct
  type t = { lifetime : float; mutable rows : (string * (Tuple.t * float)) list }

  let create lifetime = { lifetime; rows = [] }

  let key tuple =
    String.concat "\x00" (List.map Value.canonical_key (Tuple.key_of tuple [ 1; 2 ]))

  let expire m now =
    m.rows <- List.filter (fun (_, (_, t0)) -> now -. t0 <= m.lifetime) m.rows

  let insert m now tuple =
    expire m now;
    m.rows <- (key tuple, (tuple, now)) :: List.remove_assoc (key tuple) m.rows

  let delete m now tuple =
    expire m now;
    m.rows <- List.remove_assoc (key tuple) m.rows

  let contents m now =
    expire m now;
    List.map (fun (_, (t, _)) -> Tuple.to_string t) m.rows |> List.sort compare
end

type op = Insert of int * int | Delete of int | Advance of float

let gen_ops =
  QCheck.Gen.(
    list_size (int_bound 60)
      (frequency
         [
           (5, map2 (fun k v -> Insert (k, v)) (int_bound 8) (int_bound 20));
           (2, map (fun k -> Delete k) (int_bound 8));
           (2, map (fun dt -> Advance (float_of_int dt /. 2.)) (int_bound 12));
         ]))

let mk_tuple k v = Tuple.make "t" [ Value.VAddr "n"; Value.VInt k; Value.VInt v ]

let prop_table_matches_model =
  QCheck.Test.make ~name:"table = reference model" ~count:300 (QCheck.make gen_ops)
    (fun ops ->
      let table = Store.Table.create ~lifetime:5. ~keys:[ 1; 2 ] "t" in
      let model = Model.create 5. in
      let now = ref 0. in
      List.iter
        (fun op ->
          match op with
          | Insert (k, v) ->
              ignore (Store.Table.insert table ~now:!now (mk_tuple k v));
              Model.insert model !now (mk_tuple k v)
          | Delete k ->
              (* pattern delete on the key field *)
              ignore
                (Store.Table.delete_where table ~now:!now (fun t ->
                     Value.equal (Tuple.field t 2) (Value.VInt k)));
              Model.delete model !now (mk_tuple k 0)
          | Advance dt -> now := !now +. dt)
        ops;
      let actual =
        Store.Table.tuples table ~now:!now
        |> List.map Tuple.to_string |> List.sort compare
      in
      actual = Model.contents model !now)

(* --- scheduling-mode equivalence at the engine level --- *)

let run_mode mode =
  let engine = P2_runtime.Engine.create ~seed:17 () in
  ignore (P2_runtime.Engine.add_node engine "a");
  let node = P2_runtime.Engine.node engine "a" in
  Dataflow.Machine.set_mode (P2_runtime.Node.machine node) mode;
  P2_runtime.Engine.install engine "a"
    {|
materialize(a, infinity, infinity, keys(1,2)).
materialize(b, infinity, infinity, keys(1,2,3)).
materialize(outt, infinity, infinity, keys(1,2,3,4)).
r1 outt@N(X, Y, Z) :- ev@N(X), a@N(Y), b@N(Y, Z).
|};
  P2_runtime.Engine.install engine "a"
    "a@a(1). a@a(2). b@a(1, 10). b@a(1, 11). b@a(2, 20).";
  P2_runtime.Engine.run_for engine 1.;
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 7 ];
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 8 ];
  P2_runtime.Engine.run_for engine 1.;
  match Store.Catalog.find (P2_runtime.Node.catalog node) "outt" with
  | Some t ->
      Store.Table.tuples t ~now:(P2_runtime.Engine.now engine)
      |> List.map Tuple.to_string |> List.sort compare
  | None -> []

let test_modes_equivalent () =
  let dfs = run_mode Dataflow.Machine.Depth_first in
  let bfs = run_mode Dataflow.Machine.Breadth_first in
  Alcotest.(check int) "six results" 6 (List.length dfs);
  Alcotest.(check (list string)) "modes derive the same facts" dfs bfs

(* --- chord convergence across seeds --- *)

let test_chord_converges_across_seeds () =
  List.iter
    (fun seed ->
      let engine = P2_runtime.Engine.create ~seed () in
      let net = Chord.boot engine 8 in
      P2_runtime.Engine.run_for engine 150.;
      Alcotest.(check bool) (Fmt.str "seed %d converges" seed) true
        (Chord.ring_correct net))
    [ 2; 4; 6; 8; 10 ]

let test_chord_converges_with_loss () =
  (* with 5% message loss, occasional triple ping losses cause spurious
     faulty declarations and transient churn; the ring must keep
     returning to a correct state *)
  let engine = P2_runtime.Engine.create ~seed:5 ~loss_rate:0.05 () in
  let net = Chord.boot engine 8 in
  P2_runtime.Engine.run_for engine 150.;
  let correct_epochs = ref 0 in
  for _ = 1 to 20 do
    P2_runtime.Engine.run_for engine 10.;
    if Chord.ring_correct net then incr correct_epochs
  done;
  Alcotest.(check bool)
    (Fmt.str "ring mostly correct under loss (%d/20 epochs)" !correct_epochs)
    true
    (!correct_epochs >= 12)

let () =
  Alcotest.run "model"
    [
      ("table", [ QCheck_alcotest.to_alcotest prop_table_matches_model ]);
      ( "scheduling",
        [ Alcotest.test_case "dfs = bfs" `Quick test_modes_equivalent ] );
      ( "chord",
        [
          Alcotest.test_case "multi-seed convergence" `Slow
            test_chord_converges_across_seeds;
          Alcotest.test_case "converges with loss" `Slow test_chord_converges_with_loss;
        ] );
    ]
