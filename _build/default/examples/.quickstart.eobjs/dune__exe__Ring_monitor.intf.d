examples/ring_monitor.mli:
