(** Priority queue of timestamped events. Ties are broken by insertion
    order, keeping simulations deterministic and same-time deliveries
    on one channel FIFO. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Raises on NaN times. *)
val schedule : 'a t -> time:float -> 'a -> unit

val peek : 'a t -> (float * 'a) option
val pop : 'a t -> (float * 'a) option

(** Like {!pop}, also exposing the entry's insertion sequence number —
    the deterministic tie-break key. The sharded engine tags deferred
    cross-shard effects with it so barriers can replay them in an
    order independent of the shard count. *)
val pop_entry : 'a t -> (float * int * 'a) option
