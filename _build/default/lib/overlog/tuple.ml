(** OverLog tuples: a relation name plus a field vector.

    By P2 convention field 1 (index 0) is the location specifier — the
    address of the node where the tuple lives or must be delivered.
    Tuples are immutable; each carries a node-unique [id] assigned when
    it is first created on a node (used by the tracer to memoize tuples
    in the [tupleTable], paper §2.1.3). *)

type t = { name : string; fields : Value.t array; id : int }

let anonymous_id = -1

let make ?(id = anonymous_id) name fields = { name; fields = Array.of_list fields; id }
let make_arr ?(id = anonymous_id) name fields = { name; fields; id }

let name t = t.name
let id t = t.id
let with_id t id = { t with id }
let arity t = Array.length t.fields
let fields t = Array.to_list t.fields

(* 1-indexed field access, matching the paper's keys(...) convention. *)
let field t i =
  if i < 1 || i > Array.length t.fields then
    invalid_arg (Fmt.str "Tuple.field %d of %s/%d" i t.name (Array.length t.fields))
  else t.fields.(i - 1)

let location t =
  if Array.length t.fields = 0 then
    invalid_arg (Fmt.str "Tuple.location: %s has no fields" t.name)
  else Value.as_addr t.fields.(0)

let equal_contents t1 t2 =
  String.equal t1.name t2.name
  && Array.length t1.fields = Array.length t2.fields
  && Array.for_all2 Value.equal t1.fields t2.fields

let compare_contents t1 t2 =
  match String.compare t1.name t2.name with
  | 0 -> List.compare Value.compare (fields t1) (fields t2)
  | c -> c

let pp ppf t =
  Fmt.pf ppf "%s(%a)" t.name (Fmt.list ~sep:(Fmt.any ", ") Value.pp) (fields t)

let to_string t = Fmt.str "%a" pp t

(* Key extraction for primary-key semantics: positions are 1-indexed
   over all fields (including the location). *)
let key_of t positions =
  List.map
    (fun i ->
      if i < 1 || i > Array.length t.fields then Value.VNull else t.fields.(i - 1))
    positions

let size_bytes t =
  24 + String.length t.name
  + Array.fold_left (fun acc v -> acc + Value.size_bytes v) 0 t.fields
