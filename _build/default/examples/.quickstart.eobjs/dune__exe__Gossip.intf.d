examples/gossip.mli:
