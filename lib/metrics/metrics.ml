(** Runtime self-metrics: cheap counters, gauges and fixed-bucket
    histograms, plus a per-node registry that snapshots them as a
    deterministic, sorted name/value list.

    The paper's thesis is that a P2 node's own state should be
    queryable like application state (§2.1); this module supplies the
    raw numbers that [P2_runtime.P2stats] reflects back into the
    node's catalog as [p2Stats] tuples. Everything here is synchronous
    and allocation-free on the update path — a counter bump is a
    single unboxed int increment — so instrumentation can stay
    always-on in the hot paths (agenda execution, table probes, wire
    send/receive) without moving the calibrated work-unit model.

    Nothing in this module reads the OS clock or any other ambient
    state: values change only when the runtime explicitly updates
    them, so metric snapshots are bit-for-bit reproducible across
    runs, exactly like the rest of the simulation. *)

(** Monotone event counter. *)
module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let value t = t.n
end

(** Instantaneous level; also usable as a high-water mark via
    {!max_of}. *)
module Gauge = struct
  type t = { mutable v : float }

  let create () = { v = 0. }
  let set t v = t.v <- v
  let add t dv = t.v <- t.v +. dv

  (** Raise the gauge to [v] if [v] exceeds the current value. *)
  let max_of t v = if v > t.v then t.v <- v

  let value t = t.v
end

(** Fixed-bucket histogram: cumulative-free bucket counts over strictly
    increasing upper bounds, plus count/sum/max. Observations above the
    last bound land in an implicit overflow bucket. The default bounds
    are powers of two from 1 to 2{^20}, which covers agenda drain sizes
    and microsecond-scale work latencies with 21 buckets. *)
module Histogram = struct
  type t = {
    bounds : float array;  (* strictly increasing upper bounds *)
    counts : int array;  (* length bounds + 1; last = overflow *)
    mutable count : int;
    mutable sum : float;
    mutable max : float;
  }

  let default_bounds = Array.init 21 (fun i -> Float.of_int (1 lsl i))

  let create ?(bounds = default_bounds) () =
    if Array.length bounds = 0 then invalid_arg "Histogram.create: no buckets";
    Array.iteri
      (fun i b ->
        if i > 0 && b <= bounds.(i - 1) then
          invalid_arg "Histogram.create: bounds must increase strictly")
      bounds;
    {
      bounds;
      counts = Array.make (Array.length bounds + 1) 0;
      count = 0;
      sum = 0.;
      max = 0.;
    }

  (* First bucket whose upper bound admits [v], by binary search; the
     overflow bucket is [Array.length bounds]. *)
  let bucket_of t v =
    let n = Array.length t.bounds in
    if v > t.bounds.(n - 1) then n
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if v <= t.bounds.(mid) then hi := mid else lo := mid + 1
      done;
      !lo
    end

  let observe t v =
    let b = bucket_of t v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v > t.max then t.max <- v

  let count t = t.count
  let sum t = t.sum
  let max_value t = t.max
  let mean t = if t.count = 0 then 0. else t.sum /. Float.of_int t.count

  (** Upper bound of the smallest bucket at or past quantile [q] of the
      observations (0 for an empty histogram). Overflow observations
      report the exact maximum seen rather than infinity, so the answer
      is always a value that actually bounds the data. *)
  let quantile t q =
    if t.count = 0 then 0.
    else begin
      let rank = Float.to_int (ceil (q *. Float.of_int t.count)) in
      let rank = if rank < 1 then 1 else rank in
      let acc = ref 0 and answer = ref t.max in
      (try
         Array.iteri
           (fun i c ->
             acc := !acc + c;
             if !acc >= rank then begin
               (if i < Array.length t.bounds then answer := t.bounds.(i));
               raise Exit
             end)
           t.counts
       with Exit -> ());
      !answer
    end

  (** (upper bound, observations in bucket) pairs, overflow last with
      bound [infinity]. *)
  let buckets t =
    Array.to_list
      (Array.mapi
         (fun i c ->
           ((if i < Array.length t.bounds then t.bounds.(i) else infinity), c))
         t.counts)
end

type kind = KCounter | KGauge

type sample = { name : string; kind : kind; value : float }

(* Registered metrics are (name, kind, reader) rows; readers are
   closures so gauges can report live values (agenda depth, table
   sizes) without the registry polling anything eagerly. *)
type t = { mutable entries : (string * kind * (unit -> float)) list }

let create () = { entries = [] }

let register t name kind read =
  if List.exists (fun (n, _, _) -> String.equal n name) t.entries then
    invalid_arg (Fmt.str "Metrics.register: duplicate metric %s" name);
  t.entries <- (name, kind, read) :: t.entries

let counter t name =
  let c = Counter.create () in
  register t name KCounter (fun () -> Float.of_int (Counter.value c));
  c

let attach_counter t name c =
  register t name KCounter (fun () -> Float.of_int (Counter.value c))

let gauge t name read = register t name KGauge read

(** Register one histogram as five derived scalars:
    [name.count], [name.sum], [name.max], [name.p50], [name.p99]. *)
let attach_histogram t name h =
  register t (name ^ ".count") KCounter (fun () ->
      Float.of_int (Histogram.count h));
  register t (name ^ ".sum") KCounter (fun () -> Histogram.sum h);
  gauge t (name ^ ".max") (fun () -> Histogram.max_value h);
  gauge t (name ^ ".p50") (fun () -> Histogram.quantile h 0.50);
  gauge t (name ^ ".p99") (fun () -> Histogram.quantile h 0.99)

let names t =
  List.sort String.compare (List.map (fun (n, _, _) -> n) t.entries)

(** Evaluate every registered metric, sorted by name — the registry's
    canonical, deterministic order. *)
let snapshot t =
  t.entries
  |> List.map (fun (name, kind, read) -> { name; kind; value = read () })
  |> List.sort (fun a b -> String.compare a.name b.name)

let value t name =
  List.find_map
    (fun (n, _, read) -> if String.equal n name then Some (read ()) else None)
    t.entries

(* --- JSON ----------------------------------------------------------- *)

(* Counters and most gauges are integral; print them without a
   fractional part so the output is friendly to strict JSON parsers
   and to humans diffing two dumps. *)
let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Fmt.str "%.0f" v
  else Fmt.str "%.17g" v

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** One flat JSON object mapping metric names to numbers, in snapshot
    (sorted) order. *)
let json_of_samples samples =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i { name; value; _ } ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Fmt.str "\"%s\": %s" (json_escape name) (json_float value)))
    samples;
  Buffer.add_char buf '}';
  Buffer.contents buf
