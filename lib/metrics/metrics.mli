(** Runtime self-metrics: cheap counters, gauges and fixed-bucket
    histograms, plus a registry that snapshots them as a deterministic
    sorted name/value list.

    Updates are single unboxed increments, so instrumentation stays
    always-on in hot paths. Nothing reads ambient state: snapshots are
    bit-for-bit reproducible, like the rest of the simulation. The
    per-node registry is reflected into the catalog as [p2Stats]
    tuples by [P2_runtime.P2stats]; the metric names and their
    meanings are catalogued in [docs/OPERATIONS.md]. *)

(** Monotone event counter. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

(** Instantaneous level; also usable as a high-water mark. *)
module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val add : t -> float -> unit

  (** Raise the gauge to the given value if it exceeds the current
      one. *)
  val max_of : t -> float -> unit

  val value : t -> float
end

(** Fixed-bucket histogram over strictly increasing upper bounds with
    an implicit overflow bucket, tracking count, sum and max. *)
module Histogram : sig
  type t

  (** Powers of two from 1 to 2{^20}: 21 buckets covering agenda drain
      sizes and microsecond-scale work latencies. *)
  val default_bounds : float array

  (** Raises [Invalid_argument] if [bounds] is empty or not strictly
      increasing. *)
  val create : ?bounds:float array -> unit -> t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val max_value : t -> float
  val mean : t -> float

  (** Upper bound of the smallest bucket at or past quantile [q] of
      the observations; 0 for an empty histogram. Overflow
      observations report the exact maximum seen. *)
  val quantile : t -> float -> float

  (** (upper bound, observations) pairs, the overflow bucket last with
      bound [infinity]. *)
  val buckets : t -> (float * int) list
end

type kind = KCounter | KGauge

type sample = { name : string; kind : kind; value : float }

(** A named-metric registry (one per node). *)
type t

val create : unit -> t

(** Register a read closure under a name. Raises [Invalid_argument] on
    a duplicate name. *)
val register : t -> string -> kind -> (unit -> float) -> unit

(** Create and register a counter in one step. *)
val counter : t -> string -> Counter.t

(** Register an existing counter under a name. *)
val attach_counter : t -> string -> Counter.t -> unit

(** Register a live-value gauge backed by a closure. *)
val gauge : t -> string -> (unit -> float) -> unit

(** Register one histogram as five derived scalars: [name.count],
    [name.sum], [name.max], [name.p50], [name.p99]. *)
val attach_histogram : t -> string -> Histogram.t -> unit

(** All registered names, sorted. *)
val names : t -> string list

(** Evaluate every registered metric, sorted by name — the registry's
    canonical, deterministic order. *)
val snapshot : t -> sample list

val value : t -> string -> float option

(** One flat JSON object mapping metric names to numbers, in snapshot
    order. Counters print without a fractional part. *)
val json_of_samples : sample list -> string
