(* Chandy–Lamport consistent snapshots (§3.3): termination, state
   capture, global checks over the snapshot, snapshot lookups, and
   consistency of the cut under concurrent traffic. *)

open Overlog

let boot ?(seed = 11) ?(n = 8) ?(settle = 150.) () =
  let engine = P2_runtime.Engine.create ~seed ~trace:false () in
  let net = Chord.boot engine n in
  P2_runtime.Engine.run_for engine settle;
  (engine, net)

let test_snapshot_terminates () =
  let engine, net = boot () in
  let snap = Core.Snapshot.install net in
  (* let backPointer tables populate from ping traffic *)
  P2_runtime.Engine.run_for engine 20.;
  Core.Snapshot.trigger snap ~id:1;
  P2_runtime.Engine.run_for engine 30.;
  List.iter
    (fun addr ->
      Alcotest.(check (option string))
        (addr ^ " snapshot done") (Some "Done")
        (Core.Snapshot.state_of snap addr ~id:1))
    net.addrs;
  Alcotest.(check bool) "all_done" true (Core.Snapshot.all_done snap ~id:1)

let test_snapshot_captures_state () =
  let engine, net = boot () in
  let snap = Core.Snapshot.install net in
  P2_runtime.Engine.run_for engine 20.;
  Core.Snapshot.trigger snap ~id:1;
  P2_runtime.Engine.run_for engine 30.;
  List.iter
    (fun addr ->
      match Core.Snapshot.snapped_best_succ snap addr ~id:1 with
      | Some (saddr, _) ->
          (* on a stable ring the snapped successor equals the live one *)
          let live = Option.map snd (Chord.best_succ net addr) in
          Alcotest.(check (option string)) (addr ^ " snapped = live") live (Some saddr)
      | None -> Alcotest.failf "%s: no snapped bestSucc" addr)
    net.addrs;
  List.iter
    (fun addr ->
      Alcotest.(check bool) (addr ^ " snapped pred") true
        (Core.Snapshot.snapped_pred snap addr ~id:1 <> None))
    net.addrs

let test_snapshot_global_ring_check () =
  let engine, net = boot () in
  let snap = Core.Snapshot.install net in
  P2_runtime.Engine.run_for engine 20.;
  Core.Snapshot.trigger snap ~id:1;
  P2_runtime.Engine.run_for engine 30.;
  Alcotest.(check bool) "snapped ring is a correct ring" true
    (Core.Snapshot.snapped_ring_correct snap ~id:1)

let test_periodic_snapshots () =
  let engine, net = boot () in
  let snap = Core.Snapshot.install ~t_snap:20. net in
  P2_runtime.Engine.run_for engine 90.;
  (* several snapshot ids must exist and be done *)
  let done_count =
    List.length
      (List.filter
         (fun id -> Core.Snapshot.all_done snap ~id)
         [ 1; 2; 3 ])
  in
  Alcotest.(check bool) "at least two periodic snapshots completed" true
    (done_count >= 2)

let test_snapshot_lookup () =
  let engine, net = boot () in
  let snap = Core.Snapshot.install net in
  P2_runtime.Engine.run_for engine 20.;
  Core.Snapshot.trigger snap ~id:1;
  P2_runtime.Engine.run_for engine 30.;
  (* lookups over the snapped state find the true successor *)
  let results = ref [] in
  List.iter
    (fun a ->
      P2_runtime.Engine.watch engine a "sLookupResults" (fun t ->
          results := (a, Value.as_addr (Tuple.field t 5)) :: !results))
    net.addrs;
  let key = 987654 in
  List.iteri
    (fun i addr -> Core.Snapshot.lookup snap ~addr ~id:1 ~key ~req_id:(2000 + i) ())
    net.addrs;
  P2_runtime.Engine.run_for engine 5.;
  let truth = Chord.true_successor net key in
  Alcotest.(check int) "all snapshot lookups answered" (List.length net.addrs)
    (List.length !results);
  List.iter
    (fun (_, ans) -> Alcotest.(check string) "snap lookup correct" truth ans)
    !results

let test_snapshot_consistency_under_churn () =
  (* The crucial global property: even with joins happening during the
     snapshot, the snapped successor pointers form a consistent cut —
     every address referenced as a snapped successor also produced a
     snapshot. *)
  let engine, net = boot ~seed:23 ~n:10 () in
  let snap = Core.Snapshot.install net in
  P2_runtime.Engine.run_for engine 20.;
  (* fire lookups continuously while the snapshot propagates *)
  List.iteri
    (fun i addr ->
      P2_runtime.Engine.at engine
        ~time:(P2_runtime.Engine.now engine +. (0.01 *. float_of_int i))
        (fun () -> Chord.lookup net ~addr ~key:(i * 1000) ~req_id:(3000 + i) ()))
    net.addrs;
  Core.Snapshot.trigger snap ~id:1;
  P2_runtime.Engine.run_for engine 30.;
  Alcotest.(check bool) "terminates under traffic" true
    (Core.Snapshot.all_done snap ~id:1);
  List.iter
    (fun addr ->
      match Core.Snapshot.snapped_best_succ snap addr ~id:1 with
      | Some (saddr, _) ->
          Alcotest.(check bool)
            (Fmt.str "snapped succ %s of %s also snapped" saddr addr)
            true
            (Core.Snapshot.state_of snap saddr ~id:1 <> None)
      | None -> Alcotest.failf "%s missing snapped succ" addr)
    net.addrs

let test_backpointers_populated () =
  let engine, net = boot () in
  ignore (Core.Snapshot.install net);
  P2_runtime.Engine.run_for engine 20.;
  (* every node should know at least one incoming link *)
  List.iter
    (fun addr ->
      let node = P2_runtime.Engine.node engine addr in
      let size =
        match Store.Catalog.find (P2_runtime.Node.catalog node) "backPointer" with
        | Some t -> Store.Table.size t ~now:(P2_runtime.Engine.now engine)
        | None -> 0
      in
      Alcotest.(check bool) (addr ^ " has backpointers") true (size >= 1))
    net.addrs

let test_second_snapshot_independent () =
  let engine, net = boot () in
  let snap = Core.Snapshot.install net in
  P2_runtime.Engine.run_for engine 20.;
  Core.Snapshot.trigger snap ~id:1;
  P2_runtime.Engine.run_for engine 30.;
  Core.Snapshot.trigger snap ~id:2;
  P2_runtime.Engine.run_for engine 30.;
  Alcotest.(check bool) "snap 1 done" true (Core.Snapshot.all_done snap ~id:1);
  Alcotest.(check bool) "snap 2 done" true (Core.Snapshot.all_done snap ~id:2);
  (* both snapshots retain distinct state rows *)
  List.iter
    (fun addr ->
      Alcotest.(check bool) "snap1 state" true
        (Core.Snapshot.snapped_best_succ snap addr ~id:1 <> None);
      Alcotest.(check bool) "snap2 state" true
        (Core.Snapshot.snapped_best_succ snap addr ~id:2 <> None))
    net.addrs

let () =
  Alcotest.run "snapshot"
    [
      ( "chandy-lamport",
        [
          Alcotest.test_case "terminates" `Slow test_snapshot_terminates;
          Alcotest.test_case "captures state" `Slow test_snapshot_captures_state;
          Alcotest.test_case "global ring check" `Slow test_snapshot_global_ring_check;
          Alcotest.test_case "periodic" `Slow test_periodic_snapshots;
          Alcotest.test_case "backpointers" `Slow test_backpointers_populated;
          Alcotest.test_case "two snapshots" `Slow test_second_snapshot_independent;
        ] );
      ( "snapshot queries",
        [
          Alcotest.test_case "snapshot lookups" `Slow test_snapshot_lookup;
          Alcotest.test_case "consistent under churn" `Slow test_snapshot_consistency_under_churn;
        ] );
    ]
