(** Ring well-formedness detectors (paper §3.1.1).

    Chord's correctness relies on every node being its successor's
    predecessor and vice versa. Two detectors:

    - {b Active probing} (rules rp1–rp3): each node periodically asks
      its predecessor for the predecessor's best successor; a mismatch
      raises [inconsistentPred].
    - {b Passive checking} (rule rp4): piggybacks on Chord's own
      stabilization traffic — if a [stabilizeRequest] arrives from a
      node other than the current predecessor, the ring link is
      inconsistent. Detection latency is bounded by the stabilization
      period instead of the probe period, at zero message cost. *)

(** Active-probe program; [t_probe] is the probing period. Our
    [inconsistentPred] carries the offending addresses for forensics
    (the paper's version had no payload). Rules rp5–rp7 are the
    symmetric successor-side check the paper alludes to ("similar
    rules can also check that a node is its immediate successor's
    predecessor") — it is the one that catches one-way partitions. *)
let active_program ?(t_probe = 10.) () =
  Fmt.str
    {|
rp1 reqBestSucc@PAddr(NAddr) :- periodic@NAddr(E, %g), pred@NAddr(PID, PAddr),
    PAddr != "-".
rp2 respBestSucc@ReqAddr(NAddr, SAddr) :- reqBestSucc@NAddr(ReqAddr),
    bestSucc@NAddr(SID, SAddr).
rp3 inconsistentPred@NAddr(PAddr, Successor) :- respBestSucc@NAddr(PAddr, Successor),
    pred@NAddr(PID, PAddr), Successor != NAddr.

rp5 reqPred@SAddr(NAddr) :- periodic@NAddr(E, %g), bestSucc@NAddr(SID, SAddr),
    SAddr != NAddr.
rp6 respPred@ReqAddr(NAddr, PAddr) :- reqPred@NAddr(ReqAddr), pred@NAddr(PID, PAddr).
rp7 inconsistentSucc@NAddr(SAddr, PredSeen) :- respPred@NAddr(SAddr, PredSeen),
    bestSucc@NAddr(SID, SAddr), PredSeen != NAddr.
|}
    t_probe t_probe

(** Passive check: reuses stabilization semantics, no extra messages. *)
let passive_program =
  {|
rp4 inconsistentPred@NAddr(SomeAddr, PAddr) :- stabilizeRequest@NAddr(SomeID, SomeAddr),
    pred@NAddr(PID, PAddr), PAddr != "-", SomeAddr != PAddr.
|}

type collectors = {
  pred_alarms : Alarms.collector;  (* inconsistentPred (rp3, rp4) *)
  succ_alarms : Alarms.collector;  (* inconsistentSucc (rp7) *)
}

(** Install the detector on every node of a Chord network and return
    collectors for both alarm kinds. *)
let install ?(active = true) ?(passive = false) ?t_probe (net : Chord.network) =
  if active then
    P2_runtime.Engine.install_all net.engine (active_program ?t_probe ());
  if passive then P2_runtime.Engine.install_all net.engine passive_program;
  {
    pred_alarms = Alarms.collect net.engine "inconsistentPred";
    succ_alarms = Alarms.collect net.engine "inconsistentSucc";
  }
