test/test_value.ml: Alcotest Bool List Overlog QCheck QCheck_alcotest Ring Tuple Value
