(** Deterministic pseudo-random number generator (splitmix64).

    The simulator never touches the OS RNG: every run is a pure
    function of its seed, which is what lets the benches report honest
    averages over three seeded runs (paper §4 methodology). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* mask to OCaml's non-negative int range: Int64.to_int keeps the low
     63 bits, which can set the sign bit *)
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let bool t = float t < 0.5

(** Split off an independent stream (for per-node RNGs). *)
let split t =
  let seed = Int64.to_int (next_int64 t) land max_int in
  create seed
