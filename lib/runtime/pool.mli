(** Process-wide persistent domain pool used by the sharded engine.

    Jobs are independent thunks; [run] blocks until all complete.
    Job 0 always executes on the calling domain. With fewer cores than
    jobs, several jobs share a worker — placement affects wall-clock
    only, never results (the engine replays shard effects in a
    canonical order at its barrier). *)

(** Run all jobs to completion; re-raises the first job failure after
    every worker has quiesced. *)
val run : (unit -> unit) array -> unit

(** Live worker-domain count (0 on single-core hosts: every job then
    runs on the calling domain). *)
val size : unit -> int

(** Upper bound on pool workers ([recommended_domain_count - 1],
    capped). *)
val max_workers : int

(** Join all worker domains (also registered via [at_exit]). *)
val shutdown : unit -> unit
