lib/dataflow/strand.mli: Ast Fmt Overlog
