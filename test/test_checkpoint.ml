(* Durable checkpoints (lib/core/checkpoint) and crash-restart
   recovery (Engine.restart): snapshot round-trips, retention,
   damage fallback, atomicity guarantees, hard-state restoration on
   restart, and the cross-shard byte-identity of seeded checkpoint
   streams. *)

open Overlog
module Engine = P2_runtime.Engine

let tmpdir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "p2ck-test-%d-%d" (Unix.getpid ()) !n)
    in
    let rec rm path =
      match Unix.lstat path with
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
      | { Unix.st_kind = Unix.S_DIR; _ } ->
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          (try Unix.rmdir path with Unix.Unix_error _ -> ())
      | _ -> ( try Sys.remove path with Sys_error _ -> ())
    in
    rm d;
    d

let tuple name fields = Tuple.make name fields

let tables =
  [
    ( "bestSucc",
      [ tuple "bestSucc" [ Value.VStr "n1"; Value.VInt 42; Value.VStr "n2" ] ] );
    ( "node",
      [ tuple "node" [ Value.VStr "n1"; Value.VInt 7 ] ] );
  ]

(* --- format --- *)

let test_roundtrip () =
  let dir = tmpdir () in
  let w = Checkpoint.create ~dir () in
  let path = Checkpoint.write w ~stamp:12.5 ~tables in
  Checkpoint.close w;
  match Checkpoint.read path with
  | Error e -> Alcotest.fail e
  | Ok snap ->
      Alcotest.(check (float 0.)) "stamp preserved" 12.5 snap.Checkpoint.stamp;
      Alcotest.(check int) "two tables" 2 (List.length snap.Checkpoint.tables);
      let t = List.hd snap.Checkpoint.tables in
      Alcotest.(check string) "table name" "bestSucc" t.Checkpoint.name;
      let m = List.hd t.Checkpoint.rows in
      Alcotest.(check string) "tuple name" "bestSucc" m.Wire.name;
      Alcotest.(check bool) "fields preserved" true
        (m.Wire.fields
        = [ Value.VStr "n1"; Value.VInt 42; Value.VStr "n2" ])

let test_numbering_and_latest () =
  let dir = tmpdir () in
  let w = Checkpoint.create ~dir () in
  ignore (Checkpoint.write w ~stamp:1. ~tables);
  ignore (Checkpoint.write w ~stamp:2. ~tables);
  Checkpoint.close w;
  (* a re-opened writer continues the numbering *)
  let w2 = Checkpoint.create ~dir () in
  ignore (Checkpoint.write w2 ~stamp:3. ~tables);
  Checkpoint.close w2;
  let files = Checkpoint.files ~dir in
  Alcotest.(check (list int)) "indices continue across reopen" [ 0; 1; 2 ]
    (List.map fst files);
  match Checkpoint.latest ~dir with
  | Some s -> Alcotest.(check (float 0.)) "latest is newest" 3. s.Checkpoint.stamp
  | None -> Alcotest.fail "no latest snapshot"

let test_retention () =
  let dir = tmpdir () in
  let w =
    Checkpoint.create
      ~config:{ Checkpoint.default_config with retain = Some 2 }
      ~dir ()
  in
  for i = 1 to 5 do
    ignore (Checkpoint.write w ~stamp:(float_of_int i) ~tables)
  done;
  let st = Checkpoint.stats w in
  Checkpoint.close w;
  Alcotest.(check int) "retention deleted the oldest" 3
    st.Checkpoint.retention_drops;
  Alcotest.(check (list int)) "newest two remain" [ 3; 4 ]
    (List.map fst (Checkpoint.files ~dir))

let test_damage_fallback () =
  let dir = tmpdir () in
  let w = Checkpoint.create ~dir () in
  ignore (Checkpoint.write w ~stamp:1. ~tables);
  let newest = Checkpoint.write w ~stamp:2. ~tables in
  Checkpoint.close w;
  (* flip one body byte of the newest snapshot *)
  let oc = open_out_gen [ Open_binary; Open_wronly ] 0o644 newest in
  seek_out oc 60;
  output_char oc '\xff';
  close_out oc;
  (match Checkpoint.read newest with
  | Ok _ -> Alcotest.fail "corrupted snapshot read back as intact"
  | Error _ -> ());
  (match Checkpoint.latest ~dir with
  | Some s ->
      Alcotest.(check (float 0.)) "latest skips the damaged newest" 1.
        s.Checkpoint.stamp
  | None -> Alcotest.fail "older intact snapshot not found");
  let infos = Checkpoint.inventory ~dir in
  Alcotest.(check int) "inventory lists both" 2 (List.length infos);
  Alcotest.(check (list bool)) "inventory flags exactly the damaged one"
    [ true; false ]
    (List.map (fun i -> i.Checkpoint.i_ok) infos)

let test_no_tmp_left_behind () =
  let dir = tmpdir () in
  let w = Checkpoint.create ~dir () in
  ignore (Checkpoint.write w ~stamp:1. ~tables);
  Checkpoint.close w;
  let leftovers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> not (Filename.check_suffix f ".p2ck"))
  in
  Alcotest.(check (list string)) "only .p2ck files on disk" [] leftovers

(* --- engine integration --- *)

let settle = 120.

let booted ?(nodes = 7) ?(seed = 5) ?shards ?checkpoint () =
  let engine = Engine.create ~seed () in
  (match shards with Some n when n > 0 -> Engine.set_shards engine n | _ -> ());
  (match checkpoint with
  | Some dir -> Engine.set_checkpoint engine dir
  | None -> ());
  let net = Chord.boot engine nodes in
  Engine.run_until engine settle;
  (engine, net)

let test_periodic_snapshots_written () =
  let dir = tmpdir () in
  let engine, net = booted ~checkpoint:dir () in
  Alcotest.(check (option string)) "dir readback" (Some dir)
    (Engine.checkpoint_dir engine);
  List.iter
    (fun addr ->
      let files = Checkpoint.files ~dir:(Filename.concat dir addr) in
      Alcotest.(check bool)
        (Fmt.str "%s wrote snapshots" addr)
        true (files <> []);
      match Checkpoint.latest ~dir:(Filename.concat dir addr) with
      | Some s ->
          Alcotest.(check bool) "snapshot has hard-state tables" true
            (List.exists
               (fun t -> t.Checkpoint.name = "bestSucc")
               s.Checkpoint.tables)
      | None -> Alcotest.fail "no intact snapshot")
    net.Chord.addrs;
  Engine.close_checkpoints engine

let test_restart_restores_hard_state () =
  let dir = tmpdir () in
  let engine, net = booted ~checkpoint:dir () in
  let victim =
    List.find (fun a -> a <> net.Chord.landmark) (List.rev net.Chord.addrs)
  in
  let succ_before = Chord.best_succ net victim in
  Engine.crash engine victim;
  Engine.run_for engine 3.;
  let o = Engine.restart engine victim in
  (match o.Engine.recovered_from with
  | `Checkpoint (_, stamp) ->
      Alcotest.(check bool) "recovered from a pre-crash snapshot" true
        (stamp <= settle)
  | `Cold -> Alcotest.fail "expected checkpointed recovery");
  Alcotest.(check bool) "restored rows" true (o.Engine.restored_rows > 0);
  Alcotest.(check int) "nothing skipped" 0 o.Engine.skipped_rows;
  (* the restored successor pointer is visible without any protocol round *)
  Alcotest.(check bool) "bestSucc restored verbatim" true
    (Chord.best_succ net victim = succ_before);
  Engine.run_for engine 30.;
  Alcotest.(check bool) "ring converges after restart" true
    (Chord.ring_correct net);
  Engine.close_checkpoints engine

let test_restart_cold_without_checkpoints () =
  let engine, net = booted () in
  let victim =
    List.find (fun a -> a <> net.Chord.landmark) (List.rev net.Chord.addrs)
  in
  Engine.crash engine victim;
  Engine.run_for engine 3.;
  let o = Engine.restart engine victim in
  Alcotest.(check bool) "cold outcome" true (o.Engine.recovered_from = `Cold);
  Alcotest.(check int) "no rows restored" 0 o.Engine.restored_rows;
  (* the reborn node is empty but alive *)
  Alcotest.(check bool) "node is back" true (Engine.node_opt engine victim <> None);
  Alcotest.(check bool) "hard state empty" true (Chord.best_succ net victim = None)

let test_checkpoints_byte_identical_across_shards () =
  let dirs =
    List.map
      (fun shards ->
        let dir = tmpdir () in
        let engine, _ = booted ~shards ~checkpoint:dir () in
        Engine.close_checkpoints engine;
        (shards, dir))
      [ 0; 1; 2; 4 ]
  in
  let read_all dir =
    Core.Replay.node_dirs dir
    |> List.concat_map (fun addr ->
           Checkpoint.files ~dir:(Filename.concat dir addr)
           |> List.map (fun (i, path) ->
                  let ic = open_in_bin path in
                  let n = in_channel_length ic in
                  let bytes = really_input_string ic n in
                  close_in ic;
                  (addr, i, bytes)))
  in
  match dirs with
  | (_, base) :: rest ->
      let baseline = read_all base in
      Alcotest.(check bool) "baseline wrote snapshots" true (baseline <> []);
      List.iter
        (fun (shards, dir) ->
          Alcotest.(check bool)
            (Fmt.str "shards=%d stream byte-identical to sequential" shards)
            true
            (read_all dir = baseline))
        rest
  | [] -> assert false

let () =
  Alcotest.run "checkpoint"
    [
      ( "format",
        [
          Alcotest.test_case "snapshot round-trip" `Quick test_roundtrip;
          Alcotest.test_case "numbering and latest" `Quick
            test_numbering_and_latest;
          Alcotest.test_case "retention" `Quick test_retention;
          Alcotest.test_case "damage fallback" `Quick test_damage_fallback;
          Alcotest.test_case "atomic writes leave no tmp files" `Quick
            test_no_tmp_left_behind;
        ] );
      ( "engine",
        [
          Alcotest.test_case "periodic snapshots written" `Slow
            test_periodic_snapshots_written;
          Alcotest.test_case "restart restores hard state" `Slow
            test_restart_restores_hard_state;
          Alcotest.test_case "restart cold-boots without checkpoints" `Slow
            test_restart_cold_without_checkpoints;
          Alcotest.test_case "byte-identical across shard counts" `Slow
            test_checkpoints_byte_identical_across_shards;
        ] );
    ]
