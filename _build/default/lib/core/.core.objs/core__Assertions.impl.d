lib/core/assertions.ml: Alarms Chord Fmt P2_runtime
