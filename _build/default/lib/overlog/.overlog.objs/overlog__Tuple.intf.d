lib/overlog/tuple.mli: Fmt Value
