lib/overlog/parser.ml: Array Ast Fmt Lexer List String Value
