lib/sim/rng.mli:
