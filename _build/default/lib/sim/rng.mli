(** Deterministic pseudo-random number generator (splitmix64).
    The simulator never reads the OS RNG: a run is a pure function of
    its seed. *)

type t

val create : int -> t
val next_int64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform int in [0, bound); raises on non-positive bound. *)
val int : t -> int -> int

val bool : t -> bool

(** Split off an independently seeded stream (per-node RNGs). *)
val split : t -> t
