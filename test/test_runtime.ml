(* Node + engine integration: program installation, facts, local and
   remote derivation, deletion rules, periodic rules, watchpoints,
   fault injection, on-line installation, introspection tables. *)

open Overlog

let mk ?(seed = 1) ?(trace = false) () = P2_runtime.Engine.create ~seed ~trace ()

let table_size engine addr name =
  let node = P2_runtime.Engine.node engine addr in
  match Store.Catalog.find (P2_runtime.Node.catalog node) name with
  | Some t -> Store.Table.size t ~now:(P2_runtime.Engine.now engine)
  | None -> 0

let table_tuples engine addr name =
  let node = P2_runtime.Engine.node engine addr in
  match Store.Catalog.find (P2_runtime.Node.catalog node) name with
  | Some t -> Store.Table.tuples t ~now:(P2_runtime.Engine.now engine)
  | None -> []

let test_local_derivation () =
  let engine = mk () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a"
    {|
materialize(t, infinity, infinity, keys(1,2)).
r1 t@N(Y) :- ev@N(X), Y := X + 1.
|};
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 41 ];
  P2_runtime.Engine.run_for engine 1.;
  match table_tuples engine "a" "t" with
  | [ t ] -> Alcotest.(check bool) "derived 42" true (Value.equal (Tuple.field t 2) (Value.VInt 42))
  | ts -> Alcotest.failf "expected 1 row, got %d" (List.length ts)

let test_remote_fact_routing () =
  let engine = mk () in
  ignore (P2_runtime.Engine.add_node engine "a");
  ignore (P2_runtime.Engine.add_node engine "b");
  P2_runtime.Engine.install_all engine
    "materialize(t, infinity, infinity, keys(1,2)).";
  (* a fact addressed to b, installed at a, must ship over the network *)
  P2_runtime.Engine.install engine "a" "t@b(7).";
  Alcotest.(check int) "not yet delivered" 0 (table_size engine "b" "t");
  P2_runtime.Engine.run_for engine 1.;
  Alcotest.(check int) "delivered at b" 1 (table_size engine "b" "t");
  Alcotest.(check int) "not at a" 0 (table_size engine "a" "t")

let test_distributed_rule_chain () =
  let engine = mk () in
  List.iter (fun a -> ignore (P2_runtime.Engine.add_node engine a)) [ "a"; "b"; "c" ];
  P2_runtime.Engine.install_all engine
    {|
materialize(got, infinity, infinity, keys(1,2)).
s1 ping@b(X) :- start@a(X).
s2 ping@c(Y) :- ping@b(X), Y := X + 1.
s3 got@N(Y) :- ping@N(Y).
|};
  ignore @@ P2_runtime.Engine.inject engine "a" "start" [ Value.VInt 1 ];
  P2_runtime.Engine.run_for engine 1.;
  (match table_tuples engine "c" "got" with
  | [ t ] -> Alcotest.(check bool) "chained" true (Value.equal (Tuple.field t 2) (Value.VInt 2))
  | ts -> Alcotest.failf "expected 1 row at c, got %d" (List.length ts))

let test_periodic_rule () =
  let engine = mk () in
  ignore (P2_runtime.Engine.add_node engine "a");
  let count = ref 0 in
  P2_runtime.Engine.watch engine "a" "tick" (fun _ -> incr count);
  P2_runtime.Engine.install engine "a" "p1 tick@N(E) :- periodic@N(E, 2).";
  P2_runtime.Engine.run_for engine 21.;
  (* first firing staggered within one period, then every 2 s: ~10 *)
  Alcotest.(check bool) "fired repeatedly" true (!count >= 8 && !count <= 11)

let test_delete_rule () =
  let engine = mk () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a"
    {|
materialize(t, infinity, infinity, keys(1,2)).
d1 delete t@N(X, Y) :- drop@N(X).
|};
  P2_runtime.Engine.install engine "a" "t@a(1, 10). t@a(2, 20). t@a(3, 30).";
  P2_runtime.Engine.run_for engine 0.5;
  Alcotest.(check int) "three rows" 3 (table_size engine "a" "t");
  (* delete with wildcard second field *)
  ignore @@ P2_runtime.Engine.inject engine "a" "drop" [ Value.VInt 2 ];
  P2_runtime.Engine.run_for engine 0.5;
  Alcotest.(check int) "one deleted" 2 (table_size engine "a" "t");
  Alcotest.(check bool) "right one deleted" true
    (List.for_all
       (fun t -> not (Value.equal (Tuple.field t 2) (Value.VInt 2)))
       (table_tuples engine "a" "t"))

let test_online_install () =
  (* the paper's headline: monitoring rules deployed while running *)
  let engine = mk () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a"
    {|
materialize(t, infinity, infinity, keys(1,2)).
r1 t@N(X) :- ev@N(X).
|};
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 1 ];
  P2_runtime.Engine.run_for engine 5.;
  let alarms = ref 0 in
  P2_runtime.Engine.watch engine "a" "alarm" (fun _ -> incr alarms);
  (* install a watchpoint rule on-line, then feed another event *)
  P2_runtime.Engine.install engine "a" "w1 alarm@N(X) :- ev@N(X), X > 10.";
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 50 ];
  P2_runtime.Engine.run_for engine 1.;
  Alcotest.(check int) "alarm from online rule" 1 !alarms;
  Alcotest.(check int) "old rule still works" 2 (table_size engine "a" "t")

let test_node_crash_and_recover () =
  let engine = mk () in
  ignore (P2_runtime.Engine.add_node engine "a");
  ignore (P2_runtime.Engine.add_node engine "b");
  P2_runtime.Engine.install_all engine
    {|
materialize(t, infinity, infinity, keys(1,2)).
fw t@b(X) :- ev@a(X).
|};
  P2_runtime.Engine.crash engine "b";
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 1 ];
  P2_runtime.Engine.run_for engine 1.;
  Alcotest.(check int) "nothing while crashed" 0 (table_size engine "b" "t");
  P2_runtime.Engine.recover engine "b";
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 2 ];
  (* long enough for the backed-off retransmission of ev(1) to land *)
  P2_runtime.Engine.run_for engine 15.;
  Alcotest.(check int) "both delivered after recovery (retransmit)" 2
    (table_size engine "b" "t")

let test_link_cut () =
  let engine = mk () in
  ignore (P2_runtime.Engine.add_node engine "a");
  ignore (P2_runtime.Engine.add_node engine "b");
  P2_runtime.Engine.install_all engine
    {|
materialize(t, infinity, infinity, keys(1,2)).
fw t@b(X) :- ev@a(X).
|};
  P2_runtime.Engine.cut_link engine ~src:"a" ~dst:"b";
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 1 ];
  P2_runtime.Engine.run_for engine 1.;
  Alcotest.(check int) "cut" 0 (table_size engine "b" "t");
  P2_runtime.Engine.heal_link engine ~src:"a" ~dst:"b";
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 2 ];
  (* the transport retransmits ev(1) across the healed link too *)
  P2_runtime.Engine.run_for engine 15.;
  Alcotest.(check int) "both delivered after heal (retransmit)" 2
    (table_size engine "b" "t")

let test_watch_collect () =
  let engine = mk () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a" "r1 out@N(X) :- ev@N(X).";
  let get = P2_runtime.Engine.collect engine "a" "out" in
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 1 ];
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 2 ];
  P2_runtime.Engine.run_for engine 1.;
  Alcotest.(check int) "collected both" 2 (List.length (get ()))

let test_tracing_tables_queryable () =
  (* ruleExec is itself queryable from OverLog (the paper's
     introspection claim) *)
  let engine = mk ~trace:true () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a"
    {|
materialize(seen, infinity, infinity, keys(1,2,3)).
r1 out@N(X) :- ev@N(X).
q1 seen@N(Rule, Effect) :- probe@N(), ruleExec@N(Rule, Cause, Effect, T1, T2, IsEvt), IsEvt == true.
|};
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 1 ];
  P2_runtime.Engine.run_for engine 1.;
  ignore @@ P2_runtime.Engine.inject engine "a" "probe" [];
  P2_runtime.Engine.run_for engine 1.;
  Alcotest.(check bool) "ruleExec rows visible from OverLog" true
    (table_size engine "a" "seen" >= 1);
  let rows = table_tuples engine "a" "seen" in
  Alcotest.(check bool) "r1 among recorded rules" true
    (List.exists (fun t -> Value.equal (Tuple.field t 2) (Value.VStr "r1")) rows)

let test_tracing_disabled_no_rows () =
  let engine = mk ~trace:false () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a" "r1 out@N(X) :- ev@N(X).";
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 1 ];
  P2_runtime.Engine.run_for engine 1.;
  let node = P2_runtime.Engine.node engine "a" in
  Alcotest.(check int) "no ruleExec rows" 0
    (Store.Table.size
       (Dataflow.Tracer.rule_exec_table (P2_runtime.Node.tracer node))
       ~now:(P2_runtime.Engine.now engine))

let test_dead_events_counted () =
  let engine = mk () in
  ignore (P2_runtime.Engine.add_node engine "a");
  ignore @@ P2_runtime.Engine.inject engine "a" "nobody" [ Value.VInt 1 ];
  P2_runtime.Engine.run_for engine 0.1;
  Alcotest.(check int) "dead event" 1
    (P2_runtime.Node.dead_events (P2_runtime.Engine.node engine "a"))

let test_cross_node_tuple_table () =
  let engine = mk ~trace:true () in
  ignore (P2_runtime.Engine.add_node engine "a");
  ignore (P2_runtime.Engine.add_node engine "b");
  P2_runtime.Engine.install_all engine "fw out@b(X) :- ev@a(X).
r2 sink@N(X) :- out@N(X).";
  ignore @@ P2_runtime.Engine.inject engine "a" "ev" [ Value.VInt 5 ];
  P2_runtime.Engine.run_for engine 1.;
  (* b's tupleTable must hold an entry whose source is a *)
  let node = P2_runtime.Engine.node engine "b" in
  let rows =
    Store.Table.tuples
      (Dataflow.Tracer.tuple_table (P2_runtime.Node.tracer node))
      ~now:(P2_runtime.Engine.now engine)
  in
  Alcotest.(check bool) "cross-node entry" true
    (List.exists (fun t -> Value.equal (Tuple.field t 3) (Value.VAddr "a")) rows)

let test_introspect_tables () =
  let engine = mk () in
  ignore (P2_runtime.Engine.add_node engine "a");
  P2_runtime.Engine.install engine "a"
    "materialize(t, infinity, infinity, keys(1,2)).";
  P2_runtime.Introspect.attach engine "a";
  P2_runtime.Engine.install engine "a" "t@a(1).";
  P2_runtime.Engine.run_for engine 3.;
  Alcotest.(check bool) "sysTable rows" true (table_size engine "a" "sysTable" >= 1);
  Alcotest.(check bool) "sysNode row" true (table_size engine "a" "sysNode" = 1);
  (* sysTable reports table t with 1 live row *)
  let row =
    List.find_opt
      (fun t -> Value.equal (Tuple.field t 2) (Value.VStr "t"))
      (table_tuples engine "a" "sysTable")
  in
  (match row with
  | Some t -> Alcotest.(check bool) "live count" true (Value.equal (Tuple.field t 5) (Value.VInt 1))
  | None -> Alcotest.fail "expected sysTable row for t");
  (* installed rules are reflected into sysRule, queryable by name *)
  P2_runtime.Engine.install engine "a" "rx out@N(X) :- ev@N(X).";
  P2_runtime.Engine.run_for engine 2.;
  Alcotest.(check bool) "sysRule row for rx" true
    (List.exists
       (fun t -> Value.equal (Tuple.field t 2) (Value.VStr "rx"))
       (table_tuples engine "a" "sysRule"))

let test_determinism () =
  (* identical seeds give identical traffic counts *)
  let run () =
    let engine = mk ~seed:99 () in
    List.iter (fun a -> ignore (P2_runtime.Engine.add_node engine a)) [ "a"; "b" ];
    P2_runtime.Engine.install_all engine
      {|
materialize(t, 10, 100, keys(1,2)).
p1 t@b(E) :- periodic@a(E, 1).
p2 echo@a(X) :- t@b(X).
|};
    P2_runtime.Engine.run_for engine 30.;
    let s = P2_runtime.Engine.snapshot_node engine "a" in
    (s.messages_tx, s.messages_rx, s.work)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical runs" true (a = b)

(* Node-management calls on unknown addresses raise a consistent
   Invalid_argument naming the operation and the address. *)
let test_unknown_address_raises () =
  let engine = mk () in
  ignore (P2_runtime.Engine.add_node engine "a");
  List.iter
    (fun (op, f) ->
      Alcotest.check_raises
        (Fmt.str "%s rejects an unknown address" op)
        (Invalid_argument (Fmt.str "Engine.%s: unknown node ghost" op))
        (fun () -> f engine "ghost"))
    [
      ("crash", P2_runtime.Engine.crash);
      ("recover", P2_runtime.Engine.recover);
      ("remove_node", P2_runtime.Engine.remove_node);
      ("restart", fun e a -> ignore (P2_runtime.Engine.restart e a));
    ];
  (* the known node is untouched by the failed calls *)
  Alcotest.(check bool) "known node still present" true
    (P2_runtime.Engine.node_opt engine "a" <> None)

let () =
  Alcotest.run "runtime"
    [
      ( "basics",
        [
          Alcotest.test_case "local derivation" `Quick test_local_derivation;
          Alcotest.test_case "remote facts" `Quick test_remote_fact_routing;
          Alcotest.test_case "distributed chain" `Quick test_distributed_rule_chain;
          Alcotest.test_case "periodic" `Quick test_periodic_rule;
          Alcotest.test_case "delete rule" `Quick test_delete_rule;
          Alcotest.test_case "watch collect" `Quick test_watch_collect;
          Alcotest.test_case "dead events" `Quick test_dead_events_counted;
        ] );
      ( "online",
        [
          Alcotest.test_case "install while running" `Quick test_online_install;
          Alcotest.test_case "crash/recover" `Quick test_node_crash_and_recover;
          Alcotest.test_case "link cut" `Quick test_link_cut;
          Alcotest.test_case "unknown address raises" `Quick
            test_unknown_address_raises;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "ruleExec queryable" `Quick test_tracing_tables_queryable;
          Alcotest.test_case "tracing off" `Quick test_tracing_disabled_no_rows;
          Alcotest.test_case "cross-node tupleTable" `Quick test_cross_node_tuple_table;
          Alcotest.test_case "sys tables" `Quick test_introspect_tables;
        ] );
      ("determinism", [ Alcotest.test_case "seeded runs" `Quick test_determinism ]);
    ]
