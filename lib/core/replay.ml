(** Time-travel replay (paper §3.4 forensics, hours after the fact):
    stream a recorded flight-recorder log back through a fresh
    dataflow instance so historical queries — rule-execution walks,
    tuple provenance, any OverLog program over [ruleExec] /
    [tupleTable] — run over the recorded window instead of the live
    tracer's few minutes of soft state.

    A log directory (as written by [Engine.set_trace_log]) holds one
    subdirectory of segments per recorded node. [load] rebuilds that
    topology: one replay node per subdirectory, the optional query
    program installed {e first} so its delta strands fire for every
    restored [ruleExec]/[tupleTable] row in recorded order, then the
    time-filtered records restored through [Tracer.restore] under the
    expiry-free {!Dataflow.Tracer.replay_config}. Derived tuples the
    query sends across nodes are drained by a short engine run.

    The reconstruction is post-hoc: restored rows carry their recorded
    timestamps in their fields, but they materialize "at once" on the
    replay engine's clock — time-bounded selection happens on the
    recorded stamps at the segment-log layer. *)

(** Per-node restoration tally. *)
type node_report = {
  addr : string;
  restored : int;  (** records restored within the window *)
  rule_exec_rows : int;  (** ruleExec rows live after replay *)
  tuple_table_rows : int;  (** tupleTable rows live after replay *)
}

type t = {
  engine : P2_runtime.Engine.t;
  reports : node_report list;  (** sorted by address *)
  from_ : float;
  to_ : float;
}

(** Recorded node addresses under a log root: its subdirectory names,
    sorted. *)
let node_dirs dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter (fun e ->
             try Sys.is_directory (Filename.concat dir e)
             with Sys_error _ -> false)
      |> List.sort String.compare

(** Replay the log rooted at [dir], restricted to records with
    [from_ <= stamp <= to_] (recorded node-local time). [program] is
    OverLog source installed on every replay node before restoration
    begins; [on_node] runs after that install but still before any
    record is restored — the hook for watchpoints on derived tuples.
    Raises [Invalid_argument] when [dir] holds no node
    subdirectories. *)
let load ?(from_ = neg_infinity) ?(to_ = infinity) ?program
    ?(on_node = fun _ _ -> ()) ~dir () =
  let addrs = node_dirs dir in
  if addrs = [] then
    invalid_arg (Fmt.str "Replay.load: no node directories under %s" dir);
  let engine = P2_runtime.Engine.create ~seed:1 ~trace:false () in
  List.iter
    (fun addr ->
      ignore
        (P2_runtime.Engine.add_node
           ~tracer_config:Dataflow.Tracer.replay_config ~trace:false engine
           addr))
    addrs;
  Option.iter (fun src -> P2_runtime.Engine.install_all engine src) program;
  List.iter
    (fun addr -> on_node engine (P2_runtime.Engine.node engine addr))
    addrs;
  let restored_counts =
    List.map
      (fun addr ->
        let node = P2_runtime.Engine.node engine addr in
        let tracer = P2_runtime.Node.tracer node in
        let restored = ref 0 in
        Seglog.iter ~from_ ~to_ ~dir:(Filename.concat dir addr) (fun r ->
            Dataflow.Tracer.restore tracer r.Seglog.tuple;
            incr restored);
        (* Restored rows fired delta strands through the table
           subscriptions; drain the local agenda before moving on so
           per-node work happens in recorded order. *)
        Dataflow.Machine.drain (P2_runtime.Node.machine node);
        (addr, !restored))
      addrs
  in
  (* Let anything the query program shipped across nodes settle. *)
  P2_runtime.Engine.run_for engine 5.0;
  let reports =
    List.map
      (fun (addr, restored) ->
        let tracer = P2_runtime.Node.tracer (P2_runtime.Engine.node engine addr) in
        let now = P2_runtime.Engine.local_time engine addr in
        {
          addr;
          restored;
          rule_exec_rows =
            Store.Table.size (Dataflow.Tracer.rule_exec_table tracer) ~now;
          tuple_table_rows =
            Store.Table.size (Dataflow.Tracer.tuple_table tracer) ~now;
        })
      restored_counts
  in
  { engine; reports; from_; to_ }

let pp_report ppf t =
  Fmt.pf ppf "replayed %d node(s), window [%g, %g]@."
    (List.length t.reports) t.from_ t.to_;
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-12s %6d records -> %5d ruleExec, %5d tupleTable@."
        r.addr r.restored r.rule_exec_rows r.tuple_table_rows)
    t.reports
