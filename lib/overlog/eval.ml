(** Expression evaluation over variable bindings.

    Built-in functions needing ambient state ([f_now], [f_rand],
    [f_randID]) are resolved through a [context] supplied by the
    runtime, keeping this module pure and the simulation deterministic. *)

open Ast

exception Error of string

(** Run [f], tagging any {!Error} it raises with the rule id and head
    predicate so runtime failures ("unbound variable X", "division by
    zero") say which rule raised them. Already-tagged errors pass
    through untouched — execution nests (a head emission can trigger
    downstream strands) and the innermost rule is the one to blame. *)
let in_rule ~rule ~pred f =
  try f ()
  with Error msg ->
    if String.length msg >= 5 && String.sub msg 0 5 = "rule " then raise (Error msg)
    else raise (Error (Fmt.str "rule %s (%s): %s" rule pred msg))

module Env = struct
  type t = (string * Value.t) list

  let empty : t = []

  let find env v = List.assoc_opt v env

  let bind env v x =
    if v = "_" then env else (v, x) :: env

  (* Bind or check: Datalog unification of a variable against a value. *)
  let unify env v x =
    if v = "_" then Some env
    else
      match find env v with
      | None -> Some (bind env v x)
      | Some existing -> if Value.equal existing x then Some env else None

  let pp ppf env =
    Fmt.pf ppf "{%a}"
      (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%a" k Value.pp v))
      env
end

type context = {
  now : unit -> float;          (* f_now *)
  rand : unit -> float;         (* f_rand: uniform [0,1) *)
  rand_id : unit -> int;        (* f_randID: uniform ring identifier *)
  local_addr : string;          (* f_localAddr *)
}

let null_context =
  { now = (fun () -> 0.); rand = (fun () -> 0.); rand_id = (fun () -> 0); local_addr = "?" }

let num_binop op a b =
  let open Value in
  match (a, b) with
  | VInt x, VInt y -> (
      match op with
      | Add -> VInt (x + y)
      | Sub -> VInt (x - y)
      | Mul -> VInt (x * y)
      | Div -> if y = 0 then raise (Error "division by zero") else VInt (x / y)
      | Mod -> if y = 0 then raise (Error "mod by zero") else VInt (x mod y)
      | _ -> assert false)
  | (VFloat _ | VInt _), (VFloat _ | VInt _) -> (
      let x = Value.as_float a and y = Value.as_float b in
      match op with
      | Add -> VFloat (x +. y)
      | Sub -> VFloat (x -. y)
      | Mul -> VFloat (x *. y)
      | Div -> VFloat (x /. y)
      | Mod -> VFloat (Float.rem x y)
      | _ -> assert false)
  (* Ring identifiers: arithmetic stays in the identifier space, which
     is what Chord's [D := K - FID - 1] relies on. *)
  | (VId _ | VInt _), (VId _ | VInt _) -> (
      let x = Value.as_int a and y = Value.as_int b in
      match op with
      | Add -> VId (Value.Ring.norm (x + y))
      | Sub -> VId (Value.Ring.norm (x - y))
      | Mul -> VId (Value.Ring.norm (x * y))
      | Div -> if y = 0 then raise (Error "division by zero") else VId (x / y)
      | Mod -> if y = 0 then raise (Error "mod by zero") else VId (x mod y)
      | _ -> assert false)
  | VStr x, VStr y when op = Add -> VStr (x ^ y)
  | VList x, VList y when op = Add -> VList (x @ y)
  | VList x, y when op = Add -> VList (x @ [ y ])
  | _ ->
      raise
        (Error (Fmt.str "bad operands: %a %s %a" Value.pp a (binop_name op) Value.pp b))

let rec eval ctx env expr =
  match expr with
  | Const v -> v
  | Var "_" -> raise (Error "wildcard _ used in expression position")
  | Var v -> (
      match Env.find env v with
      | Some x -> x
      | None -> raise (Error (Fmt.str "unbound variable %s" v)))
  | Neg e -> (
      match eval ctx env e with
      | Value.VInt i -> Value.VInt (-i)
      | Value.VFloat f -> Value.VFloat (-.f)
      | v -> raise (Error (Fmt.str "cannot negate %a" Value.pp v)))
  | Unop_not e -> Value.VBool (not (Value.truthy (eval ctx env e)))
  | ListExpr es -> Value.VList (List.map (eval ctx env) es)
  | Binop (And, a, b) ->
      Value.VBool (Value.truthy (eval ctx env a) && Value.truthy (eval ctx env b))
  | Binop (Or, a, b) ->
      Value.VBool (Value.truthy (eval ctx env a) || Value.truthy (eval ctx env b))
  | Binop (Eq, a, b) -> Value.VBool (Value.equal (eval ctx env a) (eval ctx env b))
  | Binop (Neq, a, b) -> Value.VBool (not (Value.equal (eval ctx env a) (eval ctx env b)))
  | Binop (Lt, a, b) -> Value.VBool (Value.compare (eval ctx env a) (eval ctx env b) < 0)
  | Binop (Le, a, b) -> Value.VBool (Value.compare (eval ctx env a) (eval ctx env b) <= 0)
  | Binop (Gt, a, b) -> Value.VBool (Value.compare (eval ctx env a) (eval ctx env b) > 0)
  | Binop (Ge, a, b) -> Value.VBool (Value.compare (eval ctx env a) (eval ctx env b) >= 0)
  | Binop (op, a, b) -> num_binop op (eval ctx env a) (eval ctx env b)
  | InRange (x, a, b, kind) ->
      let x = Value.as_int (eval ctx env x)
      and a = Value.as_int (eval ctx env a)
      and b = Value.as_int (eval ctx env b) in
      let test =
        match kind with
        | Open_open -> Value.Ring.between_oo
        | Open_closed -> Value.Ring.between_oc
        | Closed_open -> Value.Ring.between_co
        | Closed_closed -> Value.Ring.between_cc
      in
      Value.VBool (test a b x)
  | Call (f, args) -> eval_call ctx env f args

and eval_call ctx env f args =
  let arg i = eval ctx env (List.nth args i) in
  match (f, List.length args) with
  | "f_now", 0 -> Value.VFloat (ctx.now ())
  | "f_rand", 0 -> Value.VInt (int_of_float (ctx.rand () *. 1_000_000_000.))
  | "f_randID", 0 -> Value.VId (ctx.rand_id ())
  | "f_localAddr", 0 -> Value.VAddr ctx.local_addr
  | "f_coinFlip", 1 -> Value.VBool (ctx.rand () < Value.as_float (arg 0))
  | "f_size", 1 -> Value.VInt (List.length (Value.as_list (arg 0)))
  | "f_first", 1 -> (
      match Value.as_list (arg 0) with
      | [] -> Value.VNull
      | x :: _ -> x)
  | "f_last", 1 -> (
      match List.rev (Value.as_list (arg 0)) with
      | [] -> Value.VNull
      | x :: _ -> x)
  | "f_member", 2 -> Value.VBool (List.exists (Value.equal (arg 1)) (Value.as_list (arg 0)))
  | "f_pow2", 1 -> Value.VInt (1 lsl min 62 (Value.as_int (arg 0)))
  | "f_float", 1 -> Value.VFloat (Value.as_float (arg 0))
  | "f_int", 1 -> (
      match arg 0 with
      | Value.VFloat f -> Value.VInt (int_of_float f)
      | v -> Value.VInt (Value.as_int v))
  | "f_id", 1 ->
      (* Deterministic identifier derived from a string — our stand-in
         for the SHA-1 hash real Chord uses. *)
      Value.VId (Hashtbl.hash (Value.to_string (arg 0)) land (Value.Ring.space - 1))
  | "f_str", 1 -> Value.VStr (Value.to_string (arg 0))
  | "f_min", 2 -> if Value.compare (arg 0) (arg 1) <= 0 then arg 0 else arg 1
  | "f_max", 2 -> if Value.compare (arg 0) (arg 1) >= 0 then arg 0 else arg 1
  | "f_abs", 1 -> (
      match arg 0 with
      | Value.VInt i -> Value.VInt (abs i)
      | Value.VFloat f -> Value.VFloat (Float.abs f)
      | v -> raise (Error (Fmt.str "f_abs: %a" Value.pp v)))
  | _, n -> raise (Error (Fmt.str "unknown builtin %s/%d" f n))

(** Evaluate a boolean condition. *)
let eval_bool ctx env expr = Value.truthy (eval ctx env expr)

(** Match a body-atom argument expression against a tuple field.
    Variables unify; any other expression is evaluated (it must be
    closed under [env]) and checked for equality. Returns the extended
    environment, or [None] on mismatch. *)
let match_arg ctx env expr value =
  match expr with
  | Var v -> Env.unify env v value
  | e ->
      let expected = eval ctx env e in
      if Value.equal expected value then Some env else None

exception No_match

(** Match all arguments of a body atom against a tuple. The atom's
    arity must equal the tuple's (location included). Runs on the
    join hot path for every candidate tuple, so it walks both lists
    once and allocates nothing on mismatch (no per-field option
    boxing, no length precomputation). *)
let match_atom ctx env (atom : atom) (tuple : Tuple.t) =
  let n = Tuple.arity tuple in
  let rec go env i args =
    match args with
    | [] -> if i > n then env else raise_notrace No_match
    | _ when i > n -> raise_notrace No_match
    | Var "_" :: args -> go env (i + 1) args
    | Var v :: args -> (
        let x = Tuple.field tuple i in
        match Env.find env v with
        | None -> go ((v, x) :: env) (i + 1) args
        | Some existing ->
            if Value.equal existing x then go env (i + 1) args
            else raise_notrace No_match)
    | e :: args ->
        if Value.equal (eval ctx env e) (Tuple.field tuple i) then go env (i + 1) args
        else raise_notrace No_match
  in
  match go env 1 atom.args with
  | env -> Some env
  | exception No_match -> None

(** Match a body atom against a delta set of candidate tuples — a
    frontier in semi-naive evaluation (the newest tuple alone) or a
    whole relation in the naive re-enumeration — returning the
    extended environment for every tuple that unifies, in candidate
    order. [on_match] is invoked per hit before it is collected (the
    machine charges its per-match evaluation cost there). *)
let match_atom_all ?(on_match = fun _ -> ()) ctx env (atom : atom) tuples =
  List.filter_map
    (fun tuple ->
      match match_atom ctx env atom tuple with
      | Some env' ->
          on_match tuple;
          Some (env', tuple)
      | None -> None)
    tuples

(** True when any tuple in the delta set unifies with the atom — the
    negation probe ([Neg_join]) over the same candidate sets. *)
let match_atom_exists ctx env (atom : atom) tuples =
  List.exists (fun tuple -> match_atom ctx env atom tuple <> None) tuples
