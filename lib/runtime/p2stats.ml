(** Self-reflection of runtime metrics into the catalog (ROADMAP:
    "monitor the monitor"). Every metric in a node's registry is
    periodically republished as ordinary soft-state tuples —
    [p2Stats], [p2TableStats], [p2NetStats] — so OverLog rules can
    aggregate, join and alert over the runtime's own vital signs
    exactly as they do over application state.

    Reflected tuples go through [Node.deliver], not a bare table
    insert: delta strands over the stats tables fire and the agenda
    drains, so a pure-OverLog watchdog (see [Core.Watchdog]) reacts
    within the same tick. Rows carry the reflection-time value; a
    value that did not change only refreshes the row's lifetime
    (no delta), so watchdog rules re-fire only on movement. *)

open Overlog

(* Reflection rows outlive a few missed ticks, then expire: a node
   that stops reflecting (crash, detach) ages out of the stats tables
   like any soft state. *)
let lifetime_of_period period = 3. *. period

(** OverLog schema for the reflection tables, shared by [attach] and
    the embedded watchdog corpus entry. Keyed by (addr, name) /
    (addr, table) / (addr, peer): each tick replaces the previous
    row rather than accumulating history. *)
let schema ?(period = 5.) () =
  Fmt.str
    {|
materialize(p2Stats, %g, 10000, keys(1,2)).
materialize(p2TableStats, %g, 10000, keys(1,2)).
materialize(p2NetStats, %g, 10000, keys(1,2)).
materialize(p2PeerStatus, %g, 10000, keys(1,2)).
|}
    (lifetime_of_period period) (lifetime_of_period period)
    (lifetime_of_period period) (lifetime_of_period period)

let vint i = Value.VInt i
let vstr s = Value.VStr s

(* Deliver one reflection tuple locally. [deliver] (not a raw table
   insert) so watches and delta strands see it and the agenda drains. *)
let reflect_tuple node name fields =
  let addr = Node.addr node in
  let tuple = Node.create_tuple node ~dst:addr name (Value.VAddr addr :: fields) in
  Node.deliver node tuple

let ensure_schema ~period node =
  if not (Store.Catalog.is_table (Node.catalog node) "p2Stats") then
    Node.install_text node (schema ~period ())

(** Reflect one node's current metrics into its stats tables.
    [transport] additionally publishes the transport failure
    detector's per-peer verdicts as [p2PeerStatus] rows. *)
let reflect_node ?transport ~period node =
  ensure_schema ~period node;
  List.iter
    (fun (s : Metrics.sample) ->
      reflect_tuple node "p2Stats" [ vstr s.name; Value.VFloat s.value ])
    (Metrics.snapshot (Node.registry node));
  let now = Node.local_time node in
  let catalog = Node.catalog node in
  List.iter
    (fun tname ->
      if not (List.mem tname Node.reflected_tables) then begin
        let s = Store.Table.stats (Store.Catalog.find_exn catalog tname) ~now in
        reflect_tuple node "p2TableStats"
          [
            vstr tname; vint s.live; vint s.inserts; vint s.deletes;
            vint s.expirations; vint s.evictions; vint s.probes;
          ]
      end)
    (Store.Catalog.names catalog);
  List.iter
    (fun (peer, (p : Node.peer_stats)) ->
      reflect_tuple node "p2NetStats"
        [ vstr peer; vint p.tx_msgs; vint p.tx_bytes; vint p.rx_msgs; vint p.rx_bytes ])
    (Node.peers node);
  match transport with
  | None -> ()
  | Some tr ->
      List.iter
        (fun (p : Transport.peer_info) ->
          reflect_tuple node "p2PeerStatus"
            [
              vstr p.peer;
              vstr (Transport.status_name p.status);
              vint p.misses;
              Value.VFloat p.silent_for;
              vint p.sendq;
            ])
        (Transport.peers tr)

(** Attach periodic reflection to every node of the engine, present
    and future (addresses are re-enumerated each tick, and the schema
    is installed lazily per node). Crashed nodes skip the tick — a
    crashed node processes nothing — and age out of peers' stats
    tables by lifetime. *)
let attach ?(period = 5.) engine =
  let rec tick () =
    List.iter
      (fun addr ->
        if not (Engine.is_crashed engine addr) then
          match Engine.node_opt engine addr with
          | Some node ->
              reflect_node ?transport:(Engine.transport_opt engine addr) ~period
                node
          | None -> ())
      (Engine.addrs engine);
    Engine.at engine ~time:(Engine.now engine +. period) tick
  in
  Engine.at engine ~time:(Engine.now engine +. period) tick

(* --- JSON dump (host-side, reflection-free) --- *)

let buf_addf buf fmt = Fmt.kstr (Buffer.add_string buf) fmt

let json_tables buf node =
  let now = Node.local_time node in
  let catalog = Node.catalog node in
  let first = ref true in
  Buffer.add_string buf "{";
  List.iter
    (fun tname ->
      let s = Store.Table.stats (Store.Catalog.find_exn catalog tname) ~now in
      if not !first then Buffer.add_string buf ",";
      first := false;
      buf_addf buf
        "%S:{\"live\":%d,\"inserts\":%d,\"deletes\":%d,\"expirations\":%d,\"evictions\":%d,\"probes\":%d}"
        tname s.live s.inserts s.deletes s.expirations s.evictions s.probes)
    (Store.Catalog.names catalog);
  Buffer.add_string buf "}"

let json_peers buf node =
  let first = ref true in
  Buffer.add_string buf "{";
  List.iter
    (fun (peer, (p : Node.peer_stats)) ->
      if not !first then Buffer.add_string buf ",";
      first := false;
      buf_addf buf "%S:{\"tx_msgs\":%d,\"tx_bytes\":%d,\"rx_msgs\":%d,\"rx_bytes\":%d}"
        peer p.tx_msgs p.tx_bytes p.rx_msgs p.rx_bytes)
    (Node.peers node);
  Buffer.add_string buf "}"

(** One node's stats as a JSON object: the registry snapshot plus
    per-table and per-peer detail. Reads the registries directly —
    no reflection tuples are created, so dumping cannot perturb a
    deterministic run. *)
let node_json node =
  let buf = Buffer.create 1024 in
  buf_addf buf "{\"metrics\":%s,\"tables\":"
    (Metrics.json_of_samples (Metrics.snapshot (Node.registry node)));
  json_tables buf node;
  Buffer.add_string buf ",\"peers\":";
  json_peers buf node;
  Buffer.add_string buf "}";
  Buffer.contents buf

(** Engine-wide stats: [{"time": t, "nodes": {addr: node_json, ...}}],
    nodes in sorted-address order. *)
let to_json engine =
  let buf = Buffer.create 4096 in
  buf_addf buf "{\"time\":%g,\"nodes\":{" (Engine.now engine);
  let first = ref true in
  List.iter
    (fun addr ->
      if not !first then Buffer.add_string buf ",";
      first := false;
      buf_addf buf "%S:%s" addr (node_json (Engine.node engine addr)))
    (Engine.addrs engine);
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* --- Human-readable dump (p2ql stats) --- *)

(** Pretty-print one node's registry snapshot, one [name value] line
    per metric, in snapshot (sorted-name) order. *)
let pp_node ppf node =
  Fmt.pf ppf "@[<v>%s:@," (Node.addr node);
  List.iter
    (fun (s : Metrics.sample) ->
      let v =
        if Float.is_integer s.value && Float.abs s.value < 1e15 then
          Fmt.str "%.0f" s.value
        else Fmt.str "%g" s.value
      in
      Fmt.pf ppf "  %-28s %s@," s.name v)
    (Metrics.snapshot (Node.registry node));
  Fmt.pf ppf "@]"
