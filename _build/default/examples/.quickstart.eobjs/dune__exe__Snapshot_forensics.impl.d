examples/snapshot_forensics.ml: Chord Core Fmt List Option Overlog P2_runtime Tuple Value
