lib/overlog/tuple.ml: Array Fmt List String Value
