test/test_eval.ml: Alcotest Ast Eval Fmt Overlog Parser QCheck QCheck_alcotest Tuple Value
