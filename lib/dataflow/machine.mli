(** Strand execution machine: the per-node dataflow interpreter.
    Work is scheduled as agenda items so strand stages can interleave
    (pipelined execution, paper §2.1.2). *)

open Overlog

type mode =
  | Depth_first  (** each trigger runs to completion — §2.1.1 semantics *)
  | Breadth_first  (** join continuations queue behind other work *)

(** Evaluation strategy for table-delta strands. [Seminaive] (default)
    is the planner's delta rewriting: the newest tuple — a frontier of
    size one — joins against the full stored relations. [Naive] is the
    classical ablation control: a delta only signals "this table
    changed" and the whole body is re-enumerated from scratch,
    re-deriving and re-shipping everything. Event, periodic and
    aggregate strands behave identically in both modes. *)
type eval_mode = Seminaive | Naive

(** Closures supplied by the runtime node; the machine itself knows
    nothing about tables, tracing or the network. *)
type ctx = {
  addr : string;
  now : unit -> float;
  eval_ctx : Eval.context;
  scan : string -> Tuple.t list;
  probe : string -> positions:int list -> values:Value.t list -> Tuple.t list;
      (** Rows whose fields at the 1-indexed [positions] equal [values],
          in scan (insertion) order. May over-approximate — the machine
          re-verifies every candidate with [match_atom]. *)
  create_tuple : dst:string -> string -> Value.t list -> Tuple.t;
  emit : delete:bool -> Tuple.t -> unit;
  charge : float -> unit;
  rule_executed : unit -> unit;
  tracer : Tracer.t option;
}

type t

(** Hot-path self-metrics, always on (one unboxed increment per
    update). Reflected into [p2Stats] by the runtime; names and units
    are catalogued in [docs/OPERATIONS.md]. *)
type stats = {
  triggers : Metrics.Counter.t;  (** strand triggers that matched *)
  naive_refires : Metrics.Counter.t;
      (** full-body re-enumerations fired by the naive ablation mode *)
  executed : Metrics.Counter.t;  (** agenda items executed *)
  enqueued : Metrics.Counter.t;  (** agenda items pushed *)
  drains : Metrics.Counter.t;  (** drain (fixpoint) invocations *)
  drain_items : Metrics.Histogram.t;  (** items per non-empty drain *)
  drain_work_us : Metrics.Histogram.t;
      (** node-local work (notional µs) per non-empty drain *)
}

(** The {!drain} bound tripped — almost always a runaway recursive
    program. Carries the node address, the rule id of the strand that
    was executing when the budget ran out, and the item count. *)
exception
  Agenda_explosion of { addr : string; last_strand : string option; items : int }

val create : ?mode:mode -> ctx -> t
val set_mode : t -> mode -> unit

(** Switch the delta-strand evaluation strategy. Flipping it between
    drains is safe (in-flight agenda items carry their stage plan);
    default [Seminaive]. *)
val set_eval_mode : t -> eval_mode -> unit

val eval_mode : t -> eval_mode

(** Ablation switch: [false] forces joins and negations back onto the
    full-scan path (the pre-index behaviour). Default [true]. *)
val set_use_probe : t -> bool -> unit

(** This machine's live metric set. *)
val stats : t -> stats

(** Number of queued agenda items, in O(1). *)
val pending : t -> int

(** Synonym for {!pending}: the current agenda depth. *)
val agenda_depth : t -> int

(** High-water mark of the agenda depth since creation. *)
val agenda_depth_max : t -> int

(** Offer a tuple to a strand; true if the trigger matched. Aggregates
    run synchronously; ordinary strands enqueue agenda work — call
    {!drain}. *)
val trigger : t -> Strand.t -> Tuple.t -> bool

(** Run the agenda to empty. [max_items] bounds runaway programs
    (raises {!Agenda_explosion} when exceeded). *)
val drain : ?max_items:int -> t -> unit

(** Rule id of the most recently executed strand, if any. *)
val last_fired : t -> string option

(** Provenance oracle used by tests to validate the tracer's inferred
    ruleExec rows: (rule, cause event id, output id). *)

val set_record_ground_truth : t -> bool -> unit
val ground_truth : t -> (string * int * int) list
val clear_ground_truth : t -> unit
