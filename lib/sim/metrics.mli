(** Per-node metric accounting: deterministic work units standing in
    for CPU time, message/byte counters, and live-state samples. See
    DESIGN.md §3 for the calibration against the paper's testbed. *)

type t

val create : unit -> t

(** Work-unit costs (notional microseconds) charged by the runtime. *)
module Cost : sig
  val element : float
  val table_lookup : float
  val table_insert : float
  val timer : float
  val marshal : float
  val tracer_tap : float
  val eval : float
end

(** Work units one node absorbs per second at 100% utilization. *)
val budget_units_per_second : float

val charge : t -> float -> unit
val message_tx : t -> bytes:int -> unit

(** Count one received message; [bytes] is the wire size when the
    caller knows it (it defaults to 0 for callers without the frame). *)
val message_rx : ?bytes:int -> t -> unit
val tuple_created : t -> unit
val rule_executed : t -> unit
val sample : t -> now:float -> live_tuples:int -> live_bytes:int -> unit

(** CPU utilization proxy for [work] units spent over [seconds]. *)
val cpu_percent : work:float -> seconds:float -> float

(** Memory proxy in MB: process baseline + live tuple footprint. *)
val memory_mb : live_tuples:int -> live_bytes:int -> float

val work : t -> float
val messages_tx : t -> int
val messages_rx : t -> int
val bytes_tx : t -> int
val bytes_rx : t -> int
val tuples_created : t -> int
val rule_executions : t -> int
val samples : t -> (float * int * int) list

val mean : float list -> float
val stddev : float list -> float
