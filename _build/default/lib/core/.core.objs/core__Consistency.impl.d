lib/core/consistency.ml: Alarms Chord Fmt List Option Overlog P2_runtime
