(* Benchmark harness: regenerates every measurement in the paper's
   evaluation (§4) — the in-text execution-logging overhead (E0) and
   Figures 4–7 — followed by ablations and Bechamel micro-benchmarks
   of the engine primitives.

   Each paper experiment runs the same workload as the paper on the
   simulated substrate: a 21-node P2 Chord (fix fingers every 10 s,
   stabilize every 5 s, ping every 5 s), the measured node being the
   last to join, three seeded runs per data point (mean, stddev).
   CPU%% and memory are the calibrated proxies described in DESIGN.md
   §3; messages and live tuples are counted directly. *)

let nodes = 21
let settle = 150.  (* virtual seconds before measuring *)
let window = 60.   (* measurement window *)
let seeds = [ 1; 2; 3 ]

let measured_addr (net : Chord.network) = List.nth net.addrs (nodes - 1)

type point = { cpu : float; mem : float; msgs : float; live : float }

let measure engine addr =
  let before = P2_runtime.Engine.snapshot_node engine addr in
  P2_runtime.Engine.run_for engine window;
  let after = P2_runtime.Engine.snapshot_node engine addr in
  {
    cpu = P2_runtime.Engine.cpu_percent ~before ~after;
    mem = P2_runtime.Engine.memory_mb after;
    msgs = float_of_int (after.messages_tx - before.messages_tx);
    live = float_of_int after.live_tuples;
  }

(* Run one configuration under each seed; [setup] installs the
   workload after the ring has settled. *)
let replicate ?(trace = false) setup =
  let points =
    List.map
      (fun seed ->
        let engine = P2_runtime.Engine.create ~seed ~trace () in
        let net = Chord.boot engine nodes in
        P2_runtime.Engine.run_for engine settle;
        let addr = measured_addr net in
        setup engine net addr;
        (* let the workload reach steady state before the window *)
        P2_runtime.Engine.run_for engine 30.;
        measure engine addr)
      seeds
  in
  let stat f =
    let xs = List.map f points in
    (Sim.Metrics.mean xs, Sim.Metrics.stddev xs)
  in
  ( stat (fun p -> p.cpu),
    stat (fun p -> p.mem),
    stat (fun p -> p.msgs),
    stat (fun p -> p.live) )

let pp_ms ppf (m, s) = Fmt.pf ppf "%8.3f ±%6.3f" m s

let row label
    ((cpu, mem, msgs, live) :
      (float * float) * (float * float) * (float * float) * (float * float)) =
  Fmt.pr "  %-12s cpu%%: %a   mem MB: %a   msgs: %a   live: %a@." label pp_ms cpu
    pp_ms mem pp_ms msgs pp_ms live

let header title expectation =
  Fmt.pr "@.=== %s ===@." title;
  Fmt.pr "  paper: %s@." expectation

(* --- E0: execution logging overhead (§4, in text) --- *)

let bench_e0 () =
  header "E0: execution-logging overhead"
    "CPU +40% (0.98 -> 1.38), memory +66% (8 MB -> 13 MB)";
  let base = replicate ~trace:false (fun _ _ _ -> ()) in
  let traced = replicate ~trace:true (fun _ _ _ -> ()) in
  row "tracing off" base;
  row "tracing on" traced;
  let cpu ((c, _), _, _, _) = c and mem (_, (m, _), _, _) = m in
  Fmt.pr "  measured: CPU x%.2f, memory x%.2f@."
    (cpu traced /. Float.max 1e-9 (cpu base))
    (mem traced /. Float.max 1e-9 (mem base))

(* --- Figure 4: periodic monitoring rules --- *)

let periodic_rules k =
  String.concat "\n"
    (List.init k (fun i ->
         Fmt.str "benchp%d result@NAddr() :- periodic@NAddr(E, 1)." i))

let bench_fig4 () =
  header "Figure 4: N periodic rules (period 1 s) on the measured node"
    "CPU grows ~linearly to ~4.5% at 250 rules; memory plateaus above baseline";
  List.iter
    (fun k ->
      let r =
        replicate (fun engine _net addr ->
            if k > 0 then P2_runtime.Engine.install engine addr (periodic_rules k))
      in
      row (Fmt.str "%d rules" k) r)
    [ 0; 50; 100; 150; 200; 250 ]

(* --- Figure 5: piggy-backed rules with a state lookup --- *)

let piggyback_rules k =
  "benchdrv event@NAddr() :- periodic@NAddr(E, 1).\n"
  ^ String.concat "\n"
      (List.init k (fun i ->
           Fmt.str
             "benchb%d result@NAddr() :- event@NAddr(), bestSucc@NAddr(SID, SAddr)."
             i))

let bench_fig5 () =
  header "Figure 5: N piggybacked rules on one 1 s event, each with a state lookup"
    "CPU grows ~linearly to ~6% at 250 rules (state lookups cost more than timers)";
  List.iter
    (fun k ->
      let r =
        replicate (fun engine _net addr ->
            P2_runtime.Engine.install engine addr (piggyback_rules k))
      in
      row (Fmt.str "%d rules" k) r)
    [ 0; 50; 100; 150; 200; 250 ]

(* --- Figure 6: proactive consistency probes --- *)

let bench_fig6 () =
  header "Figure 6: consistency probes at increasing rate (probes/s)"
    "memory & messages grow linearly with rate, CPU superlinearly";
  row "none" (replicate (fun _ _ _ -> ()));
  List.iter
    (fun rate ->
      let r =
        replicate (fun _engine net addr ->
            ignore
              (Core.Consistency.install ~addrs:[ addr ] ~t_probe:(1. /. rate)
                 ~t_tally:10. ~window:10. net))
      in
      row (Fmt.str "%g/s" rate) r)
    [ 1. /. 32.; 0.25; 0.5; 0.75; 1. ]

(* --- Figure 7: consistent snapshots --- *)

let bench_fig7 () =
  header "Figure 7: consistent snapshots at increasing rate (snapshots/s)"
    "same metrics as Fig. 6 but much cheaper than probes at equal rates";
  row "none" (replicate (fun _ _ _ -> ()));
  List.iter
    (fun rate ->
      let r =
        replicate (fun _engine net addr ->
            ignore
              (Core.Snapshot.install ~initiator:addr ~t_snap:(1. /. rate)
                 ~lookups:false net))
      in
      row (Fmt.str "%g/s" rate) r)
    [ 1. /. 32.; 0.25; 0.5; 0.75; 1. ]

(* --- Ablation: correct vs buggy Chord (DESIGN.md) --- *)

let bench_ablation_buggy_chord () =
  header "Ablation: correct vs buggy Chord under a flapping node"
    "(the buggy variant recycles dead neighbors, §3.1.3)";
  let flapping params label =
    let points =
      List.map
        (fun seed ->
          let engine = P2_runtime.Engine.create ~seed () in
          let net = Chord.boot ~params engine nodes in
          P2_runtime.Engine.run_for engine settle;
          let det = Core.Oscillation.install ~period:20. ~threshold:2 net in
          let victim = List.nth net.addrs (nodes / 2) in
          for i = 0 to 5 do
            let t0 = P2_runtime.Engine.now engine +. (float_of_int i *. 35.) in
            P2_runtime.Engine.at engine ~time:t0 (fun () ->
                P2_runtime.Engine.crash engine victim);
            P2_runtime.Engine.at engine ~time:(t0 +. 20.) (fun () ->
                P2_runtime.Engine.recover engine victim)
          done;
          P2_runtime.Engine.run_for engine 220.;
          ( float_of_int (Core.Alarms.count det.oscill),
            float_of_int (Core.Alarms.count det.repeat) ))
        seeds
    in
    let osc = Sim.Metrics.mean (List.map fst points) in
    let rep = Sim.Metrics.mean (List.map snd points) in
    Fmt.pr "  %-22s oscillations: %7.1f   repeat-oscillators: %7.1f@." label osc rep
  in
  flapping Chord.default_params "remember-deceased";
  flapping Chord.buggy_params "buggy (recycles dead)"

(* --- Ablation: tracing granularity --- *)

let bench_ablation_tracing () =
  header "Ablation: tracing on one node vs all nodes"
    "(per-node cost of the introspection machinery)";
  let one_node =
    replicate ~trace:false (fun engine _net addr ->
        Dataflow.Tracer.enable (P2_runtime.Node.tracer (P2_runtime.Engine.node engine addr)))
  in
  let all_nodes = replicate ~trace:true (fun _ _ _ -> ()) in
  row "traced: self" one_node;
  row "traced: all" all_nodes

(* --- Bechamel micro-benchmarks of the engine primitives --- *)

let microbenches () =
  let open Bechamel in
  let open Toolkit in
  Fmt.pr "@.=== Micro-benchmarks (Bechamel, ns/op) ===@.";
  let chord_text = Chord.program Chord.default_params in
  let parse_test =
    Test.make ~name:"parse-chord-program"
      (Staged.stage (fun () -> ignore (Overlog.Parser.parse chord_text)))
  in
  let eval_test =
    let env =
      Overlog.Eval.Env.bind
        (Overlog.Eval.Env.bind Overlog.Eval.Env.empty "K" (Overlog.Value.VId 50))
        "F" (Overlog.Value.VId 7)
    in
    let e =
      match
        Overlog.Parser.parse "r x@N(D) :- e@N(K, F), D := K - F - 1, D in (1, 100]."
      with
      | [ Overlog.Ast.Rule { rbody = [ _; Overlog.Ast.Assign (_, e); _ ]; _ } ] -> e
      | _ -> assert false
    in
    Test.make ~name:"eval-ring-expression"
      (Staged.stage (fun () ->
           ignore (Overlog.Eval.eval Overlog.Eval.null_context env e)))
  in
  let table_test =
    let table = Store.Table.create ~keys:[ 1; 2 ] ~max_size:1024 "bench" in
    let i = ref 0 in
    Test.make ~name:"table-insert-replace"
      (Staged.stage (fun () ->
           incr i;
           ignore
             (Store.Table.insert table ~now:0.
                (Overlog.Tuple.make "bench"
                   [ Overlog.Value.VAddr "n"; Overlog.Value.VInt (!i mod 512) ]))))
  in
  let route_test =
    let engine = P2_runtime.Engine.create ~seed:7 () in
    ignore (P2_runtime.Engine.add_node engine "a");
    P2_runtime.Engine.install engine "a"
      "materialize(t, infinity, 1024, keys(1,2)).\nr t@N(X) :- ev@N(X).";
    let i = ref 0 in
    Test.make ~name:"inject-derive-insert"
      (Staged.stage (fun () ->
           incr i;
           P2_runtime.Engine.inject engine "a" "ev"
             [ Overlog.Value.VInt (!i mod 512) ]))
  in
  let grouped =
    Test.make_grouped ~name:"p2" [ parse_test; eval_test; table_test; route_test ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Fmt.pr "  %-28s %12.1f ns/op@." name est
      | _ -> Fmt.pr "  %-28s (no estimate)@." name)
    results

let () =
  Fmt.pr "P2 monitoring & forensics — paper evaluation reproduction@.";
  Fmt.pr "(%d-node Chord, settle %.0fs, window %.0fs, seeds %a; see EXPERIMENTS.md)@."
    nodes settle window
    Fmt.(list ~sep:(any ",") int)
    seeds;
  bench_e0 ();
  bench_fig4 ();
  bench_fig5 ();
  bench_fig6 ();
  bench_fig7 ();
  bench_ablation_buggy_chord ();
  bench_ablation_tracing ();
  microbenches ()
