lib/dataflow/strand.ml: Ast Fmt List Overlog Value
