test/test_strand.ml: Alcotest Ast Dataflow Fmt List Overlog Parser Strand String
